// Command pulsecomp compiles a workload's control-pulse streams, runs the
// adaptive-pulse-sampling codecs over them, and prints Table-2-style
// statistics (bandwidth, DAC density, decode latency) plus the pulse
// library footprint against the 1.4 MB on-chip budget.
//
// Usage:
//
//	pulsecomp [-workload name] [-param N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"artery/internal/pulse"
	"artery/internal/stats"
	"artery/internal/version"
	"artery/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "qec", "workload: qrw|rcnot|dqt|rusqnn|reset|random|qec|eswap|msi")
		param   = flag.Int("param", 2, "workload size parameter")
		seed    = flag.Uint64("seed", 1, "random seed (random workload only)")
		showVer = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Printf("pulsecomp %s\n", version.String())
		return
	}

	var wl *workload.Workload
	if *wlName == "random" {
		wl = workload.Random(*param, stats.NewRNG(*seed))
	} else {
		var err error
		wl, err = workload.ByName(*wlName, *param)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pulsecomp: %v\n", err)
			os.Exit(2)
		}
	}

	streams := pulse.CompileCircuit(wl.Circuit)
	totalSamples := 0
	for _, w := range streams {
		totalSamples += len(w)
	}
	fmt.Printf("workload %s: %d control channels, %d samples (%.1f µs of playback)\n\n",
		wl.Name, len(streams), totalSamples, streams[0].DurationNs()/1000)

	fmt.Printf("%-22s %-12s %-12s %-12s %-14s\n", "codec", "ratio", "Gb/s", "#DAC/FPGA", "decode (ns)")
	for _, c := range pulse.Codecs() {
		r := pulse.AnalyzeSampling(c, streams)
		fmt.Printf("%-22s %-12.3f %-12.1f %-12d %-14.1f\n",
			r.Codec, r.CompressionRatio, r.BandwidthGbps, r.DACsPerFPGA, r.DecodeLatencyNs)
	}

	lib := pulse.BuildLibrary(wl.Circuit, pulse.CombinedCodec{})
	fmt.Printf("\npulse library: %d entries, %d bytes raw -> %d bytes stored (budget 1.4 MB: %v)\n",
		lib.Len(), lib.RawBytes(), lib.StoredBytes(), lib.StoredBytes() <= 1_400_000)
}
