package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"artery/api"
	"artery/internal/store"
)

// storeBenchCase is one (segment size) measurement of the journal.
type storeBenchCase struct {
	SegmentBytes int64 `json:"segment_bytes"`
	// Appends is the number of shot-event records appended in the timed
	// window (fsync=never, so the OS page cache — not the disk — bounds
	// the rate, isolating the framing/encode cost).
	Appends       int     `json:"appends"`
	AppendsPerSec float64 `json:"appends_per_sec"`
	MBPerSec      float64 `json:"mb_per_sec"`
	Segments      int     `json:"segments"`
	JournalBytes  int64   `json:"journal_bytes"`
	// RecoveryMs is the wall time of store.Open over the journal just
	// written: full scan, CRC verification, and in-memory index rebuild.
	RecoveryMs            float64 `json:"recovery_ms"`
	RecoveryRecordsPerSec float64 `json:"recovery_records_per_sec"`
}

// storeBenchFsync is one fsync-policy append-throughput measurement at
// the default segment size.
type storeBenchFsync struct {
	Policy        string  `json:"policy"`
	Appends       int     `json:"appends"`
	AppendsPerSec float64 `json:"appends_per_sec"`
}

// storeBenchReport is the BENCH_store.json schema.
type storeBenchReport struct {
	Generated string            `json:"generated"`
	GoVersion string            `json:"go_version"`
	NumCPU    int               `json:"num_cpu"`
	Cases     []storeBenchCase  `json:"cases"`
	Fsync     []storeBenchFsync `json:"fsync"`
}

// storeBenchEvent builds the representative journal payload: a streamed
// shot event with the stage-delta table attached, the shape every
// `stream_stages` job appends once per merged shot.
func storeBenchEvent(shot int) api.ShotEvent {
	f := 0.987
	return api.ShotEvent{
		Shot: shot, LatencyNs: 5321.5, Fidelity: &f,
		Sites: 4, Commits: 3, Correct: 3,
		Stages: []api.StageDelta{
			{Stage: "readout", Ns: 412.0},
			{Stage: "predict", Ns: 97.5},
			{Stage: "synth", Ns: 1533.25},
			{Stage: "feedback", Ns: 288.0},
		},
	}
}

// dirBytes sums the sizes of the journal segments under dir.
func dirBytes(dir string) (int64, int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "segment-*.wal"))
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for _, n := range names {
		fi, err := os.Stat(n)
		if err != nil {
			return 0, 0, err
		}
		total += fi.Size()
	}
	return total, len(names), nil
}

// appendEvents journals one job with n shot events (checkpoint every
// 256, the service default) and returns the elapsed append time.
func appendEvents(st *store.Store, n int) (time.Duration, error) {
	req := api.Request{Workload: "qrw", Param: 5, Controller: "ARTERY", Shots: n, Seed: 1, StreamStages: true}
	if err := st.JobSubmitted("job-1", req); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := st.ShotEvent("job-1", storeBenchEvent(i)); err != nil {
			return 0, err
		}
		if (i+1)%256 == 0 {
			if err := st.Checkpoint("job-1", i+1); err != nil {
				return 0, err
			}
		}
	}
	return time.Since(start), nil
}

// runStoreBench measures the durable job store: append throughput and
// recovery-scan time across segment sizes (fsync=never isolates the
// journal's own cost from the disk), plus append throughput under each
// fsync policy at the default segment size. Writes BENCH_store.json.
func runStoreBench(path string, events int) error {
	if events < 1000 {
		events = 1000
	}
	rep := storeBenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}

	for _, segBytes := range []int64{256 << 10, 1 << 20, 4 << 20, 16 << 20} {
		dir, err := os.MkdirTemp("", "store-bench-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(store.Config{Dir: dir, SegmentBytes: segBytes, Fsync: store.FsyncNever})
		if err != nil {
			return err
		}
		dt, err := appendEvents(st, events)
		if err != nil {
			st.Close()
			return err
		}
		if err := st.Close(); err != nil {
			return err
		}
		bytes, segs, err := dirBytes(dir)
		if err != nil {
			return err
		}

		// Recovery: reopen the populated dir and time the full scan.
		rt0 := time.Now()
		st2, err := store.Open(store.Config{Dir: dir, SegmentBytes: segBytes, Fsync: store.FsyncNever})
		if err != nil {
			return err
		}
		rdt := time.Since(rt0)
		st2.Close()

		records := events + 1 + events/256 // job + events + checkpoints
		c := storeBenchCase{
			SegmentBytes:          segBytes,
			Appends:               events,
			AppendsPerSec:         float64(events) / dt.Seconds(),
			MBPerSec:              float64(bytes) / (1 << 20) / dt.Seconds(),
			Segments:              segs,
			JournalBytes:          bytes,
			RecoveryMs:            float64(rdt.Microseconds()) / 1000,
			RecoveryRecordsPerSec: float64(records) / rdt.Seconds(),
		}
		rep.Cases = append(rep.Cases, c)
		fmt.Printf("segment %7.2f MiB  %9.0f appends/s  %7.1f MB/s  %2d segments  recovery %8.2f ms (%9.0f rec/s)\n",
			float64(segBytes)/(1<<20), c.AppendsPerSec, c.MBPerSec, segs, c.RecoveryMs, c.RecoveryRecordsPerSec)
	}

	// Fsync-policy sweep at the default segment size. FsyncAlways pays
	// one fsync per record, so it gets a smaller append budget to keep
	// the sweep under CI wall clock.
	for _, pc := range []struct {
		p store.Policy
		n int
	}{
		{store.FsyncNever, events},
		{store.FsyncInterval, events},
		{store.FsyncAlways, events / 20},
	} {
		dir, err := os.MkdirTemp("", "store-bench-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(store.Config{Dir: dir, Fsync: pc.p})
		if err != nil {
			return err
		}
		dt, err := appendEvents(st, pc.n)
		if err != nil {
			st.Close()
			return err
		}
		if err := st.Close(); err != nil {
			return err
		}
		f := storeBenchFsync{
			Policy:        pc.p.String(),
			Appends:       pc.n,
			AppendsPerSec: float64(pc.n) / dt.Seconds(),
		}
		rep.Fsync = append(rep.Fsync, f)
		fmt.Printf("fsync=%-8s %9.0f appends/s (%d appends)\n", f.Policy, f.AppendsPerSec, f.Appends)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
