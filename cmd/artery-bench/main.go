// Command artery-bench regenerates the tables and figures of the ARTERY
// paper's evaluation section (§6) from the simulated substrate.
//
// Usage:
//
//	artery-bench [-exp id[,id...]] [-seed N] [-shots N] [-workers N] [-list] [-faults]
//	artery-bench -engine-bench BENCH_engine.json [-shots N] [-seed N]
//	artery-bench -store-bench BENCH_store.json [-store-events N]
//	artery-bench -trace [-metrics] [-shots N] [-seed N]
//	artery-bench -trace-overhead BENCH_engine.json [-tolerance F]
//	artery-bench -loadgen http://HOST:PORT [-clients N] [-jobs N] [-lg-workload name]
//	             [-lg-param N] [-shots N] [-seed N]
//	artery-bench -chaos -chaos-target http://HOST:PORT [-chaos-proxy ADDR]
//	             [-chaos-rate F] [-chaos-seed N] [-chaos-addr-file FILE]
//
// -loadgen drives a running arteryd: N concurrent clients submit and
// stream jobs, and the mode reports service throughput (jobs/s, shots/s)
// and tail latency (p50/p95/p99), then resubmits one job to verify the
// service reproduces its result bytes exactly. It exits non-zero on any
// dropped job, any 429 without Retry-After, or a determinism mismatch —
// the `make serve-smoke` CI gate.
//
// -chaos fronts a running arteryd with the deterministic fault proxy
// (see internal/chaos): a seed-driven schedule of latency, resets,
// blackholes, truncations, corrupt frames, slow-loris drip and 5xx
// storms, replayed identically for the same -chaos-seed/-chaos-rate.
// The `make chaos-smoke` CI gate runs three backends behind escalating
// chaos rates and diffs the cluster's results against a clean run.
//
// Experiment ids follow the paper's numbering: fig2, fig4, fig12a, fig12b,
// fig12c, fig12d, table1, fig13, fig14, fig15a, fig15b, table2, fig16,
// fig17. Without -exp every experiment runs in order.
//
// -engine-bench measures Engine.Run's shot throughput at worker counts
// 1/2/4/8/GOMAXPROCS and writes the result as JSON (the repository's
// BENCH_engine.json snapshot).
//
// -store-bench measures the durable job store: journal append throughput
// and recovery-scan time across segment sizes, plus append throughput
// under each fsync policy, written as JSON (BENCH_store.json).
//
// -trace / -metrics run the observability demo: a QRW-5 sweep under the
// ARTERY controller with shot tracing and the metrics registry attached,
// writing the JSONL event stream to trace.jsonl and the Prometheus-style
// exposition to metrics.prom (override with -trace-out / -metrics-out)
// plus a per-stage latency table on stdout.
//
// -trace-overhead is the CI regression gate for the tracing layer: it
// re-measures tracing-off engine throughput and fails when it falls more
// than -tolerance (default 1%) below the BENCH_engine.json snapshot, and
// additionally asserts that enabling tracing does not change RunResult.
//
// -cpuprofile FILE writes a CPU profile of whichever mode runs (-pprof is
// an alias kept for compatibility); -memprofile FILE writes a heap profile
// at exit, after a forced GC so only live allocations show up. The
// scripts/profile.sh workflow wraps both.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"artery"
	"artery/internal/controller"
	"artery/internal/core"
	"artery/internal/experiment"
	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/quantum"
	"artery/internal/readout"
	"artery/internal/stats"
	"artery/internal/trace"
	"artery/internal/version"
	"artery/internal/workload"
)

// writeFile persists one experiment table under dir.
func writeFile(dir, id, format string, tab *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ext := format
	if ext == "" || ext == "text" {
		ext = "txt"
	}
	f, err := os.Create(filepath.Join(dir, id+"."+ext))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.WriteAs(f, format)
}

// extraIDs returns the ablation ids in stable order.
func extraIDs() []string {
	var out []string
	for id := range experiment.ExtraRegistry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func main() {
	var (
		exps    = flag.String("exp", "", "comma-separated experiment ids (default: all paper experiments)")
		seed    = flag.Uint64("seed", 1, "random seed")
		shots   = flag.Int("shots", 60, "shots per measured cell")
		workers = flag.Int("workers", 0, "cell/shot worker count (0 = GOMAXPROCS, 1 = serial; tables are identical at any setting)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		extras  = flag.Bool("ablations", false, "also run the repository's ablation studies")
		faults  = flag.Bool("faults", false, "run the fault-injection robustness study (xtr-fault)")
		format  = flag.String("format", "text", "output format: text|csv|json")
		outDir  = flag.String("o", "", "also write each experiment to <dir>/<id>.<format>")
		engOut  = flag.String("engine-bench", "", "measure Engine.Run shot throughput across worker counts, write JSON to this path, and exit")

		storeOut    = flag.String("store-bench", "", "measure durable-store journal append throughput and recovery-scan time, write JSON to this path, and exit")
		storeEvents = flag.Int("store-events", 50000, "shot events appended per -store-bench case")

		doTrace    = flag.Bool("trace", false, "observability demo: record a shot trace for a QRW-5 ARTERY run and write it as JSONL")
		doMetrics  = flag.Bool("metrics", false, "observability demo: collect the metrics registry for a QRW-5 ARTERY run and write the Prometheus text exposition")
		traceOut   = flag.String("trace-out", "trace.jsonl", "JSONL output path for -trace (\"-\" = stdout)")
		metricsOut = flag.String("metrics-out", "metrics.prom", "metrics output path for -metrics (\"-\" = stdout)")
		overhead   = flag.String("trace-overhead", "", "regression gate: compare tracing-off throughput against this BENCH_engine.json snapshot and exit")
		tolerance  = flag.Float64("tolerance", 0.01, "allowed fractional throughput regression for -trace-overhead")
		profOut    = flag.String("pprof", "", "alias for -cpuprofile (kept for compatibility)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the selected mode to this path")
		memProf    = flag.String("memprofile", "", "write a heap profile (post-GC live allocations) to this path at exit")

		loadgen    = flag.String("loadgen", "", "drive a running arteryd at this base URL and report service throughput/tail latency")
		submit     = flag.String("submit", "", "submit one job to a running arteryd/coordinator at this base URL, wait, and print the result JSON")
		lgClients  = flag.Int("clients", 8, "concurrent clients for -loadgen")
		lgJobs     = flag.Int("jobs", 32, "total jobs for -loadgen")
		lgWorkload = flag.String("lg-workload", "qrw", "workload name for -loadgen jobs")
		lgParam    = flag.Int("lg-param", 5, "workload size parameter for -loadgen jobs")
		lgStateSim = flag.Bool("lg-state-sim", false, "enable per-shot state simulation in -loadgen jobs")

		chaosMode = flag.Bool("chaos", false, "run a deterministic chaos proxy in front of -chaos-target until SIGTERM")
		chaosTgt  = flag.String("chaos-target", "", "backend base URL or host:port the chaos proxy fronts")
		chaosAddr = flag.String("chaos-proxy", "127.0.0.1:0", "chaos proxy listen address (port 0 picks an ephemeral port)")
		chaosRate = flag.Float64("chaos-rate", 0.1, "composite fault rate in [0,1] for the chaos proxy")
		chaosSeed = flag.Uint64("chaos-seed", 1, "fault-schedule seed (same seed + rate replays the same faults)")
		chaosFile = flag.String("chaos-addr-file", "", "write the resolved chaos proxy address to this file once serving")

		showVersion = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("artery-bench %s\n", version.String())
		return
	}

	if *chaosMode {
		if err := runChaosProxy(chaosConfig{
			target:   *chaosTgt,
			listen:   *chaosAddr,
			rate:     *chaosRate,
			seed:     *chaosSeed,
			addrFile: *chaosFile,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *submit != "" {
		if err := runSubmit(loadgenConfig{
			base:     *submit,
			workload: *lgWorkload,
			param:    *lgParam,
			shots:    *shots,
			seed:     *seed,
			stateSim: *lgStateSim,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *loadgen != "" {
		if err := runLoadgen(loadgenConfig{
			base:     *loadgen,
			clients:  *lgClients,
			jobs:     *lgJobs,
			workload: *lgWorkload,
			param:    *lgParam,
			shots:    *shots,
			seed:     *seed,
			stateSim: *lgStateSim,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *cpuProf == "" {
		cpuProf = profOut // -pprof is the historical spelling
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(2)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush dead objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			}
		}()
	}

	if *overhead != "" {
		if err := runTraceOverhead(*overhead, *tolerance); err != nil {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *doTrace || *doMetrics {
		if err := runObsDemo(*seed, *shots, *doTrace, *doMetrics, *traceOut, *metricsOut); err != nil {
			pprof.StopCPUProfile()
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if *engOut != "" {
		if err := runEngineBench(*engOut, *seed, *shots); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if *storeOut != "" {
		if err := runStoreBench(*storeOut, *storeEvents); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		for _, id := range extraIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiment.IDs()
	switch {
	case *exps != "":
		ids = strings.Split(*exps, ",")
	case *faults:
		ids = []string{"xtr-fault"}
	case *extras:
		ids = append(ids, extraIDs()...)
	}
	suite := experiment.NewSuite(*seed, *shots)
	suite.Workers = *workers
	for _, id := range ids {
		id = strings.TrimSpace(id)
		gen, ok := experiment.Registry[id]
		if !ok {
			gen, ok = experiment.ExtraRegistry[id]
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "artery-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab := gen(suite)
		if err := tab.WriteAs(os.Stdout, *format); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(2)
		}
		if *outDir != "" {
			if err := writeFile(*outDir, id, *format, tab); err != nil {
				fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
				os.Exit(2)
			}
		}
		if *format == "text" {
			fmt.Printf("(%s regenerated in %v)\n\n", tab.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}

// engineBenchPoint is one (worker count) measurement of one case.
type engineBenchPoint struct {
	Workers     int     `json:"workers"`
	ShotsPerSec float64 `json:"shots_per_sec"`
	// Speedup is relative to the workers=1 measurement of the same case.
	Speedup float64 `json:"speedup"`
	// Identical reports that the run's mean latency (and fidelity, when
	// simulated) matched the workers=1 run bit-for-bit.
	Identical bool `json:"identical"`
}

// engineBenchCase is the sweep of one engine/workload pairing.
type engineBenchCase struct {
	Name   string             `json:"name"`
	Mode   string             `json:"mode"`
	Points []engineBenchPoint `json:"points"`
}

// engineBenchReport is the BENCH_engine.json schema.
type engineBenchReport struct {
	Generated  string            `json:"generated"`
	GoMaxProcs int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	GoVersion  string            `json:"go_version"`
	Shots      int               `json:"shots"`
	Seed       uint64            `json:"seed"`
	Cases      []engineBenchCase `json:"cases"`
}

// engineBenchCase1 describes one engine-bench scenario: the workload, the
// engine constructor, and a shot divisor for heavyweight cases (the
// 449-qubit surface tableau runs fewer shots per timed window than the
// 2-qubit QRW so the sweep stays fast; rates are per-shot either way).
type engineBenchCase1 struct {
	name, mode string
	wl         *workload.Workload
	shotsDiv   int
	make       func() *core.Engine
}

// engineBenchCases is the single case table behind -engine-bench and
// -trace-overhead, so the snapshot writer and the regression gate cannot
// drift apart: a shot-safe baseline with state simulation, the ARTERY
// controller's synth/feedback pipeline, and the stabilizer backend on a
// d=15 surface-code memory (449 qubits — far beyond any state vector).
func engineBenchCases(ch *readout.Channel, topo *interconnect.Topology) []engineBenchCase1 {
	return []engineBenchCase1{
		{"QubiC/QRW-5/state-sim", "shot-parallel", workload.QRW(5), 1, func() *core.Engine {
			return core.NewEngine(controller.NewBaseline("QubiC", controller.QubiCOverheadNs, topo), ch, nil)
		}},
		{"ARTERY/QRW-5/latency-only", "synth-pipeline", workload.QRW(5), 1, func() *core.Engine {
			p := predict.New(predict.DefaultConfig(), ch)
			e := core.NewEngine(controller.NewArtery(controller.DefaultUnits(), topo, p), ch, nil)
			e.SimulateState = false
			return e
		}},
		{"QubiC/Surface-15/stabilizer", "shot-parallel", workload.SurfaceMemory(15), 10, func() *core.Engine {
			noise := quantum.DeviceNoise()
			noise.T1, noise.T2 = math.Inf(1), math.Inf(1) // Clifford-safe
			e := core.NewEngine(controller.NewBaseline("QubiC", controller.QubiCOverheadNs, topo), ch, noise)
			e.Backend = quantum.BackendStabilizer
			return e
		}},
	}
}

// runEngineBench measures Engine.Run throughput across worker counts for
// the parallel execution modes (a shot-safe baseline with state
// simulation, the ARTERY controller's synth/feedback pipeline, and the
// stabilizer tableau on a wide surface-code memory) and writes the JSON
// snapshot.
func runEngineBench(path string, seed uint64, shots int) error {
	if shots < 200 {
		shots = 200 // throughput needs enough shots to amortize setup
	}
	ch := readout.NewChannel(readout.DefaultCalibration(), readout.DefaultWinNs, readout.DefaultK, stats.NewRNG(seed))
	topo := interconnect.PaperTopology()

	cases := engineBenchCases(ch, topo)

	counts := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 && n != 8 {
		counts = append(counts, n)
	}

	rep := engineBenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Shots:      shots,
		Seed:       seed,
	}
	for _, c := range cases {
		bc := engineBenchCase{Name: c.name, Mode: c.mode}
		caseShots := shots / c.shotsDiv
		var ref core.RunResult
		var serialRate float64
		for _, w := range counts {
			e := c.make()
			e.Workers = w
			// Warm the per-engine caches outside the timed window.
			e.Run(c.wl, 2, stats.NewRNG(seed+1))
			start := time.Now()
			res := e.Run(c.wl, caseShots, stats.NewRNG(seed))
			dt := time.Since(start).Seconds()
			rate := float64(caseShots) / dt
			pt := engineBenchPoint{Workers: w, ShotsPerSec: rate}
			if w == counts[0] {
				ref, serialRate = res, rate
				pt.Speedup, pt.Identical = 1, true
			} else {
				pt.Speedup = rate / serialRate
				pt.Identical = res.MeanLatencyNs == ref.MeanLatencyNs &&
					(res.MeanFidelity == ref.MeanFidelity ||
						(res.MeanFidelity != res.MeanFidelity && ref.MeanFidelity != ref.MeanFidelity))
			}
			bc.Points = append(bc.Points, pt)
			fmt.Printf("%-28s workers=%-2d  %8.1f shots/s  speedup %.2fx  identical=%v\n",
				c.name, w, rate, pt.Speedup, pt.Identical)
		}
		rep.Cases = append(rep.Cases, bc)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// openSink opens path for writing; "-" means stdout (whose closer is a
// no-op so the caller can always defer it).
func openSink(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// runObsDemo exercises the observability exporters end to end: a QRW-5
// run under the ARTERY controller with shot tracing and/or the metrics
// registry enabled, dumping the JSONL event stream and the Prometheus
// text exposition, plus the per-stage latency table on stdout.
func runObsDemo(seed uint64, shots int, doTrace, doMetrics bool, tracePath, metricsPath string) error {
	if shots < 200 {
		shots = 200 // enough shots for the histograms to be meaningful
	}
	opts := []artery.Option{artery.WithSeed(seed)}
	var traceW io.Writer
	var closeTrace func() error
	if doTrace {
		w, cl, err := openSink(tracePath)
		if err != nil {
			return err
		}
		traceW, closeTrace = w, cl
		opts = append(opts, artery.WithTracing(traceW))
	}
	if doMetrics {
		opts = append(opts, artery.WithMetrics())
	}
	sys, err := artery.New(opts...)
	if err != nil {
		return err
	}
	rep := sys.Run(artery.QRW(5), shots)
	fmt.Println(rep)
	fmt.Printf("\n%-14s %8s %14s %12s\n", "stage", "count", "total_ns", "mean_ns")
	for _, sl := range rep.Stages {
		fmt.Printf("%-14s %8d %14.1f %12.1f\n", sl.Stage, sl.Count, sl.TotalNs, sl.MeanNs)
	}
	if doTrace {
		if err := closeTrace(); err != nil {
			return err
		}
		if tracePath != "-" {
			fmt.Printf("\nshot trace (JSONL) written to %s\n", tracePath)
		}
	}
	if doMetrics {
		w, cl, err := openSink(metricsPath)
		if err != nil {
			return err
		}
		if err := sys.WriteMetrics(w); err != nil {
			cl()
			return err
		}
		if err := cl(); err != nil {
			return err
		}
		if metricsPath != "-" {
			fmt.Printf("metrics exposition written to %s\n", metricsPath)
		}
	}
	return nil
}

// runTraceOverhead is the `make trace-overhead` gate. It re-measures the
// tracing-off throughput of each BENCH_engine.json case at workers=1
// (the most noise-stable point), takes the best of three runs, and fails
// when any case falls more than tol below its snapshot rate — i.e. when
// the disabled instrumentation hooks stop being free. It also asserts
// that attaching a recorder does not change RunResult (determinism under
// tracing).
func runTraceOverhead(path string, tol float64) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("trace-overhead: %w (run `make bench-engine` first)", err)
	}
	var rep engineBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("trace-overhead: %s: %w", path, err)
	}

	ch := readout.NewChannel(readout.DefaultCalibration(), readout.DefaultWinNs, readout.DefaultK, stats.NewRNG(rep.Seed))
	topo := interconnect.PaperTopology()
	byName := map[string]engineBenchCase1{}
	for _, c := range engineBenchCases(ch, topo) {
		byName[c.name] = c
	}

	fail := false
	for _, c := range rep.Cases {
		bc, ok := byName[c.Name]
		if !ok {
			return fmt.Errorf("trace-overhead: unknown case %q in %s", c.Name, path)
		}
		mk, wl := bc.make, bc.wl
		caseShots := rep.Shots / bc.shotsDiv
		var baseline float64
		for _, pt := range c.Points {
			if pt.Workers == 1 {
				baseline = pt.ShotsPerSec
			}
		}
		if baseline == 0 {
			return fmt.Errorf("trace-overhead: case %q has no workers=1 point", c.Name)
		}

		// Best-of-three serial throughput with tracing off (nil recorder:
		// the disabled state every hook must treat as free).
		var best float64
		for i := 0; i < 3; i++ {
			e := mk()
			e.Workers = 1
			e.Run(wl, 2, stats.NewRNG(rep.Seed+1))
			start := time.Now()
			e.Run(wl, caseShots, stats.NewRNG(rep.Seed))
			rate := float64(caseShots) / time.Since(start).Seconds()
			if rate > best {
				best = rate
			}
		}
		loss := 1 - best/baseline
		status := "ok"
		if loss > tol {
			status, fail = "FAIL", true
		}
		fmt.Printf("%-28s snapshot %8.1f shots/s  now %8.1f shots/s  overhead %+6.2f%%  [%s]\n",
			c.Name, baseline, best, 100*loss, status)

		// Determinism under tracing: attaching a recorder must not change
		// the result.
		off := mk()
		off.Workers = 1
		resOff := off.Run(wl, caseShots, stats.NewRNG(rep.Seed))
		on := mk()
		on.Workers = 1
		on.Trace = trace.NewRecorder(0)
		on.Metrics = trace.NewRegistry()
		resOn := on.Run(wl, caseShots, stats.NewRNG(rep.Seed))
		same := resOn.MeanLatencyNs == resOff.MeanLatencyNs &&
			(resOn.MeanFidelity == resOff.MeanFidelity ||
				(resOn.MeanFidelity != resOn.MeanFidelity && resOff.MeanFidelity != resOff.MeanFidelity))
		if !same {
			fail = true
			fmt.Printf("%-28s FAIL: RunResult differs with tracing enabled\n", c.Name)
		}
	}
	if fail {
		return fmt.Errorf("trace-overhead: tracing layer regressed beyond %.1f%% (or broke determinism)", 100*tol)
	}
	return nil
}
