// Command artery-bench regenerates the tables and figures of the ARTERY
// paper's evaluation section (§6) from the simulated substrate.
//
// Usage:
//
//	artery-bench [-exp id[,id...]] [-seed N] [-shots N] [-workers N] [-list] [-faults]
//	artery-bench -engine-bench BENCH_engine.json [-shots N] [-seed N]
//
// Experiment ids follow the paper's numbering: fig2, fig4, fig12a, fig12b,
// fig12c, fig12d, table1, fig13, fig14, fig15a, fig15b, table2, fig16,
// fig17. Without -exp every experiment runs in order.
//
// -engine-bench measures Engine.Run's shot throughput at worker counts
// 1/2/4/8/GOMAXPROCS and writes the result as JSON (the repository's
// BENCH_engine.json snapshot).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"artery/internal/controller"
	"artery/internal/core"
	"artery/internal/experiment"
	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/readout"
	"artery/internal/stats"
	"artery/internal/workload"
)

// writeFile persists one experiment table under dir.
func writeFile(dir, id, format string, tab *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ext := format
	if ext == "" || ext == "text" {
		ext = "txt"
	}
	f, err := os.Create(filepath.Join(dir, id+"."+ext))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.WriteAs(f, format)
}

// extraIDs returns the ablation ids in stable order.
func extraIDs() []string {
	var out []string
	for id := range experiment.ExtraRegistry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func main() {
	var (
		exps    = flag.String("exp", "", "comma-separated experiment ids (default: all paper experiments)")
		seed    = flag.Uint64("seed", 1, "random seed")
		shots   = flag.Int("shots", 60, "shots per measured cell")
		workers = flag.Int("workers", 0, "cell/shot worker count (0 = GOMAXPROCS, 1 = serial; tables are identical at any setting)")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		extras  = flag.Bool("ablations", false, "also run the repository's ablation studies")
		faults  = flag.Bool("faults", false, "run the fault-injection robustness study (xtr-fault)")
		format  = flag.String("format", "text", "output format: text|csv|json")
		outDir  = flag.String("o", "", "also write each experiment to <dir>/<id>.<format>")
		engOut  = flag.String("engine-bench", "", "measure Engine.Run shot throughput across worker counts, write JSON to this path, and exit")
	)
	flag.Parse()

	if *engOut != "" {
		if err := runEngineBench(*engOut, *seed, *shots); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(2)
		}
		return
	}

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		for _, id := range extraIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiment.IDs()
	switch {
	case *exps != "":
		ids = strings.Split(*exps, ",")
	case *faults:
		ids = []string{"xtr-fault"}
	case *extras:
		ids = append(ids, extraIDs()...)
	}
	suite := experiment.NewSuite(*seed, *shots)
	suite.Workers = *workers
	for _, id := range ids {
		id = strings.TrimSpace(id)
		gen, ok := experiment.Registry[id]
		if !ok {
			gen, ok = experiment.ExtraRegistry[id]
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "artery-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab := gen(suite)
		if err := tab.WriteAs(os.Stdout, *format); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(2)
		}
		if *outDir != "" {
			if err := writeFile(*outDir, id, *format, tab); err != nil {
				fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
				os.Exit(2)
			}
		}
		if *format == "text" {
			fmt.Printf("(%s regenerated in %v)\n\n", tab.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}

// engineBenchPoint is one (worker count) measurement of one case.
type engineBenchPoint struct {
	Workers     int     `json:"workers"`
	ShotsPerSec float64 `json:"shots_per_sec"`
	// Speedup is relative to the workers=1 measurement of the same case.
	Speedup float64 `json:"speedup"`
	// Identical reports that the run's mean latency (and fidelity, when
	// simulated) matched the workers=1 run bit-for-bit.
	Identical bool `json:"identical"`
}

// engineBenchCase is the sweep of one engine/workload pairing.
type engineBenchCase struct {
	Name   string             `json:"name"`
	Mode   string             `json:"mode"`
	Points []engineBenchPoint `json:"points"`
}

// engineBenchReport is the BENCH_engine.json schema.
type engineBenchReport struct {
	Generated  string            `json:"generated"`
	GoMaxProcs int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	GoVersion  string            `json:"go_version"`
	Shots      int               `json:"shots"`
	Seed       uint64            `json:"seed"`
	Cases      []engineBenchCase `json:"cases"`
}

// runEngineBench measures Engine.Run throughput across worker counts for
// the two parallel execution modes (a shot-safe baseline with state
// simulation, and the ARTERY controller's synth/feedback pipeline) and
// writes the JSON snapshot.
func runEngineBench(path string, seed uint64, shots int) error {
	if shots < 200 {
		shots = 200 // throughput needs enough shots to amortize setup
	}
	ch := readout.NewChannel(readout.DefaultCalibration(), readout.DefaultWinNs, readout.DefaultK, stats.NewRNG(seed))
	topo := interconnect.PaperTopology()
	wl := workload.QRW(5)

	cases := []struct {
		name, mode string
		make       func() *core.Engine
	}{
		{"QubiC/QRW-5/state-sim", "shot-parallel", func() *core.Engine {
			return core.NewEngine(controller.NewBaseline("QubiC", controller.QubiCOverheadNs, topo), ch, nil)
		}},
		{"ARTERY/QRW-5/latency-only", "synth-pipeline", func() *core.Engine {
			p := predict.New(predict.DefaultConfig(), ch)
			e := core.NewEngine(controller.NewArtery(controller.DefaultUnits(), topo, p), ch, nil)
			e.SimulateState = false
			return e
		}},
	}

	counts := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 && n != 8 {
		counts = append(counts, n)
	}

	rep := engineBenchReport{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		GoVersion:  runtime.Version(),
		Shots:      shots,
		Seed:       seed,
	}
	for _, c := range cases {
		bc := engineBenchCase{Name: c.name, Mode: c.mode}
		var ref core.RunResult
		var serialRate float64
		for _, w := range counts {
			e := c.make()
			e.Workers = w
			// Warm the per-engine caches outside the timed window.
			e.Run(wl, 2, stats.NewRNG(seed+1))
			start := time.Now()
			res := e.Run(wl, shots, stats.NewRNG(seed))
			dt := time.Since(start).Seconds()
			rate := float64(shots) / dt
			pt := engineBenchPoint{Workers: w, ShotsPerSec: rate}
			if w == counts[0] {
				ref, serialRate = res, rate
				pt.Speedup, pt.Identical = 1, true
			} else {
				pt.Speedup = rate / serialRate
				pt.Identical = res.MeanLatencyNs == ref.MeanLatencyNs &&
					(res.MeanFidelity == ref.MeanFidelity ||
						(res.MeanFidelity != res.MeanFidelity && ref.MeanFidelity != ref.MeanFidelity))
			}
			bc.Points = append(bc.Points, pt)
			fmt.Printf("%-28s workers=%-2d  %8.1f shots/s  speedup %.2fx  identical=%v\n",
				c.name, w, rate, pt.Speedup, pt.Identical)
		}
		rep.Cases = append(rep.Cases, bc)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
