// Command artery-bench regenerates the tables and figures of the ARTERY
// paper's evaluation section (§6) from the simulated substrate.
//
// Usage:
//
//	artery-bench [-exp id[,id...]] [-seed N] [-shots N] [-list]
//
// Experiment ids follow the paper's numbering: fig2, fig4, fig12a, fig12b,
// fig12c, fig12d, table1, fig13, fig14, fig15a, fig15b, table2, fig16,
// fig17. Without -exp every experiment runs in order.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"artery/internal/experiment"
)

// writeFile persists one experiment table under dir.
func writeFile(dir, id, format string, tab *experiment.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ext := format
	if ext == "" || ext == "text" {
		ext = "txt"
	}
	f, err := os.Create(filepath.Join(dir, id+"."+ext))
	if err != nil {
		return err
	}
	defer f.Close()
	return tab.WriteAs(f, format)
}

// extraIDs returns the ablation ids in stable order.
func extraIDs() []string {
	var out []string
	for id := range experiment.ExtraRegistry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func main() {
	var (
		exps   = flag.String("exp", "", "comma-separated experiment ids (default: all paper experiments)")
		seed   = flag.Uint64("seed", 1, "random seed")
		shots  = flag.Int("shots", 60, "shots per measured cell")
		list   = flag.Bool("list", false, "list experiment ids and exit")
		extras = flag.Bool("ablations", false, "also run the repository's ablation studies")
		format = flag.String("format", "text", "output format: text|csv|json")
		outDir = flag.String("o", "", "also write each experiment to <dir>/<id>.<format>")
	)
	flag.Parse()

	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		for _, id := range extraIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := experiment.IDs()
	if *exps != "" {
		ids = strings.Split(*exps, ",")
	} else if *extras {
		ids = append(ids, extraIDs()...)
	}
	suite := experiment.NewSuite(*seed, *shots)
	for _, id := range ids {
		id = strings.TrimSpace(id)
		gen, ok := experiment.Registry[id]
		if !ok {
			gen, ok = experiment.ExtraRegistry[id]
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "artery-bench: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		start := time.Now()
		tab := gen(suite)
		if err := tab.WriteAs(os.Stdout, *format); err != nil {
			fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
			os.Exit(2)
		}
		if *outDir != "" {
			if err := writeFile(*outDir, id, *format, tab); err != nil {
				fmt.Fprintf(os.Stderr, "artery-bench: %v\n", err)
				os.Exit(2)
			}
		}
		if *format == "text" {
			fmt.Printf("(%s regenerated in %v)\n\n", tab.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
