package main

import (
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"artery/internal/chaos"
	"artery/internal/trace"
)

// chaosConfig carries the -chaos proxy mode's flags.
type chaosConfig struct {
	target   string  // backend base URL or host:port to proxy to
	listen   string  // proxy listen address (port 0 = ephemeral)
	rate     float64 // composite fault rate fed to chaos.Scaled
	seed     uint64  // fault-schedule seed; same seed = same schedule
	addrFile string  // write the resolved proxy address here once serving
}

// runChaosProxy fronts one arteryd node with the deterministic chaos
// proxy and serves until SIGTERM/SIGINT, then reports how many
// connections were faulted. The schedule depends only on (seed, rate,
// connection order), so a rerun with the same flags replays the same
// faults — which is what lets scripts/chaos_smoke.sh diff a chaos run
// against a clean run byte for byte.
func runChaosProxy(cfg chaosConfig) error {
	if cfg.target == "" {
		return fmt.Errorf("-chaos requires -chaos-target")
	}
	if cfg.rate < 0 || cfg.rate > 1 {
		return fmt.Errorf("-chaos-rate must be in [0,1], got %g", cfg.rate)
	}
	reg := trace.NewRegistry()
	ccfg := chaos.Scaled(cfg.seed, cfg.rate)
	ccfg.Registry = reg
	p, err := chaos.NewProxy(ccfg, cfg.listen, cfg.target)
	if err != nil {
		return err
	}
	defer p.Close()
	if cfg.addrFile != "" {
		if err := os.WriteFile(cfg.addrFile, []byte(p.Addr()+"\n"), 0o644); err != nil {
			return fmt.Errorf("chaos-addr-file: %w", err)
		}
		defer os.Remove(cfg.addrFile)
	}
	fmt.Printf("chaos proxy %s -> %s (seed=%d, rate=%g)\n", p.Addr(), cfg.target, cfg.seed, cfg.rate)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigCh
	fmt.Printf("chaos proxy: received %v, closing (%d connections faulted)\n", sig, p.Faults())
	var prom strings.Builder
	reg.WriteProm(&prom)
	for _, line := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(line, "artery_chaos_") {
			fmt.Println(line)
		}
	}
	return nil
}
