package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"artery"
	"artery/client"
)

// loadgenConfig parameterizes the -loadgen mode: N concurrent clients
// submitting and streaming jobs against a running arteryd, measuring
// service throughput and tail latency.
type loadgenConfig struct {
	base     string
	clients  int
	jobs     int
	workload string
	param    int
	shots    int
	seed     uint64
	stateSim bool
}

// jobTiming is one job's submit→terminal wall time.
type jobTiming struct {
	job     int
	dur     time.Duration
	shots   int
	state   string
	err     error
	resJSON string
}

// runLoadgen drives the burst and prints a throughput/latency table. It
// returns an error — failing the serve-smoke CI gate — when any job is
// dropped, any 429 arrives without Retry-After, or resubmitting a job
// with the same seed fails to reproduce its result bytes.
func runLoadgen(cfg loadgenConfig) error {
	if cfg.clients < 1 || cfg.jobs < 1 {
		return fmt.Errorf("loadgen: need >= 1 client and >= 1 job")
	}
	if _, err := artery.WorkloadByName(cfg.workload, cfg.param); err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}

	var rejects, naked429 atomic.Int64
	newClient := func() (*client.Client, error) {
		return client.New(cfg.base,
			client.WithRetries(50),
			client.WithBackoff(25*time.Millisecond, 2*time.Second),
			client.WithRetryHook(func(ri client.RetryInfo) {
				if ri.Status == 429 {
					rejects.Add(1)
					if !ri.RetryAfter {
						naked429.Add(1)
					}
				}
			}))
	}

	reqFor := func(job int) client.Request {
		return client.Request{
			Workload:   cfg.workload,
			Param:      cfg.param,
			Controller: "ARTERY",
			Shots:      cfg.shots,
			Seed:       cfg.seed + uint64(job),
			Options:    &client.RequestOptions{StateSim: &cfg.stateSim},
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	if _, err := newClient(); err != nil {
		return fmt.Errorf("loadgen: %w", err)
	}

	jobCh := make(chan int)
	timings := make([]jobTiming, cfg.jobs)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, _ := newClient() // base validated above
			for job := range jobCh {
				timings[job] = runOneJob(ctx, cl, job, reqFor(job), cfg.shots)
			}
		}()
	}
	for job := 0; job < cfg.jobs; job++ {
		jobCh <- job
	}
	close(jobCh)
	wg.Wait()
	elapsed := time.Since(start)

	// Tally and report.
	var durs []float64
	completed, dropped := 0, 0
	totalShots := 0
	for _, t := range timings {
		if t.err != nil || t.state != "done" {
			dropped++
			fmt.Printf("loadgen: job %d state=%s err=%v\n", t.job, t.state, t.err)
			continue
		}
		completed++
		totalShots += t.shots
		durs = append(durs, t.dur.Seconds())
	}
	sort.Float64s(durs)
	q := func(p float64) float64 {
		if len(durs) == 0 {
			return 0
		}
		i := int(p * float64(len(durs)-1))
		return durs[i]
	}
	jobsPerSec := float64(completed) / elapsed.Seconds()
	shotsPerSec := float64(totalShots) / elapsed.Seconds()
	fmt.Printf("loadgen: %d clients, %d jobs (%s-%d × %d shots) in %v\n",
		cfg.clients, cfg.jobs, cfg.workload, cfg.param, cfg.shots, elapsed.Round(time.Millisecond))
	fmt.Printf("loadgen: throughput %.1f jobs/s, %.0f shots/s; latency p50=%.0fms p95=%.0fms p99=%.0fms\n",
		jobsPerSec, shotsPerSec, 1000*q(0.50), 1000*q(0.95), 1000*q(0.99))
	fmt.Printf("loadgen: completed=%d dropped=%d admission-429s=%d\n", completed, dropped, rejects.Load())

	if dropped > 0 {
		return fmt.Errorf("loadgen: %d of %d jobs dropped", dropped, cfg.jobs)
	}
	if n := naked429.Load(); n > 0 {
		return fmt.Errorf("loadgen: %d 429 responses arrived without Retry-After", n)
	}
	if shotsPerSec <= 0 {
		return fmt.Errorf("loadgen: zero throughput")
	}

	// Determinism probe: resubmit job 0's request and require its result
	// bytes to match the burst's, byte for byte, despite different
	// co-tenancy.
	cl, _ := newClient() // base validated above
	rerun := runOneJob(ctx, cl, 0, reqFor(0), cfg.shots)
	if rerun.err != nil || rerun.state != "done" {
		return fmt.Errorf("loadgen: determinism probe failed to run: state=%s err=%v", rerun.state, rerun.err)
	}
	if rerun.resJSON != timings[0].resJSON {
		return fmt.Errorf("loadgen: determinism probe mismatch:\n burst: %s\n rerun: %s", timings[0].resJSON, rerun.resJSON)
	}
	fmt.Printf("loadgen: determinism probe ok (resubmitted job reproduced %d result bytes)\n", len(rerun.resJSON))
	return nil
}

// runSubmit is the -submit mode: one job, submitted and streamed to the
// end, its result JSON printed to stdout. The smoke scripts diff this
// output between a coordinator and a single node to assert bit-identical
// sharded execution.
func runSubmit(cfg loadgenConfig) error {
	cl, err := client.New(cfg.base,
		client.WithRetries(50),
		client.WithBackoff(25*time.Millisecond, 2*time.Second))
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	req := client.Request{
		Workload:   cfg.workload,
		Param:      cfg.param,
		Controller: "ARTERY",
		Shots:      cfg.shots,
		Seed:       cfg.seed,
		Options:    &client.RequestOptions{StateSim: &cfg.stateSim},
	}
	t := runOneJob(ctx, cl, 0, req, cfg.shots)
	if t.err != nil {
		return fmt.Errorf("submit: %w", t.err)
	}
	if t.state != "done" {
		return fmt.Errorf("submit: job ended %s", t.state)
	}
	fmt.Println(t.resJSON)
	return nil
}

// runOneJob submits one job, follows its stream to the end, and
// cross-checks the stream against the final result.
func runOneJob(ctx context.Context, cl *client.Client, job int, req client.Request, wantShots int) jobTiming {
	t := jobTiming{job: job}
	start := time.Now()
	st, err := cl.Submit(ctx, req)
	if err != nil {
		t.err = fmt.Errorf("submit: %w", err)
		return t
	}
	stream, err := cl.Stream(ctx, st.ID)
	if err != nil {
		t.err = fmt.Errorf("stream: %w", err)
		return t
	}
	defer stream.Close()
	events := 0
	for {
		_, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.err = fmt.Errorf("stream next: %w", err)
			return t
		}
		events++
	}
	t.dur = time.Since(start)
	end := stream.End()
	t.state = end.State
	if end.Error != "" {
		t.err = fmt.Errorf("job error: %s", end.Error)
		return t
	}
	if end.Result == nil {
		t.err = fmt.Errorf("job finished without a result")
		return t
	}
	t.shots = end.Result.Shots
	if events != end.Result.Shots {
		t.err = fmt.Errorf("streamed %d events for %d shots", events, end.Result.Shots)
		return t
	}
	if !end.Result.Canceled && end.Result.Shots != wantShots {
		t.err = fmt.Errorf("ran %d of %d shots without cancellation", end.Result.Shots, wantShots)
		return t
	}
	t.resJSON = resultJSON(end.Result)
	return t
}

// resultJSON renders a result deterministically for byte comparison.
func resultJSON(r *client.Result) string {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Sprintf("marshal error: %v", err)
	}
	return string(b)
}
