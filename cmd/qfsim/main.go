// Command qfsim runs one feedback workload end-to-end under a chosen
// feedback controller and prints a per-shot trace plus summary statistics.
//
// Usage:
//
//	qfsim [-workload name] [-param N] [-controller name] [-shots N] [-seed N]
//	      [-workers N] [-posterior N] [-trace FILE] [-metrics FILE] [-pprof FILE]
//
// Workloads: qrw, rcnot, dqt, rusqnn, reset, random, qec.
// Controllers: ARTERY (default), QubiC, HERQULES, "Salathe et al.",
// "Reuer et al.".
//
// -trace streams every shot's span events (classification, posterior
// windows, interconnect hops, stage latencies) as JSON Lines; -metrics
// writes Prometheus-style counters and histograms after the run; both
// accept "-" for stdout. -pprof writes a CPU profile. The former -trace N
// posterior print is now -posterior N.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"

	"artery"
	"artery/internal/circuit"
	"artery/internal/controller"
	"artery/internal/core"
	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/readout"
	"artery/internal/stats"
	"artery/internal/version"
)

// openSink resolves an output flag: "-" is stdout (no close), anything
// else is created as a file.
func openSink(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "qfsim: %v\n", err)
	os.Exit(2)
}

func main() {
	var (
		wlName   = flag.String("workload", "qrw", "workload: qrw|rcnot|dqt|rusqnn|reset|random|qec|eswap|msi|surface")
		backend  = flag.String("backend", "auto", "simulation backend: auto|state|stabilizer")
		loadPath = flag.String("load", "", "load a circuit from a QASM file instead of a named workload")
		prior    = flag.Float64("prior", 0.5, "branch-1 prior for every feedback site of a loaded circuit")
		param    = flag.Int("param", 5, "workload size parameter (steps/depth/distance/cycles/qubits/gates)")
		ctrlName = flag.String("controller", "ARTERY", "feedback controller")
		shots    = flag.Int("shots", 100, "number of shots")
		seed     = flag.Uint64("seed", 1, "random seed")
		workers  = flag.Int("workers", 0, "shot-level worker count (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")
		traceN   = flag.Int("posterior", 1, "print the posterior trace of N predicted shots")
		traceOut = flag.String("trace", "", "write the shot trace as JSON Lines to FILE (- for stdout)")
		metrics  = flag.String("metrics", "", "write Prometheus-style metrics to FILE (- for stdout)")
		profOut  = flag.String("pprof", "", "write a CPU profile to FILE")
		compare  = flag.Bool("compare", false, "run all controllers and compare")
		dumpQASM = flag.Bool("qasm", false, "print the workload circuit in QASM form and exit")
		timeline = flag.Bool("timeline", false, "print the workload's per-qubit schedule and exit")
		sequence = flag.Bool("sequence", false, "print a Figure-9-style sequence diagram of one shot and exit")
		showVer  = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Printf("qfsim %s\n", version.String())
		return
	}

	var wl *artery.Workload
	if *loadPath != "" {
		data, err := os.ReadFile(*loadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qfsim: %v\n", err)
			os.Exit(2)
		}
		c, err := circuit.ParseQASM(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "qfsim: %v\n", err)
			os.Exit(2)
		}
		priors := make([]float64, len(c.FeedbackSites()))
		for i := range priors {
			priors[i] = *prior
		}
		wl = &artery.Workload{Name: *loadPath, Circuit: c, SiteP1: priors}
		if err := wl.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "qfsim: %v\n", err)
			os.Exit(2)
		}
	} else if *wlName == "random" {
		// Random is the one workload outside the named registry: it is
		// addressed by (gates, seed), not (name, param).
		wl = artery.Random(*param, *seed)
	} else {
		var err error
		wl, err = artery.WorkloadByName(*wlName, *param)
		if err != nil {
			fmt.Fprintf(os.Stderr, "qfsim: %v\n", err)
			os.Exit(2)
		}
	}

	if *dumpQASM {
		fmt.Print(circuit.WriteQASM(wl.Circuit))
		return
	}
	if *timeline {
		fmt.Print(circuit.BuildTimeline(wl.Circuit).Render(50))
		return
	}
	if *sequence {
		printSequence(wl, *seed)
		return
	}

	opts := []artery.Option{artery.WithSeed(*seed), artery.WithWorkers(*workers), artery.WithBackend(*backend)}
	if *traceOut != "" {
		w, closeTrace, err := openSink(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer closeTrace()
		opts = append(opts, artery.WithTracing(w))
	}
	if *metrics != "" {
		opts = append(opts, artery.WithMetrics())
	}
	sys, err := artery.New(opts...)
	if err != nil {
		fatal(err)
	}
	if *metrics != "" {
		defer func() {
			w, closeMetrics, err := openSink(*metrics)
			if err != nil {
				fatal(err)
			}
			defer closeMetrics()
			if err := sys.WriteMetrics(w); err != nil {
				fatal(err)
			}
		}()
	}
	if *profOut != "" {
		f, err := os.Create(*profOut)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	fmt.Printf("workload %s: %d feedback sites over %d qubits\n\n",
		wl.Name, wl.NumFeedback(), wl.Circuit.NumQubits)

	for i := 0; i < *traceN; i++ {
		tr := sys.PredictShot(i%2, wl.SiteP1[0])
		fmt.Printf("shot %d: prepared |%d⟩, truth %d -> branch %d (committed=%v at %.2f µs)\n",
			i, tr.Prepared, tr.Truth, tr.Branch, tr.Committed, tr.TimeUs)
		for _, pt := range tr.Posterior {
			if pt[0] > tr.TimeUs {
				break
			}
			fmt.Printf("  t=%.2fµs  P_predict_1=%.3f\n", pt[0], pt[1])
		}
		fmt.Println()
	}

	if *compare {
		for _, r := range sys.Compare(wl, *shots) {
			fmt.Println(r)
		}
		return
	}
	rep, err := sys.RunWithContext(context.Background(), *ctrlName, wl, *shots)
	if err != nil {
		fatal(err)
	}
	fmt.Println(rep)
}

// printSequence executes one shot on a fresh ARTERY engine and prints the
// per-site sequence diagrams.
func printSequence(wl *artery.Workload, seed uint64) {
	rng := stats.NewRNG(seed)
	ch := readout.NewChannel(readout.DefaultCalibration(), readout.DefaultWinNs, readout.DefaultK, rng.Split())
	ctrl := controller.NewArtery(controller.DefaultUnits(), interconnect.PaperTopology(),
		predict.New(predict.DefaultConfig(), ch))
	eng := core.NewEngine(ctrl, ch, nil)
	eng.SimulateState = false
	sr := eng.RunShot(wl, rng.Split())
	analyses := circuit.AnalyzeAll(wl.Circuit)
	for i, out := range sr.Outcomes {
		a := analyses[i]
		fmt.Printf("-- feedback site %d (%s, read q%d) --\n", i, a.Case, a.ReadQubit)
		site := controller.Site{ID: i, Case: a.Case, ReadQubit: a.ReadQubit}
		fmt.Print(controller.FormatSequence(site, out, controller.ReadoutNs))
		fmt.Println()
	}
}
