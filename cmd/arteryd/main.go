// Command arteryd serves the ARTERY engine over HTTP/JSON: a bounded-queue
// job service with admission control, per-shot NDJSON streaming, and a
// Prometheus /metrics endpoint (see internal/server for the API).
//
// Usage:
//
//	arteryd [-addr host:port] [-addr-file FILE] [-queue N] [-max-jobs N]
//	        [-worker-budget N] [-max-shots N] [-drain-timeout D]
//	        [-data-dir DIR] [-fsync always|interval|never]
//	        [-checkpoint-shots N] [-retain N] [-version]
//	arteryd -coordinator -backends URL,URL,... [-shards N] [-shard-attempts N]
//	        [-health-timeout D] [-hedge=false] [-hedge-delay D] [common flags]
//
// -addr-file writes the resolved listen address (useful with -addr
// 127.0.0.1:0 for ephemeral ports, e.g. in the serve-smoke CI gate); it
// is removed again when the drain begins, so watchers of the file never
// route to a process that has stopped admitting.
// SIGTERM/SIGINT trigger a graceful drain: admission stops, in-flight
// jobs are canceled at their next shot-batch boundary and report their
// deterministic canceled prefix, then the process exits 0.
//
// -data-dir enables the durable job store (see internal/store): accepted
// jobs, merged per-shot events and results are journaled to a write-ahead
// log, finished jobs are served across restarts, and a job killed mid-run
// (even by SIGKILL or power loss) resumes at its last durable shot on the
// next boot — producing a result and event stream byte-identical to an
// uninterrupted run. Without -data-dir the server is fully in-memory,
// exactly as before.
//
// -coordinator turns the process into a scatter-gather coordinator over
// the listed backend arteryd nodes (see internal/cluster): it serves the
// same /v1/jobs API, splits each job's shots into contiguous ranges,
// fans them out, and merges the streams into a result byte-identical to
// a single-node run, failing shards over to surviving backends.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"artery/internal/cluster"
	"artery/internal/server"
	"artery/internal/store"
	"artery/internal/version"
)

// service is what main drives: a single-node server or a coordinator.
type service interface {
	Handler() http.Handler
	Start()
	Shutdown(ctx context.Context) error
}

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:7717", "listen address (port 0 picks an ephemeral port)")
		addrFile      = flag.String("addr-file", "", "write the resolved listen address to this file once serving")
		queueDepth    = flag.Int("queue", 64, "admission queue depth (submissions beyond it get 429 + Retry-After)")
		maxJobs       = flag.Int("max-jobs", 2, "concurrent job slots (dispatcher pool size)")
		workerBudget  = flag.Int("worker-budget", 0, "total shot-level worker budget shared across jobs (0 = GOMAXPROCS)")
		maxShots      = flag.Int("max-shots", 1_000_000, "per-request shot cap")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown drain budget")
		coordinator   = flag.Bool("coordinator", false, "run as a scatter-gather coordinator over -backends instead of executing jobs locally")
		backends      = flag.String("backends", "", "comma-separated backend arteryd base URLs (required with -coordinator)")
		shards        = flag.Int("shards", 0, "shot-range shards per job (0 = one per backend)")
		shardAttempts = flag.Int("shard-attempts", 3, "dispatch attempts per shard before the job fails (first try + failovers)")
		healthTimeout = flag.Duration("health-timeout", 0, "per-probe timeout for backend health checks (0 = derived from the health interval)")
		hedge         = flag.Bool("hedge", true, "hedge slow shards onto a second backend after the hedge delay")
		hedgeDelay    = flag.Duration("hedge-delay", 0, "fixed hedge delay (0 = adaptive, 2x the observed p95 shard time)")
		dataDir       = flag.String("data-dir", "", "durable job-store directory (empty = in-memory only)")
		fsyncPolicy   = flag.String("fsync", "interval", "journal fsync policy: always|interval|never")
		ckptShots     = flag.Int("checkpoint-shots", 256, "journal checkpoint cadence in merged shots per job")
		retain        = flag.Int("retain", 4096, "terminal jobs retained in the journal before compaction")
		showVersion   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Printf("arteryd %s\n", version.String())
		return
	}
	log.SetPrefix("arteryd: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	var st *store.Store
	if *dataDir != "" {
		policy, err := store.ParsePolicy(*fsyncPolicy)
		if err != nil {
			log.Fatalf("%v", err)
		}
		st, err = store.Open(store.Config{Dir: *dataDir, Fsync: policy, Retain: *retain})
		if err != nil {
			log.Fatalf("%v", err)
		}
		log.Printf("journal open at %s (fsync=%s, checkpoint every %d shots, retain %d): recovered %d jobs, truncated %d torn tails",
			*dataDir, policy, *ckptShots, *retain, st.RecoveredJobs(), st.TruncatedTails())
	}

	var srv service
	if *coordinator {
		var bases []string
		for _, b := range strings.Split(*backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				bases = append(bases, b)
			}
		}
		co, err := cluster.New(cluster.Config{
			Backends:          bases,
			Shards:            *shards,
			ShardAttempts:     *shardAttempts,
			QueueDepth:        *queueDepth,
			MaxConcurrentJobs: *maxJobs,
			MaxShots:          *maxShots,
			Store:             st,
			CheckpointShots:   *ckptShots,
			HealthTimeout:     *healthTimeout,
			DisableHedging:    !*hedge,
			HedgeDelay:        *hedgeDelay,
		})
		if err != nil {
			log.Fatalf("%v", err)
		}
		log.Printf("coordinating %d backends: %s", len(bases), strings.Join(bases, ", "))
		srv = co
	} else {
		srv = server.New(server.Config{
			QueueDepth:        *queueDepth,
			MaxConcurrentJobs: *maxJobs,
			WorkerBudget:      *workerBudget,
			MaxShots:          *maxShots,
			Store:             st,
			CheckpointShots:   *ckptShots,
		})
	}
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	resolved := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(resolved+"\n"), 0o644); err != nil {
			log.Fatalf("addr-file: %v", err)
		}
	}
	log.Printf("listening on %s (queue=%d, jobs=%d)", resolved, *queueDepth, *maxJobs)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		log.Printf("received %v, draining (budget %v)", sig, *drainTimeout)
		if *addrFile != "" {
			// Watchers of the addr file must stop routing here the moment
			// admission closes, not when the process finally exits.
			os.Remove(*addrFile)
		}
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
			hs.Close()
			os.Exit(1)
		}
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
			os.Exit(1)
		}
		if st != nil {
			if err := st.Close(); err != nil {
				log.Printf("journal close: %v", err)
			}
		}
		log.Printf("drained cleanly")
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}
}
