package artery

// bench_test.go holds one testing.B benchmark per table and figure of the
// paper's evaluation section. Each benchmark regenerates its experiment
// through the harness in internal/experiment and reports the headline
// quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Run with -v or the artery-bench command
// to see the rendered tables.

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"artery/internal/experiment"
)

// benchSuite is shared across benchmarks (channel calibration is the
// expensive setup step); experiments derive their own seeds.
var (
	benchSuiteOnce sync.Once
	benchSuiteVal  *experiment.Suite
)

func benchSuite() *experiment.Suite {
	benchSuiteOnce.Do(func() {
		benchSuiteVal = experiment.NewSuite(1, 30)
	})
	return benchSuiteVal
}

// cellF parses a numeric table cell ("2.15", "92.1%", "1.86x").
func cellF(b *testing.B, cell string) float64 {
	b.Helper()
	cell = strings.TrimSuffix(strings.TrimSuffix(cell, "%"), "x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("cannot parse cell %q: %v", cell, err)
	}
	return v
}

func runExperiment(b *testing.B, id string, metric func(*experiment.Table) (float64, string)) {
	s := benchSuite()
	gen := experiment.Registry[id]
	if gen == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var tab *experiment.Table
	for i := 0; i < b.N; i++ {
		tab = gen(s)
	}
	if metric != nil {
		v, name := metric(tab)
		b.ReportMetric(v, name)
	}
	if testing.Verbose() {
		b.Log("\n" + tab.String())
	}
}

// BenchmarkFigure2LatencyWall regenerates the latency-wall breakdown.
func BenchmarkFigure2LatencyWall(b *testing.B) {
	runExperiment(b, "fig2", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Rows[len(t.Rows)-1][1]), "wall-ns"
	})
}

// BenchmarkFigure4Motivation regenerates the prior/posterior shot study.
func BenchmarkFigure4Motivation(b *testing.B) {
	runExperiment(b, "fig4", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Cell(0, 2)), "P-read-1"
	})
}

// BenchmarkTable1FeedbackLatency regenerates the 5-method latency grid.
func BenchmarkTable1FeedbackLatency(b *testing.B) {
	runExperiment(b, "table1", func(t *experiment.Table) (float64, string) {
		// ARTERY QRW-1 cell: headline per-feedback latency.
		return cellF(b, t.Rows[4][1]) * 1000, "artery-qrw1-ns"
	})
}

// BenchmarkFigure12aQECLatency regenerates the QEC latency panel.
func BenchmarkFigure12aQECLatency(b *testing.B) {
	runExperiment(b, "fig12a", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Cell(0, 3)), "correction-speedup"
	})
}

// BenchmarkFigure12bLogicalError regenerates the LER-vs-cycles comparison.
func BenchmarkFigure12bLogicalError(b *testing.B) {
	runExperiment(b, "fig12b", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Rows[len(t.Rows)-1][3]), "ler-reduction"
	})
}

// BenchmarkFigure12cGoogleComparison regenerates the Sycamore comparison.
func BenchmarkFigure12cGoogleComparison(b *testing.B) {
	runExperiment(b, "fig12c", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Rows[len(t.Rows)-1][2]), "artery-ler-pct-c25"
	})
}

// BenchmarkFigure12dCodeDistance regenerates the latency-benefit model.
func BenchmarkFigure12dCodeDistance(b *testing.B) {
	runExperiment(b, "fig12d", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Rows[len(t.Rows)-1][1]), "crossover-distance"
	})
}

// BenchmarkFigure13Fidelity regenerates the fidelity comparison.
func BenchmarkFigure13Fidelity(b *testing.B) {
	runExperiment(b, "fig13", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Cell(0, 5)), "artery-fidelity-qrw15"
	})
}

// BenchmarkFigure14Ablation regenerates the feature ablation.
func BenchmarkFigure14Ablation(b *testing.B) {
	runExperiment(b, "fig14", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Cell(1, 5)) * 1000, "combined-qrw-ns"
	})
}

// BenchmarkFigure15aAccuracyVsTime regenerates the accuracy/time curve.
func BenchmarkFigure15aAccuracyVsTime(b *testing.B) {
	runExperiment(b, "fig15a", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Rows[len(t.Rows)-1][1]), "late-accuracy-pct"
	})
}

// BenchmarkFigure15bAccuracyDistribution regenerates the accuracy spread.
func BenchmarkFigure15bAccuracyDistribution(b *testing.B) {
	runExperiment(b, "fig15b", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Cell(0, 2)), "qec-mean-accuracy-pct"
	})
}

// BenchmarkTable2PulseSampling regenerates the compression evaluation.
func BenchmarkTable2PulseSampling(b *testing.B) {
	runExperiment(b, "table2", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Cell(0, 5)), "qec-combined-gbps"
	})
}

// BenchmarkFigure16WindowLength regenerates the window-length sweep.
func BenchmarkFigure16WindowLength(b *testing.B) {
	runExperiment(b, "fig16", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Cell(2, 1)) * 1000, "win30-latency-ns"
	})
}

// BenchmarkFigure17Threshold regenerates the threshold sweep.
func BenchmarkFigure17Threshold(b *testing.B) {
	runExperiment(b, "fig17", func(t *experiment.Table) (float64, string) {
		return cellF(b, t.Cell(4, 1)) * 1000, "theta91-latency-ns"
	})
}

// BenchmarkPredictorShot measures the cost of one end-to-end predicted
// shot (pulse synthesis + demodulation + table lookups + Bayesian fusion),
// the per-shot work the FPGA performs in O(1) per window.
func BenchmarkPredictorShot(b *testing.B) {
	sys := MustNew(WithSeed(1), WithoutStateSim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.PredictShot(i%2, 0.5)
	}
}

// BenchmarkEngineQRWShot measures one full engine shot with state
// simulation (gates + noise channels + feedback).
func BenchmarkEngineQRWShot(b *testing.B) {
	sys := MustNew(WithSeed(1))
	wl := QRW(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Run(wl, 1)
	}
}

// BenchmarkEngineRun measures Engine.Run's multi-shot throughput
// (shots/sec; allocs/op via -benchmem) at serial and parallel worker
// settings for both parallel execution modes: a shot-safe baseline with
// state simulation (whole shots fan out) and the ARTERY controller
// without it (the synth/feedback pipeline). Worker counts above
// GOMAXPROCS only add speedup on multi-core hosts; results are
// bit-identical at every setting either way.
func BenchmarkEngineRun(b *testing.B) {
	const shotsPerRun = 100
	cases := []struct {
		name     string
		ctrl     string
		stateSim bool
	}{
		{"baseline-sim", "QubiC", true},
		{"artery-nosim", "ARTERY", false},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 8} {
			name := c.name + "/workers=" + strconv.Itoa(workers)
			b.Run(name, func(b *testing.B) {
				sys, err := FromOptions(Options{Seed: 1, DisableStateSim: !c.stateSim, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				wl := QRW(5)
				sys.RunWith(c.ctrl, wl, 2) // warm calibration + analysis caches
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.RunWith(c.ctrl, wl, shotsPerRun)
				}
				b.StopTimer()
				shots := float64(b.N * shotsPerRun)
				b.ReportMetric(shots/b.Elapsed().Seconds(), "shots/s")
			})
		}
	}
}

// Ablation benchmarks for the repository's own design decisions
// (DESIGN.md): run with -bench 'Ablation'.

func runAblation(b *testing.B, id string) {
	s := benchSuite()
	gen := experiment.ExtraRegistry[id]
	if gen == nil {
		b.Fatalf("unknown ablation %s", id)
	}
	var tab *experiment.Table
	for i := 0; i < b.N; i++ {
		tab = gen(s)
	}
	if testing.Verbose() {
		b.Log("\n" + tab.String())
	}
}

// BenchmarkAblationStateTable compares the single time-invariant trajectory
// table against the time-bucketed design.
func BenchmarkAblationStateTable(b *testing.B) { runAblation(b, "abl-table") }

// BenchmarkAblationSmoothing sweeps the table's Beta smoothing mass.
func BenchmarkAblationSmoothing(b *testing.B) { runAblation(b, "abl-smooth") }

// BenchmarkAblationInterconnect compares hierarchical routing to a flat bus.
func BenchmarkAblationInterconnect(b *testing.B) { runAblation(b, "abl-route") }

// BenchmarkAblationCodecOrder compares combined-codec stage orders.
func BenchmarkAblationCodecOrder(b *testing.B) { runAblation(b, "abl-codec") }
