package api

import (
	"math"
	"testing"
)

func fptr(f float64) *float64 { return &f }

func TestEventsEqual(t *testing.T) {
	base := func() ShotEvent {
		return ShotEvent{
			Shot: 3, LatencyNs: 1500, Sites: 3, Commits: 2, Correct: 2,
			Fidelity: fptr(0.75),
			Stages:   []StageDelta{{Stage: "decision", Ns: 210}, {Stage: "transit", Ns: 4}},
		}
	}
	if a, b := base(), base(); !EventsEqual(a, b) {
		t.Fatal("identical events reported unequal")
	}
	mutations := map[string]func(*ShotEvent){
		"shot":           func(e *ShotEvent) { e.Shot++ },
		"latency":        func(e *ShotEvent) { e.LatencyNs++ },
		"sites":          func(e *ShotEvent) { e.Sites++ },
		"commits":        func(e *ShotEvent) { e.Commits-- },
		"correct":        func(e *ShotEvent) { e.Correct-- },
		"fallbacks":      func(e *ShotEvent) { e.Fallbacks++ },
		"fidelity-value": func(e *ShotEvent) { e.Fidelity = fptr(0.5) },
		"fidelity-nil":   func(e *ShotEvent) { e.Fidelity = nil },
		"stage-count":    func(e *ShotEvent) { e.Stages = e.Stages[:1] },
		"stage-delta":    func(e *ShotEvent) { e.Stages[0].Ns++ },
		"stage-name":     func(e *ShotEvent) { e.Stages[0].Stage = "transit" },
	}
	for name, mutate := range mutations {
		a, b := base(), base()
		mutate(&b)
		if EventsEqual(a, b) {
			t.Errorf("%s: mutated event reported equal", name)
		}
	}
}

func TestValidateEvent(t *testing.T) {
	good := ShotEvent{
		Shot: 0, LatencyNs: 1500, Sites: 3, Commits: 2, Correct: 1,
		Stages: []StageDelta{{Stage: "decision", Ns: 210}},
	}
	if err := ValidateEvent(good); err != nil {
		t.Fatalf("clean event rejected: %v", err)
	}
	bad := map[string]ShotEvent{
		"negative-shot":     {Shot: -1},
		"negative-latency":  {LatencyNs: -3},
		"nan-latency":       {LatencyNs: math.NaN()},
		"negative-counter":  {Sites: -1},
		"commits>sites":     {Sites: 1, Commits: 2},
		"correct>commits":   {Sites: 3, Commits: 1, Correct: 2},
		"fidelity-domain":   {Fidelity: fptr(1.5)},
		"fidelity-nan":      {Fidelity: fptr(math.NaN())},
		"corrupt-stage-key": {Stages: []StageDelta{{Stage: "deci�ion", Ns: 1}}},
		"negative-delta":    {Stages: []StageDelta{{Stage: "decision", Ns: -1}}},
	}
	for name, ev := range bad {
		if err := ValidateEvent(ev); err == nil {
			t.Errorf("%s: damaged event validated", name)
		}
	}
}

func TestValidateResult(t *testing.T) {
	good := &Result{Workload: "QRW-3", Controller: "ARTERY", Shots: 10, MeanLatencyUs: 2.0, Accuracy: 0.9, CommitRate: 1}
	if err := ValidateResult(good); err != nil {
		t.Fatalf("clean result rejected: %v", err)
	}
	bad := map[string]*Result{
		"nil":            nil,
		"corrupt-string": {Workload: "QRW�3"},
		"negative-shots": {Shots: -1},
		"nan-latency":    {MeanLatencyUs: math.NaN()},
		"ratio-domain":   {Accuracy: 1.2},
		"unknown-stage":  {Stages: []Stage{{Stage: "bogus"}}},
	}
	for name, res := range bad {
		if err := ValidateResult(res); err == nil {
			t.Errorf("%s: damaged result validated", name)
		}
	}
}

func TestValidateRequestDeadline(t *testing.T) {
	req := Request{Workload: "qrw", Param: 3, Shots: 4, DeadlineMs: -1}
	if _, err := ValidateRequest(req, 1000); err == nil {
		t.Fatal("negative deadline_ms validated")
	}
	req.DeadlineMs = 250
	if _, err := ValidateRequest(req, 1000); err != nil {
		t.Fatalf("valid deadline_ms rejected: %v", err)
	}
}
