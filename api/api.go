// Package api is the single source of truth for arteryd's job-service
// wire schema: the request/response/stream documents exchanged by the
// server (internal/server), the coordinator (internal/cluster) and the Go
// client (client). All three import these types, so the coordinator, a
// backend and a client cannot drift — a field added here is visible, with
// identical JSON tags, to every party at once.
//
// # Schema
//
// Version 3 (this package):
//
//   - Request gains the optional shot-range fields "shot_offset" and
//     "stream_stages". A job with shot_offset=O and shots=S executes the
//     global shot range [O, O+S) of a conceptually larger run: per-shot
//     RNG streams are drawn for global indices, so contiguous ranges
//     recombine bit-identically to a single unsharded run (the
//     scatter-gather coordinator's contract). Servers predating this
//     schema reject the new fields with a clear 400 (their decoders
//     disallow unknown fields).
//   - ShotEvent gains the optional "stages" array: the shot's ordered
//     per-stage latency deltas, emitted only when the request set
//     "stream_stages". Replaying every shot's deltas in shot order
//     reproduces the run's stage table bit-for-bit; the coordinator uses
//     this to merge sharded streams into a byte-identical result.
//
// Version 4 (this package):
//
//   - Request gains the optional "deadline_ms" field: a wall-clock bound
//     on the job measured from admission. Servers predating this schema
//     reject the field with a clear 400.
//
// Version 2 and earlier lived in internal/server; the old names remain
// importable there (and from client) as deprecated aliases of these types.
package api

import (
	"fmt"

	"artery"
)

// Request is the POST /v1/jobs body: which workload to run, under which
// controller, for how many shots, from which seed.
type Request struct {
	// Workload names a registered benchmark (see artery.WorkloadNames:
	// qrw, rcnot, dqt, rusqnn, reset, qec, eswap, msi, surface).
	Workload string `json:"workload"`
	// Param is the workload size parameter
	// (steps/depth/distance/cycles/qubits).
	Param int `json:"param"`
	// Controller selects the feedback controller (default "ARTERY"; see
	// artery.ControllerNames).
	Controller string `json:"controller,omitempty"`
	// Shots is the number of shots to execute (1 ..= the server's MaxShots).
	Shots int `json:"shots"`
	// ShotOffset, when non-zero, selects range execution: the job runs the
	// global shot range [ShotOffset, ShotOffset+Shots) of a conceptually
	// larger run, drawing per-shot RNG streams for global indices so that
	// contiguous ranges of the same request recombine bit-identically to
	// one unsharded run. Streamed ShotEvent.Shot values are global indices.
	// Servers predating schema v3 reject this field with a 400.
	ShotOffset int `json:"shot_offset,omitempty"`
	// StreamStages asks the server to include each streamed shot's ordered
	// per-stage latency deltas (ShotEvent.Stages) — the extra record a
	// scatter-gather coordinator needs to rebuild the merged stage table
	// bit-for-bit. Off by default: the deltas roughly double event size.
	StreamStages bool `json:"stream_stages,omitempty"`
	// DeadlineMs, when non-zero, bounds the job's total wall time in
	// milliseconds, measured from admission (queue wait included). A job
	// whose deadline expires before it starts fails without running; one
	// that expires mid-run ends as a deterministic canceled prefix, exactly
	// like a graceful drain. Servers predating schema v4 reject this field
	// with a 400.
	DeadlineMs int `json:"deadline_ms,omitempty"`
	// Seed drives every stochastic component of the job's private system;
	// identical requests with identical seeds produce byte-identical
	// results at any worker budget. Zero selects seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// Options carries the optional calibration settings.
	Options *RequestOptions `json:"options,omitempty"`
}

// RequestOptions mirrors the artery.Options knobs a wire request may set.
// Zero values select the paper's evaluation configuration.
type RequestOptions struct {
	WindowNs     float64 `json:"window_ns,omitempty"`
	HistoryDepth int     `json:"history_depth,omitempty"`
	Theta        float64 `json:"theta,omitempty"`
	// Mode selects the predictor features: "combined" (default),
	// "history" or "trajectory".
	Mode string `json:"mode,omitempty"`
	// StateSim enables the per-shot fidelity simulation (default true, as
	// in the library). Disable for latency-only sweeps.
	StateSim            *bool   `json:"state_sim,omitempty"`
	DynamicalDecoupling bool    `json:"dynamical_decoupling,omitempty"`
	QuasiStaticSigma    float64 `json:"quasi_static_sigma,omitempty"`
	// Backend selects the simulation backend: "auto" (default), "state"
	// or "stabilizer". An unknown name, or an explicit backend the
	// workload cannot run on, is rejected at admission time.
	Backend string `json:"backend,omitempty"`
}

// ModeByName maps the wire predictor-mode names onto artery's constants.
var ModeByName = map[string]artery.PredictorMode{
	"":           artery.ModeCombined,
	"combined":   artery.ModeCombined,
	"history":    artery.ModeHistory,
	"trajectory": artery.ModeTrajectory,
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Terminal reports whether state is one of the three end states.
func Terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// JobStatus is the GET /v1/jobs/{id} body (and the POST response).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Request echoes the submitted request, so a client can resubmit a
	// job (same seed → byte-identical result) without keeping it around.
	Request Request `json:"request"`
	// ShotsStreamed is the number of per-shot updates committed so far.
	ShotsStreamed int `json:"shots_streamed"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set once the job reaches a terminal state with a result
	// (done — including canceled-prefix results after a drain).
	Result *Result `json:"result,omitempty"`
	// ElapsedSec is the job's wall time so far (queue wait + run).
	ElapsedSec float64 `json:"elapsed_sec"`
}

// Result is the wire form of an artery.Report. Fidelity is a pointer so
// the NaN of latency-only runs serializes as null (encoding/json rejects
// NaN), keeping result bytes deterministic and parseable.
type Result struct {
	Workload      string   `json:"workload"`
	Controller    string   `json:"controller"`
	Shots         int      `json:"shots"`
	MeanLatencyUs float64  `json:"mean_latency_us"`
	Accuracy      float64  `json:"accuracy"`
	CommitRate    float64  `json:"commit_rate"`
	Fidelity      *float64 `json:"fidelity"`
	Stages        []Stage  `json:"stages,omitempty"`
	// Canceled marks a deterministic canceled prefix: the run stopped
	// early (graceful drain), and the aggregates cover the Shots merged
	// shots.
	Canceled bool `json:"canceled,omitempty"`
}

// Stage is one row of the per-stage latency breakdown.
type Stage struct {
	Stage   string  `json:"stage"`
	Count   int     `json:"count"`
	TotalNs float64 `json:"total_ns"`
	MeanNs  float64 `json:"mean_ns"`
}

// ShotEvent is one NDJSON line of GET /v1/jobs/{id}/stream: one committed
// shot, in shot order. Fidelity is null when state simulation is off.
// Shot is the global shot index (offset-relative for range jobs).
type ShotEvent struct {
	Shot      int      `json:"shot"`
	LatencyNs float64  `json:"latency_ns"`
	Fidelity  *float64 `json:"fidelity,omitempty"`
	Sites     int      `json:"sites"`
	Commits   int      `json:"commits"`
	Correct   int      `json:"correct"`
	Fallbacks int      `json:"fallbacks,omitempty"`
	// Stages holds the shot's ordered per-stage latency deltas, present
	// only when the request set StreamStages (schema v3).
	Stages []StageDelta `json:"stages,omitempty"`
}

// StageDelta is one ordered per-stage latency delta of a streamed shot:
// replaying count[stage]++ / total[stage] += ns over a run's shots in
// shot order reproduces the run's Result.Stages table bit-for-bit.
type StageDelta struct {
	Stage string  `json:"stage"`
	Ns    float64 `json:"ns"`
}

// StreamEnd is the terminal NDJSON line of a stream: the job's final
// state and result.
type StreamEnd struct {
	Done   bool    `json:"done"`
	State  string  `json:"state"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// Code types the error machine-readably where the status alone is
	// ambiguous. Today: CodeEvicted on a 410 for a job id that existed
	// but was evicted from memory (and, with no store configured or after
	// compaction, is gone for good) — distinguishable from a 404 for an
	// id that never existed.
	Code string `json:"code,omitempty"`
	// RetryAfterSec echoes the Retry-After header of 429 responses, for
	// clients that prefer the body.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// CodeEvicted marks a 410 Gone: the job id was issued by this server but
// its record has since been evicted.
const CodeEvicted = "evicted"

// ResultFrom converts a finished run's Report to its wire form.
func ResultFrom(rep artery.Report) *Result {
	r := &Result{
		Workload:      rep.Workload,
		Controller:    rep.Controller,
		Shots:         rep.Shots,
		MeanLatencyUs: rep.MeanLatencyUs,
		Accuracy:      rep.Accuracy,
		CommitRate:    rep.CommitRate,
		Fidelity:      FloatPtr(rep.Fidelity),
		Canceled:      rep.Canceled,
	}
	for _, st := range rep.Stages {
		r.Stages = append(r.Stages, Stage{Stage: st.Stage, Count: st.Count, TotalNs: st.TotalNs, MeanNs: st.MeanNs})
	}
	return r
}

// EventFrom converts a streaming ShotUpdate to its wire form. withStages
// controls whether the per-stage latency deltas ride along (StreamStages).
func EventFrom(u artery.ShotUpdate, withStages bool) ShotEvent {
	ev := ShotEvent{
		Shot:      u.Shot,
		LatencyNs: u.LatencyNs,
		Fidelity:  FloatPtr(u.Fidelity),
		Sites:     u.Sites,
		Commits:   u.Commits,
		Correct:   u.Correct,
		Fallbacks: u.Fallbacks,
	}
	if withStages {
		ev.Stages = make([]StageDelta, len(u.Stages))
		for i, p := range u.Stages {
			ev.Stages[i] = StageDelta{Stage: p.Stage, Ns: p.Ns}
		}
	}
	return ev
}

// FloatPtr maps NaN to nil (JSON null) and everything else to &v.
func FloatPtr(v float64) *float64 {
	if v != v {
		return nil
	}
	return &v
}

// ValidateRequest checks a request at admission time — workload,
// controller, shot-range bounds and option ranges all fail fast (a 400)
// instead of a failed job. maxShots bounds the job's global shot extent
// (ShotOffset+Shots). It returns the workload built during validation so
// the admission path constructs it exactly once.
func ValidateRequest(req Request, maxShots int) (*artery.Workload, error) {
	wl, err := artery.WorkloadByName(req.Workload, req.Param)
	if err != nil {
		return nil, err
	}
	ctrl := req.Controller
	if ctrl == "" {
		ctrl = "ARTERY"
	}
	known := false
	for _, name := range artery.ControllerNames() {
		if name == ctrl {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("unknown controller %q (known: %v)", ctrl, artery.ControllerNames())
	}
	if req.Shots < 1 || req.Shots > maxShots {
		return nil, fmt.Errorf("shots must lie in [1, %d], got %d", maxShots, req.Shots)
	}
	if req.ShotOffset < 0 {
		return nil, fmt.Errorf("shot_offset must be non-negative, got %d", req.ShotOffset)
	}
	// Overflow-safe form of ShotOffset+Shots > maxShots: Shots is in
	// [1, maxShots] here, so the subtraction cannot wrap, while a huge
	// offset would wrap the sum negative and slip past the cap.
	if req.ShotOffset > maxShots-req.Shots {
		return nil, fmt.Errorf("shot range (offset %d + %d shots) exceeds the %d-shot cap", req.ShotOffset, req.Shots, maxShots)
	}
	if req.DeadlineMs < 0 {
		return nil, fmt.Errorf("deadline_ms must be non-negative, got %d", req.DeadlineMs)
	}
	lib := artery.Options{Seed: req.Seed}
	if o := req.Options; o != nil {
		mode, ok := ModeByName[o.Mode]
		if !ok {
			return nil, fmt.Errorf("unknown predictor mode %q (combined|history|trajectory)", o.Mode)
		}
		lib.WindowNs = o.WindowNs
		lib.HistoryDepth = o.HistoryDepth
		lib.Theta = o.Theta
		lib.Mode = mode
		lib.QuasiStaticSigma = o.QuasiStaticSigma
		lib.Backend = o.Backend
	}
	if err := artery.ValidateOptions(lib); err != nil {
		return nil, err
	}
	return wl, nil
}
