package api

import (
	"fmt"

	"artery"
	"artery/internal/trace"
)

// Merger folds per-shot events into a Result using the exact arithmetic
// of the engine's merge path (internal/core.run) and the facade's report
// assembly: sum-then-divide means, integer accuracy and commit-rate
// ratios, per-stage count/total accumulators rendered in stage-enum
// order omitting absent stages. Events must be added in global shot
// order; Go's float64 addition is deterministic, so the fold equals the
// single-node fold bit-for-bit.
//
// Two subsystems rely on that bit-identity: the scatter-gather
// coordinator (internal/cluster), which re-folds sharded event streams
// into a result byte-identical to a single node's, and the durable job
// store's resume path (internal/server + internal/store), which stitches
// a crashed job's journaled event prefix onto its RunRange continuation
// and must reproduce the bytes of an uninterrupted run.
type Merger struct {
	workload, controller string
	n                    int
	latSum               float64
	fidSum               float64
	fidN                 int
	sites, commits       int
	correct              int
	stageCount           [trace.NumStages]int
	stageTotal           [trace.NumStages]float64
}

// NewMerger starts a fold for one request. The workload and controller
// names begin as the request's canonical spellings — the fallback for
// results that finish before any executed slice reports its own names
// (empty canceled prefixes) — and SetNames overrides them with an
// executed slice's result document.
func NewMerger(req Request) *Merger {
	ctrl := req.Controller
	if ctrl == "" {
		ctrl = "ARTERY"
	}
	return &Merger{workload: WorkloadName(req), controller: ctrl}
}

// SetNames adopts the canonical workload/controller strings from an
// executed slice's result document.
func (m *Merger) SetNames(res *Result) {
	m.workload, m.controller = res.Workload, res.Controller
}

// Merged returns how many events have been folded so far.
func (m *Merger) Merged() int { return m.n }

// Add folds one event, replaying the engine merge path's per-shot
// mutations in order. The event must carry its per-stage latency deltas
// (StreamStages wire form / journaled form); one without them cannot
// rebuild the stage table and is a hard error.
func (m *Merger) Add(ev ShotEvent) error {
	m.n++
	m.latSum += ev.LatencyNs
	if ev.Fidelity != nil {
		m.fidSum += *ev.Fidelity
		m.fidN++
	}
	m.sites += ev.Sites
	m.commits += ev.Commits
	m.correct += ev.Correct
	if len(ev.Stages) == 0 {
		return fmt.Errorf("api: event for shot %d carries no stage deltas (source predates the stream_stages schema?)", ev.Shot)
	}
	for _, d := range ev.Stages {
		st, ok := trace.StageFromName(d.Stage)
		if !ok {
			return fmt.Errorf("api: event for shot %d names unknown stage %q", ev.Shot, d.Stage)
		}
		m.stageCount[st]++
		m.stageTotal[st] += d.Ns
	}
	return nil
}

// Result renders the fold, mirroring core.run's finalization and
// ResultFrom's wire conversion.
func (m *Merger) Result(canceled bool) *Result {
	res := &Result{
		Workload:   m.workload,
		Controller: m.controller,
		Shots:      m.n,
		Accuracy:   1, // like the engine: no commits means no mispredicts
		Canceled:   canceled,
	}
	if m.n > 0 {
		res.MeanLatencyUs = (m.latSum / float64(m.n)) / 1000
	}
	if m.commits > 0 {
		res.Accuracy = float64(m.correct) / float64(m.commits)
	}
	if m.sites > 0 {
		res.CommitRate = float64(m.commits) / float64(m.sites)
	}
	if m.fidN > 0 {
		mean := m.fidSum / float64(m.fidN)
		res.Fidelity = &mean
	}
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		if m.stageCount[st] == 0 {
			continue
		}
		res.Stages = append(res.Stages, Stage{
			Stage:   st.String(),
			Count:   m.stageCount[st],
			TotalNs: m.stageTotal[st],
			MeanNs:  m.stageTotal[st] / float64(m.stageCount[st]),
		})
	}
	return res
}

// WorkloadName resolves the canonical workload name for a validated
// request (result documents carry the workload's Name, not the request
// spelling).
func WorkloadName(req Request) string {
	if wl, err := artery.WorkloadByName(req.Workload, req.Param); err == nil {
		return wl.Name
	}
	return req.Workload
}

// TrimStages renders an event as a public stream emits it: the stage
// deltas ride along only when the subscriber asked for them. Journaled
// and shard-streamed events always carry stages (the merge fold needs
// them); servers trim them at the serving edge.
func TrimStages(ev ShotEvent, withStages bool) ShotEvent {
	if !withStages {
		ev.Stages = nil
	}
	return ev
}
