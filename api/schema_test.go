package api

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"artery"
)

// TestRequestRoundTrip locks the wire tags, including the schema-v3
// range fields, and checks the zero-valued optionals stay off the wire.
func TestRequestRoundTrip(t *testing.T) {
	req := Request{
		Workload: "qrw", Param: 3, Controller: "ARTERY",
		Shots: 10, ShotOffset: 40, StreamStages: true, Seed: 7,
	}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"shot_offset":40`, `"stream_stages":true`, `"workload":"qrw"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("encoded request %s missing %s", b, want)
		}
	}
	var back Request
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != req {
		t.Errorf("round trip %+v != %+v", back, req)
	}
	// The range fields are omitempty: a v2-style request body stays v2.
	b, _ = json.Marshal(Request{Workload: "qrw", Param: 3, Shots: 10})
	if strings.Contains(string(b), "shot_offset") || strings.Contains(string(b), "stream_stages") {
		t.Errorf("zero-valued v3 fields leaked into %s", b)
	}
}

// TestOldServersRejectRangeFields documents the compatibility story: a
// pre-v3 server decodes requests with DisallowUnknownFields, so the new
// fields produce a clear 400-grade error instead of silent truncation.
func TestOldServersRejectRangeFields(t *testing.T) {
	// The v2 request shape, as an old server's decoder saw it.
	type requestV2 struct {
		Workload   string          `json:"workload"`
		Param      int             `json:"param"`
		Controller string          `json:"controller,omitempty"`
		Shots      int             `json:"shots"`
		Seed       uint64          `json:"seed,omitempty"`
		Options    *RequestOptions `json:"options,omitempty"`
	}
	b, _ := json.Marshal(Request{Workload: "qrw", Param: 3, Shots: 10, ShotOffset: 5})
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var old requestV2
	err := dec.Decode(&old)
	if err == nil || !strings.Contains(err.Error(), "shot_offset") {
		t.Fatalf("old decoder accepted a v3 request (err=%v); the schema bump would be silent", err)
	}
}

// TestEventFromStages checks the stage deltas ride along only when
// requested, preserving order.
func TestEventFromStages(t *testing.T) {
	u := artery.ShotUpdate{
		Shot: 4, LatencyNs: 1800, Fidelity: math.NaN(), Sites: 2, Commits: 1, Correct: 1,
		Stages: []artery.StagePoint{{Stage: "payload", Ns: 100}, {Stage: "decision", Ns: 700}},
	}
	ev := EventFrom(u, true)
	if ev.Fidelity != nil {
		t.Errorf("NaN fidelity encoded as %v, want nil", *ev.Fidelity)
	}
	if len(ev.Stages) != 2 || ev.Stages[0] != (StageDelta{Stage: "payload", Ns: 100}) || ev.Stages[1] != (StageDelta{Stage: "decision", Ns: 700}) {
		t.Errorf("stage deltas %+v lost order or values", ev.Stages)
	}
	if got := EventFrom(u, false); got.Stages != nil {
		t.Errorf("withStages=false still carries %+v", got.Stages)
	}
	b, _ := json.Marshal(EventFrom(u, false))
	if strings.Contains(string(b), "stages") {
		t.Errorf("stage-free event %s leaks a stages key", b)
	}
}

// TestValidateRequestBounds exercises the admission checks, range bounds
// included.
func TestValidateRequestBounds(t *testing.T) {
	base := Request{Workload: "qrw", Param: 3, Shots: 10}
	if _, err := ValidateRequest(base, 100); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(r *Request)
	}{
		{"unknown workload", func(r *Request) { r.Workload = "bogus" }},
		{"unknown controller", func(r *Request) { r.Controller = "SkyNet" }},
		{"zero shots", func(r *Request) { r.Shots = 0 }},
		{"over cap", func(r *Request) { r.Shots = 101 }},
		{"negative offset", func(r *Request) { r.ShotOffset = -1 }},
		{"range over cap", func(r *Request) { r.ShotOffset = 95 }},
		{"offset overflows the sum", func(r *Request) { r.ShotOffset = math.MaxInt }},
		{"offset wraps the sum to the cap", func(r *Request) { r.ShotOffset = math.MaxInt - 5 }},
	}
	for _, tc := range cases {
		req := base
		tc.mut(&req)
		if _, err := ValidateRequest(req, 100); err == nil {
			t.Errorf("%s: request validated", tc.name)
		}
	}
	// A range that fits the cap is fine.
	req := base
	req.ShotOffset = 90
	if _, err := ValidateRequest(req, 100); err != nil {
		t.Errorf("in-cap range rejected: %v", err)
	}
}
