package api

import (
	"fmt"
	"strings"

	"artery/internal/trace"
)

// This file holds the event/result integrity checks used by readers of
// untrusted streams — primarily the scatter-gather coordinator, whose
// shard clients may sit behind degraded links (internal/chaos models
// them). The service speaks ASCII JSON, so any corruption that sets a
// byte's high bit either breaks JSON framing outright (a decode error) or
// lands inside a string and decodes as the U+FFFD replacement rune; these
// checks catch the latter plus out-of-domain numeric damage, so a corrupt
// frame is always demoted to a stream failure (and retried) instead of
// being folded into a merge.

// EventsEqual reports whether two shot events are identical, stage deltas
// included. The coordinator uses it to assert the bit-identity contract
// when two attempts of the same shard (a hedge, or a replay after
// failover) both deliver the same ordinal: differing bytes mean a
// non-deterministic backend, which must fail the job loudly rather than
// silently pick a winner.
func EventsEqual(a, b ShotEvent) bool {
	if a.Shot != b.Shot || a.LatencyNs != b.LatencyNs ||
		a.Sites != b.Sites || a.Commits != b.Commits ||
		a.Correct != b.Correct || a.Fallbacks != b.Fallbacks {
		return false
	}
	if (a.Fidelity == nil) != (b.Fidelity == nil) {
		return false
	}
	if a.Fidelity != nil && *a.Fidelity != *b.Fidelity {
		return false
	}
	if len(a.Stages) != len(b.Stages) {
		return false
	}
	for i := range a.Stages {
		if a.Stages[i] != b.Stages[i] {
			return false
		}
	}
	return true
}

// ValidateEvent checks one streamed shot event for transport damage that
// survived JSON decoding: a corrupted string decodes to U+FFFD (caught
// here via the stage-name registry), and corrupted digits that stayed
// digits show up as out-of-domain counters.
func ValidateEvent(ev ShotEvent) error {
	if ev.Shot < 0 {
		return fmt.Errorf("api: event shot index %d is negative", ev.Shot)
	}
	if ev.LatencyNs < 0 || ev.LatencyNs != ev.LatencyNs {
		return fmt.Errorf("api: event for shot %d has invalid latency %v", ev.Shot, ev.LatencyNs)
	}
	if ev.Sites < 0 || ev.Commits < 0 || ev.Correct < 0 || ev.Fallbacks < 0 {
		return fmt.Errorf("api: event for shot %d has negative counters", ev.Shot)
	}
	if ev.Commits > ev.Sites || ev.Correct > ev.Commits {
		return fmt.Errorf("api: event for shot %d has inconsistent counters (sites %d, commits %d, correct %d)",
			ev.Shot, ev.Sites, ev.Commits, ev.Correct)
	}
	if ev.Fidelity != nil && (*ev.Fidelity < 0 || *ev.Fidelity > 1 || *ev.Fidelity != *ev.Fidelity) {
		return fmt.Errorf("api: event for shot %d has fidelity %v outside [0, 1]", ev.Shot, *ev.Fidelity)
	}
	for _, d := range ev.Stages {
		if _, ok := trace.StageFromName(d.Stage); !ok {
			return fmt.Errorf("api: event for shot %d names unknown stage %q", ev.Shot, d.Stage)
		}
		if d.Ns < 0 || d.Ns != d.Ns {
			return fmt.Errorf("api: event for shot %d has invalid stage delta %v", ev.Shot, d.Ns)
		}
	}
	return nil
}

// ValidateResult checks a terminal result document the same way: known
// workload-free string fields must be clean ASCII (no replacement runes),
// stage names must be registered, and the scalar aggregates must lie in
// their domains.
func ValidateResult(res *Result) error {
	if res == nil {
		return fmt.Errorf("api: terminal record carries no result")
	}
	for _, s := range []string{res.Workload, res.Controller} {
		if strings.ContainsRune(s, '�') {
			return fmt.Errorf("api: result string %q carries a replacement rune (corrupt frame?)", s)
		}
	}
	if res.Shots < 0 {
		return fmt.Errorf("api: result shot count %d is negative", res.Shots)
	}
	if res.MeanLatencyUs < 0 || res.MeanLatencyUs != res.MeanLatencyUs {
		return fmt.Errorf("api: result mean latency %v is invalid", res.MeanLatencyUs)
	}
	if res.Accuracy < 0 || res.Accuracy > 1 || res.CommitRate < 0 || res.CommitRate > 1 {
		return fmt.Errorf("api: result ratios outside [0, 1] (accuracy %v, commit rate %v)", res.Accuracy, res.CommitRate)
	}
	for _, st := range res.Stages {
		if _, ok := trace.StageFromName(st.Stage); !ok {
			return fmt.Errorf("api: result names unknown stage %q", st.Stage)
		}
	}
	return nil
}
