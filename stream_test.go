package artery_test

import (
	"context"
	"math"
	"reflect"
	"testing"

	"artery"
)

// TestRunStreamConsistentWithReport checks the per-shot update stream
// partitions the final Report exactly: event count equals shots, the
// stream's running latency sum reproduces the report mean bit-for-bit
// (same merge-order arithmetic), and the commit/accuracy tallies agree.
func TestRunStreamConsistentWithReport(t *testing.T) {
	sys := artery.MustNew(artery.WithSeed(3), artery.WithoutStateSim(), artery.WithWorkers(2))
	const shots = 60
	var updates []artery.ShotUpdate
	rep, err := sys.RunStream(context.Background(), "ARTERY", artery.QRW(3), shots, func(u artery.ShotUpdate) {
		updates = append(updates, u)
	})
	if err != nil {
		t.Fatalf("RunStream: %v", err)
	}
	if len(updates) != shots || rep.Shots != shots {
		t.Fatalf("got %d updates, report %d shots, want %d", len(updates), rep.Shots, shots)
	}
	var sum float64
	sites, commits, correct := 0, 0, 0
	for i, u := range updates {
		if u.Shot != i {
			t.Fatalf("update %d has shot index %d: stream out of order", i, u.Shot)
		}
		sum += u.LatencyNs
		sites += u.Sites
		commits += u.Commits
		correct += u.Correct
	}
	if got := sum / float64(shots) / 1000; got != rep.MeanLatencyUs {
		t.Errorf("stream mean %v µs != report mean %v µs", got, rep.MeanLatencyUs)
	}
	if got := float64(commits) / float64(sites); got != rep.CommitRate {
		t.Errorf("stream commit rate %v != report %v", got, rep.CommitRate)
	}
	if got := float64(correct) / float64(commits); commits > 0 && got != rep.Accuracy {
		t.Errorf("stream accuracy %v != report %v", got, rep.Accuracy)
	}
}

// TestRunStreamDeterministicAcrossWorkers checks the update stream —
// not just the aggregate — is bit-identical at any worker count.
func TestRunStreamDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []artery.ShotUpdate {
		sys := artery.MustNew(artery.WithSeed(9), artery.WithoutStateSim(), artery.WithWorkers(workers))
		var updates []artery.ShotUpdate
		_, err := sys.RunStream(context.Background(), "ARTERY", artery.QRW(3), 40, func(u artery.ShotUpdate) {
			if math.IsNaN(u.Fidelity) {
				u.Fidelity = -1 // NaN != NaN would defeat DeepEqual below
			}
			updates = append(updates, u)
		})
		if err != nil {
			t.Fatalf("RunStream(workers=%d): %v", workers, err)
		}
		return updates
	}
	serial := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !reflect.DeepEqual(got, serial) {
			t.Errorf("update stream at workers=%d differs from serial", w)
		}
	}
}

// TestControllerRegistryNames locks the exported controller list: the
// registry refactor must keep it byte-identical.
func TestControllerRegistryNames(t *testing.T) {
	want := []string{"ARTERY", "QubiC", "HERQULES", "Salathe et al.", "Reuer et al."}
	if got := artery.ControllerNames(); !reflect.DeepEqual(got, want) {
		t.Errorf("ControllerNames() = %#v, want %#v", got, want)
	}
}

// TestWorkloadByNameRegistry spot-checks the public registry wrapper and
// its error path.
func TestWorkloadByNameRegistry(t *testing.T) {
	wl, err := artery.WorkloadByName("qrw", 4)
	if err != nil || wl.Name != "QRW-4" {
		t.Fatalf("WorkloadByName(qrw, 4) = %v, %v", wl, err)
	}
	if got := artery.WorkloadNames(); len(got) != 9 || got[0] != "qrw" {
		t.Errorf("WorkloadNames() = %v", got)
	}
	if _, err := artery.WorkloadByName("bogus", 1); err == nil {
		t.Error("WorkloadByName(bogus) succeeded, want error")
	}
}

// TestValidateOptions checks the calibration-free validator agrees with
// the constructor.
func TestValidateOptions(t *testing.T) {
	if err := artery.ValidateOptions(artery.Options{}); err != nil {
		t.Errorf("zero options invalid: %v", err)
	}
	if err := artery.ValidateOptions(artery.Options{Theta: 1.5}); err == nil {
		t.Error("Theta=1.5 validated, want error")
	}
	if err := artery.ValidateOptions(artery.Options{HistoryDepth: 99}); err == nil {
		t.Error("HistoryDepth=99 validated, want error")
	}
}
