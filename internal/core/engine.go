// Package core is ARTERY's primary contribution assembled into an
// executable feedback engine: it takes a feedback workload, classifies its
// feedback sites with the Figure-3 pre-execution analysis, drives each
// shot's readout pulses through a feedback controller (ARTERY or one of
// the baselines), applies latency-dependent decoherence to a Monte-Carlo
// state-vector simulation, and reports the latency / prediction-accuracy /
// fidelity statistics the paper's evaluation tables and figures are built
// from.
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"

	"artery/internal/circuit"
	"artery/internal/controller"
	"artery/internal/fault"
	"artery/internal/quantum"
	"artery/internal/readout"
	"artery/internal/stabilizer"
	"artery/internal/stats"
	"artery/internal/trace"
	"artery/internal/workload"
)

// maxSimQubits bounds the state-vector fidelity simulation (a 16-qubit
// register is already 1 MiB of amplitudes per state).
const maxSimQubits = 16

// Engine executes feedback workloads against one controller.
//
// Concurrency contract (see DESIGN.md, "Concurrency model"): during Run,
// Channel (calibration, classifier, state table) and Noise are read-only
// and shared by all shot workers; do not retrain or retune them while a
// run is in flight. The controller is invoked concurrently only when it
// declares itself controller.ShotSafe; otherwise every Feedback call is
// made from a single goroutine in shot order.
type Engine struct {
	Ctrl    controller.Controller
	Channel *readout.Channel
	Noise   *quantum.NoiseModel
	// SimulateState enables the per-shot state-vector fidelity simulation
	// (skip for latency-only sweeps or registers too wide to simulate).
	SimulateState bool
	// EnableDD executes feedback idle windows as X-echo (dynamical
	// decoupling) sequences, refocusing the noise model's quasi-static
	// dephasing — the paper applies DD to idle qubits in its QEC
	// experiment (§6.2).
	EnableDD bool
	// Workers bounds Run's shot-level parallelism: 0 (the default) uses
	// GOMAXPROCS workers, 1 forces serial execution. Results are
	// bit-identical at every setting — Run derives one RNG stream per shot
	// index up front and merges shot results in index order, so neither the
	// random streams nor the aggregate arithmetic depend on scheduling.
	Workers int
	// Faults, when non-nil and enabled, injects deterministic faults into
	// every shot: Run derives one fault stream per shot index (a second
	// SplitN, so the physics streams — and hence unfaulted numbers — are
	// untouched) and threads a per-shot fault.Session through the readout
	// capture and the controller. Faulted runs stay bit-identical at any
	// Workers setting: a session is only ever used by its own shot, worker
	// phase strictly before merge phase.
	Faults *fault.Injector
	// Trace, when non-nil, records typed span events for every shot:
	// readout classification, per-window posterior evolution, interconnect
	// hops, and the per-stage latency partition of every feedback outcome.
	// Workers record into private per-shot buffers that are committed on
	// the in-order merge path, so the event stream is bit-identical at any
	// Workers setting; a nil recorder reduces every hook to a nil check
	// and leaves RunResult byte-identical to an uninstrumented run.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives counters and latency histograms
	// (artery_shots_total, artery_shot_latency_ns, ...). All updates happen
	// on the merge path in shot order.
	Metrics *trace.Registry
	// OnShot, when non-nil, is invoked for every merged shot with its
	// 0-based shot index and result. Calls happen on the single merge
	// goroutine, strictly in shot order, after the shot's aggregates are
	// folded into the run — so the callback's view is bit-identical at any
	// Workers setting. The callback must not block: the in-order merge path
	// stalls until it returns.
	OnShot func(shot int, sr ShotResult)
	// Interpreted disables the compiled-tape replay: shots re-walk the
	// circuit's instruction structure and apply every gate individually, the
	// original execution path. Compiled execution is bit-identical (the
	// differential tests prove it), so this exists as the reference for
	// those tests and as an escape hatch, not as a user-facing mode.
	// (The stabilizer backend has no interpreted twin: tableau shots
	// always replay the compiled tape.)
	Interpreted bool
	// Backend selects the simulation backend (state vector vs stabilizer
	// tableau) for circuits the engine simulates; the zero value
	// (quantum.BackendAuto) preserves historical behavior and promotes
	// only circuits too wide for any state vector. See backend.go.
	Backend quantum.BackendKind
	// RecordMeasurements captures every physical measurement outcome
	// (measure, reset and feedback-site readouts, in execution order)
	// into ShotResult.Measurements on simulated paths. Off by default:
	// the capture allocates per shot, and the hot path is allocation-free.
	RecordMeasurements bool

	// mu guards the lazily built caches below (Run may be entered from
	// multiple goroutines, and shot workers share the pools).
	mu sync.Mutex
	// plans caches the per-circuit compilation — the pure pre-execution
	// analysis plus the flattened op tape — so a multi-shot run classifies
	// and compiles its circuit exactly once instead of once per shot.
	// Circuits are treated as immutable once executed.
	plans map[*circuit.Circuit]*circuitPlan
	// pools recycles state-vector buffers per register width across shots.
	pools map[int]*quantum.StatePool
	// tabPools recycles stabilizer tableaus per register width.
	tabPools map[int]*stabilizer.Pool
	// pulsePools recycles readout pulse records per capture length.
	pulsePools map[int]*readout.PulsePool
}

// circuitPlan is everything the engine precomputes per circuit: the
// Figure-3 site analyses, the compiled op tape, and the tape's feedback ops
// indexed by site ordinal (for the pipeline path, which iterates sites
// without walking ops).
type circuitPlan struct {
	analyses []*circuit.SiteAnalysis
	tape     *circuit.Tape
	siteOps  []*circuit.TapeOp
}

// NewEngine builds an engine; Noise defaults to the calibrated device model.
func NewEngine(ctrl controller.Controller, ch *readout.Channel, noise *quantum.NoiseModel) *Engine {
	if noise == nil {
		noise = quantum.DeviceNoise()
	}
	return &Engine{Ctrl: ctrl, Channel: ch, Noise: noise, SimulateState: true}
}

// planFor returns (computing and caching on first use) the compiled plan —
// pre-execution analyses plus op tape — of circuit c.
func (e *Engine) planFor(c *circuit.Circuit) *circuitPlan {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.plans == nil {
		e.plans = map[*circuit.Circuit]*circuitPlan{}
	}
	if p, ok := e.plans[c]; ok {
		return p
	}
	p := &circuitPlan{analyses: circuit.AnalyzeAll(c), tape: circuit.Compile(c)}
	p.siteOps = make([]*circuit.TapeOp, 0, p.tape.NumSites)
	for i := range p.tape.Ops {
		if p.tape.Ops[i].Kind == circuit.TapeFeedback {
			p.siteOps = append(p.siteOps, &p.tape.Ops[i])
		}
	}
	return p
}

// pulsePool returns the engine's shared pulse pool for the channel's
// capture length.
func (e *Engine) pulsePool() *readout.PulsePool {
	n := e.Channel.Cal.Samples()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pulsePools == nil {
		e.pulsePools = map[int]*readout.PulsePool{}
	}
	p, ok := e.pulsePools[n]
	if !ok {
		p = readout.NewPulsePool(n)
		e.pulsePools[n] = p
	}
	return p
}

// statePool returns the engine's shared state-vector pool for n qubits.
func (e *Engine) statePool(n int) *quantum.StatePool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pools == nil {
		e.pools = map[int]*quantum.StatePool{}
	}
	p, ok := e.pools[n]
	if !ok {
		p = quantum.NewStatePool(n)
		e.pools[n] = p
	}
	return p
}

// workerCount resolves the effective worker-pool size.
func (e *Engine) workerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// ctrlShotSafe reports whether the controller may be called concurrently
// from shot workers.
func (e *Engine) ctrlShotSafe() bool {
	s, ok := e.Ctrl.(controller.ShotSafe)
	return ok && s.ShotSafe()
}

// ShotResult summarizes one executed shot.
type ShotResult struct {
	// FeedbackLatencyNs is the summed feedback latency over all sites plus
	// the workload's gate payload.
	FeedbackLatencyNs float64
	// Outcomes holds the per-site controller outcomes.
	Outcomes []controller.Outcome
	// Fidelity is |⟨ideal|noisy⟩|² at circuit end (NaN when state
	// simulation is disabled or the ideal branch became unreachable).
	Fidelity float64
	// Faults snapshots the shot's fault/retry/fallback counters (zero when
	// the engine runs fault-free).
	Faults fault.Counters
	// Measurements holds the shot's physical measurement outcomes in
	// execution order (measure, reset, feedback-site readouts), captured
	// only when Engine.RecordMeasurements is set on a simulated path.
	// The record is backend-independent: a Clifford workload yields the
	// identical sequence on the state-vector and stabilizer backends.
	Measurements []int
}

// StageLatency is one row of the per-stage latency breakdown table: how
// often a pipeline stage occurred across the run's feedback outcomes and
// how many nanoseconds it consumed. Stage names follow trace.Stage.
type StageLatency struct {
	Stage   string
	Count   int
	TotalNs float64
	MeanNs  float64
}

// RunResult aggregates a workload run.
type RunResult struct {
	Workload   string
	Controller string
	// Shots is the number of shots executed and merged. It equals the
	// requested shot count unless the run was canceled mid-sweep.
	Shots int
	// MeanLatencyNs is the average per-shot summed feedback latency.
	MeanLatencyNs float64
	// Accuracy is the fraction of committed predictions that were correct
	// (1.0 for non-predictive baselines, which never commit).
	Accuracy float64
	// CommitRate is the fraction of feedback executions that committed a
	// prediction before readout end.
	CommitRate float64
	// MeanFidelity averages shot fidelities (NaN without state simulation).
	MeanFidelity float64
	// MeanDecisionNs is the mean per-site feedback latency.
	MeanDecisionNs float64
	// Latencies holds each shot's total feedback latency (for quantiles).
	Latencies []float64
	// Faults aggregates the per-shot fault/retry/fallback counters.
	Faults fault.Counters
	// FallbackRate is the fraction of feedback executions served on the
	// degraded blocking path (0 for fault-free runs).
	FallbackRate float64
	// Stages is the per-stage latency breakdown over all feedback
	// outcomes, in pipeline order (stages that never occurred are
	// omitted). It is derived from the controllers' latency partitions on
	// the merge path, so it is populated whether or not tracing is on and
	// is bit-identical at any Workers setting.
	Stages []StageLatency
	// Canceled reports that the run's context was canceled before all
	// requested shots executed; the aggregates then cover the Shots
	// merged shots.
	Canceled bool
}

// cancelBatch is the shot-batch granularity of context-cancellation
// checks: the merge path polls ctx.Err() once per batch, so a canceled
// context stops a sweep within cancelBatch merged shots.
const cancelBatch = 32

// metricSet holds the engine's pre-resolved instruments. With a nil
// Metrics registry every instrument is nil and every update reduces to a
// nil check.
type metricSet struct {
	shots, sites, commits, mispredicts, fallbacks *trace.Counter
	canceled                                      *trace.Counter
	shotLat, siteLat, decision                    *trace.Histogram
}

func (e *Engine) metricSet() metricSet {
	m := e.Metrics
	lat := trace.DefaultLatencyBucketsNs()
	return metricSet{
		shots:       m.Counter("artery_shots_total", "shots executed and merged"),
		sites:       m.Counter("artery_feedback_sites_total", "feedback site executions"),
		commits:     m.Counter("artery_commits_total", "predictions committed before readout end"),
		mispredicts: m.Counter("artery_mispredicts_total", "committed predictions that needed recovery"),
		fallbacks:   m.Counter("artery_fallbacks_total", "feedbacks served on the degraded blocking path"),
		canceled:    m.Counter("artery_runs_canceled_total", "runs stopped early by context cancellation"),
		shotLat:     m.Histogram("artery_shot_latency_ns", "per-shot summed feedback latency", lat),
		siteLat:     m.Histogram("artery_site_latency_ns", "per-site feedback latency", lat),
		decision:    m.Histogram("artery_decision_ns", "predictor time-to-threshold of committed feedbacks", lat),
	}
}

// Run executes the workload for the given number of shots.
//
// Shots run on a bounded worker pool (see Workers). Determinism: Run first
// derives one independent RNG stream per shot index from rng (consuming
// exactly shots draws), then picks an execution mode that never depends on
// worker count:
//
//   - shot-safe controller (baselines): whole shots execute concurrently;
//     each shot is a pure function of its own stream.
//   - sequential controller without state simulation (ARTERY latency
//     sweeps): workers run the per-shot physics — readout-pulse synthesis,
//     classification, trajectory windowing — while every controller
//     Feedback call stays on the in-order merge path, preserving the
//     paper's shot-by-shot Bayesian learning exactly.
//   - sequential controller with state simulation: the feedback decision's
//     latency feeds the decoherence of the same shot, coupling the physics
//     to the learned history, so shots run serially (still on per-shot
//     streams).
//
// Shot results are merged in shot order in all three modes, so RunResult —
// including the floating-point aggregation order — is bit-identical for
// any Workers setting. The same holds for the trace stream: shot spans are
// recorded by whichever goroutine runs the shot but committed in shot
// order on the merge path.
func (e *Engine) Run(wl *workload.Workload, shots int, rng *stats.RNG) RunResult {
	return e.run(nil, wl, 0, shots, rng)
}

// RunContext is Run with cooperative cancellation: the merge path checks
// ctx at shot-batch boundaries (every cancelBatch shots) and, when the
// context is canceled, stops the sweep, drains its workers and returns the
// aggregates over the shots merged so far with Canceled set. A canceled
// run's prefix is still deterministic — only its length depends on timing.
func (e *Engine) RunContext(ctx context.Context, wl *workload.Workload, shots int, rng *stats.RNG) RunResult {
	return e.run(ctx, wl, 0, shots, rng)
}

// RunRange executes the global shot range [offset, offset+shots) of a
// conceptually larger run: per-shot RNG streams are derived for GLOBAL
// shot indices (SplitN is prefix-stable — stream i of a SplitN(n) equals
// stream i of any SplitN(m), i < min(n, m)), so every shot of the range
// consumes exactly the random draws it would consume in a single full
// run. This is the primitive behind sharded multi-node execution: a
// coordinator may split a job's shots into contiguous ranges, run each
// range on a different machine, and recombine the per-shot records in
// index order into a result bit-identical to the unsharded run.
//
// Sequential controllers (ARTERY: per-site Bayesian histories, graceful-
// degradation tracking) learn shot-by-shot, so their state at shot offset
// depends on every earlier shot. RunRange reproduces that state exactly by
// replaying the warmup prefix [0, offset) through the controller — physics
// and Feedback calls run, but nothing is merged, streamed, traced or
// counted. Shot-safe controllers (the baselines) carry no cross-shot
// state, so their warmup is skipped entirely and a shard costs O(shots),
// not O(offset+shots). Either way the merged aggregates, OnShot callbacks
// (which receive global shot indices) and trace stream cover exactly the
// requested range and are bit-identical to the corresponding slice of a
// full run at any Workers setting.
//
// RunRange rejects fault injection: fault streams are split after the
// physics streams, so their global indexing depends on the total shot
// count, which a range does not know.
func (e *Engine) RunRange(ctx context.Context, wl *workload.Workload, offset, shots int, rng *stats.RNG) RunResult {
	return e.run(ctx, wl, offset, shots, rng)
}

// run is the shared implementation; a nil ctx (plain Run) skips every
// cancellation check, and a non-zero offset selects range execution (see
// RunRange).
func (e *Engine) run(ctx context.Context, wl *workload.Workload, offset, shots int, rng *stats.RNG) RunResult {
	if err := wl.Validate(); err != nil {
		panic(err)
	}
	if offset < 0 {
		panic(fmt.Sprintf("core: negative shot offset %d", offset))
	}
	if offset > 0 && e.Faults.Enabled() {
		panic("core: RunRange does not support fault injection (fault streams are derived after the physics streams, so their per-shot assignment depends on the run's total shot count)")
	}
	total := offset + shots
	res := RunResult{Workload: wl.Name, Controller: e.Ctrl.Name(), Shots: shots}
	plan := e.planFor(wl.Circuit)
	sk := e.simKindFor(plan, wl.Circuit)
	shotRNGs := rng.SplitN(total)
	// Fault streams are split AFTER the physics streams, so enabling the
	// injector never perturbs the per-shot physics, and a disabled injector
	// consumes nothing (fault-free runs are byte-identical to the past).
	var sessions []*fault.Session
	if e.Faults.Enabled() {
		sessions = make([]*fault.Session, total)
		for i, r := range rng.SplitN(total) {
			sessions[i] = e.Faults.Session(r)
		}
	}
	sessionOf := func(i int) *fault.Session {
		if sessions == nil {
			return nil
		}
		return sessions[i]
	}

	ms := e.metricSet()
	var fid stats.RunningMean
	var perSite stats.RunningMean
	var stages stageAgg
	committed, correct, sites, merged := 0, 0, 0, 0
	res.Latencies = make([]float64, 0, shots)
	merge := func(sr ShotResult) {
		idx := offset + merged
		merged++
		stages.addPayload(wl.GatePayloadNs)
		res.Latencies = append(res.Latencies, sr.FeedbackLatencyNs)
		res.MeanLatencyNs += sr.FeedbackLatencyNs
		res.Faults.Add(sr.Faults)
		if !math.IsNaN(sr.Fidelity) {
			fid.Add(sr.Fidelity)
		}
		ms.shots.Inc()
		ms.shotLat.Observe(sr.FeedbackLatencyNs)
		for _, o := range sr.Outcomes {
			sites++
			perSite.Add(o.LatencyNs)
			stages.add(o.Breakdown)
			ms.sites.Inc()
			ms.siteLat.Observe(o.LatencyNs)
			if o.FellBack {
				ms.fallbacks.Inc()
			}
			if o.Committed {
				committed++
				ms.commits.Inc()
				ms.decision.Observe(o.Breakdown.DecisionNs)
				if o.Correct {
					correct++
				} else {
					ms.mispredicts.Inc()
				}
			}
		}
		if e.OnShot != nil {
			e.OnShot(idx, sr)
		}
	}
	// canceled polls the context at shot-batch boundaries on the merge
	// path (nil ctx: never).
	canceled := func(mergedSoFar int) bool {
		if ctx == nil || mergedSoFar%cancelBatch != 0 {
			return false
		}
		return ctx.Err() != nil
	}

	workers := e.workerCount()
	switch {
	case e.ctrlShotSafe():
		// Whole shots are independent: fan them out. A range run skips the
		// warmup prefix entirely — the controller carries no cross-shot
		// state, so shot offset+i is a pure function of its own stream.
		forEachShot(shots, workers, canceled, func(i int) shotOut {
			g := offset + i
			span := e.Trace.Shot(g)
			return shotOut{e.runShot(wl, plan, sk, shotRNGs[g], sessionOf(g), span), span}
		}, func(_ int, so shotOut) {
			merge(so.sr)
			e.Trace.Commit(so.span)
		})
	case sk == simNone:
		// Two-phase pipeline: the per-shot physics is independent of the
		// controller when no state is simulated, so workers synthesize and
		// classify the readout pulses while the sequential controller runs
		// on the in-order merge path. A shot's fault session and trace span
		// are used first by its worker (IQ glitches, classification events)
		// and then by the merge path (controller faults and stage spans);
		// the pipeline's reorder buffer guarantees the worker phase
		// happens-before the merge phase of the same shot.
		//
		// Range runs pipeline the warmup prefix too: its shots must flow
		// through the controller (its learned state at shot offset depends
		// on them) but are never merged, traced or streamed.
		forEachShot(total, workers, canceled, func(i int) synthOut {
			var span *trace.ShotSpan
			if i >= offset {
				span = e.Trace.Shot(i)
			}
			return synthOut{e.synthShot(wl, plan, shotRNGs[i], sessionOf(i), span), span}
		}, func(i int, so synthOut) {
			sr := e.feedbackShot(wl, plan, so.ss, sessionOf(i), so.span)
			if i < offset {
				return // warmup: controller state only
			}
			merge(sr)
			e.Trace.Commit(so.span)
		})
	default:
		// State simulation couples each shot's physics to the sequential
		// controller's decisions: run serially, one stream per shot, with a
		// range run's warmup prefix executed but discarded.
		for g := 0; g < total; g++ {
			if canceled(g) {
				break
			}
			if g < offset {
				e.runShot(wl, plan, sk, shotRNGs[g], sessionOf(g), nil)
				continue
			}
			span := e.Trace.Shot(g)
			merge(e.runShot(wl, plan, sk, shotRNGs[g], sessionOf(g), span))
			e.Trace.Commit(span)
		}
	}
	if merged < shots {
		res.Canceled = true
		ms.canceled.Inc()
	}
	res.Shots = merged
	if merged > 0 {
		res.MeanLatencyNs /= float64(merged)
	}
	res.MeanDecisionNs = perSite.Mean()
	if committed > 0 {
		res.Accuracy = float64(correct) / float64(committed)
	} else {
		res.Accuracy = 1 // baselines never predict, hence never mispredict
	}
	if sites > 0 {
		res.CommitRate = float64(committed) / float64(sites)
		res.FallbackRate = float64(res.Faults.Fallbacks) / float64(sites)
	}
	if fid.N() > 0 {
		res.MeanFidelity = fid.Mean()
	} else {
		res.MeanFidelity = math.NaN()
	}
	res.Stages = stages.table()
	return res
}

// shotOut pairs a shot's result with its trace span for in-order commit.
type shotOut struct {
	sr   ShotResult
	span *trace.ShotSpan
}

// synthOut pairs a shot's pre-computed physics with its trace span.
type synthOut struct {
	ss   []siteShot
	span *trace.ShotSpan
}

// stageAgg accumulates per-stage latency sums over outcomes in merge
// order.
type stageAgg struct {
	count [trace.NumStages]int
	total [trace.NumStages]float64
}

func (a *stageAgg) add(bd controller.LatencyBreakdown) {
	bd.Stages(func(st trace.Stage, d float64) {
		a.count[st]++
		a.total[st] += d
	})
}

// addPayload records one shot's fixed gate payload, so the aggregate's
// stage totals partition the full shot latency (payload + site stages).
func (a *stageAgg) addPayload(d float64) {
	a.count[trace.StagePayload]++
	a.total[trace.StagePayload] += d
}

// table renders the aggregate as RunResult.Stages, omitting stages that
// never occurred.
func (a *stageAgg) table() []StageLatency {
	var out []StageLatency
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		if a.count[st] == 0 {
			continue
		}
		out = append(out, StageLatency{
			Stage:   st.String(),
			Count:   a.count[st],
			TotalNs: a.total[st],
			MeanNs:  a.total[st] / float64(a.count[st]),
		})
	}
	return out
}

// RunShot executes one shot of the workload, fault-free (fault injection
// is a property of whole runs — use Run with Engine.Faults set). The
// circuit plan (site analyses plus compiled op-tape) comes from the
// engine's per-circuit cache, so calling RunShot in a loop re-runs
// neither the pre-execution analysis nor the compile every shot.
func (e *Engine) RunShot(wl *workload.Workload, rng *stats.RNG) ShotResult {
	plan := e.planFor(wl.Circuit)
	return e.runShot(wl, plan, e.simKindFor(plan, wl.Circuit), rng, nil, nil)
}

// runShot executes one shot against a pre-computed circuit plan,
// dispatching between the compiled tape replay (the default) and the
// interpreted instruction walk (the reference path, selected by
// Engine.Interpreted). Both are pure functions of (wl, plan, rng, sess)
// plus the controller's state, so shot-safe controllers may run either
// concurrently, one RNG stream (and fault session, and trace span) per
// call; and both consume identical draw sequences and identical
// floating-point operations, so their results are bit-identical (enforced
// by the compiled-vs-interpreted differential tests).
func (e *Engine) runShot(wl *workload.Workload, plan *circuitPlan, sk simKind, rng *stats.RNG, sess *fault.Session, span *trace.ShotSpan) ShotResult {
	if sk == simTableau {
		return e.runShotTableau(wl, plan, rng, sess, span)
	}
	simulate := sk == simState
	if e.Interpreted {
		return e.runShotWalk(wl, plan.analyses, simulate, rng, sess, span)
	}
	return e.runShotCompiled(wl, plan, simulate, rng, sess, span)
}

// runShotWalk executes one shot by walking the circuit's instruction list
// directly — the interpreted reference semantics that the compiled tape
// replay must reproduce bit-for-bit. It stays deliberately close to the
// paper's operational description; the hot path is runShotCompiled.
func (e *Engine) runShotWalk(wl *workload.Workload, analyses []*circuit.SiteAnalysis, simulate bool, rng *stats.RNG, sess *fault.Session, span *trace.ShotSpan) ShotResult {
	c := wl.Circuit

	// The workload's fixed gate payload is a shot-scoped span (site -1),
	// recorded before the first SetSite.
	span.Span(trace.StagePayload, 0, wl.GatePayloadNs)

	var noisy, ideal *quantum.State
	idealAlive := true
	if simulate {
		pool := e.statePool(c.NumQubits)
		noisy = pool.Get()
		ideal = pool.Get()
		defer pool.Put(noisy)
		defer pool.Put(ideal)
		// Thermal initial excitation (e.g. the population active reset
		// exists to remove). The ideal reference starts identically: reset
		// must clean it up, so fidelity is judged against the same start.
		for q, p := range wl.InitExciteP {
			if rng.Bool(p) {
				noisy.X(q)
				ideal.X(q)
			}
		}
	}

	sr := ShotResult{FeedbackLatencyNs: wl.GatePayloadNs, Fidelity: math.NaN()}
	var detunings []float64
	if simulate {
		detunings = e.Noise.SampleDetunings(c.NumQubits, rng)
	}
	detuningOf := func(q int) float64 {
		if detunings == nil {
			return 0
		}
		return detunings[q]
	}
	siteIdx := 0
	for _, in := range c.Ins {
		switch in.Kind {
		case circuit.OpGate:
			if simulate {
				e.applyGate(noisy, in.Gate, rng)
				in.Gate.Apply(ideal)
			}
		case circuit.OpMeasure:
			if simulate {
				m := e.Noise.NoisyMeasure(noisy, in.Qubit, rng)
				idealAlive = idealAlive && projectIdeal(ideal, in.Qubit, m)
				if e.RecordMeasurements {
					sr.Measurements = append(sr.Measurements, m)
				}
			}
		case circuit.OpReset:
			if simulate {
				m := noisy.Reset(in.Qubit, rng)
				ideal.Reset(in.Qubit, rng)
				if e.RecordMeasurements {
					sr.Measurements = append(sr.Measurements, m)
				}
			}
		case circuit.OpFeedback:
			fb := in.Feedback
			a := analyses[siteIdx]
			prior := wl.SiteP1[siteIdx]

			// Physical qubit state at readout start.
			var m int
			if simulate {
				m = noisy.Measure(fb.Qubit, rng)
			} else {
				if rng.Bool(prior) {
					m = 1
				}
			}
			if simulate && e.RecordMeasurements {
				sr.Measurements = append(sr.Measurements, m)
			}

			pulse := e.Channel.Cal.Synthesize(m, rng)
			// IQ glitches corrupt the captured record before anything
			// downstream (classification included) sees it — exactly where
			// an amplifier spike lands on hardware.
			sess.GlitchIQ(pulse.Samples)
			span.SetSite(siteIdx, fb.Qubit)
			truth := e.Channel.Classifier.ClassifyFullTrace(pulse, span)
			out := e.Ctrl.Feedback(e.siteFor(a, siteIdx, fb, prior), controller.Shot{Pulse: pulse, Truth: truth, Faults: sess, Span: span})
			sr.Outcomes = append(sr.Outcomes, out)
			sr.FeedbackLatencyNs += out.LatencyNs

			if simulate {
				// Latency-dependent idling: branch qubits wait for the
				// feedback decision; the read qubit is pinned for at least
				// the readout pulse. Idle windows optionally run as X-echo
				// (DD) sequences, refocusing quasi-static dephasing; the
				// measured qubit holds a classical state during readout, so
				// it takes no echo.
				for q := 0; q < c.NumQubits; q++ {
					dt := out.LatencyNs
					if q == fb.Qubit {
						if dt < e.Channel.Cal.DurationNs {
							dt = e.Channel.Cal.DurationNs
						}
						e.Noise.ApplyIdle(noisy, q, dt, rng)
						continue
					}
					e.Noise.ApplyIdleDetuned(noisy, q, dt, detuningOf(q), e.EnableDD, rng)
				}
				// A wrongly pre-executed branch physically runs, is undone,
				// and only then does the correct branch run: the extra gate
				// churn costs real gate error.
				if out.Committed && !out.Correct {
					wrong := fb.OnOne
					if out.Predicted == 0 {
						wrong = fb.OnZero
					}
					e.applyBody(noisy, wrong, rng)
					e.applyBody(noisy, circuit.InverseOf(wrong), rng)
				}
				// The hardware acts on its classification (truth), which may
				// disagree with the physical state m on a readout error.
				e.applyBody(noisy, bodyOf(fb, truth), rng)

				// Ideal reference: perfect hardware follows the physical
				// outcome instantly and noiselessly.
				idealAlive = idealAlive && projectIdeal(ideal, fb.Qubit, m)
				if idealAlive {
					for _, bi := range bodyOf(fb, m) {
						if bi.Kind == circuit.OpGate {
							bi.Gate.Apply(ideal)
						}
					}
				}
			}
			siteIdx++
		}
	}
	if simulate {
		if idealAlive {
			sr.Fidelity = noisy.Fidelity(ideal)
		} else {
			sr.Fidelity = 0
		}
	}
	if sess != nil {
		sr.Faults = sess.C
	}
	return sr
}

// runShotCompiled executes one shot by replaying the circuit's compiled
// op-tape: adjacent same-wire single-qubit gates arrive pre-fused with
// their kernels precomputed, branch bodies arrive precompiled (inverses
// included), and readout pulses come from the engine's pulse pool instead
// of the heap. The noisy state still advances gate by gate — per-gate
// noise draws must interleave exactly as in the interpreted walk — but
// the noiseless ideal reference evolves through fused kernel chains,
// and no per-shot allocation survives into the steady state.
func (e *Engine) runShotCompiled(wl *workload.Workload, plan *circuitPlan, simulate bool, rng *stats.RNG, sess *fault.Session, span *trace.ShotSpan) ShotResult {
	c := wl.Circuit
	tape := plan.tape

	// The workload's fixed gate payload is a shot-scoped span (site -1),
	// recorded before the first SetSite.
	span.Span(trace.StagePayload, 0, wl.GatePayloadNs)

	var noisy, ideal *quantum.State
	idealAlive := true
	if simulate {
		pool := e.statePool(c.NumQubits)
		noisy = pool.Get()
		ideal = pool.Get()
		defer pool.Put(noisy)
		defer pool.Put(ideal)
		// Thermal initial excitation; see runShotWalk.
		for q, p := range wl.InitExciteP {
			if rng.Bool(p) {
				noisy.X(q)
				ideal.X(q)
			}
		}
	}

	sr := ShotResult{FeedbackLatencyNs: wl.GatePayloadNs, Fidelity: math.NaN()}
	if tape.NumSites > 0 {
		sr.Outcomes = make([]controller.Outcome, 0, tape.NumSites)
	}
	var detunings []float64
	if simulate {
		detunings = e.Noise.SampleDetunings(c.NumQubits, rng)
	}
	detuningOf := func(q int) float64 {
		if detunings == nil {
			return 0
		}
		return detunings[q]
	}
	pp := e.pulsePool()
	for oi := range tape.Ops {
		op := &tape.Ops[oi]
		switch op.Kind {
		case circuit.TapeFused1Q:
			if simulate {
				for gi := range op.Gates {
					e.applyKernel1Q(noisy, op.Qubit, &op.Ks[gi], op.Gates[gi].Kind, rng)
				}
				ideal.ApplyKernelChain(op.Qubit, op.Ks)
			}
		case circuit.TapeGate2Q:
			if simulate {
				e.applyGate(noisy, op.Gate, rng)
				op.Gate.Apply(ideal)
			}
		case circuit.TapeMeasure:
			if simulate {
				m := e.Noise.NoisyMeasure(noisy, op.Qubit, rng)
				idealAlive = idealAlive && projectIdeal(ideal, op.Qubit, m)
				if e.RecordMeasurements {
					sr.Measurements = append(sr.Measurements, m)
				}
			}
		case circuit.TapeReset:
			if simulate {
				m := noisy.Reset(op.Qubit, rng)
				ideal.Reset(op.Qubit, rng)
				if e.RecordMeasurements {
					sr.Measurements = append(sr.Measurements, m)
				}
			}
		case circuit.TapeFeedback:
			fb := op.FB
			a := plan.analyses[op.Site]
			prior := wl.SiteP1[op.Site]

			// Physical qubit state at readout start.
			var m int
			if simulate {
				m = noisy.Measure(fb.Qubit, rng)
			} else if rng.Bool(prior) {
				m = 1
			}
			if simulate && e.RecordMeasurements {
				sr.Measurements = append(sr.Measurements, m)
			}

			pulse := pp.Get()
			e.Channel.Cal.SynthesizeInto(pulse, m, rng)
			sess.GlitchIQ(pulse.Samples)
			span.SetSite(op.Site, fb.Qubit)
			truth := e.Channel.Classifier.ClassifyFullTrace(pulse, span)
			out := e.Ctrl.Feedback(e.siteFor(a, op.Site, fb, prior), controller.Shot{Pulse: pulse, Truth: truth, Faults: sess, Span: span})
			// Shot.Pulse's no-retention contract makes the pooled pulse safe
			// to recycle the moment Feedback returns.
			pp.Put(pulse)
			sr.Outcomes = append(sr.Outcomes, out)
			sr.FeedbackLatencyNs += out.LatencyNs

			if simulate {
				// Latency-dependent idling; see runShotWalk.
				for q := 0; q < c.NumQubits; q++ {
					dt := out.LatencyNs
					if q == fb.Qubit {
						if dt < e.Channel.Cal.DurationNs {
							dt = e.Channel.Cal.DurationNs
						}
						e.Noise.ApplyIdle(noisy, q, dt, rng)
						continue
					}
					e.Noise.ApplyIdleDetuned(noisy, q, dt, detuningOf(q), e.EnableDD, rng)
				}
				// A wrongly pre-executed branch physically runs, is undone,
				// and only then does the correct branch run.
				if out.Committed && !out.Correct {
					wrongTape, invTape := op.OnOne, op.InvOnOne
					wrong := fb.OnOne
					if out.Predicted == 0 {
						wrongTape, invTape = op.OnZero, op.InvOnZero
						wrong = fb.OnZero
					}
					e.applyTapeNoisy(noisy, wrongTape, rng)
					if invTape != nil {
						e.applyTapeNoisy(noisy, invTape, rng)
					} else {
						// The body has non-gate instructions: preserve the
						// interpreted path's contract, which panics here.
						e.applyBody(noisy, circuit.InverseOf(wrong), rng)
					}
				}
				// The hardware acts on its classification (truth), which may
				// disagree with the physical state m on a readout error.
				bt := op.OnOne
				if truth == 0 {
					bt = op.OnZero
				}
				e.applyTapeNoisy(noisy, bt, rng)

				// Ideal reference: perfect hardware follows the physical
				// outcome instantly and noiselessly — fused replay.
				idealAlive = idealAlive && projectIdeal(ideal, fb.Qubit, m)
				if idealAlive {
					ib := op.OnOne
					if m == 0 {
						ib = op.OnZero
					}
					ib.Apply(ideal)
				}
			}
		}
	}
	if simulate {
		if idealAlive {
			sr.Fidelity = noisy.Fidelity(ideal)
		} else {
			sr.Fidelity = 0
		}
	}
	if sess != nil {
		sr.Faults = sess.C
	}
	return sr
}

// applyKernel1Q applies one precompiled single-qubit kernel to the noisy
// state with the gate's accompanying noise channel — the kernel twin of
// applyGate for the tape replay, preserving the per-gate draw order.
func (e *Engine) applyKernel1Q(s *quantum.State, q int, k *quantum.K1, kind circuit.GateKind, rng *stats.RNG) {
	s.ApplyKernel(q, k)
	if kind != circuit.RZ { // virtual Z is error-free
		e.Noise.AfterGate1Q(s, q, rng)
	}
}

// applyTapeNoisy replays a compiled branch-body tape on the noisy state,
// gate by gate so the per-gate noise draws interleave exactly as in
// applyBody (fusion only accelerates noiseless evolution).
func (e *Engine) applyTapeNoisy(s *quantum.State, t *circuit.Tape, rng *stats.RNG) {
	for oi := range t.Ops {
		op := &t.Ops[oi]
		switch op.Kind {
		case circuit.TapeFused1Q:
			for gi := range op.Gates {
				e.applyKernel1Q(s, op.Qubit, &op.Ks[gi], op.Gates[gi].Kind, rng)
			}
		case circuit.TapeGate2Q:
			e.applyGate(s, op.Gate, rng)
		}
	}
}

// siteShot is the controller-independent physics of one feedback site of
// one shot, computed by a worker: the ground-truth full-pulse
// classification and the windowed trajectory bits. The raw pulse (2000
// complex samples) is dropped immediately, bounding the reorder buffer's
// memory.
type siteShot struct {
	truth int
	bits  []int
}

// synthShot runs the physics of one shot when no state is simulated: per
// feedback site, draw the qubit state from the site's prior, synthesize
// the readout pulse, classify it, and demodulate its trajectory windows.
// The RNG draw order matches runShot's non-simulated path exactly, so a
// shot's physics is bit-identical whichever path executes it. Fault draws
// (IQ glitches) come from the shot's own session, never the physics
// stream. The span (worker-private until merge) receives the shot's
// payload span and per-site classification events.
//
// The compiled flavor synthesizes into pooled pulse records, fuses the
// full-pulse classification with the window demodulation into one pass
// over the samples, and packs every site's bits into a single per-shot
// backing array; Engine.Interpreted selects the original alloc-per-site
// two-pass formulation, which produces bit-identical results.
func (e *Engine) synthShot(wl *workload.Workload, plan *circuitPlan, rng *stats.RNG, sess *fault.Session, span *trace.ShotSpan) []siteShot {
	span.Span(trace.StagePayload, 0, wl.GatePayloadNs)
	ss := make([]siteShot, len(wl.SiteP1))
	if e.Interpreted {
		for i, prior := range wl.SiteP1 {
			var m int
			if rng.Bool(prior) {
				m = 1
			}
			pulse := e.Channel.Cal.Synthesize(m, rng)
			sess.GlitchIQ(pulse.Samples)
			span.SetSite(i, plan.siteOps[i].FB.Qubit)
			ss[i] = siteShot{
				truth: e.Channel.Classifier.ClassifyFullTrace(pulse, span),
				bits:  e.Channel.Classifier.WindowBits(pulse, 0),
			}
		}
		return ss
	}
	pp := e.pulsePool()
	nWin := e.Channel.Cal.Samples() / e.Channel.Cal.WindowSamples(e.Channel.Classifier.WindowNs)
	backing := make([]int, len(ss)*nWin)
	for i, prior := range wl.SiteP1 {
		var m int
		if rng.Bool(prior) {
			m = 1
		}
		pulse := pp.Get()
		e.Channel.Cal.SynthesizeInto(pulse, m, rng)
		sess.GlitchIQ(pulse.Samples)
		span.SetSite(i, plan.siteOps[i].FB.Qubit)
		// Full-capacity three-index sub-slice: each site appends exactly
		// nWin bits; an overflow would spill into a fresh allocation rather
		// than a neighbor's region.
		dst := backing[i*nWin : i*nWin : (i+1)*nWin]
		truth, bits := e.Channel.Classifier.ClassifyFullAndBitsTrace(pulse, span, dst)
		pp.Put(pulse)
		ss[i] = siteShot{truth: truth, bits: bits}
	}
	return ss
}

// feedbackShot drives the (sequential) controller over one shot's
// pre-synthesized sites in site order and assembles the ShotResult. Site
// descriptors come from the plan's cached analyses and feedback tape ops.
func (e *Engine) feedbackShot(wl *workload.Workload, plan *circuitPlan, ss []siteShot, sess *fault.Session, span *trace.ShotSpan) ShotResult {
	sr := ShotResult{FeedbackLatencyNs: wl.GatePayloadNs, Fidelity: math.NaN()}
	sr.Outcomes = make([]controller.Outcome, 0, len(ss))
	for i, s := range ss {
		fb := plan.siteOps[i].FB
		span.SetSite(i, fb.Qubit)
		out := e.Ctrl.Feedback(
			e.siteFor(plan.analyses[i], i, fb, wl.SiteP1[i]),
			controller.Shot{Truth: s.truth, Bits: s.bits, Faults: sess, Span: span},
		)
		sr.Outcomes = append(sr.Outcomes, out)
		sr.FeedbackLatencyNs += out.LatencyNs
	}
	if sess != nil {
		sr.Faults = sess.C
	}
	return sr
}

// siteFor converts a pre-execution analysis into the controller's site
// descriptor.
func (e *Engine) siteFor(a *circuit.SiteAnalysis, idx int, fb *circuit.Feedback, prior float64) controller.Site {
	// Deterministically pick the lowest-indexed branch qubit other than
	// the read qubit (BranchQubit is a set; ranging it directly would make
	// the routing — and hence every latency — vary run to run).
	branchQ := fb.Qubit
	for q := range a.BranchQubit {
		if q != fb.Qubit && (branchQ == fb.Qubit || q < branchQ) {
			branchQ = q
		}
	}
	site := controller.Site{
		ID:          idx,
		Case:        a.Case,
		ReadQubit:   clampQubit(fb.Qubit),
		BranchQubit: clampQubit(branchQ),
		Prior:       prior,
	}
	if a.Case.PreExecutable() {
		site.UndoOnOneNs = circuit.BodyDuration(a.RecoveryOnOne)
		site.UndoOnZeroNs = circuit.BodyDuration(a.RecoveryOnZero)
	}
	return site
}

// clampQubit folds circuit qubit indices onto the 18-qubit paper topology.
func clampQubit(q int) int {
	const topoQubits = 18
	if q < 0 {
		return 0
	}
	return q % topoQubits
}

// applyGate applies one gate with its accompanying noise channels.
func (e *Engine) applyGate(s *quantum.State, g circuit.Gate, rng *stats.RNG) {
	g.Apply(s)
	if g.Kind.TwoQubit() {
		e.Noise.AfterGate2Q(s, g.Qubits[0], g.Qubits[1], rng)
	} else if g.Kind != circuit.RZ { // virtual Z is error-free
		e.Noise.AfterGate1Q(s, g.Qubits[0], rng)
	}
}

// applyBody applies a branch body with noise, skipping non-gate entries.
func (e *Engine) applyBody(s *quantum.State, body []circuit.Instruction, rng *stats.RNG) {
	for _, in := range body {
		if in.Kind == circuit.OpGate {
			e.applyGate(s, in.Gate, rng)
		}
	}
}

func bodyOf(fb *circuit.Feedback, outcome int) []circuit.Instruction {
	if outcome == 1 {
		return fb.OnOne
	}
	return fb.OnZero
}

// projectIdeal collapses the ideal state onto outcome m of qubit q. It
// returns false when the outcome has (near-)zero amplitude, meaning the
// noisy trajectory left the ideal branch entirely.
func projectIdeal(s *quantum.State, q, m int) bool {
	p1 := s.Prob1(q)
	pm := p1
	if m == 0 {
		pm = 1 - p1
	}
	if pm < 1e-12 {
		return false
	}
	s.Project(q, m)
	return true
}

// Validate is a convenience that panics with context when a workload is
// inconsistent (used by cmd tools before long runs).
func Validate(wl *workload.Workload) {
	if err := ValidateWorkload(wl); err != nil {
		panic(err.Error())
	}
}

// ValidateWorkload is the error-returning twin of Validate, for callers
// that prefer to surface configuration problems as errors rather than
// panics (the public artery API routes through it).
func ValidateWorkload(wl *workload.Workload) error {
	if wl == nil {
		return fmt.Errorf("core: nil workload")
	}
	if err := wl.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return nil
}
