package core

import (
	"testing"

	"artery/internal/stats"
	"artery/internal/workload"
)

// TestCompiledMatchesInterpreted is the differential guarantee behind the
// compiled-execution layer: for every execution mode of Engine.Run
// (shot-safe fan-out with and without state simulation, the two-phase
// synth/feedback pipeline, and the serial simulated fallback), flipping
// Engine.Interpreted must not change a single bit of the RunResult — same
// latencies, same stage tables, same fidelities — at any worker count,
// across seeds. The compiled path is the default everywhere else in the
// suite, so the seed-1 golden outputs pin it too; this test pins it to
// the instruction-walk reference semantics directly.
func TestCompiledMatchesInterpreted(t *testing.T) {
	modes := []struct {
		name     string
		make     func() *Engine
		simulate bool
		dd       bool
	}{
		// Mode A: shot-safe controller, whole shots fan out. QRW exercises
		// fused single-qubit runs around feedback sites.
		{"qubic-qrw-sim", qubicEngine, true, false},
		{"qubic-qrw-nosim", qubicEngine, false, false},
		// Mode B: sequential controller, no simulation — the two-phase
		// pipeline (pooled pulses + one-pass classify on the worker side).
		{"artery-qrw-nosim", arteryEngine, false, false},
		// Mode C: sequential controller + state sim, serial fallback, with
		// dynamical decoupling on so the idle-noise draw order is covered.
		{"artery-qrw-sim-dd", arteryEngine, true, true},
	}
	wl := workload.QRW(3)
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				for seed := uint64(1); seed <= 2; seed++ {
					compiled := m.make()
					compiled.SimulateState = m.simulate
					compiled.EnableDD = m.dd
					compiled.Workers = workers

					interp := m.make()
					interp.SimulateState = m.simulate
					interp.EnableDD = m.dd
					interp.Workers = workers
					interp.Interpreted = true

					cr := compiled.Run(wl, 40, stats.NewRNG(seed))
					ir := interp.Run(wl, 40, stats.NewRNG(seed))
					if !runResultsEqual(cr, ir) {
						t.Fatalf("workers=%d seed=%d: compiled diverged from interpreted:\n%+v\nvs\n%+v",
							workers, seed, cr, ir)
					}
				}
			}
		})
	}
}

// TestCompiledMatchesInterpretedOtherWorkloads sweeps the remaining
// instruction kinds through the differential check: Reset covers
// OpMeasure/OpReset tape ops and thermal initial excitation; MSI covers
// Case-1 sites whose branch bodies fuse multiple single-qubit gates.
func TestCompiledMatchesInterpretedOtherWorkloads(t *testing.T) {
	wls := []*workload.Workload{workload.Reset(2), workload.MSI(3)}
	for _, wl := range wls {
		t.Run(wl.Name, func(t *testing.T) {
			for _, mk := range []func() *Engine{qubicEngine, arteryEngine} {
				compiled := mk()
				compiled.SimulateState = true
				compiled.Workers = 2

				interp := mk()
				interp.SimulateState = true
				interp.Workers = 2
				interp.Interpreted = true

				cr := compiled.Run(wl, 30, stats.NewRNG(7))
				ir := interp.Run(wl, 30, stats.NewRNG(7))
				if !runResultsEqual(cr, ir) {
					t.Fatalf("%s/%s: compiled diverged from interpreted:\n%+v\nvs\n%+v",
						wl.Name, cr.Controller, cr, ir)
				}
			}
		})
	}
}

// TestCompiledMispredictRecoveryMatches forces the mispredict-recovery
// path (pre-executed wrong branch, precompiled inverse tape, corrected
// branch) through the differential check by running the predictive ARTERY
// controller with state simulation over a workload with near-uniform
// priors — QRW commits predictions that are wrong often enough that the
// recovery tape replays every few shots.
func TestCompiledMispredictRecoveryMatches(t *testing.T) {
	wl := workload.QRW(5)
	compiled := arteryEngine()
	compiled.SimulateState = true

	interp := arteryEngine()
	interp.SimulateState = true
	interp.Interpreted = true

	cr := compiled.Run(wl, 60, stats.NewRNG(3))
	ir := interp.Run(wl, 60, stats.NewRNG(3))
	if !runResultsEqual(cr, ir) {
		t.Fatalf("recovery path: compiled diverged from interpreted:\n%+v\nvs\n%+v", cr, ir)
	}
	// The run must actually have exercised recovery for this test to mean
	// anything: committed-but-wrong outcomes exist iff accuracy < 1 with a
	// positive commit rate.
	if cr.CommitRate == 0 || cr.Accuracy == 1 {
		t.Fatalf("no mispredict recovery exercised (commit=%v accuracy=%v)", cr.CommitRate, cr.Accuracy)
	}
}
