package core

import (
	"errors"
	"fmt"
	"math"

	"artery/internal/circuit"
	"artery/internal/controller"
	"artery/internal/fault"
	"artery/internal/quantum"
	"artery/internal/stabilizer"
	"artery/internal/stats"
	"artery/internal/trace"
	"artery/internal/workload"
)

// Backend routing (DESIGN.md "Simulation backends"). The engine can
// advance a shot's physics on either of two quantum.Backend
// implementations: the full state vector (arbitrary gates, fidelity
// readback, ≤ quantum.MaxStateQubits) or the stabilizer tableau
// (Clifford gates only, hundreds of qubits). Selection happens once per
// run from (Engine.Backend, circuit width, the tape's Clifford analysis,
// the noise model):
//
//   - BackendAuto preserves the engine's historical behavior for every
//     circuit within the maxSimQubits state-vector budget, and promotes
//     wider circuits — which previously could not simulate at all — to
//     the tableau when tape and noise qualify.
//   - BackendState forces the state vector and raises the width budget
//     to quantum.MaxStateQubits (for head-to-head backend comparisons).
//   - BackendStabilizer forces the tableau and rejects circuits it
//     cannot faithfully execute with a typed error.
//
// Both backends draw measurement randomness from the same per-shot
// SplitN streams under the one-draw-per-measurement contract
// (quantum.Backend), so a Clifford workload produces bit-identical
// measurement records, controller outcomes and RunResult counters on
// either backend at any worker count. Fidelity is the one exception: a
// tableau has no amplitudes to compare, so stabilizer shots report NaN.

// ErrNoiseNotCliffordSafe is returned (wrapped) when the stabilizer
// backend is requested under a noise model with non-Clifford channels
// (finite T1/T2 or quasi-static detuning).
var ErrNoiseNotCliffordSafe = errors.New("core: noise model is not Clifford-safe (finite T1/T2 or quasi-static detuning)")

// simKind is the per-run resolution of Engine.Backend for one circuit.
type simKind uint8

const (
	simNone simKind = iota // no state simulation: prior-driven physics
	simState
	simTableau
)

// resolveBackend decides which backend (if any) simulates circuit c.
// Only explicit backend requests can fail; BackendAuto always resolves.
func (e *Engine) resolveBackend(plan *circuitPlan, c *circuit.Circuit) (simKind, error) {
	if !e.SimulateState {
		return simNone, nil
	}
	switch e.Backend {
	case quantum.BackendState:
		if c.NumQubits > quantum.MaxStateQubits {
			return simNone, fmt.Errorf("core: state backend cannot hold %d qubits (max %d)", c.NumQubits, quantum.MaxStateQubits)
		}
		return simState, nil
	case quantum.BackendStabilizer:
		if err := plan.tape.StabilizerCompat(); err != nil {
			return simNone, fmt.Errorf("core: stabilizer backend: %w", err)
		}
		if !e.Noise.CliffordSafe() {
			return simNone, fmt.Errorf("%w", ErrNoiseNotCliffordSafe)
		}
		return simTableau, nil
	default: // BackendAuto
		if c.NumQubits <= maxSimQubits {
			return simState, nil
		}
		if c.NumQubits > quantum.MaxStateQubits &&
			e.Noise.CliffordSafe() && plan.tape.StabilizerCompat() == nil {
			return simTableau, nil
		}
		// 17..24 qubits under auto, or an unsimulable wide circuit:
		// latency-only physics, exactly as before this layer existed.
		return simNone, nil
	}
}

// simKindFor is resolveBackend for callers that have already validated
// the configuration (the facade routes through CheckBackend); an
// invalid explicit backend panics here like other configuration errors.
func (e *Engine) simKindFor(plan *circuitPlan, c *circuit.Circuit) simKind {
	sk, err := e.resolveBackend(plan, c)
	if err != nil {
		panic(err)
	}
	return sk
}

// CheckBackend reports whether the engine's backend selection is valid
// for the workload's circuit, without running anything. The error wraps
// circuit.ErrNonClifford, circuit.ErrIrreversibleBody or
// ErrNoiseNotCliffordSafe; errors.Is works through it.
func (e *Engine) CheckBackend(wl *workload.Workload) error {
	if err := ValidateWorkload(wl); err != nil {
		return err
	}
	_, err := e.resolveBackend(e.planFor(wl.Circuit), wl.Circuit)
	return err
}

// tableauPool returns the engine's shared tableau pool for n qubits.
func (e *Engine) tableauPool(n int) *stabilizer.Pool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tabPools == nil {
		e.tabPools = map[int]*stabilizer.Pool{}
	}
	p, ok := e.tabPools[n]
	if !ok {
		p = stabilizer.NewPool(n)
		e.tabPools[n] = p
	}
	return p
}

// runShotTableau executes one shot on a pooled stabilizer backend.
func (e *Engine) runShotTableau(wl *workload.Workload, plan *circuitPlan, rng *stats.RNG, sess *fault.Session, span *trace.ShotSpan) ShotResult {
	pool := e.tableauPool(wl.Circuit.NumQubits)
	b := pool.Get()
	defer pool.Put(b)
	return e.runShotBackend(b, wl, plan, rng, sess, span)
}

// runShotBackend executes one shot against any quantum.Backend,
// mirroring runShotCompiled's draw sequence operation for operation so
// the physics stream is bit-identical to the state-vector path on the
// same per-shot RNG. Two deliberate asymmetries:
//
//   - There is no ideal reference register (a tableau cannot report
//     fidelity), so Fidelity stays NaN. The state path's ideal register
//     consumes randomness in exactly one place — ideal.Reset draws one
//     Measure uniform per TapeReset — so this path burns one
//     rng.Float64() there to keep the streams aligned.
//   - Idle decay channels are draw-free no-ops under the Clifford-safe
//     noise this path requires, so only their depolarizing components
//     (the *B noise helpers) execute.
//
// The caller guarantees plan.tape.StabilizerCompat() == nil and
// e.Noise.CliffordSafe(); both are enforced by resolveBackend.
func (e *Engine) runShotBackend(b quantum.Backend, wl *workload.Workload, plan *circuitPlan, rng *stats.RNG, sess *fault.Session, span *trace.ShotSpan) ShotResult {
	c := wl.Circuit
	tape := plan.tape

	span.Span(trace.StagePayload, 0, wl.GatePayloadNs)

	// Thermal initial excitation; one Bool draw per entry, as on the
	// state path (which applies the same X to noisy and ideal).
	for q, p := range wl.InitExciteP {
		if rng.Bool(p) {
			b.X(q)
		}
	}

	sr := ShotResult{FeedbackLatencyNs: wl.GatePayloadNs, Fidelity: math.NaN()}
	if tape.NumSites > 0 {
		sr.Outcomes = make([]controller.Outcome, 0, tape.NumSites)
	}
	// Clifford-safe noise has no quasi-static component: nil, zero draws
	// (and the state path draws zero here too, keeping streams aligned).
	e.Noise.SampleDetunings(c.NumQubits, rng)
	pp := e.pulsePool()
	for oi := range tape.Ops {
		op := &tape.Ops[oi]
		switch op.Kind {
		case circuit.TapeFused1Q:
			for gi := range op.Gates {
				g := op.Gates[gi]
				circuit.ApplyCliffordGate(b, g)
				if g.Kind != circuit.RZ { // virtual Z is error-free
					e.Noise.AfterGate1QB(b, op.Qubit, rng)
				}
			}
		case circuit.TapeGate2Q:
			circuit.ApplyCliffordGate(b, op.Gate)
			e.Noise.AfterGate2QB(b, op.Gate.Qubits[0], op.Gate.Qubits[1], rng)
		case circuit.TapeMeasure:
			m := e.Noise.NoisyMeasureB(b, op.Qubit, rng)
			if e.RecordMeasurements {
				sr.Measurements = append(sr.Measurements, m)
			}
		case circuit.TapeReset:
			m := b.Reset(op.Qubit, rng)
			rng.Float64() // the state path's ideal-reference Reset draw
			if e.RecordMeasurements {
				sr.Measurements = append(sr.Measurements, m)
			}
		case circuit.TapeFeedback:
			fb := op.FB
			a := plan.analyses[op.Site]
			prior := wl.SiteP1[op.Site]

			// Physical qubit state at readout start.
			m := b.Measure(fb.Qubit, rng)
			if e.RecordMeasurements {
				sr.Measurements = append(sr.Measurements, m)
			}

			pulse := pp.Get()
			e.Channel.Cal.SynthesizeInto(pulse, m, rng)
			sess.GlitchIQ(pulse.Samples)
			span.SetSite(op.Site, fb.Qubit)
			truth := e.Channel.Classifier.ClassifyFullTrace(pulse, span)
			out := e.Ctrl.Feedback(e.siteFor(a, op.Site, fb, prior), controller.Shot{Pulse: pulse, Truth: truth, Faults: sess, Span: span})
			pp.Put(pulse)
			sr.Outcomes = append(sr.Outcomes, out)
			sr.FeedbackLatencyNs += out.LatencyNs

			// Latency-dependent idling; the read qubit's plain idle is a
			// draw-free no-op under Clifford-safe noise, the others' echo
			// windows still cost two X pulses of gate error each.
			for q := 0; q < c.NumQubits; q++ {
				if q == fb.Qubit {
					continue
				}
				e.Noise.ApplyIdleDetunedB(b, q, out.LatencyNs, e.EnableDD, rng)
			}
			// A wrongly pre-executed branch physically runs, is undone,
			// and only then does the correct branch run.
			if out.Committed && !out.Correct {
				wrongTape, invTape := op.OnOne, op.InvOnOne
				if out.Predicted == 0 {
					wrongTape, invTape = op.OnZero, op.InvOnZero
				}
				e.applyTapeNoisyB(b, wrongTape, rng)
				if invTape == nil {
					// Unreachable: StabilizerCompat rejects irreversible
					// bodies before a tableau run starts.
					panic(circuit.ErrIrreversibleBody)
				}
				e.applyTapeNoisyB(b, invTape, rng)
			}
			// The hardware acts on its classification (truth), which may
			// disagree with the physical state m on a readout error.
			bt := op.OnOne
			if truth == 0 {
				bt = op.OnZero
			}
			e.applyTapeNoisyB(b, bt, rng)
		}
	}
	if sess != nil {
		sr.Faults = sess.C
	}
	return sr
}

// applyTapeNoisyB replays a compiled branch-body tape on a backend, gate
// by gate with the per-gate depolarizing draws interleaved exactly as in
// applyTapeNoisy.
func (e *Engine) applyTapeNoisyB(b quantum.Backend, t *circuit.Tape, rng *stats.RNG) {
	for oi := range t.Ops {
		op := &t.Ops[oi]
		switch op.Kind {
		case circuit.TapeFused1Q:
			for gi := range op.Gates {
				g := op.Gates[gi]
				circuit.ApplyCliffordGate(b, g)
				if g.Kind != circuit.RZ { // virtual Z is error-free
					e.Noise.AfterGate1QB(b, op.Qubit, rng)
				}
			}
		case circuit.TapeGate2Q:
			circuit.ApplyCliffordGate(b, op.Gate)
			e.Noise.AfterGate2QB(b, op.Gate.Qubits[0], op.Gate.Qubits[1], rng)
		}
	}
}
