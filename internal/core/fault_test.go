package core

import (
	"runtime"
	"testing"

	"artery/internal/fault"
	"artery/internal/stats"
	"artery/internal/workload"
)

// TestFaultedRunDeterministicAcrossWorkerCounts extends the engine's
// determinism guarantee to fault injection: with an enabled injector, every
// execution mode of Run — shot-safe fan-out, the synth/feedback pipeline,
// and the serial simulated path — produces a bit-identical RunResult
// (latencies, fidelities AND fault counters) at workers 1, 4 and
// GOMAXPROCS.
func TestFaultedRunDeterministicAcrossWorkerCounts(t *testing.T) {
	modes := []struct {
		name     string
		make     func() *Engine
		simulate bool
	}{
		{"baseline-sim", qubicEngine, true},
		{"baseline-nosim", qubicEngine, false},
		{"artery-nosim", arteryEngine, false},
		{"artery-sim", arteryEngine, true},
	}
	cfg := fault.Scaled(0.3)
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	wl := workload.QRW(3)
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 2; seed++ {
				var ref RunResult
				for wi, workers := range workerCounts {
					e := m.make()
					e.SimulateState = m.simulate
					e.Workers = workers
					e.Faults = fault.NewInjector(cfg)
					res := e.Run(wl, 50, stats.NewRNG(seed))
					if wi == 0 {
						ref = res
						if res.Faults.Total() == 0 {
							t.Fatalf("seed %d: no faults injected at Scaled(0.3) over 50 shots", seed)
						}
						continue
					}
					if !runResultsEqual(ref, res) {
						t.Fatalf("seed %d: workers=%d diverged from workers=%d:\n%+v\nvs\n%+v",
							seed, workers, workerCounts[0], res, ref)
					}
				}
			}
		})
	}
}

// TestFaultInjectionPreservesUnfaultedStreams pins the layering contract:
// attaching a disabled (or nil) injector must leave every number of a run
// byte-identical to a run with no injector at all — fault streams are split
// after the physics streams and only when enabled.
func TestFaultInjectionPreservesUnfaultedStreams(t *testing.T) {
	wl := workload.QRW(3)
	run := func(inj *fault.Injector) RunResult {
		e := arteryEngine()
		e.Faults = inj
		return e.Run(wl, 30, stats.NewRNG(5))
	}
	ref := run(nil)
	// DefaultPolicy keeps every rate at zero: Enabled() is false, so no
	// session splitting happens and the physics streams are untouched.
	if got := run(fault.NewInjector(fault.DefaultPolicy())); !runResultsEqual(ref, got) {
		t.Fatalf("disabled injector perturbed the run:\n%+v\nvs\n%+v", got, ref)
	}
	if (ref.Faults != fault.Counters{}) || ref.FallbackRate != 0 {
		t.Fatalf("fault-free run reported fault activity: %+v", ref.Faults)
	}
}

// TestFaultedRunReportsCounters checks the counters actually propagate from
// sessions through ShotResults into the aggregate, and that heavy faults
// drive the fallback machinery.
func TestFaultedRunReportsCounters(t *testing.T) {
	e := arteryEngine()
	e.SimulateState = false
	e.Faults = fault.NewInjector(fault.Scaled(0.5))
	res := e.Run(workload.QRW(5), 120, stats.NewRNG(3))
	if res.Faults.Glitches == 0 {
		t.Error("no IQ glitches at Scaled(0.5)")
	}
	if res.Faults.Outages == 0 {
		t.Error("no readout outages at Scaled(0.5)")
	}
	if res.Faults.TableFaults == 0 {
		t.Error("no table faults at Scaled(0.5)")
	}
	if res.Faults.Jitters == 0 {
		t.Error("no trigger jitters at Scaled(0.5)")
	}
	if res.FallbackRate < 0 || res.FallbackRate > 1 {
		t.Errorf("FallbackRate = %v outside [0,1]", res.FallbackRate)
	}
	if res.Faults.Fallbacks > 0 && res.FallbackRate == 0 {
		t.Error("fallbacks counted but FallbackRate is zero")
	}
	// The faulted run must be slower on average than the clean one.
	clean := arteryEngine()
	clean.SimulateState = false
	cres := clean.Run(workload.QRW(5), 120, stats.NewRNG(3))
	if res.MeanLatencyNs <= cres.MeanLatencyNs {
		t.Errorf("faulted mean latency %v not above clean %v", res.MeanLatencyNs, cres.MeanLatencyNs)
	}
}
