package core

import (
	"math"
	"testing"

	"artery/internal/controller"
	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/quantum"
	"artery/internal/readout"
	"artery/internal/stats"
	"artery/internal/workload"
)

// shared fixtures: one calibrated channel, reused across tests (channel
// calibration is the expensive step).
var (
	testChannel = readout.NewChannel(readout.DefaultCalibration(), 30, 6, stats.NewRNG(42))
	testTopo    = interconnect.PaperTopology()
)

func arteryEngine() *Engine {
	p := predict.New(predict.DefaultConfig(), testChannel)
	return NewEngine(controller.NewArtery(controller.DefaultUnits(), testTopo, p), testChannel, nil)
}

func qubicEngine() *Engine {
	return NewEngine(controller.NewBaseline("QubiC", controller.QubiCOverheadNs, testTopo), testChannel, nil)
}

func TestBaselineLatencyMatchesTable1FirstColumn(t *testing.T) {
	e := qubicEngine()
	e.SimulateState = false
	rng := stats.NewRNG(1)
	res := e.Run(workload.QRW(1), 20, rng)
	// QubiC QRW step=1: 2.15 µs.
	if math.Abs(res.MeanLatencyNs-2150) > 1e-6 {
		t.Fatalf("QubiC QRW-1 latency %v ns, want 2150", res.MeanLatencyNs)
	}
	res5 := e.Run(workload.QRW(5), 20, rng)
	if math.Abs(res5.MeanLatencyNs-5*2150) > 1e-6 {
		t.Fatalf("QubiC QRW-5 latency %v ns, want %v", res5.MeanLatencyNs, 5*2150)
	}
}

func TestArteryBeatsBaselineOnQRW(t *testing.T) {
	rng := stats.NewRNG(2)
	a := arteryEngine()
	a.SimulateState = false
	q := qubicEngine()
	q.SimulateState = false
	wl := workload.QRW(5)
	ra := a.Run(wl, 60, rng)
	rq := q.Run(wl, 60, rng)
	speedup := rq.MeanLatencyNs / ra.MeanLatencyNs
	if speedup < 1.3 {
		t.Fatalf("ARTERY speedup on QRW-5 is %.2fx, want > 1.3x", speedup)
	}
	if ra.Accuracy < 0.85 {
		t.Fatalf("prediction accuracy %v too low", ra.Accuracy)
	}
}

func TestArteryQECCommitsFast(t *testing.T) {
	// QEC's skewed priors make data-correction decisions far faster than
	// QRW's near-uniform coins. QEC sites alternate correction (even
	// index, case 1) and syndrome reset (odd index, case 3, floored at the
	// readout end), so compare only the correction sites.
	rng := stats.NewRNG(3)
	a := arteryEngine()
	a.SimulateState = false
	var qecCorr stats.RunningMean
	wlQEC := workload.QECCycle(1)
	for s := 0; s < 20; s++ {
		sr := a.RunShot(wlQEC, rng)
		for i, o := range sr.Outcomes {
			if i%2 == 0 {
				qecCorr.Add(o.LatencyNs)
			}
		}
	}

	a2 := arteryEngine()
	a2.SimulateState = false
	qrw := a2.Run(workload.QRW(5), 20, rng)
	if qecCorr.Mean() >= qrw.MeanDecisionNs {
		t.Fatalf("QEC correction latency %v not faster than QRW %v",
			qecCorr.Mean(), qrw.MeanDecisionNs)
	}
	// And far below the readout duration (the paper's ~0.4 µs regime).
	if qecCorr.Mean() > 800 {
		t.Fatalf("QEC correction latency %v ns too slow", qecCorr.Mean())
	}
}

func TestResetFloorsAtReadout(t *testing.T) {
	rng := stats.NewRNG(4)
	a := arteryEngine()
	a.SimulateState = false
	res := a.Run(workload.Reset(1), 40, rng)
	// Case-3: never below the 2 µs readout, but well below QubiC's 2.16 µs
	// when predictions commit.
	if res.MeanDecisionNs < 2000 {
		t.Fatalf("reset mean decision %v below readout floor", res.MeanDecisionNs)
	}
	if res.MeanDecisionNs > 2160 {
		t.Fatalf("reset mean decision %v not better than conventional", res.MeanDecisionNs)
	}
}

func TestFidelityComputedAndBounded(t *testing.T) {
	rng := stats.NewRNG(5)
	a := arteryEngine()
	res := a.Run(workload.QRW(2), 25, rng)
	if math.IsNaN(res.MeanFidelity) {
		t.Fatal("fidelity not computed with state simulation on")
	}
	if res.MeanFidelity <= 0 || res.MeanFidelity > 1+1e-9 {
		t.Fatalf("fidelity %v out of bounds", res.MeanFidelity)
	}
	// Short circuits on calibrated hardware keep high fidelity.
	if res.MeanFidelity < 0.8 {
		t.Fatalf("QRW-2 fidelity %v suspiciously low", res.MeanFidelity)
	}
}

func TestArteryFidelityBeatsSlowBaseline(t *testing.T) {
	// Lower feedback latency ⇒ less idle decoherence ⇒ higher fidelity
	// (Figure 13). Compare against the slowest baseline for signal.
	rng := stats.NewRNG(6)
	a := arteryEngine()
	slow := NewEngine(controller.NewBaseline("Reuer et al.", controller.ReuerOverheadNs, testTopo), testChannel, nil)
	wl := workload.QRW(15)
	fa := a.Run(wl, 40, rng).MeanFidelity
	fs := slow.Run(wl, 40, rng).MeanFidelity
	if fa <= fs {
		t.Fatalf("ARTERY fidelity %v not above slow baseline %v", fa, fs)
	}
}

func TestFidelityDegradesWithCircuitLength(t *testing.T) {
	rng := stats.NewRNG(7)
	e := qubicEngine()
	short := e.Run(workload.QRW(2), 30, rng).MeanFidelity
	long := e.Run(workload.QRW(20), 30, rng).MeanFidelity
	if long >= short {
		t.Fatalf("fidelity did not degrade with length: %v -> %v", short, long)
	}
}

func TestRandomWorkloadIncludesPayload(t *testing.T) {
	rng := stats.NewRNG(8)
	e := qubicEngine()
	e.SimulateState = false
	wl := workload.Random(25, stats.NewRNG(99))
	res := e.Run(wl, 10, rng)
	// Latency = payload + one conventional feedback.
	want := wl.GatePayloadNs + 2150
	if math.Abs(res.MeanLatencyNs-want) > 1e-6 {
		t.Fatalf("random latency %v, want %v", res.MeanLatencyNs, want)
	}
}

func TestTeleportationFidelityIdealNoise(t *testing.T) {
	// With an ideal noise model and perfect-classification channel, DQT
	// must teleport perfectly: fidelity 1 for every shot.
	quiet := readout.DefaultCalibration()
	quiet.NoiseSigma = 0.3 // very clean readout
	quiet.T1Ns = math.Inf(1)
	ch := readout.NewChannel(quiet, 30, 6, stats.NewRNG(50))
	p := predict.New(predict.DefaultConfig(), ch)
	e := NewEngine(controller.NewArtery(controller.DefaultUnits(), testTopo, p), ch, quantum.Ideal())
	rng := stats.NewRNG(9)
	res := e.Run(workload.DQT(2), 20, rng)
	if res.MeanFidelity < 0.999 {
		t.Fatalf("noiseless DQT fidelity %v, want ~1", res.MeanFidelity)
	}
}

func TestLargeRegistersSkipStateSim(t *testing.T) {
	rng := stats.NewRNG(10)
	a := arteryEngine()
	res := a.Run(workload.Reset(25), 5, rng)
	if !math.IsNaN(res.MeanFidelity) {
		t.Fatal("25-qubit register should skip state simulation")
	}
	if res.MeanLatencyNs <= 0 {
		t.Fatal("latency missing")
	}
}

func TestRunPanicsOnInvalidWorkload(t *testing.T) {
	rng := stats.NewRNG(11)
	wl := workload.QRW(2)
	wl.SiteP1 = nil
	defer func() {
		if recover() == nil {
			t.Fatal("invalid workload accepted")
		}
	}()
	arteryEngine().Run(wl, 1, rng)
}

func TestMispredictionChurnReducesFidelity(t *testing.T) {
	// Force frequent mispredictions with a hostile prior and loose
	// thresholds; the recovery gate churn plus the longer latency must cost
	// fidelity relative to well-seeded prediction.
	cfg := predict.Config{Theta0: 0.52, Theta1: 0.52, Mode: predict.ModeHistory}
	pBad := predict.New(cfg, testChannel)
	bad := controller.NewArtery(controller.DefaultUnits(), testTopo, pBad)
	bad.PriorWeight = 1e6
	eBad := NewEngine(bad, testChannel, nil)

	rng := stats.NewRNG(12)
	wl := workload.QRW(10)
	// Hostile priors: always predict 1 while the coin is 50/50.
	hostile := *wl
	hostile.SiteP1 = append([]float64(nil), wl.SiteP1...)
	for i := range hostile.SiteP1 {
		hostile.SiteP1[i] = 0.999
	}
	resBad := eBad.Run(&hostile, 40, rng)

	good := arteryEngine()
	resGood := good.Run(wl, 40, rng)
	if resBad.Accuracy > 0.75 {
		t.Skipf("hostile prior did not induce mispredictions (acc %v)", resBad.Accuracy)
	}
	if resGood.MeanFidelity <= resBad.MeanFidelity {
		t.Fatalf("misprediction churn did not cost fidelity: good %v <= bad %v",
			resGood.MeanFidelity, resBad.MeanFidelity)
	}
}

func TestCommitRateReported(t *testing.T) {
	rng := stats.NewRNG(13)
	a := arteryEngine()
	a.SimulateState = false
	res := a.Run(workload.RCNOT(3), 30, rng)
	if res.CommitRate <= 0 || res.CommitRate > 1 {
		t.Fatalf("commit rate %v out of range", res.CommitRate)
	}
	q := qubicEngine()
	q.SimulateState = false
	if r := q.Run(workload.RCNOT(3), 10, rng); r.CommitRate != 0 || r.Accuracy != 1 {
		t.Fatalf("baseline commit/accuracy wrong: %+v", r)
	}
}

func TestCase2AncillaWorkloadRuns(t *testing.T) {
	// The case-2 entanglement-swap workload must pre-execute (commit) and
	// pay the ancilla-preparation pulse on top of the case-1 path.
	rng := stats.NewRNG(14)
	a := arteryEngine()
	a.SimulateState = false
	res := a.Run(workload.EntangleSwap(2), 40, rng)
	if res.CommitRate == 0 {
		t.Fatal("case-2 sites never committed")
	}
	if res.MeanLatencyNs <= 0 {
		t.Fatal("no latency recorded")
	}
	// Still far better than the conventional path on average.
	if res.MeanDecisionNs >= 2160 {
		t.Fatalf("case-2 mean decision %v not better than conventional", res.MeanDecisionNs)
	}
}

func TestCase2FidelityComputable(t *testing.T) {
	rng := stats.NewRNG(15)
	a := arteryEngine()
	res := a.Run(workload.EntangleSwap(2), 20, rng)
	if math.IsNaN(res.MeanFidelity) || res.MeanFidelity < 0.5 {
		t.Fatalf("case-2 fidelity %v", res.MeanFidelity)
	}
}

func TestDynamicalDecouplingImprovesFidelity(t *testing.T) {
	// With quasi-static dephasing in the model, enabling DD on idle windows
	// must recover fidelity on a long feedback circuit.
	noise := quantum.DeviceNoise()
	noise.QuasiStaticSigma = 2e-4 // rad/ns, frozen per shot
	mk := func(dd bool) float64 {
		e := NewEngine(controller.NewBaseline("QubiC", controller.QubiCOverheadNs, testTopo), testChannel, noise)
		e.EnableDD = dd
		return e.Run(workload.QRW(10), 40, stats.NewRNG(16)).MeanFidelity
	}
	plain := mk(false)
	dd := mk(true)
	if dd <= plain {
		t.Fatalf("DD did not improve fidelity: %v vs %v", dd, plain)
	}
}
