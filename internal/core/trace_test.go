package core

import (
	"context"
	"math"
	"reflect"
	"testing"

	"artery/internal/stats"
	"artery/internal/trace"
	"artery/internal/workload"
)

// normNaN makes a RunResult comparable with reflect.DeepEqual by mapping
// a NaN fidelity (state simulation off) to a sentinel.
func normNaN(res RunResult) RunResult {
	if math.IsNaN(res.MeanFidelity) {
		res.MeanFidelity = -1
	}
	return res
}

// tracedRun executes one ARTERY QRW-5 sweep and returns the result plus
// the committed trace stream (nil when tracing is off).
func tracedRun(t *testing.T, shots, workers int, traced bool) (RunResult, []trace.Event) {
	t.Helper()
	e := arteryEngine()
	e.SimulateState = false
	e.Workers = workers
	if traced {
		e.Trace = trace.NewRecorder(0)
		e.Metrics = trace.NewRegistry()
	}
	res := e.Run(workload.QRW(5), shots, stats.NewRNG(1))
	return res, e.Trace.Events()
}

// TestTracingDeterministicAcrossWorkers is the PR's headline guarantee:
// tracing on/off × workers 1/8 all produce the same RunResult, and the
// two traced runs produce the same ordered event stream.
func TestTracingDeterministicAcrossWorkers(t *testing.T) {
	const shots = 60
	ref, _ := tracedRun(t, shots, 1, false)
	refEv := []trace.Event(nil)
	for _, c := range []struct {
		name    string
		workers int
		traced  bool
	}{
		{"off/w8", 8, false},
		{"on/w1", 1, true},
		{"on/w8", 8, true},
	} {
		res, ev := tracedRun(t, shots, c.workers, c.traced)
		if !reflect.DeepEqual(normNaN(res), normNaN(ref)) {
			t.Errorf("%s: RunResult differs from tracing-off workers=1 baseline\n got: %+v\nwant: %+v",
				c.name, res, ref)
		}
		if !c.traced {
			if ev != nil {
				t.Errorf("%s: tracing off but recorder has events", c.name)
			}
			continue
		}
		if len(ev) == 0 {
			t.Fatalf("%s: traced run committed no events", c.name)
		}
		if refEv == nil {
			refEv = ev
			continue
		}
		if !reflect.DeepEqual(ev, refEv) {
			t.Errorf("%s: trace stream differs across worker counts (%d vs %d events)",
				c.name, len(ev), len(refEv))
		}
	}
}

// TestTraceSpansPartitionShotLatency checks the additive-stage invariant
// on a 200-shot QRW-5 trace: for every shot, the durations of its
// additive spans (the shot's gate payload plus each site's pipeline
// stages) sum to that shot's total feedback latency within 1 ns.
func TestTraceSpansPartitionShotLatency(t *testing.T) {
	const shots = 200
	wl := workload.QRW(5)
	res, ev := tracedRun(t, shots, 4, true)
	if len(res.Latencies) != shots {
		t.Fatalf("got %d shot latencies, want %d", len(res.Latencies), shots)
	}

	sum := make([]float64, shots)
	seen := make([]bool, shots)
	sites := make(map[int32]map[int16]bool, shots)
	last := int32(-1)
	for _, e := range ev {
		if e.Shot < last {
			t.Fatalf("trace stream out of shot order: %d after %d", e.Shot, last)
		}
		last = e.Shot
		if !e.Stage.Additive() {
			continue
		}
		seen[e.Shot] = true
		sum[e.Shot] += e.DurationNs()
		if e.Site >= 0 {
			if sites[e.Shot] == nil {
				sites[e.Shot] = map[int16]bool{}
			}
			sites[e.Shot][e.Site] = true
		}
	}
	for shot := 0; shot < shots; shot++ {
		if !seen[shot] {
			t.Fatalf("shot %d has no additive spans", shot)
		}
		if len(sites[int32(shot)]) != wl.NumFeedback() {
			t.Fatalf("shot %d covered %d feedback sites, want %d",
				shot, len(sites[int32(shot)]), wl.NumFeedback())
		}
		want := res.Latencies[shot] + wl.GatePayloadNs
		if d := math.Abs(sum[shot] - want); d > 1 {
			t.Fatalf("shot %d: additive spans sum to %.3f ns, latency+payload is %.3f ns (off by %.3f)",
				shot, sum[shot], want, d)
		}
	}
}

// cancelAfter is a Context whose Err starts reporting Canceled after n
// polls — a deterministic stand-in for a context canceled mid-sweep.
type cancelAfter struct {
	context.Context
	polls, n int
}

func (c *cancelAfter) Err() error {
	c.polls++
	if c.polls > c.n {
		return context.Canceled
	}
	return nil
}

func TestRunContextCancellation(t *testing.T) {
	const shots = 100
	wl := workload.QRW(5)

	for _, workers := range []int{1, 4} {
		// Pre-canceled context: zero shots merged, flag set, aggregates empty.
		e := arteryEngine()
		e.SimulateState = false
		e.Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res := e.RunContext(ctx, wl, shots, stats.NewRNG(1))
		if !res.Canceled || res.Shots != 0 || len(res.Latencies) != 0 {
			t.Fatalf("workers=%d pre-canceled: Canceled=%v Shots=%d len=%d; want true/0/0",
				workers, res.Canceled, res.Shots, len(res.Latencies))
		}
		if res.MeanLatencyNs != 0 {
			t.Fatalf("workers=%d pre-canceled: mean latency %v over zero shots", workers, res.MeanLatencyNs)
		}

		// Canceled after two poll batches: a deterministic partial prefix.
		e = arteryEngine()
		e.SimulateState = false
		e.Workers = workers
		res = e.RunContext(&cancelAfter{Context: context.Background(), n: 2}, wl, shots, stats.NewRNG(1))
		if !res.Canceled || res.Shots == 0 || res.Shots >= shots {
			t.Fatalf("workers=%d mid-cancel: Canceled=%v Shots=%d; want a strict partial prefix",
				workers, res.Canceled, res.Shots)
		}
		if res.Shots%cancelBatch != 0 {
			t.Fatalf("workers=%d mid-cancel: merged %d shots, not a cancelBatch multiple", workers, res.Shots)
		}
		if len(res.Latencies) != res.Shots {
			t.Fatalf("workers=%d mid-cancel: %d latencies for %d shots", workers, len(res.Latencies), res.Shots)
		}

		// The canceled prefix must match the same shots of an uncanceled run.
		e = arteryEngine()
		e.SimulateState = false
		e.Workers = workers
		full := e.Run(wl, shots, stats.NewRNG(1))
		if !reflect.DeepEqual(res.Latencies, full.Latencies[:res.Shots]) {
			t.Fatalf("workers=%d: canceled prefix latencies diverge from the full run", workers)
		}

		// A live context leaves the run untouched.
		e = arteryEngine()
		e.SimulateState = false
		e.Workers = workers
		live := e.RunContext(context.Background(), wl, shots, stats.NewRNG(1))
		if live.Canceled || live.Shots != shots {
			t.Fatalf("workers=%d live ctx: Canceled=%v Shots=%d", workers, live.Canceled, live.Shots)
		}
		if !reflect.DeepEqual(normNaN(live), normNaN(full)) {
			t.Fatalf("workers=%d: RunContext(background) differs from Run", workers)
		}
	}
}

// TestStagesPartitionWithoutTracing checks that RunResult.Stages — which
// is populated from the controllers' latency partitions even with tracing
// off — sums to the run's total feedback latency plus gate payload.
func TestStagesPartitionWithoutTracing(t *testing.T) {
	const shots = 50
	wl := workload.QRW(5)
	res, _ := tracedRun(t, shots, 1, false)
	if len(res.Stages) == 0 {
		t.Fatal("RunResult.Stages empty with tracing off")
	}
	var total float64
	for _, sl := range res.Stages {
		if sl.Count <= 0 {
			t.Fatalf("stage %s has nonpositive count %d", sl.Stage, sl.Count)
		}
		if m := sl.TotalNs / float64(sl.Count); math.Abs(m-sl.MeanNs) > 1e-9 {
			t.Fatalf("stage %s mean %v inconsistent with total/count %v", sl.Stage, sl.MeanNs, m)
		}
		total += sl.TotalNs
	}
	want := res.MeanLatencyNs*float64(shots) + wl.GatePayloadNs*float64(shots)
	if math.Abs(total-want) > 1 {
		t.Fatalf("stage totals %.3f ns vs shot latency+payload %.3f ns", total, want)
	}
}
