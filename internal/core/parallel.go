package core

import (
	"sync"
	"sync/atomic"
)

// forEachShot runs body(i) for every shot index in [0, shots) on a bounded
// worker pool and delivers each result to merge in strictly increasing
// index order, on the caller's goroutine. It is the engine's determinism
// primitive: because shot indices are claimed from a shared counter but
// results are merged by index, neither the merge order nor the merge
// arithmetic depends on how the scheduler interleaves workers.
//
// Memory is bounded by a ticket window of 2×workers shots: a worker must
// hold a ticket to compute a shot, and the merger returns a ticket only
// after consuming a result, so at most window results are ever live in the
// reorder buffer. The scheme is deadlock-free — the merger never waits on
// tickets, and the lowest unmerged index is always claimable (merging i
// shots has returned i tickets, so at least one of the window+i tickets
// supplied so far reaches index i).
//
// canceled is polled with the merged-shot count before each merge; when it
// reports true the merger stops consuming, drains the workers and returns
// early (a nil-safe always-false func disables cancellation). In-flight
// shots past the cancellation point are computed but never merged, so the
// merged prefix is identical to an uncanceled run's prefix.
//
// workers <= 1 degenerates to a plain serial loop with no goroutines.
func forEachShot[T any](shots, workers int, canceled func(int) bool, body func(int) T, merge func(int, T)) {
	if shots <= 0 {
		return
	}
	if workers > shots {
		workers = shots
	}
	if workers <= 1 {
		for i := 0; i < shots; i++ {
			if canceled(i) {
				return
			}
			merge(i, body(i))
		}
		return
	}

	window := 2 * workers
	if window > shots {
		window = shots
	}
	results := make([]T, shots)
	ready := make([]chan struct{}, shots)
	for i := range ready {
		ready[i] = make(chan struct{})
	}
	tickets := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tickets <- struct{}{}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range tickets {
				i := int(next.Add(1)) - 1
				if i >= shots {
					return
				}
				results[i] = body(i)
				close(ready[i])
			}
		}()
	}

	var zero T
	for i := 0; i < shots; i++ {
		if canceled(i) {
			break
		}
		<-ready[i]
		merge(i, results[i])
		results[i] = zero // release the result's memory promptly
		tickets <- struct{}{}
	}
	// The merger is the only ticket sender, so closing here lets workers
	// drain any buffered tickets and exit; on cancellation their remaining
	// in-flight shots are computed but discarded.
	close(tickets)
	wg.Wait()
}
