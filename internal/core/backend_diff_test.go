package core

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"artery/internal/circuit"
	"artery/internal/quantum"
	"artery/internal/stats"
	"artery/internal/workload"
)

// This file is the engine-level backend differential suite: every
// registered Clifford workload must produce bit-identical physics on the
// state-vector and stabilizer backends — same measurement records, same
// controller outcomes, same RunResult counters — under both engine run
// modes (shot-parallel fan-out and the serial predictor pipeline), at
// every worker count, for multiple seeds. Fidelity is the single allowed
// divergence (a tableau has no amplitudes; stabilizer shots report NaN).

// cliffordSafeNoise is the device noise model with its non-Clifford
// channels removed: depolarizing gate error and readout flips stay,
// T1/T2 decay is lifted to infinity, no quasi-static detuning.
func cliffordSafeNoise() *quantum.NoiseModel {
	n := quantum.DeviceNoise()
	n.T1, n.T2 = math.Inf(1), math.Inf(1)
	n.QuasiStaticSigma = 0
	return n
}

// cliffordWorkloads returns every registered workload whose compiled
// tape is stabilizer-compatible, at a size that fits the state vector
// (so both backends can run it head to head).
func cliffordWorkloads(t *testing.T) []*workload.Workload {
	t.Helper()
	params := map[string]int{
		"qrw": 5, "rcnot": 3, "dqt": 2, "rusqnn": 3, "reset": 4,
		"qec": 2, "eswap": 3, "msi": 2, "surface": 3,
	}
	var out []*workload.Workload
	for _, name := range workload.Names() {
		wl, err := workload.ByName(name, params[name])
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if circuit.Compile(wl.Circuit).StabilizerCompat() != nil {
			continue // dqt, rusqnn, msi: non-Clifford by construction
		}
		out = append(out, wl)
	}
	if len(out) < 6 {
		t.Fatalf("only %d Clifford workloads registered, want >= 6 (qrw, rcnot, reset, qec, eswap, surface)", len(out))
	}
	return out
}

// shotRecord is the per-shot evidence compared across backends.
type shotRecord struct {
	Measurements []int
	Outcomes     string // formatted controller outcomes
	LatencyNs    float64
}

// runRecorded runs wl on an engine with the given backend and returns
// the RunResult plus per-shot records captured on the merge path.
func runRecorded(e *Engine, kind quantum.BackendKind, wl *workload.Workload, shots int, seed uint64) (RunResult, []shotRecord) {
	e.Backend = kind
	e.RecordMeasurements = true
	recs := make([]shotRecord, shots)
	e.OnShot = func(shot int, sr ShotResult) {
		recs[shot] = shotRecord{
			Measurements: append([]int(nil), sr.Measurements...),
			Outcomes:     fmt.Sprintf("%+v", sr.Outcomes),
			LatencyNs:    sr.FeedbackLatencyNs,
		}
	}
	res := e.Run(wl, shots, stats.NewRNG(seed))
	return res, recs
}

// compareRuns asserts two runs agree on everything but fidelity.
func compareRuns(t *testing.T, label string, rs RunResult, rt RunResult, ss, st []shotRecord) {
	t.Helper()
	if rs.MeanLatencyNs != rt.MeanLatencyNs {
		t.Errorf("%s: MeanLatencyNs %v (state) != %v (stabilizer)", label, rs.MeanLatencyNs, rt.MeanLatencyNs)
	}
	if rs.Accuracy != rt.Accuracy {
		t.Errorf("%s: Accuracy %v != %v", label, rs.Accuracy, rt.Accuracy)
	}
	if rs.CommitRate != rt.CommitRate {
		t.Errorf("%s: CommitRate %v != %v", label, rs.CommitRate, rt.CommitRate)
	}
	if rs.FallbackRate != rt.FallbackRate {
		t.Errorf("%s: FallbackRate %v != %v", label, rs.FallbackRate, rt.FallbackRate)
	}
	if rs.Faults != rt.Faults {
		t.Errorf("%s: Faults %+v != %+v", label, rs.Faults, rt.Faults)
	}
	if !reflect.DeepEqual(rs.Latencies, rt.Latencies) {
		t.Errorf("%s: per-shot latency vectors differ", label)
	}
	if !reflect.DeepEqual(rs.Stages, rt.Stages) {
		t.Errorf("%s: stage breakdowns differ", label)
	}
	if len(ss) != len(st) {
		t.Fatalf("%s: %d vs %d shot records", label, len(ss), len(st))
	}
	for i := range ss {
		if !reflect.DeepEqual(ss[i].Measurements, st[i].Measurements) {
			t.Fatalf("%s shot %d: measurement records differ\n  state:      %v\n  stabilizer: %v",
				label, i, ss[i].Measurements, st[i].Measurements)
		}
		if ss[i].Outcomes != st[i].Outcomes {
			t.Fatalf("%s shot %d: controller outcomes differ\n  state:      %s\n  stabilizer: %s",
				label, i, ss[i].Outcomes, st[i].Outcomes)
		}
		if ss[i].LatencyNs != st[i].LatencyNs {
			t.Errorf("%s shot %d: latency %v != %v", label, i, ss[i].LatencyNs, st[i].LatencyNs)
		}
	}
}

// TestBackendDifferential is the tentpole determinism contract: for every
// Clifford workload, both engine modes, workers ∈ {1, 4, 8} and two
// seeds, the stabilizer backend reproduces the state-vector physics bit
// for bit.
func TestBackendDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is slow")
	}
	noise := cliffordSafeNoise()
	modes := []struct {
		name string
		mk   func() *Engine
	}{
		{"QubiC", qubicEngine},   // shot-safe: parallel fan-out mode
		{"ARTERY", arteryEngine}, // stateful predictor: serial mode
	}
	for _, wl := range cliffordWorkloads(t) {
		shots := 24
		if wl.Circuit.NumQubits > 10 {
			shots = 8 // 17-qubit state vectors are the slow part
		}
		for _, mode := range modes {
			for _, seed := range []uint64{1, 7} {
				// The state reference is computed serially once; worker
				// counts vary on the stabilizer side (the state side's own
				// worker invariance is covered by the engine's tests).
				ref := mode.mk()
				ref.Noise = noise
				ref.Workers = 1
				rs, ss := runRecorded(ref, quantum.BackendState, wl, shots, seed)
				if !math.IsNaN(rs.MeanFidelity) && rs.MeanFidelity <= 0 {
					t.Fatalf("%s/%s: state run looks broken (fidelity %v)", wl.Name, mode.name, rs.MeanFidelity)
				}
				for _, workers := range []int{1, 4, 8} {
					label := fmt.Sprintf("%s/%s/w%d/seed%d", wl.Name, mode.name, workers, seed)
					tab := mode.mk()
					tab.Noise = noise
					tab.Workers = workers
					rt, st := runRecorded(tab, quantum.BackendStabilizer, wl, shots, seed)
					if !math.IsNaN(rt.MeanFidelity) {
						t.Errorf("%s: stabilizer fidelity = %v, want NaN", label, rt.MeanFidelity)
					}
					compareRuns(t, label, rs, rt, ss, st)
				}
			}
		}
	}
}

// TestBackendDifferentialRecordsNonEmpty guards the suite itself: a
// regression that silently stops recording measurements would make the
// differential vacuous.
func TestBackendDifferentialRecordsNonEmpty(t *testing.T) {
	e := qubicEngine()
	e.Noise = cliffordSafeNoise()
	_, recs := runRecorded(e, quantum.BackendStabilizer, workload.QRW(3), 4, 1)
	for i, r := range recs {
		if len(r.Measurements) == 0 {
			t.Fatalf("shot %d recorded no measurements", i)
		}
	}
}

// TestStabilizerBackendTypedErrors covers the request-rejection paths:
// non-Clifford circuits and non-Clifford-safe noise fail CheckBackend
// with typed errors, without panicking and without running a shot.
func TestStabilizerBackendTypedErrors(t *testing.T) {
	e := qubicEngine()
	e.Noise = cliffordSafeNoise()
	e.Backend = quantum.BackendStabilizer

	if err := e.CheckBackend(workload.MSI(2)); !errors.Is(err, circuit.ErrNonClifford) {
		t.Errorf("MSI (T gates): err = %v, want ErrNonClifford", err)
	}
	if err := e.CheckBackend(workload.RUSQNN(2)); !errors.Is(err, circuit.ErrNonClifford) {
		t.Errorf("RUS-QNN (RY π/4): err = %v, want ErrNonClifford", err)
	}

	noisy := qubicEngine()
	noisy.Backend = quantum.BackendStabilizer // default DeviceNoise: finite T1/T2
	if err := noisy.CheckBackend(workload.QRW(3)); !errors.Is(err, ErrNoiseNotCliffordSafe) {
		t.Errorf("finite T1/T2: err = %v, want ErrNoiseNotCliffordSafe", err)
	}

	if err := e.CheckBackend(workload.QRW(3)); err != nil {
		t.Errorf("valid Clifford workload rejected: %v", err)
	}

	// A feedback body containing a mid-body measurement has no inverse
	// tape, so misprediction recovery would be impossible on a backend
	// without amplitude snapshots: the request must fail with the typed
	// error instead of panicking mid-shot.
	irrev := circuit.New(2)
	body := circuit.Gates(circuit.NewGate1(circuit.X, 1))
	body = append(body, circuit.Instruction{Kind: circuit.OpMeasure, Qubit: 1})
	irrev.AddFeedback(&circuit.Feedback{Qubit: 0, OnOne: body})
	wl := &workload.Workload{Name: "irrev", Circuit: irrev, SiteP1: []float64{0.5}}
	if err := e.CheckBackend(wl); !errors.Is(err, circuit.ErrIrreversibleBody) {
		t.Errorf("measuring body: err = %v, want ErrIrreversibleBody", err)
	}
}

// TestStateBackendWidthError covers the explicit-state width check.
func TestStateBackendWidthError(t *testing.T) {
	e := qubicEngine()
	e.Backend = quantum.BackendState
	if err := e.CheckBackend(workload.SurfaceMemory(5)); err == nil {
		t.Fatal("state backend accepted a 49-qubit register")
	}
}
