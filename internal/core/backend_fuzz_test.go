package core

import (
	"math"
	"reflect"
	"testing"

	"artery/internal/circuit"
	"artery/internal/quantum"
	"artery/internal/workload"
)

// cliffordFuzzGates is the Clifford alphabet the backend fuzzer draws
// from: the fixed single-qubit Cliffords plus the exact-angle rotations
// (the decomposition table of circuit.ApplyCliffordGate).
var cliffordFuzzGates = []func(q int) circuit.Gate{
	func(q int) circuit.Gate { return circuit.NewGate1(circuit.X, q) },
	func(q int) circuit.Gate { return circuit.NewGate1(circuit.Y, q) },
	func(q int) circuit.Gate { return circuit.NewGate1(circuit.Z, q) },
	func(q int) circuit.Gate { return circuit.NewGate1(circuit.H, q) },
	func(q int) circuit.Gate { return circuit.NewGate1(circuit.S, q) },
	func(q int) circuit.Gate { return circuit.NewGate1(circuit.Sdg, q) },
	func(q int) circuit.Gate { return circuit.NewRot(circuit.RX, q, math.Pi/2) },
	func(q int) circuit.Gate { return circuit.NewRot(circuit.RX, q, -math.Pi/2) },
	func(q int) circuit.Gate { return circuit.NewRot(circuit.RY, q, math.Pi/2) },
	func(q int) circuit.Gate { return circuit.NewRot(circuit.RY, q, -math.Pi/2) },
	func(q int) circuit.Gate { return circuit.NewRot(circuit.RZ, q, math.Pi) },
	func(q int) circuit.Gate { return circuit.NewRot(circuit.RX, q, math.Pi) },
}

// buildCliffordDynamic decodes fuzz bytes into a dynamic Clifford
// workload on nq qubits: unitary gates, mid-circuit measurements,
// resets, and feedback sites with reversible single-gate branch bodies.
// Returns nil when the bytes decode to an empty or site-free circuit
// (the interesting differential surface is the dynamic repertoire).
func buildCliffordDynamic(data []byte, nq int) *workload.Workload {
	c := circuit.New(nq)
	var priors []float64
	for i := 0; i+1 < len(data) && len(c.Ins) < 48; i += 2 {
		sel := int(data[i]) % (len(cliffordFuzzGates) + 5)
		q := int(data[i+1]) % nq
		switch {
		case sel < len(cliffordFuzzGates):
			c.AddGate(cliffordFuzzGates[sel](q))
		case sel == len(cliffordFuzzGates):
			q2 := (q + 1 + int(data[i+1]/7)%(nq-1)) % nq
			c.AddGate(circuit.NewGate2(circuit.CNOT, q, q2))
		case sel == len(cliffordFuzzGates)+1:
			q2 := (q + 1 + int(data[i+1]/5)%(nq-1)) % nq
			c.AddGate(circuit.NewGate2(circuit.CZ, q, q2))
		case sel == len(cliffordFuzzGates)+2:
			c.AddMeasure(q)
		case sel == len(cliffordFuzzGates)+3:
			c.AddReset(q)
		default:
			tgt := (q + 1) % nq
			fb := &circuit.Feedback{Qubit: q,
				OnOne: circuit.Gates(circuit.NewGate1(circuit.X, tgt))}
			if data[i+1]%2 == 1 {
				fb.OnZero = circuit.Gates(circuit.NewGate1(circuit.Z, tgt))
			}
			c.AddFeedback(fb)
			// Priors spread over (0,1) so the predictor sees varied skew.
			priors = append(priors, float64(int(data[i+1])%9+1)/10)
		}
	}
	if len(c.Ins) == 0 || len(priors) == 0 {
		return nil
	}
	return &workload.Workload{Name: "fuzz", Circuit: c, SiteP1: priors}
}

// FuzzBackendVsStateVector drives random dynamic Clifford circuits —
// gates, mid-circuit measurement, reset, feedback with reversible
// bodies — through both backends and requires identical measurement
// records and controller outcomes. It is the generative counterpart of
// TestBackendDifferential's fixed workload sweep (`make fuzz-smoke`).
func FuzzBackendVsStateVector(f *testing.F) {
	f.Add([]byte{16, 0, 3, 1, 12, 0, 16, 1, 0, 0}, uint64(1))
	f.Add([]byte{6, 0, 13, 1, 16, 2, 14, 0, 15, 1, 16, 2}, uint64(7))
	f.Add([]byte{9, 3, 12, 4, 16, 0, 16, 1, 16, 2, 16, 3, 16, 4}, uint64(3))
	noise := cliffordSafeNoise()
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		const nq = 5
		wl := buildCliffordDynamic(data, nq)
		if wl == nil {
			return
		}
		if err := ValidateWorkload(wl); err != nil {
			t.Skip() // degenerate decode
		}
		shots := 3
		run := func(kind quantum.BackendKind) (RunResult, []shotRecord) {
			e := qubicEngine()
			e.Noise = noise
			e.Workers = 1
			return runRecorded(e, kind, wl, shots, seed)
		}
		rs, ss := run(quantum.BackendState)
		rt, st := run(quantum.BackendStabilizer)
		if rs.MeanLatencyNs != rt.MeanLatencyNs {
			t.Fatalf("latency diverged: %v vs %v", rs.MeanLatencyNs, rt.MeanLatencyNs)
		}
		for i := range ss {
			if !reflect.DeepEqual(ss[i].Measurements, st[i].Measurements) {
				t.Fatalf("shot %d measurements diverged\n  state:      %v\n  stabilizer: %v\n  circuit: %d ins",
					i, ss[i].Measurements, st[i].Measurements, len(wl.Circuit.Ins))
			}
			if ss[i].Outcomes != st[i].Outcomes {
				t.Fatalf("shot %d outcomes diverged\n  state:      %s\n  stabilizer: %s",
					i, ss[i].Outcomes, st[i].Outcomes)
			}
		}
	})
}
