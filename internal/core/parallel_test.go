package core

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"artery/internal/stats"
	"artery/internal/workload"
)

// never is the disabled cancellation predicate used by tests.
func never(int) bool { return false }

func TestForEachShotOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const shots = 200
		var got []int
		forEachShot(shots, workers, never, func(i int) int {
			return i * i
		}, func(i int, v int) {
			if v != i*i {
				t.Fatalf("workers=%d: merge(%d) got %d, want %d", workers, i, v, i*i)
			}
			got = append(got, i)
		})
		if len(got) != shots {
			t.Fatalf("workers=%d: merged %d shots, want %d", workers, len(got), shots)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("workers=%d: merge order broken at position %d: %v", workers, i, v)
			}
		}
	}
}

func TestForEachShotZeroShots(t *testing.T) {
	called := false
	forEachShot(0, 4, never, func(i int) int { called = true; return 0 },
		func(int, int) { called = true })
	if called {
		t.Fatal("forEachShot(0, ...) invoked a callback")
	}
}

func TestForEachShotBodiesRunConcurrently(t *testing.T) {
	// Exercised under -race by the ci target: bodies touching shared
	// structures (here a mutex-guarded counter) must be race-free.
	var mu sync.Mutex
	n := 0
	forEachShot(100, 8, never, func(i int) int {
		mu.Lock()
		n++
		mu.Unlock()
		return i
	}, func(int, int) {})
	if n != 100 {
		t.Fatalf("ran %d bodies, want 100", n)
	}
}

// runResultsEqual compares two RunResults bit-for-bit, treating NaN
// fidelities as equal.
func runResultsEqual(a, b RunResult) bool {
	if math.IsNaN(a.MeanFidelity) != math.IsNaN(b.MeanFidelity) {
		return false
	}
	if math.IsNaN(a.MeanFidelity) {
		a.MeanFidelity, b.MeanFidelity = 0, 0
	}
	return reflect.DeepEqual(a, b)
}

// TestRunDeterministicAcrossWorkerCounts is the tentpole guarantee: for
// every execution mode of Engine.Run, the RunResult is bit-identical at
// workers=1, workers=4 and workers=GOMAXPROCS, across several seeds.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	modes := []struct {
		name     string
		make     func() *Engine
		simulate bool
	}{
		// Mode A: shot-safe controller, whole shots fan out.
		{"baseline-sim", qubicEngine, true},
		{"baseline-nosim", qubicEngine, false},
		// Mode B: sequential controller, two-phase synth/feedback pipeline.
		{"artery-nosim", arteryEngine, false},
		// Mode C: sequential controller + state sim, serial fallback.
		{"artery-sim", arteryEngine, true},
	}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	wl := workload.QRW(3)
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				var ref RunResult
				for wi, workers := range workerCounts {
					// A fresh engine per run: Artery's Bayesian site
					// histories learn across shots, so reusing one would
					// conflate worker-count effects with learning state.
					e := m.make()
					e.SimulateState = m.simulate
					e.Workers = workers
					res := e.Run(wl, 50, stats.NewRNG(seed))
					if wi == 0 {
						ref = res
						continue
					}
					if !runResultsEqual(ref, res) {
						t.Fatalf("seed %d: workers=%d diverged from workers=%d:\n%+v\nvs\n%+v",
							seed, workers, workerCounts[0], res, ref)
					}
				}
			}
		})
	}
}

// TestRunShotAgreesWithRun pins the equivalence between the public
// single-shot API and Run's per-stream execution: Run(wl, 1, rng) must
// produce exactly the shot RunShot produces from rng's first split.
func TestRunShotAgreesWithRun(t *testing.T) {
	for _, simulate := range []bool{false, true} {
		e := arteryEngine()
		e.SimulateState = simulate
		wl := workload.QRW(2)
		single := e.RunShot(wl, stats.NewRNG(9).SplitN(1)[0])

		e2 := arteryEngine()
		e2.SimulateState = simulate
		res := e2.Run(wl, 1, stats.NewRNG(9))
		if res.Latencies[0] != single.FeedbackLatencyNs {
			t.Fatalf("simulate=%v: Run latency %v != RunShot latency %v",
				simulate, res.Latencies[0], single.FeedbackLatencyNs)
		}
		if simulate && res.MeanFidelity != single.Fidelity {
			t.Fatalf("Run fidelity %v != RunShot fidelity %v", res.MeanFidelity, single.Fidelity)
		}
	}
}
