package core

import (
	"context"
	"math"
	"testing"

	"artery/internal/fault"
	"artery/internal/stats"
	"artery/internal/workload"
)

// rangeRecord captures everything the merge path exposes for one shot.
type rangeRecord struct {
	idx      int
	latency  float64
	fidelity float64
	commits  int
	correct  int
	sites    int
}

// recordRun executes shots (or the range [offset, offset+shots) when
// offset > 0) and returns the OnShot record stream plus the RunResult.
func recordRun(t *testing.T, mk func() *Engine, wl *workload.Workload, seed uint64, workers, offset, shots int) ([]rangeRecord, RunResult) {
	t.Helper()
	e := mk()
	e.Workers = workers
	var recs []rangeRecord
	e.OnShot = func(idx int, sr ShotResult) {
		r := rangeRecord{idx: idx, latency: sr.FeedbackLatencyNs, fidelity: sr.Fidelity, sites: len(sr.Outcomes)}
		for _, o := range sr.Outcomes {
			if o.Committed {
				r.commits++
				if o.Correct {
					r.correct++
				}
			}
		}
		recs = append(recs, r)
	}
	res := e.RunRange(context.Background(), wl, offset, shots, stats.NewRNG(seed))
	return recs, res
}

func sameRecord(a, b rangeRecord) bool {
	if a.idx != b.idx || a.latency != b.latency || a.commits != b.commits || a.correct != b.correct || a.sites != b.sites {
		return false
	}
	// NaN fidelities (state sim off) compare equal to each other.
	if math.IsNaN(a.fidelity) || math.IsNaN(b.fidelity) {
		return math.IsNaN(a.fidelity) && math.IsNaN(b.fidelity)
	}
	return a.fidelity == b.fidelity
}

// TestRunRangeMatchesFullRun shards a run into contiguous ranges and
// requires the concatenated per-shot record stream to be bit-identical to
// the unsharded run — for the sequential ARTERY controller (warmup
// replay), a shot-safe baseline (native offset), with and without state
// simulation, at several worker counts and shard splits.
func TestRunRangeMatchesFullRun(t *testing.T) {
	const shots = 36
	wl := workload.QRW(3)
	cases := []struct {
		name     string
		mk       func() *Engine
		simState bool
	}{
		{"artery-pipeline", arteryEngine, false},
		{"artery-statesim", arteryEngine, true},
		{"qubic-shotsafe", qubicEngine, false},
		{"qubic-statesim", qubicEngine, true},
	}
	splits := [][]int{
		{0, shots},
		{0, 12, shots},
		{0, 7, 19, 30, shots},
		{0, 1, shots - 1, shots},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() *Engine {
				e := tc.mk()
				e.SimulateState = tc.simState
				return e
			}
			full, fullRes := recordRun(t, mk, wl, 7, 1, 0, shots)
			if len(full) != shots {
				t.Fatalf("full run merged %d shots, want %d", len(full), shots)
			}
			for _, workers := range []int{1, 4} {
				for _, split := range splits {
					var got []rangeRecord
					var latSum float64
					for s := 0; s+1 < len(split); s++ {
						lo, hi := split[s], split[s+1]
						recs, res := recordRun(t, mk, wl, 7, workers, lo, hi-lo)
						if res.Shots != hi-lo {
							t.Fatalf("range [%d,%d) merged %d shots", lo, hi, res.Shots)
						}
						if res.Canceled {
							t.Fatalf("range [%d,%d) reported canceled", lo, hi)
						}
						latSum += res.MeanLatencyNs * float64(res.Shots)
						got = append(got, recs...)
					}
					if len(got) != shots {
						t.Fatalf("workers=%d split=%v merged %d shots, want %d", workers, split, len(got), shots)
					}
					for i := range got {
						if !sameRecord(got[i], full[i]) {
							t.Fatalf("workers=%d split=%v shot %d: range %+v != full %+v", workers, split, i, got[i], full[i])
						}
					}
					// The shard latency sums recombine to the full-run mean.
					if mean := latSum / shots; math.Abs(mean-fullRes.MeanLatencyNs) > 1e-9*math.Abs(fullRes.MeanLatencyNs) {
						t.Fatalf("workers=%d split=%v recombined mean %v != full %v", workers, split, mean, fullRes.MeanLatencyNs)
					}
				}
			}
		})
	}
}

// TestRunRangeGlobalIndices verifies OnShot receives global shot indices
// for a range run.
func TestRunRangeGlobalIndices(t *testing.T) {
	recs, res := recordRun(t, func() *Engine {
		e := arteryEngine()
		e.SimulateState = false
		return e
	}, workload.QRW(2), 5, 2, 10, 8)
	if res.Shots != 8 || len(recs) != 8 {
		t.Fatalf("merged %d shots (res %d), want 8", len(recs), res.Shots)
	}
	for i, r := range recs {
		if r.idx != 10+i {
			t.Fatalf("record %d has shot index %d, want %d", i, r.idx, 10+i)
		}
	}
}

// TestRunRangeRejectsFaults documents that fault injection and range
// execution do not compose (fault streams are indexed by total shot
// count).
func TestRunRangeRejectsFaults(t *testing.T) {
	e := arteryEngine()
	e.SimulateState = false
	e.Faults = fault.NewInjector(fault.Scaled(0.2))
	defer func() {
		if recover() == nil {
			t.Fatal("RunRange with faults enabled did not panic")
		}
	}()
	e.RunRange(context.Background(), workload.QRW(1), 3, 2, stats.NewRNG(1))
}

// TestRunRangeCanceledDuringWarmup: cancellation while replaying the
// warmup prefix yields an empty canceled result, never partial garbage.
func TestRunRangeCanceledDuringWarmup(t *testing.T) {
	e := arteryEngine()
	e.SimulateState = false
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := e.RunRange(ctx, workload.QRW(1), 200, 10, stats.NewRNG(1))
	if !res.Canceled {
		t.Fatal("canceled warmup run did not report Canceled")
	}
	if res.Shots != 0 {
		t.Fatalf("canceled warmup run merged %d shots, want 0", res.Shots)
	}
}
