package circuit

import (
	"errors"
	"fmt"
	"math"

	"artery/internal/quantum"
)

// Clifford-purity analysis and execution (DESIGN.md "Simulation
// backends"). Compile classifies every tape — and every feedback branch
// body — as Clifford or not, so the engine can route Clifford circuits
// to the stabilizer tableau backend. A gate is Clifford when it maps
// Pauli operators to Pauli operators: the named gates X, Y, Z, H, S,
// Sdg, CNOT, CZ, SWAP always, and the axis rotations exactly at angles
// 0, ±π/2 and π (mod 2π), where they reduce to named Cliffords up to a
// global phase (irrelevant to both backends' measurement statistics).

// Typed errors the backend router returns when a circuit cannot run on
// the stabilizer backend. They are wrapped with context — test with
// errors.Is.
var (
	// ErrNonClifford marks a tape (or feedback body) containing a gate
	// outside the Clifford group.
	ErrNonClifford = errors.New("circuit: tape contains a non-Clifford gate")
	// ErrIrreversibleBody marks a feedback branch body containing
	// measure/reset instructions. Such bodies have no precompiled
	// inverse; misprediction recovery would fall back to InverseOf,
	// which is only defined for the state-vector path — so non-state
	// backends must reject the circuit up front instead of panicking
	// mid-shot.
	ErrIrreversibleBody = errors.New("circuit: feedback body is irreversible")
)

// cliffordAngleTol is the recognition tolerance for rotation angles.
// Workloads spell Clifford rotations as ±math.Pi/2 literals, so exact
// comparison would suffice; the tolerance only absorbs benign arithmetic
// like negation and is far below any deliberate non-Clifford angle.
const cliffordAngleTol = 1e-9

// cliffordAngleClass classifies a rotation angle mod 2π: 0 for identity,
// ±1 for ±π/2, 2 for π, and ok=false for every other (non-Clifford) angle.
func cliffordAngleClass(angle float64) (class int, ok bool) {
	switch {
	case AngleEq(angle, 0, cliffordAngleTol):
		return 0, true
	case AngleEq(angle, math.Pi/2, cliffordAngleTol):
		return 1, true
	case AngleEq(angle, -math.Pi/2, cliffordAngleTol):
		return -1, true
	case AngleEq(angle, math.Pi, cliffordAngleTol):
		return 2, true
	}
	return 0, false
}

// IsCliffordGate reports whether g is in the Clifford group (up to
// global phase).
func IsCliffordGate(g Gate) bool {
	switch g.Kind {
	case X, Y, Z, H, S, Sdg, CNOT, CZ, SWAP:
		return true
	case RX, RY, RZ:
		_, ok := cliffordAngleClass(g.Angle)
		return ok
	}
	return false
}

// ApplyCliffordGate applies g to a backend using exact Clifford
// decompositions:
//
//	RX(+π/2) = Sdg·H·Sdg    RY(+π/2) = H·Z      RZ(+π/2) ≅ S
//	RX(−π/2) = S·H·S        RY(−π/2) = Z·H      RZ(−π/2) ≅ Sdg
//	RX(π) ≅ X               RY(π) ≅ Y           RZ(π) ≅ Z
//
// The RX/RY(±π/2) identities are exact as matrices; the ≅ cases differ
// by a global phase, which no Backend observable can see. It panics on
// non-Clifford gates — callers gate on the tape's Clifford flag.
func ApplyCliffordGate(b quantum.Backend, g Gate) {
	q := g.Qubits[0]
	switch g.Kind {
	case X:
		b.X(q)
	case Y:
		b.Y(q)
	case Z:
		b.Z(q)
	case H:
		b.H(q)
	case S:
		b.S(q)
	case Sdg:
		b.Sdg(q)
	case CNOT:
		b.CNOT(q, g.Qubits[1])
	case CZ:
		b.CZ(q, g.Qubits[1])
	case SWAP:
		b.SWAP(q, g.Qubits[1])
	case RX:
		switch class, _ := cliffordAngleClass(g.Angle); class {
		case 1:
			b.Sdg(q)
			b.H(q)
			b.Sdg(q)
		case -1:
			b.S(q)
			b.H(q)
			b.S(q)
		case 2:
			b.X(q)
		}
	case RY:
		// Matrix products read right to left: RY(+π/2) = H·Z applies Z
		// first.
		switch class, _ := cliffordAngleClass(g.Angle); class {
		case 1:
			b.Z(q)
			b.H(q)
		case -1:
			b.H(q)
			b.Z(q)
		case 2:
			b.Y(q)
		}
	case RZ:
		switch class, _ := cliffordAngleClass(g.Angle); class {
		case 1:
			b.S(q)
		case -1:
			b.Sdg(q)
		case 2:
			b.Z(q)
		}
	default:
		panic(fmt.Sprintf("circuit: ApplyCliffordGate on non-Clifford gate %v", g.Kind))
	}
}

// analyzeClifford computes the tape's Clifford flag (and, for feedback
// ops, the branch bodies' flags) after compilation.
func analyzeClifford(t *Tape) {
	t.Clifford = true
	for i := range t.Ops {
		op := &t.Ops[i]
		switch op.Kind {
		case TapeFused1Q:
			for _, g := range op.Gates {
				if !IsCliffordGate(g) {
					t.Clifford = false
					if t.NonClifford == (Gate{}) {
						t.NonClifford = g
					}
				}
			}
		case TapeGate2Q:
			if !IsCliffordGate(op.Gate) {
				t.Clifford = false
				if t.NonClifford == (Gate{}) {
					t.NonClifford = op.Gate
				}
			}
		case TapeFeedback:
			for _, body := range []*Tape{op.OnOne, op.OnZero, op.InvOnOne, op.InvOnZero} {
				if body == nil {
					continue
				}
				analyzeClifford(body)
				if !body.Clifford {
					t.Clifford = false
					if t.NonClifford == (Gate{}) {
						t.NonClifford = body.NonClifford
					}
				}
			}
		}
	}
}

// StabilizerCompat reports whether the tape can execute on the
// stabilizer backend: every gate (including feedback branch bodies) must
// be Clifford, and every branch body must be reversible so misprediction
// recovery never reaches the state-vector-only InverseOf fallback. The
// error wraps ErrNonClifford or ErrIrreversibleBody.
func (t *Tape) StabilizerCompat() error {
	if !t.Clifford {
		g := t.NonClifford
		return fmt.Errorf("%w: %v(angle=%g) on qubit %d", ErrNonClifford, g.Kind, g.Angle, g.Qubits[0])
	}
	for i := range t.Ops {
		op := &t.Ops[i]
		if op.Kind != TapeFeedback {
			continue
		}
		if op.InvOnOne == nil {
			return fmt.Errorf("%w: site %d OnOne branch", ErrIrreversibleBody, op.Site)
		}
		if op.InvOnZero == nil {
			return fmt.Errorf("%w: site %d OnZero branch", ErrIrreversibleBody, op.Site)
		}
	}
	return nil
}
