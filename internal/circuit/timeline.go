package circuit

import (
	"fmt"
	"sort"
	"strings"
)

// Timeline is the per-qubit schedule of a circuit under its ASAP timing —
// the static half of the paper's Figure 9. Each instruction becomes one
// span per touched qubit; gaps between spans are the idle windows that
// dynamic timing (and dynamical decoupling) operate on.
type Timeline struct {
	NumQubits int
	// Spans per qubit, sorted by start time.
	Spans [][]Span
	// EndNs is the circuit makespan.
	EndNs float64
}

// Span is one occupied interval on a qubit's timeline.
type Span struct {
	StartNs float64
	EndNs   float64
	// Label describes the occupying operation ("h", "cz", "readout", ...).
	Label string
	// Feedback marks readout spans of feedback sites.
	Feedback bool
}

// BuildTimeline computes the timeline of a circuit.
func BuildTimeline(c *Circuit) *Timeline {
	d := BuildDAG(c)
	t := &Timeline{NumQubits: c.NumQubits, Spans: make([][]Span, c.NumQubits)}
	for i, in := range c.Ins {
		label := ""
		feedback := false
		var qubits []int
		switch in.Kind {
		case OpGate:
			label = in.Gate.Kind.String()
			qubits = in.Gate.QubitList()
		case OpMeasure:
			label = "readout"
			qubits = []int{in.Qubit}
		case OpReset:
			label = "reset"
			qubits = []int{in.Qubit}
		case OpFeedback:
			label = "readout"
			feedback = true
			qubits = []int{in.Feedback.Qubit}
		}
		for _, q := range qubits {
			t.Spans[q] = append(t.Spans[q], Span{
				StartNs:  d.Start[i],
				EndNs:    d.End[i],
				Label:    label,
				Feedback: feedback,
			})
		}
		if d.End[i] > t.EndNs {
			t.EndNs = d.End[i]
		}
	}
	for q := range t.Spans {
		sort.Slice(t.Spans[q], func(a, b int) bool {
			return t.Spans[q][a].StartNs < t.Spans[q][b].StartNs
		})
	}
	return t
}

// IdleWindows returns qubit q's idle intervals of at least minNs between
// its first and last operation — the slots the engine's DD echoes occupy.
func (t *Timeline) IdleWindows(q int, minNs float64) [][2]float64 {
	spans := t.Spans[q]
	var out [][2]float64
	for i := 1; i < len(spans); i++ {
		gap := spans[i].StartNs - spans[i-1].EndNs
		if gap >= minNs {
			out = append(out, [2]float64{spans[i-1].EndNs, spans[i].StartNs})
		}
	}
	return out
}

// BusyNs returns the total occupied time on qubit q.
func (t *Timeline) BusyNs(q int) float64 {
	sum := 0.0
	for _, s := range t.Spans[q] {
		sum += s.EndNs - s.StartNs
	}
	return sum
}

// Render draws the timeline as ASCII, one row per qubit, with nsPerCol
// nanoseconds per character column: '#' gate, '=' readout, '~' feedback
// readout, 'R' reset, '.' idle. It panics for nsPerCol <= 0.
func (t *Timeline) Render(nsPerCol float64) string {
	if nsPerCol <= 0 {
		panic("circuit: Render needs nsPerCol > 0")
	}
	cols := int(t.EndNs/nsPerCol) + 1
	if cols > 4000 {
		cols = 4000 // clamp absurd widths
	}
	var b strings.Builder
	for q := 0; q < t.NumQubits; q++ {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.Spans[q] {
			mark := byte('#')
			switch {
			case s.Feedback:
				mark = '~'
			case s.Label == "readout":
				mark = '='
			case s.Label == "reset":
				mark = 'R'
			}
			from := int(s.StartNs / nsPerCol)
			to := int(s.EndNs / nsPerCol)
			for c := from; c <= to && c < cols; c++ {
				row[c] = mark
			}
		}
		fmt.Fprintf(&b, "q%-3d %s\n", q, row)
	}
	fmt.Fprintf(&b, "     (%.0f ns per column, makespan %.0f ns)\n", nsPerCol, t.EndNs)
	return b.String()
}
