package circuit

import (
	"math"
	"testing"

	"artery/internal/quantum"
)

// fusedCircuit builds a circuit exercising every fusion boundary: a run of
// single-qubit gates on one wire, a wire switch, a two-qubit gate, a
// measurement, and a feedback site with reversible bodies.
func fusedCircuit() *Circuit {
	c := New(2)
	c.AddGate(NewGate1(H, 0))
	c.AddGate(NewRot(RZ, 0, math.Pi/3))
	c.AddGate(NewGate1(S, 0)) // fuses with the two above: one run of 3
	c.AddGate(NewGate1(X, 1)) // wire switch: new run
	c.AddGate(NewGate2(CZ, 0, 1))
	c.AddGate(NewGate1(T, 0))
	c.AddMeasure(0)
	c.AddFeedback(&Feedback{
		Qubit:  1,
		OnOne:  Gates(NewRot(RX, 0, math.Pi/2), NewRot(RZ, 0, 0.7)),
		OnZero: Gates(NewRot(RX, 0, -math.Pi/2)),
	})
	return c
}

func TestCompileFusesAdjacentSameWireGates(t *testing.T) {
	tape := Compile(fusedCircuit())
	// Expected op sequence: fused{H,RZ,S}@0, fused{X}@1, CZ, fused{T}@0,
	// measure@0, feedback@1.
	wantKinds := []TapeOpKind{TapeFused1Q, TapeFused1Q, TapeGate2Q, TapeFused1Q, TapeMeasure, TapeFeedback}
	if len(tape.Ops) != len(wantKinds) {
		t.Fatalf("compiled to %d ops, want %d: %+v", len(tape.Ops), len(wantKinds), tape.Ops)
	}
	for i, k := range wantKinds {
		if tape.Ops[i].Kind != k {
			t.Fatalf("op %d has kind %d, want %d", i, tape.Ops[i].Kind, k)
		}
	}
	if got := len(tape.Ops[0].Gates); got != 3 {
		t.Fatalf("first run fused %d gates, want 3", got)
	}
	if len(tape.Ops[0].Ks) != len(tape.Ops[0].Gates) {
		t.Fatalf("kernels not index-aligned with gates")
	}
	fb := tape.Ops[5]
	if fb.Site != 0 || fb.FB == nil || fb.OnOne == nil || fb.OnZero == nil {
		t.Fatalf("feedback op incomplete: %+v", fb)
	}
	// Both bodies are reversible: inverses precompiled. The OnOne body's two
	// gates share a wire, so its inverse fuses into one run too.
	if fb.InvOnOne == nil || fb.InvOnZero == nil {
		t.Fatalf("reversible bodies missing precompiled inverses")
	}
	if fb.OnOne.CountOps() != 1 || fb.InvOnOne.CountOps() != 1 {
		t.Fatalf("body compile did not fuse: OnOne=%d InvOnOne=%d ops",
			fb.OnOne.CountOps(), fb.InvOnOne.CountOps())
	}
	if tape.NumSites != 1 || len(tape.SiteQubits) != 1 || tape.SiteQubits[0] != 1 {
		t.Fatalf("site bookkeeping wrong: sites=%d qubits=%v", tape.NumSites, tape.SiteQubits)
	}
}

func TestCompileSkipsInverseForIrreversibleBody(t *testing.T) {
	c := New(2)
	c.AddFeedback(&Feedback{
		Qubit:  0,
		OnOne:  []Instruction{{Kind: OpReset, Qubit: 1}}, // irreversible
		OnZero: Gates(NewRot(RX, 1, 1.0)),
	})
	tape := Compile(c)
	fb := tape.Ops[0]
	if fb.InvOnOne != nil {
		t.Fatal("irreversible OnOne body got a precompiled inverse")
	}
	if fb.InvOnZero == nil {
		t.Fatal("reversible OnZero body missing its precompiled inverse")
	}
	// Non-gate instructions are dropped from the body tape, matching the
	// engine's body-execution semantics.
	if fb.OnOne.CountOps() != 0 {
		t.Fatalf("OpReset leaked into compiled body: %d ops", fb.OnOne.CountOps())
	}
}

// statesBitEqual compares every amplitude through math.Float64bits — the
// compiled path's contract is bit-identity, not approximate equality.
func statesBitEqual(a, b *quantum.State) bool {
	n := 1 << uint(a.NumQubits())
	for i := 0; i < n; i++ {
		x, y := a.Amplitude(i), b.Amplitude(i)
		if math.Float64bits(real(x)) != math.Float64bits(real(y)) ||
			math.Float64bits(imag(x)) != math.Float64bits(imag(y)) {
			return false
		}
	}
	return true
}

func TestTapeApplyBitIdenticalToWalk(t *testing.T) {
	c := fusedCircuit()
	// Compile only the gate prefix (Tape.Apply panics on measure/feedback).
	gc := New(c.NumQubits)
	var gates []Gate
	for _, in := range c.Ins {
		if in.Kind == OpGate {
			gates = append(gates, in.Gate)
			gc.AddGate(in.Gate)
		}
	}
	tape := Compile(gc)

	walked := quantum.NewState(c.NumQubits)
	compiled := quantum.NewState(c.NumQubits)
	for _, g := range gates {
		g.Apply(walked)
	}
	tape.Apply(compiled)
	if !statesBitEqual(walked, compiled) {
		t.Fatal("fused tape replay diverged bitwise from gate-by-gate walk")
	}
}

// fuzz1Q is the single-qubit alphabet the fuzzer draws from; rotations
// get an angle, the rest are fixed Cliffords/T.
var fuzz1Q = []GateKind{RX, RY, RZ, X, Y, Z, H, S, Sdg, T, Tdg}

// FuzzCompiledVsInterpreted drives random gate sequences through the
// compiled tape replay and the gate-by-gate walk and requires bit-identical
// amplitudes. The corpus bytes encode (gate selector, qubit) pairs over a
// 3-qubit register, so the fuzzer explores fusion-run shapes (long runs,
// alternating wires, 2Q breakers) rather than raw floats.
func FuzzCompiledVsInterpreted(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1, 2, 3, 7, 0, 0})
	f.Add([]byte{11, 0, 11, 1, 3, 2, 3, 2, 3, 2})
	f.Add([]byte{6, 0, 6, 0, 6, 0, 6, 0, 12, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nq = 3
		c := New(nq)
		for i := 0; i+1 < len(data) && len(c.Ins) < 64; i += 2 {
			sel := int(data[i]) % (len(fuzz1Q) + 2)
			q := int(data[i+1]) % nq
			if sel < len(fuzz1Q) {
				kind := fuzz1Q[sel]
				if kind == RX || kind == RY || kind == RZ {
					// Angle derived from the byte pair: irregular but
					// reproducible.
					angle := float64(int(data[i])*7+int(data[i+1])) * 0.1
					c.AddGate(NewRot(kind, q, angle))
				} else {
					c.AddGate(NewGate1(kind, q))
				}
				continue
			}
			q2 := (q + 1 + int(data[i])%(nq-1)) % nq
			if sel == len(fuzz1Q) {
				c.AddGate(NewGate2(CZ, q, q2))
			} else {
				c.AddGate(NewGate2(CNOT, q, q2))
			}
		}
		if len(c.Ins) == 0 {
			return
		}
		tape := Compile(c)
		walked := quantum.NewState(nq)
		compiled := quantum.NewState(nq)
		for _, in := range c.Ins {
			in.Gate.Apply(walked)
		}
		tape.Apply(compiled)
		if !statesBitEqual(walked, compiled) {
			t.Fatalf("compiled replay diverged bitwise from walk on %d gates", len(c.Ins))
		}
	})
}
