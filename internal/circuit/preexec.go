package circuit

import "fmt"

// PreExecCase classifies a feedback site per Figure 3 of the paper.
type PreExecCase int

// The four pre-execution cases of Figure 3 (b).
const (
	// Case1Independent: the branch acts only on qubits other than the read
	// qubit, with no blocking predecessors — gates pre-execute immediately
	// once the predictor commits (e.g. data-qubit correction in QEC, state
	// transfer corrections).
	Case1Independent PreExecCase = iota + 1
	// Case2Ancilla: the branch contains multi-qubit gates that involve the
	// read qubit; pre-execution is legal on an ancilla that holds the
	// post-collapse classical state of the read qubit.
	Case2Ancilla
	// Case3ReadQubit: the branch operates directly on the read qubit (e.g.
	// active reset); the gate may only fire at the end of the readout, but
	// prediction still removes the classical-processing latency.
	Case3ReadQubit
	// Case4Irreversible: the branch contains a measurement or reset —
	// irreversible, so pre-execution is forbidden.
	Case4Irreversible
)

func (c PreExecCase) String() string {
	switch c {
	case Case1Independent:
		return "case1-independent"
	case Case2Ancilla:
		return "case2-ancilla"
	case Case3ReadQubit:
		return "case3-read-qubit"
	case Case4Irreversible:
		return "case4-irreversible"
	default:
		return fmt.Sprintf("case(%d)", int(c))
	}
}

// PreExecutable reports whether the case permits any pre-execution.
func (c PreExecCase) PreExecutable() bool { return c != Case4Irreversible }

// SiteAnalysis is the result of analyzing one feedback site.
type SiteAnalysis struct {
	Site        int         // instruction index of the feedback
	Case        PreExecCase // Figure-3 classification
	ReadQubit   int
	BranchQubit map[int]bool // qubits used by either branch body
	// RecoveryOnOne/Zero are the inverse programs that undo a wrongly
	// pre-executed OnOne/OnZero body. Nil for case 4.
	RecoveryOnOne  []Instruction
	RecoveryOnZero []Instruction
	// NeedsAncilla lists read-qubit-involving two-qubit gates (case 2) that
	// must be re-targeted onto an ancilla during pre-execution.
	NeedsAncilla bool
	// FloorAtReadoutEnd is true when the branch may not start before the
	// readout pulse completes (case 3).
	FloorAtReadoutEnd bool
}

// AnalyzeSite classifies the feedback site at instruction index site of c,
// applying the DAG constraint analysis of §3. It panics if the instruction
// is not a feedback.
func AnalyzeSite(c *Circuit, site int) *SiteAnalysis {
	if site < 0 || site >= len(c.Ins) || c.Ins[site].Kind != OpFeedback {
		panic(fmt.Sprintf("circuit: instruction %d is not a feedback site", site))
	}
	fb := c.Ins[site].Feedback
	a := &SiteAnalysis{
		Site:        site,
		ReadQubit:   fb.Qubit,
		BranchQubit: map[int]bool{},
	}

	irreversible := false
	touchesRead1Q := false
	touchesRead2Q := false
	for _, body := range [][]Instruction{fb.OnOne, fb.OnZero} {
		for _, in := range body {
			switch in.Kind {
			case OpMeasure, OpReset, OpFeedback:
				irreversible = true
			case OpGate:
				for _, q := range in.Gate.QubitList() {
					a.BranchQubit[q] = true
					if q == fb.Qubit {
						if in.Gate.Kind.TwoQubit() {
							touchesRead2Q = true
						} else {
							touchesRead1Q = true
						}
					}
				}
			}
		}
	}

	switch {
	case irreversible:
		a.Case = Case4Irreversible
	case touchesRead1Q:
		// Single-qubit operations on the read qubit itself (reset-style
		// feedback) can only fire once the readout completes.
		a.Case = Case3ReadQubit
		a.FloorAtReadoutEnd = true
	case touchesRead2Q:
		a.Case = Case2Ancilla
		a.NeedsAncilla = true
	default:
		a.Case = Case1Independent
	}

	if a.Case != Case4Irreversible {
		a.RecoveryOnOne = InverseOf(fb.OnOne)
		a.RecoveryOnZero = InverseOf(fb.OnZero)
	}
	return a
}

// AnalyzeAll classifies every feedback site of c.
func AnalyzeAll(c *Circuit) []*SiteAnalysis {
	sites := c.FeedbackSites()
	out := make([]*SiteAnalysis, len(sites))
	for i, s := range sites {
		out[i] = AnalyzeSite(c, s)
	}
	return out
}

// RetargetToAncilla rewrites a branch body for case-2 pre-execution:
// occurrences of the read qubit are replaced with the ancilla qubit. The
// caller prepares the ancilla in the predicted classical state before
// running the rewritten body (the read qubit has collapsed, so its state is
// classical and clonable).
func RetargetToAncilla(body []Instruction, readQubit, ancilla int) []Instruction {
	out := make([]Instruction, len(body))
	for i, in := range body {
		out[i] = in
		if in.Kind == OpGate {
			g := in.Gate
			for k := range g.Qubits {
				if g.Qubits[k] == readQubit {
					g.Qubits[k] = ancilla
				}
			}
			out[i].Gate = g
		}
	}
	return out
}

// RecoveryProgram returns the full correction sequence executed after a
// misprediction at the analyzed site: the inverse of the pre-executed
// (predicted) branch followed by the correct branch.
func (a *SiteAnalysis) RecoveryProgram(fb *Feedback, predicted int) []Instruction {
	if a.Case == Case4Irreversible {
		panic("circuit: RecoveryProgram for irreversible site")
	}
	var undo, correct []Instruction
	if predicted == 1 {
		undo = a.RecoveryOnOne
		correct = fb.OnZero
	} else {
		undo = a.RecoveryOnZero
		correct = fb.OnOne
	}
	out := make([]Instruction, 0, len(undo)+len(correct))
	out = append(out, undo...)
	out = append(out, correct...)
	return out
}
