package circuit

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a textual serialization of the circuit IR in an
// OpenQASM-2-flavored dialect extended with a feedback block, so workloads
// can be stored, diffed and loaded by external tooling:
//
//	qubits 3
//	h q0
//	cz q0, q1
//	feedback q1 {
//	  on1: x q2; rz(1.5708) q2
//	  on0: -
//	}
//	measure q0
//	reset q2
//
// Gates are lowercase gate names with qubit operands qN; rotation gates
// carry their angle in parentheses (radians). Branch bodies are
// semicolon-separated single-line programs ("-" for an empty branch).

// WriteQASM serializes the circuit.
func WriteQASM(c *Circuit) string {
	var b strings.Builder
	fmt.Fprintf(&b, "qubits %d\n", c.NumQubits)
	for _, in := range c.Ins {
		switch in.Kind {
		case OpGate:
			b.WriteString(gateQASM(in.Gate))
			b.WriteByte('\n')
		case OpMeasure:
			fmt.Fprintf(&b, "measure q%d\n", in.Qubit)
		case OpReset:
			fmt.Fprintf(&b, "reset q%d\n", in.Qubit)
		case OpFeedback:
			fb := in.Feedback
			fmt.Fprintf(&b, "feedback q%d {\n", fb.Qubit)
			fmt.Fprintf(&b, "  on1: %s\n", bodyQASM(fb.OnOne))
			fmt.Fprintf(&b, "  on0: %s\n", bodyQASM(fb.OnZero))
			b.WriteString("}\n")
		}
	}
	return b.String()
}

func gateQASM(g Gate) string {
	switch {
	case g.Kind == RX || g.Kind == RY || g.Kind == RZ:
		return fmt.Sprintf("%s(%.12g) q%d", g.Kind, g.Angle, g.Qubits[0])
	case g.Kind.TwoQubit():
		return fmt.Sprintf("%s q%d, q%d", g.Kind, g.Qubits[0], g.Qubits[1])
	default:
		return fmt.Sprintf("%s q%d", g.Kind, g.Qubits[0])
	}
}

func bodyQASM(body []Instruction) string {
	if len(body) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(body))
	for _, in := range body {
		switch in.Kind {
		case OpGate:
			parts = append(parts, gateQASM(in.Gate))
		case OpMeasure:
			parts = append(parts, fmt.Sprintf("measure q%d", in.Qubit))
		case OpReset:
			parts = append(parts, fmt.Sprintf("reset q%d", in.Qubit))
		default:
			panic("circuit: nested feedback cannot be serialized")
		}
	}
	return strings.Join(parts, "; ")
}

// ParseQASM parses the serialization produced by WriteQASM.
func ParseQASM(src string) (*Circuit, error) {
	lines := strings.Split(src, "\n")
	var c *Circuit
	i := 0
	nextLine := func() (string, bool) {
		for i < len(lines) {
			l := strings.TrimSpace(lines[i])
			i++
			if l != "" && !strings.HasPrefix(l, "//") {
				return l, true
			}
		}
		return "", false
	}

	head, ok := nextLine()
	if !ok || !strings.HasPrefix(head, "qubits ") {
		return nil, fmt.Errorf("circuit: missing 'qubits N' header")
	}
	n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(head, "qubits ")))
	if err != nil || n < 1 {
		return nil, fmt.Errorf("circuit: bad qubit count in %q", head)
	}
	c = New(n)

	for {
		l, ok := nextLine()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(l, "feedback "):
			rest := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(l, "feedback ")), "{")
			q, err := parseQubit(strings.TrimSpace(rest))
			if err != nil {
				return nil, fmt.Errorf("circuit: feedback header %q: %w", l, err)
			}
			fb := &Feedback{Qubit: q}
			for branch := 0; branch < 2; branch++ {
				bl, ok := nextLine()
				if !ok {
					return nil, fmt.Errorf("circuit: unterminated feedback block")
				}
				var target *[]Instruction
				switch {
				case strings.HasPrefix(bl, "on1:"):
					target = &fb.OnOne
					bl = strings.TrimPrefix(bl, "on1:")
				case strings.HasPrefix(bl, "on0:"):
					target = &fb.OnZero
					bl = strings.TrimPrefix(bl, "on0:")
				default:
					return nil, fmt.Errorf("circuit: expected branch line, got %q", bl)
				}
				body, err := parseBody(strings.TrimSpace(bl))
				if err != nil {
					return nil, err
				}
				*target = body
			}
			closer, ok := nextLine()
			if !ok || closer != "}" {
				return nil, fmt.Errorf("circuit: feedback block missing '}'")
			}
			if err := safeAdd(c, Instruction{Kind: OpFeedback, Feedback: fb}); err != nil {
				return nil, err
			}
		default:
			in, err := parseSimple(l)
			if err != nil {
				return nil, err
			}
			if err := safeAdd(c, in); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// safeAdd converts Circuit.Add panics (range checks) into errors.
func safeAdd(c *Circuit, in Instruction) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("circuit: %v", r)
		}
	}()
	c.Add(in)
	return nil
}

func parseBody(s string) ([]Instruction, error) {
	if s == "-" || s == "" {
		return nil, nil
	}
	var out []Instruction
	for _, part := range strings.Split(s, ";") {
		in, err := parseSimple(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, in)
	}
	return out, nil
}

func parseSimple(l string) (Instruction, error) {
	switch {
	case strings.HasPrefix(l, "measure "):
		q, err := parseQubit(strings.TrimSpace(strings.TrimPrefix(l, "measure ")))
		if err != nil {
			return Instruction{}, fmt.Errorf("circuit: %q: %w", l, err)
		}
		return Instruction{Kind: OpMeasure, Qubit: q}, nil
	case strings.HasPrefix(l, "reset "):
		q, err := parseQubit(strings.TrimSpace(strings.TrimPrefix(l, "reset ")))
		if err != nil {
			return Instruction{}, fmt.Errorf("circuit: %q: %w", l, err)
		}
		return Instruction{Kind: OpReset, Qubit: q}, nil
	}
	g, err := parseGate(l)
	if err != nil {
		return Instruction{}, err
	}
	return Instruction{Kind: OpGate, Gate: g}, nil
}

var gateByName = func() map[string]GateKind {
	m := map[string]GateKind{}
	for k := RX; k <= SWAP; k++ {
		m[k.String()] = k
	}
	return m
}()

func parseGate(l string) (Gate, error) {
	sp := strings.IndexByte(l, ' ')
	if sp < 0 {
		return Gate{}, fmt.Errorf("circuit: malformed gate line %q", l)
	}
	head, operands := l[:sp], strings.TrimSpace(l[sp+1:])

	angle := 0.0
	hasAngle := false
	if p := strings.IndexByte(head, '('); p >= 0 {
		if !strings.HasSuffix(head, ")") {
			return Gate{}, fmt.Errorf("circuit: malformed angle in %q", l)
		}
		a, err := strconv.ParseFloat(head[p+1:len(head)-1], 64)
		if err != nil {
			return Gate{}, fmt.Errorf("circuit: bad angle in %q: %w", l, err)
		}
		angle, hasAngle = a, true
		head = head[:p]
	}
	kind, ok := gateByName[head]
	if !ok {
		return Gate{}, fmt.Errorf("circuit: unknown gate %q", head)
	}
	isRot := kind == RX || kind == RY || kind == RZ
	if isRot != hasAngle {
		return Gate{}, fmt.Errorf("circuit: gate %q angle mismatch", l)
	}

	var qs []int
	for _, op := range strings.Split(operands, ",") {
		q, err := parseQubit(strings.TrimSpace(op))
		if err != nil {
			return Gate{}, fmt.Errorf("circuit: %q: %w", l, err)
		}
		qs = append(qs, q)
	}
	switch {
	case kind.TwoQubit() && len(qs) == 2:
		return NewGate2(kind, qs[0], qs[1]), nil
	case !kind.TwoQubit() && len(qs) == 1:
		if isRot {
			return NewRot(kind, qs[0], angle), nil
		}
		return NewGate1(kind, qs[0]), nil
	default:
		return Gate{}, fmt.Errorf("circuit: gate %q has %d operands", l, len(qs))
	}
}

func parseQubit(s string) (int, error) {
	if !strings.HasPrefix(s, "q") {
		return 0, fmt.Errorf("operand %q is not a qubit", s)
	}
	q, err := strconv.Atoi(s[1:])
	if err != nil || q < 0 {
		return 0, fmt.Errorf("operand %q is not a qubit", s)
	}
	return q, nil
}
