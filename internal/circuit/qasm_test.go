package circuit

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"artery/internal/stats"
)

func sampleCircuit() *Circuit {
	c := New(3)
	c.AddGate(NewGate1(H, 0))
	c.AddGate(NewRot(RX, 1, math.Pi/2))
	c.AddGate(NewGate2(CZ, 0, 1))
	c.AddFeedback(&Feedback{
		Qubit:  1,
		OnOne:  Gates(NewGate1(X, 2), NewRot(RZ, 2, 1.25)),
		OnZero: nil,
	})
	c.AddMeasure(0)
	c.AddReset(2)
	return c
}

func TestWriteQASMFormat(t *testing.T) {
	s := WriteQASM(sampleCircuit())
	for _, want := range []string{
		"qubits 3", "h q0", "rx(1.5707963", "cz q0, q1",
		"feedback q1 {", "on1: x q2; rz(1.25) q2", "on0: -", "measure q0", "reset q2",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("serialization missing %q:\n%s", want, s)
		}
	}
}

func circuitsEqual(a, b *Circuit) bool {
	if a.NumQubits != b.NumQubits || len(a.Ins) != len(b.Ins) {
		return false
	}
	for i := range a.Ins {
		x, y := a.Ins[i], b.Ins[i]
		if x.Kind != y.Kind {
			return false
		}
		switch x.Kind {
		case OpGate:
			if x.Gate.Kind != y.Gate.Kind || x.Gate.Qubits != y.Gate.Qubits ||
				math.Abs(x.Gate.Angle-y.Gate.Angle) > 1e-9 {
				return false
			}
		case OpMeasure, OpReset:
			if x.Qubit != y.Qubit {
				return false
			}
		case OpFeedback:
			fx, fy := x.Feedback, y.Feedback
			if fx.Qubit != fy.Qubit || len(fx.OnOne) != len(fy.OnOne) || len(fx.OnZero) != len(fy.OnZero) {
				return false
			}
			for k := range fx.OnOne {
				if fx.OnOne[k].Gate != fy.OnOne[k].Gate {
					return false
				}
			}
		}
	}
	return true
}

func TestQASMRoundTrip(t *testing.T) {
	orig := sampleCircuit()
	parsed, err := ParseQASM(WriteQASM(orig))
	if err != nil {
		t.Fatal(err)
	}
	if !circuitsEqual(orig, parsed) {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", WriteQASM(orig), WriteQASM(parsed))
	}
}

func TestQASMRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		c := New(4)
		nOps := 1 + rng.Intn(15)
		for i := 0; i < nOps; i++ {
			switch rng.Intn(6) {
			case 0:
				c.AddGate(NewRot(RX, rng.Intn(4), rng.Float64()*6-3))
			case 1:
				c.AddGate(NewGate1(GateKind(3+rng.Intn(8)), rng.Intn(4))) // X..Tdg
			case 2:
				a := rng.Intn(4)
				b := (a + 1 + rng.Intn(3)) % 4
				c.AddGate(NewGate2(CZ, a, b))
			case 3:
				c.AddMeasure(rng.Intn(4))
			case 4:
				c.AddReset(rng.Intn(4))
			default:
				c.AddFeedback(&Feedback{
					Qubit: rng.Intn(4),
					OnOne: Gates(NewGate1(X, rng.Intn(4))),
				})
			}
		}
		parsed, err := ParseQASM(WriteQASM(c))
		return err == nil && circuitsEqual(c, parsed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParseQASMErrors(t *testing.T) {
	cases := []string{
		"",                                 // no header
		"qubits 0",                         // bad count
		"qubits 2\nfoo q0",                 // unknown gate
		"qubits 2\nh q5",                   // out of range
		"qubits 2\nh q0, q1",               // wrong arity
		"qubits 2\ncz q0",                  // wrong arity
		"qubits 2\nrx q0",                  // missing angle
		"qubits 2\nh(1.2) q0",              // angle on non-rotation
		"qubits 2\nmeasure x0",             // bad operand
		"qubits 2\nfeedback q0 {",          // unterminated block
		"qubits 2\nrx(zz) q0",              // bad angle literal
		"qubits 2\nfeedback q0 {\noops\n}", // bad branch line
	}
	for _, src := range cases {
		if _, err := ParseQASM(src); err == nil {
			t.Errorf("ParseQASM accepted %q", src)
		}
	}
}

func TestParseQASMSkipsCommentsAndBlanks(t *testing.T) {
	src := `
// a comment
qubits 2

// another
h q0

cz q0, q1
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Ins) != 2 {
		t.Fatalf("parsed %d instructions", len(c.Ins))
	}
}

func TestQASMPreservesSemantics(t *testing.T) {
	// Parsed circuit must act identically on the simulator.
	orig := sampleCircuit()
	parsed, err := ParseQASM(WriteQASM(orig))
	if err != nil {
		t.Fatal(err)
	}
	d1 := BuildDAG(orig)
	d2 := BuildDAG(parsed)
	if d1.Depth() != d2.Depth() {
		t.Fatalf("depth changed: %v vs %v", d1.Depth(), d2.Depth())
	}
	a1 := AnalyzeAll(orig)
	a2 := AnalyzeAll(parsed)
	if len(a1) != len(a2) || a1[0].Case != a2[0].Case {
		t.Fatal("pre-execution analysis changed across round trip")
	}
}
