package circuit

import (
	"fmt"

	"artery/internal/quantum"
)

// This file implements the compilation layer between circuit analysis and
// shot execution (DESIGN.md "Compiled execution"). Compile flattens a
// Circuit into a Tape: a linear []TapeOp the engine replays per shot
// without re-walking the instruction structure, with adjacent single-qubit
// gates on the same wire fused into one kernel chain and feedback branch
// bodies (plus their misprediction-recovery inverses) precompiled.
//
// Fusion never reorders anything: a fused run is a maximal sequence of
// *consecutive* single-qubit gates on one wire, and every other op kind
// breaks the run. Replaying a fused run pair-by-pair performs exactly the
// floating-point operations of the unfused gates in the original order
// (see the bit-identity contract in internal/quantum/kernels.go), so the
// compiled path is bit-identical to the interpreted one — enforced by
// FuzzCompiledVsInterpreted here and the engine-level differential tests
// in internal/core.

// TapeOpKind discriminates compiled operations.
type TapeOpKind uint8

// Tape op kinds.
const (
	// TapeFused1Q is a maximal run of consecutive single-qubit gates on one
	// wire, replayed as one fused kernel chain (ideal evolution) or gate by
	// gate (noisy evolution, which must interleave per-gate noise draws).
	TapeFused1Q TapeOpKind = iota
	// TapeGate2Q is one two-qubit gate.
	TapeGate2Q
	// TapeMeasure is a terminal measurement.
	TapeMeasure
	// TapeReset is an unconditional reset.
	TapeReset
	// TapeFeedback is a feedback site with precompiled branch bodies.
	TapeFeedback
)

// TapeOp is one operation of a compiled circuit. Fields are meaningful per
// kind: Qubit for TapeFused1Q/TapeMeasure/TapeReset (and the measured qubit
// for TapeFeedback), Gates/Ks for TapeFused1Q, Gate for TapeGate2Q, and
// Site/FB plus the body tapes for TapeFeedback.
type TapeOp struct {
	Kind  TapeOpKind
	Qubit int

	// TapeFused1Q: the original gates of the run (needed for per-gate noisy
	// replay and duration accounting) and their kernels, index-aligned.
	Gates []Gate
	Ks    []quantum.K1

	// TapeGate2Q: the gate.
	Gate Gate

	// TapeFeedback: ordinal of this site among the circuit's feedback sites
	// (indexes the engine's per-site analysis slice), the site itself, the
	// compiled branch bodies, and the compiled inverse bodies used for
	// misprediction recovery. Inverse tapes are nil for irreversible
	// (case 4) bodies, which legality analysis never pre-executes.
	Site      int
	FB        *Feedback
	OnOne     *Tape
	OnZero    *Tape
	InvOnOne  *Tape
	InvOnZero *Tape
}

// Tape is a compiled circuit: a flat op list the engine replays per shot.
type Tape struct {
	NumQubits int
	Ops       []TapeOp
	// NumSites is the number of feedback sites; SiteQubits[i] is the
	// measured qubit of site i.
	NumSites   int
	SiteQubits []int
	// Clifford reports whether every gate on the tape — including all
	// feedback branch bodies and their inverses — is in the Clifford
	// group, the precondition for the stabilizer backend. NonClifford
	// is the first offending gate when it is not (for error messages).
	Clifford    bool
	NonClifford Gate
}

// Kernel returns the compiled single-qubit kernel of g. It panics for
// two-qubit gates. The kernel is computed by the same constructors the
// State gate methods use, so precompiling it cannot change a bit.
func (g Gate) Kernel() quantum.K1 {
	switch g.Kind {
	case RX:
		return quantum.KernelRX(g.Angle)
	case RY:
		return quantum.KernelRY(g.Angle)
	case RZ:
		return quantum.KernelRZ(g.Angle)
	case X:
		return quantum.KX()
	case Y:
		return quantum.KY()
	case Z:
		return quantum.KZ()
	case H:
		return quantum.KH()
	case S:
		return quantum.KS()
	case Sdg:
		return quantum.KSdg()
	case T:
		return quantum.KernelT()
	case Tdg:
		return quantum.KernelTdg()
	default:
		panic(fmt.Sprintf("circuit: Kernel of two-qubit gate %v", g.Kind))
	}
}

// tapeBuilder accumulates ops, maintaining the open 1Q fusion run.
type tapeBuilder struct {
	tape Tape
	// open fusion run (runQ < 0 when none)
	runQ     int
	runGates []Gate
	runKs    []quantum.K1
}

func newTapeBuilder(numQubits int) *tapeBuilder {
	return &tapeBuilder{tape: Tape{NumQubits: numQubits}, runQ: -1}
}

func (b *tapeBuilder) flush() {
	if b.runQ < 0 {
		return
	}
	b.tape.Ops = append(b.tape.Ops, TapeOp{
		Kind:  TapeFused1Q,
		Qubit: b.runQ,
		Gates: b.runGates,
		Ks:    b.runKs,
	})
	b.runQ, b.runGates, b.runKs = -1, nil, nil
}

func (b *tapeBuilder) addGate(g Gate) {
	if g.Kind.TwoQubit() {
		b.flush()
		b.tape.Ops = append(b.tape.Ops, TapeOp{Kind: TapeGate2Q, Gate: g})
		return
	}
	q := g.Qubits[0]
	if b.runQ != q {
		b.flush()
		b.runQ = q
	}
	b.runGates = append(b.runGates, g)
	b.runKs = append(b.runKs, g.Kernel())
}

// allGates reports whether a branch body is reversible (contains only
// gates), the precondition for precompiling its inverse.
func allGates(body []Instruction) bool {
	for _, in := range body {
		if in.Kind != OpGate {
			return false
		}
	}
	return true
}

// compileBody compiles a feedback branch body. Non-gate instructions are
// dropped: the engine's interpreted path has always skipped them when
// executing bodies (see applyBody and the ideal branch replay in
// internal/core), so the tape encodes exactly what executes.
func compileBody(body []Instruction, numQubits int) *Tape {
	b := newTapeBuilder(numQubits)
	for _, in := range body {
		if in.Kind == OpGate {
			b.addGate(in.Gate)
		}
	}
	b.flush()
	return &b.tape
}

// Compile flattens c into a replayable op tape. The compile is pure — it
// depends only on the circuit — so the result may be cached and shared by
// any number of concurrent shot workers.
func Compile(c *Circuit) *Tape {
	b := newTapeBuilder(c.NumQubits)
	for _, in := range c.Ins {
		switch in.Kind {
		case OpGate:
			b.addGate(in.Gate)
		case OpMeasure:
			b.flush()
			b.tape.Ops = append(b.tape.Ops, TapeOp{Kind: TapeMeasure, Qubit: in.Qubit})
		case OpReset:
			b.flush()
			b.tape.Ops = append(b.tape.Ops, TapeOp{Kind: TapeReset, Qubit: in.Qubit})
		case OpFeedback:
			b.flush()
			fb := in.Feedback
			op := TapeOp{
				Kind:   TapeFeedback,
				Qubit:  fb.Qubit,
				Site:   b.tape.NumSites,
				FB:     fb,
				OnOne:  compileBody(fb.OnOne, c.NumQubits),
				OnZero: compileBody(fb.OnZero, c.NumQubits),
			}
			if allGates(fb.OnOne) {
				op.InvOnOne = compileBody(InverseOf(fb.OnOne), c.NumQubits)
			}
			if allGates(fb.OnZero) {
				op.InvOnZero = compileBody(InverseOf(fb.OnZero), c.NumQubits)
			}
			b.tape.Ops = append(b.tape.Ops, op)
			b.tape.SiteQubits = append(b.tape.SiteQubits, fb.Qubit)
			b.tape.NumSites++
		default:
			panic("circuit: Compile on unknown instruction kind")
		}
	}
	b.flush()
	analyzeClifford(&b.tape)
	return &b.tape
}

// Apply replays the tape's gate operations on a state with fused kernel
// chains — the ideal (noiseless) evolution. It panics on measure, reset or
// feedback ops, which need an RNG and belong to the engine.
func (t *Tape) Apply(s *quantum.State) {
	for i := range t.Ops {
		op := &t.Ops[i]
		switch op.Kind {
		case TapeFused1Q:
			s.ApplyKernelChain(op.Qubit, op.Ks)
		case TapeGate2Q:
			op.Gate.Apply(s)
		default:
			panic(fmt.Sprintf("circuit: Tape.Apply on non-gate op kind %d", op.Kind))
		}
	}
}

// CountOps returns the number of compiled ops, a coarse fusion metric used
// by tests and diagnostics (fewer ops than gates means fusion happened).
func (t *Tape) CountOps() int { return len(t.Ops) }
