// Package circuit defines the quantum-circuit intermediate representation
// used by ARTERY: plain gates, measurements, resets, and feedback sites
// (mid-circuit measurements whose outcome selects a branch circuit).
//
// On top of the IR the package provides the paper's two static analyses:
//
//   - a dependency DAG with an ASAP schedule (gate durations follow the
//     device calibration: 30 ns XY, 60 ns CZ, 2 µs readout), and
//   - the pre-execution legality analysis of Figure 3, classifying every
//     feedback site into cases 1–4 and synthesizing the inverse-gate
//     recovery sequence used after a misprediction.
package circuit

import (
	"fmt"
	"math"

	"artery/internal/quantum"
)

// GateKind enumerates the gate set of the IR. RX/RY/RZ/CZ are the device
// basis gates (§6.1); the rest are conveniences that the workloads use and
// the simulator executes natively.
type GateKind int

// Gate kinds.
const (
	RX GateKind = iota
	RY
	RZ
	X
	Y
	Z
	H
	S
	Sdg
	T
	Tdg
	CZ
	CNOT
	SWAP
)

var gateNames = [...]string{
	RX: "rx", RY: "ry", RZ: "rz", X: "x", Y: "y", Z: "z", H: "h",
	S: "s", Sdg: "sdg", T: "t", Tdg: "tdg", CZ: "cz", CNOT: "cnot", SWAP: "swap",
}

func (g GateKind) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("gate(%d)", int(g))
}

// TwoQubit reports whether the gate acts on two qubits.
func (g GateKind) TwoQubit() bool { return g == CZ || g == CNOT || g == SWAP }

// Gate durations in nanoseconds (paper §5.4/§6.1: 30 ns XY pulses,
// 60 ns CZ; RZ is virtual and free).
const (
	Gate1QTime  = 30.0
	Gate2QTime  = 60.0
	ReadoutTime = 2000.0
)

// Duration returns the pulse duration of the gate in nanoseconds.
func (g GateKind) Duration() float64 {
	switch {
	case g == RZ:
		return 0 // virtual Z: frame update only
	case g == SWAP:
		return 3 * Gate2QTime
	case g.TwoQubit():
		return Gate2QTime
	default:
		return Gate1QTime
	}
}

// Gate is one gate application.
type Gate struct {
	Kind   GateKind
	Qubits [2]int  // Qubits[1] unused for single-qubit gates
	Angle  float64 // rotation angle for RX/RY/RZ
}

// NewGate1 builds a single-qubit gate.
func NewGate1(k GateKind, q int) Gate { return Gate{Kind: k, Qubits: [2]int{q, -1}} }

// NewRot builds a rotation gate with the given angle.
func NewRot(k GateKind, q int, angle float64) Gate {
	if k != RX && k != RY && k != RZ {
		panic("circuit: NewRot with non-rotation kind")
	}
	return Gate{Kind: k, Qubits: [2]int{q, -1}, Angle: angle}
}

// NewGate2 builds a two-qubit gate.
func NewGate2(k GateKind, a, b int) Gate {
	if !k.TwoQubit() {
		panic("circuit: NewGate2 with single-qubit kind")
	}
	return Gate{Kind: k, Qubits: [2]int{a, b}}
}

// QubitList returns the qubits the gate acts on.
func (g Gate) QubitList() []int {
	if g.Kind.TwoQubit() {
		return []int{g.Qubits[0], g.Qubits[1]}
	}
	return []int{g.Qubits[0]}
}

// Inverse returns the gate whose unitary is the adjoint of g's. Quantum
// circuits are reversible, so every gate has one; this is the basis of the
// misprediction recovery strategy (§3).
func (g Gate) Inverse() Gate {
	switch g.Kind {
	case RX, RY, RZ:
		inv := g
		inv.Angle = -g.Angle
		return inv
	case S:
		return Gate{Kind: Sdg, Qubits: g.Qubits}
	case Sdg:
		return Gate{Kind: S, Qubits: g.Qubits}
	case T:
		return Gate{Kind: Tdg, Qubits: g.Qubits}
	case Tdg:
		return Gate{Kind: T, Qubits: g.Qubits}
	default:
		// X, Y, Z, H, CZ, CNOT, SWAP are self-inverse.
		return g
	}
}

// Apply executes the gate on a state-vector register.
func (g Gate) Apply(s *quantum.State) {
	q0, q1 := g.Qubits[0], g.Qubits[1]
	switch g.Kind {
	case RX:
		s.RX(q0, g.Angle)
	case RY:
		s.RY(q0, g.Angle)
	case RZ:
		s.RZ(q0, g.Angle)
	case X:
		s.X(q0)
	case Y:
		s.Y(q0)
	case Z:
		s.Z(q0)
	case H:
		s.H(q0)
	case S:
		s.S(q0)
	case Sdg:
		s.Sdg(q0)
	case T:
		s.T(q0)
	case Tdg:
		s.Tdg(q0)
	case CZ:
		s.CZ(q0, q1)
	case CNOT:
		s.CNOT(q0, q1)
	case SWAP:
		s.SWAP(q0, q1)
	default:
		panic(fmt.Sprintf("circuit: unknown gate kind %v", g.Kind))
	}
}

func (g Gate) String() string {
	switch {
	case g.Kind == RX || g.Kind == RY || g.Kind == RZ:
		return fmt.Sprintf("%s(%.3f) q%d", g.Kind, g.Angle, g.Qubits[0])
	case g.Kind.TwoQubit():
		return fmt.Sprintf("%s q%d,q%d", g.Kind, g.Qubits[0], g.Qubits[1])
	default:
		return fmt.Sprintf("%s q%d", g.Kind, g.Qubits[0])
	}
}

// OpKind discriminates instruction types.
type OpKind int

// Instruction kinds.
const (
	OpGate OpKind = iota
	OpMeasure
	OpReset
	OpFeedback
)

// Feedback describes one feedback site: measure Qubit, then execute OnOne
// if the outcome is 1 or OnZero if it is 0. Branch bodies are plain
// instruction lists (gates / measures / resets — nested feedback is not
// supported, matching the paper's programs).
type Feedback struct {
	Qubit  int
	OnOne  []Instruction
	OnZero []Instruction
}

// Instruction is one step of a circuit: exactly one of Gate (OpGate),
// the measured/reset qubit (OpMeasure/OpReset), or Feedback (OpFeedback)
// is meaningful, selected by Kind.
type Instruction struct {
	Kind     OpKind
	Gate     Gate
	Qubit    int // for OpMeasure / OpReset
	Feedback *Feedback
}

// Gates wraps a list of gates into instructions.
func Gates(gs ...Gate) []Instruction {
	out := make([]Instruction, len(gs))
	for i, g := range gs {
		out[i] = Instruction{Kind: OpGate, Gate: g}
	}
	return out
}

// QubitList returns the qubits an instruction touches (for feedback: the
// measured qubit plus every qubit of both branches).
func (in Instruction) QubitList() []int {
	switch in.Kind {
	case OpGate:
		return in.Gate.QubitList()
	case OpMeasure, OpReset:
		return []int{in.Qubit}
	case OpFeedback:
		set := map[int]bool{in.Feedback.Qubit: true}
		for _, body := range [][]Instruction{in.Feedback.OnOne, in.Feedback.OnZero} {
			for _, b := range body {
				for _, q := range b.QubitList() {
					set[q] = true
				}
			}
		}
		out := make([]int, 0, len(set))
		for q := range set {
			out = append(out, q)
		}
		return out
	default:
		panic("circuit: unknown instruction kind")
	}
}

// Duration returns the execution time of the instruction in ns. For a
// feedback site this is the readout time only; branch time is accounted
// separately by the feedback engine.
func (in Instruction) Duration() float64 {
	switch in.Kind {
	case OpGate:
		return in.Gate.Kind.Duration()
	case OpMeasure, OpReset, OpFeedback:
		return ReadoutTime
	default:
		return 0
	}
}

// Circuit is an ordered program over NumQubits qubits.
type Circuit struct {
	NumQubits int
	Ins       []Instruction
}

// New returns an empty circuit on n qubits.
func New(n int) *Circuit { return &Circuit{NumQubits: n} }

// Add appends instructions, validating qubit indices.
func (c *Circuit) Add(ins ...Instruction) *Circuit {
	for _, in := range ins {
		for _, q := range in.QubitList() {
			if q < 0 || q >= c.NumQubits {
				panic(fmt.Sprintf("circuit: qubit %d out of range [0,%d)", q, c.NumQubits))
			}
		}
		c.Ins = append(c.Ins, in)
	}
	return c
}

// AddGate appends a gate instruction.
func (c *Circuit) AddGate(g Gate) *Circuit {
	return c.Add(Instruction{Kind: OpGate, Gate: g})
}

// AddMeasure appends a terminal measurement of q.
func (c *Circuit) AddMeasure(q int) *Circuit {
	return c.Add(Instruction{Kind: OpMeasure, Qubit: q})
}

// AddReset appends an unconditional reset of q.
func (c *Circuit) AddReset(q int) *Circuit {
	return c.Add(Instruction{Kind: OpReset, Qubit: q})
}

// AddFeedback appends a feedback site.
func (c *Circuit) AddFeedback(f *Feedback) *Circuit {
	return c.Add(Instruction{Kind: OpFeedback, Feedback: f})
}

// FeedbackSites returns the indices (into Ins) of all feedback sites.
func (c *Circuit) FeedbackSites() []int {
	var out []int
	for i, in := range c.Ins {
		if in.Kind == OpFeedback {
			out = append(out, i)
		}
	}
	return out
}

// CountGates returns the number of plain gate instructions, including those
// inside feedback branches (counting each branch once).
func (c *Circuit) CountGates() int {
	n := 0
	for _, in := range c.Ins {
		switch in.Kind {
		case OpGate:
			n++
		case OpFeedback:
			n += len(in.Feedback.OnOne) + len(in.Feedback.OnZero)
		}
	}
	return n
}

// InverseOf returns the inverse program of a branch body: reversed order,
// each gate inverted. It panics if the body contains a non-gate instruction
// (irreversible bodies are case 4 and must never be pre-executed).
func InverseOf(body []Instruction) []Instruction {
	out := make([]Instruction, 0, len(body))
	for i := len(body) - 1; i >= 0; i-- {
		in := body[i]
		if in.Kind != OpGate {
			panic("circuit: InverseOf on irreversible body")
		}
		out = append(out, Instruction{Kind: OpGate, Gate: in.Gate.Inverse()})
	}
	return out
}

// BodyDuration sums the gate durations of a branch body in ns.
func BodyDuration(body []Instruction) float64 {
	t := 0.0
	for _, in := range body {
		t += in.Duration()
	}
	return t
}

// AngleEq reports whether two angles are equal modulo 2π within tolerance,
// used by tests comparing synthesized inverses.
func AngleEq(a, b, tol float64) bool {
	d := math.Mod(a-b, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	return d < tol || 2*math.Pi-d < tol
}
