package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"artery/internal/quantum"
	"artery/internal/stats"
)

// runPlain executes a (noise-free) feedback circuit on the state-vector
// simulator, returning the final state.
func runPlain(c *Circuit, seed uint64) *quantum.State {
	s := quantum.NewState(c.NumQubits)
	rng := stats.NewRNG(seed)
	for _, in := range c.Ins {
		switch in.Kind {
		case OpGate:
			in.Gate.Apply(s)
		case OpMeasure:
			s.Measure(in.Qubit, rng)
		case OpReset:
			s.Reset(in.Qubit, rng)
		case OpFeedback:
			m := s.Measure(in.Feedback.Qubit, rng)
			body := in.Feedback.OnZero
			if m == 1 {
				body = in.Feedback.OnOne
			}
			for _, b := range body {
				if b.Kind == OpGate {
					b.Gate.Apply(s)
				}
			}
		}
	}
	return s
}

func TestPreExecuteValidation(t *testing.T) {
	c := New(2)
	c.AddFeedback(&Feedback{Qubit: 0, OnOne: Gates(NewGate1(X, 1))})
	if _, err := PreExecute(c, nil); err == nil {
		t.Fatal("missing predictions accepted")
	}
	if _, err := PreExecute(c, []int{2}); err == nil {
		t.Fatal("non-bit prediction accepted")
	}
}

func TestPreExecuteHoistsCase1(t *testing.T) {
	c := New(2)
	c.AddFeedback(&Feedback{
		Qubit:  0,
		OnOne:  Gates(NewGate1(X, 1)),
		OnZero: Gates(NewGate1(Z, 1)),
	})
	out, err := PreExecute(c, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	// Hoisted X, then the verification feedback.
	if out.Ins[0].Kind != OpGate || out.Ins[0].Gate.Kind != X {
		t.Fatalf("first instruction %+v, want hoisted x", out.Ins[0])
	}
	fb := out.Ins[1].Feedback
	if fb == nil || len(fb.OnOne) != 0 {
		t.Fatalf("hit branch should be empty: %+v", fb)
	}
	// Miss branch: X (inverse of X), then Z (the other branch).
	if len(fb.OnZero) != 2 || fb.OnZero[0].Gate.Kind != X || fb.OnZero[1].Gate.Kind != Z {
		t.Fatalf("miss branch wrong: %+v", fb.OnZero)
	}
}

func TestPreExecuteLeavesOtherCasesAlone(t *testing.T) {
	c := New(3)
	c.AddFeedback(&Feedback{Qubit: 0, OnOne: Gates(NewGate1(X, 0))})                      // case 3
	c.AddFeedback(&Feedback{Qubit: 1, OnOne: Gates(NewGate2(CNOT, 1, 2))})                // case 2
	c.AddFeedback(&Feedback{Qubit: 2, OnOne: []Instruction{{Kind: OpMeasure, Qubit: 0}}}) // case 4
	out, err := PreExecute(c, []int{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Ins) != len(c.Ins) {
		t.Fatalf("non-case-1 sites were transformed: %d instructions", len(out.Ins))
	}
	if len(PreExecutableSites(c)) != 0 {
		t.Fatal("no site should be pre-executable")
	}
}

func TestPreExecutableSites(t *testing.T) {
	c := New(3)
	c.AddFeedback(&Feedback{Qubit: 0, OnOne: Gates(NewGate1(X, 1))}) // case 1
	c.AddFeedback(&Feedback{Qubit: 1, OnOne: Gates(NewGate1(X, 1))}) // case 3
	sites := PreExecutableSites(c)
	if len(sites) != 1 || sites[0] != 0 {
		t.Fatalf("pre-executable sites %v", sites)
	}
}

// TestPreExecutePassEquivalence is the Appendix theorem applied to the
// whole pass: the transformed circuit produces exactly the original's
// final state for every outcome, for random case-1 circuits and random
// predictions.
func TestPreExecutePassEquivalence(t *testing.T) {
	f := func(seed uint64, predBits uint8) bool {
		rng := stats.NewRNG(seed)
		c := New(3)
		c.AddGate(NewRot(RY, 0, rng.Float64()*math.Pi))
		c.AddGate(NewRot(RY, 1, rng.Float64()*math.Pi))
		c.AddGate(NewGate2(CZ, 0, 1))
		nSites := 1 + rng.Intn(3)
		for k := 0; k < nSites; k++ {
			// Branches act on qubits 1,2 while qubit 0 is read.
			var on1, on0 []Instruction
			for g := 0; g < 1+rng.Intn(3); g++ {
				q := 1 + rng.Intn(2)
				on1 = append(on1, Gates(NewRot(RX, q, rng.Float64()*2))...)
				if rng.Bool(0.5) {
					on0 = append(on0, Gates(NewGate1(H, q))...)
				}
			}
			c.AddFeedback(&Feedback{Qubit: 0, OnOne: on1, OnZero: on0})
			c.AddGate(NewGate1(H, 0)) // re-randomize the read qubit
		}
		preds := make([]int, nSites)
		for k := range preds {
			preds[k] = int(predBits>>uint(k)) & 1
		}
		out, err := PreExecute(c, preds)
		if err != nil {
			return false
		}
		a := runPlain(c, seed+5)
		b := runPlain(out, seed+5)
		return math.Abs(a.Fidelity(b)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPreExecuteRoundTripsThroughQASM(t *testing.T) {
	c := New(2)
	c.AddGate(NewGate1(H, 0))
	c.AddFeedback(&Feedback{Qubit: 0, OnOne: Gates(NewRot(RX, 1, 0.7))})
	out, err := PreExecute(c, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseQASM(WriteQASM(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Ins) != len(out.Ins) {
		t.Fatal("transformed circuit does not survive serialization")
	}
}
