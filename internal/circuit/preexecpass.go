package circuit

import "fmt"

// PreExecute is the §3 program transformation as a compiler pass: given a
// branch prediction for each feedback site, it hoists the predicted branch
// body ahead of the readout (the gates physically play during the readout
// window) and rewrites the site's branches into verification form — empty
// when the outcome matches the prediction, inverse-program recovery plus
// the correct branch when it does not.
//
// The pass transforms only case-1 sites (branch independent of the read
// qubit), where the Appendix equivalence theorem applies unconditionally.
// Case-2 sites need an ancilla assignment (use RetargetToAncilla and
// restructure explicitly), case-3 sites may not act before the readout
// ends (hoisting would corrupt the measurement), and case-4 sites are
// irreversible; all three are left untouched.
//
// predictions[i] is the predicted outcome of the i-th feedback site (in
// FeedbackSites order). The returned circuit is semantically equivalent to
// the input for every measurement outcome — the package tests verify this
// numerically on random circuits.
func PreExecute(c *Circuit, predictions []int) (*Circuit, error) {
	sites := c.FeedbackSites()
	if len(predictions) != len(sites) {
		return nil, fmt.Errorf("circuit: %d predictions for %d feedback sites", len(predictions), len(sites))
	}
	for i, p := range predictions {
		if p != 0 && p != 1 {
			return nil, fmt.Errorf("circuit: prediction %d for site %d is not a bit", p, i)
		}
	}

	out := New(c.NumQubits)
	siteIdx := 0
	for _, in := range c.Ins {
		if in.Kind != OpFeedback {
			out.Add(in)
			continue
		}
		a := AnalyzeSite(c, c.FeedbackSites()[siteIdx])
		pred := predictions[siteIdx]
		siteIdx++
		if a.Case != Case1Independent {
			out.Add(in) // leave non-case-1 sites to the runtime
			continue
		}
		fb := in.Feedback
		predBody := fb.OnOne
		otherBody := fb.OnZero
		if pred == 0 {
			predBody, otherBody = fb.OnZero, fb.OnOne
		}
		// Hoist the predicted branch ahead of the readout.
		out.Add(predBody...)
		// Verification feedback: nothing on a hit; undo + correct branch on
		// a miss.
		recovery := append(InverseOf(predBody), otherBody...)
		nfb := &Feedback{Qubit: fb.Qubit}
		if pred == 1 {
			nfb.OnOne = nil
			nfb.OnZero = recovery
		} else {
			nfb.OnZero = nil
			nfb.OnOne = recovery
		}
		out.AddFeedback(nfb)
	}
	return out, nil
}

// PreExecutableSites returns the indices (into FeedbackSites order) of the
// sites PreExecute would transform.
func PreExecutableSites(c *Circuit) []int {
	var out []int
	for i, s := range c.FeedbackSites() {
		if AnalyzeSite(c, s).Case == Case1Independent {
			out = append(out, i)
		}
	}
	return out
}
