package circuit

// DAG is the dependency graph of a circuit: instruction j depends on
// instruction i (i -> j) when they share a qubit and i precedes j in
// program order. Gate pre-execution is "altering the temporal ordering of
// operations within the DAG" (§3), so the legality analysis and the
// scheduler both operate on this structure.
type DAG struct {
	c     *Circuit
	Succ  [][]int // Succ[i] = direct successors of instruction i
	Pred  [][]int // Pred[i] = direct predecessors
	Start []float64
	End   []float64
}

// BuildDAG constructs the dependency DAG and an ASAP schedule using the
// calibrated instruction durations. Feedback branch bodies are treated as
// part of their site (the site occupies the readout window).
func BuildDAG(c *Circuit) *DAG {
	n := len(c.Ins)
	d := &DAG{
		c:     c,
		Succ:  make([][]int, n),
		Pred:  make([][]int, n),
		Start: make([]float64, n),
		End:   make([]float64, n),
	}
	last := make(map[int]int) // qubit -> index of last instruction touching it
	for i, in := range c.Ins {
		seen := map[int]bool{}
		for _, q := range in.QubitList() {
			if p, ok := last[q]; ok && !seen[p] {
				d.Succ[p] = append(d.Succ[p], i)
				d.Pred[i] = append(d.Pred[i], p)
				seen[p] = true
			}
			last[q] = i
		}
	}
	// ASAP schedule: instructions are already topologically ordered by
	// program order.
	for i, in := range c.Ins {
		start := 0.0
		for _, p := range d.Pred[i] {
			if d.End[p] > start {
				start = d.End[p]
			}
		}
		d.Start[i] = start
		d.End[i] = start + in.Duration()
	}
	return d
}

// Depth returns the ASAP makespan of the circuit in ns.
func (d *DAG) Depth() float64 {
	m := 0.0
	for _, e := range d.End {
		if e > m {
			m = e
		}
	}
	return m
}

// CriticalPath returns one longest instruction chain (by duration) as a
// list of instruction indices, root first.
func (d *DAG) CriticalPath() []int {
	n := len(d.c.Ins)
	if n == 0 {
		return nil
	}
	// The instruction with the latest end time terminates a critical path.
	end := 0
	for i := 1; i < n; i++ {
		if d.End[i] > d.End[end] {
			end = i
		}
	}
	var path []int
	for i := end; ; {
		path = append(path, i)
		// Follow the predecessor that determines our start time.
		next := -1
		for _, p := range d.Pred[i] {
			if d.End[p] == d.Start[i] {
				next = p
				break
			}
		}
		if next < 0 {
			break
		}
		i = next
	}
	// Reverse to root-first order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return path
}

// QubitBusyUntil returns, for each qubit, the time at which its last
// scheduled instruction before index site completes. Used by the
// pre-execution analysis to decide whether branch qubits are free during
// the readout window.
func (d *DAG) QubitBusyUntil(site int) map[int]float64 {
	busy := map[int]float64{}
	for i := 0; i < site; i++ {
		for _, q := range d.c.Ins[i].QubitList() {
			if d.End[i] > busy[q] {
				busy[q] = d.End[i]
			}
		}
	}
	return busy
}
