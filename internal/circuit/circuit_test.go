package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"artery/internal/quantum"
	"artery/internal/stats"
)

func TestGateInverses(t *testing.T) {
	rng := stats.NewRNG(1)
	gates := []Gate{
		NewRot(RX, 0, 1.1),
		NewRot(RY, 1, -0.7),
		NewRot(RZ, 2, 2.9),
		NewGate1(X, 0), NewGate1(Y, 1), NewGate1(Z, 2), NewGate1(H, 0),
		NewGate1(S, 1), NewGate1(Sdg, 2), NewGate1(T, 0), NewGate1(Tdg, 1),
		NewGate2(CZ, 0, 2), NewGate2(CNOT, 1, 0), NewGate2(SWAP, 2, 1),
	}
	for _, g := range gates {
		s := quantum.NewState(3)
		// Random-ish initial state.
		for q := 0; q < 3; q++ {
			s.RY(q, rng.Float64()*math.Pi)
			s.RZ(q, rng.Float64()*math.Pi)
		}
		s.CZ(0, 1)
		ref := s.Clone()
		g.Apply(s)
		g.Inverse().Apply(s)
		if f := s.Fidelity(ref); math.Abs(f-1) > 1e-10 {
			t.Errorf("%v followed by inverse is not identity: fidelity %v", g, f)
		}
	}
}

func TestInverseIsInvolutionProperty(t *testing.T) {
	f := func(kind uint8, angle float64) bool {
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			return true
		}
		k := GateKind(int(kind) % 14)
		var g Gate
		switch k {
		case RX, RY, RZ:
			g = NewRot(k, 0, angle)
		case CZ, CNOT, SWAP:
			g = NewGate2(k, 0, 1)
		default:
			g = NewGate1(k, 0)
		}
		inv2 := g.Inverse().Inverse()
		return inv2.Kind == g.Kind && inv2.Angle == g.Angle && inv2.Qubits == g.Qubits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGateDurations(t *testing.T) {
	if NewGate1(X, 0).Kind.Duration() != Gate1QTime {
		t.Fatal("1q duration wrong")
	}
	if NewGate2(CZ, 0, 1).Kind.Duration() != Gate2QTime {
		t.Fatal("CZ duration wrong")
	}
	if NewRot(RZ, 0, 1).Kind.Duration() != 0 {
		t.Fatal("virtual RZ should be free")
	}
	if NewGate2(SWAP, 0, 1).Kind.Duration() != 3*Gate2QTime {
		t.Fatal("SWAP duration wrong")
	}
}

func TestCircuitAddValidation(t *testing.T) {
	c := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range qubit did not panic")
		}
	}()
	c.AddGate(NewGate1(X, 5))
}

func TestCountGatesIncludesBranches(t *testing.T) {
	c := New(3)
	c.AddGate(NewGate1(H, 0))
	c.AddFeedback(&Feedback{
		Qubit: 0,
		OnOne: Gates(NewGate1(X, 1), NewGate1(Z, 1)),
	})
	if n := c.CountGates(); n != 3 {
		t.Fatalf("CountGates = %d, want 3", n)
	}
}

func TestDAGDependencies(t *testing.T) {
	c := New(3)
	c.AddGate(NewGate1(H, 0))       // 0
	c.AddGate(NewGate2(CZ, 0, 1))   // 1 depends on 0
	c.AddGate(NewGate1(X, 2))       // 2 independent
	c.AddGate(NewGate2(CNOT, 1, 2)) // 3 depends on 1 and 2
	d := BuildDAG(c)
	if len(d.Pred[0]) != 0 || len(d.Pred[2]) != 0 {
		t.Fatal("roots have predecessors")
	}
	if len(d.Pred[1]) != 1 || d.Pred[1][0] != 0 {
		t.Fatalf("instruction 1 preds = %v", d.Pred[1])
	}
	if len(d.Pred[3]) != 2 {
		t.Fatalf("instruction 3 preds = %v", d.Pred[3])
	}
	// ASAP times: H ends at 30; CZ 30..90; X 0..30; CNOT 90..150.
	if d.Start[3] != 90 || d.End[3] != 150 {
		t.Fatalf("instruction 3 scheduled [%v,%v]", d.Start[3], d.End[3])
	}
	if got := d.Depth(); got != 150 {
		t.Fatalf("Depth = %v, want 150", got)
	}
}

func TestDAGNoDuplicateEdgeFor2QPair(t *testing.T) {
	c := New(2)
	c.AddGate(NewGate2(CZ, 0, 1))
	c.AddGate(NewGate2(CZ, 0, 1))
	d := BuildDAG(c)
	if len(d.Pred[1]) != 1 {
		t.Fatalf("duplicate dependency edges: %v", d.Pred[1])
	}
}

func TestCriticalPath(t *testing.T) {
	c := New(3)
	c.AddGate(NewGate1(H, 0))     // 0
	c.AddGate(NewGate2(CZ, 0, 1)) // 1
	c.AddGate(NewGate1(X, 2))     // 2 (off critical path)
	d := BuildDAG(c)
	p := d.CriticalPath()
	if len(p) != 2 || p[0] != 0 || p[1] != 1 {
		t.Fatalf("critical path = %v, want [0 1]", p)
	}
}

func TestQubitBusyUntil(t *testing.T) {
	c := New(2)
	c.AddGate(NewGate1(H, 0))
	c.AddGate(NewGate2(CZ, 0, 1))
	c.AddFeedback(&Feedback{Qubit: 0, OnOne: Gates(NewGate1(X, 1))})
	d := BuildDAG(c)
	busy := d.QubitBusyUntil(2)
	if busy[0] != 90 || busy[1] != 90 {
		t.Fatalf("busy = %v", busy)
	}
}

func mkFB(readQ int, onOne, onZero []Instruction) (*Circuit, *Feedback) {
	c := New(4)
	fb := &Feedback{Qubit: readQ, OnOne: onOne, OnZero: onZero}
	c.AddFeedback(fb)
	return c, fb
}

func TestCase1Classification(t *testing.T) {
	// X gate on another qubit: case 1 (QEC data-qubit correction pattern).
	c, _ := mkFB(1, Gates(NewGate1(X, 2)), nil)
	a := AnalyzeSite(c, 0)
	if a.Case != Case1Independent {
		t.Fatalf("case = %v, want case1", a.Case)
	}
	if !a.Case.PreExecutable() || a.FloorAtReadoutEnd || a.NeedsAncilla {
		t.Fatal("case1 flags wrong")
	}
	if len(a.RecoveryOnOne) != 1 || a.RecoveryOnOne[0].Gate.Kind != X {
		t.Fatalf("recovery = %v", a.RecoveryOnOne)
	}
}

func TestCase2Classification(t *testing.T) {
	// Two-qubit gate involving the read qubit: case 2 (ancilla).
	c, _ := mkFB(1, Gates(NewGate2(CNOT, 1, 2)), nil)
	a := AnalyzeSite(c, 0)
	if a.Case != Case2Ancilla {
		t.Fatalf("case = %v, want case2", a.Case)
	}
	if !a.NeedsAncilla {
		t.Fatal("case2 must need ancilla")
	}
}

func TestCase3Classification(t *testing.T) {
	// Reset-style X on the read qubit: case 3.
	c, _ := mkFB(1, Gates(NewGate1(X, 1)), nil)
	a := AnalyzeSite(c, 0)
	if a.Case != Case3ReadQubit {
		t.Fatalf("case = %v, want case3", a.Case)
	}
	if !a.FloorAtReadoutEnd {
		t.Fatal("case3 must floor at readout end")
	}
}

func TestCase4Classification(t *testing.T) {
	// Measurement in the branch: case 4, never pre-executable.
	c, _ := mkFB(1, []Instruction{{Kind: OpMeasure, Qubit: 2}}, nil)
	a := AnalyzeSite(c, 0)
	if a.Case != Case4Irreversible {
		t.Fatalf("case = %v, want case4", a.Case)
	}
	if a.Case.PreExecutable() {
		t.Fatal("case4 must not be pre-executable")
	}
	if a.RecoveryOnOne != nil {
		t.Fatal("case4 must have no recovery program")
	}
}

func TestCase3TakesPrecedenceOverCase2(t *testing.T) {
	// Branch with both a 1q gate on the read qubit and a 2q gate through it:
	// the stricter case 3 wins.
	c, _ := mkFB(1, Gates(NewGate1(X, 1), NewGate2(CZ, 1, 2)), nil)
	a := AnalyzeSite(c, 0)
	if a.Case != Case3ReadQubit {
		t.Fatalf("case = %v, want case3", a.Case)
	}
}

func TestAnalyzeAll(t *testing.T) {
	c := New(4)
	c.AddFeedback(&Feedback{Qubit: 0, OnOne: Gates(NewGate1(X, 1))})
	c.AddGate(NewGate1(H, 2))
	c.AddFeedback(&Feedback{Qubit: 2, OnOne: Gates(NewGate1(X, 2))})
	all := AnalyzeAll(c)
	if len(all) != 2 {
		t.Fatalf("found %d sites, want 2", len(all))
	}
	if all[0].Case != Case1Independent || all[1].Case != Case3ReadQubit {
		t.Fatalf("cases = %v, %v", all[0].Case, all[1].Case)
	}
}

func TestRetargetToAncilla(t *testing.T) {
	body := Gates(NewGate2(CNOT, 1, 2), NewGate1(H, 2), NewGate2(CZ, 3, 1))
	out := RetargetToAncilla(body, 1, 0)
	if out[0].Gate.Qubits[0] != 0 || out[0].Gate.Qubits[1] != 2 {
		t.Fatalf("CNOT not retargeted: %v", out[0].Gate)
	}
	if out[1].Gate.Qubits[0] != 2 {
		t.Fatalf("unrelated gate changed: %v", out[1].Gate)
	}
	if out[2].Gate.Qubits[1] != 0 {
		t.Fatalf("CZ not retargeted: %v", out[2].Gate)
	}
	// Original body untouched.
	if body[0].Gate.Qubits[0] != 1 {
		t.Fatal("RetargetToAncilla mutated input")
	}
}

func TestRecoveryProgram(t *testing.T) {
	onOne := Gates(NewRot(RX, 2, 0.5), NewGate1(H, 2))
	onZero := Gates(NewGate1(Z, 3))
	c, fb := mkFB(1, onOne, onZero)
	a := AnalyzeSite(c, 0)
	rec := a.RecoveryProgram(fb, 1) // predicted 1 but outcome was 0
	// Expect: H, RX(-0.5), then Z q3.
	if len(rec) != 3 {
		t.Fatalf("recovery length %d, want 3", len(rec))
	}
	if rec[0].Gate.Kind != H || rec[1].Gate.Kind != RX || rec[1].Gate.Angle != -0.5 {
		t.Fatalf("undo sequence wrong: %v %v", rec[0].Gate, rec[1].Gate)
	}
	if rec[2].Gate.Kind != Z {
		t.Fatalf("correct branch missing: %v", rec[2].Gate)
	}
}

func TestInverseOfPanicsOnIrreversible(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InverseOf(measure) did not panic")
		}
	}()
	InverseOf([]Instruction{{Kind: OpMeasure, Qubit: 0}})
}

// TestPreExecutionEquivalence numerically checks the Appendix theorem:
// pre-executing a (case-1) branch body during the readout, then recovering
// on a misprediction, produces exactly the state of the conventional
// measure-then-branch execution.
func TestPreExecutionEquivalence(t *testing.T) {
	f := func(seed uint64, predictBit bool) bool {
		rng := stats.NewRNG(seed)
		// Random branch body acting on qubits {1,2} (read qubit is 0).
		var body []Instruction
		nGates := 1 + rng.Intn(5)
		for i := 0; i < nGates; i++ {
			q := 1 + rng.Intn(2)
			switch rng.Intn(4) {
			case 0:
				body = append(body, Gates(NewRot(RX, q, rng.Float64()*2))...)
			case 1:
				body = append(body, Gates(NewRot(RY, q, rng.Float64()*2))...)
			case 2:
				body = append(body, Gates(NewGate1(H, q))...)
			default:
				body = append(body, Gates(NewGate2(CZ, 1, 2))...)
			}
		}
		fb := &Feedback{Qubit: 0, OnOne: body, OnZero: nil}
		c := New(3)
		c.AddFeedback(fb)
		a := AnalyzeSite(c, 0)
		if a.Case != Case1Independent {
			return true // only testing case-1 equivalence here
		}

		prep := func() *quantum.State {
			s := quantum.NewState(3)
			r := stats.NewRNG(seed + 999)
			s.RY(0, r.Float64()*math.Pi)
			s.RY(1, r.Float64()*math.Pi)
			s.RY(2, r.Float64()*math.Pi)
			s.CZ(0, 1)
			s.CZ(1, 2)
			return s
		}

		// Conventional: measure, then branch.
		sA := prep()
		rA := stats.NewRNG(seed + 7)
		m := sA.Measure(0, rA)
		if m == 1 {
			for _, in := range fb.OnOne {
				in.Gate.Apply(sA)
			}
		}

		// Pre-execution: apply predicted branch, measure, recover if wrong.
		predicted := 0
		if predictBit {
			predicted = 1
		}
		sB := prep()
		rB := stats.NewRNG(seed + 7) // same measurement randomness
		if predicted == 1 {
			for _, in := range fb.OnOne {
				in.Gate.Apply(sB)
			}
		}
		mB := sB.Measure(0, rB)
		if mB != m {
			return false // branch gates must not disturb the readout statistics
		}
		if mB != predicted {
			for _, in := range a.RecoveryProgram(fb, predicted) {
				in.Gate.Apply(sB)
			}
		}
		return math.Abs(sA.Fidelity(sB)-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBodyDuration(t *testing.T) {
	body := Gates(NewGate1(X, 0), NewGate2(CZ, 0, 1), NewRot(RZ, 0, 1))
	if d := BodyDuration(body); d != 90 {
		t.Fatalf("BodyDuration = %v, want 90", d)
	}
}

func TestFeedbackSites(t *testing.T) {
	c := New(2)
	c.AddGate(NewGate1(H, 0))
	c.AddFeedback(&Feedback{Qubit: 0})
	c.AddGate(NewGate1(X, 1))
	c.AddFeedback(&Feedback{Qubit: 1})
	sites := c.FeedbackSites()
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 3 {
		t.Fatalf("sites = %v", sites)
	}
}

func TestInstructionQubitListFeedback(t *testing.T) {
	fb := &Feedback{Qubit: 0, OnOne: Gates(NewGate1(X, 2)), OnZero: Gates(NewGate2(CZ, 1, 3))}
	in := Instruction{Kind: OpFeedback, Feedback: fb}
	qs := in.QubitList()
	set := map[int]bool{}
	for _, q := range qs {
		set[q] = true
	}
	for _, want := range []int{0, 1, 2, 3} {
		if !set[want] {
			t.Fatalf("qubit %d missing from %v", want, qs)
		}
	}
}

func TestAngleEq(t *testing.T) {
	if !AngleEq(0, 2*math.Pi, 1e-9) {
		t.Fatal("0 != 2π mod 2π")
	}
	if AngleEq(0, math.Pi, 1e-9) {
		t.Fatal("0 == π unexpectedly")
	}
}
