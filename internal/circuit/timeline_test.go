package circuit

import (
	"strings"
	"testing"
)

func timelineCircuit() *Circuit {
	c := New(3)
	c.AddGate(NewGate1(H, 0))                                        // 0..30 on q0
	c.AddGate(NewGate2(CZ, 0, 1))                                    // 30..90 on q0,q1
	c.AddFeedback(&Feedback{Qubit: 0, OnOne: Gates(NewGate1(X, 2))}) // 90..2090 on q0
	c.AddGate(NewGate1(X, 1))                                        // 90..120 on q1
	return c
}

func TestBuildTimelineSpans(t *testing.T) {
	tl := BuildTimeline(timelineCircuit())
	if tl.NumQubits != 3 {
		t.Fatalf("qubits %d", tl.NumQubits)
	}
	// q0: H, CZ, feedback readout.
	if len(tl.Spans[0]) != 3 {
		t.Fatalf("q0 spans %d", len(tl.Spans[0]))
	}
	ro := tl.Spans[0][2]
	if !ro.Feedback || ro.StartNs != 90 || ro.EndNs != 2090 {
		t.Fatalf("feedback span %+v", ro)
	}
	// q2 is untouched (branch bodies are conditional, not scheduled).
	if len(tl.Spans[2]) != 0 {
		t.Fatalf("q2 spans %d", len(tl.Spans[2]))
	}
	if tl.EndNs != 2090 {
		t.Fatalf("makespan %v", tl.EndNs)
	}
}

func TestTimelineIdleWindows(t *testing.T) {
	tl := BuildTimeline(timelineCircuit())
	// q1: CZ ends at 90, X starts at 90 — no idle gap.
	if w := tl.IdleWindows(1, 1); len(w) != 0 {
		t.Fatalf("unexpected idle windows %v", w)
	}
	// Build a circuit with a real gap on q1.
	c := New(2)
	c.AddGate(NewGate1(H, 0))
	c.AddGate(NewGate1(H, 1))
	c.AddFeedback(&Feedback{Qubit: 0, OnOne: Gates(NewGate1(X, 0))})
	c.AddGate(NewGate2(CZ, 0, 1)) // q1 idles 30..2030
	tl2 := BuildTimeline(c)
	w := tl2.IdleWindows(1, 500)
	if len(w) != 1 || w[0][0] != 30 || w[0][1] != 2030 {
		t.Fatalf("idle windows %v", w)
	}
}

func TestTimelineBusy(t *testing.T) {
	tl := BuildTimeline(timelineCircuit())
	if b := tl.BusyNs(0); b != 30+60+2000 {
		t.Fatalf("q0 busy %v", b)
	}
	if b := tl.BusyNs(1); b != 60+30 {
		t.Fatalf("q1 busy %v", b)
	}
}

func TestTimelineRender(t *testing.T) {
	tl := BuildTimeline(timelineCircuit())
	out := tl.Render(100)
	if !strings.Contains(out, "q0") || !strings.Contains(out, "~") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // 3 qubits + footer
		t.Fatalf("render has %d lines", len(lines))
	}
	// q2 is all idle dots.
	if strings.ContainsAny(strings.TrimPrefix(lines[2], "q2"), "#=~R") {
		t.Fatalf("idle qubit row has marks: %s", lines[2])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nsPerCol=0 accepted")
		}
	}()
	tl.Render(0)
}
