package controller

import (
	"fmt"
	"sort"
	"strings"
)

// FormatSequence renders one feedback shot as a textual sequence diagram —
// the Figure 9 (b) view: when the readout started, when the predictor
// crossed its threshold, when the trigger was issued and arrived, when the
// staged pulses fired, and how a misprediction recovered.
func FormatSequence(site Site, out Outcome, readoutNs float64) string {
	type ev struct {
		t    float64
		text string
	}
	var evs []ev
	add := func(t float64, format string, args ...interface{}) {
		evs = append(evs, ev{t, fmt.Sprintf(format, args...)})
	}

	add(0, "readout pulse starts on q%d", site.ReadQubit)
	if out.Committed {
		bd := out.Breakdown
		if bd.DecisionNs > 0 {
			add(bd.DecisionNs, "P_predict crosses threshold -> predict branch %d", out.Predicted)
		}
		add(out.Trigger.IssuedAtNs, "dynamic timing controller issues feedback trigger (%s)",
			routeWord(out.Trigger.Remote))
		add(out.Trigger.ArrivalNs(), "branch decider receives trigger; pulse staging begins")
		if out.Correct {
			if bd.FloorWaitNs > 0 {
				add(readoutNs, "readout pulse ends (case-3 floor releases)")
			}
			add(out.LatencyNs, "branch %d pulses fire (feedback latency %.0f ns)",
				out.Predicted, out.LatencyNs)
		} else {
			add(readoutNs, "readout pulse ends; classification contradicts prediction")
			add(out.LatencyNs-out.RecoveryNs, "inverse program undoes the speculated branch (%.0f ns)", out.RecoveryNs)
			add(out.LatencyNs, "correct branch commits (feedback latency %.0f ns)", out.LatencyNs)
		}
	} else {
		add(readoutNs, "readout pulse ends")
		add(out.LatencyNs, "conventional path: classify, prepare, play branch %d (%.0f ns)",
			out.Predicted, out.LatencyNs)
	}

	sort.SliceStable(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
	var b strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&b, "t=%7.0f ns  %s\n", e.t, e.text)
	}
	return b.String()
}

func routeWord(remote bool) string {
	if remote {
		return "remote, via backplane"
	}
	return "local"
}
