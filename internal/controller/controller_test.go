package controller

import (
	"math"
	"strings"
	"testing"

	"artery/internal/circuit"
	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/readout"
	"artery/internal/stats"
)

func TestProcessingChain(t *testing.T) {
	u := DefaultUnits()
	if p := u.Processing(); p != 160 {
		t.Fatalf("Processing = %v, want 160", p)
	}
	if w := LatencyWall(u); w != 660 {
		t.Fatalf("LatencyWall = %v, want 660", w)
	}
}

func TestFigure2DesignPointsMonotone(t *testing.T) {
	pts := Figure2DesignPoints()
	if len(pts) < 3 {
		t.Fatal("need at least 3 design points")
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].ReadoutNs <= pts[i-1].ReadoutNs || pts[i].T1Us <= pts[i-1].T1Us {
			t.Fatalf("readout/T1 trade-off not monotone at %d", i)
		}
	}
}

func TestTimingQuantization(t *testing.T) {
	tc := NewTimingController(DefaultUnits())
	e := tc.Issue(30.5, 4, 0, 1, false)
	if e.IssuedAtNs != 32 { // next 4 ns edge after 30.5
		t.Fatalf("issued at %v, want 32", e.IssuedAtNs)
	}
	if e.ArrivalNs() != 36 {
		t.Fatalf("arrival %v, want 36", e.ArrivalNs())
	}
}

func TestTimingFloor(t *testing.T) {
	tc := NewTimingController(DefaultUnits())
	// Early decision with a 2000 ns floor: trigger delayed so arrival >= floor.
	e := tc.Issue(30, 4, 2000, 0, false)
	if e.ArrivalNs() < 2000 {
		t.Fatalf("trigger arrives at %v before floor", e.ArrivalNs())
	}
	if e.ArrivalNs() > 2010 {
		t.Fatalf("trigger arrives at %v, far past floor", e.ArrivalNs())
	}
}

func TestStaticSlot(t *testing.T) {
	tc := NewTimingController(DefaultUnits())
	if s := tc.StaticSlot(2000); s != 2160 {
		t.Fatalf("static slot %v, want 2160", s)
	}
}

func TestTriggerString(t *testing.T) {
	e := TriggerEvent{IssuedAtNs: 100, TransitNs: 48, Remote: true, Branch: 1}
	if s := e.String(); s == "" {
		t.Fatal("empty trigger string")
	}
}

// testRig builds a calibrated ARTERY controller with a seeded predictor.
func testRig(seed uint64, cfg predict.Config) (*Artery, *readout.Channel) {
	ch := readout.NewChannel(readout.DefaultCalibration(), 30, 6, stats.NewRNG(seed))
	p := predict.New(cfg, ch)
	topo := interconnect.PaperTopology()
	return NewArtery(DefaultUnits(), topo, p), ch
}

var (
	sharedArtery, sharedChannel = testRig(77, predict.DefaultConfig())
)

func site1() Site {
	return Site{ID: 1, Case: circuit.Case1Independent, ReadQubit: 0, BranchQubit: 1,
		Prior: 0.5, UndoOnOneNs: 30, UndoOnZeroNs: 0}
}

// siteWithPrior returns a case-1 site with the given branch-1 prior.
func siteWithPrior(id int, prior float64) Site {
	s := site1()
	s.ID = id
	s.Prior = prior
	return s
}

func TestArteryCorrectPredictionBeatsReadout(t *testing.T) {
	a, ch := sharedArtery, sharedChannel
	rng := stats.NewRNG(1)
	shotPulse := ch.Cal.Synthesize(1, rng)
	truth := ch.Classifier.ClassifyFull(shotPulse)
	out := a.Feedback(siteWithPrior(10, 0.995), Shot{Pulse: shotPulse, Truth: truth})
	if !out.Committed {
		t.Fatalf("no commitment: %+v", out)
	}
	if out.Correct && out.LatencyNs >= ReadoutNs {
		t.Fatalf("correct prediction latency %v not below readout %v", out.LatencyNs, ReadoutNs)
	}
}

func TestArteryMispredictionCostsRecovery(t *testing.T) {
	a, ch := testRig(78, predict.DefaultConfig())
	a.Online = false
	a.PriorWeight = 100000 // make the prior overwhelming
	rng := stats.NewRNG(2)
	// Ground truth 0 but history screams 1 → early wrong commitment.
	pulse := ch.Cal.Synthesize(0, rng)
	out := a.Feedback(siteWithPrior(11, 0.9999), Shot{Pulse: pulse, Truth: 0})
	if out.Correct {
		t.Skip("predictor recovered from the bad prior on this pulse")
	}
	if out.LatencyNs <= ReadoutNs {
		t.Fatalf("misprediction latency %v should exceed the readout", out.LatencyNs)
	}
	if out.RecoveryNs != 30 {
		t.Fatalf("recovery %v, want 30 (undo of OnOne)", out.RecoveryNs)
	}
}

func TestArteryCase3FloorsAtReadoutEnd(t *testing.T) {
	a, ch := testRig(79, predict.DefaultConfig())
	rng := stats.NewRNG(3)
	site := Site{ID: 12, Case: circuit.Case3ReadQubit, ReadQubit: 0, BranchQubit: 0,
		Prior: 0.995, UndoOnOneNs: 30}
	pulse := ch.Cal.Synthesize(1, rng)
	truth := ch.Classifier.ClassifyFull(pulse)
	out := a.Feedback(site, Shot{Pulse: pulse, Truth: truth})
	if !out.Committed || !out.Correct {
		t.Skipf("unexpected shot: %+v", out)
	}
	if out.LatencyNs < ReadoutNs {
		t.Fatalf("case-3 branch started at %v, before readout end", out.LatencyNs)
	}
	// But only just after: the pre-reset fires almost immediately (§6.2's
	// 2.01 µs vs QubiC's 2.16 µs).
	if out.LatencyNs > ReadoutNs+20 {
		t.Fatalf("case-3 start %v too far past readout end", out.LatencyNs)
	}
}

func TestArteryCase4NeverPreExecutes(t *testing.T) {
	a, ch := sharedArtery, sharedChannel
	rng := stats.NewRNG(4)
	site := Site{ID: 13, Case: circuit.Case4Irreversible, ReadQubit: 0, BranchQubit: 2, Prior: 0.5}
	pulse := ch.Cal.Synthesize(1, rng)
	truth := ch.Classifier.ClassifyFull(pulse)
	out := a.Feedback(site, Shot{Pulse: pulse, Truth: truth})
	if out.Committed {
		t.Fatal("case-4 site committed a pre-execution")
	}
	if out.LatencyNs < ReadoutNs+160 {
		t.Fatalf("case-4 latency %v below conventional path", out.LatencyNs)
	}
}

func TestArteryRemoteBranchPaysTransit(t *testing.T) {
	a, ch := testRig(80, predict.DefaultConfig())
	a.Online = false
	rng := stats.NewRNG(5)
	local := Site{ID: 14, Case: circuit.Case1Independent, ReadQubit: 0, BranchQubit: 1, Prior: 0.995}
	remote := Site{ID: 15, Case: circuit.Case1Independent, ReadQubit: 0, BranchQubit: 13, Prior: 0.995}
	// Use the same pulse for both.
	pulse := ch.Cal.Synthesize(1, rng)
	truth := ch.Classifier.ClassifyFull(pulse)
	oL := a.Feedback(local, Shot{Pulse: pulse, Truth: truth})
	oR := a.Feedback(remote, Shot{Pulse: pulse, Truth: truth})
	if !oL.Committed || !oR.Committed || !oL.Correct || !oR.Correct {
		t.Skipf("shots not both correct commits: %+v %+v", oL, oR)
	}
	if oR.LatencyNs <= oL.LatencyNs {
		t.Fatalf("remote branch (%v) not slower than local (%v)", oR.LatencyNs, oL.LatencyNs)
	}
	if !oR.Trigger.Remote || oL.Trigger.Remote {
		t.Fatal("trigger remote flags wrong")
	}
}

func TestBaselineLatencies(t *testing.T) {
	topo := interconnect.PaperTopology()
	rng := stats.NewRNG(6)
	ch := sharedChannel
	pulse := ch.Cal.Synthesize(0, rng)
	shot := Shot{Pulse: pulse, Truth: 0}
	wants := map[string]float64{
		"QubiC":          2150,
		"HERQULES":       2170,
		"Salathe et al.": 2115,
		"Reuer et al.":   2400,
	}
	for _, b := range Baselines(topo) {
		out := b.Feedback(site1(), shot)
		if want := wants[b.Name()]; math.Abs(out.LatencyNs-want) > 1e-9 {
			t.Errorf("%s latency %v, want %v", b.Name(), out.LatencyNs, want)
		}
		if out.Committed || !out.Correct {
			t.Errorf("%s baseline flags wrong: %+v", b.Name(), out)
		}
	}
}

func TestBaselineRemotePaysSerdes(t *testing.T) {
	topo := interconnect.PaperTopology()
	b := NewBaseline("QubiC", QubiCOverheadNs, topo)
	rng := stats.NewRNG(7)
	pulse := sharedChannel.Cal.Synthesize(0, rng)
	local := b.Feedback(site1(), Shot{Pulse: pulse, Truth: 0})
	remoteSite := Site{ID: 16, Case: circuit.Case1Independent, ReadQubit: 0, BranchQubit: 13, Prior: 0.5}
	remote := b.Feedback(remoteSite, Shot{Pulse: pulse, Truth: 0})
	if remote.LatencyNs <= local.LatencyNs {
		t.Fatal("remote baseline feedback not slower")
	}
}

func TestArteryAverageBeatsQubiCOnBalancedWorkload(t *testing.T) {
	// The headline: averaged over shots, ARTERY's feedback latency is well
	// below QubiC's wait-for-readout latency.
	a, ch := testRig(81, predict.DefaultConfig())
	topo := interconnect.PaperTopology()
	qubic := NewBaseline("QubiC", QubiCOverheadNs, topo)
	rng := stats.NewRNG(8)
	var sumA, sumQ float64
	const shots = 300
	for i := 0; i < shots; i++ {
		pulse := ch.Cal.Synthesize(i%2, rng)
		truth := ch.Classifier.ClassifyFull(pulse)
		shot := Shot{Pulse: pulse, Truth: truth}
		sumA += a.Feedback(site1(), shot).LatencyNs
		sumQ += qubic.Feedback(site1(), shot).LatencyNs
	}
	speedup := sumQ / sumA
	if speedup < 1.3 {
		t.Fatalf("ARTERY speedup %vx over QubiC, want > 1.3x (paper: 2.07x avg)", speedup)
	}
}

func TestArteryOnlineLearning(t *testing.T) {
	a, ch := testRig(82, predict.DefaultConfig())
	rng := stats.NewRNG(9)
	site := siteWithPrior(17, 0.5)
	before := a.siteHistory(site).P()
	for i := 0; i < 30; i++ {
		pulse := ch.Cal.Synthesize(1, rng)
		a.Feedback(site, Shot{Pulse: pulse, Truth: 1})
	}
	if a.siteHistory(site).P() <= before {
		t.Fatal("online mode did not update the site history")
	}
}

func TestLatencyBreakdownSumsToLatency(t *testing.T) {
	a, ch := testRig(83, predict.DefaultConfig())
	a.Online = false
	rng := stats.NewRNG(20)
	sites := []Site{
		siteWithPrior(30, 0.99),
		{ID: 31, Case: circuit.Case2Ancilla, ReadQubit: 0, BranchQubit: 2, Prior: 0.99},
		{ID: 32, Case: circuit.Case3ReadQubit, ReadQubit: 0, BranchQubit: 0, Prior: 0.99},
	}
	checked := 0
	for _, site := range sites {
		for i := 0; i < 10; i++ {
			pulse := ch.Cal.Synthesize(1, rng)
			truth := ch.Classifier.ClassifyFull(pulse)
			out := a.Feedback(site, Shot{Pulse: pulse, Truth: truth})
			if !out.Committed || !out.Correct {
				continue
			}
			checked++
			if diff := out.Breakdown.Total() - out.LatencyNs; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("site %d: breakdown %v != latency %v", site.ID, out.Breakdown.Total(), out.LatencyNs)
			}
			if site.Case == circuit.Case2Ancilla && out.Breakdown.StagingNs != 92+AncillaPrepNs {
				t.Fatalf("case-2 staging %v, want %v", out.Breakdown.StagingNs, 92+AncillaPrepNs)
			}
			if site.Case == circuit.Case3ReadQubit && out.Breakdown.FloorWaitNs <= 0 && out.LatencyNs >= ReadoutNs {
				// Early commits on case 3 must report the floor wait.
				if out.Breakdown.DecisionNs < ReadoutNs-200 {
					t.Fatalf("case-3 early commit missing floor wait: %+v", out.Breakdown)
				}
			}
		}
	}
	if checked == 0 {
		t.Skip("no committed correct shots sampled")
	}
}

func TestFormatSequence(t *testing.T) {
	a, ch := testRig(84, predict.DefaultConfig())
	a.Online = false
	rng := stats.NewRNG(21)
	pulse := ch.Cal.Synthesize(1, rng)
	truth := ch.Classifier.ClassifyFull(pulse)
	out := a.Feedback(siteWithPrior(40, 0.99), Shot{Pulse: pulse, Truth: truth})
	s := FormatSequence(siteWithPrior(40, 0.99), out, ReadoutNs)
	for _, want := range []string{"readout pulse starts", "t="} {
		if !strings.Contains(s, want) {
			t.Fatalf("sequence missing %q:\n%s", want, s)
		}
	}
	if out.Committed && !strings.Contains(s, "feedback trigger") {
		t.Fatalf("committed shot missing trigger line:\n%s", s)
	}
	// Conventional (baseline) sequence renders too.
	b := NewBaseline("QubiC", QubiCOverheadNs, interconnect.PaperTopology())
	outB := b.Feedback(site1(), Shot{Pulse: pulse, Truth: truth})
	sb := FormatSequence(site1(), outB, ReadoutNs)
	if !strings.Contains(sb, "conventional path") {
		t.Fatalf("baseline sequence wrong:\n%s", sb)
	}
}
