package controller

import (
	"artery/internal/circuit"
	"artery/internal/fault"
	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/readout"
	"artery/internal/stats"
	"artery/internal/trace"
)

// Site describes one feedback site to the controller: its pre-execution
// class, where the readout is classified and where the branch pulses play
// (for interconnect routing), and how long the inverse (recovery) programs
// take.
type Site struct {
	// ID distinguishes feedback sites: the ARTERY controller keeps an
	// independent historical branch distribution per site (§4: branches of
	// different feedbacks are independent).
	ID          int
	Case        circuit.PreExecCase
	ReadQubit   int
	BranchQubit int
	// Prior seeds the site's historical distribution, standing in for the
	// statistics accumulated over the program's earlier shots.
	Prior float64
	// UndoOnOneNs / UndoOnZeroNs are the durations of the inverse programs
	// that cancel a wrongly pre-executed OnOne / OnZero body.
	UndoOnOneNs  float64
	UndoOnZeroNs float64
}

// Shot is one feedback execution: the captured readout pulse and its
// ground-truth branch outcome.
//
// The engine's parallel pipeline demodulates pulses on its shot workers
// and hands controllers the result instead of the raw samples: when Bits
// is non-nil it holds the pulse's per-window trajectory classifications
// (readout.Classifier.WindowBits) and Pulse may be nil; Truth is always
// the full-pulse classification. Controllers must accept either form.
//
// Pulse is on loan for the duration of the Feedback call only: the engine
// recycles the record through a pool the moment Feedback returns, so
// controllers must not retain Pulse (or sub-slices of its samples) past
// their return. Every in-tree controller demodulates what it needs inside
// the call and drops the reference.
type Shot struct {
	Pulse *readout.Pulse
	Bits  []int
	Truth int
	// Faults, when non-nil, is the shot's deterministic fault session: the
	// controller draws its outage/jitter/backplane/table faults from it and
	// applies its graceful-degradation policies. Nil means fault-free.
	Faults *fault.Session
	// Span, when non-nil, receives the shot's trace events: the controller
	// emits its per-window posterior evolution, interconnect hop traversal
	// and the per-stage latency partition of the outcome. Nil (the default)
	// is tracing off — every recording call degenerates to a nil check.
	Span *trace.ShotSpan
}

// Outcome reports how the controller handled one feedback shot.
type Outcome struct {
	// LatencyNs is the feedback latency: time from readout start until the
	// *correct* branch circuit begins executing.
	LatencyNs float64
	// Predicted is the branch the controller committed to (equals Truth
	// for non-predictive baselines).
	Predicted int
	// Committed is true when a prediction fired before readout end.
	Committed bool
	// Correct is true when no recovery was needed.
	Correct bool
	// RecoveryNs is the extra gate time spent undoing a wrong branch.
	RecoveryNs float64
	// FellBack is true when the graceful-degradation policy served this
	// feedback on the blocking conventional path (fault rates or shadow
	// misprediction rates crossed the fallback threshold, or the feedback
	// trigger was lost after its retry budget).
	FellBack bool
	// Trigger is the dynamic-timing trigger (zero value for baselines).
	Trigger TriggerEvent
	// Breakdown decomposes LatencyNs into its stages (committed correct
	// predictions only; zero value otherwise).
	Breakdown LatencyBreakdown
}

// LatencyBreakdown decomposes a feedback's latency into its pipeline
// stages (Figure 9's view, extended to every path). Both controllers fill
// it on every outcome — committed, conventional, mispredicted and
// degraded — and the components always partition LatencyNs: Total() equals
// the outcome's latency on every path, which is what lets the engine build
// its per-stage breakdown table and the trace layer emit additive spans
// without re-deriving controller internals.
//
// Committed predictions use DecisionNs/PipelineNs/TransitNs/StagingNs/
// FloorWaitNs (plus RetryNs under faults). Blocking paths use ReadoutNs/
// ClassifyNs/StagingNs (plus TransitNs/RetryNs remotely and FaultNs for
// fault-imposed penalties); mispredictions additionally pay RecoveryNs.
type LatencyBreakdown struct {
	// DecisionNs is the predictor's time-to-threshold.
	DecisionNs float64
	// PipelineNs is the Bayesian output delay plus trigger clock
	// quantization (and injected trigger jitter).
	PipelineNs float64
	// TransitNs is the interconnect transit of the feedback signal.
	TransitNs float64
	// StagingNs is pulse staging: prep + DAC (+ case-2 ancilla).
	StagingNs float64
	// FloorWaitNs is the case-3 wait for the readout-end floor.
	FloorWaitNs float64
	// ReadoutNs is a blocking wait for the full readout pulse.
	ReadoutNs float64
	// ClassifyNs is the post-readout ADC + classification chain (for
	// baselines, their published processing overhead).
	ClassifyNs float64
	// RecoveryNs is the inverse program undoing a wrong branch.
	RecoveryNs float64
	// RetryNs is the retry penalty of dropped/corrupted backplane messages.
	RetryNs float64
	// FaultNs is fault-imposed latency with no fault-free counterpart
	// (e.g. the re-read after a readout-channel outage).
	FaultNs float64
}

// Total sums the components; it equals the outcome's LatencyNs.
func (b LatencyBreakdown) Total() float64 {
	return b.DecisionNs + b.PipelineNs + b.TransitNs + b.StagingNs + b.FloorWaitNs +
		b.ReadoutNs + b.ClassifyNs + b.RecoveryNs + b.RetryNs + b.FaultNs
}

// Stages calls f for every nonzero component in pipeline order with its
// trace stage. The engine's per-stage breakdown table and the trace
// layer's additive spans both walk this enumeration, so they can never
// disagree on how a latency decomposes.
func (b LatencyBreakdown) Stages(f func(st trace.Stage, durNs float64)) {
	walk := func(st trace.Stage, d float64) {
		if d != 0 {
			f(st, d)
		}
	}
	walk(trace.StageReadout, b.ReadoutNs)
	walk(trace.StageDecision, b.DecisionNs)
	walk(trace.StagePipeline, b.PipelineNs)
	walk(trace.StageClassify, b.ClassifyNs)
	walk(trace.StageTransit, b.TransitNs)
	walk(trace.StageRetry, b.RetryNs)
	walk(trace.StageStaging, b.StagingNs)
	walk(trace.StageFloorWait, b.FloorWaitNs)
	walk(trace.StageRecovery, b.RecoveryNs)
	walk(trace.StageFault, b.FaultNs)
}

// recordBreakdown emits the outcome's latency partition into span as
// additive stage events in pipeline order with cumulative offsets.
// Zero-duration stages are skipped; the emitted durations always sum to
// the outcome's LatencyNs. Nil-safe via the span.
func recordBreakdown(span *trace.ShotSpan, out Outcome) {
	if span == nil {
		return
	}
	t := 0.0
	mis := out.Committed && !out.Correct
	out.Breakdown.Stages(func(st trace.Stage, d float64) {
		if st == trace.StageRetry || st == trace.StageFault || out.FellBack {
			span.SpanFault(st, t, t+d, 0)
		} else {
			span.SpanOutcome(st, t, t+d, out.Predicted, mis)
		}
		t += d
	})
}

// Controller executes the classical half of a feedback site.
//
// Concurrency contract: the engine calls Feedback from a single goroutine
// in strict shot order unless the controller additionally implements
// ShotSafe and reports true — only then may Feedback be invoked
// concurrently from multiple shot workers.
type Controller interface {
	Name() string
	Feedback(site Site, shot Shot) Outcome
}

// ShotSafe is implemented by controllers whose Feedback is pure with
// respect to shots: no mutable state survives a call, so (a) concurrent
// calls from multiple goroutines are race-free and (b) outcomes do not
// depend on the order shots execute in. The engine fans such controllers
// out across its shot workers; everything else (e.g. Artery, whose
// Bayesian site histories learn shot-by-shot) is driven sequentially on
// the merge path so the paper's shot-ordered learning semantics are
// preserved bit-for-bit at any worker count.
type ShotSafe interface {
	ShotSafe() bool
}

// Artery is the paper's feedback controller: reconciled branch prediction,
// dynamic timing with feedback triggers, speculative pulse staging and
// hierarchical trigger routing.
//
// Concurrency contract: NOT shot-safe. Feedback reads and (when Online)
// updates the per-site historical Beta counters, an inherently sequential
// shot-by-shot learning process (§4). The engine therefore always invokes
// Artery.Feedback from one goroutine in shot order; do not call it
// concurrently.
type Artery struct {
	units  Units
	timing *TimingController
	topo   *interconnect.Topology
	pred   *predict.Predictor
	// hist holds one historical branch distribution per site ID, lazily
	// created and seeded from the site's Prior.
	hist map[int]*stats.BetaCounter
	// PriorWeight is the pseudo-count mass given to a site's Prior when its
	// counter is created (the "earlier shots" of the program).
	PriorWeight float64
	// Online controls whether shot outcomes update the historical
	// distribution after each prediction (§4: zero-latency update).
	Online bool
	// degrade is the graceful-degradation monitor, created lazily from the
	// first faulted shot's policy config. While tripped, feedbacks are
	// served on the blocking conventional path and the predictor runs only
	// in the shadow (its decisions feed the tracker but never fire).
	degrade *fault.Tracker
}

// NewArtery assembles an ARTERY controller from its predictor and the
// interconnect topology.
func NewArtery(u Units, topo *interconnect.Topology, p *predict.Predictor) *Artery {
	return &Artery{
		units:       u,
		timing:      NewTimingController(u),
		topo:        topo,
		pred:        p,
		hist:        map[int]*stats.BetaCounter{},
		PriorWeight: 60,
		Online:      true,
	}
}

// siteHistory returns (creating if needed) the per-site historical counter.
func (a *Artery) siteHistory(site Site) *stats.BetaCounter {
	if c, ok := a.hist[site.ID]; ok {
		return c
	}
	c := stats.NewBetaCounter()
	if site.Prior > 0 && site.Prior < 1 && a.PriorWeight > 0 {
		c.Alpha += site.Prior * a.PriorWeight
		c.Beta += (1 - site.Prior) * a.PriorWeight
	}
	a.hist[site.ID] = c
	return c
}

// Name returns "ARTERY".
func (a *Artery) Name() string { return "ARTERY" }

// Predictor exposes the underlying predictor (for seeding and ablation).
func (a *Artery) Predictor() *predict.Predictor { return a.pred }

// AncillaPrepNs is the cost of preparing a case-2 ancilla in the predicted
// classical state: one 30 ns XY pulse (§3, case 2).
const AncillaPrepNs = 30.0

// bayesPipelineNs is the Bayesian unit's output delay: P_predict emerges
// three fabric cycles after a window classification lands (§5.1).
func (a *Artery) bayesPipelineNs() float64 {
	return float64(predict.BayesPipelineCycles) * a.units.Clock
}

// observeDegrade feeds the degradation tracker (when faults are active).
func (a *Artery) observeDegrade(bad bool) {
	if a.degrade != nil {
		a.degrade.Observe(bad)
	}
}

// ensureTracker lazily builds the degradation tracker from the first
// faulted shot's policy config (all sessions of a run share one config).
func (a *Artery) ensureTracker(sess *fault.Session) {
	if a.degrade == nil && sess != nil {
		cfg := sess.Config()
		a.degrade = fault.NewTracker(cfg.FallbackWindow, cfg.FallbackTrip, cfg.FallbackRecover)
	}
}

// reliableSendNs prices the delivery of a non-critical (end-of-readout)
// branch command across the backplane under faults: retry-until-success
// with the policy's backoff.
func (a *Artery) reliableSendNs(sess *fault.Session, site Site) float64 {
	hops := a.topo.MessageHops(site.ReadQubit, site.BranchQubit)
	retries := sess.TransmitReliable(hops)
	if retries == 0 {
		return 0
	}
	return a.topo.RetryPenaltyNs(site.ReadQubit, site.BranchQubit, retries, sess.Config().RetryBackoffNs)
}

// Feedback runs one predicted feedback shot and, when the shot carries a
// trace span, records the outcome's per-stage latency partition.
func (a *Artery) Feedback(site Site, shot Shot) Outcome {
	out := a.feedback(site, shot)
	recordBreakdown(shot.Span, out)
	return out
}

func (a *Artery) feedback(site Site, shot Shot) Outcome {
	hist := a.siteHistory(site)
	sess := shot.Faults
	a.ensureTracker(sess)
	if a.Online {
		defer hist.Observe(shot.Truth == 1)
	}

	transit := a.topo.Latency(site.ReadQubit, site.BranchQubit)
	remote := a.topo.RouteLevel(site.ReadQubit, site.BranchQubit) != interconnect.LevelOnChip
	readout := a.pred.ReadoutDurationNs()
	if remote {
		a.topo.RecordHops(shot.Span, site.ReadQubit, site.BranchQubit)
	}

	// conventional prices the blocking wait-for-readout path (plus any
	// fault-imposed extra latency and, remotely, a reliable faulted send)
	// and returns its stage partition. faultNs is penalty latency with no
	// fault-free counterpart; retryNs is retry latency already paid before
	// falling back (the abandoned-trigger path).
	conventional := func(faultNs, retryNs float64) (float64, LatencyBreakdown) {
		bd := LatencyBreakdown{
			ReadoutNs:  readout,
			ClassifyNs: a.units.ADC + a.units.Classify,
			StagingNs:  a.units.Prep + a.units.DAC,
			FaultNs:    faultNs,
			RetryNs:    retryNs,
		}
		lat := readout + a.units.Processing() + faultNs + retryNs
		if remote {
			send := a.reliableSendNs(sess, site)
			bd.TransitNs = transit
			bd.RetryNs += send
			lat += transit + send
		}
		return lat, bd
	}

	// Readout-channel outage: no trajectory windows arrive, so prediction
	// is impossible and the shot blocks on a repeated readout.
	if sess.ReadoutOutage() {
		a.observeDegrade(true)
		lat, bd := conventional(sess.Config().OutagePenaltyNs, 0)
		return Outcome{
			LatencyNs: lat,
			Predicted: shot.Truth,
			Committed: false,
			Correct:   true,
			FellBack:  true,
			Breakdown: bd,
		}
	}

	// The predictor always runs — even while degraded, its shadow decisions
	// feed the tracker so recovery can be detected — with every state-table
	// lookup passing through the session's corruption hook.
	corrupt := sess.TableCorruptor()
	var d predict.Decision
	if shot.Bits != nil {
		// Pre-demodulated shot: the expensive windowing already ran on an
		// engine worker; only the Bayesian fusion happens here.
		d = a.pred.PredictFromBitsFault(shot.Bits, shot.Truth, hist.P(), corrupt)
	} else {
		d = a.pred.PredictWithHistoryFault(shot.Pulse, hist.P(), corrupt)
	}
	d.RecordWindows(shot.Span)

	if a.degrade.Degraded() {
		// Graceful degradation: fault/misprediction rates crossed the
		// threshold, so this feedback is served on the blocking Baseline
		// path while the shadow prediction keeps measuring.
		if sess != nil {
			sess.C.Fallbacks++
		}
		a.observeDegrade(d.Committed && d.Branch != shot.Truth)
		lat, bd := conventional(0, 0)
		return Outcome{
			LatencyNs: lat,
			Predicted: shot.Truth,
			Committed: false,
			Correct:   true,
			FellBack:  true,
			Breakdown: bd,
		}
	}

	if !d.Committed || !site.Case.PreExecutable() {
		// Conventional path: wait for the full readout and processing chain.
		a.observeDegrade(false)
		lat, bd := conventional(0, 0)
		return Outcome{
			LatencyNs: lat,
			Predicted: d.Branch,
			Committed: false,
			Correct:   true,
			Breakdown: bd,
		}
	}

	// Committed prediction: the trigger message must reach the branch FPGA.
	// Remote triggers cross the backplane under the bounded-retry policy;
	// when the retry budget is exhausted the trigger is abandoned and the
	// site degrades to the blocking path for this shot.
	jitter := sess.TriggerJitter()
	retryNs := 0.0
	if remote {
		hops := a.topo.MessageHops(site.ReadQubit, site.BranchQubit)
		retries, delivered := sess.TransmitTrigger(hops)
		if retries > 0 {
			retryNs = a.topo.RetryPenaltyNs(site.ReadQubit, site.BranchQubit, retries, sess.Config().RetryBackoffNs)
		}
		if !delivered {
			a.observeDegrade(true)
			lat, bd := conventional(0, retryNs)
			return Outcome{
				LatencyNs: lat,
				Predicted: shot.Truth,
				Committed: false,
				Correct:   true,
				FellBack:  true,
				Breakdown: bd,
			}
		}
	}

	// The trigger is out: pulses are staged (prep + DAC) speculatively
	// while the readout continues. Case-3 sites gate the *firing*, not the
	// staging: the staged pulse releases on the first fabric edge after the
	// readout pulse ends. Trigger jitter delays the issue; backplane
	// retries stretch the transit.
	trig := a.timing.Issue(d.TimeNs+a.bayesPipelineNs()+jitter, transit+retryNs, 0, d.Branch, remote)
	stageDone := trig.ArrivalNs() + a.units.Prep + a.units.DAC
	if site.Case == circuit.Case2Ancilla {
		// The ancilla must first be prepared in the predicted classical
		// state (one XY pulse) before the retargeted branch can run on it.
		stageDone += AncillaPrepNs
	}
	start := stageDone
	if site.Case == circuit.Case3ReadQubit && start < readout {
		start = readout + a.units.Clock
	}

	if d.Branch == shot.Truth {
		a.observeDegrade(false)
		staging := a.units.Prep + a.units.DAC
		if site.Case == circuit.Case2Ancilla {
			staging += AncillaPrepNs
		}
		bd := LatencyBreakdown{
			DecisionNs: d.TimeNs,
			PipelineNs: trig.IssuedAtNs - d.TimeNs, // bayes + clock quantization
			TransitNs:  transit,
			RetryNs:    retryNs,
			StagingNs:  staging,
		}
		if floor := start - stageDone; floor > 0 {
			bd.FloorWaitNs = floor
		}
		return Outcome{
			LatencyNs: start,
			Predicted: d.Branch,
			Committed: true,
			Correct:   true,
			Trigger:   trig,
			Breakdown: bd,
		}
	}

	// Misprediction: the truth is known after readout + ADC + classify;
	// the controller then preps the inverse program, plays it, and starts
	// the correct branch. The corrective command is a reliable (not
	// latency-critical) send, so under faults it retries until delivered.
	a.observeDegrade(true)
	undo := site.UndoOnOneNs
	if d.Branch == 0 {
		undo = site.UndoOnZeroNs
	}
	known := readout + a.units.ADC + a.units.Classify
	lat := known + a.units.Prep + a.units.DAC + undo
	bd := LatencyBreakdown{
		ReadoutNs:  readout,
		ClassifyNs: a.units.ADC + a.units.Classify,
		StagingNs:  a.units.Prep + a.units.DAC,
		RecoveryNs: undo,
	}
	if remote {
		send := a.reliableSendNs(sess, site)
		bd.TransitNs, bd.RetryNs = transit, send
		lat += transit + send
	}
	return Outcome{
		LatencyNs:  lat,
		Predicted:  d.Branch,
		Committed:  true,
		Correct:    false,
		RecoveryNs: undo,
		Trigger:    trig,
		Breakdown:  bd,
	}
}

// Baseline is a conventional wait-for-readout feedback controller with a
// published classical-processing overhead.
//
// Concurrency contract: shot-safe. Feedback is a pure function of its
// arguments over immutable calibration (name, overhead, topology), so the
// engine may call it concurrently from any number of shot workers.
type Baseline struct {
	name       string
	overheadNs float64
	topo       *interconnect.Topology
}

// ShotSafe reports that Baseline.Feedback is pure and may run concurrently
// across shot workers.
func (b *Baseline) ShotSafe() bool { return true }

// NewBaseline constructs a baseline controller.
func NewBaseline(name string, overheadNs float64, topo *interconnect.Topology) *Baseline {
	return &Baseline{name: name, overheadNs: overheadNs, topo: topo}
}

// Name returns the baseline's name.
func (b *Baseline) Name() string { return b.name }

// Feedback waits for the full readout, processes, and routes. Under fault
// injection it pays the same degraded-link costs as ARTERY's blocking
// path: a repeated readout on a channel outage and retry-until-success on
// backplane sends (shot-safety is preserved — the only mutable state
// touched is the shot's own fault session).
func (b *Baseline) Feedback(site Site, shot Shot) Outcome {
	sess := shot.Faults
	bd := LatencyBreakdown{ReadoutNs: ReadoutNs, ClassifyNs: b.overheadNs}
	lat := ReadoutNs + b.overheadNs
	if sess.ReadoutOutage() {
		bd.FaultNs = sess.Config().OutagePenaltyNs
		lat += bd.FaultNs
	}
	if b.topo.RouteLevel(site.ReadQubit, site.BranchQubit) != interconnect.LevelOnChip {
		b.topo.RecordHops(shot.Span, site.ReadQubit, site.BranchQubit)
		bd.TransitNs = b.topo.Latency(site.ReadQubit, site.BranchQubit)
		lat += bd.TransitNs
		hops := b.topo.MessageHops(site.ReadQubit, site.BranchQubit)
		if retries := sess.TransmitReliable(hops); retries > 0 {
			bd.RetryNs = b.topo.RetryPenaltyNs(site.ReadQubit, site.BranchQubit, retries, sess.Config().RetryBackoffNs)
			lat += bd.RetryNs
		}
	}
	out := Outcome{
		LatencyNs: lat,
		Predicted: shot.Truth,
		Committed: false,
		Correct:   true,
		Breakdown: bd,
	}
	recordBreakdown(shot.Span, out)
	return out
}

// Published per-shot processing overheads of the baseline systems (ns),
// calibrated so one isolated feedback reproduces the Table-1 first columns
// (QubiC 2.15 µs, HERQULES 2.17 µs, Salathé 2.12 µs, Reuer 2.40 µs with a
// 2 µs readout).
const (
	QubiCOverheadNs    = 150.0 // pulse-table + fine-grained DAC pipeline
	HERQULESOverheadNs = 170.0 // MLP readout discriminator, 30 ns windows
	SalatheOverheadNs  = 115.0 // fully pipelined DSP feedback path
	ReuerOverheadNs    = 400.0 // deep-RL agent inference on the path
)

// Baselines instantiates the paper's four comparison systems.
func Baselines(topo *interconnect.Topology) []Controller {
	return []Controller{
		NewBaseline("QubiC", QubiCOverheadNs, topo),
		NewBaseline("HERQULES", HERQULESOverheadNs, topo),
		NewBaseline("Salathe et al.", SalatheOverheadNs, topo),
		NewBaseline("Reuer et al.", ReuerOverheadNs, topo),
	}
}
