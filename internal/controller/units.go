// Package controller models the classical feedback controller hardware of
// ARTERY (§5) and of the four baseline systems the paper compares against.
//
// All latency arithmetic uses the published unit latencies (§2.2, §6.1):
// ADC processing 44 ns, state classification 24 ns, pulse preparation
// 36 ns, DAC processing 56 ns, one serdes hop 48 ns, and a 250 MHz fabric
// clock (4 ns cycles). The "latency wall" of Figure 2 — 500 ns minimum
// readout for a useful qubit lifetime plus the 160 ns hardware floor —
// falls out of these constants.
package controller

// Units are the hardware unit latencies of one feedback controller (ns).
type Units struct {
	ADC      float64 // ADC core + digital down conversion
	Classify float64 // state classification (demodulate + discriminate)
	Prep     float64 // pulse preparation (operation fetch + pulse library)
	DAC      float64 // interpolation + DAC core
	Serdes   float64 // one inter-FPGA serdes hop
	Clock    float64 // fabric clock period
}

// DefaultUnits returns the paper's unit latencies.
func DefaultUnits() Units {
	return Units{ADC: 44, Classify: 24, Prep: 36, DAC: 56, Serdes: 48, Clock: 4}
}

// Processing returns the full classical processing chain latency
// (ADC → classify → prep → DAC), 160 ns with the defaults.
func (u Units) Processing() float64 { return u.ADC + u.Classify + u.Prep + u.DAC }

// Readout-related constants (§2.2).
const (
	// ReadoutNs is the readout pulse duration of the evaluation device.
	ReadoutNs = 2000.0
	// MinUsefulReadoutNs is the minimum readout latency compatible with a
	// useful qubit lifetime (Google's 500 ns operating point).
	MinUsefulReadoutNs = 500.0
)

// LatencyWall returns Figure 2's 660 ns wall: the minimum useful readout
// plus the hardware processing floor.
func LatencyWall(u Units) float64 { return MinUsefulReadoutNs + u.Processing() }

// DesignPoint is one quantum-processor design on Figure 2's readout-latency
// versus qubit-lifetime trade-off.
type DesignPoint struct {
	Name      string
	ReadoutNs float64
	T1Us      float64
}

// Figure2DesignPoints returns the published design points: shortening the
// readout requires stronger resonator coupling, which costs lifetime.
func Figure2DesignPoints() []DesignPoint {
	return []DesignPoint{
		{Name: "Walter et al. [67]", ReadoutNs: 88, T1Us: 7.6},
		{Name: "Google Sycamore [42]", ReadoutNs: 500, T1Us: 20},
		{Name: "IBM Fez [41]", ReadoutNs: 1200, T1Us: 100},
		{Name: "This work (18-Xmon)", ReadoutNs: 2000, T1Us: 125},
	}
}
