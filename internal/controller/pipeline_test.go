package controller

import (
	"math"
	"testing"
)

func TestPipelineOverheadComposesUnitLatencies(t *testing.T) {
	p := NewPipeline()
	// Stage depths: adapter 5 + demod 6 + queue 1 + history 1 + table 1 +
	// bayes 3 + decider 1 = 18 cycles = 72 ns of post-capture processing.
	if c := p.StageCycles(); c != 18 {
		t.Fatalf("stage cycles %d, want 18", c)
	}
	if ns := p.OverheadNs(); ns != 72 {
		t.Fatalf("overhead %v ns, want 72", ns)
	}
	// The Bayesian unit matches the paper's 3-cycle output delay.
	if p.BayesCycles != 3 {
		t.Fatal("Bayesian unit depth drifted from the paper's 3 cycles")
	}
}

func TestPipelineWindowArrival(t *testing.T) {
	p := NewPipeline()
	// Window 0: 30 samples at 4 samples/cycle → ceil(30/4) = 8 cycles.
	if c := p.WindowArrivalCycle(0); c != 8 {
		t.Fatalf("window 0 arrival %d, want 8", c)
	}
	// Window 1: 60 samples → 15 cycles.
	if c := p.WindowArrivalCycle(1); c != 15 {
		t.Fatalf("window 1 arrival %d, want 15", c)
	}
}

func TestPipelineDecisionTimesMonotone(t *testing.T) {
	p := NewPipeline()
	prev := -1.0
	for w := 0; w < 66; w++ {
		d := p.DecisionNs(w)
		if d <= prev {
			t.Fatalf("decision time not increasing at window %d", w)
		}
		prev = d
	}
	// First decision: 8 + 18 = 26 cycles = 104 ns after readout start —
	// i.e. a 30 ns window costs ~74 ns of pipeline before a decision can
	// fire, bounding how early ARTERY can ever commit.
	if d := p.DecisionNs(0); d != 104 {
		t.Fatalf("first decision at %v ns, want 104", d)
	}
}

func TestPipelineSustainsWindowRate(t *testing.T) {
	p := NewPipeline()
	period, ok := p.Throughput()
	if !ok {
		t.Fatal("pipeline cannot sustain the window rate")
	}
	// 30 samples / 4 per cycle: a new window every 7 cycles (floor) — the
	// decision stream ticks at the same cadence as arrivals.
	if period != 7 {
		t.Fatalf("window period %d cycles", period)
	}
	// Consecutive decisions are spaced by exactly the arrival spacing.
	d0 := p.DecisionCycle(3) - p.DecisionCycle(2)
	d1 := p.WindowArrivalCycle(3) - p.WindowArrivalCycle(2)
	if d0 != d1 {
		t.Fatalf("decision spacing %d != arrival spacing %d", d0, d1)
	}
}

func TestPipelineTrace(t *testing.T) {
	p := NewPipeline()
	tr := p.Trace(10, 4)
	if len(tr.DecisionNs) != 10 {
		t.Fatalf("trace length %d", len(tr.DecisionNs))
	}
	if math.Abs(tr.TriggerNs-p.DecisionNs(4)) > 1e-12 {
		t.Fatalf("trigger at %v, want %v", tr.TriggerNs, p.DecisionNs(4))
	}
	// No commitment case.
	if tr2 := p.Trace(5, -1); tr2.TriggerNs != -1 {
		t.Fatal("no-commit trace has a trigger")
	}
	if tr3 := p.Trace(5, 9); tr3.TriggerNs != -1 {
		t.Fatal("out-of-range commit window has a trigger")
	}
}

func TestPipelineTracePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=0 trace accepted")
		}
	}()
	NewPipeline().Trace(0, 0)
}

func TestPipelineConsistentWithBehavioralModel(t *testing.T) {
	// The behavioral Artery controller approximates the per-window decision
	// path as window-end + bayes(12 ns) before staging. The cycle-accurate
	// pipeline says window-end + 72 ns + deserialization skew. The
	// difference must stay bounded by the published ADC+classify constants
	// (44 + 24 ns) that the behavioral model folds into staging instead.
	p := NewPipeline()
	u := DefaultUnits()
	for w := 0; w < 20; w++ {
		windowEndNs := float64((w + 1) * p.WindowSamples) // 1 GSPS: 1 ns/sample
		gap := p.DecisionNs(w) - windowEndNs
		if gap < 0 || gap > u.ADC+u.Classify+12 {
			t.Fatalf("window %d: pipeline gap %v ns outside [0, %v]",
				w, gap, u.ADC+u.Classify+12)
		}
	}
}
