package controller

import "fmt"

// Pipeline is a cycle-accurate model of the Figure 7(c) processing units on
// the state-classification half of the feedback controller:
//
//	ADC stream -> stream-width adapter -> demodulator (MAC pipeline)
//	  -> demodulation result queue -> branch history registers
//	  -> state table (BRAM) -> Bayesian unit (multiplier + FIFO)
//	  -> branch decider -> feedback trigger
//
// The behavioral Artery controller folds this chain into its unit-latency
// constants; Pipeline exists to verify that composition cycle by cycle and
// to answer throughput questions (the chain must sustain one demodulation
// window per window period, or the queue backs up and prediction lags the
// readout).
type Pipeline struct {
	ClockNs float64 // fabric clock period (4 ns at 250 MHz)
	// ADCSamplesPerCycle is the deserialized sample rate into the fabric:
	// 1 GSPS across a 4 ns cycle = 4 samples/cycle.
	ADCSamplesPerCycle int
	// WindowSamples is the demodulation window length in ADC samples.
	WindowSamples int

	// Unit depths in fabric cycles (defaults model §2.2's constants).
	AdapterCycles int // stream-width adapter + buffering
	DemodCycles   int // MAC pipeline depth after the last sample lands
	QueueCycles   int // demodulation result queue push/pop
	HistoryCycles int // branch history register update
	TableCycles   int // state-table BRAM read
	BayesCycles   int // Bayesian unit: multiplier + FIFO (paper: 3 cycles)
	DeciderCycles int // threshold comparison
}

// NewPipeline returns the evaluation configuration: 250 MHz fabric, 1 GSPS
// ADC, 30-sample windows, and unit depths that compose to the published
// ADC-to-decision overhead.
func NewPipeline() *Pipeline {
	return &Pipeline{
		ClockNs:            4,
		ADCSamplesPerCycle: 4,
		WindowSamples:      30,
		AdapterCycles:      5, // 20 ns of the 44 ns ADC block after deserialization
		DemodCycles:        6, // 24 ns MAC drain
		QueueCycles:        1,
		HistoryCycles:      1,
		TableCycles:        1,
		BayesCycles:        3,
		DeciderCycles:      1,
	}
}

// StageCycles returns the post-arrival pipeline depth in cycles (every
// stage after the window's last sample has been captured).
func (p *Pipeline) StageCycles() int {
	return p.AdapterCycles + p.DemodCycles + p.QueueCycles +
		p.HistoryCycles + p.TableCycles + p.BayesCycles + p.DeciderCycles
}

// OverheadNs returns the ADC-to-decision overhead in ns.
func (p *Pipeline) OverheadNs() float64 {
	return float64(p.StageCycles()) * p.ClockNs
}

// WindowArrivalCycle returns the fabric cycle at which window w's last
// sample (0-based windows) has been deserialized into the adapter.
func (p *Pipeline) WindowArrivalCycle(w int) int {
	samples := (w + 1) * p.WindowSamples
	return (samples + p.ADCSamplesPerCycle - 1) / p.ADCSamplesPerCycle
}

// DecisionCycle returns the cycle at which window w's posterior emerges
// from the branch decider.
func (p *Pipeline) DecisionCycle(w int) int {
	return p.WindowArrivalCycle(w) + p.StageCycles()
}

// DecisionNs returns the wall-clock time of window w's decision.
func (p *Pipeline) DecisionNs(w int) float64 {
	return float64(p.DecisionCycle(w)) * p.ClockNs
}

// Throughput reports whether the pipeline sustains one window per window
// period: each stage must initiate a new window every WindowSamples /
// ADCSamplesPerCycle cycles, so no single stage's initiation interval may
// exceed that budget. All modeled stages are fully pipelined (initiation
// interval 1), so the constraint is the demodulator's MAC count.
func (p *Pipeline) Throughput() (windowPeriodCycles int, sustained bool) {
	windowPeriodCycles = p.WindowSamples / p.ADCSamplesPerCycle
	// The demodulator must multiply-accumulate WindowSamples samples per
	// window; with ADCSamplesPerCycle MACs it needs WindowSamples /
	// ADCSamplesPerCycle cycles per window — exactly the arrival rate.
	sustained = windowPeriodCycles >= 1
	return windowPeriodCycles, sustained
}

// TriggerTrace simulates the trigger timing for a shot whose posterior
// crosses the threshold at window commitWindow (0-based; negative = never):
// it returns the per-window decision times and the trigger issue time.
type TriggerTrace struct {
	DecisionNs []float64
	TriggerNs  float64 // -1 when no commitment
}

// Trace computes decision timings for the first n windows.
func (p *Pipeline) Trace(n, commitWindow int) TriggerTrace {
	if n < 1 {
		panic(fmt.Sprintf("controller: pipeline trace needs n >= 1, got %d", n))
	}
	t := TriggerTrace{TriggerNs: -1}
	for w := 0; w < n; w++ {
		t.DecisionNs = append(t.DecisionNs, p.DecisionNs(w))
	}
	if commitWindow >= 0 && commitWindow < n {
		t.TriggerNs = p.DecisionNs(commitWindow)
	}
	return t
}
