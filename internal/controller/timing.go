package controller

import "fmt"

// TriggerEvent records one feedback trigger issued by the dynamic timing
// controller (§5.3, Figure 9): when the Bayesian predictor crosses its
// threshold, the controller releases the branch circuit from its
// conditional wait instead of a fixed time slot.
type TriggerEvent struct {
	// IssuedAtNs is the time (from readout start) the trigger was issued.
	IssuedAtNs float64
	// Remote indicates the trigger crossed FPGA boundaries.
	Remote bool
	// TransitNs is the transmission latency to the branch decider.
	TransitNs float64
	// Branch is the branch the trigger releases.
	Branch int
}

// ArrivalNs returns when the branch decider receives the trigger.
func (e TriggerEvent) ArrivalNs() float64 { return e.IssuedAtNs + e.TransitNs }

func (e TriggerEvent) String() string {
	kind := "local"
	if e.Remote {
		kind = "remote"
	}
	return fmt.Sprintf("trigger(branch=%d, %s, issued=%.0fns, arrives=%.0fns)",
		e.Branch, kind, e.IssuedAtNs, e.ArrivalNs())
}

// TimingController is the dynamic timing unit: it converts predictor
// commitments into feedback triggers and enforces static-schedule floors
// (e.g. case-3 sites may not fire before the readout pulse ends).
type TimingController struct {
	units Units
	// quantum of trigger issuance: triggers are aligned to fabric cycles.
	clockNs float64
}

// NewTimingController returns a timing controller over the given units.
func NewTimingController(u Units) *TimingController {
	return &TimingController{units: u, clockNs: u.Clock}
}

// quantize aligns t to the next fabric clock edge.
func (tc *TimingController) quantize(t float64) float64 {
	cycles := int(t / tc.clockNs)
	if float64(cycles)*tc.clockNs < t {
		cycles++
	}
	return float64(cycles) * tc.clockNs
}

// Issue produces the trigger for a committed prediction: decisionNs is the
// predictor's commit time, transitNs the interconnect latency toward the
// branch decider, floorNs an optional earliest-release time (0 for none).
func (tc *TimingController) Issue(decisionNs, transitNs, floorNs float64, branch int, remote bool) TriggerEvent {
	issued := tc.quantize(decisionNs)
	if arrive := issued + transitNs; arrive < floorNs {
		// Delay issuance so the branch does not fire before its floor.
		issued = tc.quantize(floorNs - transitNs)
	}
	return TriggerEvent{
		IssuedAtNs: issued,
		Remote:     remote,
		TransitNs:  transitNs,
		Branch:     branch,
	}
}

// StaticSlot returns the conventional static-timing release point for a
// feedback site: the end of the readout plus the full processing chain —
// what every baseline controller waits for.
func (tc *TimingController) StaticSlot(readoutNs float64) float64 {
	return readoutNs + tc.units.Processing()
}
