package controller

import (
	"testing"

	"artery/internal/circuit"
	"artery/internal/fault"
	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/readout"
	"artery/internal/stats"
)

// faultSession builds one shot session over the given config.
func faultSession(t *testing.T, cfg fault.Config, seed uint64) *fault.Session {
	t.Helper()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("bad fault config: %v", err)
	}
	return fault.NewInjector(cfg).Session(stats.NewRNG(seed))
}

// policyWith returns the default degradation policy with a marker rate set
// so the config reports Enabled (sessions are only built when it does).
func policyWith(mut func(*fault.Config)) fault.Config {
	cfg := fault.DefaultPolicy()
	mut(&cfg)
	return cfg
}

func TestArteryOutageFallsBack(t *testing.T) {
	a, ch := testRig(301, predict.DefaultConfig())
	cfg := policyWith(func(c *fault.Config) { c.ReadoutOutageRate = 0.999 })
	rng := stats.NewRNG(5)
	pulse := ch.Cal.Synthesize(1, rng)
	truth := ch.Classifier.ClassifyFull(pulse)

	sess := faultSession(t, cfg, 21)
	out := a.Feedback(site1(), Shot{Pulse: pulse, Truth: truth, Faults: sess})
	if sess.C.Outages != 1 {
		t.Skipf("outage did not fire at this seed (rate 0.999)")
	}
	if !out.FellBack || out.Committed {
		t.Fatalf("outage shot not served on the blocking path: %+v", out)
	}
	// On-chip site: blocked latency is readout + processing + repeat penalty.
	want := a.pred.ReadoutDurationNs() + a.units.Processing() + cfg.OutagePenaltyNs
	if out.LatencyNs != want {
		t.Fatalf("outage latency = %v, want %v", out.LatencyNs, want)
	}
}

func TestArteryDegradesAndRecovers(t *testing.T) {
	a, ch := testRig(302, predict.DefaultConfig())
	a.Online = false
	a.PriorWeight = 100000 // prior dominates every posterior
	// Jitter with a vanishing mean keeps faults "enabled" without perturbing
	// latency paths — we want the degradation machinery driven purely by the
	// shadow misprediction rate.
	cfg := policyWith(func(c *fault.Config) { c.TriggerJitterNs = 1e-12 })
	in := fault.NewInjector(cfg)
	rng := stats.NewRNG(6)
	site := siteWithPrior(40, 0.9999) // history screams 1

	// Phase 1: feed truth-0 pulses. The overwhelming prior commits branch 1
	// every time → mispredictions → the tracker must trip within a window.
	tripped := -1
	for i := 0; i < cfg.FallbackWindow+4; i++ {
		pulse := ch.Cal.Synthesize(0, rng)
		sess := in.Session(rng.Split())
		out := a.Feedback(site, Shot{Pulse: pulse, Truth: 0, Faults: sess})
		if out.FellBack {
			tripped = i
			if sess.C.Fallbacks != 1 {
				t.Fatalf("fallback shot did not count: %+v", sess.C)
			}
			break
		}
		if out.Correct {
			t.Skipf("predictor shook off the bad prior at shot %d", i)
		}
	}
	if tripped < 0 {
		t.Fatalf("tracker never tripped after %d straight mispredictions", cfg.FallbackWindow+4)
	}
	if tripped < cfg.FallbackWindow/2-1 {
		t.Fatalf("tripped after %d shots, before the half-window guard (%d)", tripped, cfg.FallbackWindow/2)
	}

	// Phase 2: while degraded the shadow predictor keeps measuring; feed
	// truth-1 pulses (matching the prior → correct shadow predictions) until
	// the bad rate falls below FallbackRecover and prediction resumes.
	recovered := false
	for i := 0; i < 3*cfg.FallbackWindow; i++ {
		pulse := ch.Cal.Synthesize(1, rng)
		sess := in.Session(rng.Split())
		out := a.Feedback(site, Shot{Pulse: pulse, Truth: 1, Faults: sess})
		if !out.FellBack {
			if !out.Committed {
				t.Fatalf("recovered feedback did not commit: %+v", out)
			}
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("controller never recovered from degradation")
	}
}

func TestArteryLostTriggerFallsBack(t *testing.T) {
	a, ch := testRig(303, predict.DefaultConfig())
	a.Online = false
	a.PriorWeight = 100000
	cfg := policyWith(func(c *fault.Config) {
		c.BackplaneDropRate = 0.999 // every hop drops: trigger cannot get out
		c.FallbackTrip = 0         // keep the tracker out of the way
		c.FallbackRecover = 0
	})
	rng := stats.NewRNG(7)
	// Remote site: qubit 0 → qubit 6 crosses the backplane (2 hops).
	site := Site{ID: 50, Case: circuit.Case1Independent, ReadQubit: 0, BranchQubit: 6,
		Prior: 0.9999, UndoOnOneNs: 30}

	pulse := ch.Cal.Synthesize(1, rng)
	sess := faultSession(t, cfg, 31)
	out := a.Feedback(site, Shot{Pulse: pulse, Truth: 1, Faults: sess})
	if sess.C.LostTriggers != 1 {
		t.Skipf("trigger survived a 0.999 drop rate at this seed: %+v", sess.C)
	}
	if !out.FellBack || out.Committed {
		t.Fatalf("lost trigger not degraded to the blocking path: %+v", out)
	}
	if out.LatencyNs <= ReadoutNs {
		t.Fatalf("lost-trigger latency %v should exceed the readout (retry penalty + blocking path)", out.LatencyNs)
	}
	if sess.C.Retries < cfg.MaxRetries {
		t.Fatalf("retries = %d, want at least the trigger budget %d", sess.C.Retries, cfg.MaxRetries)
	}
}

func TestArteryJitterDelaysCommittedTrigger(t *testing.T) {
	// Two identical rigs, one fault-free and one with heavy trigger jitter:
	// the faulted committed feedback must be strictly slower and the clean
	// one unchanged by the (draw-free) zero-rate session.
	mk := func() (*Artery, *readout.Pulse, int) {
		a, ch := testRig(304, predict.DefaultConfig())
		a.Online = false
		a.PriorWeight = 100000
		pulse := ch.Cal.Synthesize(1, stats.NewRNG(8))
		return a, pulse, 1
	}
	aClean, pulse, truth := mk()
	base := aClean.Feedback(siteWithPrior(60, 0.9999), Shot{Pulse: pulse, Truth: truth})
	if !base.Committed || !base.Correct {
		t.Skipf("committed-correct baseline not reached: %+v", base)
	}

	aJit, pulse2, _ := mk()
	cfg := policyWith(func(c *fault.Config) {
		c.TriggerJitterNs = 500
		c.FallbackTrip = 0
		c.FallbackRecover = 0
	})
	sess := faultSession(t, cfg, 41)
	out := aJit.Feedback(siteWithPrior(60, 0.9999), Shot{Pulse: pulse2, Truth: truth, Faults: sess})
	if !out.Committed {
		t.Fatalf("jittered shot did not commit: %+v", out)
	}
	if sess.C.Jitters != 1 {
		t.Fatalf("jitter draw did not fire: %+v", sess.C)
	}
	if out.LatencyNs <= base.LatencyNs {
		t.Fatalf("jittered latency %v not above clean latency %v", out.LatencyNs, base.LatencyNs)
	}
}

func TestBaselineOutagePenalty(t *testing.T) {
	topo := interconnect.PaperTopology()
	b := NewBaseline("QubiC", QubiCOverheadNs, topo)
	cfg := policyWith(func(c *fault.Config) { c.ReadoutOutageRate = 0.999 })
	sess := faultSession(t, cfg, 51)
	out := b.Feedback(site1(), Shot{Truth: 1, Faults: sess})
	if sess.C.Outages != 1 {
		t.Skipf("outage did not fire at this seed")
	}
	want := ReadoutNs + QubiCOverheadNs + cfg.OutagePenaltyNs
	if out.LatencyNs != want {
		t.Fatalf("outage latency = %v, want %v", out.LatencyNs, want)
	}
	if out.FellBack {
		t.Fatal("baseline has no predictive path to fall back from")
	}
}

func TestBaselineRemoteRetriesStretchLatency(t *testing.T) {
	topo := interconnect.PaperTopology()
	b := NewBaseline("QubiC", QubiCOverheadNs, topo)
	remote := Site{ID: 70, Case: circuit.Case1Independent, ReadQubit: 0, BranchQubit: 6}
	clean := b.Feedback(remote, Shot{Truth: 0})

	cfg := policyWith(func(c *fault.Config) { c.BackplaneCorruptRate = 0.6 })
	in := fault.NewInjector(cfg)
	rng := stats.NewRNG(9)
	sawRetry := false
	for i := 0; i < 50 && !sawRetry; i++ {
		sess := in.Session(rng.Split())
		out := b.Feedback(remote, Shot{Truth: 0, Faults: sess})
		if sess.C.Retries > 0 {
			sawRetry = true
			if out.LatencyNs <= clean.LatencyNs {
				t.Fatalf("retried latency %v not above clean %v", out.LatencyNs, clean.LatencyNs)
			}
		} else if out.LatencyNs != clean.LatencyNs {
			t.Fatalf("retry-free faulted latency %v differs from clean %v", out.LatencyNs, clean.LatencyNs)
		}
	}
	if !sawRetry {
		t.Fatal("no retry observed in 50 shots at corrupt rate 0.6")
	}
}

func TestArteryFaultFreeSessionIsTransparent(t *testing.T) {
	// A nil session and a session over a zero-rate config must both leave
	// every outcome identical to the fault-free path.
	mkOut := func(sess *fault.Session) Outcome {
		a, ch := testRig(305, predict.DefaultConfig())
		pulse := ch.Cal.Synthesize(1, stats.NewRNG(10))
		truth := ch.Classifier.ClassifyFull(pulse)
		return a.Feedback(siteWithPrior(80, 0.995), Shot{Pulse: pulse, Truth: truth, Faults: sess})
	}
	ref := mkOut(nil)
	// DefaultPolicy has all rates zero; such an injector is never installed
	// by the engine, but the controller must still treat its sessions as
	// no-ops if handed one directly.
	zero := fault.NewInjector(fault.DefaultPolicy()).Session(stats.NewRNG(1))
	if got := mkOut(zero); got != ref {
		t.Fatalf("zero-rate session changed the outcome:\n got %+v\nwant %+v", got, ref)
	}
}
