package experiment

import (
	"fmt"
	"math"
	"time"

	"artery/internal/controller"
	"artery/internal/core"
	"artery/internal/qec"
	"artery/internal/quantum"
	"artery/internal/stats"
	"artery/internal/workload"
)

func init() {
	ExtraRegistry["xtr-scale"] = (*Suite).ExtraScale
}

// cliffordSafeDeviceNoise is the device noise model projected onto its
// Clifford-safe channels: depolarizing gate error and readout flips stay,
// T1/T2 decay and quasi-static detuning are removed. This is the noise
// model under which the stabilizer backend is exact (DESIGN.md
// "Simulation backends").
func cliffordSafeDeviceNoise() *quantum.NoiseModel {
	n := quantum.DeviceNoise()
	n.T1, n.T2 = math.Inf(1), math.Inf(1)
	n.QuasiStaticSigma = 0
	return n
}

// surfaceEngine builds a fresh QubiC-overhead engine with the given
// simulation backend under Clifford-safe device noise.
func (s *Suite) surfaceEngine(kind quantum.BackendKind) *core.Engine {
	e := core.NewEngine(controller.NewBaseline("QubiC", controller.QubiCOverheadNs, s.topo),
		s.channel(30), cliffordSafeDeviceNoise())
	e.Backend = kind
	return e
}

// ExtraScale measures simulation throughput of the surface-code memory
// workload as the code distance grows — the capability the stabilizer
// backend exists for. The state vector caps at quantum.MaxStateQubits
// (24) qubits, so d=3 (17 qubits) is the only distance it can represent
// at all; beyond that the column reads "—" and the tableau is the only
// backend that runs. Rates are wall-clock on the current machine, so the
// absolute numbers vary run to run; the shape — polynomial tableau cost
// against the state vector's exponential wall — is the claim.
func (s *Suite) ExtraScale() *Table {
	t := &Table{
		ID:    "Extra: backend scaling",
		Title: "surface-code memory throughput by code distance (2 cycles)",
		Header: []string{"d", "qubits", "feedback sites",
			"tableau shots/s", "state-vector shots/s", "speedup"},
	}
	points := []struct{ d, shotsDiv int }{{3, 1}, {5, 2}, {9, 6}, {15, 12}}
	for pi, pt := range points {
		wl := workload.SurfaceMemory(pt.d)
		shots := s.Shots / pt.shotsDiv
		if shots < 2 {
			shots = 2
		}
		rate := func(kind quantum.BackendKind) float64 {
			e := s.surfaceEngine(kind)
			start := time.Now()
			e.Run(wl, shots, stats.NewRNG(s.Seed+uint64(3100+pi)))
			return float64(shots) / time.Since(start).Seconds()
		}
		tab := rate(quantum.BackendStabilizer)
		svCell, spCell := "—", "—"
		if wl.Circuit.NumQubits <= quantum.MaxStateQubits {
			sv := rate(quantum.BackendState)
			svCell = fmt.Sprintf("%.1f", sv)
			spCell = ratio(tab / sv)
		}
		t.AddRow(fmt.Sprint(pt.d), fmt.Sprint(wl.Circuit.NumQubits),
			fmt.Sprint(len(wl.SiteP1)), fmt.Sprintf("%.1f", tab), svCell, spCell)
	}
	t.Note("state vector holds at most %d qubits; '—' marks distances it cannot represent (d=5 already needs 49)", quantum.MaxStateQubits)
	t.Note("wall-clock rates on this machine; runs are bit-identical across backends and worker counts, only the clock varies")
	return t
}

// surfaceLogicalErrorRate runs the surface-code memory workload on the
// stabilizer backend and decodes the recorded measurements offline into
// a logical-Z error rate.
//
// Record layout per shot (fixed by workload.SurfaceMemory): for each of
// the two cycles, one ancilla measurement per check in code.Stabilizers
// order (the feedback sites), then one Z-basis measurement per data
// qubit 0..d²−1. X errors are decoded from the final transversal
// readout: its implied Z-check syndrome is matched by the union-find
// decoder into an X Pauli frame, and a shot is a logical error when the
// frame-corrected data parity along the logical-Z support is odd. This
// is exact for the offline setting — a final-readout flip is
// indistinguishable from a data X error and decodes identically, and a
// misfired ancilla reset on an X check applies that check's own
// stabilizer (harmless). The per-cycle ancilla records are not matched:
// an X error striking between two checks' CNOTs inside a cycle splits
// its defect pair across rounds, which round-by-round spatial matching
// mis-corrects into logical operators; using that history faithfully
// needs full space-time matching, which the repository's decoders do
// not implement.
func (s *Suite) surfaceLogicalErrorRate(d, shots int, noise *quantum.NoiseModel, seed uint64) float64 {
	code := qec.NewCode(d)
	wl := workload.SurfaceMemory(d)
	dec := qec.NewUnionFindDecoder(code)
	zIdx := code.StabilizersOf(qec.StabZ)
	zSupport := make([][]int, len(zIdx))
	for i, si := range zIdx {
		zSupport[i] = code.Stabilizers[si].Support
	}
	nChecks := code.NumStabilizers()
	nData := code.NumData
	perShot := make([][]int, shots)

	e := s.surfaceEngine(quantum.BackendStabilizer)
	e.Noise = noise
	e.RecordMeasurements = true
	e.OnShot = func(shot int, sr core.ShotResult) {
		perShot[shot] = append([]int(nil), sr.Measurements...)
	}
	e.Run(wl, shots, stats.NewRNG(seed))

	cycles := (len(perShot[0]) - nData) / nChecks
	errors := 0
	for _, rec := range perShot {
		final := rec[cycles*nChecks:]
		var syn uint32
		for i, sup := range zSupport {
			p := 0
			for _, q := range sup {
				p ^= final[q]
			}
			if p == 1 {
				syn |= 1 << uint(i)
			}
		}
		frame := dec.DecodeX(syn)
		parity := 0
		for _, q := range code.LogicalZ {
			parity ^= final[q] ^ int(frame>>uint(q))&1
		}
		if parity == 1 {
			errors++
		}
	}
	return float64(errors) / float64(shots)
}
