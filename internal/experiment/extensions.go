package experiment

import (
	"fmt"

	"artery/internal/predict"
	"artery/internal/qec"
	"artery/internal/readout"
	"artery/internal/stats"
)

func init() {
	ExtraRegistry["xtr-sprt"] = (*Suite).ExtraSPRT
	ExtraRegistry["xtr-platform"] = (*Suite).ExtraPlatforms
	ExtraRegistry["xtr-ksweep"] = (*Suite).ExtraHistoryDepth
	ExtraRegistry["xtr-decoders"] = (*Suite).ExtraDecoders
}

// ExtraHistoryDepth sweeps the number of branch-history registers k (the
// paper fixes k=6 without a reported sweep): deeper histories sharpen the
// trajectory patterns but square the table, and beyond the SNR-limited
// depth they stop paying.
func (s *Suite) ExtraHistoryDepth() *Table {
	t := &Table{
		ID:     "Extra: branch-history depth",
		Title:  "history register count k vs prediction quality",
		Header: []string{"k", "committed accuracy", "mean decision (µs)", "commit rate", "table bytes"},
	}
	shots := 15 * s.Shots
	for _, k := range []int{2, 4, 6, 8} {
		table := readout.NewStateTableOpts(k, readout.MaxTimeBuckets, 5)
		ch := readout.NewChannelWithTable(readout.DefaultCalibration(), 30, table, stats.NewRNG(s.Seed+uint64(50+k)))
		acc, lat, commit := s.predictorQuality(ch, shots, uint64(2900+k))
		t.AddRow(fmt.Sprint(k), pct(acc), us(lat), pct(commit), fmt.Sprint(table.SizeBytes()))
	}
	t.Note("the paper's default is k=6; table size grows as 2^k per time bucket")
	return t
}

// ExtraDecoders compares the three decoders on the d=3 memory at matched
// noise: the exact LUT, greedy matching, and union-find.
func (s *Suite) ExtraDecoders() *Table {
	code := qec.NewCode(3)
	decoders := []qec.Decoder{
		qec.NewLUTDecoder(code),
		qec.NewGreedyDecoder(code),
		qec.NewUnionFindDecoder(code),
	}
	trials := 80 * s.Shots
	t := &Table{
		ID:     "Extra: decoder comparison",
		Title:  "d=3 memory logical error rate by decoder (10 cycles)",
		Header: []string{"decoder", "LER"},
	}
	for di, dec := range decoders {
		res := qec.RunMemory(qec.MemoryParams{
			Code: code, Dec: dec, Cycles: 10, Trials: trials,
			PData: 0.015, PMeas: 0.008,
		}, stats.NewRNG(s.Seed+uint64(3000+di)))
		t.AddRow(dec.Name(), pct(res.LogicalErrorRate()))
	}
	t.Note("the LUT is exact minimum-weight for d=3; greedy and union-find are its scalable stand-ins")
	return t
}

// ExtraSPRT compares the paper's table-based reconciled predictor against
// the sequential probability ratio test (Wald) on matched confidence
// targets — the statistically optimal extension of the threshold rule.
// SPRT accumulates exact Gaussian log-likelihoods and needs no trained
// table, but assumes the parametric readout model; the table is model-free.
func (s *Suite) ExtraSPRT() *Table {
	ch := s.channel(30)
	shots := 15 * s.Shots
	t := &Table{
		ID:    "Extra: SPRT vs trajectory table",
		Title: "matched-confidence comparison of decision rules",
		Header: []string{"prior P(1)",
			"table acc", "table latency (µs)",
			"sprt acc", "sprt latency (µs)"},
	}
	for pi, prior := range []float64{0.05, 0.30, 0.50} {
		rng := stats.NewRNG(s.Seed + uint64(2600+pi))
		var pulses []*readout.Pulse
		for i := 0; i < shots; i++ {
			state := 0
			if rng.Bool(prior) {
				state = 1
			}
			pulses = append(pulses, ch.Cal.Synthesize(state, rng))
		}
		table := predict.New(predict.Config{Theta0: 0.91, Theta1: 0.91, Mode: predict.ModeCombined}, ch)
		table.SeedHistory(prior*60, (1-prior)*60)
		accT, latT := table.Accuracy(pulses)
		sprt := predict.NewSPRT(ch, 0.09, 0.09)
		accS, latS := sprt.Accuracy(pulses, prior)
		t.AddRow(fmt.Sprintf("%.2f", prior), pct(accT), us(latT), pct(accS), us(latS))
	}
	t.Note("α=β=0.09 targets the table's θ=0.91 confidence; SPRT trades the trained table for a parametric Gaussian model")
	return t
}

// platformSpec scales the readout physics to other qubit platforms — the
// paper claims the mechanism generalizes beyond superconducting hardware
// (§2.1: neutral atoms, trapped ions). Times scale by orders of magnitude
// while the classical processing stays fixed, which is exactly why
// prediction matters most where the readout dominates.
type platformSpec struct {
	name string
	// readoutNs and t1Ns define the platform's measurement and lifetime
	// scales; snrScale adjusts per-sample SNR (ion fluorescence readout is
	// photon-starved early, superconducting dispersive readout is not).
	readoutNs float64
	t1Ns      float64
	snrScale  float64
}

// ExtraPlatforms evaluates the predictor's early-commit fraction of the
// readout across platform timescales.
func (s *Suite) ExtraPlatforms() *Table {
	specs := []platformSpec{
		{"superconducting (paper)", 2_000, 125_000, 1.0},
		{"neutral atom", 20_000, 4_000_000, 0.7},
		{"trapped ion", 200_000, 1e9, 0.5},
	}
	t := &Table{
		ID:    "Extra: platform generalization",
		Title: "prediction benefit across qubit platforms (balanced prior)",
		Header: []string{"platform", "readout (µs)",
			"mean decision (µs)", "fraction of readout", "committed accuracy"},
	}
	for pi, spec := range specs {
		cal := readout.DefaultCalibration()
		cal.DurationNs = spec.readoutNs
		cal.T1Ns = spec.t1Ns
		cal.NoiseSigma = cal.NoiseSigma / spec.snrScale
		// The capture keeps 2000 samples per readout regardless of the
		// platform's wall-clock scale (slower dynamics sample slower —
		// fluorescence readout integrates photon counts over ms, not GSPS),
		// so calibration cost stays flat across platforms.
		cal.SampleRateGSPS = 2000 / spec.readoutNs
		// Window scales with the readout so the table keeps ~66 windows.
		windowNs := spec.readoutNs / 66
		ch := readout.NewChannel(cal, windowNs, readout.DefaultK, stats.NewRNG(s.Seed+uint64(2700+pi)))
		p := predict.New(predict.Config{Theta0: 0.91, Theta1: 0.91, Mode: predict.ModeCombined}, ch)
		p.SeedHistory(50, 50)
		rng := stats.NewRNG(s.Seed + uint64(2800+pi))
		var pulses []*readout.Pulse
		for i := 0; i < 6*s.Shots; i++ {
			pulses = append(pulses, cal.Synthesize(i%2, rng))
		}
		acc, lat := p.Accuracy(pulses)
		t.AddRow(spec.name,
			fmt.Sprintf("%.1f", spec.readoutNs/1000),
			us(lat), pct(lat/spec.readoutNs), pct(acc))
	}
	t.Note("the decision lands at a similar fraction of the readout on every platform; absolute savings grow with readout duration")
	return t
}
