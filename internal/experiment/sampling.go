package experiment

import (
	"fmt"

	"artery/internal/interconnect"
	"artery/internal/pulse"
	"artery/internal/workload"
)

// table2Workloads enumerates the three compression benchmarks of Table 2.
func table2Workloads() []*workload.Workload {
	return []*workload.Workload{
		workload.QECCycle(2),
		workload.QRW(10),
		workload.RCNOT(4),
	}
}

// Table2 reproduces the adaptive pulse-sampling evaluation: per-DAC stream
// bandwidth, DAC channels per FPGA, and decoder latency for the raw,
// Huffman, run-length and combined codecs over the three benchmarks'
// compiled pulse streams.
func (s *Suite) Table2() *Table {
	t := &Table{
		ID:     "Table 2",
		Title:  "Evaluation of the adaptive pulse sampling",
		Header: []string{"quantity", "benchmark", "raw", "huffman", "run-length", "huffman+run-length"},
	}
	type rowSet struct {
		name    string
		reports []pulse.SamplingReport
	}
	var sets []rowSet
	for _, wl := range table2Workloads() {
		streams := pulse.CompileCircuit(wl.Circuit)
		var reports []pulse.SamplingReport
		for _, c := range pulse.Codecs() {
			reports = append(reports, pulse.AnalyzeSampling(c, streams))
		}
		sets = append(sets, rowSet{wl.Name, reports})
	}
	for _, set := range sets {
		row := []string{"bandwidth (Gb/s)", set.name}
		for _, r := range set.reports {
			row = append(row, fmt.Sprintf("%.1f", r.BandwidthGbps))
		}
		t.Rows = append(t.Rows, row)
	}
	for _, set := range sets {
		row := []string{"#DAC / FPGA", set.name}
		for _, r := range set.reports {
			row = append(row, fmt.Sprint(r.DACsPerFPGA))
		}
		t.Rows = append(t.Rows, row)
	}
	for _, set := range sets {
		row := []string{"decode latency (ns)", set.name}
		for _, r := range set.reports {
			if r.DecodeLatencyNs == 0 {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.1f", r.DecodeLatencyNs))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	// Aggregate headline: bandwidth gain of the combined codec, and the
	// latency trade against an inter-FPGA serdes round.
	var gain float64
	for _, set := range sets {
		gain += set.reports[0].BandwidthGbps / set.reports[3].BandwidthGbps
	}
	gain /= float64(len(sets))
	maxDACs := 0
	for _, set := range sets {
		if d := set.reports[3].DACsPerFPGA; d > maxDACs {
			maxDACs = d
		}
	}
	t.Note("combined codec bandwidth gain %.1fx (paper: 4.7x avg, up to 6.2x); raw supports %d DACs, combined up to %d",
		gain, sets[0].reports[0].DACsPerFPGA, maxDACs)
	t.Note("decode latency trades against the %.0f ns serdes hop it avoids (§6.5)", interconnect.SerdesHopLatencyNs)
	return t
}
