package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// TestHeadlineShapesSeed1 is the statistical regression net over the
// EXPERIMENTS.md headline shapes at the canonical seed 1: the qualitative
// claims the repository's evaluation stands on must survive any refactor
// of the engine, predictor or controllers. Guarded by -short because it
// regenerates three full experiments.
func TestHeadlineShapesSeed1(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shape regeneration skipped in -short mode")
	}
	s := NewSuite(1, 40)

	// Shape 1 — Table 1: mean ARTERY feedback speedup over QubiC > 2x.
	tab1 := s.Table1()
	speedup := -1.0
	for _, note := range tab1.Notes {
		if i := strings.LastIndex(note, "-> speedup "); i >= 0 {
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(note[i+len("-> speedup "):]), "x"), 64)
			if err != nil {
				t.Fatalf("cannot parse speedup from note %q: %v", note, err)
			}
			speedup = v
		}
	}
	if speedup < 0 {
		t.Fatalf("Table 1 notes carry no speedup headline: %q", tab1.Notes)
	}
	if speedup <= 2 {
		t.Errorf("Table 1 ARTERY speedup vs QubiC = %.2fx, headline requires > 2x", speedup)
	}

	// Shape 2 — Figure 15b: mean prediction accuracy ≥ 85%% per benchmark.
	fig15b := s.Figure15b()
	for _, row := range fig15b.Rows {
		acc := parseF(t, row[2])
		if acc < 85 {
			t.Errorf("Figure 15b: %s mean accuracy %.1f%% below the 85%% headline", row[0], acc)
		}
	}

	// Shape 3 — Figure 12d: the latency-benefit crossover sits at d = 13.
	fig12d := s.Figure12d()
	last := fig12d.Rows[len(fig12d.Rows)-1]
	if last[0] != "last beneficial distance" {
		t.Fatalf("Figure 12d ends with %q, expected the crossover row", last[0])
	}
	if last[1] != "13" {
		t.Errorf("Figure 12d crossover at d = %s, paper (and headline) say 13", last[1])
	}
}
