package experiment

import (
	"strconv"
	"strings"
	"testing"

	"artery/internal/predict"
	"artery/internal/quantum"
	"artery/internal/stats"
	"artery/internal/workload"
)

// TestHeadlineShapesSeed1 is the statistical regression net over the
// EXPERIMENTS.md headline shapes at the canonical seed 1: the qualitative
// claims the repository's evaluation stands on must survive any refactor
// of the engine, predictor or controllers. Guarded by -short because it
// regenerates three full experiments.
func TestHeadlineShapesSeed1(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shape regeneration skipped in -short mode")
	}
	s := NewSuite(1, 40)

	// Shape 1 — Table 1: mean ARTERY feedback speedup over QubiC > 2x.
	tab1 := s.Table1()
	speedup := -1.0
	for _, note := range tab1.Notes {
		if i := strings.LastIndex(note, "-> speedup "); i >= 0 {
			v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(note[i+len("-> speedup "):]), "x"), 64)
			if err != nil {
				t.Fatalf("cannot parse speedup from note %q: %v", note, err)
			}
			speedup = v
		}
	}
	if speedup < 0 {
		t.Fatalf("Table 1 notes carry no speedup headline: %q", tab1.Notes)
	}
	if speedup <= 2 {
		t.Errorf("Table 1 ARTERY speedup vs QubiC = %.2fx, headline requires > 2x", speedup)
	}

	// Shape 2 — Figure 15b: mean prediction accuracy ≥ 85%% per benchmark.
	fig15b := s.Figure15b()
	for _, row := range fig15b.Rows {
		acc := parseF(t, row[2])
		if acc < 85 {
			t.Errorf("Figure 15b: %s mean accuracy %.1f%% below the 85%% headline", row[0], acc)
		}
	}

	// Shape 3 — Figure 12d: the latency-benefit crossover sits at d = 13.
	fig12d := s.Figure12d()
	last := fig12d.Rows[len(fig12d.Rows)-1]
	if last[0] != "last beneficial distance" {
		t.Fatalf("Figure 12d ends with %q, expected the crossover row", last[0])
	}
	if last[1] != "13" {
		t.Errorf("Figure 12d crossover at d = %s, paper (and headline) say 13", last[1])
	}
}

// TestStabilizerBackendShapesSeed1 extends the seed-1 shape net to the
// stabilizer backend: the qualitative claims that only the tableau can
// support (surface-code memory beyond the state-vector wall) plus the
// repository's headline feedback speedup re-measured with the physics on
// the tableau. Guarded by -short like the headline shapes.
func TestStabilizerBackendShapesSeed1(t *testing.T) {
	if testing.Short() {
		t.Skip("stabilizer shape regeneration skipped in -short mode")
	}
	s := NewSuite(1, 40)

	// Shape 4 — surface-code memory on the tableau: the logical error
	// rate falls with code distance. The noise point sits well below the
	// union-find decoder's effective threshold (readout-flip dominated;
	// depolarizing gate error an order below the device default) so the
	// d=5 → d=7 suppression is visible at 1200 shots.
	noise := cliffordSafeDeviceNoise()
	noise.Gate1QError, noise.Gate2QError = 0.0002, 0.001
	noise.ReadoutError = 0.03
	l5 := s.surfaceLogicalErrorRate(5, 1200, noise, s.Seed+3200)
	l7 := s.surfaceLogicalErrorRate(7, 1200, noise, s.Seed+3201)
	if l5 == 0 || l7 == 0 {
		t.Fatalf("degenerate logical error rates (LER(5)=%v LER(7)=%v): noise is not biting", l5, l7)
	}
	if l7 >= l5 {
		t.Errorf("surface memory LER(7)=%.4f not below LER(5)=%.4f on the stabilizer backend", l7, l5)
	}

	// Shape 5 — the ARTERY feedback-path speedup over QubiC survives the
	// backend swap: > 2x with both engines simulating on the tableau.
	wl := workload.QRW(5)
	shots := 15 * s.Shots
	ae := s.arteryEngineOn(s.channel(30), predict.ModeCombined, 0.91)
	ae.SimulateState = true
	ae.Noise = cliffordSafeDeviceNoise()
	ae.Backend = quantum.BackendStabilizer
	ra := ae.Run(wl, shots, stats.NewRNG(s.Seed+3301))
	qe := s.surfaceEngine(quantum.BackendStabilizer)
	rq := qe.Run(wl, shots, stats.NewRNG(s.Seed+3300))
	if sp := rq.MeanLatencyNs / ra.MeanLatencyNs; sp <= 2 {
		t.Errorf("ARTERY speedup vs QubiC on the stabilizer backend = %.2fx, headline requires > 2x", sp)
	}
}
