package experiment

import (
	"fmt"

	"artery/internal/controller"
	"artery/internal/core"
	"artery/internal/predict"
	"artery/internal/stats"
	"artery/internal/workload"
)

// fig13Workloads enumerates the fidelity benchmarks at the deepest sweep
// points of the paper's figure (QRW step 25, RCNOT/DQT distance 6,
// RUS-QNN cycle 6), where idle-decoherence differences compound the most.
// State simulation must be feasible (<= 16 qubits), so reset uses a single
// qubit as the representative (reset fidelity is per-qubit
// multiplicative).
func fig13Workloads() []*workload.Workload {
	return []*workload.Workload{
		workload.QRW(25),
		workload.RCNOT(6),
		workload.RUSQNN(6),
		workload.DQT(6),
		workload.Reset(1),
	}
}

// Figure13 reproduces the fidelity-improvement evaluation: mean
// end-of-circuit fidelity per benchmark and controller, with ARTERY's
// improvement factors over each baseline.
func (s *Suite) Figure13() *Table {
	t := &Table{
		ID:     "Figure 13",
		Title:  "Fidelity under feedback latency",
		Header: []string{"benchmark", "QubiC", "HERQULES", "Salathe et al.", "Reuer et al.", "ARTERY"},
	}
	mk := func(name string, overhead float64) *core.Engine {
		e := core.NewEngine(controller.NewBaseline(name, overhead, s.topo), s.channel(30), nil)
		return e // state sim on
	}
	engines := func() []*core.Engine {
		return []*core.Engine{
			mk("QubiC", controller.QubiCOverheadNs),
			mk("HERQULES", controller.HERQULESOverheadNs),
			mk("Salathe et al.", controller.SalatheOverheadNs),
			mk("Reuer et al.", controller.ReuerOverheadNs),
			s.fidelityArtery(),
		}
	}
	wls := fig13Workloads()
	const nEngines = 5
	fids := make([][nEngines]float64, len(wls))
	// Every (workload, engine) pair is one independent cell: a fresh
	// engine over a paired noise stream (salt excludes the engine index,
	// so fidelity differences reflect feedback latency, not sampling
	// luck).
	s.forEachCell(len(wls)*nEngines, func(i int) {
		wi, ei := i/nEngines, i%nEngines
		res := s.runCell(engines()[ei], wls[wi], uint64(1300+10*wi))
		fids[wi][ei] = res.MeanFidelity
	})
	sums := make([]float64, nEngines)
	for wi, wl := range wls {
		row := []string{wl.Name}
		for ei := 0; ei < nEngines; ei++ {
			row = append(row, fmt.Sprintf("%.4f", fids[wi][ei]))
			sums[ei] += fids[wi][ei]
		}
		t.AddRow(row...)
	}
	n := float64(len(fig13Workloads()))
	t.Note("mean fidelity improvement vs QubiC %s, HERQULES %s, Salathe %s, Reuer %s (paper: 1.24x/1.22x/1.19x/1.29x)",
		ratio(sums[4]/sums[0]), ratio(sums[4]/sums[1]), ratio(sums[4]/sums[2]), ratio(sums[4]/sums[3]))
	_ = n
	return t
}

// fidelityArtery builds an ARTERY engine with state simulation enabled.
func (s *Suite) fidelityArtery() *core.Engine {
	cfg := predict.Config{Theta0: 0.91, Theta1: 0.91, Mode: predict.ModeCombined}
	ctrl := controller.NewArtery(controller.DefaultUnits(), s.topo, predict.New(cfg, s.channel(30)))
	return core.NewEngine(ctrl, s.channel(30), nil)
}

// fig14Workloads enumerates the ablation benchmarks.
func fig14Workloads() []*workload.Workload {
	return []*workload.Workload{
		workload.QECCycle(1),
		workload.QRW(5),
		workload.RCNOT(3),
		workload.RUSQNN(3),
		workload.DQT(3),
		workload.Reset(1),
	}
}

// ablationAccuracy measures the raw prediction-signal accuracy of one
// feature mode on one workload: the branch the predictor would name at its
// decision point (committed branch, or the posterior's argmax at readout
// end when it never commits) versus the ground truth. This is the paper's
// Figure-14 accuracy notion — history-only sits at the prior's hit rate
// (0.4–0.7 on balanced workloads), not at the never-wrong commit rate.
func (s *Suite) ablationAccuracy(wl *workloadT, mode predict.Mode, salt uint64) float64 {
	ch := s.channel(30)
	cfg := predict.Config{Theta0: 0.91, Theta1: 0.91, Mode: mode}
	p := predict.New(cfg, ch)
	rng := stats.NewRNG(s.Seed + salt)
	ok, total := 0, 0
	for shot := 0; shot < s.Shots; shot++ {
		for _, prior := range wl.SiteP1 {
			state := 0
			if rng.Bool(prior) {
				state = 1
			}
			pulse := ch.Cal.Synthesize(state, rng)
			truth := ch.Classifier.ClassifyFull(pulse)
			d := p.PredictWithHistory(pulse, prior)
			guess := d.Branch
			if !d.Committed {
				// Forced call from the final posterior (no free fallback to
				// the full-readout classification in this metric).
				guess = 0
				if mode == predict.ModeHistory {
					if prior >= 0.5 {
						guess = 1
					}
				} else if d.PFinal >= 0.5 {
					guess = 1
				}
			}
			if guess == truth {
				ok++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ok) / float64(total)
}

// workloadT aliases the workload type for the ablation helper.
type workloadT = workload.Workload

// Figure14 reproduces the ablation of the prediction features: feedback
// latency and prediction accuracy when using only historical data, only
// readout-pulse analysis, or the combined reconciled predictor.
func (s *Suite) Figure14() *Table {
	t := &Table{
		ID:    "Figure 14",
		Title: "Ablation: history-only vs readout-only vs combined",
		Header: []string{"benchmark",
			"history lat (µs)", "history acc",
			"readout lat (µs)", "readout acc",
			"combined lat (µs)", "combined acc"},
	}
	modes := []predict.Mode{predict.ModeHistory, predict.ModeTrajectory, predict.ModeCombined}
	wls := fig14Workloads()
	type cell struct{ lat, acc float64 }
	grid := make([][3]cell, len(wls))
	// One cell per (workload, mode): fresh engine, cell-salted seeds.
	s.forEachCell(len(wls)*len(modes), func(i int) {
		wi, mi := i/len(modes), i%len(modes)
		wl := wls[wi]
		e := s.arteryEngine(modes[mi], 0.91)
		res := e.Run(wl, s.Shots, stats.NewRNG(s.Seed+uint64(1400+10*wi+mi)))
		acc := s.ablationAccuracy(wl, modes[mi], uint64(1450+10*wi+mi))
		grid[wi][mi] = cell{lat: res.MeanLatencyNs, acc: acc}
	})
	sums := make([]float64, len(modes))
	for wi, wl := range wls {
		row := []string{wl.Name}
		perFeedback := float64(maxInt(1, wl.NumFeedback()))
		for mi := range modes {
			row = append(row, us(grid[wi][mi].lat/perFeedback), pct(grid[wi][mi].acc))
			sums[mi] += grid[wi][mi].lat / perFeedback
		}
		t.AddRow(row...)
	}
	n := float64(len(fig14Workloads()))
	t.Note("mean per-feedback latency: history %.2f µs, readout %.2f µs, combined %.2f µs (paper: readout-only is 1.47x slower than combined)",
		sums[0]/n/1000, sums[1]/n/1000, sums[2]/n/1000)
	return t
}
