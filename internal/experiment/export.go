package experiment

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Export formats for regenerated tables, used by cmd/artery-bench -format:
// downstream plotting scripts consume CSV or JSON rather than the aligned
// text rendering.

// WriteCSV emits the table as CSV: a header row, then the data rows; notes
// become trailing comment-style rows prefixed with "#".
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	meta := []string{fmt.Sprintf("# %s — %s", t.ID, t.Title)}
	if err := cw.Write(meta); err != nil {
		return fmt.Errorf("experiment: csv export: %w", err)
	}
	if err := cw.Write(t.Header); err != nil {
		return fmt.Errorf("experiment: csv export: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("experiment: csv export: %w", err)
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return fmt.Errorf("experiment: csv export: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// TableSchemaVersion is the current version of the JSON wire form.
// Version 1 (written by earlier releases without a "schema_version"
// field) carried only the rendered grid; version 2 adds the
// machine-readable per-stage latency breakdown ("stages").
const TableSchemaVersion = 2

// jsonTable is the JSON wire form of a Table.
type jsonTable struct {
	SchemaVersion int        `json:"schema_version,omitempty"`
	ID            string     `json:"id"`
	Title         string     `json:"title"`
	Header        []string   `json:"header"`
	Rows          [][]string `json:"rows"`
	Notes         []string   `json:"notes,omitempty"`
	Stages        []StageRow `json:"stages,omitempty"`
}

// WriteJSON emits the table as a JSON object (schema version 2).
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(jsonTable{
		SchemaVersion: TableSchemaVersion,
		ID:            t.ID, Title: t.Title, Header: t.Header, Rows: t.Rows,
		Notes: t.Notes, Stages: t.Stages,
	}); err != nil {
		return fmt.Errorf("experiment: json export: %w", err)
	}
	return nil
}

// ParseTableJSON reads a table back from WriteJSON output (for tooling
// that post-processes saved results). Version-1 documents — written
// before the schema_version field existed — decode as tables without a
// stage breakdown; versions newer than TableSchemaVersion are rejected.
func ParseTableJSON(data []byte) (*Table, error) {
	var jt jsonTable
	if err := json.Unmarshal(data, &jt); err != nil {
		return nil, fmt.Errorf("experiment: parse table json: %w", err)
	}
	if jt.SchemaVersion > TableSchemaVersion {
		return nil, fmt.Errorf("experiment: table json schema_version %d newer than supported %d",
			jt.SchemaVersion, TableSchemaVersion)
	}
	if jt.ID == "" || len(jt.Header) == 0 {
		return nil, fmt.Errorf("experiment: table json missing id or header")
	}
	return &Table{
		ID: jt.ID, Title: jt.Title, Header: jt.Header, Rows: jt.Rows,
		Notes: jt.Notes, Stages: jt.Stages,
	}, nil
}

// WriteAs dispatches on format: "text", "csv" or "json".
func (t *Table) WriteAs(w io.Writer, format string) error {
	switch strings.ToLower(format) {
	case "", "text":
		t.Fprint(w)
		return nil
	case "csv":
		return t.WriteCSV(w)
	case "json":
		return t.WriteJSON(w)
	default:
		return fmt.Errorf("experiment: unknown export format %q", format)
	}
}
