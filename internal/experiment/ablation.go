package experiment

import (
	"fmt"

	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/pulse"
	"artery/internal/qec"
	"artery/internal/readout"
	"artery/internal/stats"
	"artery/internal/workload"
)

// This file holds ablation studies for the repository's own design
// decisions (DESIGN.md), beyond the paper's figures. They are registered
// in ExtraRegistry and exposed through artery-bench and bench_test.go.

// ExtraRegistry maps ablation ids to generators.
var ExtraRegistry = map[string]Generator{
	"abl-table":   (*Suite).AblationTimeBuckets,
	"abl-route":   (*Suite).AblationInterconnect,
	"abl-codec":   (*Suite).AblationCodecOrder,
	"abl-smooth":  (*Suite).AblationSmoothing,
	"xtr-circqec": (*Suite).ExtraCircuitLevelQEC,
	"xtr-budget":  (*Suite).ExtraLatencyBudget,
}

// ExtraLatencyBudget decomposes ARTERY's committed feedback latency into
// its pipeline stages per workload — where the nanoseconds go when a
// prediction fires (decision, Bayesian pipeline + clock, interconnect
// transit, speculative staging, case-3 floor wait).
func (s *Suite) ExtraLatencyBudget() *Table {
	t := &Table{
		ID:    "Extra: latency budget",
		Title: "stage decomposition of committed correct feedbacks (mean ns)",
		Header: []string{"workload", "decision", "pipeline", "transit",
			"staging", "floor wait", "total"},
	}
	for wi, wl := range []*workloadT{
		workload.QECCycle(1),
		workload.QRW(5),
		workload.RCNOT(3),
		workload.EntangleSwap(2),
		workload.Reset(1),
	} {
		e := s.arteryEngine(predict.ModeCombined, 0.91)
		rng := stats.NewRNG(s.Seed + uint64(2500+wi))
		var dec, pipe, tr, st, fl, tot stats.RunningMean
		for shot := 0; shot < s.Shots; shot++ {
			sr := e.RunShot(wl, rng)
			for _, o := range sr.Outcomes {
				if !o.Committed || !o.Correct {
					continue
				}
				dec.Add(o.Breakdown.DecisionNs)
				pipe.Add(o.Breakdown.PipelineNs)
				tr.Add(o.Breakdown.TransitNs)
				st.Add(o.Breakdown.StagingNs)
				fl.Add(o.Breakdown.FloorWaitNs)
				tot.Add(o.LatencyNs)
			}
		}
		t.AddRow(wl.Name,
			fmt.Sprintf("%.0f", dec.Mean()), fmt.Sprintf("%.0f", pipe.Mean()),
			fmt.Sprintf("%.0f", tr.Mean()), fmt.Sprintf("%.0f", st.Mean()),
			fmt.Sprintf("%.0f", fl.Mean()), fmt.Sprintf("%.0f", tot.Mean()))
	}
	t.Note("decision time dominates balanced workloads; the case-3 floor dominates reset")
	return t
}

// predictorQuality measures committed accuracy and mean decision time of a
// combined predictor over a fresh balanced test set on the given channel.
func (s *Suite) predictorQuality(ch *readout.Channel, shots int, salt uint64) (acc, meanNs float64, commitRate float64) {
	p := predict.New(predict.Config{Theta0: 0.91, Theta1: 0.91, Mode: predict.ModeCombined}, ch)
	rng := stats.NewRNG(s.Seed + salt)
	committed, correct := 0, 0
	var t stats.RunningMean
	for i := 0; i < shots; i++ {
		pl := ch.Cal.Synthesize(i%2, rng)
		truth := ch.Classifier.ClassifyFull(pl)
		d := p.PredictWithHistory(pl, 0.5)
		t.Add(d.TimeNs)
		if d.Committed {
			committed++
			if d.Branch == truth {
				correct++
			}
		}
	}
	if committed > 0 {
		acc = float64(correct) / float64(committed)
	} else {
		acc = 1
	}
	return acc, t.Mean(), float64(committed) / float64(shots)
}

// AblationTimeBuckets compares the paper-literal single time-invariant
// state table against the time-bucketed table this implementation uses for
// cumulative trajectories: the single table reads late-window confidence
// into early windows and commits overconfident predictions.
func (s *Suite) AblationTimeBuckets() *Table {
	cal := readout.DefaultCalibration()
	shots := 25 * s.Shots
	t := &Table{
		ID:     "Ablation: state-table time buckets",
		Title:  "single (paper-literal) vs time-bucketed trajectory table",
		Header: []string{"table", "committed accuracy", "mean decision (µs)", "commit rate", "size (bytes)"},
	}
	for _, cfg := range []struct {
		name    string
		buckets int
	}{
		{"single bucket", 1},
		{"time-bucketed (16)", readout.MaxTimeBuckets},
	} {
		table := readout.NewStateTableOpts(readout.DefaultK, cfg.buckets, 5)
		ch := readout.NewChannelWithTable(cal, 30, table, stats.NewRNG(s.Seed+uint64(cfg.buckets)))
		acc, lat, commit := s.predictorQuality(ch, shots, uint64(2000+cfg.buckets))
		t.AddRow(cfg.name, pct(acc), us(lat), pct(commit), fmt.Sprint(table.SizeBytes()))
	}
	t.Note("the single table aggregates all windows into one bucket; with cumulative IQ trajectories it is overconfident early (winner's-curse commits)")
	return t
}

// AblationSmoothing compares table smoothing strengths: near-Laplace
// smoothing lets weakly-populated buckets fluctuate across the commit
// threshold.
func (s *Suite) AblationSmoothing() *Table {
	cal := readout.DefaultCalibration()
	shots := 25 * s.Shots
	t := &Table{
		ID:     "Ablation: state-table smoothing",
		Title:  "Beta pseudo-count mass per table bucket",
		Header: []string{"smoothing", "committed accuracy", "mean decision (µs)", "commit rate"},
	}
	for i, sm := range []float64{0.5, 1, 5, 20} {
		table := readout.NewStateTableOpts(readout.DefaultK, readout.MaxTimeBuckets, sm)
		ch := readout.NewChannelWithTable(cal, 30, table, stats.NewRNG(s.Seed+uint64(100+i)))
		acc, lat, commit := s.predictorQuality(ch, shots, uint64(2100+i))
		t.AddRow(fmt.Sprintf("%.1f", sm), pct(acc), us(lat), pct(commit))
	}
	t.Note("weak smoothing commits earlier but below the threshold's stated confidence; heavy smoothing delays commits")
	return t
}

// AblationInterconnect compares the paper's hierarchical backplane routing
// against a flat shared bus across system sizes.
func (s *Suite) AblationInterconnect() *Table {
	t := &Table{
		ID:     "Ablation: interconnect hierarchy",
		Title:  "hierarchical 3-level routing vs flat shared bus (mean trigger latency, ns)",
		Header: []string{"system", "hierarchical", "flat bus", "saving"},
	}
	for _, cfg := range []struct {
		name    string
		qubits  int
		perFPGA int
		perBP   int
	}{
		{"18 qubits (paper)", 18, 6, 2},
		{"72 qubits", 72, 6, 2},
		{"512 qubits", 512, 8, 4},
	} {
		topo := interconnect.NewTopology(cfg.qubits, cfg.perFPGA, cfg.perBP)
		var h, f stats.RunningMean
		rng := stats.NewRNG(s.Seed + uint64(cfg.qubits))
		for i := 0; i < 2000; i++ {
			a, b := rng.Intn(cfg.qubits), rng.Intn(cfg.qubits)
			h.Add(topo.Latency(a, b))
			f.Add(topo.FlatLatency(a, b))
		}
		t.AddRow(cfg.name, fmt.Sprintf("%.1f", h.Mean()), fmt.Sprintf("%.1f", f.Mean()),
			ratio(f.Mean()/h.Mean()))
	}
	t.Note("the hierarchy's advantage grows with system size: flat-bus crossings pay every backplane's crossbar")
	return t
}

// ExtraCircuitLevelQEC repeats the Figure-12b comparison with the
// gate-by-gate circuit-level memory simulation on the stabilizer
// substrate (RunCircuitMemory) instead of the phenomenological model —
// a robustness check that the latency-driven LER gap survives realistic
// syndrome-extraction noise.
func (s *Suite) ExtraCircuitLevelQEC() *Table {
	code := qec.NewCode(3)
	dec := qec.NewLUTDecoder(code)
	trials := 20 * s.Shots
	_, _, aCycle := s.qecCycleStats(true)
	_, _, qCycle := s.qecCycleStats(false)
	run := func(cycleNs, exposure float64, cycles int, salt uint64) float64 {
		return qec.RunCircuitMemory(qec.CircuitMemoryParams{
			Code: code, Dec: dec, Cycles: cycles, Trials: trials,
			P1Q: 0.0006, P2Q: 0.003, PMeas: 0.01,
			PIdleData: qec.PDataFromLatency(cycleNs, qecT1Ns, exposure, 0),
		}, stats.NewRNG(s.Seed+salt)).LogicalErrorRate()
	}
	t := &Table{
		ID:     "Extra: circuit-level QEC",
		Title:  "Figure-12b comparison under gate-by-gate circuit noise",
		Header: []string{"cycles", "QubiC LER", "ARTERY LER", "reduction"},
	}
	for _, c := range []int{5, 15, 25} {
		a := run(aCycle, qecExposureArtery, c, uint64(3000+c))
		q := run(qCycle, qecExposureQubiC, c, uint64(4000+c))
		red := "n/a"
		if a > 0 {
			red = ratio(q / a)
		}
		t.AddRow(fmt.Sprint(c), pct(q), pct(a), red)
	}
	t.Note("phenomenological counterpart: Figure 12b; gate noise p1q=0.06%%, p2q=0.3%%, meas 1%%")
	return t
}

// AblationCodecOrder validates the combined codec's stage order: the paper
// applies Huffman before run-length, and on compiled pulse streams that
// order wins — the Huffman stage maps the dominant zero samples to
// near-zero code bytes whose long runs the run-length stage then
// collapses. The reverse order leaves the (already dense) run-length
// records to a Huffman pass with far less structure to exploit.
func (s *Suite) AblationCodecOrder() *Table {
	t := &Table{
		ID:     "Ablation: combined codec stage order",
		Title:  "compression ratio of codec compositions on compiled pulse streams",
		Header: []string{"benchmark", "huffman only", "rle only", "huffman→rle (paper, ours)", "rle→huffman (reverse)"},
	}
	for _, wl := range table2Workloads() {
		streams := pulse.CompileCircuit(wl.Circuit)
		var raw []byte
		for q := 0; q < len(streams); q++ {
			raw = append(raw, streams[q].Bytes()...)
		}
		huff := pulse.Ratio(pulse.HuffmanCodec{}, raw)
		rle := pulse.Ratio(pulse.RLECodec{}, raw)
		paperOrder := pulse.Ratio(pulse.CombinedCodec{}, raw)
		reverse := float64(len(pulse.HuffmanCodec{}.Encode(pulse.RLECodec{}.Encode(raw)))) / float64(len(raw))
		t.AddRow(wl.Name,
			fmt.Sprintf("%.4f", huff), fmt.Sprintf("%.4f", rle),
			fmt.Sprintf("%.4f", paperOrder), fmt.Sprintf("%.4f", reverse))
	}
	t.Note("the paper's order compounds: Huffman's zero-heavy code bytes still form long runs")
	return t
}
