package experiment

import (
	"fmt"

	"artery/internal/controller"
	"artery/internal/core"
	"artery/internal/fault"
	"artery/internal/predict"
	"artery/internal/stats"
	"artery/internal/workload"
)

func init() {
	ExtraRegistry["xtr-fault"] = (*Suite).ExtraFaultTolerance
}

// faultSweepRates is the injected-fault sweep of the robustness study: 0
// anchors the fault-free headline numbers, the tail stresses the
// graceful-degradation policies well past any plausible hardware.
var faultSweepRates = []float64{0, 0.02, 0.05, 0.1, 0.2, 0.4}

// ExtraFaultTolerance is the robustness study: fidelity and feedback
// latency versus injected fault rate, ARTERY against the QubiC baseline.
// Both engines run the same physics streams per rate (paired seeds), with
// every fault channel scaled from one sweep knob (fault.Scaled). The
// expected shape: at rate 0 ARTERY keeps its headline speedup; as faults
// climb, retries/outages stretch both systems and the fallback tracker
// moves ARTERY onto its blocking path — latency degrades toward (and never
// meaningfully below-performs) the baseline floor instead of collapsing.
func (s *Suite) ExtraFaultTolerance() *Table {
	t := &Table{
		ID:    "Extra: fault tolerance",
		Title: "graceful degradation under injected faults (QRW-5, ARTERY vs QubiC)",
		Header: []string{"fault rate",
			"QubiC lat (µs)", "ARTERY lat (µs)", "speedup",
			"commit rate", "fallback rate",
			"QubiC fidelity", "ARTERY fidelity", "faults/shot"},
	}
	wl := workload.QRW(5)
	shots := 5 * s.Shots
	for i, rate := range faultSweepRates {
		row := s.faultCell(wl, shots, rate, uint64(4000+10*i))
		t.AddRow(fmt.Sprintf("%.2f", rate),
			us(row.qubic.MeanLatencyNs), us(row.artery.MeanLatencyNs),
			ratio(row.qubic.MeanLatencyNs/row.artery.MeanLatencyNs),
			pct(row.artery.CommitRate), pct(row.artery.FallbackRate),
			fmt.Sprintf("%.3f", row.qubic.MeanFidelity),
			fmt.Sprintf("%.3f", row.artery.MeanFidelity),
			fmt.Sprintf("%.1f", float64(row.artery.Faults.Total())/float64(shots)))
	}
	t.Note("fallback policy: trip at 35%% windowed bad-event rate, recover at 15%%; ARTERY degrades to its blocking path, never below the baseline floor")
	return t
}

// faultRow pairs one rate's two runs.
type faultRow struct {
	qubic, artery core.RunResult
}

// faultCell runs ARTERY and QubiC at one injected fault rate over paired
// physics streams (identical seeds), with state simulation on so fidelity
// reflects the latency-dependent decoherence of the degraded paths.
func (s *Suite) faultCell(wl *workload.Workload, shots int, rate float64, seedOff uint64) faultRow {
	var inj *fault.Injector
	if rate > 0 {
		inj = fault.NewInjector(fault.Scaled(rate))
	}
	qe := s.baselineEngine("QubiC", controller.QubiCOverheadNs)
	qe.SimulateState = true
	qe.Faults = inj
	ae := s.arteryEngine(predict.ModeCombined, 0.91)
	ae.SimulateState = true
	ae.Faults = inj
	return faultRow{
		qubic:  qe.Run(wl, shots, stats.NewRNG(s.Seed+seedOff)),
		artery: ae.Run(wl, shots, stats.NewRNG(s.Seed+seedOff)),
	}
}
