package experiment

import (
	"testing"

	"artery/internal/fault"
	"artery/internal/workload"
)

// TestFaultToleranceGracefulDegradation pins the acceptance shape of the
// robustness study: fault-free ARTERY keeps a clear speedup over QubiC, and
// under heavy injected faults it degrades toward the baseline floor — the
// fallback policy serves feedbacks on the blocking path instead of letting
// mispredictions and retries blow the latency past the baseline.
func TestFaultToleranceGracefulDegradation(t *testing.T) {
	s := NewSuite(7, 24)
	wl := workload.QRW(5)
	shots := 5 * s.Shots

	clean := s.faultCell(wl, shots, 0, 4000)
	if (clean.artery.Faults != fault.Counters{}) {
		t.Fatalf("rate-0 cell injected faults: %+v", clean.artery.Faults)
	}
	if ratio := clean.qubic.MeanLatencyNs / clean.artery.MeanLatencyNs; ratio < 2 {
		t.Fatalf("fault-free speedup %.2fx below 2x", ratio)
	}

	prevSpeedup := clean.qubic.MeanLatencyNs / clean.artery.MeanLatencyNs
	for i, rate := range []float64{0.1, 0.4} {
		row := s.faultCell(wl, shots, rate, uint64(4100+10*i))
		// Graceful floor: degraded ARTERY never falls meaningfully below the
		// baseline (its blocking path costs readout + 160 ns vs QubiC's
		// readout + 150 ns, plus the pre-trip misprediction transient — allow
		// a 12% band).
		if row.artery.MeanLatencyNs > 1.12*row.qubic.MeanLatencyNs {
			t.Errorf("rate %.2f: ARTERY latency %.0f ns fell below the baseline floor %.0f ns",
				rate, row.artery.MeanLatencyNs, row.qubic.MeanLatencyNs)
		}
		speedup := row.qubic.MeanLatencyNs / row.artery.MeanLatencyNs
		if speedup > prevSpeedup {
			t.Errorf("rate %.2f: speedup %.2fx not degrading (previous %.2fx)", rate, speedup, prevSpeedup)
		}
		prevSpeedup = speedup
		if row.artery.Faults.Total() == 0 {
			t.Errorf("rate %.2f: no faults injected", rate)
		}
	}

	// At the heaviest rate the fallback machinery must carry most feedbacks.
	heavy := s.faultCell(wl, shots, 0.4, 4120)
	if heavy.artery.FallbackRate < 0.5 {
		t.Errorf("rate 0.40: fallback rate %.2f, want most feedbacks on the blocking path",
			heavy.artery.FallbackRate)
	}
	if heavy.artery.CommitRate > 0.5 {
		t.Errorf("rate 0.40: commit rate %.2f did not collapse", heavy.artery.CommitRate)
	}
}
