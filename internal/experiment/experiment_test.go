package experiment

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// One small shared suite: channel calibration dominates setup cost, and
// the shape assertions hold at modest shot counts.
var suite = NewSuite(7, 24)

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(strings.TrimSuffix(cell, "%"), "x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", cell, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig4", "fig12a", "fig12b", "fig12c", "fig12d",
		"table1", "fig13", "fig14", "fig15a", "fig15b", "table2", "fig16", "fig17"}
	if len(Registry) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry), len(want))
	}
	for _, id := range want {
		if Registry[id] == nil {
			t.Fatalf("missing experiment %s", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatal("IDs() incomplete")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.Note("n=%d", 3)
	s := tab.String()
	for _, want := range []string{"X", "demo", "a", "1", "note: n=3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestFigure2Wall(t *testing.T) {
	tab := suite.Figure2()
	// The last row carries the 660 ns wall.
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "latency wall" || last[1] != "660" {
		t.Fatalf("wall row = %v", last)
	}
}

func TestFigure4DistributionsMatch(t *testing.T) {
	tab := suite.Figure4()
	p1 := parseF(t, tab.Cell(0, 2))
	p2 := parseF(t, tab.Cell(1, 2))
	if diff := p1 - p2; diff > 0.1 || diff < -0.1 {
		t.Fatalf("prior/posterior P(1) differ too much: %v vs %v", p1, p2)
	}
	if p1 < 0.4 || p1 > 0.75 {
		t.Fatalf("P(1) = %v outside the QRW coin regime", p1)
	}
}

func TestTable1Shape(t *testing.T) {
	tab := suite.Table1()
	if len(tab.Rows) != 5 {
		t.Fatalf("%d method rows", len(tab.Rows))
	}
	// Row order: QubiC, HERQULES, Salathe, Reuer, ARTERY.
	artery, qubic := tab.Rows[4], tab.Rows[0]
	if artery[0] != "ARTERY" || qubic[0] != "QubiC" {
		t.Fatalf("row order wrong: %v / %v", artery[0], qubic[0])
	}
	wins := 0
	for c := 1; c < len(qubic); c++ {
		a, q := parseF(t, artery[c]), parseF(t, qubic[c])
		if a < q {
			wins++
		}
	}
	// ARTERY must win every sweep cell except possibly reset (floored).
	if wins < len(qubic)-2 {
		t.Fatalf("ARTERY wins only %d of %d cells", wins, len(qubic)-1)
	}
	// Latency grows with iteration count within each family: QRW columns
	// are 1..4 (cols 1-4).
	q1, q25 := parseF(t, qubic[1]), parseF(t, qubic[4])
	if q25 <= q1 {
		t.Fatal("QubiC QRW latency not increasing with steps")
	}
	// The headline speedup note must report > 1.5x.
	note := tab.Notes[0]
	i := strings.LastIndex(note, "speedup ")
	sp := parseF(t, strings.TrimSpace(note[i+len("speedup "):]))
	if sp < 1.5 {
		t.Fatalf("headline speedup %vx, want > 1.5x (paper: 2.07x)", sp)
	}
}

func TestFigure12aShape(t *testing.T) {
	tab := suite.Figure12a()
	corrSpeed := parseF(t, tab.Cell(0, 3))
	resetSpeed := parseF(t, tab.Cell(1, 3))
	cycleSpeed := parseF(t, tab.Cell(2, 3))
	if corrSpeed < 2 {
		t.Fatalf("correction speedup %vx, want >= 2x (paper 4.8x)", corrSpeed)
	}
	if resetSpeed < 1.02 || resetSpeed > 1.3 {
		t.Fatalf("reset speedup %vx, want modest ~1.08x", resetSpeed)
	}
	if cycleSpeed < 1.01 || cycleSpeed > 1.3 {
		t.Fatalf("cycle speedup %vx, want modest ~1.06x", cycleSpeed)
	}
	if corrSpeed <= resetSpeed {
		t.Fatal("correction speedup should dominate reset speedup")
	}
}

func TestFigure12bArteryWins(t *testing.T) {
	tab := suite.Figure12b()
	// At the deepest cycle count both LERs are nonzero and ARTERY's lower.
	last := tab.Rows[len(tab.Rows)-1]
	q := parseF(t, last[1])
	a := parseF(t, last[2])
	if a >= q {
		t.Fatalf("ARTERY LER %v%% not below QubiC %v%% at cycle 30", a, q)
	}
	if q <= 0 {
		t.Fatal("QubiC LER zero at cycle 30 — noise model too weak")
	}
}

func TestFigure12bMonotoneCycles(t *testing.T) {
	tab := suite.Figure12b()
	first := parseF(t, tab.Rows[0][2])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][2])
	if last <= first {
		t.Fatalf("ARTERY LER not growing with cycles: %v -> %v", first, last)
	}
}

func TestFigure12cImprovement(t *testing.T) {
	tab := suite.Figure12c()
	last := tab.Rows[len(tab.Rows)-1]
	g := parseF(t, last[1])
	a := parseF(t, last[2])
	if a >= g {
		t.Fatalf("ARTERY LER %v%% not below Google reference %v%% at cycle 25", a, g)
	}
	if g < 40 || g > 50 {
		t.Fatalf("Google reference at cycle 25 = %v%%, want ~44.6%%", g)
	}
}

func TestFigure12dCrossover(t *testing.T) {
	tab := suite.Figure12d()
	// Rows d=3..15 then blank then the crossover row.
	saved3 := parseF(t, tab.Cell(0, 2))
	saved15 := parseF(t, tab.Cell(6, 2))
	if saved3 <= 0 {
		t.Fatalf("no benefit at d=3: %v", saved3)
	}
	if saved15 > 0 {
		t.Fatalf("benefit persists at d=15: %v", saved15)
	}
	crossRow := tab.Rows[len(tab.Rows)-1]
	if crossRow[1] != "13" {
		t.Fatalf("last beneficial distance %s, want 13", crossRow[1])
	}
}

func TestFigure13ArteryFidelityWins(t *testing.T) {
	tab := suite.Figure13()
	for _, row := range tab.Rows {
		qubic := parseF(t, row[1])
		reuer := parseF(t, row[4])
		artery := parseF(t, row[5])
		if artery < qubic-0.02 {
			t.Fatalf("%s: ARTERY fidelity %v well below QubiC %v", row[0], artery, qubic)
		}
		if artery < reuer-0.02 {
			t.Fatalf("%s: ARTERY fidelity %v below slowest baseline %v", row[0], artery, reuer)
		}
	}
}

func TestFigure14CombinedFastest(t *testing.T) {
	tab := suite.Figure14()
	// Averaged over benchmarks, combined latency <= readout-only latency.
	var histSum, readSum, combSum float64
	for _, row := range tab.Rows {
		histSum += parseF(t, row[1])
		readSum += parseF(t, row[3])
		combSum += parseF(t, row[5])
	}
	if combSum > readSum {
		t.Fatalf("combined (%v) slower than readout-only (%v)", combSum, readSum)
	}
	// History-only mean accuracy is lower than combined on balanced
	// workloads (paper: 0.4-0.7 for DQT/RUS).
	var histAcc, combAcc float64
	for _, row := range tab.Rows {
		histAcc += parseF(t, row[2])
		combAcc += parseF(t, row[6])
	}
	if combAcc <= histAcc {
		t.Fatal("combined accuracy not above history-only accuracy")
	}
}

func TestFigure15aAccuracyRises(t *testing.T) {
	tab := suite.Figure15a()
	first := parseF(t, tab.Rows[0][1])
	mid := parseF(t, tab.Rows[3][1])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][1])
	if !(first < mid && mid <= last+1) {
		t.Fatalf("accuracy not rising: %v %v %v", first, mid, last)
	}
	if last < 90 {
		t.Fatalf("late accuracy %v%%, want > 90%%", last)
	}
}

func TestFigure15bQECBestAccuracy(t *testing.T) {
	tab := suite.Figure15b()
	// QEC (row 0) has the highest mean accuracy and lowest latency among
	// correction-style benchmarks (row order: QEC, QRW, RCNOT, RUS, DQT, reset).
	qecAcc := parseF(t, tab.Cell(0, 2))
	qrwAcc := parseF(t, tab.Cell(1, 2))
	if qecAcc < qrwAcc-1 {
		t.Fatalf("QEC accuracy %v below QRW %v", qecAcc, qrwAcc)
	}
	for r := 0; r < len(tab.Rows); r++ {
		mn, mean, mx := parseF(t, tab.Cell(r, 1)), parseF(t, tab.Cell(r, 2)), parseF(t, tab.Cell(r, 3))
		if !(mn <= mean && mean <= mx) {
			t.Fatalf("row %d: min/mean/max out of order", r)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tab := suite.Table2()
	// Bandwidth rows: raw = 64, combined lowest.
	for r := 0; r < 3; r++ {
		raw := parseF(t, tab.Cell(r, 2))
		huff := parseF(t, tab.Cell(r, 3))
		rle := parseF(t, tab.Cell(r, 4))
		comb := parseF(t, tab.Cell(r, 5))
		if raw != 64 {
			t.Fatalf("raw bandwidth %v, want 64", raw)
		}
		if !(comb < rle && rle < huff && huff < raw) {
			t.Fatalf("bandwidth ordering violated in row %d: %v %v %v %v", r, raw, huff, rle, comb)
		}
	}
	// DAC rows: raw = 4, combined highest.
	for r := 3; r < 6; r++ {
		raw := parseF(t, tab.Cell(r, 2))
		comb := parseF(t, tab.Cell(r, 5))
		if raw != 4 {
			t.Fatalf("raw DACs %v, want 4", raw)
		}
		if comb < 10 {
			t.Fatalf("combined DACs %v, want >= 10 (paper: 19-25)", comb)
		}
	}
	// Latency rows: raw is "-", others in the 4-60 ns range.
	for r := 6; r < 9; r++ {
		if tab.Cell(r, 2) != "-" {
			t.Fatal("raw decode latency should be '-'")
		}
		for c := 3; c <= 5; c++ {
			v := parseF(t, tab.Cell(r, c))
			if v < 4 || v > 60 {
				t.Fatalf("decode latency %v ns out of range", v)
			}
		}
	}
}

func TestFigure16BestWindowNear30(t *testing.T) {
	tab := suite.Figure16()
	// Find the window with minimum latency; paper: 0.03 µs.
	bestRow, bestLat := -1, 0.0
	for r := range tab.Rows {
		lat := parseF(t, tab.Cell(r, 1))
		if bestRow < 0 || lat < bestLat {
			bestRow, bestLat = r, lat
		}
	}
	w := parseF(t, tab.Cell(bestRow, 0))
	if w > 0.06 {
		t.Fatalf("best window %v µs, want <= 0.05 (paper: 0.03)", w)
	}
	// The 0.1 µs window must be slower than the best.
	lastLat := parseF(t, tab.Cell(len(tab.Rows)-1, 1))
	if lastLat <= bestLat {
		t.Fatal("0.1 µs window not slower than best")
	}
}

func TestFigure17ThresholdTradeoff(t *testing.T) {
	tab := suite.Figure17()
	// Accuracy must rise with the threshold.
	accLo := parseF(t, tab.Cell(0, 2))
	accHi := parseF(t, tab.Cell(len(tab.Rows)-1, 2))
	if accHi < accLo {
		t.Fatalf("accuracy fell with threshold: %v -> %v", accLo, accHi)
	}
	// The chosen threshold is an interior optimum (not the loosest).
	note := tab.Notes[0]
	if !strings.Contains(note, "0.") {
		t.Fatalf("threshold note malformed: %s", note)
	}
}

func TestCalibrationSummary(t *testing.T) {
	tab := suite.ReadoutCalibrationSummary()
	fid := parseF(t, tab.Cell(0, 1))
	if fid < 97 {
		t.Fatalf("assignment fidelity %v%%, want ~99%%", fid)
	}
}

func TestAllExperimentsRender(t *testing.T) {
	for _, id := range IDs() {
		tab := Registry[id](suite)
		if tab == nil || len(tab.Rows) == 0 {
			t.Fatalf("%s produced an empty table", id)
		}
		if tab.String() == "" {
			t.Fatalf("%s renders empty", id)
		}
	}
}

func TestAblationTimeBucketsShowsOverconfidence(t *testing.T) {
	tab := suite.AblationTimeBuckets()
	singleAcc := parseF(t, tab.Cell(0, 1))
	bucketAcc := parseF(t, tab.Cell(1, 1))
	if bucketAcc <= singleAcc {
		t.Fatalf("time-bucketed accuracy %v not above single-table %v", bucketAcc, singleAcc)
	}
	// The single table commits earlier — that's exactly its failure mode.
	singleLat := parseF(t, tab.Cell(0, 2))
	bucketLat := parseF(t, tab.Cell(1, 2))
	if singleLat > bucketLat {
		t.Fatalf("single-table decisions (%v) later than bucketed (%v)", singleLat, bucketLat)
	}
}

func TestAblationSmoothingTradeoff(t *testing.T) {
	tab := suite.AblationSmoothing()
	// With the time-bucketed table every smoothing level stays calibrated
	// (the bucketing fixed the dominant bias); assert no level collapses
	// and that heavy smoothing delays commits relative to weak smoothing.
	for r := range tab.Rows {
		if acc := parseF(t, tab.Cell(r, 1)); acc < 85 {
			t.Fatalf("smoothing row %d accuracy %v%% collapsed", r, acc)
		}
	}
	weakLat := parseF(t, tab.Cell(0, 2))
	heavyLat := parseF(t, tab.Cell(3, 2))
	if heavyLat < weakLat {
		t.Fatalf("heavy smoothing commits earlier (%v) than weak (%v)", heavyLat, weakLat)
	}
}

func TestAblationInterconnectScales(t *testing.T) {
	tab := suite.AblationInterconnect()
	small := parseF(t, tab.Cell(0, 3))
	large := parseF(t, tab.Cell(2, 3))
	if large <= small {
		t.Fatalf("hierarchy saving did not grow with size: %vx -> %vx", small, large)
	}
}

func TestAblationCodecOrder(t *testing.T) {
	tab := suite.AblationCodecOrder()
	strictWins := 0
	for r := range tab.Rows {
		paperOrder := parseF(t, tab.Cell(r, 3))
		reverse := parseF(t, tab.Cell(r, 4))
		// The paper's order must never be materially worse...
		if paperOrder > reverse*1.05 {
			t.Fatalf("row %d: huffman→rle (%v) materially worse than rle→huffman (%v)", r, paperOrder, reverse)
		}
		if paperOrder < reverse {
			strictWins++
		}
		// ...and the combined codec must beat both individual stages.
		huff := parseF(t, tab.Cell(r, 1))
		rle := parseF(t, tab.Cell(r, 2))
		if paperOrder >= huff || paperOrder >= rle {
			t.Fatalf("row %d: combined (%v) not below individual stages (%v, %v)", r, paperOrder, huff, rle)
		}
	}
	if strictWins == 0 {
		t.Fatal("paper order never strictly better than the reverse")
	}
}

func TestExtraRegistryRenders(t *testing.T) {
	for id, gen := range ExtraRegistry {
		tab := gen(suite)
		if tab == nil || len(tab.Rows) == 0 {
			t.Fatalf("%s produced an empty table", id)
		}
	}
}

func TestExtraCircuitLevelQEC(t *testing.T) {
	tab := suite.ExtraCircuitLevelQEC()
	// At the deepest cycle count ARTERY's circuit-level LER is below QubiC's.
	last := tab.Rows[len(tab.Rows)-1]
	q := parseF(t, last[1])
	a := parseF(t, last[2])
	if a >= q {
		t.Fatalf("circuit-level ARTERY LER %v%% not below QubiC %v%%", a, q)
	}
}

func TestExtraLatencyBudget(t *testing.T) {
	tab := suite.ExtraLatencyBudget()
	if len(tab.Rows) != 5 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for r := range tab.Rows {
		total := parseF(t, tab.Cell(r, 6))
		sum := 0.0
		for c := 1; c <= 5; c++ {
			sum += parseF(t, tab.Cell(r, c))
		}
		if diff := sum - total; diff > 3 || diff < -3 { // rounding to whole ns
			t.Fatalf("row %d: stages sum %v != total %v", r, sum, total)
		}
	}
	// Reset (last row) is dominated by the floor wait.
	floor := parseF(t, tab.Cell(4, 5))
	if floor < 1000 {
		t.Fatalf("reset floor wait %v ns, want > 1 µs", floor)
	}
}

func TestTableCSVExport(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("1", "x,y") // comma must be quoted
	tab.Note("hello")
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"# T — demo", "a,b", `1,"x,y"`, "# hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestTableJSONRoundTrip(t *testing.T) {
	tab := suite.Figure2()
	var b strings.Builder
	if err := tab.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTableJSON([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != tab.ID || len(back.Rows) != len(tab.Rows) {
		t.Fatal("json round trip changed the table")
	}
	if _, err := ParseTableJSON([]byte("{}")); err == nil {
		t.Fatal("empty table json accepted")
	}
	if _, err := ParseTableJSON([]byte("not json")); err == nil {
		t.Fatal("garbage json accepted")
	}
}

// TestTableJSONSchemaVersions pins the wire-format compatibility rules:
// version-1 documents (no schema_version field, written by earlier
// releases) still decode, version-2 documents round-trip the stage
// breakdown, and future versions are rejected.
func TestTableJSONSchemaVersions(t *testing.T) {
	// Verbatim version-1 fixture as WriteJSON emitted it before the
	// schema_version field existed.
	v1 := []byte(`{
  "id": "Table 1",
  "title": "Evaluation of feedback latency (µs)",
  "header": ["method", "QRW=1"],
  "rows": [["QubiC", "5.38"], ["ARTERY", "0.92"]],
  "notes": ["legacy export"]
}`)
	tab, err := ParseTableJSON(v1)
	if err != nil {
		t.Fatalf("v1 document rejected: %v", err)
	}
	if tab.ID != "Table 1" || len(tab.Rows) != 2 || len(tab.Stages) != 0 {
		t.Fatalf("v1 decode wrong: %+v", tab)
	}

	// v2 round-trips the stage breakdown.
	src := &Table{ID: "X", Title: "stages", Header: []string{"a"}}
	src.AddRow("1")
	src.Stages = []StageRow{{Stage: "readout", Count: 10, TotalNs: 3000, MeanNs: 300}}
	var b strings.Builder
	if err := src.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"schema_version": 2`) {
		t.Fatalf("v2 export missing schema_version:\n%s", b.String())
	}
	back, err := ParseTableJSON([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Stages) != 1 || back.Stages[0] != src.Stages[0] {
		t.Fatalf("stage breakdown lost in round trip: %+v", back.Stages)
	}

	// Future versions are rejected, not silently misread.
	future := []byte(`{"schema_version": 3, "id": "X", "header": ["a"], "rows": []}`)
	if _, err := ParseTableJSON(future); err == nil {
		t.Fatal("future schema_version accepted")
	}
}

// TestExtraStageBreakdownPartition checks the xtr-stages table: ARTERY's
// stage totals must sum to its total feedback latency.
func TestExtraStageBreakdownPartition(t *testing.T) {
	tab := suite.ExtraStageBreakdown()
	if len(tab.Stages) == 0 {
		t.Fatal("no stage metadata attached")
	}
	var sum float64
	for _, sr := range tab.Stages {
		sum += sr.TotalNs
	}
	// The note records "<stage total> ns vs <shot total> ns ...".
	var stageTotal, shotTotal float64
	if _, err := fmt.Sscanf(tab.Notes[0], "ARTERY stage totals sum to %f ns vs %f ns", &stageTotal, &shotTotal); err != nil {
		t.Fatalf("note format: %q: %v", tab.Notes[0], err)
	}
	if diff := sum - shotTotal; diff > 1 || diff < -1 {
		t.Fatalf("stage totals %v do not partition shot latency %v", sum, shotTotal)
	}
}

func TestTableWriteAs(t *testing.T) {
	tab := &Table{ID: "T", Title: "demo", Header: []string{"a"}}
	tab.AddRow("1")
	for _, f := range []string{"", "text", "csv", "json"} {
		var b strings.Builder
		if err := tab.WriteAs(&b, f); err != nil {
			t.Fatalf("format %q: %v", f, err)
		}
		if b.Len() == 0 {
			t.Fatalf("format %q produced nothing", f)
		}
	}
	var b strings.Builder
	if err := tab.WriteAs(&b, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestExtraSPRT(t *testing.T) {
	tab := suite.ExtraSPRT()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for r := range tab.Rows {
		accT := parseF(t, tab.Cell(r, 1))
		accS := parseF(t, tab.Cell(r, 3))
		if accT < 80 || accS < 80 {
			t.Fatalf("row %d: accuracies collapsed: table %v sprt %v", r, accT, accS)
		}
		latT := parseF(t, tab.Cell(r, 2))
		latS := parseF(t, tab.Cell(r, 4))
		if latT >= 2.16 || latS >= 2.16 {
			t.Fatalf("row %d: no early decisions", r)
		}
	}
}

func TestExtraPlatforms(t *testing.T) {
	tab := suite.ExtraPlatforms()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for r := range tab.Rows {
		frac := parseF(t, tab.Cell(r, 3))
		if frac <= 0 || frac >= 100 {
			t.Fatalf("row %d: decision fraction %v%% implausible", r, frac)
		}
		if acc := parseF(t, tab.Cell(r, 4)); acc < 80 {
			t.Fatalf("row %d: accuracy %v%%", r, acc)
		}
	}
	// Absolute decision time grows with readout duration across platforms.
	sc := parseF(t, tab.Cell(0, 2))
	ion := parseF(t, tab.Cell(2, 2))
	if ion <= sc {
		t.Fatalf("trapped-ion decisions (%v µs) not slower than superconducting (%v µs)", ion, sc)
	}
}

func TestExtraHistoryDepth(t *testing.T) {
	tab := suite.ExtraHistoryDepth()
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Table size grows with k; accuracy never collapses.
	prevSize := 0.0
	for r := range tab.Rows {
		if acc := parseF(t, tab.Cell(r, 1)); acc < 82 {
			t.Fatalf("k row %d accuracy %v%%", r, acc)
		}
		size := parseF(t, tab.Cell(r, 4))
		if size <= prevSize {
			t.Fatalf("table size not growing with k: %v after %v", size, prevSize)
		}
		prevSize = size
	}
}

func TestExtraDecoders(t *testing.T) {
	tab := suite.ExtraDecoders()
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	lut := parseF(t, tab.Cell(0, 1))
	for r := 1; r < 3; r++ {
		other := parseF(t, tab.Cell(r, 1))
		// The exact LUT is never materially worse than the heuristics.
		if lut > other+3 {
			t.Fatalf("LUT LER %v%% above %s %v%%", lut, tab.Cell(r, 0), other)
		}
	}
}
