package experiment

import (
	"fmt"

	"artery/internal/controller"
	"artery/internal/core"
	"artery/internal/stats"
	"artery/internal/workload"
)

// Figure2 reproduces the latency-wall analysis: the readout-vs-lifetime
// design points (left panel) and the feedback hardware breakdown with the
// 660 ns wall (right panel).
func (s *Suite) Figure2() *Table {
	t := &Table{
		ID:     "Figure 2",
		Title:  "Latency breakdown of quantum feedback (the 660 ns wall)",
		Header: []string{"design point", "readout (ns)", "T1 (µs)"},
	}
	for _, p := range controller.Figure2DesignPoints() {
		t.AddRow(p.Name, fmt.Sprintf("%.0f", p.ReadoutNs), fmt.Sprintf("%.1f", p.T1Us))
	}
	u := controller.DefaultUnits()
	t.AddRow("", "", "")
	t.AddRow("unit", "latency (ns)", "")
	t.AddRow("ADC processing", fmt.Sprintf("%.0f", u.ADC), "")
	t.AddRow("state classification", fmt.Sprintf("%.0f", u.Classify), "")
	t.AddRow("pulse preparation", fmt.Sprintf("%.0f", u.Prep), "")
	t.AddRow("DAC processing", fmt.Sprintf("%.0f", u.DAC), "")
	t.AddRow("hardware floor", fmt.Sprintf("%.0f", u.Processing()), "")
	t.AddRow("latency wall", fmt.Sprintf("%.0f", controller.LatencyWall(u)), "")
	t.Note("wall = %.0f ns minimum useful readout + %.0f ns processing floor",
		controller.MinUsefulReadoutNs, u.Processing())
	return t
}

// Figure4 reproduces the motivational example: the readout distributions of
// prior and posterior shot batches of a QRW feedback agree, and trajectory
// states repeat with similar frequencies across the batches.
func (s *Suite) Figure4() *Table {
	ch := s.channel(30)
	rng := stats.NewRNG(s.Seed + 4)
	const batch = 500
	const pOne = 0.58 // the QRW coin bias of the paper's example

	sample := func() (frac1 float64, trajFreq map[string]int) {
		trajFreq = map[string]int{}
		ones := 0
		for i := 0; i < batch; i++ {
			state := 0
			if rng.Bool(pOne) {
				state = 1
			}
			p := ch.Cal.Synthesize(state, rng)
			if ch.Classifier.ClassifyFull(p) == 1 {
				ones++
			}
			// Trajectory state over 400 ns windows (the figure's marks).
			bits := ""
			for _, b := range ch.Classifier.WindowBits(p, 0) {
				bits += fmt.Sprint(b)
			}
			key := bits[:4]
			trajFreq[key]++
		}
		return float64(ones) / batch, trajFreq
	}

	prior1, trajPrior := sample()
	post1, trajPost := sample()

	t := &Table{
		ID:     "Figure 4",
		Title:  "Motivational example: prior vs posterior shot statistics (QRW)",
		Header: []string{"batch", "P(read 0)", "P(read 1)"},
	}
	t.AddRow("prior shots", fmt.Sprintf("%.2f", 1-prior1), fmt.Sprintf("%.2f", prior1))
	t.AddRow("posterior shots", fmt.Sprintf("%.2f", 1-post1), fmt.Sprintf("%.2f", post1))
	t.AddRow("", "", "")
	t.AddRow("trajectory state", "prior freq", "posterior freq")
	for _, key := range []string{"0000", "1111", "0001", "1110"} {
		t.AddRow(key, fmt.Sprint(trajPrior[key]), fmt.Sprint(trajPost[key]))
	}
	t.Note("trajectory states are the first four 30 ns window classifications; matching frequencies across batches justify history-based prediction")
	return t
}

// table1Benchmarks enumerates the Table-1 grid: benchmark family and the
// parameter sweep.
type table1Bench struct {
	label string
	make  func(param int, rng *stats.RNG) *workload.Workload
	sweep []int
}

func table1Benchmarks() []table1Bench {
	return []table1Bench{
		{"QRW (#step)", func(p int, _ *stats.RNG) *workload.Workload { return workload.QRW(p) }, []int{1, 5, 15, 25}},
		{"RCNOT (#depth)", func(p int, _ *stats.RNG) *workload.Workload { return workload.RCNOT(p) }, []int{1, 2, 3, 4}},
		{"RUS-QNN (#cycle)", func(p int, _ *stats.RNG) *workload.Workload { return workload.RUSQNN(p) }, []int{1, 2, 3, 4}},
		{"DQT (#distance)", func(p int, _ *stats.RNG) *workload.Workload { return workload.DQT(p) }, []int{1, 2, 3, 4}},
		{"reset", func(int, *stats.RNG) *workload.Workload { return workload.Reset(1) }, []int{1}},
		{"Random (#gate)", func(p int, rng *stats.RNG) *workload.Workload { return workload.Random(p, rng) }, []int{25, 50, 75, 100}},
	}
}

// Table1 reproduces the feedback-latency evaluation: average feedback
// latency (µs) of the five methods over the benchmark sweeps.
func (s *Suite) Table1() *Table {
	t := &Table{
		ID:    "Table 1",
		Title: "Evaluation of feedback latency (µs)",
	}
	t.Header = []string{"method"}
	benches := table1Benchmarks()
	type cellKey struct{ b, p int }
	var cells []cellKey
	for bi, b := range benches {
		for pi, p := range b.sweep {
			t.Header = append(t.Header, fmt.Sprintf("%s=%d", shortLabel(b.label), p))
			cells = append(cells, cellKey{bi, pi})
		}
	}

	// Workloads are derived serially (wlRng draws must happen in cell
	// order); the measured cells then fan out over the suite's workers,
	// each on fresh engines so no controller state is shared between
	// concurrent cells.
	wlRng := stats.NewRNG(s.Seed + 100)
	wls := make([]*workload.Workload, len(cells))
	for i, ck := range cells {
		b := benches[ck.b]
		wls[i] = b.make(b.sweep[ck.p], wlRng.Split())
	}
	const nEngines = 5
	cellLat := make([][nEngines]float64, len(cells))
	s.forEachCell(len(cells), func(i int) {
		ck := cells[i]
		for ei, e := range s.engines() {
			res := e.Run(wls[i], s.Shots, stats.NewRNG(s.Seed+uint64(ck.b*100+ck.p*10+ei)))
			cellLat[i][ei] = res.MeanLatencyNs
		}
	})

	sums := make([]float64, nEngines)
	rows := make([][]string, nEngines)
	for ei, e := range s.engines() {
		rows[ei] = []string{e.Ctrl.Name()}
	}
	for i := range cells {
		perFb := float64(maxInt(1, wls[i].NumFeedback()))
		for ei := 0; ei < nEngines; ei++ {
			rows[ei] = append(rows[ei], us(cellLat[i][ei]))
			sums[ei] += cellLat[i][ei] / perFb
		}
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	// Headline: mean per-feedback latency and the ARTERY speedup vs QubiC,
	// with a bootstrap CI over the grid cells.
	n := float64(len(cells))
	perCell := make([]float64, 0, len(cells))
	for c := 1; c < len(rows[4]); c++ {
		a := mustParse(rows[4][c])
		q := mustParse(rows[0][c])
		if a > 0 {
			perCell = append(perCell, q/a)
		}
	}
	ciLo, ciHi := stats.BootstrapCI(perCell, 0.95, 400, stats.NewRNG(s.Seed+999))
	t.Note("mean per-feedback latency: QubiC %.2f µs, ARTERY %.2f µs -> speedup %s",
		sums[0]/n/1000, sums[4]/n/1000, ratio(sums[0]/sums[4]))
	t.Note("per-cell speedup 95%% bootstrap CI: [%.2fx, %.2fx]", ciLo, ciHi)
	return t
}

// mustParse parses a formatted table cell back to a float (cells are
// produced by this package, so a failure is a bug).
func mustParse(cell string) float64 {
	var v float64
	if _, err := fmt.Sscanf(cell, "%f", &v); err != nil {
		panic(fmt.Sprintf("experiment: unparseable cell %q", cell))
	}
	return v
}

func shortLabel(l string) string {
	switch {
	case len(l) == 0:
		return l
	default:
		for i, r := range l {
			if r == ' ' {
				return l[:i]
			}
		}
		return l
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runCell is a helper shared by fidelity/ablation experiments: run one
// engine over one workload with a derived seed.
func (s *Suite) runCell(e *core.Engine, wl *workload.Workload, salt uint64) core.RunResult {
	return e.Run(wl, s.Shots, stats.NewRNG(s.Seed^salt))
}
