package experiment

import (
	"reflect"
	"runtime"
	"testing"
)

// TestSuiteDeterministicAcrossWorkerCounts asserts the suite-level
// determinism contract: every parallelized experiment renders the
// identical table at Workers=1, Workers=4 and Workers=GOMAXPROCS (each
// cell seeds itself from Seed plus a cell salt and runs on fresh engines,
// so scheduling cannot leak into the results).
func TestSuiteDeterministicAcrossWorkerCounts(t *testing.T) {
	// The parallelized generators (the serial ones are covered by
	// TestAllExperimentsRender and are trivially worker-independent).
	ids := []string{"table1", "fig13", "fig14", "fig15b", "fig16", "fig17"}
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, id := range ids {
		gen := Registry[id]
		if gen == nil {
			t.Fatalf("experiment %s missing from registry", id)
		}
		var ref *Table
		for wi, workers := range workerCounts {
			// Fresh suites: channel calibration is deterministic per
			// (seed, window), so rebuilding it per run keeps runs
			// independent without sharing any state.
			s := NewSuite(7, 8)
			s.Workers = workers
			tab := gen(s)
			if wi == 0 {
				ref = tab
				continue
			}
			if !reflect.DeepEqual(ref, tab) {
				t.Fatalf("%s: Workers=%d table diverged from Workers=%d:\n%s\nvs\n%s",
					id, workers, workerCounts[0], tab, ref)
			}
		}
	}
}

func TestForEachCellCoversAllCells(t *testing.T) {
	s := NewSuite(1, 8)
	s.Workers = 8
	hit := make([]int, 100)
	s.forEachCell(100, func(i int) { hit[i]++ })
	for i, n := range hit {
		if n != 1 {
			t.Fatalf("cell %d ran %d times, want exactly once", i, n)
		}
	}
	s.forEachCell(0, func(int) { t.Fatal("zero cells must not run a body") })
}
