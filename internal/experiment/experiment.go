// Package experiment regenerates every table and figure of the paper's
// evaluation (§6). Each experiment is a method on Suite returning a Table
// with the same rows/series the paper reports; the registry maps the
// paper's table/figure identifiers to generators for the cmd tools and the
// root benchmark harness.
//
// Absolute numbers come from the simulated substrate, so they are not
// expected to equal the paper's testbed measurements; the shapes — who
// wins, by roughly what factor, where crossovers fall — are asserted by
// the package tests and recorded against the paper in EXPERIMENTS.md.
package experiment

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"artery/internal/controller"
	"artery/internal/core"
	"artery/internal/interconnect"
	"artery/internal/predict"
	"artery/internal/readout"
	"artery/internal/stats"
)

// Table is one regenerated result: a titled grid of formatted cells.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Stages optionally carries the machine-readable per-stage latency
	// breakdown behind the table (exported as the "stages" field of the
	// schema-version-2 JSON form; empty for tables without one).
	Stages []StageRow
}

// StageRow is one row of a table's supplementary per-stage latency
// breakdown: a feedback pipeline stage, its occurrence count over the
// run's feedback outcomes, and the nanoseconds it consumed.
type StageRow struct {
	Stage   string  `json:"stage"`
	Count   int     `json:"count"`
	TotalNs float64 `json:"total_ns"`
	MeanNs  float64 `json:"mean_ns"`
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad+2))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Cell returns the cell at (row, col); it panics when out of range
// (experiments are fixed-shape, so a miss is a bug).
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// Suite holds the calibrated resources shared by the experiments.
//
// Concurrency: experiments fan independent table cells over Workers
// goroutines. Every cell derives its RNG from Seed plus a cell-specific
// salt and runs on fresh engines, so tables are identical at every
// Workers setting; the channel cache is the only shared mutable state and
// is mutex-guarded (a channel's calibration seed depends only on its
// window length, so even first-use races calibrate identically).
type Suite struct {
	Seed  uint64
	Shots int // shots per measured cell (latency experiments)
	// Workers bounds the suite's cell-level parallelism: 0 (the default)
	// uses GOMAXPROCS workers, 1 forces serial generation.
	Workers int

	topo *interconnect.Topology

	mu       sync.Mutex
	channels map[float64]*readout.Channel // keyed by window length (ns)
}

// NewSuite calibrates a suite. shots <= 0 selects a fast default suitable
// for tests; cmd tools pass larger values for smoother numbers.
func NewSuite(seed uint64, shots int) *Suite {
	if seed == 0 {
		seed = 1
	}
	if shots <= 0 {
		shots = 40
	}
	return &Suite{
		Seed:     seed,
		Shots:    shots,
		topo:     interconnect.PaperTopology(),
		channels: map[float64]*readout.Channel{},
	}
}

// channel returns (calibrating on first use) the readout channel for a
// demodulation window length. Safe for concurrent use by cell workers.
func (s *Suite) channel(windowNs float64) *readout.Channel {
	s.mu.Lock()
	if ch, ok := s.channels[windowNs]; ok {
		s.mu.Unlock()
		return ch
	}
	s.mu.Unlock()
	// Calibrate outside the lock: it is the expensive step, and the seed
	// depends only on windowNs, so concurrent calibrations of the same
	// window produce identical channels (first store wins).
	ch := readout.NewChannel(readout.DefaultCalibration(), windowNs, readout.DefaultK, stats.NewRNG(s.Seed+uint64(windowNs*1000)))
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.channels[windowNs]; ok {
		return prev
	}
	s.channels[windowNs] = ch
	return ch
}

// workerCount resolves the effective cell-level worker count.
func (s *Suite) workerCount() int {
	if s.Workers > 0 {
		return s.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// forEachCell runs body(i) for every cell index in [0, n) on the suite's
// worker pool. Cells must be independent: each derives its own seeds and
// writes only its own output slots, so the table never depends on
// scheduling. body must not call forEachCell reentrantly.
func (s *Suite) forEachCell(n int, body func(int)) {
	workers := s.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				body(i)
			}
		}()
	}
	wg.Wait()
}

// arteryEngine builds a fresh ARTERY engine with the given predictor mode
// and thresholds over the suite's default 30 ns channel.
func (s *Suite) arteryEngine(mode predict.Mode, theta float64) *core.Engine {
	return s.arteryEngineOn(s.channel(30), mode, theta)
}

func (s *Suite) arteryEngineOn(ch *readout.Channel, mode predict.Mode, theta float64) *core.Engine {
	cfg := predict.Config{Theta0: theta, Theta1: theta, Mode: mode}
	ctrl := controller.NewArtery(controller.DefaultUnits(), s.topo, predict.New(cfg, ch))
	e := core.NewEngine(ctrl, ch, nil)
	e.SimulateState = false
	return e
}

// baselineEngine builds a named baseline engine.
func (s *Suite) baselineEngine(name string, overhead float64) *core.Engine {
	e := core.NewEngine(controller.NewBaseline(name, overhead, s.topo), s.channel(30), nil)
	e.SimulateState = false
	return e
}

// engines returns the five evaluation engines in presentation order.
func (s *Suite) engines() []*core.Engine {
	return []*core.Engine{
		s.baselineEngine("QubiC", controller.QubiCOverheadNs),
		s.baselineEngine("HERQULES", controller.HERQULESOverheadNs),
		s.baselineEngine("Salathe et al.", controller.SalatheOverheadNs),
		s.baselineEngine("Reuer et al.", controller.ReuerOverheadNs),
		s.arteryEngine(predict.ModeCombined, 0.91),
	}
}

// Generator produces one experiment's table.
type Generator func(*Suite) *Table

// Registry maps experiment IDs to generators.
var Registry = map[string]Generator{
	"fig2":   (*Suite).Figure2,
	"fig4":   (*Suite).Figure4,
	"fig12a": (*Suite).Figure12a,
	"fig12b": (*Suite).Figure12b,
	"fig12c": (*Suite).Figure12c,
	"fig12d": (*Suite).Figure12d,
	"table1": (*Suite).Table1,
	"fig13":  (*Suite).Figure13,
	"fig14":  (*Suite).Figure14,
	"fig15a": (*Suite).Figure15a,
	"fig15b": (*Suite).Figure15b,
	"table2": (*Suite).Table2,
	"fig16":  (*Suite).Figure16,
	"fig17":  (*Suite).Figure17,
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

func us(ns float64) string   { return fmt.Sprintf("%.2f", ns/1000) }
func pct(x float64) string   { return fmt.Sprintf("%.1f%%", 100*x) }
func ratio(x float64) string { return fmt.Sprintf("%.2fx", x) }
