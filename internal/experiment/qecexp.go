package experiment

import (
	"fmt"
	"math"

	"artery/internal/predict"
	"artery/internal/qec"
	"artery/internal/stats"
	"artery/internal/workload"
)

// QEC cycle composition constants (§6.2): the real-time decoder is a
// lookup table whose output, plus trigger synchronization, costs decodeNs;
// commitNs is the path from decoded syndrome to a playing correction pulse
// (conventional processing for the baselines, trigger-confirm for ARTERY).
const (
	qecDecodeNs       = 130.0
	qecCommitNs       = 176.0
	qecCommitQubiCNs  = 160.0
	qecExposureArtery = 1.0 // data qubits pre-corrected promptly
	qecExposureQubiC  = 1.9 // corrections lag a full processing chain
	qecGateErrorFloor = 0.004
	qecT1Ns           = 125_000.0
)

// qecCycleStats runs the QEC-cycle workload on one engine and extracts the
// Figure 12 (a) quantities: mean data-correction latency, mean syndrome
// reset latency, and the composed end-to-end cycle latency.
func (s *Suite) qecCycleStats(artery bool) (corrNs, resetNs, cycleNs float64) {
	var e = s.baselineEngine("QubiC", 150)
	if artery {
		e = s.arteryEngine(predict.ModeCombined, 0.91)
	}
	wl := workload.QECCycle(1)
	rng := stats.NewRNG(s.Seed + 12)
	var corr, reset stats.RunningMean
	var corrMax stats.RunningMean
	for i := 0; i < s.Shots; i++ {
		sr := e.RunShot(wl, rng)
		shotCorrMax := 0.0
		for k, o := range sr.Outcomes {
			if k%2 == 0 { // correction sites (even), reset sites (odd)
				corr.Add(o.LatencyNs)
				if o.LatencyNs > shotCorrMax {
					shotCorrMax = o.LatencyNs
				}
			} else {
				reset.Add(o.LatencyNs)
			}
		}
		corrMax.Add(shotCorrMax)
	}
	commit := qecCommitQubiCNs
	if artery {
		commit = qecCommitNs
	}
	// The cycle completes when the syndromes are reset and the decoded
	// correction has committed.
	cycle := reset.Mean() + qecDecodeNs + commit
	// Data correction waits on the slowest syndrome prediction plus the
	// decoder.
	return corrMax.Mean() + qecDecodeNs, reset.Mean(), cycle
}

// Figure12a reproduces the QEC feedback-latency panel: data-qubit
// correction, syndrome active reset and end-to-end cycle latency for
// ARTERY vs QubiC.
func (s *Suite) Figure12a() *Table {
	aCorr, aReset, aCycle := s.qecCycleStats(true)
	qCorr, qReset, qCycle := s.qecCycleStats(false)
	t := &Table{
		ID:     "Figure 12a",
		Title:  "QEC feedback latency (d=3 surface code)",
		Header: []string{"quantity", "QubiC (µs)", "ARTERY (µs)", "speedup"},
	}
	t.AddRow("data-qubit correction", us(qCorr), us(aCorr), ratio(qCorr/aCorr))
	t.AddRow("syndrome active reset", us(qReset), us(aReset), ratio(qReset/aReset))
	t.AddRow("end-to-end cycle", us(qCycle), us(aCycle), ratio(qCycle/aCycle))
	t.Note("paper: 4.80x correction, 1.08x reset (2.16->2.01 µs), 1.06x cycle (2.45->2.31 µs)")
	return t
}

// qecLERSeries simulates the d=3 logical error rate over cycle counts for
// a controller described by its cycle latency and correction exposure.
func (s *Suite) qecLERSeries(cycles []int, cycleNs, exposure float64, trials int) []float64 {
	code := qec.NewCode(3)
	dec := qec.NewLUTDecoder(code)
	pData := qec.PDataFromLatency(cycleNs, qecT1Ns, exposure, qecGateErrorFloor)
	out := make([]float64, len(cycles))
	for i, c := range cycles {
		res := qec.RunMemory(qec.MemoryParams{
			Code: code, Dec: dec, Cycles: c, Trials: trials,
			PData: pData, PMeas: 0.01,
		}, stats.NewRNG(s.Seed+uint64(1000+c)))
		out[i] = res.LogicalErrorRate()
	}
	return out
}

var fig12bCycles = []int{1, 5, 10, 15, 20, 25, 30}

// Figure12b reproduces the logical-error-rate comparison between ARTERY
// and QubiC cycle latencies on the noisy d=3 surface code.
func (s *Suite) Figure12b() *Table {
	trials := 40 * s.Shots
	_, _, aCycle := s.qecCycleStats(true)
	_, _, qCycle := s.qecCycleStats(false)
	a := s.qecLERSeries(fig12bCycles, aCycle, qecExposureArtery, trials)
	q := s.qecLERSeries(fig12bCycles, qCycle, qecExposureQubiC, trials)
	t := &Table{
		ID:     "Figure 12b",
		Title:  "Logical error rate vs QEC cycles (d=3, 500-repetition style)",
		Header: []string{"cycles", "QubiC LER", "ARTERY LER", "reduction"},
	}
	var sumRatio, n float64
	for i, c := range fig12bCycles {
		red := math.NaN()
		if a[i] > 0 {
			red = q[i] / a[i]
			sumRatio += red
			n++
		}
		t.AddRow(fmt.Sprint(c), pct(q[i]), pct(a[i]), ratio(red))
	}
	if n > 0 {
		t.Note("mean LER reduction %s (paper: 1.86x)", ratio(sumRatio/n))
	}
	return t
}

// googleLERReference returns the published Sycamore d=3 logical error
// series digitized from its endpoint: 44.6 %% at cycle 25 under the
// per-cycle logical error model LER(c) = 0.5(1-(1-2ε)^c).
func googleLERReference(cycles []int) []float64 {
	const eps = 0.0425 // solves 0.446 = 0.5(1-(1-2ε)^25)
	out := make([]float64, len(cycles))
	for i, c := range cycles {
		out[i] = 0.5 * (1 - math.Pow(1-2*eps, float64(c)))
	}
	return out
}

// Figure12c compares ARTERY's simulated d=3 logical error rate against the
// published Google Sycamore demonstration reference.
func (s *Suite) Figure12c() *Table {
	cycles := []int{1, 5, 10, 15, 20, 25}
	trials := 40 * s.Shots
	_, _, aCycle := s.qecCycleStats(true)
	a := s.qecLERSeries(cycles, aCycle, qecExposureArtery, trials)
	g := googleLERReference(cycles)
	t := &Table{
		ID:     "Figure 12c",
		Title:  "ARTERY simulation vs Google real-world QEC demonstration (d=3)",
		Header: []string{"cycles", "Google LER (ref)", "ARTERY LER", "improvement"},
	}
	for i, c := range cycles {
		imp := math.NaN()
		if a[i] > 0 {
			imp = g[i] / a[i]
		}
		t.AddRow(fmt.Sprint(c), pct(g[i]), pct(a[i]), ratio(imp))
	}
	last := len(cycles) - 1
	t.Note("paper: 22.1%% vs Google 44.6%% at cycle 25 (2.02x); measured at cycle 25: %s vs %s",
		pct(a[last]), pct(g[last]))
	return t
}

// Figure12d evaluates the latency-benefit estimation model across code
// distances: expected syndrome feedback time saved per cycle.
func (s *Suite) Figure12d() *Table {
	m := qec.DefaultBenefitModel()
	t := &Table{
		ID:     "Figure 12d",
		Title:  "Syndrome feedback time saved per cycle vs code distance",
		Header: []string{"distance", "P(all syndromes correct)", "saved per cycle (µs)"},
	}
	for d := 3; d <= 15; d += 2 {
		t.AddRow(fmt.Sprint(d), pct(m.POk(d)), fmt.Sprintf("%.3f", m.SavedPerCycleNs(d)/1000))
	}
	t.AddRow("", "", "")
	t.AddRow("last beneficial distance", fmt.Sprint(m.LastBeneficialDistance()), "(paper: 13)")
	t.Note("model: saved(d) = P_ok·Δsave − (1−P_ok)·recover(d); per-syndrome accuracy %.3f", m.SyndromeAccuracy)
	return t
}
