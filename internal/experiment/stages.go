package experiment

import (
	"fmt"

	"artery/internal/core"
	"artery/internal/trace"
	"artery/internal/workload"
)

func init() {
	ExtraRegistry["xtr-stages"] = (*Suite).ExtraStageBreakdown
}

// ExtraStageBreakdown decomposes every controller's feedback latency into
// pipeline stages (readout wait, decision, pipeline fill, classification,
// transit, staging, floor wait, recovery) over a QRW-5 run — the table
// behind RunResult.Stages. Stage sums partition each controller's total
// feedback latency exactly, so the table doubles as a consistency check
// on the tracing layer; the ARTERY column's machine-readable rows are
// attached as the table's Stages metadata (schema-version-2 JSON).
func (s *Suite) ExtraStageBreakdown() *Table {
	wl := workload.QRW(5)
	engines := s.engines()
	results := make([]core.RunResult, len(engines))
	s.forEachCell(len(engines), func(i int) {
		results[i] = s.runCell(engines[i], wl, uint64(7700+10*i))
	})

	t := &Table{
		ID:     "xtr-stages",
		Title:  fmt.Sprintf("Per-stage feedback latency breakdown (%s, mean ns per occurrence)", wl.Name),
		Header: []string{"stage"},
	}
	byName := make([]map[string]core.StageLatency, len(results))
	for i, res := range results {
		t.Header = append(t.Header, res.Controller)
		byName[i] = map[string]core.StageLatency{}
		for _, sl := range res.Stages {
			byName[i][sl.Stage] = sl
		}
	}
	// Rows follow the trace package's pipeline order; a stage appears when
	// any controller exercised it.
	for st := trace.Stage(0); st < trace.NumStages; st++ {
		if !st.Additive() {
			continue
		}
		name := st.String()
		row := []string{name}
		seen := false
		for i := range results {
			if sl, ok := byName[i][name]; ok {
				row = append(row, fmt.Sprintf("%.1f", sl.MeanNs))
				seen = true
			} else {
				row = append(row, "-")
			}
		}
		if seen {
			t.AddRow(row...)
		}
	}

	// Attach the ARTERY breakdown (engines() puts ARTERY last) as the
	// machine-readable metadata and record the partition check.
	a := results[len(results)-1]
	for _, sl := range a.Stages {
		t.Stages = append(t.Stages, StageRow(sl))
	}
	var stageTotal float64
	for _, sl := range a.Stages {
		stageTotal += sl.TotalNs
	}
	shotTotal := a.MeanLatencyNs * float64(a.Shots)
	t.Note("ARTERY stage totals sum to %.0f ns vs %.0f ns total feedback latency (payload included)",
		stageTotal, shotTotal)
	return t
}
