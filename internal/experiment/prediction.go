package experiment

import (
	"fmt"

	"artery/internal/predict"
	"artery/internal/readout"
	"artery/internal/stats"
	"artery/internal/workload"
)

// Figure15a reproduces the accuracy-vs-readout-time curve for the
// depth-10 RCNOT circuit: how accurate a forced decision would be after
// observing only the first t of the readout pulse.
func (s *Suite) Figure15a() *Table {
	ch := s.channel(30)
	// Never-committing predictor: exposes the full posterior trace.
	cfg := predict.Config{Theta0: 0.9999999, Theta1: 0.9999999, Mode: predict.ModeCombined}
	p := predict.New(cfg, ch)

	wl := workload.RCNOT(10)
	prior := wl.SiteP1[0]
	rng := stats.NewRNG(s.Seed + 150)
	checkpoints := []float64{250, 500, 750, 1000, 1250, 1500, 1750, 2000}
	correct := make([]int, len(checkpoints))
	total := 0
	shots := 8 * s.Shots
	for i := 0; i < shots; i++ {
		state := 0
		if rng.Bool(prior) {
			state = 1
		}
		pulse := ch.Cal.Synthesize(state, rng)
		truth := ch.Classifier.ClassifyFull(pulse)
		d := p.PredictWithHistory(pulse, prior)
		total++
		for ci, tNs := range checkpoints {
			// Latest posterior at or before the checkpoint.
			post := prior
			for _, pt := range d.Trace {
				if pt.TimeNs <= tNs {
					post = pt.PPredict
				}
			}
			guess := 0
			if post >= 0.5 {
				guess = 1
			}
			if guess == truth {
				correct[ci]++
			}
		}
	}
	t := &Table{
		ID:     "Figure 15a",
		Title:  "Prediction accuracy vs readout time (RCNOT depth=10)",
		Header: []string{"readout time (µs)", "accuracy"},
	}
	for ci, tNs := range checkpoints {
		t.AddRow(fmt.Sprintf("%.2f", tNs/1000), pct(float64(correct[ci])/float64(total)))
	}
	t.Note("paper: 82.7%% at 0.75 µs, 90.6%% at 1 µs, >95%% in the latter half")
	return t
}

// fig15bBenchmarks enumerates the distribution benchmarks.
func fig15bBenchmarks() []*workload.Workload {
	return []*workload.Workload{
		workload.QECCycle(1),
		workload.QRW(5),
		workload.RCNOT(3),
		workload.RUSQNN(3),
		workload.DQT(3),
		workload.Reset(1),
	}
}

// Figure15b reproduces the per-benchmark prediction-accuracy distribution:
// 14 sampled batches per benchmark, reporting the accuracy spread and the
// mean per-feedback decision latency.
func (s *Suite) Figure15b() *Table {
	t := &Table{
		ID:     "Figure 15b",
		Title:  "Prediction accuracy distribution (14 samples per benchmark)",
		Header: []string{"benchmark", "min acc", "mean acc", "max acc", "mean latency (µs)"},
	}
	const samples = 14
	wls := fig15bBenchmarks()
	type cell struct{ acc, lat float64 }
	grid := make([][samples]cell, len(wls))
	// One cell per (benchmark, sample batch): fresh engine per batch.
	s.forEachCell(len(wls)*samples, func(i int) {
		wi, k := i/samples, i%samples
		e := s.arteryEngine(predict.ModeCombined, 0.91)
		res := e.Run(wls[wi], maxInt(s.Shots/4, 8), stats.NewRNG(s.Seed+uint64(1500+100*wi+k)))
		grid[wi][k] = cell{acc: res.Accuracy, lat: res.MeanDecisionNs}
	})
	for wi, wl := range wls {
		var accs []float64
		var lat stats.RunningMean
		for k := 0; k < samples; k++ {
			accs = append(accs, grid[wi][k].acc)
			lat.Add(grid[wi][k].lat)
		}
		t.AddRow(wl.Name, pct(stats.Min(accs)), pct(stats.Mean(accs)), pct(stats.Max(accs)), us(lat.Mean()))
	}
	t.Note("paper: QEC ~97.0%% at 0.382 µs; QRW/RCNOT 84.6–93.5%% at 1.227/0.934 µs")
	return t
}

// Figure16 reproduces the demodulation window-length sweep: prediction
// accuracy and mean feedback latency across benchmarks for window lengths
// from 10 ns to 100 ns.
func (s *Suite) Figure16() *Table {
	windows := []float64{10, 20, 30, 50, 100}
	benches := []*workload.Workload{
		workload.QECCycle(1),
		workload.QRW(5),
		workload.RCNOT(3),
		workload.DQT(3),
	}
	t := &Table{
		ID:     "Figure 16",
		Title:  "Window length in segmented demodulation",
		Header: []string{"window (µs)", "mean latency (µs)", "mean accuracy"},
	}
	type cell struct{ lat, acc float64 }
	grid := make([][4]cell, len(windows))
	// One cell per (window, benchmark): each calibrates/reuses its
	// window's channel via the mutex-guarded cache and runs a fresh
	// engine, so the whole sweep fans out at once.
	s.forEachCell(len(windows)*len(benches), func(i int) {
		win, wi := i/len(benches), i%len(benches)
		w, wl := windows[win], benches[wi]
		e := s.arteryEngineOn(s.channel(w), predict.ModeCombined, 0.91)
		res := e.Run(wl, maxInt(s.Shots/2, 10), stats.NewRNG(s.Seed+uint64(1600+100*int(w)+wi)))
		grid[win][wi] = cell{
			lat: res.MeanLatencyNs / float64(maxInt(1, wl.NumFeedback())),
			acc: res.Accuracy,
		}
	})
	best, bestLat := 0.0, 0.0
	for win, w := range windows {
		var lat, acc stats.RunningMean
		for wi := range benches {
			lat.Add(grid[win][wi].lat)
			acc.Add(grid[win][wi].acc)
		}
		t.AddRow(fmt.Sprintf("%.2f", w/1000), us(lat.Mean()), pct(acc.Mean()))
		if best == 0 || lat.Mean() < bestLat {
			best, bestLat = w, lat.Mean()
		}
	}
	t.Note("best window %.2f µs (paper: 0.03 µs; 0.1 µs inflates latency ~2.1x)", best/1000)
	return t
}

// Figure17 reproduces the threshold sweep for RCNOT: feedback latency and
// accuracy across tolerance thresholds, selecting the latency-minimizing
// threshold on training pulses (the paper settles on 0.91).
func (s *Suite) Figure17() *Table {
	thetas := []float64{0.55, 0.65, 0.75, 0.85, 0.91, 0.95, 0.99}
	wl := workload.RCNOT(3)
	t := &Table{
		ID:     "Figure 17",
		Title:  "Probability threshold for pre-execution (RCNOT)",
		Header: []string{"threshold", "mean latency (µs)", "accuracy"},
	}
	type cell struct{ perFb, acc float64 }
	grid := make([]cell, len(thetas))
	// One cell per threshold, each on a fresh engine.
	s.forEachCell(len(thetas), func(ti int) {
		e := s.arteryEngine(predict.ModeCombined, thetas[ti])
		res := e.Run(wl, s.Shots, stats.NewRNG(s.Seed+uint64(1700+ti)))
		grid[ti] = cell{perFb: res.MeanLatencyNs / float64(wl.NumFeedback()), acc: res.Accuracy}
	})
	bestTheta, bestLat := 0.0, 0.0
	for ti, th := range thetas {
		t.AddRow(fmt.Sprintf("%.2f", th), us(grid[ti].perFb), pct(grid[ti].acc))
		if bestTheta == 0 || grid[ti].perFb < bestLat {
			bestTheta, bestLat = th, grid[ti].perFb
		}
	}
	t.Note("latency-minimizing threshold %.2f (paper: 0.91)", bestTheta)
	return t
}

// ReadoutCalibrationSummary is an extra diagnostic (not a paper figure):
// it reports the calibrated channel's assignment fidelity, matching the
// §6.1 device calibration of 99.0 %.
func (s *Suite) ReadoutCalibrationSummary() *Table {
	ch := s.channel(30)
	rng := stats.NewRNG(s.Seed + 999)
	var pulses []*readout.Pulse
	for i := 0; i < 600; i++ {
		pulses = append(pulses, ch.Cal.Synthesize(i%2, rng))
	}
	t := &Table{
		ID:     "Calibration",
		Title:  "Readout channel calibration summary",
		Header: []string{"quantity", "value"},
	}
	t.AddRow("assignment fidelity", pct(ch.Accuracy(pulses)))
	t.AddRow("state-table size (bytes)", fmt.Sprint(ch.Table.SizeBytes()))
	return t
}
