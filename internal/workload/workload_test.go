package workload

import (
	"testing"

	"artery/internal/circuit"
	"artery/internal/stats"
)

func TestAllWorkloadsValidate(t *testing.T) {
	rng := stats.NewRNG(1)
	wls := []*Workload{
		QRW(1), QRW(25),
		RCNOT(1), RCNOT(6),
		DQT(1), DQT(6),
		RUSQNN(1), RUSQNN(6),
		Reset(1), Reset(25),
		Random(25, rng), Random(150, rng),
		QECCycle(1), QECCycle(5),
	}
	for _, wl := range wls {
		if err := wl.Validate(); err != nil {
			t.Errorf("%s: %v", wl.Name, err)
		}
	}
}

func TestFeedbackCounts(t *testing.T) {
	cases := []struct {
		wl   *Workload
		want int
	}{
		{QRW(5), 5},
		{RCNOT(3), 3},
		{DQT(4), 4},
		{RUSQNN(2), 2},
		{Reset(7), 7},
		{QECCycle(2), 32}, // 8 syndromes × (readout + reset) × 2 cycles
	}
	for _, c := range cases {
		if got := c.wl.NumFeedback(); got != c.want {
			t.Errorf("%s: %d feedback sites, want %d", c.wl.Name, got, c.want)
		}
	}
}

func TestRandomIncludesPayload(t *testing.T) {
	rng := stats.NewRNG(2)
	wl := Random(50, rng)
	if wl.GatePayloadNs <= 0 {
		t.Fatal("random workload has no gate payload")
	}
	if wl.NumFeedback() != 1 {
		t.Fatalf("random workload has %d feedback sites", wl.NumFeedback())
	}
	// ~50 gates at 0-90 ns each.
	if wl.GatePayloadNs < 500 || wl.GatePayloadNs > 10000 {
		t.Fatalf("payload %v ns implausible for 50 gates", wl.GatePayloadNs)
	}
}

func TestQRWCaseClassification(t *testing.T) {
	wl := QRW(3)
	for _, a := range circuit.AnalyzeAll(wl.Circuit) {
		if a.Case != circuit.Case1Independent {
			t.Fatalf("QRW site classified %v, want case1", a.Case)
		}
	}
}

func TestResetCaseClassification(t *testing.T) {
	wl := Reset(3)
	for _, a := range circuit.AnalyzeAll(wl.Circuit) {
		if a.Case != circuit.Case3ReadQubit {
			t.Fatalf("reset site classified %v, want case3", a.Case)
		}
	}
	if len(wl.InitExciteP) != 3 {
		t.Fatal("reset workload missing thermal excitation probabilities")
	}
}

func TestQECPriorsSkewed(t *testing.T) {
	wl := QECCycle(1)
	for i, p := range wl.SiteP1 {
		if p >= 0.01 {
			t.Fatalf("QEC prior %d = %v, want < 1%% (§6.3)", i, p)
		}
	}
}

func TestQRWPriorsNearUniform(t *testing.T) {
	wl := QRW(10)
	for i, p := range wl.SiteP1 {
		if p < 0.35 || p > 0.65 {
			t.Fatalf("QRW prior %d = %v, want near-uniform", i, p)
		}
	}
}

func TestValidateCatchesMismatch(t *testing.T) {
	wl := QRW(2)
	wl.SiteP1 = wl.SiteP1[:1]
	if wl.Validate() == nil {
		t.Fatal("prior/site mismatch accepted")
	}
	wl2 := QRW(1)
	wl2.SiteP1[0] = 0
	if wl2.Validate() == nil {
		t.Fatal("degenerate prior accepted")
	}
}

func TestGeneratorPanics(t *testing.T) {
	rng := stats.NewRNG(3)
	for i, f := range []func(){
		func() { QRW(0) },
		func() { RCNOT(0) },
		func() { DQT(0) },
		func() { RUSQNN(0) },
		func() { Reset(0) },
		func() { Random(1, rng) },
		func() { QECCycle(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("generator %d accepted invalid size", i)
				}
			}()
			f()
		}()
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	a := Random(40, stats.NewRNG(9))
	b := Random(40, stats.NewRNG(9))
	if a.GatePayloadNs != b.GatePayloadNs || len(a.Circuit.Ins) != len(b.Circuit.Ins) {
		t.Fatal("random workload not deterministic for a fixed seed")
	}
}

func TestDQTScalesQubits(t *testing.T) {
	wl := DQT(6)
	if wl.Circuit.NumQubits != 8 {
		t.Fatalf("DQT-6 uses %d qubits, want 8", wl.Circuit.NumQubits)
	}
}

func TestEntangleSwapIsCase2(t *testing.T) {
	wl := EntangleSwap(3)
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, a := range circuit.AnalyzeAll(wl.Circuit) {
		if a.Case != circuit.Case2Ancilla {
			t.Fatalf("eswap site classified %v, want case2", a.Case)
		}
		if !a.NeedsAncilla {
			t.Fatal("case2 site must need an ancilla")
		}
	}
}

func TestMSIIsCase1(t *testing.T) {
	wl := MSI(3)
	if err := wl.Validate(); err != nil {
		t.Fatal(err)
	}
	if wl.NumFeedback() != 3 {
		t.Fatalf("MSI-3 has %d feedback sites", wl.NumFeedback())
	}
	for _, a := range circuit.AnalyzeAll(wl.Circuit) {
		if a.Case != circuit.Case1Independent {
			t.Fatalf("MSI site classified %v, want case1", a.Case)
		}
	}
	// The recovery program inverts the S correction with Sdg.
	if a := circuit.AnalyzeAll(wl.Circuit)[0]; a.RecoveryOnOne[0].Gate.Kind != circuit.Sdg {
		t.Fatalf("MSI recovery gate %v, want sdg", a.RecoveryOnOne[0].Gate.Kind)
	}
}
