package workload

import (
	"strings"
	"testing"
)

// TestByNameMatchesConstructors checks every registered name dispatches
// to the same constructor the direct API exposes.
func TestByNameMatchesConstructors(t *testing.T) {
	cases := []struct {
		name  string
		param int
		want  *Workload
	}{
		{"qrw", 3, QRW(3)},
		{"rcnot", 2, RCNOT(2)},
		{"dqt", 2, DQT(2)},
		{"rusqnn", 4, RUSQNN(4)},
		{"reset", 5, Reset(5)},
		{"qec", 1, QECCycle(1)},
		{"eswap", 3, EntangleSwap(3)},
		{"msi", 2, MSI(2)},
		{"surface", 3, SurfaceMemory(3)},
	}
	for _, c := range cases {
		got, err := ByName(c.name, c.param)
		if err != nil {
			t.Fatalf("ByName(%q, %d): %v", c.name, c.param, err)
		}
		if got.Name != c.want.Name {
			t.Errorf("ByName(%q, %d).Name = %q, want %q", c.name, c.param, got.Name, c.want.Name)
		}
		if g, w := got.NumFeedback(), c.want.NumFeedback(); g != w {
			t.Errorf("ByName(%q, %d): %d feedback sites, want %d", c.name, c.param, g, w)
		}
		if g, w := got.Circuit.NumQubits, c.want.Circuit.NumQubits; g != w {
			t.Errorf("ByName(%q, %d): %d qubits, want %d", c.name, c.param, g, w)
		}
	}
}

// TestNamesCoverRegistry checks the published name list and the
// dispatcher agree.
func TestNamesCoverRegistry(t *testing.T) {
	names := Names()
	if len(names) != 9 {
		t.Fatalf("Names() = %v, want 9 entries", names)
	}
	for _, name := range names {
		param := 2
		if name == "surface" {
			param = 3 // the surface code needs an odd distance >= 3
		}
		if _, err := ByName(name, param); err != nil {
			t.Errorf("listed name %q does not dispatch: %v", name, err)
		}
	}
}

// TestByNameErrors checks the error paths surface as errors, not the
// constructors' panics.
func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nope", 3); err == nil || !strings.Contains(err.Error(), "unknown workload") {
		t.Errorf("unknown name: err = %v, want unknown-workload error", err)
	}
	if _, err := ByName("qrw", 0); err == nil || !strings.Contains(err.Error(), ">= 1") {
		t.Errorf("bad param: err = %v, want range error", err)
	}
	if _, err := ByName("surface", 4); err == nil || !strings.Contains(err.Error(), "odd") {
		t.Errorf("even distance: err = %v, want odd-distance error", err)
	}
	if _, err := ByName("surface", 27); err == nil || !strings.Contains(err.Error(), "maximum") {
		t.Errorf("huge distance: err = %v, want maximum error", err)
	}
}
