package workload

import (
	"fmt"
	"sort"
)

// registry is the single ordered table of named workload constructors:
// every workload a wire request, CLI flag or experiment id can name by a
// short string lives here, so the name list and the dispatch logic cannot
// drift apart. The Random benchmark is deliberately absent — it takes its
// own RNG and is not addressable by (name, param) alone.
var registry = []struct {
	name string
	make func(param int) *Workload
	// check validates the size parameter beyond the default >= 1 rule,
	// so ByName returns an error instead of the constructor's panic.
	check func(param int) error
}{
	{name: "qrw", make: QRW},
	{name: "rcnot", make: RCNOT},
	{name: "dqt", make: DQT},
	{name: "rusqnn", make: RUSQNN},
	{name: "reset", make: Reset},
	{name: "qec", make: QECCycle},
	{name: "eswap", make: EntangleSwap},
	{name: "msi", make: MSI},
	{name: "surface", make: SurfaceMemory, check: checkSurfaceDistance},
}

// checkSurfaceDistance mirrors SurfaceMemory's parameter contract: an
// odd code distance, capped so a mistyped request cannot ask a server
// for a million-qubit register.
func checkSurfaceDistance(d int) error {
	if d < 3 || d%2 == 0 {
		return fmt.Errorf("workload surface: distance must be odd and >= 3, got %d", d)
	}
	if d > maxSurfaceDistance {
		return fmt.Errorf("workload surface: distance %d exceeds the supported maximum %d", d, maxSurfaceDistance)
	}
	return nil
}

// Names returns the registered workload names in registry (presentation)
// order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// ByName builds the named workload with the given size parameter
// (steps/depth/distance/cycles/qubits, per constructor). It returns an
// error — rather than the constructors' panic — for an unknown name or an
// out-of-range parameter, so servers and CLIs can surface bad requests
// gracefully.
func ByName(name string, param int) (*Workload, error) {
	for _, e := range registry {
		if e.name != name {
			continue
		}
		if param < 1 {
			return nil, fmt.Errorf("workload %s: size parameter must be >= 1, got %d", name, param)
		}
		if e.check != nil {
			if err := e.check(param); err != nil {
				return nil, err
			}
		}
		return e.make(param), nil
	}
	known := Names()
	sort.Strings(known)
	return nil, fmt.Errorf("unknown workload %q (known: %v)", name, known)
}
