// Package workload generates the benchmark circuits of the paper's
// evaluation (§6.1): quantum random walk (QRW), remote CNOT construction
// (RCNOT), repeat-until-success QNN (RUS-QNN), deterministic quantum
// teleportation (DQT), active qubit reset, random feedback circuits, and
// the d=3 surface-code QEC cycle.
//
// Each workload couples a feedback circuit with the per-site branch priors
// (the probability of reading 1) that drive readout-pulse synthesis. The
// priors reproduce the paper's observation that feedback latency tracks
// the skew of the historical distribution: QEC syndromes read 1 far below
// 1 % of the time, while QRW coins are nearly uniform.
package workload

import (
	"fmt"
	"math"

	"artery/internal/circuit"
	"artery/internal/qec"
	"artery/internal/stats"
)

// Workload is one benchmark instance.
type Workload struct {
	Name string
	// Circuit is the feedback program.
	Circuit *circuit.Circuit
	// SiteP1 is the branch-1 prior of each feedback site, in
	// Circuit.FeedbackSites() order.
	SiteP1 []float64
	// GatePayloadNs is non-feedback gate time included in the latency
	// metric (only the Random benchmark reports it, matching Table 1).
	GatePayloadNs float64
	// InitExciteP, when non-nil, gives a per-qubit probability of starting
	// in |1⟩ (thermal excitation — what active reset exists to clean up).
	InitExciteP []float64
}

// Validate checks the prior list matches the feedback sites.
func (w *Workload) Validate() error {
	if got, want := len(w.SiteP1), len(w.Circuit.FeedbackSites()); got != want {
		return fmt.Errorf("workload %s: %d priors for %d feedback sites", w.Name, got, want)
	}
	for i, p := range w.SiteP1 {
		if p <= 0 || p >= 1 {
			return fmt.Errorf("workload %s: prior %d = %v out of (0,1)", w.Name, i, p)
		}
	}
	return nil
}

// NumFeedback returns the number of feedback sites.
func (w *Workload) NumFeedback() int { return len(w.Circuit.FeedbackSites()) }

// QRW builds a quantum-random-walk circuit (Shenvi et al.) on two qubits:
// each step tosses the coin (H), reads it, and conditionally shifts the
// walker — the near-uniform priors that make QRW the predictor's hardest
// benchmark.
func QRW(steps int) *Workload {
	if steps < 1 {
		panic("workload: QRW needs >= 1 step")
	}
	const coin, walker = 0, 1
	c := circuit.New(2)
	var priors []float64
	c.AddGate(circuit.NewGate1(circuit.H, walker))
	for s := 0; s < steps; s++ {
		c.AddGate(circuit.NewGate1(circuit.H, coin))
		c.AddFeedback(&circuit.Feedback{
			Qubit: coin,
			OnOne: circuit.Gates(
				circuit.NewRot(circuit.RX, walker, math.Pi/2),
			),
			OnZero: circuit.Gates(
				circuit.NewRot(circuit.RX, walker, -math.Pi/2),
			),
		})
		// Slight step-dependent bias: interference drifts the coin away
		// from exactly 50/50, as in the paper's Figure 4 ((0.42, 0.58)...).
		priors = append(priors, 0.5+0.08*math.Sin(float64(s+1)))
	}
	return &Workload{Name: fmt.Sprintf("QRW-%d", steps), Circuit: c, SiteP1: priors}
}

// RCNOT builds the remote-CNOT construction of Bäumer et al.: a CNOT
// between qubit 0 and qubit depth+1 mediated by a chain of mid-circuit
// measurements with feed-forward X/Z corrections on the far end (case-1
// pre-execution).
func RCNOT(depth int) *Workload {
	if depth < 1 {
		panic("workload: RCNOT needs depth >= 1")
	}
	n := depth + 2
	c := circuit.New(n)
	target := n - 1
	c.AddGate(circuit.NewGate1(circuit.H, 0))
	var priors []float64
	for k := 1; k <= depth; k++ {
		c.AddGate(circuit.NewGate1(circuit.H, k))
		c.AddGate(circuit.NewGate2(circuit.CZ, k-1, k))
		c.AddFeedback(&circuit.Feedback{
			Qubit: k,
			OnOne: circuit.Gates(
				circuit.NewGate1(circuit.Z, 0),
				circuit.NewGate1(circuit.X, target),
			),
			OnZero: nil,
		})
		// Measurement of a Bell half is biased by residual ZZ interaction
		// calibration: moderately skewed priors (the paper reports faster
		// commits than QRW).
		priors = append(priors, 0.30)
	}
	c.AddGate(circuit.NewGate2(circuit.CZ, 0, target))
	return &Workload{Name: fmt.Sprintf("RCNOT-%d", depth), Circuit: c, SiteP1: priors}
}

// DQT builds deterministic quantum teleportation (Steffen et al.) across
// the given distance: each hop Bell-measures and feeds forward X and Z
// corrections to the next qubit.
func DQT(distance int) *Workload {
	if distance < 1 {
		panic("workload: DQT needs distance >= 1")
	}
	n := distance + 2
	c := circuit.New(n)
	// Prepare the payload on qubit 0.
	c.AddGate(circuit.NewRot(circuit.RY, 0, 1.1))
	var priors []float64
	for hop := 0; hop < distance; hop++ {
		src, mid, dst := hop, hop+1, hop+2
		if dst >= n {
			dst = n - 1
		}
		// Entangle mid and dst, Bell-measure src & mid, correct dst.
		c.AddGate(circuit.NewGate1(circuit.H, mid))
		c.AddGate(circuit.NewGate2(circuit.CNOT, mid, dst))
		c.AddGate(circuit.NewGate2(circuit.CNOT, src, mid))
		c.AddGate(circuit.NewGate1(circuit.H, src))
		c.AddFeedback(&circuit.Feedback{
			Qubit:  src,
			OnOne:  circuit.Gates(circuit.NewGate1(circuit.Z, dst)),
			OnZero: nil,
		})
		priors = append(priors, 0.28)
	}
	return &Workload{Name: fmt.Sprintf("DQT-%d", distance), Circuit: c, SiteP1: priors}
}

// RUSQNN builds the repeat-until-success QNN block of Moreira et al.: each
// cycle applies the trial unitary, reads the ancilla, and on failure (1)
// applies the recovery rotation to the data qubit (case-1 branch on the
// data qubit).
func RUSQNN(cycles int) *Workload {
	if cycles < 1 {
		panic("workload: RUS-QNN needs >= 1 cycle")
	}
	const anc, data = 0, 1
	c := circuit.New(2)
	// The data qubit carries a coherent superposition (the QNN activation),
	// which is what feedback latency decoheres.
	c.AddGate(circuit.NewGate1(circuit.H, data))
	var priors []float64
	for k := 0; k < cycles; k++ {
		c.AddGate(circuit.NewRot(circuit.RY, anc, math.Pi/4))
		c.AddGate(circuit.NewGate2(circuit.CZ, anc, data))
		c.AddGate(circuit.NewRot(circuit.RY, anc, -math.Pi/4))
		c.AddFeedback(&circuit.Feedback{
			Qubit: anc,
			// Failure branch: undo the kicked-back rotation.
			OnOne:  circuit.Gates(circuit.NewRot(circuit.RX, data, math.Pi/4)),
			OnZero: nil,
		})
		// RUS success probability is moderately high: P(read 1) ~ 0.35.
		priors = append(priors, 0.35)
	}
	return &Workload{Name: fmt.Sprintf("RUS-QNN-%d", cycles), Circuit: c, SiteP1: priors}
}

// MSI builds the magic-state-injection pattern the paper cites for
// case-1 pre-execution (§3: "applying correction gates on the data qubit
// in feedback-based quantum error correction such as magic state
// injection"): each injection consumes a resource qubit prepared in a
// T-state, entangles it with the data qubit, measures the resource, and
// conditionally applies the S correction to the data qubit.
func MSI(injections int) *Workload {
	if injections < 1 {
		panic("workload: MSI needs >= 1 injection")
	}
	n := injections + 1
	c := circuit.New(n)
	const data = 0
	c.AddGate(circuit.NewGate1(circuit.H, data))
	var priors []float64
	for k := 1; k <= injections; k++ {
		res := k
		// Resource preparation: |T⟩ = T·H|0⟩.
		c.AddGate(circuit.NewGate1(circuit.H, res))
		c.AddGate(circuit.NewGate1(circuit.T, res))
		c.AddGate(circuit.NewGate2(circuit.CNOT, data, res))
		c.AddFeedback(&circuit.Feedback{
			Qubit:  res,
			OnOne:  circuit.Gates(circuit.NewGate1(circuit.S, data)),
			OnZero: nil,
		})
		// T-state injection measures 1 half the time.
		priors = append(priors, 0.5)
	}
	return &Workload{Name: fmt.Sprintf("MSI-%d", injections), Circuit: c, SiteP1: priors}
}

// EntangleSwap builds a case-2 benchmark: each stage reads a qubit and,
// when it reads 1, entangles it (via CNOT from the read qubit) with the
// next link qubit — remote entanglement-swapping construction (Figure 3,
// case 2). The read qubit is busy during its own readout, so pre-execution
// must run on an ancilla holding the predicted post-collapse state.
func EntangleSwap(depth int) *Workload {
	if depth < 1 {
		panic("workload: EntangleSwap needs depth >= 1")
	}
	n := depth + 1
	c := circuit.New(n)
	var priors []float64
	for k := 0; k < depth; k++ {
		c.AddGate(circuit.NewGate1(circuit.H, k))
		c.AddFeedback(&circuit.Feedback{
			Qubit:  k,
			OnOne:  circuit.Gates(circuit.NewGate2(circuit.CNOT, k, k+1)),
			OnZero: nil,
		})
		priors = append(priors, 0.5)
	}
	return &Workload{Name: fmt.Sprintf("eswap-%d", depth), Circuit: c, SiteP1: priors}
}

// Reset builds the active-reset benchmark: each of n qubits is read and
// flipped when found in |1⟩ — the case-3 site whose latency floors at the
// readout end.
func Reset(nQubits int) *Workload {
	if nQubits < 1 {
		panic("workload: Reset needs >= 1 qubit")
	}
	c := circuit.New(nQubits)
	var priors []float64
	for q := 0; q < nQubits; q++ {
		c.AddFeedback(&circuit.Feedback{
			Qubit:  q,
			OnOne:  circuit.Gates(circuit.NewGate1(circuit.X, q)),
			OnZero: nil,
		})
		// Thermal excitation + residual population: ~12 % read 1.
		priors = append(priors, 0.12)
	}
	excite := make([]float64, nQubits)
	for q := range excite {
		excite[q] = 0.12
	}
	return &Workload{
		Name:        fmt.Sprintf("reset-%d", nQubits),
		Circuit:     c,
		SiteP1:      priors,
		InitExciteP: excite,
	}
}

// Random builds the random benchmarking circuit of §6.1: gates/2 random
// gates before and after a single feedback site on a small register. The
// total random-gate payload time is included in the latency metric,
// matching Table 1's Random columns.
func Random(gates int, rng *stats.RNG) *Workload {
	if gates < 2 {
		panic("workload: Random needs >= 2 gates")
	}
	const n = 4
	c := circuit.New(n)
	addRandom := func(k int) {
		for i := 0; i < k; i++ {
			q := rng.Intn(n)
			switch rng.Intn(5) {
			case 0:
				c.AddGate(circuit.NewRot(circuit.RX, q, rng.Float64()*2*math.Pi))
			case 1:
				c.AddGate(circuit.NewRot(circuit.RY, q, rng.Float64()*2*math.Pi))
			case 2:
				c.AddGate(circuit.NewRot(circuit.RZ, q, rng.Float64()*2*math.Pi))
			case 3:
				c.AddGate(circuit.NewGate1(circuit.H, q))
			default:
				p := rng.Intn(n)
				if p == q {
					p = (q + 1) % n
				}
				c.AddGate(circuit.NewGate2(circuit.CZ, q, p))
			}
		}
	}
	addRandom(gates / 2)
	c.AddFeedback(&circuit.Feedback{
		Qubit:  0,
		OnOne:  circuit.Gates(circuit.NewGate1(circuit.X, 1)),
		OnZero: nil,
	})
	addRandom(gates - gates/2)
	payload := 0.0
	for _, in := range c.Ins {
		if in.Kind == circuit.OpGate {
			payload += in.Gate.Kind.Duration()
		}
	}
	return &Workload{
		Name:          fmt.Sprintf("random-%d", gates),
		Circuit:       c,
		SiteP1:        []float64{0.5},
		GatePayloadNs: payload,
	}
}

// QECCycle builds one d=3 surface-code correction cycle as a feedback
// program over 17 qubits (9 data + 8 syndromes): every syndrome readout is
// a feedback site whose OnOne branch applies the pre-correction X to a data
// qubit (case 1), and syndrome reset is the case-3 site. Syndrome priors
// are far below 1 % (§6.3).
func QECCycle(cycles int) *Workload {
	if cycles < 1 {
		panic("workload: QEC needs >= 1 cycle")
	}
	const nData = 9
	const nSyn = 8
	c := circuit.New(nData + nSyn)
	var priors []float64
	for cyc := 0; cyc < cycles; cyc++ {
		for s := 0; s < nSyn; s++ {
			syn := nData + s
			// Syndrome extraction entanglers (schematic: two CZs onto the
			// neighboring data qubits).
			c.AddGate(circuit.NewGate1(circuit.H, syn))
			c.AddGate(circuit.NewGate2(circuit.CZ, syn, s))
			c.AddGate(circuit.NewGate2(circuit.CZ, syn, (s+1)%nData))
			c.AddGate(circuit.NewGate1(circuit.H, syn))
			// Syndrome readout with data-qubit pre-correction (case 1).
			c.AddFeedback(&circuit.Feedback{
				Qubit:  syn,
				OnOne:  circuit.Gates(circuit.NewGate1(circuit.X, s)),
				OnZero: nil,
			})
			priors = append(priors, 0.006)
			// Syndrome pre-reset (case 3).
			c.AddFeedback(&circuit.Feedback{
				Qubit:  syn,
				OnOne:  circuit.Gates(circuit.NewGate1(circuit.X, syn)),
				OnZero: nil,
			})
			priors = append(priors, 0.006)
		}
	}
	return &Workload{Name: fmt.Sprintf("QEC-%d", cycles), Circuit: c, SiteP1: priors}
}

// maxSurfaceDistance caps SurfaceMemory registers (d=25 is already a
// 1249-qubit tableau); the registry enforces it before construction.
const maxSurfaceDistance = 25

// surfaceMemoryCycles is the number of syndrome-extraction rounds a
// SurfaceMemory workload runs before the final data readout. Two rounds
// are the minimum that exercises the syndrome-difference structure a
// memory decoder consumes.
const surfaceMemoryCycles = 2

// SurfaceMemory builds a distance-d rotated-surface-code memory
// experiment as a feedback program over 2d²−1 qubits: d² data qubits in
// the internal/qec layout plus one ancilla per stabilizer check. Each of
// the surfaceMemoryCycles rounds extracts every check (X-type:
// H·CNOTs·H onto the ancilla; Z-type: CNOTs into the ancilla) and reads
// the ancilla out as a feedback site whose OnOne branch is the active
// ancilla reset (case 3) — so the controller's classified outcome, not
// the physical one, conditions the reset, and an assignment error
// leaves a flipped ancilla for the next round exactly as on hardware.
// After the last round every data qubit is measured out.
//
// The circuit is pure Clifford and — at d ≥ 7 — far beyond any state
// vector, which is exactly the regime the stabilizer backend exists
// for (d=15 is 449 qubits). Priors: an X-check ancilla reads the
// X-stabilizer eigenvalue, which the first round projects at random —
// so across shots every X check is a fair coin at every round (prior
// 0.5; within a shot later rounds repeat the first, but the site prior
// is a marginal). Z checks read syndromes of the |0…0⟩ start state and
// stay quiet up to sparse errors (prior 0.02).
func SurfaceMemory(d int) *Workload {
	if err := checkSurfaceDistance(d); err != nil {
		panic(err.Error())
	}
	code := qec.NewCode(d)
	nData := code.NumData
	c := circuit.New(nData + code.NumStabilizers())
	var priors []float64
	for cyc := 0; cyc < surfaceMemoryCycles; cyc++ {
		for si, st := range code.Stabilizers {
			anc := nData + si
			if st.Kind == qec.StabX {
				c.AddGate(circuit.NewGate1(circuit.H, anc))
				for _, q := range st.Support {
					c.AddGate(circuit.NewGate2(circuit.CNOT, anc, q))
				}
				c.AddGate(circuit.NewGate1(circuit.H, anc))
			} else {
				for _, q := range st.Support {
					c.AddGate(circuit.NewGate2(circuit.CNOT, q, anc))
				}
			}
			c.AddFeedback(&circuit.Feedback{
				Qubit:  anc,
				OnOne:  circuit.Gates(circuit.NewGate1(circuit.X, anc)),
				OnZero: nil,
			})
			if st.Kind == qec.StabX {
				priors = append(priors, 0.5)
			} else {
				priors = append(priors, 0.02)
			}
		}
	}
	for q := 0; q < nData; q++ {
		c.AddMeasure(q)
	}
	return &Workload{Name: fmt.Sprintf("Surface-%d", d), Circuit: c, SiteP1: priors}
}
