// Package pulse implements ARTERY's pulse subsystem: gate-pulse waveform
// synthesis, the pre-encoded pulse library, the run-length and canonical
// Huffman codecs of the adaptive pulse sampling design (§5.4), and the
// bandwidth/DAC-density model behind Table 2.
//
// Quantum control pulses are mostly idle (zero) samples punctuated by short
// repeated envelopes, which is why compression multiplies the number of DAC
// channels one FPGA can feed across a fixed AXI budget.
package pulse

import (
	"fmt"
	"math"
)

// Hardware constants from §6.1 of the paper.
const (
	DACSampleRateGSPS = 4.0  // DAC sampling rate: 4 GSPS
	DACResolutionBits = 16   // AD9164: 16-bit samples
	XYPulseNs         = 30.0 // RX/RY drive pulse duration
	CZPulseNs         = 60.0 // CZ flux pulse duration
	ReadoutPulseNs    = 2000.0
	// AXIBandwidthGbps is the on-chip AXI budget per FPGA. The paper's
	// raw configuration supports exactly 4 DACs at 64 Gb/s each.
	AXIBandwidthGbps = 256.0
	// RawDACBandwidthGbps is the uncompressed stream rate of one DAC:
	// 4 GSPS x 16 bit = 64 Gb/s (Table 2's "Raw pulse" row).
	RawDACBandwidthGbps = DACSampleRateGSPS * DACResolutionBits
)

// Waveform is a sequence of signed 16-bit DAC samples.
type Waveform []int16

// samplesFor returns the sample count of a pulse lasting durNs nanoseconds.
func samplesFor(durNs float64) int {
	return int(math.Round(durNs * DACSampleRateGSPS))
}

// amplitude scale: use a moderate fraction of full scale so envelope
// arithmetic cannot overflow int16.
const fullScale = 24000

// GaussianXY synthesizes a Gaussian-envelope microwave pulse of the given
// duration modulated at freqGHz, with amplitude amp in [0,1] and phase
// phi — the standard single-qubit XY drive. The rotation angle maps to the
// envelope area; amp=1 is a π pulse.
func GaussianXY(durNs float64, amp, freqGHz, phi float64) Waveform {
	n := samplesFor(durNs)
	w := make(Waveform, n)
	sigma := float64(n) / 5 // +-2.5σ support, conventional truncation
	mid := float64(n-1) / 2
	for i := 0; i < n; i++ {
		x := (float64(i) - mid) / sigma
		env := math.Exp(-x * x / 2)
		carrier := math.Cos(2*math.Pi*freqGHz*float64(i)/DACSampleRateGSPS + phi)
		w[i] = quantize(amp * env * carrier)
	}
	return w
}

// FlatTopCZ synthesizes the flux pulse of a CZ gate: cosine-ramped flat-top,
// no carrier (baseband flux).
func FlatTopCZ(durNs float64, amp float64) Waveform {
	n := samplesFor(durNs)
	w := make(Waveform, n)
	ramp := n / 6
	for i := 0; i < n; i++ {
		env := 1.0
		switch {
		case i < ramp:
			env = 0.5 * (1 - math.Cos(math.Pi*float64(i)/float64(ramp)))
		case i >= n-ramp:
			env = 0.5 * (1 - math.Cos(math.Pi*float64(n-1-i)/float64(ramp)))
		}
		w[i] = quantize(amp * env)
	}
	return w
}

// ReadoutTone synthesizes the long rectangular measurement tone at the
// readout-resonator intermediate frequency.
func ReadoutTone(durNs float64, amp, freqGHz float64) Waveform {
	n := samplesFor(durNs)
	w := make(Waveform, n)
	for i := 0; i < n; i++ {
		w[i] = quantize(amp * math.Cos(2*math.Pi*freqGHz*float64(i)/DACSampleRateGSPS))
	}
	return w
}

// Idle returns durNs of zero samples.
func Idle(durNs float64) Waveform { return make(Waveform, samplesFor(durNs)) }

func quantize(x float64) int16 {
	v := math.Round(x * fullScale)
	if v > math.MaxInt16 {
		v = math.MaxInt16
	}
	if v < math.MinInt16 {
		v = math.MinInt16
	}
	return int16(v)
}

// Concat joins waveforms into one stream.
func Concat(ws ...Waveform) Waveform {
	n := 0
	for _, w := range ws {
		n += len(w)
	}
	out := make(Waveform, 0, n)
	for _, w := range ws {
		out = append(out, w...)
	}
	return out
}

// Bytes serializes the waveform little-endian (2 bytes per sample), the
// layout sent over the AXI bus to the DAC interface.
func (w Waveform) Bytes() []byte {
	b := make([]byte, 2*len(w))
	for i, s := range w {
		u := uint16(s)
		b[2*i] = byte(u)
		b[2*i+1] = byte(u >> 8)
	}
	return b
}

// FromBytes parses a little-endian sample stream. It fails on odd lengths.
func FromBytes(b []byte) (Waveform, error) {
	if len(b)%2 != 0 {
		return nil, fmt.Errorf("pulse: odd byte stream length %d", len(b))
	}
	w := make(Waveform, len(b)/2)
	for i := range w {
		w[i] = int16(uint16(b[2*i]) | uint16(b[2*i+1])<<8)
	}
	return w, nil
}

// DurationNs returns the wall-clock duration of the waveform.
func (w Waveform) DurationNs() float64 {
	return float64(len(w)) / DACSampleRateGSPS
}

// Energy returns the sum of squared samples (for tests and diagnostics).
func (w Waveform) Energy() float64 {
	e := 0.0
	for _, s := range w {
		e += float64(s) * float64(s)
	}
	return e
}
