package pulse

import (
	"math"
	"testing"
)

func TestInterpolate2xLength(t *testing.T) {
	w := GaussianXY(30, 1, 0.25, 0)
	up := Interpolate2x(w)
	if len(up) != 2*len(w) {
		t.Fatalf("upsampled length %d, want %d", len(up), 2*len(w))
	}
	if len(Interpolate2x(nil)) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

func TestInterpolate2xPassesThroughEvenSamples(t *testing.T) {
	w := Waveform{100, -200, 300, 150}
	up := Interpolate2x(w)
	for i, s := range w {
		if up[2*i] != s {
			t.Fatalf("even sample %d changed: %d vs %d", i, up[2*i], s)
		}
	}
}

func TestInterpolate2xSmoothOnSlowEnvelope(t *testing.T) {
	// A slowly varying envelope interpolates close to the midpoint average.
	w := make(Waveform, 64)
	for i := range w {
		w[i] = int16(10000 * math.Sin(float64(i)*0.1))
	}
	up := Interpolate2x(w)
	for i := 4; i < len(w)-4; i++ {
		mid := float64(up[2*i+1])
		avg := (float64(w[i]) + float64(w[i+1])) / 2
		if math.Abs(mid-avg) > 600 {
			t.Fatalf("midpoint %d far from local average: %v vs %v", i, mid, avg)
		}
	}
}

func TestInterpolate2xDoesNotOverflow(t *testing.T) {
	w := Waveform{math.MaxInt16, math.MaxInt16, math.MaxInt16, math.MaxInt16}
	for _, s := range Interpolate2x(w) {
		if s < 0 {
			t.Fatalf("overflowed to %d", s)
		}
	}
}

func TestNCOFrequency(t *testing.T) {
	// Mixing a DC envelope produces a cosine at the programmed frequency:
	// count zero crossings over a known span.
	n := NewNCO(0.1, 1.0) // 0.1 cycles/sample
	env := make(Waveform, 1000)
	for i := range env {
		env[i] = 10000
	}
	out := n.Mix(env)
	crossings := 0
	for i := 1; i < len(out); i++ {
		if (out[i-1] >= 0) != (out[i] >= 0) {
			crossings++
		}
	}
	// 0.1 cycles/sample × 1000 samples = 100 periods = 200 crossings.
	if crossings < 195 || crossings > 205 {
		t.Fatalf("zero crossings %d, want ~200", crossings)
	}
}

func TestNCOPhaseContinuity(t *testing.T) {
	n := NewNCO(0.05, 1.0)
	env := make(Waveform, 40)
	for i := range env {
		env[i] = 10000
	}
	a := n.Mix(env[:20])
	b := n.Mix(env[20:])
	n.Reset()
	whole := n.Mix(env)
	for i := 0; i < 20; i++ {
		if a[i] != whole[i] || b[i] != whole[20+i] {
			t.Fatal("NCO phase not continuous across Mix calls")
		}
	}
}

func TestNCONyquistPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("super-Nyquist NCO accepted")
		}
	}()
	NewNCO(0.9, 1.0)
}

func TestDACPathPaperConfig(t *testing.T) {
	p := PaperDACPath()
	w := GaussianXY(30, 1, 0.25, 0)
	out, err := p.Process(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2*len(w) {
		t.Fatalf("paper path output %d samples, want 2x", len(out))
	}
	// Energy roughly doubles with sample count (same analog waveform).
	if out.Energy() < w.Energy() {
		t.Fatal("interpolation lost energy")
	}
}

func TestDACPathWithNCO(t *testing.T) {
	p := &DACPath{InterpolationFactor: 2, NCO: NewNCO(0.2, DACSampleRateGSPS)}
	env := FlatTopCZ(60, 0.8) // baseband envelope
	out, err := p.Process(env)
	if err != nil {
		t.Fatal(err)
	}
	// The mixed output oscillates (sign changes), the envelope does not.
	signChanges := 0
	for i := 1; i < len(out); i++ {
		if (out[i-1] >= 0) != (out[i] >= 0) {
			signChanges++
		}
	}
	if signChanges < 10 {
		t.Fatalf("NCO mixing produced %d sign changes", signChanges)
	}
}

func TestDACPathRejectsBadFactor(t *testing.T) {
	p := &DACPath{InterpolationFactor: 3}
	if _, err := p.Process(Waveform{1}); err == nil {
		t.Fatal("unsupported interpolation factor accepted")
	}
}
