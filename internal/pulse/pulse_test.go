package pulse

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"artery/internal/circuit"
	"artery/internal/stats"
)

func TestWaveformSampleCounts(t *testing.T) {
	if n := len(GaussianXY(30, 1, 0.25, 0)); n != 120 {
		t.Fatalf("30 ns XY pulse has %d samples, want 120", n)
	}
	if n := len(FlatTopCZ(60, 0.8)); n != 240 {
		t.Fatalf("60 ns CZ pulse has %d samples, want 240", n)
	}
	if n := len(ReadoutTone(2000, 0.6, 0.05)); n != 8000 {
		t.Fatalf("2 µs readout has %d samples, want 8000", n)
	}
	if n := len(Idle(100)); n != 400 {
		t.Fatalf("idle has %d samples, want 400", n)
	}
}

func TestWaveformDuration(t *testing.T) {
	w := GaussianXY(30, 1, 0.25, 0)
	if d := w.DurationNs(); math.Abs(d-30) > 1e-9 {
		t.Fatalf("DurationNs = %v, want 30", d)
	}
}

func TestGaussianEnvelopeShape(t *testing.T) {
	w := GaussianXY(30, 1, 0, 0) // no carrier: pure envelope
	// Peak in the middle, near-zero at the edges, symmetric.
	mid := len(w) / 2
	if w[mid] < w[0] || w[mid] < w[len(w)-1] {
		t.Fatal("Gaussian peak not in the middle")
	}
	if math.Abs(float64(w[0])) > float64(fullScale)/10 {
		t.Fatalf("edge sample too large: %d", w[0])
	}
	for i := 0; i < len(w)/2; i++ {
		if d := int(w[i]) - int(w[len(w)-1-i]); d < -1 || d > 1 {
			t.Fatalf("envelope asymmetric at %d: %d vs %d", i, w[i], w[len(w)-1-i])
		}
	}
}

func TestFlatTopShape(t *testing.T) {
	w := FlatTopCZ(60, 0.8)
	mid := len(w) / 2
	want := quantize(0.8)
	if w[mid] != want {
		t.Fatalf("flat-top center = %d, want %d", w[mid], want)
	}
	if w[0] != 0 {
		t.Fatalf("flat-top should ramp from 0, got %d", w[0])
	}
}

func TestBytesRoundTrip(t *testing.T) {
	w := Waveform{0, 1, -1, 32767, -32768, 12345, -12345}
	got, err := FromBytes(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("sample %d: %d != %d", i, got[i], w[i])
		}
	}
}

func TestFromBytesOddLength(t *testing.T) {
	if _, err := FromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("odd-length stream accepted")
	}
}

func TestConcat(t *testing.T) {
	w := Concat(Waveform{1, 2}, Waveform{3}, nil, Waveform{4})
	if len(w) != 4 || w[0] != 1 || w[3] != 4 {
		t.Fatalf("Concat = %v", w)
	}
}

func TestRLERoundTripKnown(t *testing.T) {
	c := RLECodec{}
	src := []byte{0, 0, 0, 0, 5, 5, 7}
	enc := c.Encode(src)
	if len(enc) != 6 { // run(0x4)=2 + run(5x2)=2 + literal(7)=2
		t.Fatalf("encoded length %d, want 6", len(enc))
	}
	dec, err := c.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip: %v != %v", dec, src)
	}
}

func TestRLECompressesZeros(t *testing.T) {
	c := RLECodec{}
	src := make([]byte, 100000) // all idle
	enc := c.Encode(src)
	if len(enc) >= len(src)/100 {
		t.Fatalf("RLE barely compressed zeros: %d bytes", len(enc))
	}
}

func TestRLERejectsCorrupt(t *testing.T) {
	c := RLECodec{}
	if _, err := c.Decode([]byte{1, 2}); err == nil {
		t.Fatal("bad length accepted")
	}
	if _, err := c.Decode([]byte{0, 0, 9}); err == nil {
		t.Fatal("zero run accepted")
	}
}

func TestRLELongRun(t *testing.T) {
	c := RLECodec{}
	src := make([]byte, 200000)
	for i := range src {
		src[i] = 0xAB
	}
	dec, err := c.Decode(c.Encode(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatal("long-run round trip failed")
	}
}

func TestHuffmanRoundTripKnown(t *testing.T) {
	c := HuffmanCodec{}
	src := []byte("abracadabra, a compressible string string string")
	dec, err := c.Decode(c.Encode(src))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, src) {
		t.Fatalf("round trip failed: %q", dec)
	}
}

func TestHuffmanEmptyAndSingleSymbol(t *testing.T) {
	c := HuffmanCodec{}
	for _, src := range [][]byte{{}, {9}, bytes.Repeat([]byte{7}, 1000)} {
		dec, err := c.Decode(c.Encode(src))
		if err != nil {
			t.Fatalf("len %d: %v", len(src), err)
		}
		if !bytes.Equal(dec, src) {
			t.Fatalf("len %d round trip failed", len(src))
		}
	}
}

func TestHuffmanCompressesSkewed(t *testing.T) {
	c := HuffmanCodec{}
	src := make([]byte, 50000)
	rng := stats.NewRNG(1)
	for i := range src {
		if rng.Bool(0.05) {
			src[i] = byte(rng.Intn(256))
		}
	}
	enc := c.Encode(src)
	if len(enc) >= len(src)/2 {
		t.Fatalf("Huffman did not compress skewed stream: %d of %d", len(enc), len(src))
	}
}

func TestHuffmanRejectsTruncated(t *testing.T) {
	c := HuffmanCodec{}
	enc := c.Encode([]byte("some reasonably long payload for truncation"))
	if _, err := c.Decode(enc[:len(enc)-3]); err == nil {
		t.Fatal("truncated stream accepted")
	}
	if _, err := c.Decode([]byte{1, 2}); err == nil {
		t.Fatal("too-short stream accepted")
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	codecs := Codecs()
	f := func(data []byte) bool {
		for _, c := range codecs {
			dec, err := c.Decode(c.Encode(data))
			if err != nil || !bytes.Equal(dec, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRoundTripOnRealPulses(t *testing.T) {
	w := Concat(
		GaussianXY(30, 1, 0.25, 0), Idle(200), FlatTopCZ(60, 0.8),
		Idle(500), ReadoutTone(2000, 0.6, 0.05), Idle(1000),
	)
	raw := w.Bytes()
	for _, c := range Codecs() {
		dec, err := c.Decode(c.Encode(raw))
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(dec, raw) {
			t.Fatalf("%s: pulse round trip failed", c.Name())
		}
	}
}

func TestCombinedBeatsIndividualOnPulseStreams(t *testing.T) {
	// The Table-2 ordering: combined < RLE < Huffman < raw on sparse pulse
	// streams.
	w := Concat(
		GaussianXY(30, 1, 0.25, 0), Idle(800), GaussianXY(30, 1, 0.25, 0),
		Idle(800), FlatTopCZ(60, 0.8), Idle(2000),
	)
	raw := w.Bytes()
	rRaw := Ratio(RawCodec{}, raw)
	rHuff := Ratio(HuffmanCodec{}, raw)
	rRLE := Ratio(RLECodec{}, raw)
	rComb := Ratio(CombinedCodec{}, raw)
	if !(rComb < rRLE && rRLE < rHuff && rHuff < rRaw) {
		t.Fatalf("compression ordering violated: comb=%.3f rle=%.3f huff=%.3f raw=%.3f",
			rComb, rRLE, rHuff, rRaw)
	}
}

func TestLibraryStoreFetch(t *testing.T) {
	lib := NewLibrary(CombinedCodec{})
	w := GaussianXY(30, 1, 0.25, 0)
	addr := lib.Store("x", w)
	if lib.Address("x") != addr {
		t.Fatal("Address mismatch")
	}
	got, err := lib.Fetch(addr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w) {
		t.Fatalf("fetched %d samples, want %d", len(got), len(w))
	}
	for i := range w {
		if got[i] != w[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	if lib.Address("missing") != -1 {
		t.Fatal("missing key should give -1")
	}
	if _, err := lib.Fetch(99); err == nil {
		t.Fatal("out-of-range fetch accepted")
	}
}

func TestLibraryOverwriteKeepsAddress(t *testing.T) {
	lib := NewLibrary(RawCodec{})
	a1 := lib.Store("k", Waveform{1})
	a2 := lib.Store("k", Waveform{2, 3})
	if a1 != a2 || lib.Len() != 1 {
		t.Fatalf("overwrite created new entry: %d %d len=%d", a1, a2, lib.Len())
	}
	w, _ := lib.Fetch(a1)
	if len(w) != 2 {
		t.Fatal("overwrite did not replace waveform")
	}
}

func TestLibraryCompression(t *testing.T) {
	lib := NewLibrary(CombinedCodec{})
	lib.Store("readout", ReadoutTone(2000, 0.6, 0.05))
	lib.Store("idle", Idle(2000))
	if lib.StoredBytes() >= lib.RawBytes() {
		t.Fatalf("library did not compress: %d >= %d", lib.StoredBytes(), lib.RawBytes())
	}
}

func TestGateWaveformDurations(t *testing.T) {
	if w := GateWaveform(circuit.NewGate1(circuit.X, 0)); math.Abs(w.DurationNs()-30) > 1e-9 {
		t.Fatalf("X pulse duration %v", w.DurationNs())
	}
	if w := GateWaveform(circuit.NewGate2(circuit.CZ, 0, 1)); math.Abs(w.DurationNs()-60) > 1e-9 {
		t.Fatalf("CZ pulse duration %v", w.DurationNs())
	}
	if w := GateWaveform(circuit.NewRot(circuit.RZ, 0, 1)); len(w) != 0 {
		t.Fatal("virtual RZ emitted samples")
	}
}

func TestCompileCircuitStreams(t *testing.T) {
	c := circuit.New(2)
	c.AddGate(circuit.NewGate1(circuit.X, 0))
	c.AddGate(circuit.NewGate2(circuit.CZ, 0, 1))
	streams := CompileCircuit(c)
	if len(streams) != 2 {
		t.Fatalf("streams for %d qubits", len(streams))
	}
	if len(streams[0]) != len(streams[1]) {
		t.Fatal("channels not padded to equal length")
	}
	// q0: 30 ns X then 60 ns CZ = 90 ns = 360 samples.
	if len(streams[0]) != 360 {
		t.Fatalf("stream length %d, want 360", len(streams[0]))
	}
	// q1 idles during the X pulse: first 120 samples are zero.
	for i := 0; i < 120; i++ {
		if streams[1][i] != 0 {
			t.Fatalf("q1 not idle at sample %d", i)
		}
	}
}

func TestCompileCircuitFeedback(t *testing.T) {
	c := circuit.New(2)
	fb := &circuit.Feedback{Qubit: 0, OnOne: circuit.Gates(circuit.NewGate1(circuit.X, 1))}
	c.AddFeedback(fb)
	streams := CompileCircuit(c)
	// Readout on q0 (8000 samples) followed by the branch X on q1.
	if n := len(streams[0]); n != 8120 {
		t.Fatalf("feedback stream length %d, want 8120", n)
	}
	// Branch pulse present on q1 after the readout window.
	nonZero := false
	for _, s := range streams[1][8000:] {
		if s != 0 {
			nonZero = true
			break
		}
	}
	if !nonZero {
		t.Fatal("branch pulse missing from q1 channel")
	}
}

func TestBuildLibraryCoversGates(t *testing.T) {
	c := circuit.New(2)
	c.AddGate(circuit.NewGate1(circuit.X, 0))
	c.AddGate(circuit.NewGate1(circuit.X, 1)) // same pulse, same key
	c.AddFeedback(&circuit.Feedback{Qubit: 0, OnOne: circuit.Gates(circuit.NewGate1(circuit.Y, 1))})
	lib := BuildLibrary(c, RawCodec{})
	if lib.Address("x") < 0 || lib.Address("y") < 0 || lib.Address("readout") < 0 {
		t.Fatal("library missing expected entries")
	}
	if lib.Len() != 3 {
		t.Fatalf("library has %d entries, want 3 (x, y, readout)", lib.Len())
	}
}

func TestAnalyzeSamplingShape(t *testing.T) {
	// A realistic sparse stream: mostly idle with scattered pulses.
	streams := map[int]Waveform{
		0: Concat(GaussianXY(30, 1, 0.25, 0), Idle(1000), FlatTopCZ(60, 0.8), Idle(3000)),
		1: Concat(Idle(2000), GaussianXY(30, 1, 0.25, 0), Idle(2060)),
	}
	var reports []SamplingReport
	for _, c := range Codecs() {
		reports = append(reports, AnalyzeSampling(c, streams))
	}
	raw, huff, rle, comb := reports[0], reports[1], reports[2], reports[3]
	if raw.BandwidthGbps != 64 {
		t.Fatalf("raw bandwidth %v, want 64", raw.BandwidthGbps)
	}
	if raw.DACsPerFPGA != 4 {
		t.Fatalf("raw DACs %d, want 4", raw.DACsPerFPGA)
	}
	if !(comb.BandwidthGbps < rle.BandwidthGbps && rle.BandwidthGbps < huff.BandwidthGbps) {
		t.Fatalf("bandwidth ordering violated: %v %v %v",
			comb.BandwidthGbps, rle.BandwidthGbps, huff.BandwidthGbps)
	}
	if comb.DACsPerFPGA <= raw.DACsPerFPGA {
		t.Fatal("combined codec did not increase DAC density")
	}
	if raw.DecodeLatencyNs != 0 {
		t.Fatal("raw path should have no decode latency")
	}
	for _, r := range reports[1:] {
		if r.DecodeLatencyNs < 4 || r.DecodeLatencyNs > 60 {
			t.Fatalf("%s decode latency %v ns out of plausible range", r.Codec, r.DecodeLatencyNs)
		}
	}
}

func TestQuantizeClamps(t *testing.T) {
	if quantize(10) != math.MaxInt16 {
		t.Fatal("positive overflow not clamped")
	}
	if quantize(-10) != math.MinInt16 {
		t.Fatal("negative overflow not clamped")
	}
}

func TestEnergyPositive(t *testing.T) {
	if GaussianXY(30, 1, 0.25, 0).Energy() <= 0 {
		t.Fatal("pulse has no energy")
	}
	if Idle(100).Energy() != 0 {
		t.Fatal("idle has energy")
	}
}
