package pulse

import (
	"bytes"
	"testing"

	"artery/internal/workload"
)

// fuzzSeedCorpus returns realistic codec inputs: the compiled per-qubit DAC
// sample streams of the benchmark circuits — the byte distribution the
// hardware decoders actually face — plus a few synthetic edges.
func fuzzSeedCorpus() [][]byte {
	corpus := [][]byte{
		nil,
		{0},
		{0xFF},
		bytes.Repeat([]byte{0}, 300),
		bytes.Repeat([]byte{1, 2}, 100),
	}
	for _, wl := range []*workload.Workload{workload.QRW(3), workload.QECCycle(1)} {
		for q, w := range CompileCircuit(wl.Circuit) {
			if q > 2 { // a few channels suffice; corpora should stay small
				continue
			}
			b := w.Bytes()
			if len(b) > 4096 {
				b = b[:4096]
			}
			corpus = append(corpus, b)
		}
	}
	return corpus
}

// fuzzRoundTrip is the shared property: Decode(Encode(x)) == x, and Decode
// of arbitrary bytes returns (data or error) without panicking. The
// arbitrary-decode leg caps its input because the codecs legitimately
// amplify (RLE's 4-byte extended run expands to 64 KiB), and the fuzzer
// would otherwise chase multi-gigabyte allocations instead of logic bugs.
func fuzzRoundTrip(f *testing.F, c Codec) {
	for _, seed := range fuzzSeedCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		enc := c.Encode(data)
		dec, err := c.Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode of own encoding failed: %v", c.Name(), err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatalf("%s: round trip mismatch: %d bytes in, %d bytes out", c.Name(), len(data), len(dec))
		}
		// Treat the input as a (likely corrupt) encoded stream: the decoder
		// must reject or decode it, never panic or over-allocate.
		if len(data) <= 1024 {
			if out, err := c.Decode(data); err == nil && len(out) > (len(data)+1)*65536 {
				t.Fatalf("%s: decoded %d bytes from %d — amplification bound broken", c.Name(), len(out), len(data))
			}
		}
	})
}

func FuzzCodecRoundTripHuffman(f *testing.F)  { fuzzRoundTrip(f, HuffmanCodec{}) }
func FuzzCodecRoundTripRLE(f *testing.F)      { fuzzRoundTrip(f, RLECodec{}) }
func FuzzCodecRoundTripCombined(f *testing.F) { fuzzRoundTrip(f, CombinedCodec{}) }

// TestHuffmanDecodeRejectsOversizedHeader pins the hardening the fuzzer
// relies on: a 4 GiB-claiming header over a tiny payload must error out
// before allocating.
func TestHuffmanDecodeRejectsOversizedHeader(t *testing.T) {
	src := make([]byte, 4+256+2)
	src[0], src[1], src[2], src[3] = 0xFF, 0xFF, 0xFF, 0xFF // origLen = 4 GiB - 1
	src[4] = 1                                              // symbol 0, code length 1
	if _, err := (HuffmanCodec{}).Decode(src); err == nil {
		t.Fatal("oversized header accepted")
	}
	// A header exactly matching the payload's bit budget still works.
	enc := HuffmanCodec{}.Encode(bytes.Repeat([]byte{7}, 16))
	if dec, err := (HuffmanCodec{}).Decode(enc); err != nil || len(dec) != 16 {
		t.Fatalf("valid stream rejected: %v (%d bytes)", err, len(dec))
	}
}

// TestHuffmanDecodeMaxLengthTable pins the fuzz finding b3d10e3a50b6c1f9:
// a corrupt lengths table carrying values near 255 must not wrap the
// canonical-table allocation (byte arithmetic on maxLen+2) or hang the
// table-building loop. Such streams decode or error — never panic.
func TestHuffmanDecodeMaxLengthTable(t *testing.T) {
	for _, l := range []byte{254, 255} {
		src := make([]byte, 4+256+4)
		src[0] = 2    // claim two bytes
		src[4+0] = 1  // symbol 0: length 1
		src[4+17] = l // symbol 17: absurd length
		out, err := (HuffmanCodec{}).Decode(src)
		if err == nil && len(out) != 2 {
			t.Fatalf("length-%d table: %d bytes decoded from a 2-byte header", l, len(out))
		}
	}
}
