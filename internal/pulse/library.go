package pulse

import (
	"fmt"

	"artery/internal/circuit"
)

// Library is the pre-encoded pulse lookup table of the feedback controller
// (§5.1 "pulse preparation"): branch circuits are compiled to pulse streams
// at calibration time, compressed, and fetched by address when the branch
// decider fires.
type Library struct {
	codec   Codec
	entries []libEntry
	index   map[string]int
}

type libEntry struct {
	key     string
	encoded []byte
	rawLen  int
}

// NewLibrary returns an empty library using codec for storage encoding.
func NewLibrary(codec Codec) *Library {
	return &Library{codec: codec, index: map[string]int{}}
}

// Store compiles and stores a waveform under key, returning its address.
// Storing an existing key overwrites it and keeps the address.
func (l *Library) Store(key string, w Waveform) int {
	raw := w.Bytes()
	enc := l.codec.Encode(raw)
	if addr, ok := l.index[key]; ok {
		l.entries[addr] = libEntry{key: key, encoded: enc, rawLen: len(raw)}
		return addr
	}
	addr := len(l.entries)
	l.entries = append(l.entries, libEntry{key: key, encoded: enc, rawLen: len(raw)})
	l.index[key] = addr
	return addr
}

// Address returns the address of key, or -1 when absent.
func (l *Library) Address(key string) int {
	if addr, ok := l.index[key]; ok {
		return addr
	}
	return -1
}

// Fetch decodes and returns the waveform at addr, modeling the decoder on
// the feedback path.
func (l *Library) Fetch(addr int) (Waveform, error) {
	if addr < 0 || addr >= len(l.entries) {
		return nil, fmt.Errorf("pulse: library address %d out of range", addr)
	}
	raw, err := l.codec.Decode(l.entries[addr].encoded)
	if err != nil {
		return nil, fmt.Errorf("pulse: library fetch %q: %w", l.entries[addr].key, err)
	}
	return FromBytes(raw)
}

// StoredBytes returns the total encoded size of the library, which must fit
// the paper's 1.4 MB on-chip storage constraint.
func (l *Library) StoredBytes() int {
	n := 0
	for _, e := range l.entries {
		n += len(e.encoded)
	}
	return n
}

// RawBytes returns the total pre-compression size of the library.
func (l *Library) RawBytes() int {
	n := 0
	for _, e := range l.entries {
		n += e.rawLen
	}
	return n
}

// Len returns the number of stored entries.
func (l *Library) Len() int { return len(l.entries) }

// GateWaveform synthesizes the calibrated waveform of one gate. XY drives
// encode the rotation angle in the envelope amplitude; the phase selects
// the rotation axis; virtual RZ emits no pulse.
func GateWaveform(g circuit.Gate) Waveform {
	switch g.Kind {
	case circuit.RZ:
		return Waveform{} // virtual: frame update only
	case circuit.RX:
		return GaussianXY(XYPulseNs, g.Angle/3.14159265358979, 0.25, 0)
	case circuit.RY:
		return GaussianXY(XYPulseNs, g.Angle/3.14159265358979, 0.25, 1.5707963267948966)
	case circuit.X:
		return GaussianXY(XYPulseNs, 1, 0.25, 0)
	case circuit.Y:
		return GaussianXY(XYPulseNs, 1, 0.25, 1.5707963267948966)
	case circuit.Z:
		return Waveform{} // virtual
	case circuit.H, circuit.S, circuit.Sdg, circuit.T, circuit.Tdg:
		// Compiled to one XY pulse plus frame updates on hardware.
		return GaussianXY(XYPulseNs, 0.5, 0.25, 0.7853981633974483)
	case circuit.CZ:
		return FlatTopCZ(CZPulseNs, 0.8)
	case circuit.CNOT:
		// H · CZ · H on the target: two XY pulses around the flux pulse.
		return Concat(
			GaussianXY(XYPulseNs, 0.5, 0.25, 0),
			FlatTopCZ(CZPulseNs, 0.8),
			GaussianXY(XYPulseNs, 0.5, 0.25, 0),
		)
	case circuit.SWAP:
		return Concat(FlatTopCZ(CZPulseNs, 0.8), FlatTopCZ(CZPulseNs, 0.8), FlatTopCZ(CZPulseNs, 0.8))
	default:
		panic(fmt.Sprintf("pulse: no waveform for gate %v", g.Kind))
	}
}

// GateKey returns the library key for a gate (angle-quantized so calibrated
// pulses are shared across shots, maximizing reuse — the compressibility
// the paper exploits).
func GateKey(g circuit.Gate) string {
	switch g.Kind {
	case circuit.RX, circuit.RY, circuit.RZ:
		return fmt.Sprintf("%v/%.4f", g.Kind, g.Angle)
	default:
		return g.Kind.String()
	}
}

// CompileCircuit synthesizes the per-qubit XY/Z control-channel DAC sample
// streams of a circuit following its ASAP schedule: each qubit channel
// receives its gate pulses at their scheduled start times with zero (idle)
// samples in between. During measurements and feedback readouts the
// control channels idle (the 2 µs readout tone plays on the dedicated,
// frequency-multiplexed readout line, not on the compressed control
// stream); feedback sites contribute the worst-case branch body (OnOne)
// on the branch qubits after the readout window, which is what the
// controller must provision for.
func CompileCircuit(c *circuit.Circuit) map[int]Waveform {
	d := circuit.BuildDAG(c)
	streams := make(map[int]Waveform, c.NumQubits)
	for q := 0; q < c.NumQubits; q++ {
		streams[q] = Waveform{}
	}
	extend := func(q int, until float64) {
		need := samplesFor(until) - len(streams[q])
		if need > 0 {
			streams[q] = append(streams[q], make(Waveform, need)...)
		}
	}
	emit := func(q int, start float64, w Waveform) {
		extend(q, start)
		streams[q] = append(streams[q], w...)
	}
	for i, in := range c.Ins {
		start := d.Start[i]
		switch in.Kind {
		case circuit.OpGate:
			w := GateWaveform(in.Gate)
			for _, q := range in.Gate.QubitList() {
				emit(q, start, w)
			}
		case circuit.OpMeasure, circuit.OpReset:
			extend(in.Qubit, start+ReadoutPulseNs) // control channel idles
		case circuit.OpFeedback:
			fb := in.Feedback
			extend(fb.Qubit, start+ReadoutPulseNs) // control channel idles
			t := start + ReadoutPulseNs
			for _, b := range fb.OnOne {
				if b.Kind != circuit.OpGate {
					continue
				}
				w := GateWaveform(b.Gate)
				for _, q := range b.Gate.QubitList() {
					emit(q, t, w)
				}
				t += b.Gate.Kind.Duration()
			}
		}
	}
	// Pad all channels to a common length.
	maxLen := 0
	for _, w := range streams {
		if len(w) > maxLen {
			maxLen = len(w)
		}
	}
	for q := range streams {
		if n := maxLen - len(streams[q]); n > 0 {
			streams[q] = append(streams[q], make(Waveform, n)...)
		}
	}
	return streams
}

// BuildLibrary stores every distinct gate pulse of a circuit in a library.
func BuildLibrary(c *circuit.Circuit, codec Codec) *Library {
	lib := NewLibrary(codec)
	var visit func(ins []circuit.Instruction)
	visit = func(ins []circuit.Instruction) {
		for _, in := range ins {
			switch in.Kind {
			case circuit.OpGate:
				if w := GateWaveform(in.Gate); len(w) > 0 {
					lib.Store(GateKey(in.Gate), w)
				}
			case circuit.OpMeasure, circuit.OpReset:
				lib.Store("readout", ReadoutTone(ReadoutPulseNs, 0.6, 0.05))
			case circuit.OpFeedback:
				lib.Store("readout", ReadoutTone(ReadoutPulseNs, 0.6, 0.05))
				visit(in.Feedback.OnOne)
				visit(in.Feedback.OnZero)
			}
		}
	}
	visit(c.Ins)
	return lib
}
