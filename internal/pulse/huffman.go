package pulse

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"sort"
)

// HuffmanCodec is a canonical byte-wise Huffman coder, the second stage of
// the adaptive pulse sampling design (§5.4). The encoded stream embeds the
// canonical code-length table so the hardware decoder can rebuild its
// lookup ROM (the "Huffman table" of Figure 10) without side channels.
//
// Stream format:
//
//	origLen  uint32 LE — number of payload bytes before compression
//	lengths  [256]byte — canonical code length per symbol (0 = unused)
//	payload  bit-packed codes, MSB-first within each byte
type HuffmanCodec struct{}

// Name returns the codec's display name.
func (HuffmanCodec) Name() string { return "huffman" }

type huffNode struct {
	freq        int
	symbol      int // -1 for internal
	left, right *huffNode
	// order is a tiebreaker that keeps the heap deterministic.
	order int
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	return h[i].order < h[j].order
}
func (h huffHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x interface{}) { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// codeLengths computes Huffman code lengths for each byte of src.
func codeLengths(src []byte) [256]byte {
	var lengths [256]byte
	var freq [256]int
	for _, b := range src {
		freq[b]++
	}
	h := &huffHeap{}
	order := 0
	for s, f := range freq {
		if f > 0 {
			heap.Push(h, &huffNode{freq: f, symbol: s, order: order})
			order++
		}
	}
	switch h.Len() {
	case 0:
		return lengths
	case 1:
		lengths[(*h)[0].symbol] = 1
		return lengths
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{freq: a.freq + b.freq, symbol: -1, left: a, right: b, order: order})
		order++
	}
	root := heap.Pop(h).(*huffNode)
	var walk func(n *huffNode, depth byte)
	walk = func(n *huffNode, depth byte) {
		if n.symbol >= 0 {
			lengths[n.symbol] = depth
			return
		}
		walk(n.left, depth+1)
		walk(n.right, depth+1)
	}
	walk(root, 0)
	return lengths
}

// canonicalCodes assigns canonical codes (value, length) from code lengths:
// symbols sorted by (length, symbol) receive consecutive codes.
func canonicalCodes(lengths *[256]byte) (codes [256]uint32) {
	type sym struct {
		s int
		l byte
	}
	var syms []sym
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sym{s, l})
		}
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].s < syms[j].s
	})
	code := uint32(0)
	prevLen := byte(0)
	for _, sm := range syms {
		code <<= uint(sm.l - prevLen)
		codes[sm.s] = code
		code++
		prevLen = sm.l
	}
	return codes
}

type bitWriter struct {
	buf []byte
	cur byte
	n   uint // bits used in cur
}

func (w *bitWriter) writeBits(code uint32, length byte) {
	for i := int(length) - 1; i >= 0; i-- {
		bit := (code >> uint(i)) & 1
		w.cur = w.cur<<1 | byte(bit)
		w.n++
		if w.n == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.n = 0, 0
		}
	}
}

func (w *bitWriter) flush() {
	if w.n > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.n))
		w.cur, w.n = 0, 0
	}
}

// Encode compresses src with canonical Huffman coding.
func (HuffmanCodec) Encode(src []byte) []byte {
	lengths := codeLengths(src)
	codes := canonicalCodes(&lengths)
	out := make([]byte, 4, 4+256+len(src)/2)
	binary.LittleEndian.PutUint32(out, uint32(len(src)))
	out = append(out, lengths[:]...)
	w := bitWriter{buf: out}
	for _, b := range src {
		w.writeBits(codes[b], lengths[b])
	}
	w.flush()
	return w.buf
}

// Decode expands a stream produced by Encode.
func (HuffmanCodec) Decode(src []byte) ([]byte, error) {
	if len(src) < 4+256 {
		return nil, fmt.Errorf("pulse: huffman stream too short (%d bytes)", len(src))
	}
	origLen := int(binary.LittleEndian.Uint32(src))
	var lengths [256]byte
	copy(lengths[:], src[4:4+256])
	payload := src[4+256:]
	if origLen == 0 {
		return []byte{}, nil
	}
	// Every decoded byte consumes at least one payload bit, so a header
	// claiming more bytes than the payload has bits is corrupt. Rejecting it
	// here also stops a fuzzed 4-byte header from pre-allocating gigabytes.
	if origLen > len(payload)*8 {
		return nil, fmt.Errorf("pulse: huffman header claims %d bytes but payload has only %d bits",
			origLen, len(payload)*8)
	}

	// Build a canonical decoding table: for each code length, the first
	// code value and the index of its first symbol.
	type sym struct {
		s int
		l byte
	}
	// maxLen and the loop indices below are ints: a corrupt lengths table
	// can carry values up to 255, and byte arithmetic on maxLen+2 would
	// wrap the table allocation (and a byte loop counter would never pass
	// a 255 bound).
	var syms []sym
	maxLen := 0
	for s, l := range lengths {
		if l > 0 {
			syms = append(syms, sym{s, l})
			if int(l) > maxLen {
				maxLen = int(l)
			}
		}
	}
	if len(syms) == 0 {
		return nil, fmt.Errorf("pulse: huffman stream has no symbols but %d bytes expected", origLen)
	}
	sort.Slice(syms, func(i, j int) bool {
		if syms[i].l != syms[j].l {
			return syms[i].l < syms[j].l
		}
		return syms[i].s < syms[j].s
	})
	firstCode := make([]uint32, maxLen+2)
	firstSym := make([]int, maxLen+2)
	symbols := make([]byte, len(syms))
	for i, sm := range syms {
		symbols[i] = byte(sm.s)
	}
	{
		code := uint32(0)
		idx := 0
		for l := 1; l <= maxLen; l++ {
			code <<= 1
			firstCode[l] = code
			firstSym[l] = idx
			for idx < len(syms) && int(syms[idx].l) == l {
				code++
				idx++
			}
		}
		firstSym[maxLen+1] = len(syms)
	}

	out := make([]byte, 0, origLen)
	var code uint32
	length := 0
	bitIdx := 0
	totalBits := len(payload) * 8
	for len(out) < origLen {
		if bitIdx >= totalBits {
			return nil, fmt.Errorf("pulse: huffman stream truncated at %d/%d bytes", len(out), origLen)
		}
		bit := (payload[bitIdx/8] >> uint(7-bitIdx%8)) & 1
		bitIdx++
		code = code<<1 | uint32(bit)
		length++
		if length > maxLen {
			return nil, fmt.Errorf("pulse: invalid huffman code (length %d > max %d)", length, maxLen)
		}
		// Count of codes with this length:
		n := 0
		if length+1 < len(firstSym) {
			n = firstSym[length+1] - firstSym[length]
		} else {
			n = len(syms) - firstSym[length]
		}
		// A code of this length is valid if it falls within the assigned range.
		if n > 0 && code >= firstCode[length] && code < firstCode[length]+uint32(n) {
			out = append(out, symbols[firstSym[length]+int(code-firstCode[length])])
			code, length = 0, 0
		}
	}
	return out, nil
}
