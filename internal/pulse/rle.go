package pulse

import "fmt"

// RLECodec is the run-length coder of the adaptive pulse sampling design,
// in the PackBits framing used by hardware run-length decoders: quantum
// pulse streams are dominated by idle zero samples, so run-length encoding
// alone already collapses most of the bandwidth (Table 2), while literal
// (non-repeating) spans cost under 1 % overhead.
//
// Stream format, repeated until exhaustion:
//
//	control c in [0, 127]:   the next c+1 bytes are literals
//	control c in [128, 254]: the next byte repeats c-126 times (2..128)
//	control 255:             uint16 LE run length, then the repeated byte
type RLECodec struct{}

// Name returns the codec's display name.
func (RLECodec) Name() string { return "run-length" }

const (
	rleMaxLiteral  = 128 // literals per control byte
	rleMinRun      = 2
	rleMaxShortRun = 128   // run length encodable in one control byte
	rleMaxLongRun  = 65535 // run length encodable in the extended form
	rleLongEscape  = 255
)

// Encode compresses src with byte-level run-length encoding.
func (RLECodec) Encode(src []byte) []byte {
	out := make([]byte, 0, len(src)/16+16)
	i := 0
	litStart := -1
	flushLiterals := func(end int) {
		for litStart >= 0 && litStart < end {
			n := end - litStart
			if n > rleMaxLiteral {
				n = rleMaxLiteral
			}
			out = append(out, byte(n-1))
			out = append(out, src[litStart:litStart+n]...)
			litStart += n
		}
		litStart = -1
	}
	for i < len(src) {
		b := src[i]
		run := 1
		for i+run < len(src) && src[i+run] == b && run < rleMaxLongRun {
			run++
		}
		if run >= rleMinRun {
			flushLiterals(i)
			if run <= rleMaxShortRun {
				out = append(out, byte(run+126), b)
			} else {
				out = append(out, rleLongEscape, byte(run), byte(run>>8), b)
			}
			i += run
			continue
		}
		if litStart < 0 {
			litStart = i
		}
		i++
	}
	flushLiterals(len(src))
	return out
}

// Decode expands a run-length stream produced by Encode.
func (RLECodec) Decode(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)*4)
	i := 0
	for i < len(src) {
		c := int(src[i])
		i++
		if c < rleMaxLiteral {
			n := c + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("pulse: RLE literal span truncated at offset %d", i)
			}
			out = append(out, src[i:i+n]...)
			i += n
			continue
		}
		var n int
		if c == rleLongEscape {
			if i+3 > len(src) {
				return nil, fmt.Errorf("pulse: RLE extended run truncated at offset %d", i)
			}
			n = int(src[i]) | int(src[i+1])<<8
			i += 2
			if n <= rleMaxShortRun {
				return nil, fmt.Errorf("pulse: RLE extended run length %d too short at offset %d", n, i)
			}
		} else {
			if i >= len(src) {
				return nil, fmt.Errorf("pulse: RLE run missing value byte at offset %d", i)
			}
			n = c - 126
		}
		b := src[i]
		i++
		for k := 0; k < n; k++ {
			out = append(out, b)
		}
	}
	return out, nil
}
