package pulse

import "fmt"

// Codec compresses and decompresses pulse byte streams. Implementations
// model the FPGA-side encoder (software, at calibration time) and decoder
// (hardware, on the feedback path) of the adaptive pulse sampling design.
type Codec interface {
	Name() string
	Encode(src []byte) []byte
	Decode(src []byte) ([]byte, error)
}

// RawCodec is the identity codec: the uncompressed baseline of Table 2.
type RawCodec struct{}

// Name returns the codec's display name.
func (RawCodec) Name() string { return "raw" }

// Encode returns a copy of src.
func (RawCodec) Encode(src []byte) []byte { return append([]byte(nil), src...) }

// Decode returns a copy of src.
func (RawCodec) Decode(src []byte) ([]byte, error) { return append([]byte(nil), src...), nil }

// CombinedCodec chains Huffman and run-length coding in the paper's order
// ("first applying Huffman encoding to the pulses, followed by run-length
// compression", §6.5) — the best-performing configuration of Table 2. On
// idle-dominated pulse streams the Huffman stage emits long runs of
// all-zero code bytes, which the run-length stage then collapses; the
// AblationCodecOrder experiment verifies this order beats the reverse on
// every benchmark's compiled streams.
type CombinedCodec struct{}

// Name returns the codec's display name.
func (CombinedCodec) Name() string { return "huffman+run-length" }

// Encode compresses src with Huffman then run-length coding.
func (CombinedCodec) Encode(src []byte) []byte {
	return RLECodec{}.Encode(HuffmanCodec{}.Encode(src))
}

// Decode reverses Encode.
func (CombinedCodec) Decode(src []byte) ([]byte, error) {
	mid, err := RLECodec{}.Decode(src)
	if err != nil {
		return nil, fmt.Errorf("pulse: combined decode (rle stage): %w", err)
	}
	out, err := HuffmanCodec{}.Decode(mid)
	if err != nil {
		return nil, fmt.Errorf("pulse: combined decode (huffman stage): %w", err)
	}
	return out, nil
}

// Codecs returns the four Table-2 codecs in presentation order.
func Codecs() []Codec {
	return []Codec{RawCodec{}, HuffmanCodec{}, RLECodec{}, CombinedCodec{}}
}

// Ratio returns compressed/original size for codec c on src (1.0 for raw,
// lower is better). An empty src yields 1.
func Ratio(c Codec, src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	return float64(len(c.Encode(src))) / float64(len(src))
}
