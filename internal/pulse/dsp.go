package pulse

import (
	"fmt"
	"math"
)

// DSP blocks of the DAC datapath (Figure 7b): the interpolation filter
// that upsamples fabric-rate samples to the converter rate, and the
// numerically controlled oscillator (NCO) that digitally mixes a baseband
// envelope up to the qubit's drive frequency. The evaluation configures
// 2x interpolation with the NCO bypassed (§6.1); both are modeled here so
// the datapath can also run in the NCO-enabled configuration.

// Interpolate2x upsamples the waveform by two using a linear-phase
// half-band filter (the standard DAC interpolation structure): even output
// samples pass the input through; odd samples are interpolated by the
// symmetric kernel. The result has 2*len(w) samples at twice the rate.
func Interpolate2x(w Waveform) Waveform {
	if len(w) == 0 {
		return Waveform{}
	}
	// 7-tap half-band kernel midpoint coefficients (windowed sinc):
	// h[±1] = 0.6079, h[±3] = -0.1349 (normalized to unit DC gain at the
	// midpoint phase: 2*(0.6079 - 0.1349) ≈ 0.946 ≈ 1 with passband ripple).
	const c1, c3 = 0.6079, -0.1349
	at := func(i int) float64 {
		if i < 0 {
			return float64(w[0])
		}
		if i >= len(w) {
			return float64(w[len(w)-1])
		}
		return float64(w[i])
	}
	out := make(Waveform, 2*len(w))
	for i := range w {
		out[2*i] = w[i]
		mid := c3*at(i-1) + c1*at(i) + c1*at(i+1) + c3*at(i+2)
		out[2*i+1] = clampSample(mid)
	}
	return out
}

func clampSample(x float64) int16 {
	v := math.Round(x)
	if v > math.MaxInt16 {
		v = math.MaxInt16
	}
	if v < math.MinInt16 {
		v = math.MinInt16
	}
	return int16(v)
}

// NCO is a numerically controlled oscillator: a phase accumulator driving
// a sine lookup, used to digitally mix a baseband envelope to the carrier.
type NCO struct {
	// PhaseStep is the per-sample phase increment in turns (frequency /
	// sample rate).
	PhaseStep float64
	phase     float64
}

// NewNCO returns an oscillator producing freqGHz at the given sample rate.
// It panics when the frequency violates Nyquist.
func NewNCO(freqGHz, sampleRateGSPS float64) *NCO {
	if sampleRateGSPS <= 0 || math.Abs(freqGHz) > sampleRateGSPS/2 {
		panic(fmt.Sprintf("pulse: NCO frequency %v GHz violates Nyquist at %v GSPS", freqGHz, sampleRateGSPS))
	}
	return &NCO{PhaseStep: freqGHz / sampleRateGSPS}
}

// Mix multiplies the envelope by the oscillator, advancing the phase
// accumulator — the digital upconversion of a baseband pulse.
func (n *NCO) Mix(envelope Waveform) Waveform {
	out := make(Waveform, len(envelope))
	for i, s := range envelope {
		out[i] = clampSample(float64(s) * math.Cos(2*math.Pi*n.phase))
		n.phase += n.PhaseStep
		if n.phase >= 1 {
			n.phase -= 1
		}
	}
	return out
}

// Reset rewinds the phase accumulator (pulse-aligned phase coherence).
func (n *NCO) Reset() { n.phase = 0 }

// DACPath is the configured converter datapath: optional NCO mixing
// followed by interpolation to the converter rate.
type DACPath struct {
	// InterpolationFactor must currently be 1 or 2 (§6.1 uses 2).
	InterpolationFactor int
	// NCO is nil when bypassed (the evaluation configuration).
	NCO *NCO
}

// PaperDACPath returns the evaluation configuration: 2x interpolation,
// NCO bypassed.
func PaperDACPath() *DACPath { return &DACPath{InterpolationFactor: 2} }

// Process runs a fabric-rate waveform through the datapath.
func (p *DACPath) Process(w Waveform) (Waveform, error) {
	out := w
	if p.NCO != nil {
		out = p.NCO.Mix(out)
	}
	switch p.InterpolationFactor {
	case 1:
	case 2:
		out = Interpolate2x(out)
	default:
		return nil, fmt.Errorf("pulse: unsupported interpolation factor %d", p.InterpolationFactor)
	}
	return out, nil
}
