package pulse

import "math"

// SamplingReport quantifies the adaptive-pulse-sampling benefit of one
// codec on one workload's pulse streams — the three quantities of Table 2.
type SamplingReport struct {
	Codec            string
	CompressionRatio float64 // compressed bytes / raw bytes (1.0 for raw)
	BandwidthGbps    float64 // effective per-DAC stream bandwidth
	DACsPerFPGA      int     // DAC channels one FPGA can feed over AXI
	DecodeLatencyNs  float64 // decoder pipeline latency on the feedback path
}

// FPGA fabric clock period (250 MHz, §6.1).
const fpgaCyclNs = 4.0

// AnalyzeSampling evaluates codec c on the concatenated per-qubit streams
// of a workload and returns the Table-2 quantities.
//
// Bandwidth: a raw DAC channel consumes 64 Gb/s (4 GSPS × 16 bit); the
// encoded stream consumes 64 × ratio. DAC density: the number of channels
// fitting in the AXI budget (256 Gb/s → 4 channels raw). Decode latency:
// pipeline fill time of the hardware decoder, derived from stream
// statistics (average Huffman code length; mean run length), in FPGA
// cycles of 4 ns.
func AnalyzeSampling(c Codec, streams map[int]Waveform) SamplingReport {
	var raw []byte
	for q := 0; q < len(streams); q++ {
		raw = append(raw, streams[q].Bytes()...)
	}
	ratio := Ratio(c, raw)
	bw := RawDACBandwidthGbps * ratio
	dacs := int(AXIBandwidthGbps / bw)
	return SamplingReport{
		Codec:            c.Name(),
		CompressionRatio: ratio,
		BandwidthGbps:    bw,
		DACsPerFPGA:      dacs,
		DecodeLatencyNs:  decodeLatencyNs(c, raw),
	}
}

// decodeLatencyNs models the hardware decoder's pipeline-fill latency.
func decodeLatencyNs(c Codec, raw []byte) float64 {
	switch c.(type) {
	case RawCodec:
		return 0 // no decoder on the path
	case HuffmanCodec:
		// Serial canonical decoder: one bit per cycle until the first symbol
		// resolves, behind a 2-stage input pipeline.
		return fpgaCyclNs * (2 + avgCodeBits(raw))
	case RLECodec:
		// Run-expansion decoder: 2-stage pipeline plus first-word fill —
		// long runs fill the 8-byte AXI word in a single cycle.
		fill := math.Ceil(8 / math.Min(math.Max(meanRunLength(raw), 1), 8))
		return fpgaCyclNs * (1 + fill)
	case CombinedCodec:
		// Run expander feeding the serial Huffman decoder, pipelined with
		// one cycle of overlap: the Huffman stage decodes the expanded code
		// stream of the original pulse bytes.
		huff := HuffmanCodec{}.Encode(raw)
		rleStage := fpgaCyclNs * (1 + math.Ceil(8/math.Min(math.Max(meanRunLength(huff), 1), 8)))
		huffStage := fpgaCyclNs * (2 + avgCodeBits(raw))
		return rleStage + huffStage - fpgaCyclNs // one cycle of overlap
	default:
		return fpgaCyclNs * 3
	}
}

// avgCodeBits returns the average canonical-Huffman code length of the
// stream, weighted by symbol frequency.
func avgCodeBits(src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	lengths := codeLengths(src)
	var freq [256]int
	for _, b := range src {
		freq[b]++
	}
	total := 0.0
	for s, f := range freq {
		total += float64(f) * float64(lengths[s])
	}
	return total / float64(len(src))
}

// meanRunLength returns the mean byte-run length of the stream.
func meanRunLength(src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	runs := 1
	for i := 1; i < len(src); i++ {
		if src[i] != src[i-1] {
			runs++
		}
	}
	return float64(len(src)) / float64(runs)
}
