package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// recover rebuilds the in-memory index from the on-disk journal and
// leaves the store ready to append: segments are scanned in order, every
// frame is length- and CRC-verified, a torn record at the tail of the
// final segment is truncated away (the crash-mid-write signature), and
// the final segment is reopened for appending. An empty or absent
// journal starts fresh at segment 1.
//
// Replay is idempotent so that a crash mid-compaction (which leaves both
// the old records and their rewritten copies on disk) recovers to the
// same state as either copy alone: duplicate job records are ignored,
// events are deduplicated by their monotonically increasing shot index,
// and the first terminal record wins.
func (s *Store) recover() error {
	indices, err := s.segIndices()
	if err != nil {
		return err
	}
	if len(indices) == 0 {
		return s.createSegment(1)
	}

	// staging holds per-id state including ids whose "job" record never
	// made it to disk (events written in the window before the submit
	// record was journaled — those jobs were never acknowledged, so they
	// are dropped at the end of the scan).
	type staging struct {
		js       *jobState
		declared bool
	}
	seen := map[string]*staging{}
	var order []string
	get := func(id string) *staging {
		st, ok := seen[id]
		if !ok {
			st = &staging{js: &jobState{id: id, lastShot: -1 << 62}}
			seen[id] = st
			order = append(order, id)
		}
		return st
	}

	for i, idx := range indices {
		last := i == len(indices)-1
		err := s.scanSegment(idx, last, func(l loc, rec record) {
			st := get(rec.ID)
			js := st.js
			switch rec.T {
			case "job":
				if !st.declared && rec.Req != nil {
					st.declared = true
					js.req = *rec.Req
					js.submittedAt = rec.At
					if js.lastShot < rec.Req.ShotOffset-1 {
						js.lastShot = rec.Req.ShotOffset - 1
					}
				}
			case "ev":
				if rec.Ev != nil && rec.Ev.Shot > js.lastShot {
					js.events = append(js.events, l)
					js.lastShot = rec.Ev.Shot
				}
			case "ckpt":
				if rec.N > js.checkpoint {
					js.checkpoint = rec.N
				}
			case "end":
				if !js.terminal() {
					js.state, js.errMsg, js.result = rec.State, rec.Err, rec.Res
					js.finishedAt = rec.At
				}
			}
		})
		if err != nil {
			return err
		}
	}

	for _, id := range order {
		st := seen[id]
		if !st.declared {
			continue // never acknowledged: no durability promise to keep
		}
		// A checkpoint can never exceed what survived on disk.
		if st.js.checkpoint > len(st.js.events) {
			st.js.checkpoint = len(st.js.events)
		}
		s.jobs[id] = st.js
		s.order = append(s.order, id)
		s.recoveredJobs++
	}

	// Reopen the final segment for appending.
	lastIdx := indices[len(indices)-1]
	f, err := os.OpenFile(s.segPath(lastIdx), os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() < int64(headerLen) {
		// The crash interrupted segment creation itself: rewrite the header.
		f.Close()
		return s.createSegment(lastIdx)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.seg = f
	s.segIdx = lastIdx
	s.segSize = info.Size()
	return nil
}

// scanSegment iterates one segment's verified records. On the final
// segment an invalid frame (short, oversized, CRC-mismatched or
// undecodable — a torn or corrupted tail) truncates the file at the
// failing record and ends the scan; on a sealed segment it is a hard
// error, because sealed segments were fsynced before the journal moved
// on and cannot legitimately hold torn writes.
func (s *Store) scanSegment(idx int, last bool, apply func(loc, record)) error {
	path := s.segPath(idx)
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if len(data) < headerLen || string(data[:headerLen]) != segMagic {
		if last {
			s.truncatedTails++
			return os.Truncate(path, 0)
		}
		return fmt.Errorf("store: segment %s: bad magic header", path)
	}
	off := int64(headerLen)
	for off < int64(len(data)) {
		bad := ""
		var payload []byte
		if int64(len(data))-off < frameLen {
			bad = "short frame"
		} else {
			n := binary.LittleEndian.Uint32(data[off : off+4])
			crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
			switch {
			case n > maxPayload:
				bad = fmt.Sprintf("implausible payload length %d", n)
			case off+frameLen+int64(n) > int64(len(data)):
				bad = "truncated payload"
			default:
				payload = data[off+frameLen : off+frameLen+int64(n)]
				if crc32.Checksum(payload, castagnoli) != crc {
					bad = "CRC mismatch"
				}
			}
		}
		var rec record
		if bad == "" {
			if err := json.Unmarshal(payload, &rec); err != nil {
				bad = fmt.Sprintf("undecodable payload: %v", err)
			}
		}
		if bad != "" {
			if !last {
				return fmt.Errorf("store: segment %s: %s at offset %d (corruption in a sealed segment)", path, bad, off)
			}
			s.truncatedTails++
			return os.Truncate(path, off)
		}
		apply(loc{seg: idx, off: off, n: int32(frameLen + len(payload))}, rec)
		off += frameLen + int64(len(payload))
	}
	return nil
}
