// Package store is arteryd's durability layer: a write-ahead-logged job
// store that survives crashes and restarts. Every accepted job, every
// merged per-shot event, a checkpoint every N merged shots and every
// terminal result is appended to an on-disk segment journal before (or as)
// it becomes externally visible, so that
//
//   - a restarted server serves finished jobs (status, result and full
//     event-stream replay) straight from disk, and
//   - a job killed mid-run resumes at its last durable shot and — because
//     the engine draws per-shot RNG streams by global index and every
//     result aggregate is a replayable fold over the event stream — the
//     stitched result and event stream are byte-identical to an
//     uninterrupted run.
//
// # Journal format
//
// A data dir holds numbered segment files (segment-%08d.wal), each
// beginning with an 8-byte magic header followed by framed records:
//
//	+----------------+----------------+===============+
//	| length (4B LE) | CRC32C (4B LE) | JSON payload  |
//	+----------------+----------------+===============+
//
// The CRC (Castagnoli) covers the payload. Appends go to the highest
// segment; once it exceeds the size cap the store rotates to a fresh one.
// Recovery scans segments in order, verifying every frame; a torn record
// at the tail of the final segment — the signature of a crash mid-write —
// is truncated away instead of failing recovery, while corruption in an
// earlier (sealed) segment is a hard error.
//
// Record payloads are one of four shapes, keyed by "t": "job" (the
// submitted request), "ev" (one merged shot event, with its per-stage
// latency deltas so results can be re-folded), "ckpt" (a durability
// barrier: every event up to N has been fsynced) and "end" (the terminal
// state and result).
//
// # Fsync policy
//
// FsyncAlways syncs after every record (strongest durability, slowest),
// FsyncInterval syncs on a background tick and at every checkpoint
// (bounded loss window — the default), FsyncNever leaves flushing to the
// OS (fastest; a power loss may drop the tail, which recovery then
// truncates). Checkpoint records force a sync under always and interval,
// which is what makes "resume from the last checkpoint" a guarantee
// rather than a hope.
//
// # Compaction
//
// Terminal jobs beyond the retention bound are dropped by a compaction
// pass that rewrites every retained record into fresh segments and then
// deletes the old ones. Compaction is crash-safe without atomic
// multi-file renames because recovery is idempotent: duplicate job
// records are ignored and duplicate events are deduplicated by their
// monotonically increasing shot index, so a crash that leaves both the
// old and the rewritten copies on disk recovers to the same state.
package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"artery/api"
	"artery/internal/trace"
)

// Policy selects when journal appends reach stable storage.
type Policy int

const (
	// FsyncInterval syncs dirty segments on a background tick and at
	// every checkpoint record (the default).
	FsyncInterval Policy = iota
	// FsyncAlways syncs after every appended record.
	FsyncAlways
	// FsyncNever never calls fsync; the OS flushes when it pleases.
	FsyncNever
)

// String renders the policy's flag spelling.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParsePolicy maps the -fsync flag spellings onto policies.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "", "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (always|interval|never)", s)
}

// Config sizes a store. Zero values select the documented defaults; Dir
// is required.
type Config struct {
	// Dir is the data directory. Created (with parents) if absent.
	Dir string
	// SegmentBytes caps one segment file before rotation (default 64 MiB).
	SegmentBytes int64
	// Fsync selects the durability policy (default FsyncInterval).
	Fsync Policy
	// FsyncEvery is the interval policy's sync period (default 100ms).
	FsyncEvery time.Duration
	// Retain bounds the terminal jobs kept in the journal: beyond it (plus
	// a quarter of slack, so compaction amortizes) the oldest terminal
	// jobs are compacted away (default 4096).
	Retain int
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes == 0 {
		c.SegmentBytes = 64 << 20
	}
	if c.FsyncEvery == 0 {
		c.FsyncEvery = 100 * time.Millisecond
	}
	if c.Retain == 0 {
		c.Retain = 4096
	}
	return c
}

const (
	segMagic   = "ARTYWAL1"
	headerLen  = len(segMagic)
	frameLen   = 8 // 4B length + 4B CRC32C
	maxPayload = 16 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// record is the JSON payload of one journal frame.
type record struct {
	T     string         `json:"t"` // "job" | "ev" | "ckpt" | "end"
	ID    string         `json:"id"`
	At    int64          `json:"at,omitempty"` // unix nanos (job, end)
	Req   *api.Request   `json:"req,omitempty"`
	Ev    *api.ShotEvent `json:"ev,omitempty"`
	N     int            `json:"n,omitempty"` // ckpt: events durable so far
	State string         `json:"state,omitempty"`
	Err   string         `json:"err,omitempty"`
	Res   *api.Result    `json:"res,omitempty"`
}

// loc addresses one framed record on disk.
type loc struct {
	seg int
	off int64
	n   int32
}

// jobState is the in-memory index of one journaled job.
type jobState struct {
	id          string
	req         api.Request
	submittedAt int64
	events      []loc
	lastShot    int // highest journaled event shot index (dedup guard)
	checkpoint  int
	state       string // "" while live
	errMsg      string
	result      *api.Result
	finishedAt  int64
}

func (js *jobState) terminal() bool { return js.state != "" }

// Store is a durable job journal. All appends are serialized by mu;
// reads address sealed bytes via ReadAt and need no lock beyond the
// index snapshot. Safe for concurrent use.
type Store struct {
	cfg Config

	mu      sync.Mutex
	seg     *os.File
	segIdx  int
	segSize int64
	dirty   bool
	closed  bool
	jobs    map[string]*jobState
	order   []string // ids in first-journaled order (compaction ordering)

	stopSync chan struct{}
	syncWG   sync.WaitGroup

	// Recovery tallies, surfaced as counters once Instrument is called.
	recoveredJobs  int
	truncatedTails int

	m storeMetrics
}

// storeMetrics are the journal instruments (nil-safe until Instrument).
type storeMetrics struct {
	appended      *trace.Counter
	fsyncs        *trace.Counter
	recovered     *trace.Counter
	truncated     *trace.Counter
	appendErrs    *trace.Counter
	compactions   *trace.Counter
	appendSeconds *trace.Histogram
}

// Open opens (creating if needed) the store rooted at cfg.Dir, scanning
// any existing journal: sealed segments are verified record by record, a
// torn tail on the final segment is truncated away, and the in-memory
// job index is rebuilt. The returned store is ready for appends.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: Dir is required")
	}
	cfg = cfg.withDefaults()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		cfg:      cfg,
		jobs:     map[string]*jobState{},
		stopSync: make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	if cfg.Fsync == FsyncInterval {
		s.syncWG.Add(1)
		go s.syncLoop()
	}
	return s, nil
}

// syncLoop is the interval policy's background flusher.
func (s *Store) syncLoop() {
	defer s.syncWG.Done()
	t := time.NewTicker(s.cfg.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopSync:
			return
		case <-t.C:
			s.mu.Lock()
			s.syncLocked()
			s.mu.Unlock()
		}
	}
}

// syncLocked fsyncs the active segment if it has unsynced bytes.
func (s *Store) syncLocked() {
	if !s.dirty || s.seg == nil || s.closed {
		return
	}
	if err := s.seg.Sync(); err == nil {
		s.dirty = false
		s.m.fsyncs.Inc()
	}
}

// Close flushes and closes the journal. Further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	var err error
	if s.seg != nil {
		if s.cfg.Fsync != FsyncNever {
			if serr := s.seg.Sync(); serr == nil {
				s.m.fsyncs.Inc()
			}
		}
		err = s.seg.Close()
		s.seg = nil
	}
	s.mu.Unlock()
	close(s.stopSync)
	s.syncWG.Wait()
	return err
}

// Instrument registers the store's counters and append-latency histogram
// on reg, retro-crediting the tallies of the recovery scan that ran in
// Open (before any registry existed).
func (s *Store) Instrument(reg *trace.Registry) {
	s.m = storeMetrics{
		appended:      reg.Counter("artery_store_records_appended_total", "journal records appended"),
		fsyncs:        reg.Counter("artery_store_fsyncs_total", "journal fsync calls"),
		recovered:     reg.Counter("artery_store_jobs_recovered_total", "jobs rebuilt from the journal at startup"),
		truncated:     reg.Counter("artery_store_truncated_tails_total", "torn tail records truncated during recovery"),
		appendErrs:    reg.Counter("artery_store_append_errors_total", "journal appends that failed (job kept running, durability degraded)"),
		compactions:   reg.Counter("artery_store_compactions_total", "journal compaction passes"),
		appendSeconds: reg.Histogram("artery_store_append_seconds", "journal append latency (marshal + write + policy fsync)", appendSecondsBuckets()),
	}
	s.m.recovered.Add(int64(s.recoveredJobs))
	s.m.truncated.Add(int64(s.truncatedTails))
}

// appendSecondsBuckets spans microsecond in-page-cache appends through
// multi-millisecond fsync-always appends on spinning disks.
func appendSecondsBuckets() []float64 {
	return []float64{
		1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 5e-2,
	}
}

// segPath renders a segment file path.
func (s *Store) segPath(idx int) string {
	return filepath.Join(s.cfg.Dir, fmt.Sprintf("segment-%08d.wal", idx))
}

// segIndices lists the existing segment indices in ascending order.
func (s *Store) segIndices() ([]int, error) {
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []int
	for _, e := range ents {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "segment-%d.wal", &idx); err == nil &&
			e.Name() == fmt.Sprintf("segment-%08d.wal", idx) {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out, nil
}

// createSegment makes segment idx with its magic header and adopts it as
// the append target. Callers hold mu (or are single-threaded in Open).
func (s *Store) createSegment(idx int) error {
	f, err := os.OpenFile(s.segPath(idx), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.WriteString(segMagic); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if s.seg != nil {
		if s.cfg.Fsync != FsyncNever {
			s.seg.Sync()
		}
		s.seg.Close()
	}
	s.seg = f
	s.segIdx = idx
	s.segSize = int64(headerLen)
	s.dirty = s.cfg.Fsync != FsyncNever
	return nil
}

// frame renders one record as its on-disk frame.
func frame(rec record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, frameLen+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameLen:], payload)
	return buf, nil
}

// appendLocked writes one framed record to the active segment, returning
// its location. Rotation happens after the write so a record never
// straddles segments. Callers hold mu.
func (s *Store) appendLocked(rec record, syncNow bool) (loc, error) {
	if s.closed {
		return loc{}, fmt.Errorf("store: closed")
	}
	buf, err := frame(rec)
	if err != nil {
		s.m.appendErrs.Inc()
		return loc{}, fmt.Errorf("store: marshal: %w", err)
	}
	start := time.Now()
	l := loc{seg: s.segIdx, off: s.segSize, n: int32(len(buf))}
	if _, err := s.seg.Write(buf); err != nil {
		s.m.appendErrs.Inc()
		return loc{}, fmt.Errorf("store: append: %w", err)
	}
	s.segSize += int64(len(buf))
	switch {
	case s.cfg.Fsync == FsyncAlways, syncNow && s.cfg.Fsync == FsyncInterval:
		if err := s.seg.Sync(); err == nil {
			s.dirty = false
			s.m.fsyncs.Inc()
		}
	case s.cfg.Fsync == FsyncInterval:
		s.dirty = true
	}
	if s.segSize >= s.cfg.SegmentBytes {
		if err := s.createSegment(s.segIdx + 1); err != nil {
			s.m.appendErrs.Inc()
			return loc{}, err
		}
	}
	s.m.appendSeconds.Observe(time.Since(start).Seconds())
	s.m.appended.Inc()
	return l, nil
}

// JobSubmitted journals an accepted request. Call before acknowledging
// the submission (the 202): once the client holds the id, the job is
// durable.
func (s *Store) JobSubmitted(id string, req api.Request) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		js = &jobState{id: id, req: req, lastShot: req.ShotOffset - 1}
		s.jobs[id] = js
		s.order = append(s.order, id)
	}
	js.submittedAt = time.Now().UnixNano()
	_, err := s.appendLocked(record{T: "job", ID: id, At: js.submittedAt, Req: &req}, false)
	return err
}

// ShotEvent journals one merged per-shot event. Events must arrive in
// shot order (the engine's merge path guarantees it); they must carry
// their per-stage latency deltas so a recovered job's result can be
// re-folded bit-identically.
func (s *Store) ShotEvent(id string, ev api.ShotEvent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("store: event for unknown job %q", id)
	}
	l, err := s.appendLocked(record{T: "ev", ID: id, Ev: &ev}, false)
	if err != nil {
		return err
	}
	js.events = append(js.events, l)
	js.lastShot = ev.Shot
	return nil
}

// Checkpoint journals a durability barrier: the first n events of the
// job are on stable storage once this returns (under the always and
// interval policies; never means never). Recovery resumes a killed job
// at its count of durable events, which this guarantees is at least the
// last checkpoint.
func (s *Store) Checkpoint(id string, n int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("store: checkpoint for unknown job %q", id)
	}
	if _, err := s.appendLocked(record{T: "ckpt", ID: id, N: n}, true); err != nil {
		return err
	}
	if n > js.checkpoint {
		js.checkpoint = n
	}
	return nil
}

// Terminal journals a job's end state (and, for done jobs, its result),
// then compacts the journal if the retention bound is exceeded.
func (s *Store) Terminal(id, state, errMsg string, res *api.Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("store: terminal record for unknown job %q", id)
	}
	if js.terminal() {
		return nil // idempotent: recovery may finalize a job twice
	}
	js.finishedAt = time.Now().UnixNano()
	if _, err := s.appendLocked(record{T: "end", ID: id, At: js.finishedAt, State: state, Err: errMsg, Res: res}, true); err != nil {
		return err
	}
	js.state, js.errMsg, js.result = state, errMsg, res
	if n := s.terminalCountLocked(); n >= s.cfg.Retain+s.cfg.Retain/4+1 {
		return s.compactLocked()
	}
	return nil
}

func (s *Store) terminalCountLocked() int {
	n := 0
	for _, js := range s.jobs {
		if js.terminal() {
			n++
		}
	}
	return n
}

// JobRecord is the index view of one journaled job.
type JobRecord struct {
	ID  string
	Req api.Request
	// Events is the number of durable per-shot events.
	Events int
	// Checkpoint is the highest journaled checkpoint (always <= Events
	// after recovery).
	Checkpoint int
	// State is "" while the job has no terminal record (it was live when
	// the process died, or still is).
	State  string
	Error  string
	Result *api.Result
	// SubmittedAt / FinishedAt bound the job's wall-clock life.
	SubmittedAt time.Time
	FinishedAt  time.Time
}

func (js *jobState) recordView() JobRecord {
	return JobRecord{
		ID:          js.id,
		Req:         js.req,
		Events:      len(js.events),
		Checkpoint:  js.checkpoint,
		State:       js.state,
		Error:       js.errMsg,
		Result:      js.result,
		SubmittedAt: time.Unix(0, js.submittedAt),
		FinishedAt:  time.Unix(0, js.finishedAt),
	}
}

// Jobs snapshots every journaled job in first-journaled order.
func (s *Store) Jobs() []JobRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobRecord, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].recordView())
	}
	return out
}

// Lookup returns the index view of one job.
func (s *Store) Lookup(id string) (JobRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, ok := s.jobs[id]
	if !ok {
		return JobRecord{}, false
	}
	return js.recordView(), true
}

// Events reads a job's durable per-shot events starting at index from,
// in shot order, straight from the journal segments. The returned events
// carry their stage deltas (as journaled).
func (s *Store) Events(id string, from int) ([]api.ShotEvent, error) {
	s.mu.Lock()
	js, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("store: unknown job %q", id)
	}
	if from < 0 {
		from = 0
	}
	if from > len(js.events) {
		from = len(js.events)
	}
	locs := append([]loc(nil), js.events[from:]...)
	s.mu.Unlock()

	out := make([]api.ShotEvent, 0, len(locs))
	var f *os.File
	var fSeg = -1
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for _, l := range locs {
		if l.seg != fSeg {
			if f != nil {
				f.Close()
			}
			var err error
			f, err = os.Open(s.segPath(l.seg))
			if err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
			fSeg = l.seg
		}
		rec, err := readFrameAt(f, l)
		if err != nil {
			return nil, err
		}
		if rec.T != "ev" || rec.Ev == nil {
			return nil, fmt.Errorf("store: record at segment %d offset %d is %q, want ev", l.seg, l.off, rec.T)
		}
		out = append(out, *rec.Ev)
	}
	return out, nil
}

// readFrameAt reads and verifies one framed record at a known location.
func readFrameAt(f *os.File, l loc) (record, error) {
	buf := make([]byte, l.n)
	if _, err := f.ReadAt(buf, l.off); err != nil {
		return record{}, fmt.Errorf("store: read: %w", err)
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	if int(n) != len(buf)-frameLen {
		return record{}, fmt.Errorf("store: frame length mismatch at offset %d", l.off)
	}
	crc := binary.LittleEndian.Uint32(buf[4:8])
	payload := buf[frameLen:]
	if crc32.Checksum(payload, castagnoli) != crc {
		return record{}, fmt.Errorf("store: CRC mismatch at offset %d", l.off)
	}
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return record{}, fmt.Errorf("store: decode: %w", err)
	}
	return rec, nil
}

// Compact drops the oldest terminal jobs beyond the retention bound,
// rewriting every retained record into fresh segments and deleting the
// old ones. Live (unfinished) jobs are always retained. Safe to call at
// any time; a crash mid-compaction recovers cleanly because recovery
// deduplicates replayed records.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	cut := s.terminalCountLocked() - s.cfg.Retain
	if cut <= 0 {
		return nil
	}
	drop := make(map[string]bool, cut)
	for _, id := range s.order {
		if cut == 0 {
			break
		}
		if s.jobs[id].terminal() {
			drop[id] = true
			cut--
		}
	}

	// Rewrite the keepers into fresh segments. Event payloads are read
	// back from the old segments before those are deleted.
	firstNew := s.segIdx + 1
	if err := s.createSegment(firstNew); err != nil {
		return err
	}
	keep := make([]string, 0, len(s.order)-len(drop))
	for _, id := range s.order {
		if drop[id] {
			continue
		}
		keep = append(keep, id)
		js := s.jobs[id]
		events, err := s.readEventsLocked(js)
		if err != nil {
			return err
		}
		if _, err := s.appendLocked(record{T: "job", ID: id, At: js.submittedAt, Req: &js.req}, false); err != nil {
			return err
		}
		js.events = js.events[:0]
		for i := range events {
			l, err := s.appendLocked(record{T: "ev", ID: id, Ev: &events[i]}, false)
			if err != nil {
				return err
			}
			js.events = append(js.events, l)
		}
		if js.checkpoint > 0 {
			if _, err := s.appendLocked(record{T: "ckpt", ID: id, N: js.checkpoint}, false); err != nil {
				return err
			}
		}
		if js.terminal() {
			if _, err := s.appendLocked(record{T: "end", ID: id, At: js.finishedAt, State: js.state, Err: js.errMsg, Res: js.result}, false); err != nil {
				return err
			}
		}
	}
	s.syncLocked()
	if s.cfg.Fsync == FsyncNever {
		// Deleting the only copy of the old records demands the new copy
		// be durable first, whatever the append policy says.
		if err := s.seg.Sync(); err == nil {
			s.m.fsyncs.Inc()
		}
	}
	for idx := firstNew - 1; ; idx-- {
		path := s.segPath(idx)
		if _, err := os.Stat(path); err != nil {
			break
		}
		os.Remove(path)
	}
	for id := range drop {
		delete(s.jobs, id)
	}
	s.order = keep
	s.m.compactions.Inc()
	return nil
}

// readEventsLocked reads a job's events while holding mu (compaction
// path — appends are frozen, so locations cannot move underneath).
func (s *Store) readEventsLocked(js *jobState) ([]api.ShotEvent, error) {
	out := make([]api.ShotEvent, 0, len(js.events))
	var f *os.File
	fSeg := -1
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	for _, l := range js.events {
		if l.seg != fSeg {
			if f != nil {
				f.Close()
			}
			var err error
			f, err = os.Open(s.segPath(l.seg))
			if err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
			fSeg = l.seg
		}
		rec, err := readFrameAt(f, l)
		if err != nil {
			return nil, err
		}
		out = append(out, *rec.Ev)
	}
	return out, nil
}

// RecoveredJobs reports how many jobs the opening scan rebuilt.
func (s *Store) RecoveredJobs() int { return s.recoveredJobs }

// TruncatedTails reports how many torn tail records the opening scan
// truncated away.
func (s *Store) TruncatedTails() int { return s.truncatedTails }

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.cfg.Dir }
