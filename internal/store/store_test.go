package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"artery/api"
	"artery/internal/trace"
)

// testReq is a minimal valid request for journaling tests (the store
// never interprets it beyond round-tripping the JSON).
func testReq(shots int) api.Request {
	return api.Request{Workload: "qrw", Param: 4, Shots: shots, Seed: 7}
}

// testEvent builds a deterministic per-shot event with stage deltas, as
// the merge path journals them.
func testEvent(shot int) api.ShotEvent {
	f := 0.5 + float64(shot%7)/100
	return api.ShotEvent{
		Shot:      shot,
		LatencyNs: 100 + float64(shot),
		Fidelity:  &f,
		Sites:     3,
		Commits:   2,
		Correct:   1,
		Stages: []api.StageDelta{
			{Stage: "readout", Ns: 40 + float64(shot)},
			{Stage: "predict", Ns: 5},
		},
	}
}

func openStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", cfg.Dir, err)
	}
	return s
}

// journalJob writes one job with n events (and optionally a terminal
// record) through the public API.
func journalJob(t *testing.T, s *Store, id string, n int, done bool) {
	t.Helper()
	if err := s.JobSubmitted(id, testReq(n)); err != nil {
		t.Fatalf("JobSubmitted(%s): %v", id, err)
	}
	for i := 0; i < n; i++ {
		if err := s.ShotEvent(id, testEvent(i)); err != nil {
			t.Fatalf("ShotEvent(%s, %d): %v", id, i, err)
		}
	}
	if done {
		res := &api.Result{Workload: "QRW-4", Controller: "ARTERY", Shots: n, Accuracy: 1}
		if err := s.Terminal(id, "done", "", res); err != nil {
			t.Fatalf("Terminal(%s): %v", id, err)
		}
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	journalJob(t, s, "job-1", 5, true)
	journalJob(t, s, "job-2", 3, false)
	if err := s.Checkpoint("job-2", 2); err != nil {
		t.Fatal(err)
	}
	want1, _ := s.Events("job-1", 0)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, Config{Dir: dir})
	defer s2.Close()
	if got := s2.RecoveredJobs(); got != 2 {
		t.Fatalf("recovered %d jobs, want 2", got)
	}
	rec1, ok := s2.Lookup("job-1")
	if !ok || rec1.State != "done" || rec1.Events != 5 || rec1.Result == nil || rec1.Result.Shots != 5 {
		t.Fatalf("job-1 after reopen: %+v (ok=%v)", rec1, ok)
	}
	rec2, ok := s2.Lookup("job-2")
	if !ok || rec2.State != "" || rec2.Events != 3 || rec2.Checkpoint != 2 {
		t.Fatalf("job-2 after reopen: %+v (ok=%v)", rec2, ok)
	}
	got1, err := s2.Events("job-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(want1)
	b, _ := json.Marshal(got1)
	if !bytes.Equal(a, b) {
		t.Errorf("job-1 events drifted across reopen:\nbefore: %s\nafter:  %s", a, b)
	}
	// The reopened store appends where the old one left off.
	if err := s2.ShotEvent("job-2", testEvent(3)); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// corruptTail appends raw garbage to the newest segment, simulating a
// crash mid-write (a torn frame).
func corruptTail(t *testing.T, dir string, garbage []byte) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "segment-*.wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	last := segs[len(segs)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return last
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	journalJob(t, s, "job-1", 4, false)
	s.Close()

	// A partial frame: a plausible header promising more bytes than exist.
	corruptTail(t, dir, []byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'x', 'y'})

	s2 := openStore(t, Config{Dir: dir})
	if s2.TruncatedTails() != 1 {
		t.Errorf("truncated %d tails, want 1", s2.TruncatedTails())
	}
	rec, ok := s2.Lookup("job-1")
	if !ok || rec.Events != 4 {
		t.Fatalf("job-1 after torn tail: %+v (ok=%v)", rec, ok)
	}
	// The truncated journal accepts appends and survives another reopen
	// (double-restart idempotence over a repaired tail).
	if err := s2.ShotEvent("job-1", testEvent(4)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openStore(t, Config{Dir: dir})
	defer s3.Close()
	if rec, _ := s3.Lookup("job-1"); rec.Events != 5 {
		t.Errorf("job-1 after repair + append + reopen: %d events, want 5", rec.Events)
	}
	if s3.TruncatedTails() != 0 {
		t.Errorf("second recovery truncated %d tails, want 0", s3.TruncatedTails())
	}
}

func TestCRCCorruptionTruncatesFinalSegment(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	journalJob(t, s, "job-1", 6, false)
	s.Close()

	// Flip one payload byte of the fourth event record: recovery must keep
	// everything before it and drop it plus the records after it.
	segs, _ := filepath.Glob(filepath.Join(dir, "segment-*.wal"))
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	idx := bytes.Index(data, []byte(`"shot":3`))
	if idx < 0 {
		t.Fatal("marker record not found")
	}
	data[idx+7] ^= 0x01
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, Config{Dir: dir})
	defer s2.Close()
	if s2.TruncatedTails() != 1 {
		t.Errorf("truncated %d tails, want 1", s2.TruncatedTails())
	}
	rec, ok := s2.Lookup("job-1")
	if !ok || rec.Events != 3 {
		t.Fatalf("after CRC corruption at event 3: %+v (ok=%v), want 3 events", rec, ok)
	}
	evs, err := s2.Events("job-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range evs {
		if ev.Shot != i {
			t.Errorf("event %d carries shot %d", i, ev.Shot)
		}
	}
}

func TestCorruptSealedSegmentIsHardError(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation, sealing early segments.
	s := openStore(t, Config{Dir: dir, SegmentBytes: 256})
	journalJob(t, s, "job-1", 20, true)
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "segment-*.wal"))
	if len(segs) < 3 {
		t.Fatalf("only %d segments; rotation did not happen", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir}); err == nil || !strings.Contains(err.Error(), "sealed") {
		t.Fatalf("Open over a corrupt sealed segment: err = %v, want sealed-segment error", err)
	}
}

func TestRotationSpansSegments(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, SegmentBytes: 512})
	journalJob(t, s, "job-1", 40, true)
	want, _ := s.Events("job-1", 0)
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "segment-*.wal"))
	if len(segs) < 2 {
		t.Fatalf("only %d segments; rotation did not happen", len(segs))
	}
	s2 := openStore(t, Config{Dir: dir, SegmentBytes: 512})
	defer s2.Close()
	got, err := s2.Events("job-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("events drifted across a segment-spanning reopen")
	}
	// Partial reads honor the from cursor across the segment boundary.
	tail, err := s2.Events("job-1", 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(tail) != 5 || tail[0].Shot != 35 {
		t.Errorf("Events(from=35): %d events starting at shot %v", len(tail), tail[0].Shot)
	}
}

func TestCompactionDropsOldTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, Retain: 2, SegmentBytes: 1 << 20})
	for i := 1; i <= 6; i++ {
		journalJob(t, s, "job-"+string(rune('0'+i)), 3, true)
	}
	journalJob(t, s, "job-live", 2, false)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup("job-1"); ok {
		t.Error("oldest terminal job survived compaction")
	}
	if _, ok := s.Lookup("job-6"); !ok {
		t.Error("newest terminal job compacted away")
	}
	if rec, ok := s.Lookup("job-live"); !ok || rec.Events != 2 || rec.State != "" {
		t.Errorf("live job after compaction: %+v (ok=%v)", rec, ok)
	}
	s.Close()
	// The compacted journal recovers to the same state.
	s2 := openStore(t, Config{Dir: dir, Retain: 2})
	defer s2.Close()
	if got := len(s2.Jobs()); got != 3 {
		t.Errorf("recovered %d jobs after compaction, want 3 (2 retained + 1 live)", got)
	}
	evs, err := s2.Events("job-6", 0)
	if err != nil || len(evs) != 3 {
		t.Errorf("job-6 events after compaction reopen: %d (%v)", len(evs), err)
	}
}

func TestAutoCompactionOnTerminal(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, Retain: 4})
	defer s.Close()
	for i := 0; i < 12; i++ {
		journalJob(t, s, "job-"+string(rune('a'+i)), 1, true)
	}
	// Retention 4 + slack 1 + 1 = 6 triggers the pass; the population must
	// never exceed the trigger threshold.
	if n := len(s.Jobs()); n > 6 {
		t.Errorf("%d jobs retained, want <= 6 (retain=4 plus slack)", n)
	}
}

func TestDoubleRestartIdempotence(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	journalJob(t, s, "job-1", 8, true)
	journalJob(t, s, "job-2", 4, false)
	s.Close()

	var snaps [][]JobRecord
	for i := 0; i < 3; i++ {
		si := openStore(t, Config{Dir: dir})
		snaps = append(snaps, si.Jobs())
		si.Close()
	}
	for i := 1; i < len(snaps); i++ {
		a, _ := json.Marshal(snaps[0])
		b, _ := json.Marshal(snaps[i])
		if !bytes.Equal(a, b) {
			t.Errorf("restart %d drifted:\nfirst: %s\nlater: %s", i, a, b)
		}
	}
}

// TestUndeclaredEventsDropped: event records whose job record never made
// it to disk (the job was never acknowledged) are dropped at recovery —
// no durability promise was made for that id.
func TestUndeclaredEventsDropped(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	journalJob(t, s, "job-1", 2, false)
	s.Close()

	// Hand-craft a valid event frame for an id with no job record.
	ev := testEvent(0)
	buf, err := frame(record{T: "ev", ID: "job-ghost", Ev: &ev})
	if err != nil {
		t.Fatal(err)
	}
	corruptTail(t, dir, buf)

	s2 := openStore(t, Config{Dir: dir})
	defer s2.Close()
	if _, ok := s2.Lookup("job-ghost"); ok {
		t.Error("undeclared job resurrected from orphan events")
	}
	if rec, _ := s2.Lookup("job-1"); rec.Events != 2 {
		t.Errorf("declared job lost events: %d, want 2", rec.Events)
	}
}

// TestRecoveryDeduplicatesReplayedRecords: a crash mid-compaction leaves
// both the old records and their rewritten copies; replay must converge
// to one copy (events deduped by shot, first terminal record wins).
func TestRecoveryDeduplicatesReplayedRecords(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	journalJob(t, s, "job-1", 3, true)
	s.Close()

	// Append duplicates of the job, its events and its end record — the
	// crash-mid-compaction signature.
	req := testReq(3)
	var dup []byte
	for _, rec := range []record{
		{T: "job", ID: "job-1", Req: &req},
		func() record { e := testEvent(0); return record{T: "ev", ID: "job-1", Ev: &e} }(),
		func() record { e := testEvent(1); return record{T: "ev", ID: "job-1", Ev: &e} }(),
		{T: "end", ID: "job-1", State: "failed", Err: "imposter"},
	} {
		b, err := frame(rec)
		if err != nil {
			t.Fatal(err)
		}
		dup = append(dup, b...)
	}
	corruptTail(t, dir, dup)

	s2 := openStore(t, Config{Dir: dir})
	defer s2.Close()
	rec, ok := s2.Lookup("job-1")
	if !ok || rec.Events != 3 || rec.State != "done" || rec.Error != "" {
		t.Fatalf("replayed duplicates changed the job: %+v (ok=%v)", rec, ok)
	}
}

func TestCheckpointClampedToDurableEvents(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	journalJob(t, s, "job-1", 3, false)
	// A checkpoint claiming more events than the journal holds (possible
	// if event frames past it were torn away) must clamp at recovery.
	if err := s.Checkpoint("job-1", 99); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, Config{Dir: dir})
	defer s2.Close()
	if rec, _ := s2.Lookup("job-1"); rec.Checkpoint != 3 {
		t.Errorf("checkpoint %d after recovery, want clamped to 3", rec.Checkpoint)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		err  bool
	}{
		{"always", FsyncAlways, false},
		{"interval", FsyncInterval, false},
		{"", FsyncInterval, false},
		{"never", FsyncNever, false},
		{"sometimes", 0, true},
	} {
		p, err := ParsePolicy(tc.in)
		if (err != nil) != tc.err || (err == nil && p != tc.want) {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v (err=%v)", tc.in, p, err, tc.want, tc.err)
		}
	}
	if FsyncAlways.String() != "always" || FsyncInterval.String() != "interval" || FsyncNever.String() != "never" {
		t.Error("Policy.String does not round-trip the flag spellings")
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, p := range []Policy{FsyncAlways, FsyncInterval, FsyncNever} {
		dir := t.TempDir()
		s := openStore(t, Config{Dir: dir, Fsync: p})
		journalJob(t, s, "job-1", 5, true)
		s.Close()
		s2 := openStore(t, Config{Dir: dir, Fsync: p})
		if rec, ok := s2.Lookup("job-1"); !ok || rec.Events != 5 || rec.State != "done" {
			t.Errorf("fsync=%s: %+v (ok=%v)", p, rec, ok)
		}
		s2.Close()
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Fatal("Open without Dir succeeded")
	}
}

func TestEventsUnknownJob(t *testing.T) {
	s := openStore(t, Config{Dir: t.TempDir()})
	defer s.Close()
	if _, err := s.Events("job-nope", 0); err == nil {
		t.Error("Events for unknown job succeeded")
	}
	if err := s.ShotEvent("job-nope", testEvent(0)); err == nil {
		t.Error("ShotEvent for unknown job succeeded")
	}
	if err := s.Checkpoint("job-nope", 1); err == nil {
		t.Error("Checkpoint for unknown job succeeded")
	}
	if err := s.Terminal("job-nope", "done", "", nil); err == nil {
		t.Error("Terminal for unknown job succeeded")
	}
}

func TestInstrumentCountsAppendsAndRecovery(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	journalJob(t, s, "job-1", 4, false)
	s.Close()
	corruptTail(t, dir, []byte{0x40, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef})

	s2 := openStore(t, Config{Dir: dir, FsyncEvery: time.Millisecond})
	defer s2.Close()
	reg := trace.NewRegistry()
	s2.Instrument(reg)
	if err := s2.ShotEvent("job-1", testEvent(4)); err != nil {
		t.Fatal(err)
	}
	// The interval sync loop must flush the dirty segment.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		reg.WriteProm(&buf)
		out := buf.String()
		if strings.Contains(out, "artery_store_records_appended_total 1") &&
			strings.Contains(out, "artery_store_jobs_recovered_total 1") &&
			strings.Contains(out, "artery_store_truncated_tails_total 1") &&
			strings.Contains(out, "artery_store_fsyncs_total") &&
			!strings.Contains(out, "artery_store_fsyncs_total 0\n") {
			if s2.Dir() != dir {
				t.Errorf("Dir() = %q, want %q", s2.Dir(), dir)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	var buf bytes.Buffer
	reg.WriteProm(&buf)
	t.Fatalf("instrumented counters never converged:\n%s", buf.String())
}

func TestBadMagicHeader(t *testing.T) {
	// A final segment too short to hold the magic header (crash during
	// segment creation) is truncated and recreated; a sealed one is fatal.
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir})
	journalJob(t, s, "job-1", 2, false)
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "segment-00000002.wal"), []byte("AR"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, Config{Dir: dir})
	if rec, ok := s2.Lookup("job-1"); !ok || rec.Events != 2 {
		t.Fatalf("job-1 after short-header segment: %+v (ok=%v)", rec, ok)
	}
	if err := s2.ShotEvent("job-1", testEvent(2)); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	dir2 := t.TempDir()
	s3 := openStore(t, Config{Dir: dir2, SegmentBytes: 256})
	journalJob(t, s3, "job-1", 20, false)
	s3.Close()
	if err := os.WriteFile(filepath.Join(dir2, "segment-00000001.wal"), []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir2}); err == nil {
		t.Fatal("Open over a sealed segment with bad magic succeeded")
	}
}

func TestClosedStoreRejectsAppends(t *testing.T) {
	s := openStore(t, Config{Dir: t.TempDir()})
	journalJob(t, s, "job-1", 1, false)
	s.Close()
	if err := s.ShotEvent("job-1", testEvent(1)); err == nil {
		t.Error("append after Close succeeded")
	}
}
