// Package stats provides the deterministic random-number generation and
// small-sample statistics used throughout the ARTERY simulators.
//
// Every stochastic component in the repository (readout noise, Monte-Carlo
// quantum trajectories, workload generation) draws from an explicit *RNG so
// that experiments are reproducible from a single seed. The generator is
// xoshiro256** seeded via splitmix64, which is fast, has a 256-bit state and
// passes BigCrush; we implement it locally because experiments must not
// depend on the (version-dependent) stream of math/rand.
package stats

import "math"

// RNG is a deterministic xoshiro256** pseudo-random generator.
// The zero value is not valid; construct with NewRNG.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for Box-Muller
	spare    float64
	hasSpare bool
}

// splitmix64 advances a 64-bit state and returns the next output.
// It is the recommended seeding function for xoshiro generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator deterministically seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split returns a new generator whose stream is independent of r's,
// derived from r's next output. The child is a value derived from r at the
// moment of the call; it shares no state with r afterwards, so it may be
// handed to another goroutine. Splitting is deterministic: the i-th Split
// of a generator seeded with s always yields the same child stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// SplitN returns n generators with mutually independent streams, the i-th
// derived from r's i-th next output (so the result is reproducible from
// r's state alone). It consumes exactly n draws from r. This is how the
// engine pre-derives one stream per shot index before fanning shots out
// over a worker pool: the assignment of streams to shots depends only on
// the caller's seed, never on worker count or scheduling order.
func (r *RNG) SplitN(n int) []*RNG {
	if n < 0 {
		panic("stats: SplitN called with n < 0")
	}
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Norm returns a standard normal deviate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	u, v := r.normPair()
	r.spare = v
	r.hasSpare = true
	return u
}

// normPair generates one Box-Muller pair of standard normal deviates
// (Marsaglia polar rejection). Norm is defined in terms of normPair, so the
// two produce the same deviates from the same state, bit for bit.
func (r *RNG) normPair() (float64, float64) {
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	return u * f, v * f
}

// AddComplexNorm fills dst[i] = base[i] + complex(Norm()*sigma, Norm()*sigma),
// consuming exactly the same stream (and producing exactly the same sums,
// bit for bit) as the equivalent per-sample Norm loop — including the
// Box-Muller spare carried in from earlier Norm calls and left behind for
// later ones. A nil base is treated as all zeros (pure noise fill).
//
// It exists for the readout waveform hot path: synthesizing one 2 µs pulse
// draws 4000 deviates, and hoisting the spare bookkeeping out of the loop
// (plus batching the pair generation) is worth ~15% of pulse synthesis.
func (r *RNG) AddComplexNorm(dst, base []complex128, sigma float64) {
	if base != nil && len(base) != len(dst) {
		panic("stats: AddComplexNorm length mismatch")
	}
	if len(dst) == 0 {
		return
	}
	if !r.hasSpare {
		// Even phase: each sample consumes exactly one fresh pair.
		if base == nil {
			for i := range dst {
				a, b := r.normPair()
				dst[i] = complex(a*sigma, b*sigma)
			}
		} else {
			for i := range dst {
				a, b := r.normPair()
				dst[i] = base[i] + complex(a*sigma, b*sigma)
			}
		}
		return
	}
	// Odd phase: the carried spare seeds the first real part, and every
	// pair straddles two samples; the final leftover becomes the new spare.
	carry := r.spare
	if base == nil {
		for i := range dst {
			a, b := r.normPair()
			dst[i] = complex(carry*sigma, a*sigma)
			carry = b
		}
	} else {
		for i := range dst {
			a, b := r.normPair()
			dst[i] = base[i] + complex(carry*sigma, a*sigma)
			carry = b
		}
	}
	r.spare = carry
}

// NormMeanStd returns a normal deviate with the given mean and
// standard deviation.
func (r *RNG) NormMeanStd(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Exp returns an exponentially distributed deviate with the given mean.
// It panics if mean <= 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exp called with mean <= 0")
	}
	u := r.Float64()
	// Guard against log(0).
	if u == 0 {
		u = 0x1p-53
	}
	return -mean * math.Log(u)
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
