package stats

import (
	"math"
	"testing"
)

// TestAddComplexNormMatchesNormLoop is the draw-stream contract behind the
// readout synthesizer's bulk noise fill: AddComplexNorm must consume
// exactly the same Box-Muller stream as the per-sample
// complex(Norm(), Norm()) loop and produce bit-identical results — even
// when the generator enters with a cached Marsaglia-polar spare from an
// earlier odd-count draw sequence.
func TestAddComplexNormMatchesNormLoop(t *testing.T) {
	base := make([]complex128, 257) // odd length: leaves a spare behind
	for i := range base {
		base[i] = complex(float64(i)*0.25, -float64(i)*0.125)
	}
	for _, spare := range []int{0, 1} {
		for _, sigma := range []float64{0.0, 0.35, 2.0} {
			// Reference: the scalar per-sample loop, optionally entered in
			// the odd (carried-spare) Box-Muller phase via one warm-up Norm.
			ref := append([]complex128(nil), base...)
			c := NewRNG(11)
			for k := 0; k < spare; k++ {
				c.Norm()
			}
			for i := range ref {
				ref[i] += complex(c.Norm()*sigma, c.Norm()*sigma)
			}

			got := append([]complex128(nil), base...)
			d := NewRNG(11)
			for k := 0; k < spare; k++ {
				d.Norm()
			}
			d.AddComplexNorm(got, base, sigma)
			// AddComplexNorm overwrites dst with base + noise; rebuild ref
			// semantics to match: ref already is base + noise.
			for i := range ref {
				if math.Float64bits(real(ref[i])) != math.Float64bits(real(got[i])) ||
					math.Float64bits(imag(ref[i])) != math.Float64bits(imag(got[i])) {
					t.Fatalf("spare=%d sigma=%v: sample %d diverged: %v vs %v",
						spare, sigma, i, ref[i], got[i])
				}
			}
			// The generators must end in the same phase: next draws agree.
			if math.Float64bits(c.Norm()) != math.Float64bits(d.Norm()) {
				t.Fatalf("spare=%d sigma=%v: generator phase diverged after fill", spare, sigma)
			}
		}
	}
}

// TestAddComplexNormNilBase covers the pure-noise fill used for
// multiplexed line noise.
func TestAddComplexNormNilBase(t *testing.T) {
	n := 64
	ref := make([]complex128, n)
	a := NewRNG(5)
	for i := range ref {
		ref[i] = complex(a.Norm()*0.7, a.Norm()*0.7)
	}
	got := make([]complex128, n)
	for i := range got {
		got[i] = complex(99, 99) // must be overwritten, not accumulated
	}
	b := NewRNG(5)
	b.AddComplexNorm(got, nil, 0.7)
	for i := range ref {
		if math.Float64bits(real(ref[i])) != math.Float64bits(real(got[i])) ||
			math.Float64bits(imag(ref[i])) != math.Float64bits(imag(got[i])) {
			t.Fatalf("sample %d: %v vs %v", i, ref[i], got[i])
		}
	}
}

func TestAddComplexNormLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	NewRNG(1).AddComplexNorm(make([]complex128, 4), make([]complex128, 5), 1)
}

func TestAddComplexNormZeroAllocs(t *testing.T) {
	dst := make([]complex128, 512)
	base := make([]complex128, 512)
	r := NewRNG(3)
	if n := testing.AllocsPerRun(10, func() { r.AddComplexNorm(dst, base, 0.5) }); n != 0 {
		t.Fatalf("AddComplexNorm allocates %.1f times per call, want 0", n)
	}
}
