package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestRNGZeroSeedValid(t *testing.T) {
	r := NewRNG(0)
	saw := map[uint64]bool{}
	for i := 0; i < 10; i++ {
		saw[r.Uint64()] = true
	}
	if len(saw) < 10 {
		t.Fatalf("zero-seeded RNG produced repeats: %d unique of 10", len(saw))
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		ss += x * x
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	if m := sum / n; math.Abs(m-3.0) > 0.05 {
		t.Fatalf("exp mean = %v, want ~3", m)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(23)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams collide %d times", same)
	}
}

func TestSplitNStreamsDoNotCollide(t *testing.T) {
	// The engine hands one SplitN stream to every shot worker; any overlap
	// between streams would correlate shots. Draw 1e5 values from each of 8
	// streams and require every value to be globally unique (for 8e5 draws
	// of a 64-bit generator a single collision is ~2^-24 unlikely, so one
	// is evidence of stream overlap, not chance).
	const streams, draws = 8, 100_000
	rs := NewRNG(29).SplitN(streams)
	if len(rs) != streams {
		t.Fatalf("SplitN returned %d streams, want %d", len(rs), streams)
	}
	seen := make(map[uint64]int, streams*draws)
	for si, r := range rs {
		for i := 0; i < draws; i++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %d and %d collide on %#x after <= %d draws", prev, si, v, draws)
			}
			seen[v] = si
		}
	}
}

func TestSplitNDeterministicAndConsuming(t *testing.T) {
	// SplitN(n) must consume exactly n draws, so callers that keep using
	// the parent afterwards stay reproducible.
	a, b := NewRNG(31), NewRNG(31)
	as := a.SplitN(5)
	for i := 0; i < 5; i++ {
		b.Uint64()
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitN(5) did not consume exactly 5 parent draws")
	}
	c := NewRNG(31).SplitN(5)
	for i := range as {
		if as[i].Uint64() != c[i].Uint64() {
			t.Fatalf("stream %d not reproducible across SplitN calls", i)
		}
	}
	if got := NewRNG(1).SplitN(0); len(got) != 0 {
		t.Fatal("SplitN(0) should return an empty slice")
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("Variance of single sample != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 {
		t.Fatal("Min wrong")
	}
	if Max(xs) != 5 {
		t.Fatal("Max wrong")
	}
}

func TestBetaCounter(t *testing.T) {
	b := NewBetaCounter()
	if p := b.P(); p != 0.5 {
		t.Fatalf("prior P = %v, want 0.5", p)
	}
	for i := 0; i < 9; i++ {
		b.Observe(true)
	}
	b.Observe(false)
	// Posterior mean = (1+9)/(2+10) = 10/12
	if p := b.P(); math.Abs(p-10.0/12.0) > 1e-12 {
		t.Fatalf("P = %v, want %v", p, 10.0/12.0)
	}
	if b.N() != 10 {
		t.Fatalf("N = %v, want 10", b.N())
	}
}

func TestBetaCounterBoundsProperty(t *testing.T) {
	f := func(obs []bool) bool {
		b := NewBetaCounter()
		for _, o := range obs {
			b.Observe(o)
		}
		p := b.P()
		return p > 0 && p < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	h.Add(0.05)
	h.Add(0.05)
	h.Add(0.95)
	h.Add(-5)  // clamps to first bin
	h.Add(2.0) // clamps to last bin
	if h.Counts[0] != 3 {
		t.Fatalf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 2 {
		t.Fatalf("bin9 = %d, want 2", h.Counts[9])
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5", h.Total())
	}
	if c := h.BinCenter(0); math.Abs(c-0.05) > 1e-12 {
		t.Fatalf("BinCenter(0) = %v", c)
	}
}

func TestRunningMean(t *testing.T) {
	var r RunningMean
	if r.Mean() != 0 {
		t.Fatal("empty RunningMean not 0")
	}
	for _, x := range []float64{1, 2, 3, 4} {
		r.Add(x)
	}
	if r.Mean() != 2.5 || r.N() != 4 {
		t.Fatalf("RunningMean = %v n=%d", r.Mean(), r.N())
	}
}

func TestQuantileMatchesMeanProperty(t *testing.T) {
	// Median of a symmetric two-point distribution equals its mean.
	f := func(a float64) bool {
		if math.IsNaN(a) || math.Abs(a) > 1e15 {
			return true // avoid float cancellation at extreme magnitudes
		}
		xs := []float64{a - 1, a + 1}
		return math.Abs(Quantile(xs, 0.5)-Mean(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapCIBracketsMean(t *testing.T) {
	rng := NewRNG(100)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormMeanStd(10, 2)
	}
	lo, hi := BootstrapCI(xs, 0.95, 500, rng)
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Fatalf("CI [%v, %v] does not bracket mean %v", lo, hi, m)
	}
	// Width shrinks with more data.
	big := make([]float64, 2000)
	for i := range big {
		big[i] = rng.NormMeanStd(10, 2)
	}
	lo2, hi2 := BootstrapCI(big, 0.95, 500, rng)
	if hi2-lo2 >= hi-lo {
		t.Fatalf("CI did not shrink with more data: %v vs %v", hi2-lo2, hi-lo)
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid bootstrap params accepted")
		}
	}()
	BootstrapCI(nil, 0.95, 100, NewRNG(1))
}
