package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs
// (0 for fewer than two samples).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// BetaCounter tracks Bernoulli outcomes with a Beta(α, β) prior and yields
// the posterior mean probability of outcome "1". It is the datatype behind
// the historical branch-probability feature P_history_1 of the ARTERY
// predictor: each feedback site owns one counter, updated after every shot.
type BetaCounter struct {
	Alpha float64 // prior + observed count of ones
	Beta  float64 // prior + observed count of zeros
}

// NewBetaCounter returns a counter with a uniform Beta(1, 1) prior.
func NewBetaCounter() *BetaCounter { return &BetaCounter{Alpha: 1, Beta: 1} }

// Observe records one Bernoulli outcome.
func (b *BetaCounter) Observe(one bool) {
	if one {
		b.Alpha++
	} else {
		b.Beta++
	}
}

// P returns the posterior mean probability of outcome 1.
func (b *BetaCounter) P() float64 {
	return b.Alpha / (b.Alpha + b.Beta)
}

// N returns the number of observed outcomes (excluding the prior mass).
func (b *BetaCounter) N() float64 { return b.Alpha + b.Beta - 2 }

// Histogram is a fixed-width binning of float64 samples, used by the
// experiment harness to report distributions (e.g. Figure 15b).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram over [lo, hi) with n bins.
// It panics for n <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records x, clamping out-of-range samples into the edge bins.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int(float64(n) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// String renders a compact textual histogram.
func (h *Histogram) String() string {
	out := ""
	for i, c := range h.Counts {
		out += fmt.Sprintf("%8.4f %d\n", h.BinCenter(i), c)
	}
	return out
}

// RunningMean accumulates a streaming mean without storing samples.
type RunningMean struct {
	n   int
	sum float64
}

// Add records one sample.
func (r *RunningMean) Add(x float64) { r.n++; r.sum += x }

// Mean returns the current mean (0 if no samples).
func (r *RunningMean) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// N returns the number of samples recorded.
func (r *RunningMean) N() int { return r.n }

// BootstrapCI returns a percentile bootstrap confidence interval for the
// mean of xs at the given level (e.g. 0.95), using resamples draws.
// Experiments report it so readers can judge whether a gap is real at the
// configured shot count.
func BootstrapCI(xs []float64, level float64, resamples int, rng *RNG) (lo, hi float64) {
	if len(xs) == 0 || level <= 0 || level >= 1 || resamples < 10 {
		panic("stats: invalid bootstrap parameters")
	}
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	alpha := (1 - level) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}
