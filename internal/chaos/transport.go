package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// Transport is the http.RoundTripper form of the injector: each request
// is one "connection" (index = arrival order), drawing its fault plan
// from its own per-index stream. Wrap any http.Client's transport with
// it to place that client behind a deterministic bad network.
type Transport struct {
	cfg    Config
	base   http.RoundTripper
	str    *streams
	n      atomic.Int64
	faults atomic.Int64
	m      metrics
}

// NewTransport validates cfg and wraps base (nil selects
// http.DefaultTransport).
func NewTransport(cfg Config, base http.RoundTripper) (*Transport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		cfg:  cfg,
		base: base,
		str:  newStreams(cfg.Seed),
		m:    newMetrics(cfg.Registry),
	}, nil
}

// Faults returns how many destructive faults the transport has injected.
func (t *Transport) Faults() int64 { return t.faults.Load() }

// errInjected marks transport-level chaos errors, so tests (and curious
// retry loops) can tell an injected failure from a real one.
type errInjected struct{ kind string }

func (e *errInjected) Error() string { return "chaos: injected " + e.kind }

// IsInjected reports whether err was manufactured by a chaos Transport.
func IsInjected(err error) bool {
	for err != nil {
		if _, ok := err.(*errInjected); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// RoundTrip applies the request's fault plan: latency first, then either
// a synthetic failure (storm/blackhole/reset) or the real round trip with
// a degraded body (truncate/corrupt/slow-loris). Context cancellation is
// honored everywhere — a blackhole never outlives the caller's deadline.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	i := int(t.n.Add(1) - 1)
	p := planFor(t.cfg, t.str.at(i))
	t.m.record(p)
	if p.destructive() {
		t.faults.Add(1)
	}
	ctx := req.Context()
	if p.delay > 0 {
		if err := sleepCtx(ctx, p.delay); err != nil {
			return nil, err
		}
	}
	switch {
	case p.storm:
		return synthetic503(req), nil
	case p.blackhole:
		if err := sleepCtx(ctx, t.cfg.BlackholeHold); err != nil {
			return nil, err
		}
		return nil, &errInjected{kind: "blackhole (partition healed, connection reset)"}
	case p.reset:
		return nil, &errInjected{kind: "connection reset"}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch {
	case p.truncateAt >= 0:
		resp.Body = &truncateBody{rc: resp.Body, left: p.truncateAt}
	case p.corruptAt >= 0:
		resp.Body = &corruptBody{rc: resp.Body, at: p.corruptAt, mask: p.corruptMask}
	case p.slow:
		resp.Body = &slowBody{rc: resp.Body, chunk: t.cfg.SlowChunk, delay: t.cfg.SlowDelay, ctx: ctx}
	}
	return resp, nil
}

// sleepCtx sleeps for d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// synthetic503 is the storm response: a well-formed 503 that never
// reached the target.
func synthetic503(req *http.Request) *http.Response {
	body := `{"error":"chaos: injected 503 storm"}` + "\n"
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", http.StatusServiceUnavailable, http.StatusText(http.StatusServiceUnavailable)),
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{"application/json"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncateBody cuts the stream after its byte budget, surfacing the cut
// as an unexpected EOF (what a killed TCP peer looks like to a reader).
type truncateBody struct {
	rc   io.ReadCloser
	left int
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= n
	if err == nil && b.left <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncateBody) Close() error { return b.rc.Close() }

// corruptBody flips one byte at a fixed offset (high bit set — see the
// package detectability note). Streams shorter than the offset pass
// through clean.
type corruptBody struct {
	rc   io.ReadCloser
	at   int
	mask byte
	off  int
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if n > 0 && b.at >= b.off && b.at < b.off+n {
		p[b.at-b.off] ^= b.mask
	}
	b.off += n
	return n, err
}

func (b *corruptBody) Close() error { return b.rc.Close() }

// slowBody dribbles the stream out in small chunks with a delay between
// them, honoring the request context.
type slowBody struct {
	rc    io.ReadCloser
	chunk int
	delay time.Duration
	ctx   context.Context
	first bool
}

func (b *slowBody) Read(p []byte) (int, error) {
	if b.first {
		if err := sleepCtx(b.ctx, b.delay); err != nil {
			return 0, err
		}
	}
	b.first = true
	if len(p) > b.chunk {
		p = p[:b.chunk]
	}
	return b.rc.Read(p)
}

func (b *slowBody) Close() error { return b.rc.Close() }
