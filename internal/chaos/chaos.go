// Package chaos is the deterministic network-fault injector for the
// service tier: the counterpart of internal/fault (which degrades the
// simulated device) aimed at the wires between a client, a coordinator
// and its arteryd backends. It injects the degraded networking a
// production control stack must survive — added latency, connection
// resets, blackhole partitions, truncated bodies, corrupt frames,
// slow-loris streams and 5xx storms — in two forms:
//
//   - Transport: an http.RoundTripper wrapper, for wiring chaos into any
//     in-process client (the coordinator's backend clients, a test's
//     stream reader) without touching sockets.
//   - Proxy: a standalone TCP proxy, for smoke tests that place real
//     processes behind real degraded links (artery-bench -chaos-proxy).
//
// Determinism contract: every fault decision flows from one seed through
// per-connection stats.RNG streams derived exactly like stats.RNG.SplitN
// derives the engine's per-shot streams — the i-th connection's stream is
// seeded from the root generator's i-th output, so it depends only on the
// seed and the connection index, never on timing. Replaying a scenario
// with the same seed and the same connection arrival order replays the
// identical fault schedule. Every channel draws its gate and parameters at
// fixed positions in the stream whether or not it is enabled, so turning
// one fault class on or off never shifts another's schedule.
//
// Detectability: corrupt frames always set the high bit of the byte they
// flip. In the ASCII JSON the service speaks, such a flip is always
// detectable downstream — a parse error outside strings, or a U+FFFD
// replacement rune inside them — modeling the residual errors of a
// checksummed transport without ever aliasing into a different valid
// event (which no retry discipline could catch).
package chaos

import (
	"fmt"
	"sync"
	"time"

	"artery/internal/stats"
	"artery/internal/trace"
)

// Config sets the per-connection fault rates and shapes. The zero value
// injects nothing; Seed 0 selects seed 1.
type Config struct {
	// Seed drives every fault decision (see the package determinism
	// contract).
	Seed uint64

	// LatencyRate is the probability that a connection gets extra latency
	// drawn uniformly from [LatencyMin, LatencyMax] (defaults 10–200ms)
	// before it is serviced. Latency composes with the other channels.
	LatencyRate float64
	LatencyMin  time.Duration
	LatencyMax  time.Duration

	// Error5xxRate is the probability that a connection is answered with a
	// synthetic 503 instead of reaching the target (a 5xx storm when the
	// rate is high).
	Error5xxRate float64

	// BlackholeRate is the probability that a connection is blackholed: it
	// is accepted but nothing is ever answered for BlackholeHold (default
	// 2s), after which it is reset — a partition that heals.
	BlackholeRate float64
	BlackholeHold time.Duration

	// ResetRate is the probability that a connection is reset before any
	// byte of response reaches the client.
	ResetRate float64

	// TruncateRate is the probability that the response stream is cut
	// after a byte budget drawn from [TruncateMin, TruncateMax] (defaults
	// 64–4096), then reset — a mid-line NDJSON kill.
	TruncateRate float64
	TruncateMin  int
	TruncateMax  int

	// CorruptRate is the probability that one response byte (at an offset
	// drawn from [0, CorruptSpan), default 2048) is flipped with the high
	// bit set (see the package detectability note).
	CorruptRate float64
	CorruptSpan int

	// SlowLorisRate is the probability that the response dribbles out in
	// SlowChunk-byte pieces (default 64) with SlowDelay between them
	// (default 20ms).
	SlowLorisRate float64
	SlowChunk     int
	SlowDelay     time.Duration

	// Registry, when non-nil, receives the artery_chaos_* instruments.
	Registry *trace.Registry
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.LatencyMin == 0 {
		c.LatencyMin = 10 * time.Millisecond
	}
	if c.LatencyMax == 0 {
		c.LatencyMax = 200 * time.Millisecond
	}
	if c.BlackholeHold == 0 {
		c.BlackholeHold = 2 * time.Second
	}
	if c.TruncateMin == 0 {
		c.TruncateMin = 64
	}
	if c.TruncateMax == 0 {
		c.TruncateMax = 4096
	}
	if c.CorruptSpan == 0 {
		c.CorruptSpan = 2048
	}
	if c.SlowChunk == 0 {
		c.SlowChunk = 64
	}
	if c.SlowDelay == 0 {
		c.SlowDelay = 20 * time.Millisecond
	}
	return c
}

// Validate rejects rates outside [0, 1] and inverted ranges.
func (c Config) Validate() error {
	c = c.withDefaults()
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"LatencyRate", c.LatencyRate},
		{"Error5xxRate", c.Error5xxRate},
		{"BlackholeRate", c.BlackholeRate},
		{"ResetRate", c.ResetRate},
		{"TruncateRate", c.TruncateRate},
		{"CorruptRate", c.CorruptRate},
		{"SlowLorisRate", c.SlowLorisRate},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s = %v outside [0, 1]", p.name, p.v)
		}
	}
	if c.LatencyMin > c.LatencyMax {
		return fmt.Errorf("chaos: LatencyMin %v > LatencyMax %v", c.LatencyMin, c.LatencyMax)
	}
	if c.TruncateMin > c.TruncateMax {
		return fmt.Errorf("chaos: TruncateMin %d > TruncateMax %d", c.TruncateMin, c.TruncateMax)
	}
	if c.TruncateMin < 1 {
		return fmt.Errorf("chaos: TruncateMin must be >= 1, got %d", c.TruncateMin)
	}
	return nil
}

// Scaled sets every fault rate from one sweep knob, mirroring
// fault.Scaled: resets, truncations, corruption and 5xx at rate,
// slow-loris at rate/2, blackholes at rate/4 (they cost the most wall
// clock), and latency on twice as often as the destructive faults.
func Scaled(seed uint64, rate float64) Config {
	lat := 2 * rate
	if lat > 1 {
		lat = 1
	}
	return Config{
		Seed:          seed,
		LatencyRate:   lat,
		Error5xxRate:  rate,
		ResetRate:     rate,
		TruncateRate:  rate,
		CorruptRate:   rate,
		SlowLorisRate: rate / 2,
		BlackholeRate: rate / 4,
		BlackholeHold: time.Second,
	}
}

// streams derives per-connection RNG streams lazily but with SplitN
// semantics: the i-th child is seeded from the root's i-th output, so
// child i depends only on (seed, i). The same stream object is returned
// for every at(i) call — a connection owns its stream and draws from it
// sequentially.
type streams struct {
	mu   sync.Mutex
	root *stats.RNG
	kids []*stats.RNG
}

func newStreams(seed uint64) *streams {
	return &streams{root: stats.NewRNG(seed)}
}

func (s *streams) at(i int) *stats.RNG {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.kids) <= i {
		s.kids = append(s.kids, s.root.Split())
	}
	return s.kids[i]
}

// plan is one connection's fault schedule, drawn up front from its
// stream: optional added latency plus at most one destructive fault.
type plan struct {
	delay       time.Duration
	storm       bool
	blackhole   bool
	reset       bool
	truncateAt  int // -1 = no truncation
	corruptAt   int // -1 = no corruption
	corruptMask byte
	slow        bool
}

// planFor draws a connection's plan. Every channel draws its gate and
// parameters at fixed stream positions whether or not it is enabled, so
// one channel's rate never shifts where another channel draws — turning a
// fault class on or off leaves the rest of the schedule untouched.
// Destructive-channel precedence: storm, blackhole, reset, truncate,
// corrupt, slow-loris; at most one destructive fault wins.
func planFor(cfg Config, rng *stats.RNG) plan {
	p := plan{truncateAt: -1, corruptAt: -1}
	latGate := rng.Bool(cfg.LatencyRate)
	latDelay := cfg.LatencyMin + time.Duration(rng.Float64()*float64(cfg.LatencyMax-cfg.LatencyMin))
	if latGate {
		p.delay = latDelay
	}
	storm := rng.Bool(cfg.Error5xxRate)
	blackhole := rng.Bool(cfg.BlackholeRate)
	reset := rng.Bool(cfg.ResetRate)
	truncate := rng.Bool(cfg.TruncateRate)
	truncateAt := cfg.TruncateMin + rng.Intn(cfg.TruncateMax-cfg.TruncateMin+1)
	corrupt := rng.Bool(cfg.CorruptRate)
	corruptAt := rng.Intn(cfg.CorruptSpan)
	corruptMask := 0x80 | byte(rng.Intn(128)) // high bit: always detectable
	slow := rng.Bool(cfg.SlowLorisRate)
	switch {
	case storm:
		p.storm = true
	case blackhole:
		p.blackhole = true
	case reset:
		p.reset = true
	case truncate:
		p.truncateAt = truncateAt
	case corrupt:
		p.corruptAt = corruptAt
		p.corruptMask = corruptMask
	case slow:
		p.slow = true
	}
	return p
}

// destructive reports whether the plan carries a destructive fault (used
// by the fault counters; latency-only plans count separately).
func (p plan) destructive() bool {
	return p.storm || p.blackhole || p.reset || p.truncateAt >= 0 || p.corruptAt >= 0 || p.slow
}

// metrics are the artery_chaos_* instruments. All fields are nil-safe
// (trace instruments on a nil registry are nil), so injection sites
// update them unconditionally.
type metrics struct {
	connections *trace.Counter
	faults      *trace.Counter
	latencies   *trace.Counter
	storms      *trace.Counter
	blackholes  *trace.Counter
	resets      *trace.Counter
	truncates   *trace.Counter
	corrupts    *trace.Counter
	slowloris   *trace.Counter
}

func newMetrics(reg *trace.Registry) metrics {
	return metrics{
		connections: reg.Counter("artery_chaos_connections_total", "connections/requests seen by the chaos injector"),
		faults:      reg.Counter("artery_chaos_faults_total", "connections given a destructive fault"),
		latencies:   reg.Counter("artery_chaos_latency_injections_total", "connections given added latency"),
		storms:      reg.Counter("artery_chaos_storms_total", "connections answered with a synthetic 503"),
		blackholes:  reg.Counter("artery_chaos_blackholes_total", "connections blackholed (held, then reset)"),
		resets:      reg.Counter("artery_chaos_resets_total", "connections reset before any response byte"),
		truncates:   reg.Counter("artery_chaos_truncates_total", "responses truncated mid-stream"),
		corrupts:    reg.Counter("artery_chaos_corrupts_total", "responses with a flipped byte"),
		slowloris:   reg.Counter("artery_chaos_slowloris_total", "responses dribbled out slow-loris style"),
	}
}

// record updates the counters for one planned connection.
func (m metrics) record(p plan) {
	m.connections.Inc()
	if p.delay > 0 {
		m.latencies.Inc()
	}
	if p.destructive() {
		m.faults.Inc()
	}
	switch {
	case p.storm:
		m.storms.Inc()
	case p.blackhole:
		m.blackholes.Inc()
	case p.reset:
		m.resets.Inc()
	case p.truncateAt >= 0:
		m.truncates.Inc()
	case p.corruptAt >= 0:
		m.corrupts.Inc()
	case p.slow:
		m.slowloris.Inc()
	}
}
