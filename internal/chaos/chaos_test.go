package chaos

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"artery/internal/stats"
	"artery/internal/trace"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must validate: %v", err)
	}
	if err := (Config{ResetRate: 1.5}).Validate(); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (Config{ResetRate: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Config{LatencyMin: time.Second, LatencyMax: time.Millisecond}).Validate(); err == nil {
		t.Error("inverted latency range accepted")
	}
	if err := (Config{TruncateMin: 100, TruncateMax: 10}).Validate(); err == nil {
		t.Error("inverted truncate range accepted")
	}
	for _, rate := range []float64{0, 0.1, 0.5, 1} {
		if err := Scaled(7, rate).Validate(); err != nil {
			t.Errorf("Scaled(7, %v) invalid: %v", rate, err)
		}
	}
}

// TestStreamsMatchSplitN pins the lazy stream derivation to the engine's
// SplitN contract: the i-th connection stream is exactly the i-th SplitN
// child of the same seed.
func TestStreamsMatchSplitN(t *testing.T) {
	const n, seed = 16, 99
	want := stats.NewRNG(seed).SplitN(n)
	str := newStreams(seed)
	// Interleaved access must not matter.
	for _, i := range []int{3, 0, 15, 7, 1, 2, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14} {
		if got, w := str.at(i).Uint64(), want[i].Uint64(); got != w {
			t.Fatalf("stream %d first draw = %d, SplitN child = %d", i, got, w)
		}
	}
	// Same object on re-access: the stream's state advances.
	s := newStreams(seed)
	a, b := s.at(2).Uint64(), s.at(2).Uint64()
	if a == b {
		t.Fatal("re-access must return the same advancing stream")
	}
}

// TestPlanDeterminism: same seed, same per-index plans; different seeds
// diverge; zero-rate channels draw nothing so enabling one channel never
// shifts another's schedule.
func TestPlanDeterminism(t *testing.T) {
	cfg := Scaled(42, 0.3).withDefaults()
	a, b := newStreams(cfg.Seed), newStreams(cfg.Seed)
	var faults int
	for i := 0; i < 200; i++ {
		pa, pb := planFor(cfg, a.at(i)), planFor(cfg, b.at(i))
		if pa != pb {
			t.Fatalf("plan %d diverged under one seed: %+v vs %+v", i, pa, pb)
		}
		if pa.destructive() {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("rate 0.3 over 200 connections injected nothing")
	}
	other := cfg
	other.Seed = 43
	c := newStreams(other.Seed)
	same := true
	for i := 0; i < 200; i++ {
		if planFor(other, c.at(i)) != planFor(cfg, newStreams(cfg.Seed).at(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("200 plans identical across different seeds")
	}

	// Enabling the latency channel must not shift the destructive gates:
	// gates draw from the same positions because latency draws its own.
	noLat := cfg
	noLat.LatencyRate = 0
	s1, s2 := newStreams(cfg.Seed), newStreams(cfg.Seed)
	for i := 0; i < 50; i++ {
		p1, p2 := planFor(cfg, s1.at(i)), planFor(noLat, s2.at(i))
		p1.delay = 0
		if p1 != p2 {
			t.Fatalf("plan %d destructive schedule shifted when latency was disabled: %+v vs %+v", i, p1, p2)
		}
	}
}

func TestCorruptMaskAlwaysDetectable(t *testing.T) {
	cfg := Config{Seed: 5, CorruptRate: 1}.withDefaults()
	str := newStreams(cfg.Seed)
	for i := 0; i < 100; i++ {
		p := planFor(cfg, str.at(i))
		if p.corruptAt < 0 {
			t.Fatalf("plan %d: corrupt rate 1 did not corrupt", i)
		}
		if p.corruptMask&0x80 == 0 {
			t.Fatalf("plan %d: mask %#x does not set the high bit", i, p.corruptMask)
		}
	}
}

// backendBody is the known payload the fault tests cut, flip and slow.
var backendBody = bytes.Repeat([]byte("0123456789abcdef"), 256) // 4 KiB

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(backendBody)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func oneShotTransport(t *testing.T, cfg Config) *http.Client {
	t.Helper()
	tr, err := NewTransport(cfg, nil)
	if err != nil {
		t.Fatalf("NewTransport: %v", err)
	}
	return &http.Client{Transport: tr}
}

func TestTransportFaults(t *testing.T) {
	ts := newBackend(t)

	t.Run("clean", func(t *testing.T) {
		hc := oneShotTransport(t, Config{Seed: 1})
		resp, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatalf("clean get: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if !bytes.Equal(b, backendBody) {
			t.Fatal("zero-rate transport altered the body")
		}
	})

	t.Run("storm", func(t *testing.T) {
		hc := oneShotTransport(t, Config{Seed: 1, Error5xxRate: 1})
		resp, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatalf("storm get: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("storm status = %d, want 503", resp.StatusCode)
		}
	})

	t.Run("reset", func(t *testing.T) {
		hc := oneShotTransport(t, Config{Seed: 1, ResetRate: 1})
		if _, err := hc.Get(ts.URL); err == nil {
			t.Fatal("reset get succeeded")
		} else if !IsInjected(err) {
			t.Fatalf("reset error %v is not marked injected", err)
		}
	})

	t.Run("blackhole-honors-ctx", func(t *testing.T) {
		tr, err := NewTransport(Config{Seed: 1, BlackholeRate: 1, BlackholeHold: time.Minute}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
		start := time.Now()
		if _, err := tr.RoundTrip(req); err == nil {
			t.Fatal("blackhole returned a response")
		}
		if time.Since(start) > 5*time.Second {
			t.Fatal("blackhole ignored the context deadline")
		}
	})

	t.Run("blackhole-heals", func(t *testing.T) {
		hc := oneShotTransport(t, Config{Seed: 1, BlackholeRate: 1, BlackholeHold: 20 * time.Millisecond})
		start := time.Now()
		if _, err := hc.Get(ts.URL); err == nil {
			t.Fatal("blackhole returned a response")
		}
		if time.Since(start) < 20*time.Millisecond {
			t.Fatal("blackhole did not hold the connection")
		}
	})

	t.Run("truncate", func(t *testing.T) {
		hc := oneShotTransport(t, Config{Seed: 1, TruncateRate: 1, TruncateMin: 100, TruncateMax: 100})
		resp, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatalf("truncate get: %v", err)
		}
		defer resp.Body.Close()
		b, rerr := io.ReadAll(resp.Body)
		if rerr == nil {
			t.Fatalf("truncated body read cleanly (%d bytes)", len(b))
		}
		if len(b) > 100 {
			t.Fatalf("read %d bytes past the 100-byte cut", len(b))
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		hc := oneShotTransport(t, Config{Seed: 1, CorruptRate: 1, CorruptSpan: len(backendBody)})
		resp, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatalf("corrupt get: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if bytes.Equal(b, backendBody) {
			t.Fatal("corrupt transport delivered a clean body")
		}
		diff := 0
		for i := range b {
			if i < len(backendBody) && b[i] != backendBody[i] {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("corruption flipped %d bytes, want exactly 1", diff)
		}
	})

	t.Run("slowloris", func(t *testing.T) {
		hc := oneShotTransport(t, Config{Seed: 1, SlowLorisRate: 1, SlowChunk: 1024, SlowDelay: 5 * time.Millisecond})
		start := time.Now()
		resp, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatalf("slow get: %v", err)
		}
		defer resp.Body.Close()
		b, rerr := io.ReadAll(resp.Body)
		if rerr != nil || !bytes.Equal(b, backendBody) {
			t.Fatalf("slow body wrong: err=%v len=%d", rerr, len(b))
		}
		if d := time.Since(start); d < 15*time.Millisecond {
			t.Fatalf("4 KiB in 1 KiB chunks with 5ms delays finished in %v", d)
		}
	})

	t.Run("latency", func(t *testing.T) {
		hc := oneShotTransport(t, Config{Seed: 1, LatencyRate: 1, LatencyMin: 30 * time.Millisecond, LatencyMax: 30 * time.Millisecond})
		start := time.Now()
		resp, err := hc.Get(ts.URL)
		if err != nil {
			t.Fatalf("latency get: %v", err)
		}
		resp.Body.Close()
		if d := time.Since(start); d < 30*time.Millisecond {
			t.Fatalf("latency injection took only %v", d)
		}
	})
}

func TestTransportMetrics(t *testing.T) {
	ts := newBackend(t)
	reg := trace.NewRegistry()
	tr, err := NewTransport(Config{Seed: 3, ResetRate: 1, Registry: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hc := &http.Client{Transport: tr}
	for i := 0; i < 3; i++ {
		hc.Get(ts.URL)
	}
	if tr.Faults() != 3 {
		t.Fatalf("Faults() = %d, want 3", tr.Faults())
	}
	var prom strings.Builder
	reg.WriteProm(&prom)
	for _, want := range []string{"artery_chaos_connections_total 3", "artery_chaos_resets_total 3", "artery_chaos_faults_total 3"} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, prom.String())
		}
	}
}

func TestProxyFaults(t *testing.T) {
	ts := newBackend(t)

	start := func(t *testing.T, cfg Config) (*Proxy, *http.Client) {
		t.Helper()
		p, err := NewProxy(cfg, "127.0.0.1:0", ts.URL)
		if err != nil {
			t.Fatalf("NewProxy: %v", err)
		}
		t.Cleanup(func() { p.Close() })
		// No keep-alive: each request is its own proxied connection, so
		// the per-connection schedule lines up with the request sequence.
		return p, &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 10 * time.Second}
	}

	t.Run("clean-passthrough", func(t *testing.T) {
		p, hc := start(t, Config{Seed: 1})
		resp, err := hc.Get("http://" + p.Addr())
		if err != nil {
			t.Fatalf("clean get via proxy: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if !bytes.Equal(b, backendBody) {
			t.Fatal("zero-rate proxy altered the body")
		}
		if p.Connections() != 1 {
			t.Fatalf("Connections() = %d, want 1", p.Connections())
		}
	})

	t.Run("storm", func(t *testing.T) {
		p, hc := start(t, Config{Seed: 1, Error5xxRate: 1})
		resp, err := hc.Get("http://" + p.Addr())
		if err != nil {
			t.Fatalf("storm get: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("storm status = %d, want 503", resp.StatusCode)
		}
	})

	t.Run("reset", func(t *testing.T) {
		p, hc := start(t, Config{Seed: 1, ResetRate: 1})
		if _, err := hc.Get("http://" + p.Addr()); err == nil {
			t.Fatal("reset get succeeded")
		}
		if p.Faults() != 1 {
			t.Fatalf("Faults() = %d, want 1", p.Faults())
		}
	})

	t.Run("truncate", func(t *testing.T) {
		p, hc := start(t, Config{Seed: 1, TruncateRate: 1, TruncateMin: 300, TruncateMax: 300})
		resp, err := hc.Get("http://" + p.Addr())
		if err != nil {
			// The cut may land inside the response headers.
			return
		}
		defer resp.Body.Close()
		if b, rerr := io.ReadAll(resp.Body); rerr == nil && len(b) == len(backendBody) {
			t.Fatal("truncating proxy delivered the full body")
		}
	})

	t.Run("corrupt", func(t *testing.T) {
		// The proxy corrupts the raw upstream stream, headers included; pick
		// a seed whose planned offset deterministically lands in the body
		// (response headers here are well under 300 bytes).
		cfg := Config{CorruptRate: 1, CorruptSpan: 512}
		for seed := uint64(1); ; seed++ {
			cfg.Seed = seed
			at := planFor(cfg.withDefaults(), newStreams(seed).at(0)).corruptAt
			if at >= 300 {
				break
			}
			if seed > 1000 {
				t.Fatal("no seed places the corrupt offset in the body")
			}
		}
		p, hc := start(t, cfg)
		resp, err := hc.Get("http://" + p.Addr())
		if err != nil {
			t.Fatalf("corrupt get: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if bytes.Equal(b, backendBody) {
			t.Fatal("corrupting proxy delivered clean bytes")
		}
		if p.Faults() != 1 {
			t.Fatalf("Faults() = %d, want 1", p.Faults())
		}
	})

	t.Run("slowloris", func(t *testing.T) {
		p, hc := start(t, Config{Seed: 1, SlowLorisRate: 1, SlowChunk: 1024, SlowDelay: 5 * time.Millisecond})
		startT := time.Now()
		resp, err := hc.Get("http://" + p.Addr())
		if err != nil {
			t.Fatalf("slow get: %v", err)
		}
		defer resp.Body.Close()
		if b, rerr := io.ReadAll(resp.Body); rerr != nil || !bytes.Equal(b, backendBody) {
			t.Fatalf("slow proxy body wrong: err=%v len=%d", rerr, len(b))
		}
		if d := time.Since(startT); d < 15*time.Millisecond {
			t.Fatalf("slow proxy finished in %v", d)
		}
	})

	t.Run("blackhole-bounded", func(t *testing.T) {
		p, hc := start(t, Config{Seed: 1, BlackholeRate: 1, BlackholeHold: 30 * time.Millisecond})
		startT := time.Now()
		if _, err := hc.Get("http://" + p.Addr()); err == nil {
			t.Fatal("blackholed get succeeded")
		}
		if d := time.Since(startT); d < 30*time.Millisecond || d > 8*time.Second {
			t.Fatalf("blackhole hold was %v, want ~30ms", d)
		}
	})
}

// TestProxyDeterministicSchedule: two proxies with the same seed hand the
// same fault sequence to the same connection arrival order.
func TestProxyDeterministicSchedule(t *testing.T) {
	ts := newBackend(t)
	outcomes := func(seed uint64) []bool {
		p, err := NewProxy(Config{Seed: seed, ResetRate: 0.5}, "127.0.0.1:0", ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
		var out []bool
		for i := 0; i < 20; i++ {
			resp, err := hc.Get("http://" + p.Addr())
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			out = append(out, err == nil)
		}
		return out
	}
	a, b := outcomes(11), outcomes(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("connection %d outcome diverged under one seed: %v vs %v", i, a, b)
		}
	}
	okA := 0
	for _, ok := range a {
		if ok {
			okA++
		}
	}
	if okA == 0 || okA == len(a) {
		t.Fatalf("rate 0.5 produced a degenerate schedule (%d/%d ok)", okA, len(a))
	}
}

func TestProxyCloseIdempotentAndSevers(t *testing.T) {
	ts := newBackend(t)
	p, err := NewProxy(Config{Seed: 1, BlackholeRate: 1, BlackholeHold: time.Minute}, "127.0.0.1:0", ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		hc := &http.Client{Timeout: time.Minute}
		_, err := hc.Get("http://" + p.Addr())
		errCh <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the blackhole take hold
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("blackholed request succeeded after Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not sever the blackholed connection")
	}
	if err := p.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestProxyRejectsBadTarget(t *testing.T) {
	if _, err := NewProxy(Config{Seed: 1}, "127.0.0.1:0", "not a target"); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := NewProxy(Config{ResetRate: 2}, "127.0.0.1:0", "127.0.0.1:1"); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := NewTransport(Config{ResetRate: 2}, nil); err == nil {
		t.Fatal("invalid transport config accepted")
	}
}
