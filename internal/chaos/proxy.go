package chaos

import (
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is the standalone TCP form of the injector: it listens on one
// address, forwards accepted connections to a fixed target, and applies
// each connection's fault plan to the upstream→client byte stream (the
// client→upstream direction is forwarded verbatim — requests are cheap,
// responses are where streams live). Connection index = accept order.
//
// Destructive endings use a linger-0 close, so the client observes a
// hard RST rather than a clean EOF — a truncated NDJSON stream must look
// like a killed peer, not a finished job.
type Proxy struct {
	cfg    Config
	target string
	ln     net.Listener
	str    *streams
	m      metrics
	n      atomic.Int64
	faults atomic.Int64

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	done   chan struct{}
}

// NewProxy validates cfg, resolves target (a host:port, or an http://
// base URL whose host is used) and starts listening on listen (use
// "127.0.0.1:0" for an ephemeral port; see Addr).
func NewProxy(cfg Config, listen, target string) (*Proxy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	hostport := target
	if strings.Contains(hostport, "://") {
		hostport = hostport[strings.Index(hostport, "://")+3:]
	}
	hostport = strings.TrimSuffix(strings.TrimSpace(hostport), "/")
	if _, _, err := net.SplitHostPort(hostport); err != nil {
		return nil, fmt.Errorf("chaos: target %q is not host:port: %v", target, err)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("chaos: listen %s: %w", listen, err)
	}
	p := &Proxy{
		cfg:    cfg,
		target: hostport,
		ln:     ln,
		str:    newStreams(cfg.Seed),
		m:      newMetrics(cfg.Registry),
		conns:  map[net.Conn]struct{}{},
		done:   make(chan struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's resolved listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Connections returns how many connections the proxy has accepted.
func (p *Proxy) Connections() int64 { return p.n.Load() }

// Faults returns how many destructive faults the proxy has injected.
func (p *Proxy) Faults() int64 { return p.faults.Load() }

// Close stops accepting, severs every live connection and waits for the
// handlers to exit. Idempotent.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return nil
	}
	p.closed = true
	close(p.done)
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		i := int(p.n.Add(1) - 1)
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go p.handle(conn, i)
	}
}

// track removes a finished connection from the force-close set.
func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// handle drives one proxied connection through its fault plan.
func (p *Proxy) handle(conn net.Conn, i int) {
	defer p.wg.Done()
	defer p.untrack(conn)
	pl := planFor(p.cfg, p.str.at(i))
	p.m.record(pl)
	if pl.destructive() {
		p.faults.Add(1)
	}
	if pl.delay > 0 && !p.sleep(pl.delay) {
		conn.Close()
		return
	}
	switch {
	case pl.storm:
		// Wait for the client to send its request head before answering —
		// a response on an idle connection is a protocol error, not a storm.
		readRequestHead(conn)
		body := `{"error":"chaos: injected 503 storm"}` + "\n"
		fmt.Fprintf(conn, "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s", len(body), body)
		conn.Close()
		return
	case pl.blackhole:
		// Hold the connection dark for the partition window, then reset.
		p.sleep(p.cfg.BlackholeHold)
		hardClose(conn)
		return
	case pl.reset:
		hardClose(conn)
		return
	}
	up, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		hardClose(conn)
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		up.Close()
		conn.Close()
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	defer p.untrack(up)
	defer up.Close()
	defer conn.Close()

	// Client → upstream: verbatim.
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		io.Copy(up, conn)
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	// Upstream → client: through the plan's degradations.
	switch {
	case pl.truncateAt >= 0:
		io.CopyN(conn, up, int64(pl.truncateAt))
		hardClose(conn)
	case pl.corruptAt >= 0:
		p.copyCorrupt(conn, up, pl.corruptAt, pl.corruptMask)
	case pl.slow:
		p.copySlow(conn, up)
	default:
		io.Copy(conn, up)
	}
}

// copyCorrupt streams upstream bytes flipping the one planned byte.
func (p *Proxy) copyCorrupt(dst io.Writer, src io.Reader, at int, mask byte) {
	buf := make([]byte, 32*1024)
	off := 0
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if at >= off && at < off+n {
				buf[at-off] ^= mask
			}
			off += n
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// copySlow dribbles upstream bytes to the client in small delayed chunks.
func (p *Proxy) copySlow(dst io.Writer, src io.Reader) {
	buf := make([]byte, p.cfg.SlowChunk)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.sleep(p.cfg.SlowDelay) {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// sleep waits for d unless the proxy is closed first.
func (p *Proxy) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-p.done:
		return false
	}
}

// readRequestHead consumes bytes until the end of an HTTP request head
// (blank line) or an 8 KiB cap, so a synthetic response is never written
// onto a connection the client considers idle. Request bodies are not
// consumed — the synthetic responses all close the connection anyway.
func readRequestHead(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	defer conn.SetReadDeadline(time.Time{})
	var tail [4]byte
	buf := make([]byte, 1)
	for total := 0; total < 8*1024; total += 1 {
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		copy(tail[:], tail[1:])
		tail[3] = buf[0]
		if tail == [4]byte{'\r', '\n', '\r', '\n'} {
			return
		}
	}
}

// hardClose resets the connection (linger 0 → RST), so the peer sees a
// transport failure rather than a clean end-of-stream.
func hardClose(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}
