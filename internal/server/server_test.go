package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"artery/api"
)

// postJob submits a request body and returns the response.
func postJob(t *testing.T, base string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

// decodeStatus decodes a JobStatus response body and closes it.
func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return js
}

// getStatus fetches GET /v1/jobs/{id}.
func getStatus(t *testing.T, base, id string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return JobStatus{}, resp.StatusCode
	}
	var js JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&js); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return js, resp.StatusCode
}

// waitState polls a job until it reaches want (or any terminal state, if
// want is empty) and returns the final snapshot.
func waitTerminal(t *testing.T, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		js, code := getStatus(t, base, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if terminal(js.State) {
			return js
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// TestSubmitRejectsWhenQueueFull drives admission control to capacity: one
// job running (blocked in a test-seam executor), one queued, and the next
// submission must be turned away with 429 + Retry-After instead of
// buffered.
func TestSubmitRejectsWhenQueueFull(t *testing.T) {
	s := New(Config{QueueDepth: 1, MaxConcurrentJobs: 1, MaxShots: 1000})
	started := make(chan struct{}, 8)
	unblock := make(chan struct{})
	s.runJob = func(ctx context.Context, j *Job) {
		started <- struct{}{}
		select {
		case <-unblock:
			j.complete(&Result{Workload: "QRW-3", Shots: j.Req.Shots}, s.now())
		case <-ctx.Done():
			j.cancel("canceled by drain", s.now())
		}
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		close(unblock)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	}()

	req := `{"workload":"qrw","param":3,"shots":10}`

	// Job A: admitted, picked up by the (single) worker, now blocked.
	respA := postJob(t, ts.URL, req)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A: status %d, want 202", respA.StatusCode)
	}
	a := decodeStatus(t, respA)
	if a.State != StateQueued || a.ID == "" {
		t.Fatalf("job A snapshot: %+v", a)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never picked up job A")
	}

	// Job B: fills the depth-1 queue.
	respB := postJob(t, ts.URL, req)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B: status %d, want 202", respB.StatusCode)
	}
	decodeStatus(t, respB)

	// Job C: over capacity — 429, Retry-After header, echoed in the body.
	respC := postJob(t, ts.URL, req)
	defer respC.Body.Close()
	if respC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job C: status %d, want 429", respC.StatusCode)
	}
	ra := respC.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", ra)
	}
	var eb ErrorBody
	if err := json.NewDecoder(respC.Body).Decode(&eb); err != nil {
		t.Fatalf("decode 429 body: %v", err)
	}
	if eb.RetryAfterSec != secs || eb.Error == "" {
		t.Errorf("429 body %+v does not echo Retry-After %d", eb, secs)
	}

	// The rejection is visible on /metrics.
	var buf bytes.Buffer
	if err := s.Registry().WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "artery_server_jobs_rejected_total 1") {
		t.Errorf("metrics missing rejected counter:\n%s", buf.String())
	}
}

// TestJobTableFull covers the retained-job bound: with the table full of
// live jobs a submission is rejected, and once jobs retire the oldest are
// evicted to admit new ones.
func TestJobTableFull(t *testing.T) {
	s := New(Config{QueueDepth: 4, MaxConcurrentJobs: 1, MaxRetainedJobs: 1})
	started := make(chan struct{}, 8)
	unblock := make(chan struct{})
	s.runJob = func(ctx context.Context, j *Job) {
		started <- struct{}{}
		select {
		case <-unblock:
		case <-ctx.Done():
		}
		j.complete(&Result{Workload: "QRW-3", Shots: j.Req.Shots}, s.now())
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	req := `{"workload":"qrw","param":3,"shots":5}`
	respA := postJob(t, ts.URL, req)
	a := decodeStatus(t, respA)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A: status %d", respA.StatusCode)
	}
	<-started

	// Table holds MaxRetainedJobs=1 live job: the next submit is rejected.
	respB := postJob(t, ts.URL, req)
	respB.Body.Close()
	if respB.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job B with full table: status %d, want 429", respB.StatusCode)
	}

	// Let A finish and retire; the next submit evicts it.
	close(unblock)
	waitTerminal(t, ts.URL, a.ID)
	deadline := time.Now().Add(5 * time.Second)
	var respC *http.Response
	for {
		respC = postJob(t, ts.URL, req)
		if respC.StatusCode == http.StatusAccepted || time.Now().After(deadline) {
			break
		}
		respC.Body.Close() // A not yet retired; try again
		time.Sleep(10 * time.Millisecond)
	}
	if respC.StatusCode != http.StatusAccepted {
		t.Fatalf("job C after retire: status %d, want 202", respC.StatusCode)
	}
	decodeStatus(t, respC)
	// An evicted id answers 410 Gone with the typed code — it existed, it
	// is not coming back — while a never-issued id stays a plain 404.
	if _, code := getStatus(t, ts.URL, a.ID); code != http.StatusGone {
		t.Errorf("evicted job A: status %d, want 410", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + a.ID)
	if err != nil {
		t.Fatal(err)
	}
	var body ErrorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Code != api.CodeEvicted {
		t.Errorf("evicted job A: error code %q, want %q", body.Code, api.CodeEvicted)
	}
	if _, code := getStatus(t, ts.URL, "job-99999"); code != http.StatusNotFound {
		t.Errorf("never-issued id: status %d, want 404", code)
	}
}

// TestWorkerRecoversExecutorPanic: a panicking executor fails its job
// instead of killing the dispatcher worker (and with it the process) —
// the server keeps running jobs submitted afterwards.
func TestWorkerRecoversExecutorPanic(t *testing.T) {
	s := New(Config{QueueDepth: 4, MaxConcurrentJobs: 1, MaxShots: 1000})
	s.runJob = func(ctx context.Context, j *Job) {
		if j.Req.Seed == 666 {
			panic("executor exploded")
		}
		j.complete(&Result{Workload: "QRW-3", Shots: j.Req.Shots}, s.now())
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	bad := decodeStatus(t, postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":5,"seed":666}`))
	js := waitTerminal(t, ts.URL, bad.ID)
	if js.State != StateFailed || !strings.Contains(js.Error, "panicked") {
		t.Fatalf("panicked job ended %q (error %q), want failed with a panic message", js.State, js.Error)
	}

	good := decodeStatus(t, postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":5}`))
	if js := waitTerminal(t, ts.URL, good.ID); js.State != StateDone {
		t.Fatalf("job after the panic ended %q, want done — did the worker die?", js.State)
	}
}

// TestSubmitValidation exercises the 400 paths: malformed JSON, unknown
// fields, unknown workload/controller/mode, out-of-range shots and
// options.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{MaxShots: 100})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	cases := []struct {
		name, body string
	}{
		{"malformed", `{"workload":`},
		{"unknown field", `{"workload":"qrw","param":3,"shots":5,"bogus":1}`},
		{"unknown workload", `{"workload":"nope","param":3,"shots":5}`},
		{"bad param", `{"workload":"qrw","param":0,"shots":5}`},
		{"unknown controller", `{"workload":"qrw","param":3,"shots":5,"controller":"nope"}`},
		{"zero shots", `{"workload":"qrw","param":3,"shots":0}`},
		{"too many shots", `{"workload":"qrw","param":3,"shots":101}`},
		{"range over cap", `{"workload":"qrw","param":3,"shots":50,"shot_offset":60}`},
		{"offset overflows the range sum", `{"workload":"qrw","param":3,"shots":5,"shot_offset":9223372036854775807}`},
		{"bad mode", `{"workload":"qrw","param":3,"shots":5,"options":{"mode":"nope"}}`},
		{"bad theta", `{"workload":"qrw","param":3,"shots":5,"options":{"theta":1.5}}`},
		{"bad history depth", `{"workload":"qrw","param":3,"shots":5,"options":{"history_depth":99}}`},
	}
	for _, c := range cases {
		resp := postJob(t, ts.URL, c.body)
		var eb ErrorBody
		err := json.NewDecoder(resp.Body).Decode(&eb)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, resp.StatusCode)
		}
		if err != nil || eb.Error == "" {
			t.Errorf("%s: error body %+v (decode err %v)", c.name, eb, err)
		}
	}
}

// TestUnknownJob404 checks status and stream of a nonexistent job.
func TestUnknownJob404(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, path := range []string{"/v1/jobs/job-999", "/v1/jobs/job-999/stream"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// streamedLine is the union of the two NDJSON shapes, for test decoding.
type streamedLine struct {
	ShotEvent
	Done   bool    `json:"done"`
	State  string  `json:"state"`
	Result *Result `json:"result"`
}

// readStream consumes a job's NDJSON stream to its terminal line.
func readStream(t *testing.T, base, id string) (events []ShotEvent, end streamedLine) {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var l streamedLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if l.Done {
			return events, l
		}
		events = append(events, l.ShotEvent)
	}
	t.Fatalf("stream ended without a done line (%v)", sc.Err())
	return nil, streamedLine{}
}

// TestStreamMatchesFinalResult runs a real job end to end over HTTP and
// checks the NDJSON stream is consistent with the final result: one event
// per shot, in shot order, terminal line carrying the same result document
// the status endpoint reports.
func TestStreamMatchesFinalResult(t *testing.T) {
	s := New(Config{QueueDepth: 4, MaxConcurrentJobs: 1, WorkerBudget: 2})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	const shots = 30
	resp := postJob(t, ts.URL, fmt.Sprintf(
		`{"workload":"qrw","param":3,"shots":%d,"seed":11,"options":{"state_sim":false}}`, shots))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	js := decodeStatus(t, resp)

	events, end := readStream(t, ts.URL, js.ID)
	if end.State != StateDone || end.Result == nil {
		t.Fatalf("stream end %+v, want done with result", end)
	}
	if len(events) != shots || end.Result.Shots != shots {
		t.Fatalf("streamed %d events, result %d shots, want %d", len(events), end.Result.Shots, shots)
	}
	for i, ev := range events {
		if ev.Shot != i {
			t.Fatalf("event %d has shot index %d: stream out of order", i, ev.Shot)
		}
		if ev.Fidelity != nil {
			t.Errorf("event %d: fidelity %v, want null with state_sim off", i, *ev.Fidelity)
		}
	}

	final := waitTerminal(t, ts.URL, js.ID)
	if final.State != StateDone || final.Result == nil || final.ShotsStreamed != shots {
		t.Fatalf("final status %+v", final)
	}
	streamJSON, _ := json.Marshal(end.Result)
	statusJSON, _ := json.Marshal(final.Result)
	if !bytes.Equal(streamJSON, statusJSON) {
		t.Errorf("stream result %s\n!= status result %s", streamJSON, statusJSON)
	}

	// A late subscriber replays the identical committed history.
	replayed, end2 := readStream(t, ts.URL, js.ID)
	a, _ := json.Marshal(events)
	b, _ := json.Marshal(replayed)
	if !bytes.Equal(a, b) {
		t.Error("replayed event history differs from the live stream")
	}
	if end2.State != StateDone {
		t.Errorf("replayed end state %q", end2.State)
	}
}

// TestGracefulShutdownDrain starts a long job plus a queued one, then
// shuts down: admission must stop (503), the running job must finish with
// a deterministic canceled prefix, and the queued job must be canceled
// without running.
func TestGracefulShutdownDrain(t *testing.T) {
	s := New(Config{QueueDepth: 4, MaxConcurrentJobs: 1, WorkerBudget: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Long enough that the drain always lands mid-run: ~500k latency-only
	// shots take seconds, and cancellation is polled every 32 shots.
	respA := postJob(t, ts.URL, `{"workload":"qrw","param":5,"shots":500000,"seed":3,"options":{"state_sim":false}}`)
	if respA.StatusCode != http.StatusAccepted {
		t.Fatalf("job A: status %d", respA.StatusCode)
	}
	a := decodeStatus(t, respA)

	// Wait until A is demonstrably running (events committed).
	deadline := time.Now().Add(20 * time.Second)
	for {
		js, _ := getStatus(t, ts.URL, a.ID)
		if js.State == StateRunning && js.ShotsStreamed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job A never started streaming: %+v", js)
		}
		time.Sleep(5 * time.Millisecond)
	}

	respB := postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":100}`)
	if respB.StatusCode != http.StatusAccepted {
		t.Fatalf("job B: status %d", respB.StatusCode)
	}
	b := decodeStatus(t, respB)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v, want nil (idempotent)", err)
	}

	// Admission is closed: POST → 503, /readyz → 503, /healthz still 200.
	respC := postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":5}`)
	respC.Body.Close()
	if respC.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST after shutdown: status %d, want 503", respC.StatusCode)
	}
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz after shutdown: status %d, want 503", ready.StatusCode)
	}
	healthy, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	healthy.Body.Close()
	if healthy.StatusCode != http.StatusOK {
		t.Errorf("/healthz after shutdown: status %d, want 200", healthy.StatusCode)
	}

	// Job A: done, with a deterministic canceled prefix.
	finalA, _ := getStatus(t, ts.URL, a.ID)
	if finalA.State != StateDone || finalA.Result == nil {
		t.Fatalf("drained job A: %+v", finalA)
	}
	if !finalA.Result.Canceled {
		t.Error("job A result not marked canceled")
	}
	if finalA.Result.Shots <= 0 || finalA.Result.Shots >= 500000 {
		t.Errorf("job A merged %d shots, want a proper prefix of 500000", finalA.Result.Shots)
	}
	if finalA.ShotsStreamed != finalA.Result.Shots {
		t.Errorf("job A streamed %d events but result covers %d shots", finalA.ShotsStreamed, finalA.Result.Shots)
	}

	// Job B: canceled without running.
	finalB, _ := getStatus(t, ts.URL, b.ID)
	if finalB.State != StateCanceled || finalB.ShotsStreamed != 0 {
		t.Fatalf("queued job B after drain: %+v", finalB)
	}

	// The stream of a terminal job still replays and terminates.
	events, end := readStream(t, ts.URL, a.ID)
	if len(events) != finalA.Result.Shots || end.State != StateDone {
		t.Errorf("post-drain stream: %d events, end %+v", len(events), end)
	}
}

// TestMetricsEndpoint checks /metrics serves the Prometheus exposition
// with the server's instruments.
func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("/metrics Content-Type = %q", resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{
		"artery_server_jobs_submitted_total",
		"artery_server_jobs_rejected_total",
		"artery_server_queue_depth",
		"artery_server_job_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestFailedJobSurfacesError covers the failed state: an executor error is
// reported on the status document and the stream's terminal line.
func TestFailedJobSurfacesError(t *testing.T) {
	s := New(Config{MaxConcurrentJobs: 1})
	s.runJob = func(ctx context.Context, j *Job) {
		j.fail("engine exploded", s.now())
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	resp := postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":5}`)
	js := decodeStatus(t, resp)
	final := waitTerminal(t, ts.URL, js.ID)
	if final.State != StateFailed || final.Error != "engine exploded" {
		t.Fatalf("failed job status: %+v", final)
	}
	_, end := readStream(t, ts.URL, js.ID)
	if end.State != StateFailed {
		t.Errorf("stream end state %q, want failed", end.State)
	}
}
