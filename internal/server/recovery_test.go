package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"artery/api"
	"artery/internal/store"
)

// storedServer runs a store-backed server over httptest with a bounded
// lifetime; shutdown closes the store too, like arteryd does.
type storedServer struct {
	s  *Server
	st *store.Store
	ts *httptest.Server
}

func startStored(t *testing.T, dir string, cfg Config) *storedServer {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("store.Open(%s): %v", dir, err)
	}
	cfg.Store = st
	s := New(cfg)
	s.Start()
	return &storedServer{s: s, st: st, ts: httptest.NewServer(s.Handler())}
}

func (ss *storedServer) stop(t *testing.T) {
	t.Helper()
	ss.ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	ss.s.Shutdown(ctx)
	ss.st.Close()
}

// rawStream fetches a job's full NDJSON stream body — the byte-level
// contract crash recovery must preserve.
func rawStream(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET stream: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runGolden executes req on a store-backed server and returns the
// uninterrupted run's result JSON, raw stream bytes, and the journaled
// full-fidelity events (stage deltas included) for building truncated
// journals.
func runGolden(t *testing.T, cfg Config, req string) (id string, result, stream []byte, full []api.ShotEvent, parsed Request) {
	t.Helper()
	ss := startStored(t, t.TempDir(), cfg)
	defer ss.stop(t)
	resp := postJob(t, ss.ts.URL, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	js := decodeStatus(t, resp)
	final := waitTerminal(t, ss.ts.URL, js.ID)
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("golden job ended %s: %s", final.State, final.Error)
	}
	result, _ = json.Marshal(final.Result)
	stream = rawStream(t, ss.ts.URL, js.ID)
	full, err := ss.st.Events(js.ID, 0)
	if err != nil {
		t.Fatalf("journaled events: %v", err)
	}
	return js.ID, result, stream, full, final.Request
}

// buildCrashedJournal fabricates the data dir a SIGKILLed server leaves
// behind: the job record and its first k merged events, no terminal
// record. (Equivalent to killing the process mid-run with everything up
// to event k durable.)
func buildCrashedJournal(t *testing.T, dir, id string, req Request, events []api.ShotEvent, k int) {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.JobSubmitted(id, req); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[:k] {
		if err := st.ShotEvent(id, ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRecoveryBitIdentity is the durability contract end to end: a
// job killed mid-run (journal truncated at k durable events) is
// re-admitted at boot, resumed from shot k, and must reproduce the
// uninterrupted run's result JSON and full NDJSON stream byte for byte —
// at every cut point, at any worker budget, on both simulation backends.
func TestCrashRecoveryBitIdentity(t *testing.T) {
	cases := []struct {
		name string
		req  string
	}{
		// state-vector backend, stage deltas on the public stream
		{"state-qrw", `{"workload":"qrw","param":4,"shots":40,"seed":11,"stream_stages":true}`},
		// stabilizer tableau backend, public stream without stages (the
		// journal still carries them; serving must trim)
		{"stabilizer-surface", `{"workload":"surface","param":3,"shots":30,"seed":9,"options":{"backend":"stabilizer"}}`},
	}
	budgets := []int{1, 4}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			id, wantRes, wantStream, full, req := runGolden(t, Config{MaxConcurrentJobs: 1, WorkerBudget: 1}, tc.req)
			cuts := []int{0, 1, len(full) / 2, len(full) - 1, len(full)}
			for _, budget := range budgets {
				for _, k := range cuts {
					t.Run(fmt.Sprintf("budget%d-cut%d", budget, k), func(t *testing.T) {
						dir := t.TempDir()
						buildCrashedJournal(t, dir, id, req, full, k)
						ss := startStored(t, dir, Config{MaxConcurrentJobs: 1, WorkerBudget: budget, CheckpointShots: 8})
						defer ss.stop(t)
						final := waitTerminal(t, ss.ts.URL, id)
						if final.State != StateDone || final.Result == nil {
							t.Fatalf("resumed job ended %s: %s", final.State, final.Error)
						}
						gotRes, _ := json.Marshal(final.Result)
						if !bytes.Equal(wantRes, gotRes) {
							t.Errorf("result drifted after crash at %d:\nwant %s\ngot  %s", k, wantRes, gotRes)
						}
						if got := rawStream(t, ss.ts.URL, id); !bytes.Equal(wantStream, got) {
							t.Errorf("stream drifted after crash at %d:\nwant %s\ngot  %s", k, wantStream, got)
						}
					})
				}
			}
		})
	}
}

// TestDoubleCrashRecovery kills the job twice — once at event 5, then
// again (with more events durable) at event 23 — and the second resume
// must still land on the golden bytes: recovery composes.
func TestDoubleCrashRecovery(t *testing.T) {
	reqJSON := `{"workload":"qrw","param":4,"shots":40,"seed":11,"stream_stages":true}`
	id, wantRes, wantStream, full, req := runGolden(t, Config{MaxConcurrentJobs: 1, WorkerBudget: 2}, reqJSON)

	dir := t.TempDir()
	buildCrashedJournal(t, dir, id, req, full, 5)
	// First recovery: run it but "crash" again by rebuilding a longer
	// prefix from what this run journaled.
	ss := startStored(t, dir, Config{MaxConcurrentJobs: 1, WorkerBudget: 2, CheckpointShots: 4})
	waitTerminal(t, ss.ts.URL, id)
	mid, err := ss.st.Events(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	ss.stop(t)
	if len(mid) != len(full) {
		t.Fatalf("first recovery journaled %d events, want %d", len(mid), len(full))
	}

	dir2 := t.TempDir()
	buildCrashedJournal(t, dir2, id, req, mid, 23)
	ss2 := startStored(t, dir2, Config{MaxConcurrentJobs: 1, WorkerBudget: 2, CheckpointShots: 4})
	defer ss2.stop(t)
	final := waitTerminal(t, ss2.ts.URL, id)
	gotRes, _ := json.Marshal(final.Result)
	if !bytes.Equal(wantRes, gotRes) {
		t.Errorf("result drifted after double crash:\nwant %s\ngot  %s", wantRes, gotRes)
	}
	if got := rawStream(t, ss2.ts.URL, id); !bytes.Equal(wantStream, got) {
		t.Error("stream drifted after double crash")
	}
}

// TestRestartServesFinishedJobFromDisk: a completed job survives a
// restart — status and byte-identical stream replay come from the
// journal, with ?from= resume and schema trimming intact.
func TestRestartServesFinishedJobFromDisk(t *testing.T) {
	dir := t.TempDir()
	ss := startStored(t, dir, Config{MaxConcurrentJobs: 1})
	resp := postJob(t, ss.ts.URL, `{"workload":"qrw","param":4,"shots":12,"seed":3}`)
	js := decodeStatus(t, resp)
	final := waitTerminal(t, ss.ts.URL, js.ID)
	wantRes, _ := json.Marshal(final.Result)
	wantStream := rawStream(t, ss.ts.URL, js.ID)
	ss.stop(t)

	ss2 := startStored(t, dir, Config{MaxConcurrentJobs: 1})
	defer ss2.stop(t)
	got, code := getStatus(t, ss2.ts.URL, js.ID)
	if code != http.StatusOK || got.State != StateDone {
		t.Fatalf("restarted GET: status %d, state %q", code, got.State)
	}
	gotRes, _ := json.Marshal(got.Result)
	if !bytes.Equal(wantRes, gotRes) {
		t.Errorf("disk-served result drifted:\nwant %s\ngot  %s", wantRes, gotRes)
	}
	if gotStream := rawStream(t, ss2.ts.URL, js.ID); !bytes.Equal(wantStream, gotStream) {
		t.Errorf("disk-served stream drifted:\nwant %s\ngot  %s", wantStream, gotStream)
	}
	// Stage deltas were journaled but the request did not ask for them on
	// the stream: the disk replay must trim each event, like the live
	// stream did (the terminal line's result keeps its stage table).
	events, _ := readStream(t, ss2.ts.URL, js.ID)
	for i, ev := range events {
		if len(ev.Stages) != 0 {
			t.Errorf("disk-served event %d leaks journaled stage deltas", i)
			break
		}
	}
	// ?from= replays the suffix.
	respFrom, err := http.Get(ss2.ts.URL + "/v1/jobs/" + js.ID + "/stream?from=10")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(respFrom.Body)
	respFrom.Body.Close()
	if lines := bytes.Count(bytes.TrimSpace(b), []byte("\n")) + 1; lines != 3 {
		t.Errorf("from=10 replayed %d lines, want 3 (2 events + done)", lines)
	}
	// The id watermark also recovered: a beyond-watermark id is 404, an
	// unknown-but-plausible id below it would be 410 — but every issued id
	// is still in the journal here, so probe the 404 side only.
	if _, code := getStatus(t, ss2.ts.URL, "job-999"); code != http.StatusNotFound {
		t.Errorf("never-issued id after restart: %d, want 404", code)
	}
}

// TestRecoveredCanceledJob: a job whose journal holds a terminal canceled
// record (drained before running) is served as canceled after restart,
// not re-admitted.
func TestRecoveredCanceledJob(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	req := Request{Workload: "qrw", Param: 4, Shots: 10, Seed: 1}
	if err := st.JobSubmitted("job-1", req); err != nil {
		t.Fatal(err)
	}
	if err := st.Terminal("job-1", StateCanceled, "server shutting down before the job started", nil); err != nil {
		t.Fatal(err)
	}
	st.Close()

	ss := startStored(t, dir, Config{MaxConcurrentJobs: 1})
	defer ss.stop(t)
	js, code := getStatus(t, ss.ts.URL, "job-1")
	if code != http.StatusOK || js.State != StateCanceled {
		t.Fatalf("recovered canceled job: status %d, state %q", code, js.State)
	}
	// The watermark moved past the recovered id: the next submission gets
	// a fresh id, not a reused one.
	resp := postJob(t, ss.ts.URL, `{"workload":"qrw","param":4,"shots":5,"seed":2}`)
	next := decodeStatus(t, resp)
	if next.ID != "job-2" {
		t.Errorf("next id after recovery = %s, want job-2", next.ID)
	}
}

// TestNoStoreBehaviorUnchanged pins the without-data-dir contract: a
// store-less server and a store-backed server produce byte-identical
// result and stream for the same request.
func TestNoStoreBehaviorUnchanged(t *testing.T) {
	req := `{"workload":"dqt","param":2,"shots":25,"seed":21,"stream_stages":true}`

	s := New(Config{MaxConcurrentJobs: 1, WorkerBudget: 2})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	resp := postJob(t, ts.URL, req)
	js := decodeStatus(t, resp)
	final := waitTerminal(t, ts.URL, js.ID)
	bareRes, _ := json.Marshal(final.Result)
	bareStream := rawStream(t, ts.URL, js.ID)
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	s.Shutdown(ctx)

	ss := startStored(t, t.TempDir(), Config{MaxConcurrentJobs: 1, WorkerBudget: 2})
	defer ss.stop(t)
	resp2 := postJob(t, ss.ts.URL, req)
	js2 := decodeStatus(t, resp2)
	final2 := waitTerminal(t, ss.ts.URL, js2.ID)
	storedRes, _ := json.Marshal(final2.Result)
	if !bytes.Equal(bareRes, storedRes) {
		t.Errorf("store changed result bytes:\nbare   %s\nstored %s", bareRes, storedRes)
	}
	if storedStream := rawStream(t, ss.ts.URL, js2.ID); !bytes.Equal(bareStream, storedStream) {
		t.Error("store changed stream bytes")
	}
}
