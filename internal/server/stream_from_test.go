package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"artery/api"
)

// TestStreamFromResumesMidLog exercises the ?from= resume parameter: a
// subscriber that already consumed n events reconnects with from=n and
// receives exactly the tail plus the terminal line, and the tail's stage
// deltas appear when the job asked for stream_stages.
func TestStreamFromResumesMidLog(t *testing.T) {
	s := New(Config{QueueDepth: 4, MaxConcurrentJobs: 1, WorkerBudget: 2})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(t.Context())

	const shots = 12
	body := `{"workload":"qrw","param":3,"shots":12,"seed":5,"stream_stages":true,"options":{"state_sim":false}}`
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var js JobStatus
	json.NewDecoder(resp.Body).Decode(&js)
	resp.Body.Close()

	deadline := time.Now().Add(30 * time.Second)
	for {
		st, _ := http.Get(ts.URL + "/v1/jobs/" + js.ID)
		var cur JobStatus
		json.NewDecoder(st.Body).Decode(&cur)
		st.Body.Close()
		if api.Terminal(cur.State) {
			if cur.State != api.StateDone {
				t.Fatalf("job ended %s: %s", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}

	const from = 7
	resp, err = http.Get(ts.URL + "/v1/jobs/" + js.ID + "/stream?from=" + "7")
	if err != nil {
		t.Fatalf("stream?from: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	events, sawEnd := 0, false
	for sc.Scan() {
		var line struct {
			ShotEvent
			Done bool `json:"done"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if line.Done {
			sawEnd = true
			break
		}
		if want := from + events; line.Shot != want {
			t.Fatalf("resumed event %d carries shot %d, want %d", events, line.Shot, want)
		}
		if len(line.Stages) == 0 {
			t.Fatalf("resumed event for shot %d has no stage deltas despite stream_stages", line.Shot)
		}
		events++
	}
	if !sawEnd || events != shots-from {
		t.Fatalf("resume delivered %d events (end=%v), want %d", events, sawEnd, shots-from)
	}

	// Invalid from fails with 400, not a hung stream.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + js.ID + "/stream?from=-3")
	if err != nil {
		t.Fatalf("stream?from=-3: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("from=-3 returned %d, want 400", resp.StatusCode)
	}
}
