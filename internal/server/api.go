// Package server is arteryd's serving subsystem: an HTTP/JSON job
// service in front of the deterministic parallel engine. It exposes
//
//	POST /v1/jobs             submit a workload run (202, or 429 + Retry-After when the queue is full)
//	GET  /v1/jobs/{id}        job status and, when finished, the result
//	GET  /v1/jobs/{id}/stream NDJSON per-shot updates as the merge path commits shots
//	GET  /metrics             Prometheus text exposition of the server's counters/gauges/histograms
//	GET  /healthz, /readyz    liveness / admission readiness
//
// A bounded queue provides backpressure (admission control never buffers
// unbounded memory), a fixed-size dispatcher pool shares the machine's
// worker budget across concurrent jobs, every job runs through
// artery.RunStream with its own seed — so results are bit-identical
// regardless of co-tenancy — and graceful shutdown stops admission,
// cancels in-flight jobs via their context and reports each one's
// deterministic canceled prefix.
package server

import "artery"

// Request is the POST /v1/jobs body: which workload to run, under which
// controller, for how many shots, from which seed.
type Request struct {
	// Workload names a registered benchmark (see artery.WorkloadNames:
	// qrw, rcnot, dqt, rusqnn, reset, qec, eswap, msi).
	Workload string `json:"workload"`
	// Param is the workload size parameter
	// (steps/depth/distance/cycles/qubits).
	Param int `json:"param"`
	// Controller selects the feedback controller (default "ARTERY"; see
	// artery.ControllerNames).
	Controller string `json:"controller,omitempty"`
	// Shots is the number of shots to execute (1 ..= the server's MaxShots).
	Shots int `json:"shots"`
	// Seed drives every stochastic component of the job's private system;
	// identical requests with identical seeds produce byte-identical
	// results at any worker budget. Zero selects seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// Options carries the optional calibration settings.
	Options *RequestOptions `json:"options,omitempty"`
}

// RequestOptions mirrors the artery.Options knobs a wire request may set.
// Zero values select the paper's evaluation configuration.
type RequestOptions struct {
	WindowNs     float64 `json:"window_ns,omitempty"`
	HistoryDepth int     `json:"history_depth,omitempty"`
	Theta        float64 `json:"theta,omitempty"`
	// Mode selects the predictor features: "combined" (default),
	// "history" or "trajectory".
	Mode string `json:"mode,omitempty"`
	// StateSim enables the per-shot fidelity simulation (default true, as
	// in the library). Disable for latency-only sweeps.
	StateSim            *bool   `json:"state_sim,omitempty"`
	DynamicalDecoupling bool    `json:"dynamical_decoupling,omitempty"`
	QuasiStaticSigma    float64 `json:"quasi_static_sigma,omitempty"`
	// Backend selects the simulation backend: "auto" (default), "state"
	// or "stabilizer". An unknown name, or an explicit backend the
	// workload cannot run on, is rejected at admission time.
	Backend string `json:"backend,omitempty"`
}

// modeByName maps the wire predictor-mode names onto artery's constants.
var modeByName = map[string]artery.PredictorMode{
	"":           artery.ModeCombined,
	"combined":   artery.ModeCombined,
	"history":    artery.ModeHistory,
	"trajectory": artery.ModeTrajectory,
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the GET /v1/jobs/{id} body (and the POST response).
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Request echoes the submitted request, so a client can resubmit a
	// job (same seed → byte-identical result) without keeping it around.
	Request Request `json:"request"`
	// ShotsStreamed is the number of per-shot updates committed so far.
	ShotsStreamed int `json:"shots_streamed"`
	// Error is set for failed jobs.
	Error string `json:"error,omitempty"`
	// Result is set once the job reaches a terminal state with a result
	// (done — including canceled-prefix results after a drain).
	Result *Result `json:"result,omitempty"`
	// ElapsedSec is the job's wall time so far (queue wait + run).
	ElapsedSec float64 `json:"elapsed_sec"`
}

// Result is the wire form of an artery.Report. Fidelity is a pointer so
// the NaN of latency-only runs serializes as null (encoding/json rejects
// NaN), keeping result bytes deterministic and parseable.
type Result struct {
	Workload      string   `json:"workload"`
	Controller    string   `json:"controller"`
	Shots         int      `json:"shots"`
	MeanLatencyUs float64  `json:"mean_latency_us"`
	Accuracy      float64  `json:"accuracy"`
	CommitRate    float64  `json:"commit_rate"`
	Fidelity      *float64 `json:"fidelity"`
	Stages        []Stage  `json:"stages,omitempty"`
	// Canceled marks a deterministic canceled prefix: the run stopped
	// early (graceful drain), and the aggregates cover the Shots merged
	// shots.
	Canceled bool `json:"canceled,omitempty"`
}

// Stage is one row of the per-stage latency breakdown.
type Stage struct {
	Stage   string  `json:"stage"`
	Count   int     `json:"count"`
	TotalNs float64 `json:"total_ns"`
	MeanNs  float64 `json:"mean_ns"`
}

// ShotEvent is one NDJSON line of GET /v1/jobs/{id}/stream: one committed
// shot, in shot order. Fidelity is null when state simulation is off.
type ShotEvent struct {
	Shot      int      `json:"shot"`
	LatencyNs float64  `json:"latency_ns"`
	Fidelity  *float64 `json:"fidelity,omitempty"`
	Sites     int      `json:"sites"`
	Commits   int      `json:"commits"`
	Correct   int      `json:"correct"`
	Fallbacks int      `json:"fallbacks,omitempty"`
}

// StreamEnd is the terminal NDJSON line of a stream: the job's final
// state and result.
type StreamEnd struct {
	Done   bool    `json:"done"`
	State  string  `json:"state"`
	Error  string  `json:"error,omitempty"`
	Result *Result `json:"result,omitempty"`
}

// ErrorBody is the JSON body of every non-2xx response.
type ErrorBody struct {
	Error string `json:"error"`
	// RetryAfterSec echoes the Retry-After header of 429 responses, for
	// clients that prefer the body.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// resultFrom converts a finished run's Report to its wire form.
func resultFrom(rep artery.Report) *Result {
	r := &Result{
		Workload:      rep.Workload,
		Controller:    rep.Controller,
		Shots:         rep.Shots,
		MeanLatencyUs: rep.MeanLatencyUs,
		Accuracy:      rep.Accuracy,
		CommitRate:    rep.CommitRate,
		Fidelity:      floatPtr(rep.Fidelity),
		Canceled:      rep.Canceled,
	}
	for _, st := range rep.Stages {
		r.Stages = append(r.Stages, Stage{Stage: st.Stage, Count: st.Count, TotalNs: st.TotalNs, MeanNs: st.MeanNs})
	}
	return r
}

// eventFrom converts a streaming ShotUpdate to its wire form.
func eventFrom(u artery.ShotUpdate) ShotEvent {
	return ShotEvent{
		Shot:      u.Shot,
		LatencyNs: u.LatencyNs,
		Fidelity:  floatPtr(u.Fidelity),
		Sites:     u.Sites,
		Commits:   u.Commits,
		Correct:   u.Correct,
		Fallbacks: u.Fallbacks,
	}
}

// floatPtr maps NaN to nil (JSON null) and everything else to &v.
func floatPtr(v float64) *float64 {
	if v != v {
		return nil
	}
	return &v
}
