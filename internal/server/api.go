// Package server is arteryd's serving subsystem: an HTTP/JSON job
// service in front of the deterministic parallel engine. It exposes
//
//	POST /v1/jobs             submit a workload run (202, or 429 + Retry-After when the queue is full)
//	GET  /v1/jobs/{id}        job status and, when finished, the result
//	GET  /v1/jobs/{id}/stream NDJSON per-shot updates as the merge path commits shots (?from=N resumes)
//	GET  /metrics             Prometheus text exposition of the server's counters/gauges/histograms
//	GET  /healthz, /readyz    liveness / admission readiness
//
// A bounded queue provides backpressure (admission control never buffers
// unbounded memory), a fixed-size dispatcher pool shares the machine's
// worker budget across concurrent jobs, every job runs through
// artery.RunRangeStream with its own seed — so results are bit-identical
// regardless of co-tenancy — and graceful shutdown stops admission,
// cancels in-flight jobs via their context and reports each one's
// deterministic canceled prefix.
//
// The wire schema lives in the shared artery/api package (imported by the
// server, the scatter-gather coordinator and the Go client alike, so the
// three cannot drift). The aliases below preserve this package's original
// names.
package server

import "artery/api"

// Wire types, shared with the coordinator and the client.
//
// Deprecated: the canonical definitions moved to artery/api; these aliases
// remain so existing imports keep compiling. New code should import
// artery/api directly.
type (
	// Request is the POST /v1/jobs body (see api.Request).
	Request = api.Request
	// RequestOptions mirrors the artery.Options knobs a wire request may set.
	RequestOptions = api.RequestOptions
	// JobStatus is the GET /v1/jobs/{id} body (and the POST response).
	JobStatus = api.JobStatus
	// Result is the wire form of an artery.Report.
	Result = api.Result
	// Stage is one row of the per-stage latency breakdown.
	Stage = api.Stage
	// ShotEvent is one NDJSON line of GET /v1/jobs/{id}/stream.
	ShotEvent = api.ShotEvent
	// StreamEnd is the terminal NDJSON line of a stream.
	StreamEnd = api.StreamEnd
	// ErrorBody is the JSON body of every non-2xx response.
	ErrorBody = api.ErrorBody
)

// Job states.
//
// Deprecated: use the api package's constants.
const (
	StateQueued   = api.StateQueued
	StateRunning  = api.StateRunning
	StateDone     = api.StateDone
	StateFailed   = api.StateFailed
	StateCanceled = api.StateCanceled
)
