package server

import (
	"sync"
	"time"

	"artery"
	"artery/api"
)

// Job is one submitted run moving through the queue. All mutable state is
// guarded by mu; every mutation broadcasts to streaming subscribers by
// closing (and replacing) notify.
type Job struct {
	ID  string
	Req Request
	// wl is the workload built (and validated) at admission time;
	// building it once keeps submit errors synchronous and the run path
	// cheap.
	wl *artery.Workload

	mu       sync.Mutex
	state    string
	err      string
	result   *Result
	events   []ShotEvent
	notify   chan struct{}
	accepted time.Time
	finished time.Time
}

func newJob(id string, req Request, wl *artery.Workload, now time.Time) *Job {
	return &Job{
		ID:       id,
		Req:      req,
		wl:       wl,
		state:    StateQueued,
		notify:   make(chan struct{}),
		accepted: now,
	}
}

// broadcast wakes every subscriber. Callers must hold j.mu.
func (j *Job) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// terminal reports whether state is one of the three end states.
func terminal(state string) bool { return api.Terminal(state) }

// setRunning transitions queued → running.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.broadcast()
}

// complete records the final result (including deterministic canceled
// prefixes, which are still results) and transitions to done.
func (j *Job) complete(res *Result, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.result = res
	j.finished = now
	j.broadcast()
}

// fail records a job error (invalid options, engine failure).
func (j *Job) fail(msg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateFailed
	j.err = msg
	j.finished = now
	j.broadcast()
}

// cancel marks a queued job that will never run (server drain).
func (j *Job) cancel(msg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateCanceled
	j.err = msg
	j.finished = now
	j.broadcast()
}

// AppendEvent, Complete and Fail are the external-executor mutators (see
// Config.Executor): a custom executor commits merged per-shot events and
// drives the job to its terminal state through them.

// AppendEvent commits one per-shot update to the job's event log.
func (j *Job) AppendEvent(ev ShotEvent) { j.appendEvent(ev) }

// Complete records the job's final result and transitions it to done.
func (j *Job) Complete(res *Result) { j.complete(res, time.Now()) }

// Fail records a job error and transitions it to failed.
func (j *Job) Fail(msg string) { j.fail(msg, time.Now()) }

// appendEvent commits one per-shot update to the job's event log. Events
// arrive from the engine's merge path in shot order; the log is the
// stream's replay buffer, so late subscribers see the full history.
func (j *Job) appendEvent(ev ShotEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	j.broadcast()
}

// snapshot returns the job's status document.
func (j *Job) snapshot(now time.Time) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := now
	if !j.finished.IsZero() {
		end = j.finished
	}
	return JobStatus{
		ID:            j.ID,
		State:         j.state,
		Request:       j.Req,
		ShotsStreamed: len(j.events),
		Error:         j.err,
		Result:        j.result,
		ElapsedSec:    end.Sub(j.accepted).Seconds(),
	}
}

// follow returns the events in [from, len), the current state/err/result,
// and a channel that closes on the next mutation — everything a streaming
// subscriber needs to copy state out without holding the lock while
// writing to a (possibly slow) client.
func (j *Job) follow(from int) (events []ShotEvent, state string, end StreamEnd, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		events = append(events, j.events[from:]...)
	}
	state = j.state
	if terminal(j.state) {
		end = StreamEnd{Done: true, State: j.state, Error: j.err, Result: j.result}
	}
	return events, state, end, j.notify
}
