package server

import (
	"sync"
	"time"

	"artery"
	"artery/api"
	"artery/internal/store"
)

// Job is one submitted run moving through the queue. All mutable state is
// guarded by mu; every mutation broadcasts to streaming subscribers by
// closing (and replacing) notify.
type Job struct {
	ID  string
	Req Request
	// wl is the workload built (and validated) at admission time;
	// building it once keeps submit errors synchronous and the run path
	// cheap.
	wl *artery.Workload

	// Durability seam, set at admission (or recovery) when the server has
	// a store. prefix is the merged-event prefix recovered from the
	// journal after a crash — the executor stitches its continuation onto
	// it. journaled counts the job's durable events (prefix included) for
	// the checkpoint cadence; journalBroken latches on the first failed
	// event append so the durable prefix stays contiguous (a gap would
	// break resume). These three are touched only by the single executor
	// goroutine that owns the job's merge path, so they need no lock.
	store         *store.Store
	ckptEvery     int
	prefix        []api.ShotEvent
	journaled     int
	journalBroken bool

	mu       sync.Mutex
	state    string
	err      string
	result   *Result
	events   []ShotEvent
	notify   chan struct{}
	accepted time.Time
	finished time.Time
}

func newJob(id string, req Request, wl *artery.Workload, now time.Time) *Job {
	return &Job{
		ID:       id,
		Req:      req,
		wl:       wl,
		state:    StateQueued,
		notify:   make(chan struct{}),
		accepted: now,
	}
}

// broadcast wakes every subscriber. Callers must hold j.mu.
func (j *Job) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// terminal reports whether state is one of the three end states.
func terminal(state string) bool { return api.Terminal(state) }

// setRunning transitions queued → running.
func (j *Job) setRunning() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.broadcast()
}

// complete records the final result (including deterministic canceled
// prefixes, which are still results) and transitions to done.
func (j *Job) complete(res *Result, now time.Time) {
	j.mu.Lock()
	j.state = StateDone
	j.result = res
	j.finished = now
	j.broadcast()
	j.mu.Unlock()
	j.journalEnd(StateDone, "", res)
}

// fail records a job error (invalid options, engine failure).
func (j *Job) fail(msg string, now time.Time) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = msg
	j.finished = now
	j.broadcast()
	j.mu.Unlock()
	j.journalEnd(StateFailed, msg, nil)
}

// cancel marks a queued job that will never run (server drain).
func (j *Job) cancel(msg string, now time.Time) {
	j.mu.Lock()
	j.state = StateCanceled
	j.err = msg
	j.finished = now
	j.broadcast()
	j.mu.Unlock()
	j.journalEnd(StateCanceled, msg, nil)
}

// journalEnd writes the job's terminal record. The store fsyncs it (a
// result promise survives the next crash); append failures are already
// counted by the store and a live client still gets its in-memory result.
func (j *Job) journalEnd(state, errMsg string, res *Result) {
	if j.store == nil {
		return
	}
	j.store.Terminal(j.ID, state, errMsg, res)
}

// AppendEvent, AppendFull, Prefix, Complete and Fail are the
// external-executor mutators (see Config.Executor): a custom executor
// commits merged per-shot events and drives the job to its terminal state
// through them.

// AppendEvent commits one per-shot update to the job's event log.
func (j *Job) AppendEvent(ev ShotEvent) { j.appendEvent(ev) }

// AppendFull commits one merged per-shot event that carries its stage
// deltas: journaled first (when a store is configured, with a checkpoint
// barrier every ckptEvery events), then appended to the in-memory log
// trimmed to the subscriber schema (stage deltas ride the public stream
// only when the request asked for them). Must be called from the job's
// single merge-path goroutine, in shot order.
func (j *Job) AppendFull(ev ShotEvent) {
	if j.store != nil && !j.journalBroken {
		if err := j.store.ShotEvent(j.ID, ev); err != nil {
			// First failure latches: journaling more events would leave a
			// gap in the durable prefix, which must stay contiguous for
			// resume to be sound. The job itself keeps running.
			j.journalBroken = true
		} else {
			j.journaled++
			if j.ckptEvery > 0 && j.journaled%j.ckptEvery == 0 {
				j.store.Checkpoint(j.ID, j.journaled)
			}
		}
	}
	j.appendEvent(api.TrimStages(ev, j.Req.StreamStages))
}

// Prefix returns the job's recovered merged-event prefix: the per-shot
// events (stage deltas included) that were durable when the previous
// process died. Executors stitch their continuation onto it — run only
// [ShotOffset+len(prefix), ShotOffset+Shots) and seed the result fold
// with these events. Empty for jobs admitted by this process.
func (j *Job) Prefix() []api.ShotEvent { return j.prefix }

// Complete records the job's final result and transitions it to done.
func (j *Job) Complete(res *Result) { j.complete(res, time.Now()) }

// Fail records a job error and transitions it to failed.
func (j *Job) Fail(msg string) { j.fail(msg, time.Now()) }

// appendEvent commits one per-shot update to the job's event log. Events
// arrive from the engine's merge path in shot order; the log is the
// stream's replay buffer, so late subscribers see the full history.
func (j *Job) appendEvent(ev ShotEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.events = append(j.events, ev)
	j.broadcast()
}

// snapshot returns the job's status document.
func (j *Job) snapshot(now time.Time) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := now
	if !j.finished.IsZero() {
		end = j.finished
	}
	return JobStatus{
		ID:            j.ID,
		State:         j.state,
		Request:       j.Req,
		ShotsStreamed: len(j.events),
		Error:         j.err,
		Result:        j.result,
		ElapsedSec:    end.Sub(j.accepted).Seconds(),
	}
}

// follow returns the events in [from, len), the current state/err/result,
// and a channel that closes on the next mutation — everything a streaming
// subscriber needs to copy state out without holding the lock while
// writing to a (possibly slow) client.
func (j *Job) follow(from int) (events []ShotEvent, state string, end StreamEnd, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.events) {
		events = append(events, j.events[from:]...)
	}
	state = j.state
	if terminal(j.state) {
		end = StreamEnd{Done: true, State: j.state, Error: j.err, Result: j.result}
	}
	return events, state, end, j.notify
}
