package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"artery"
	"artery/api"
	"artery/internal/store"
	"artery/internal/trace"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// QueueDepth bounds the admission queue: submissions beyond it are
	// rejected with 429 + Retry-After instead of buffered (default 64).
	QueueDepth int
	// MaxConcurrentJobs is the dispatcher pool size — how many jobs run
	// at once (default 2).
	MaxConcurrentJobs int
	// WorkerBudget is the total shot-level worker budget shared by all
	// concurrent jobs; each job's engine gets WorkerBudget /
	// MaxConcurrentJobs workers (min 1), so many small jobs batch onto a
	// fixed pool instead of each spinning up its own. Results are
	// bit-identical at any budget (default GOMAXPROCS).
	WorkerBudget int
	// MaxShots caps a single request's shot count (default 1_000_000).
	MaxShots int
	// MaxRetainedJobs bounds the finished-job cache: beyond it, the
	// oldest terminal jobs are evicted, keeping server memory bounded
	// under sustained traffic (default 1024).
	MaxRetainedJobs int
	// ReadyCheck, when set, adds a readiness predicate to /readyz beyond
	// "accepting": a non-nil error answers 503 with the error text. The
	// coordinator uses it to report not-ready while zero backends are
	// healthy, so load balancers drain a cluster that cannot serve.
	ReadyCheck func() error
	// AdmissionGate, when set, is consulted before every submission is
	// admitted: a non-nil error sheds the request with a 503 instead of
	// queueing work that cannot run (the coordinator sheds while zero
	// backends are healthy).
	AdmissionGate func() error
	// Executor, when set, replaces the built-in local engine executor:
	// the dispatcher pool invokes it for every job pulled off the queue,
	// and it must drive the job to a terminal state (Complete or Fail)
	// before returning, honoring ctx for drains. This is how the
	// scatter-gather coordinator (internal/cluster) reuses the server's
	// admission control, job table, streaming and shutdown while
	// executing jobs on remote backends instead of the local engine.
	Executor func(ctx context.Context, j *Job)
	// Store, when non-nil, makes jobs durable (see internal/store): every
	// accepted request is journaled before the 202, merged events and
	// results are journaled as they commit, finished jobs survive both
	// memory eviction and restarts (status and stream replay come from
	// disk), and jobs killed mid-run are re-admitted at boot to resume
	// from their last durable shot — byte-identically to an uninterrupted
	// run. Nil keeps the server fully in-memory, exactly as before.
	Store *store.Store
	// CheckpointShots is the journal checkpoint cadence: a durability
	// barrier is forced every N merged shots per job (default 256). Only
	// meaningful with Store.
	CheckpointShots int
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxConcurrentJobs == 0 {
		c.MaxConcurrentJobs = 2
	}
	if c.WorkerBudget == 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.MaxShots == 0 {
		c.MaxShots = 1_000_000
	}
	if c.MaxRetainedJobs == 0 {
		c.MaxRetainedJobs = 1024
	}
	if c.CheckpointShots == 0 {
		c.CheckpointShots = 256
	}
	return c
}

// serverMetrics are the service-level instruments exposed on /metrics.
type serverMetrics struct {
	submitted, rejected, shed     *trace.Counter
	completed, failed, canceled   *trace.Counter
	shotsStreamed                 *trace.Counter
	deadlineExpired               *trace.Counter
	queueDepth, running, draining *trace.Gauge
	jobSeconds                    *trace.Histogram
}

func newServerMetrics(reg *trace.Registry) serverMetrics {
	return serverMetrics{
		submitted:       reg.Counter("artery_server_jobs_submitted_total", "jobs accepted into the queue"),
		rejected:        reg.Counter("artery_server_jobs_rejected_total", "submissions rejected by admission control (429)"),
		shed:            reg.Counter("artery_server_jobs_shed_total", "submissions shed by the admission gate (503)"),
		deadlineExpired: reg.Counter("artery_server_deadline_expired_total", "jobs whose deadline_ms expired (before start or mid-run)"),
		completed:       reg.Counter("artery_server_jobs_completed_total", "jobs finished with a result"),
		failed:          reg.Counter("artery_server_jobs_failed_total", "jobs finished with an error"),
		canceled:        reg.Counter("artery_server_jobs_canceled_total", "queued jobs canceled by shutdown before running"),
		shotsStreamed:   reg.Counter("artery_server_shots_streamed_total", "per-shot updates committed across all jobs"),
		queueDepth:      reg.Gauge("artery_server_queue_depth", "jobs waiting in the admission queue"),
		running:         reg.Gauge("artery_server_jobs_running", "jobs currently executing"),
		draining:        reg.Gauge("artery_server_draining", "1 while the server is shutting down"),
		jobSeconds:      reg.Histogram("artery_server_job_seconds", "job wall time from admission to completion", trace.DefaultJobSecondsBuckets()),
	}
}

// Server is the job service. Construct with New, attach Handler to an
// http.Server, call Start, and Shutdown on SIGTERM.
type Server struct {
	cfg Config
	reg *trace.Registry
	m   serverMetrics
	mux *http.ServeMux

	queue     chan *Job
	runCtx    context.Context
	cancelRun context.CancelFunc
	wg        sync.WaitGroup

	mu        sync.Mutex
	jobs      map[string]*Job
	retired   []string // terminal jobs in finish order, for eviction
	nextID    int
	accepting bool
	draining  bool
	runningN  int

	// now and runJob are test seams: the clock, and the job executor the
	// dispatcher invokes (defaults to (*Server).execute).
	now    func() time.Time
	runJob func(ctx context.Context, j *Job)
}

// New builds a server (without starting its dispatcher; see Start).
func New(cfg Config) *Server {
	reg := trace.NewRegistry()
	s := &Server{
		cfg:       cfg.withDefaults(),
		reg:       reg,
		m:         newServerMetrics(reg),
		jobs:      map[string]*Job{},
		accepting: true,
		now:       time.Now,
	}
	s.queue = make(chan *Job, s.cfg.QueueDepth)
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())
	s.runJob = s.execute
	if s.cfg.Executor != nil {
		s.runJob = s.cfg.Executor
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	if s.cfg.Store != nil {
		s.cfg.Store.Instrument(reg)
		s.recoverFromStore()
	}
	return s
}

// recoverFromStore replays the journal's job index at boot (New runs
// before any handler or worker, so no locking): the id watermark is
// restored so evicted ids answer 410 instead of being reissued, terminal
// jobs stay on disk (served on demand), and jobs that were live when the
// previous process died are re-admitted as continuations — their durable
// event prefix is loaded and the executor runs only the remaining range,
// stitching a result byte-identical to an uninterrupted run.
func (s *Server) recoverFromStore() {
	st := s.cfg.Store
	for _, rec := range st.Jobs() {
		if raw, ok := strings.CutPrefix(rec.ID, "job-"); ok {
			if n, err := strconv.Atoi(raw); err == nil && n > s.nextID {
				s.nextID = n
			}
		}
		if api.Terminal(rec.State) {
			continue
		}
		wl, err := api.ValidateRequest(rec.Req, s.cfg.MaxShots)
		if err != nil {
			st.Terminal(rec.ID, StateFailed, fmt.Sprintf("recovered job failed re-validation: %v", err), nil)
			continue
		}
		events, err := st.Events(rec.ID, 0)
		if err != nil {
			st.Terminal(rec.ID, StateFailed, fmt.Sprintf("recovered job's journal could not be read: %v", err), nil)
			continue
		}
		j := newJob(rec.ID, rec.Req, wl, s.now())
		j.store, j.ckptEvery = st, s.cfg.CheckpointShots
		j.prefix = events
		j.journaled = len(events)
		for _, ev := range events {
			j.events = append(j.events, api.TrimStages(ev, rec.Req.StreamStages))
		}
		select {
		case s.queue <- j:
			s.jobs[j.ID] = j
		default:
			st.Terminal(rec.ID, StateFailed, "recovered job exceeds the admission queue", nil)
		}
	}
	s.m.queueDepth.Set(float64(len(s.queue)))
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the server's metrics registry (the /metrics source).
func (s *Server) Registry() *trace.Registry { return s.reg }

// Start launches the dispatcher pool: MaxConcurrentJobs workers pulling
// from the bounded queue.
func (s *Server) Start() {
	for i := 0; i < s.cfg.MaxConcurrentJobs; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown drains the service: admission stops (POST → 503, /readyz →
// 503), the shared run context is canceled so in-flight jobs stop at
// their next shot-batch boundary and complete with their deterministic
// canceled prefix, still-queued jobs are marked canceled without running,
// and the dispatcher pool exits. It returns ctx.Err() if the drain
// outlives ctx. Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.accepting = false
	s.draining = true
	s.m.draining.Set(1)
	close(s.queue) // admission sends happen under mu, so no send can race this
	s.mu.Unlock()
	s.cancelRun()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker is one dispatcher goroutine: it pulls queued jobs and runs them
// on the shared budget until the queue closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.m.queueDepth.Set(float64(len(s.queue)))
		if s.isDraining() {
			// Drain: queued jobs are canceled, never started.
			j.cancel("server shutting down before the job started", s.now())
			s.m.canceled.Inc()
			s.retire(j)
			continue
		}
		j.setRunning()
		s.m.running.Set(s.runningDelta(+1))
		s.startJob(j)
		s.m.running.Set(s.runningDelta(-1))
		st := j.snapshot(s.now())
		switch st.State {
		case StateDone:
			s.m.completed.Inc()
			s.m.jobSeconds.Observe(st.ElapsedSec)
		case StateFailed:
			s.m.failed.Inc()
		case StateCanceled:
			s.m.canceled.Inc()
		}
		s.retire(j)
	}
}

// startJob applies the job's deadline (api.Request.DeadlineMs, measured
// from admission) and invokes the executor. A deadline that expired while
// the job sat in the queue fails it without running; one that expires
// mid-run cancels the wrapped context, ending the job as a deterministic
// canceled prefix — exactly like a graceful drain.
func (s *Server) startJob(j *Job) {
	ctx := s.runCtx
	if j.Req.DeadlineMs > 0 {
		deadline := j.accepted.Add(time.Duration(j.Req.DeadlineMs) * time.Millisecond)
		if !s.now().Before(deadline) {
			s.m.deadlineExpired.Inc()
			j.fail(fmt.Sprintf("deadline_ms=%d expired before the job started (queued %.3fs)",
				j.Req.DeadlineMs, s.now().Sub(j.accepted).Seconds()), s.now())
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(s.runCtx, deadline)
		defer cancel()
		defer func() {
			if ctx.Err() == context.DeadlineExceeded {
				s.m.deadlineExpired.Inc()
			}
		}()
	}
	s.runSafely(ctx, j)
}

// runSafely invokes the job executor, converting a panic into a failed
// job: workers are the only dispatchers, so a panic escaping one would
// take down the whole process on behalf of a single bad request.
func (s *Server) runSafely(ctx context.Context, j *Job) {
	defer func() {
		if r := recover(); r != nil {
			if !terminal(j.snapshot(s.now()).State) {
				j.fail(fmt.Sprintf("internal error: job executor panicked: %v", r), s.now())
			}
		}
	}()
	s.runJob(ctx, j)
}

// runningDelta adjusts the running-jobs count under mu and returns the
// new value for the gauge.
func (s *Server) runningDelta(d int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.runningN += d
	return float64(s.runningN)
}

// perJobWorkers is each job's share of the worker budget.
func (s *Server) perJobWorkers() int {
	w := s.cfg.WorkerBudget / s.cfg.MaxConcurrentJobs
	if w < 1 {
		w = 1
	}
	return w
}

// execute runs one job end to end: build its private calibrated system
// from the request's seed (co-tenant jobs share nothing stochastic, so
// results are bit-identical regardless of what else is running), stream
// per-shot updates into the job's event log as the engine's merge path
// commits them, and record the final result — including the deterministic
// canceled prefix if ctx was canceled mid-run by a drain.
//
// A job recovered from the journal mid-run carries a merged-event prefix
// (Job.Prefix): the result fold is seeded with the prefix and only the
// remaining range [offset+k, offset+shots) is executed. Per-shot RNG
// streams are drawn by global shot index, so the continuation's events —
// and the re-folded result — are byte-identical to the uninterrupted run.
func (s *Server) execute(ctx context.Context, j *Job) {
	opts, ctrlName, err := buildOptions(j.Req, s.perJobWorkers())
	if err != nil {
		j.fail(err.Error(), s.now())
		return
	}
	sys, err := artery.New(opts...)
	if err != nil {
		j.fail(err.Error(), s.now())
		return
	}
	prefix := j.Prefix()
	if len(prefix) == 0 {
		// Fresh job: the engine's own report is the result. Journaled
		// events always carry stage deltas (the resume fold needs them);
		// without a store this is the exact pre-durability path.
		withStages := j.Req.StreamStages || j.store != nil
		rep, err := sys.RunRangeStream(ctx, ctrlName, j.wl, j.Req.ShotOffset, j.Req.Shots, func(u artery.ShotUpdate) {
			j.AppendFull(api.EventFrom(u, withStages))
			s.m.shotsStreamed.Inc()
		})
		if err != nil {
			j.fail(err.Error(), s.now())
			return
		}
		j.complete(api.ResultFrom(rep), s.now())
		return
	}
	agg := api.NewMerger(j.Req)
	for _, ev := range prefix {
		if err := agg.Add(ev); err != nil {
			j.fail(fmt.Sprintf("journaled prefix: %v", err), s.now())
			return
		}
	}
	lo := j.Req.ShotOffset + len(prefix)
	remaining := j.Req.Shots - len(prefix)
	if remaining <= 0 {
		// Every shot was durable; only the terminal record was lost.
		j.complete(agg.Result(false), s.now())
		return
	}
	var addErr error
	rep, err := sys.RunRangeStream(ctx, ctrlName, j.wl, lo, remaining, func(u artery.ShotUpdate) {
		ev := api.EventFrom(u, true)
		if addErr == nil {
			addErr = agg.Add(ev)
		}
		j.AppendFull(ev)
		s.m.shotsStreamed.Inc()
	})
	if err != nil {
		j.fail(err.Error(), s.now())
		return
	}
	if addErr != nil {
		j.fail(addErr.Error(), s.now())
		return
	}
	cont := api.ResultFrom(rep)
	agg.SetNames(cont)
	j.complete(agg.Result(cont.Canceled), s.now())
}

// buildOptions maps a validated wire request onto artery functional
// options plus the controller name.
func buildOptions(req Request, workers int) ([]artery.Option, string, error) {
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	opts := []artery.Option{artery.WithSeed(seed), artery.WithWorkers(workers)}
	ctrl := req.Controller
	if ctrl == "" {
		ctrl = "ARTERY"
	}
	if o := req.Options; o != nil {
		if o.WindowNs != 0 {
			opts = append(opts, artery.WithWindowNs(o.WindowNs))
		}
		if o.HistoryDepth != 0 {
			opts = append(opts, artery.WithHistoryDepth(o.HistoryDepth))
		}
		if o.Theta != 0 {
			opts = append(opts, artery.WithTheta(o.Theta))
		}
		mode, ok := api.ModeByName[o.Mode]
		if !ok {
			return nil, "", fmt.Errorf("unknown predictor mode %q (combined|history|trajectory)", o.Mode)
		}
		opts = append(opts, artery.WithMode(mode))
		if o.StateSim != nil && !*o.StateSim {
			opts = append(opts, artery.WithoutStateSim())
		}
		if o.DynamicalDecoupling {
			opts = append(opts, artery.WithDynamicalDecoupling())
		}
		if o.QuasiStaticSigma != 0 {
			opts = append(opts, artery.WithQuasiStaticSigma(o.QuasiStaticSigma))
		}
		if o.Backend != "" {
			opts = append(opts, artery.WithBackend(o.Backend))
		}
	}
	return opts, ctrl, nil
}

// validate checks a request at admission time: workload, controller,
// shot-range bounds and option ranges all fail fast with 400 instead of
// a failed job (the shared api.ValidateRequest, bound to this server's
// shot cap).
func (s *Server) validate(req Request) (*artery.Workload, error) {
	return api.ValidateRequest(req, s.cfg.MaxShots)
}

// handleSubmit is POST /v1/jobs: decode, validate, admit.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid request body: %v", err), 0)
		return
	}
	wl, err := s.validate(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if s.cfg.AdmissionGate != nil {
		if gerr := s.cfg.AdmissionGate(); gerr != nil {
			s.m.shed.Inc()
			writeError(w, http.StatusServiceUnavailable, gerr.Error(), 0)
			return
		}
	}

	s.mu.Lock()
	if !s.accepting {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is shutting down", 0)
		return
	}
	if !s.roomForJobLocked() {
		s.mu.Unlock()
		s.reject(w, "job table full")
		return
	}
	s.nextID++
	j := newJob(fmt.Sprintf("job-%d", s.nextID), req, wl, s.now())
	if st := s.cfg.Store; st != nil {
		// Journal the job before it can run or be acknowledged: the 202 is
		// the durability promise, and the journal must hold the job record
		// before any of its events (recovery drops undeclared events).
		j.store, j.ckptEvery = st, s.cfg.CheckpointShots
		if err := st.JobSubmitted(j.ID, req); err != nil {
			// The id stays burned — a partial record may have reached disk —
			// and a best-effort terminal record stops recovery from
			// resurrecting a job the client was told failed.
			st.Terminal(j.ID, StateFailed, "journal append failed at admission", nil)
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, fmt.Sprintf("journal append failed: %v", err), 0)
			return
		}
	}
	select {
	case s.queue <- j:
	default:
		if j.store != nil {
			// The id is journaled, so it cannot be reused; record the
			// rejection so recovery does not re-admit a job no client owns.
			j.store.Terminal(j.ID, StateCanceled, "admission queue full", nil)
		} else {
			s.nextID-- // job never existed
		}
		s.mu.Unlock()
		s.reject(w, "admission queue full")
		return
	}
	s.jobs[j.ID] = j
	depth := len(s.queue)
	s.mu.Unlock()

	s.m.submitted.Inc()
	s.m.queueDepth.Set(float64(depth))
	writeJSON(w, http.StatusAccepted, j.snapshot(s.now()))
}

// roomForJobLocked makes room in the job table by evicting the oldest
// terminal jobs; it reports false when the table is full of live jobs.
// Callers hold s.mu.
func (s *Server) roomForJobLocked() bool {
	for len(s.jobs) >= s.cfg.MaxRetainedJobs && len(s.retired) > 0 {
		delete(s.jobs, s.retired[0])
		s.retired = s.retired[1:]
	}
	return len(s.jobs) < s.cfg.MaxRetainedJobs
}

// retire records a terminal job as evictable.
func (s *Server) retire(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retired = append(s.retired, j.ID)
}

// reject answers an over-capacity submission: 429 with a Retry-After
// estimate derived from the backlog ahead of the caller and the observed
// job wall times (backpressure, not buffering).
func (s *Server) reject(w http.ResponseWriter, msg string) {
	s.m.rejected.Inc()
	retry := s.retryAfterEstimate()
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, msg, retry)
}

// retryAfterEstimate predicts when queue room is likely: the backlog
// ahead of the caller (plus one for the caller) times the mean observed
// job wall time, divided across the dispatcher pool. Before any job has
// finished the mean defaults to one second; the estimate is clamped to
// [1, 60] so a pathological backlog never tells clients to vanish for
// an hour.
func (s *Server) retryAfterEstimate() int {
	mean := 1.0
	if n := s.m.jobSeconds.Count(); n > 0 {
		mean = s.m.jobSeconds.Sum() / float64(n)
	}
	est := int(math.Ceil(float64(len(s.queue)+1) * mean / float64(s.cfg.MaxConcurrentJobs)))
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return est
}

// handleStatus is GET /v1/jobs/{id}: the in-memory job, or — when a
// store is configured — a terminal job served from the journal (evicted
// from memory, or finished before a restart).
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if j, ok := s.job(id); ok {
		writeJSON(w, http.StatusOK, j.snapshot(s.now()))
		return
	}
	if rec, ok := s.storeLookup(id); ok {
		writeJSON(w, http.StatusOK, statusFromRecord(rec))
		return
	}
	s.writeUnknownJob(w, id)
}

// storeLookup resolves an id to a disk-served terminal job. Live journal
// records always correspond to an in-memory job (re-admission failures
// get terminal records), so only terminal ones are served from disk.
func (s *Server) storeLookup(id string) (store.JobRecord, bool) {
	if s.cfg.Store == nil {
		return store.JobRecord{}, false
	}
	rec, ok := s.cfg.Store.Lookup(id)
	if !ok || !api.Terminal(rec.State) {
		return store.JobRecord{}, false
	}
	return rec, true
}

// statusFromRecord renders a journal record as the status document.
func statusFromRecord(rec store.JobRecord) JobStatus {
	return JobStatus{
		ID:            rec.ID,
		State:         rec.State,
		Request:       rec.Req,
		ShotsStreamed: rec.Events,
		Error:         rec.Error,
		Result:        rec.Result,
		ElapsedSec:    rec.FinishedAt.Sub(rec.SubmittedAt).Seconds(),
	}
}

// writeUnknownJob distinguishes ids this server issued whose records have
// since been evicted (410 Gone with the typed "evicted" code — the id is
// authoritative: retrying will never find it) from ids that never existed
// (404). Ids are sequential, so the issued-id watermark makes the check
// O(1) with no tombstone table.
func (s *Server) writeUnknownJob(w http.ResponseWriter, id string) {
	if raw, ok := strings.CutPrefix(id, "job-"); ok {
		if n, err := strconv.Atoi(raw); err == nil && n >= 1 {
			s.mu.Lock()
			issued := n <= s.nextID
			s.mu.Unlock()
			if issued {
				writeJSON(w, http.StatusGone, ErrorBody{Error: "job evicted", Code: api.CodeEvicted})
				return
			}
		}
	}
	writeError(w, http.StatusNotFound, "unknown job", 0)
}

// handleStream is GET /v1/jobs/{id}/stream: NDJSON per-shot events,
// replaying the committed history and then following live until the job
// reaches a terminal state (the final line carries "done":true plus the
// result). ?from=N skips the first N events — a reconnecting client
// resumes from the first event it has not yet seen, because the log is
// deterministic and append-only.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.job(id)
	if !ok {
		if rec, ok := s.storeLookup(id); ok {
			s.streamFromStore(w, r, rec)
			return
		}
		s.writeUnknownJob(w, id)
		return
	}
	from, ok := parseFrom(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := from
	for {
		events, _, end, wait := j.follow(next)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		next += len(events)
		if flusher != nil && len(events) > 0 {
			flusher.Flush()
		}
		if end.Done {
			enc.Encode(end)
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

// parseFrom reads the ?from=N stream-resume cursor, answering the 400
// itself on a malformed value.
func parseFrom(w http.ResponseWriter, r *http.Request) (int, bool) {
	v := r.URL.Query().Get("from")
	if v == "" {
		return 0, true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("from must be a non-negative integer, got %q", v), 0)
		return 0, false
	}
	return n, true
}

// streamFromStore replays a disk-served terminal job: the journaled
// per-shot events — trimmed to the subscriber schema the job was
// submitted with — then the terminal line. Byte-identical to the stream
// the original process served.
func (s *Server) streamFromStore(w http.ResponseWriter, r *http.Request, rec store.JobRecord) {
	from, ok := parseFrom(w, r)
	if !ok {
		return
	}
	events, err := s.cfg.Store.Events(rec.ID, from)
	if err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("journal read failed: %v", err), 0)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	for _, ev := range events {
		if err := enc.Encode(api.TrimStages(ev, rec.Req.StreamStages)); err != nil {
			return
		}
	}
	enc.Encode(StreamEnd{Done: true, State: rec.State, Error: rec.Error, Result: rec.Result})
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics is GET /metrics: the Prometheus text exposition of the
// server's registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WriteProm(w)
}

// handleHealthz reports process liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports admission readiness: 200 while accepting, 503
// once draining (load balancers stop routing before the drain completes).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ready := s.accepting
	s.mu.Unlock()
	if !ready {
		writeError(w, http.StatusServiceUnavailable, "draining", 0)
		return
	}
	if s.cfg.ReadyCheck != nil {
		if err := s.cfg.ReadyCheck(); err != nil {
			writeError(w, http.StatusServiceUnavailable, err.Error(), 0)
			return
		}
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

// job looks up a job by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string, retryAfter int) {
	writeJSON(w, status, ErrorBody{Error: msg, RetryAfterSec: retryAfter})
}
