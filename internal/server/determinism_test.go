package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// runJobToBytes submits req to a fresh server with the given worker
// budget, waits for completion and returns the result document and the
// streamed event history as canonical JSON.
func runJobToBytes(t *testing.T, cfg Config, req string) (result, events []byte) {
	t.Helper()
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	resp := postJob(t, ts.URL, req)
	if resp.StatusCode != 202 {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	js := decodeStatus(t, resp)
	evs, end := readStream(t, ts.URL, js.ID)
	if end.State != StateDone || end.Result == nil {
		t.Fatalf("job ended %+v", end)
	}
	result, _ = json.Marshal(end.Result)
	events, _ = json.Marshal(evs)
	return result, events
}

// TestResultDeterministicAcrossWorkerBudgets is the service-level
// co-tenancy determinism contract: the same request (same seed) must
// produce byte-identical result and event-stream JSON whatever worker
// budget the server runs — a job's numbers never depend on how much
// parallelism it was granted.
func TestResultDeterministicAcrossWorkerBudgets(t *testing.T) {
	req := `{"workload":"qrw","param":4,"shots":50,"seed":7,"options":{"state_sim":false}}`
	res1, ev1 := runJobToBytes(t, Config{MaxConcurrentJobs: 1, WorkerBudget: 1}, req)
	res4, ev4 := runJobToBytes(t, Config{MaxConcurrentJobs: 1, WorkerBudget: 4}, req)
	if !bytes.Equal(res1, res4) {
		t.Errorf("result drifts with worker budget:\nbudget 1: %s\nbudget 4: %s", res1, res4)
	}
	if !bytes.Equal(ev1, ev4) {
		t.Errorf("event stream drifts with worker budget")
	}
}

// TestResubmitReproducesResult submits the same request twice to one
// server — with another job interleaved between them — and requires
// byte-identical result JSON: each job's system is private, so co-tenant
// traffic cannot perturb it.
func TestResubmitReproducesResult(t *testing.T) {
	s := New(Config{QueueDepth: 8, MaxConcurrentJobs: 2, WorkerBudget: 2})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	req := `{"workload":"dqt","param":2,"shots":40,"seed":21,"options":{"state_sim":false,"theta":0.93,"history_depth":6}}`
	other := `{"workload":"qec","param":1,"shots":40,"seed":5,"options":{"state_sim":false}}`

	run := func(body string) []byte {
		resp := postJob(t, ts.URL, body)
		if resp.StatusCode != 202 {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		js := decodeStatus(t, resp)
		final := waitTerminal(t, ts.URL, js.ID)
		if final.State != StateDone || final.Result == nil {
			t.Fatalf("job %s ended %+v", js.ID, final)
		}
		b, _ := json.Marshal(final.Result)
		return b
	}

	first := run(req)
	run(other) // co-tenant noise between the twin submissions
	second := run(req)
	if !bytes.Equal(first, second) {
		t.Errorf("resubmission drifted:\nfirst:  %s\nsecond: %s", first, second)
	}
}

// TestStateSimResultHasFidelity checks the default (state-sim on) path end
// to end: fidelity is a number on the wire, not null, and options round
// out the buildOptions coverage (window, DD, sigma, mode).
func TestStateSimResultHasFidelity(t *testing.T) {
	req := fmt.Sprintf(`{"workload":"reset","param":2,"shots":20,"seed":13,` +
		`"options":{"mode":"history","window_ns":200,"dynamical_decoupling":true,"quasi_static_sigma":6000}}`)
	res, evs := runJobToBytes(t, Config{MaxConcurrentJobs: 1}, req)
	var r Result
	if err := json.Unmarshal(res, &r); err != nil {
		t.Fatal(err)
	}
	if r.Fidelity == nil || *r.Fidelity <= 0 || *r.Fidelity > 1 {
		t.Errorf("fidelity %v, want a number in (0, 1]", r.Fidelity)
	}
	var events []ShotEvent
	if err := json.Unmarshal(evs, &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 20 {
		t.Fatalf("streamed %d events, want 20", len(events))
	}
	for i, ev := range events {
		if ev.Fidelity == nil {
			t.Fatalf("event %d: null fidelity with state sim on", i)
		}
	}
}
