package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestDeadlineExpiresBeforeStart: a job whose deadline_ms budget is
// spent while it sits in the queue fails immediately when the worker
// picks it up — no shots run — and the expiry is counted.
func TestDeadlineExpiresBeforeStart(t *testing.T) {
	s := New(Config{QueueDepth: 4, MaxConcurrentJobs: 1, MaxShots: 1000})
	unblock := make(chan struct{})
	s.runJob = func(ctx context.Context, j *Job) {
		if j.Req.DeadlineMs == 0 {
			<-unblock // the blocker job holds the only worker
		}
		j.complete(&Result{Workload: "QRW-3", Shots: j.Req.Shots}, s.now())
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	blocker := postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":10}`)
	if blocker.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit = %d", blocker.StatusCode)
	}
	decodeStatus(t, blocker)

	resp := postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":10,"deadline_ms":30}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("deadline job submit = %d", resp.StatusCode)
	}
	js := decodeStatus(t, resp)

	time.Sleep(60 * time.Millisecond) // let the queued deadline lapse
	close(unblock)

	final := waitTerminal(t, ts.URL, js.ID)
	if final.State != StateFailed {
		t.Fatalf("job ended %q (%s), want failed", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "expired before the job started") {
		t.Fatalf("unexpected failure message: %q", final.Error)
	}
	var prom strings.Builder
	s.Registry().WriteProm(&prom)
	if !strings.Contains(prom.String(), "artery_server_deadline_expired_total 1") {
		t.Errorf("deadline expiry not counted:\n%s", prom.String())
	}
}

// TestDeadlineCancelsMidRun: a running job's context carries the
// deadline; when it fires the job stops with its deterministic canceled
// prefix (here modeled by the test executor) and the expiry is counted.
func TestDeadlineCancelsMidRun(t *testing.T) {
	s := New(Config{QueueDepth: 4, MaxConcurrentJobs: 1, MaxShots: 1000})
	s.runJob = func(ctx context.Context, j *Job) {
		select {
		case <-ctx.Done():
			if ctx.Err() == context.DeadlineExceeded {
				j.cancel("deadline exceeded mid-run", s.now())
				return
			}
			j.cancel("drained", s.now())
		case <-time.After(10 * time.Second):
			j.complete(&Result{Workload: "QRW-3", Shots: j.Req.Shots}, s.now())
		}
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	resp := postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":10,"deadline_ms":50}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	js := decodeStatus(t, resp)
	final := waitTerminal(t, ts.URL, js.ID)
	if final.State != StateCanceled {
		t.Fatalf("job ended %q (%s), want canceled by its deadline", final.State, final.Error)
	}
	var prom strings.Builder
	s.Registry().WriteProm(&prom)
	if !strings.Contains(prom.String(), "artery_server_deadline_expired_total 1") {
		t.Errorf("deadline expiry not counted:\n%s", prom.String())
	}
}

// TestSubmitRejectsNegativeDeadline: schema validation catches a
// negative deadline at admission.
func TestSubmitRejectsNegativeDeadline(t *testing.T) {
	s := New(Config{QueueDepth: 4, MaxConcurrentJobs: 1})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	resp := postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":10,"deadline_ms":-5}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline_ms = %d, want 400", resp.StatusCode)
	}
}

// TestRetryAfterEstimate: the 429 hint scales with queue depth and the
// observed mean job time, clamped to [1, 60].
func TestRetryAfterEstimate(t *testing.T) {
	s := New(Config{QueueDepth: 64, MaxConcurrentJobs: 2})
	// No completions yet: mean defaults to 1s, empty queue → ceil(1/2)=1.
	if got := s.retryAfterEstimate(); got != 1 {
		t.Fatalf("cold estimate = %d, want 1", got)
	}
	// Mean 4s with 5 queued → ceil(6*4/2) = 12.
	s.m.jobSeconds.Observe(4.0)
	for i := 0; i < 5; i++ {
		s.queue <- &Job{}
	}
	if got := s.retryAfterEstimate(); got != 12 {
		t.Fatalf("estimate with backlog = %d, want 12", got)
	}
	// A pathological mean clamps at 60.
	s.m.jobSeconds.Observe(10_000)
	if got := s.retryAfterEstimate(); got != 60 {
		t.Fatalf("clamped estimate = %d, want 60", got)
	}
}

// TestReadyCheckAndAdmissionGate: the two coordinator seams — /readyz
// turns 503 when ReadyCheck errors, and AdmissionGate sheds submissions
// with 503 plus the shed counter.
func TestReadyCheckAndAdmissionGate(t *testing.T) {
	gateErr := error(nil)
	s := New(Config{
		QueueDepth: 4, MaxConcurrentJobs: 1,
		ReadyCheck:    func() error { return gateErr },
		AdmissionGate: func() error { return gateErr },
	})
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz with nil gate error = %d, want 200", resp.StatusCode)
	}

	gateErr = context.DeadlineExceeded // any non-nil error
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with gate error = %d, want 503", resp.StatusCode)
	}

	sub := postJob(t, ts.URL, `{"workload":"qrw","param":3,"shots":10}`)
	sub.Body.Close()
	if sub.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("gated submit = %d, want 503", sub.StatusCode)
	}
	var prom strings.Builder
	s.Registry().WriteProm(&prom)
	if !strings.Contains(prom.String(), "artery_server_jobs_shed_total 1") {
		t.Errorf("shed not counted:\n%s", prom.String())
	}
}
