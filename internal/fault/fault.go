// Package fault is the deterministic fault-injection subsystem: a
// seed-driven model of the degraded scenarios a production feedback stack
// must survive — dropped and corrupted backplane messages, readout-channel
// outages, IQ glitches on captured pulses, feedback-trigger jitter and
// predictor-table corruption.
//
// Determinism contract: all randomness flows through per-shot Sessions,
// each owning one stats.RNG stream derived via SplitN exactly like the
// engine's per-shot physics streams. A Session is used by at most one shot,
// and within that shot strictly sequentially (the engine's worker phase
// happens-before its merge phase for the same shot index), so a faulted run
// is bit-identical at any worker count. Sessions draw nothing when their
// config disables a channel, so a zero-rate injector leaves streams — and
// therefore every downstream number — untouched.
package fault

import (
	"fmt"

	"artery/internal/stats"
)

// Config sets the per-channel fault rates and the graceful-degradation
// policy knobs. The zero value injects nothing.
type Config struct {
	// BackplaneDropRate is the probability that one backplane message hop
	// loses the message (detected by the receiver's timeout).
	BackplaneDropRate float64
	// BackplaneCorruptRate is the probability that one hop corrupts the
	// message (detected by its CRC; treated as a loss and retried).
	BackplaneCorruptRate float64
	// MaxRetries bounds the retry budget of a latency-critical trigger
	// message; past it the trigger is abandoned and the controller degrades
	// to its blocking path for the shot.
	MaxRetries int
	// RetryBackoffNs is the receiver timeout before the first resend; each
	// subsequent retry doubles it (bounded exponential backoff).
	RetryBackoffNs float64

	// ReadoutOutageRate is the probability that a site's readout channel is
	// out for the shot: no trajectory windows arrive and the controller
	// must fall back to a repeated, blocking readout.
	ReadoutOutageRate float64
	// OutagePenaltyNs is the extra latency of that repeated readout.
	OutagePenaltyNs float64

	// IQGlitchRate is the probability that a captured pulse carries one
	// glitch burst (amplifier saturation, clock slip) of GlitchSpanSamples
	// samples at GlitchAmp amplitude.
	IQGlitchRate     float64
	GlitchSpanSamples int
	GlitchAmp        float64

	// TriggerJitterNs is the mean of the exponential jitter added to a
	// feedback trigger's issue time (0 disables jitter draws).
	TriggerJitterNs float64

	// TableCorruptRate is the probability that one predictor-table lookup
	// reads a corrupted entry (bit-flipped Beta counter: the returned
	// probability is complemented).
	TableCorruptRate float64

	// FallbackWindow is the length of the sliding window of per-site bad
	// events (mispredictions, outages, lost triggers, corrupted lookups)
	// the degradation tracker watches.
	FallbackWindow int
	// FallbackTrip is the bad-event rate at which ARTERY stops predicting
	// and takes the blocking Baseline path; FallbackRecover is the lower
	// rate at which it resumes (hysteresis, FallbackRecover < FallbackTrip).
	FallbackTrip    float64
	FallbackRecover float64
}

// DefaultPolicy returns the degradation-policy knobs used throughout the
// repository: 4 trigger retries with 16 ns initial backoff, a repeated
// 2 µs readout on outage, 64-sample full-scale glitch bursts, and a
// 32-event fallback window tripping at 35 % and recovering at 15 %.
func DefaultPolicy() Config {
	return Config{
		MaxRetries:        4,
		RetryBackoffNs:    16,
		OutagePenaltyNs:   2000,
		GlitchSpanSamples: 64,
		GlitchAmp:         8,
		FallbackWindow:    32,
		FallbackTrip:      0.35,
		FallbackRecover:   0.15,
	}
}

// Scaled returns the default policy with every fault rate set from one
// sweep knob: drop/corrupt at rate/4 per hop, outages at rate/10, glitches
// and table corruption at rate, and rate-proportional trigger jitter.
func Scaled(rate float64) Config {
	c := DefaultPolicy()
	c.BackplaneDropRate = rate / 4
	c.BackplaneCorruptRate = rate / 4
	c.ReadoutOutageRate = rate / 10
	c.IQGlitchRate = rate
	c.TableCorruptRate = rate
	c.TriggerJitterNs = 40 * rate
	return c
}

// Validate rejects configurations whose policies cannot terminate or whose
// hysteresis is inverted.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"BackplaneDropRate", c.BackplaneDropRate},
		{"BackplaneCorruptRate", c.BackplaneCorruptRate},
		{"ReadoutOutageRate", c.ReadoutOutageRate},
		{"IQGlitchRate", c.IQGlitchRate},
		{"TableCorruptRate", c.TableCorruptRate},
	} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("fault: %s = %v outside [0, 1)", p.name, p.v)
		}
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("fault: MaxRetries = %d negative", c.MaxRetries)
	}
	if c.FallbackTrip > 0 && c.FallbackRecover >= c.FallbackTrip {
		return fmt.Errorf("fault: FallbackRecover %v must be below FallbackTrip %v",
			c.FallbackRecover, c.FallbackTrip)
	}
	return nil
}

// Enabled reports whether any fault channel is active.
func (c Config) Enabled() bool {
	return c.BackplaneDropRate > 0 || c.BackplaneCorruptRate > 0 ||
		c.ReadoutOutageRate > 0 || c.IQGlitchRate > 0 ||
		c.TriggerJitterNs > 0 || c.TableCorruptRate > 0
}

// Counters tallies injected faults and the degradation machinery's
// responses. The zero value is ready to use.
type Counters struct {
	Drops       int // backplane messages lost in transit
	Corruptions int // backplane messages failing their CRC
	Retries     int // backplane resends issued
	LostTriggers int // triggers abandoned after MaxRetries
	Outages     int // readout-channel outages
	Glitches    int // IQ glitch bursts injected
	Jitters     int // jittered trigger issues
	TableFaults int // corrupted predictor-table lookups
	Fallbacks   int // feedbacks served on the degraded blocking path
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.Drops += o.Drops
	c.Corruptions += o.Corruptions
	c.Retries += o.Retries
	c.LostTriggers += o.LostTriggers
	c.Outages += o.Outages
	c.Glitches += o.Glitches
	c.Jitters += o.Jitters
	c.TableFaults += o.TableFaults
	c.Fallbacks += o.Fallbacks
}

// Total returns the number of injected fault events (excluding the
// response counters Retries and Fallbacks).
func (c Counters) Total() int {
	return c.Drops + c.Corruptions + c.LostTriggers + c.Outages +
		c.Glitches + c.Jitters + c.TableFaults
}

// Injector is the immutable, shareable fault configuration. Shots obtain
// their deterministic fault streams through Session.
type Injector struct {
	cfg Config
}

// NewInjector validates cfg and wraps it; it panics on an invalid config
// (a bad fault model is a programming error, not a runtime condition).
func NewInjector(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg}
}

// Config returns the injector's configuration.
func (in *Injector) Config() Config { return in.cfg }

// Enabled reports whether the injector injects anything.
func (in *Injector) Enabled() bool { return in != nil && in.cfg.Enabled() }

// Session binds one shot's fault stream. Not safe for concurrent use: a
// session belongs to exactly one shot and is driven sequentially.
func (in *Injector) Session(rng *stats.RNG) *Session {
	return &Session{cfg: in.cfg, rng: rng}
}

// Session is one shot's deterministic fault source. All draws come from
// the session's own RNG stream in a fixed call order, so the same seed
// reproduces the same faults regardless of what other shots do.
type Session struct {
	cfg Config
	rng *stats.RNG
	// C tallies this shot's fault events; the engine snapshots it into the
	// ShotResult when the shot completes.
	C Counters
}

// Config returns the session's fault configuration.
func (s *Session) Config() Config { return s.cfg }

// ReadoutOutage reports whether this site's readout channel is out for the
// shot. No draw happens when outages are disabled.
func (s *Session) ReadoutOutage() bool {
	if s == nil || s.cfg.ReadoutOutageRate <= 0 {
		return false
	}
	if s.rng.Bool(s.cfg.ReadoutOutageRate) {
		s.C.Outages++
		return true
	}
	return false
}

// GlitchIQ injects at most one glitch burst into a captured pulse: a span
// of GlitchSpanSamples samples saturated at GlitchAmp, modeling amplifier
// saturation or a serializer slip. It mutates samples in place and reports
// whether a burst fired. No draw happens when glitches are disabled.
func (s *Session) GlitchIQ(samples []complex128) bool {
	if s == nil || s.cfg.IQGlitchRate <= 0 || len(samples) == 0 {
		return false
	}
	if !s.rng.Bool(s.cfg.IQGlitchRate) {
		return false
	}
	s.C.Glitches++
	span := s.cfg.GlitchSpanSamples
	if span < 1 {
		span = 1
	}
	if span > len(samples) {
		span = len(samples)
	}
	start := s.rng.Intn(len(samples) - span + 1)
	sign := complex(s.cfg.GlitchAmp, 0)
	if s.rng.Bool(0.5) {
		sign = -sign
	}
	for i := start; i < start+span; i++ {
		samples[i] = sign
	}
	return true
}

// TriggerJitter returns the exponential jitter (ns) added to a trigger's
// issue time. No draw happens when jitter is disabled.
func (s *Session) TriggerJitter() float64 {
	if s == nil || s.cfg.TriggerJitterNs <= 0 {
		return 0
	}
	j := s.rng.Exp(s.cfg.TriggerJitterNs)
	if j > 0 {
		s.C.Jitters++
	}
	return j
}

// TableCorruptor returns the per-lookup corruption function for the
// predictor's state table, or nil when table corruption is disabled. A
// corrupted lookup returns the complemented probability — the sign-flipped
// Beta counter a bit flip in the table RAM would produce.
func (s *Session) TableCorruptor() func(float64) float64 {
	if s == nil || s.cfg.TableCorruptRate <= 0 {
		return nil
	}
	return func(p float64) float64 {
		if !s.rng.Bool(s.cfg.TableCorruptRate) {
			return p
		}
		s.C.TableFaults++
		return 1 - p
	}
}

// transmitOnce plays one message attempt over hops backplane hops and
// reports whether it arrived intact. Draws two Bools per hop (drop, then
// corrupt) so the stream layout is fixed.
func (s *Session) transmitOnce(hops int) bool {
	ok := true
	for h := 0; h < hops; h++ {
		if s.rng.Bool(s.cfg.BackplaneDropRate) {
			s.C.Drops++
			ok = false
		}
		if s.rng.Bool(s.cfg.BackplaneCorruptRate) {
			s.C.Corruptions++
			ok = false
		}
	}
	return ok
}

// backplaneActive reports whether transmissions can fail at all.
func (s *Session) backplaneActive() bool {
	return s != nil && (s.cfg.BackplaneDropRate > 0 || s.cfg.BackplaneCorruptRate > 0)
}

// TransmitTrigger sends a latency-critical trigger message over hops
// backplane hops under the bounded-retry policy: up to MaxRetries resends
// with doubling backoff, then the trigger is abandoned. It returns the
// number of retries issued and whether the message got through. No draw
// happens when the backplane channels are disabled.
func (s *Session) TransmitTrigger(hops int) (retries int, delivered bool) {
	if !s.backplaneActive() || hops <= 0 {
		return 0, true
	}
	for attempt := 0; ; attempt++ {
		if s.transmitOnce(hops) {
			return attempt, true
		}
		if attempt >= s.cfg.MaxRetries {
			s.C.LostTriggers++
			return attempt, false
		}
		s.C.Retries++
	}
}

// TransmitReliable sends a non-critical message (the conventional
// end-of-readout branch command) with retry-until-success semantics. The
// attempt count is capped far above any plausible fault rate purely to
// bound the loop; at the cap the link-layer is assumed to escalate and the
// message is counted delivered. It returns the number of retries issued.
func (s *Session) TransmitReliable(hops int) (retries int) {
	if !s.backplaneActive() || hops <= 0 {
		return 0
	}
	const hardCap = 32
	for attempt := 0; attempt < hardCap; attempt++ {
		if s.transmitOnce(hops) {
			return attempt
		}
		s.C.Retries++
	}
	return hardCap
}

// Tracker is the graceful-degradation monitor: a sliding window of
// per-feedback bad events (mispredictions, outages, lost triggers,
// corrupted lookups) with trip/recover hysteresis. While tripped, the
// controller serves feedbacks on the blocking Baseline path; prediction
// resumes once the observed bad rate falls below the recover threshold.
//
// Not safe for concurrent use — it lives inside the (sequentially driven)
// ARTERY controller.
type Tracker struct {
	window    []bool
	next      int
	filled    int
	bad       int
	trip      float64
	recoverAt float64
	tripped   bool
}

// NewTracker builds a tracker; window <= 0 or trip <= 0 yields a tracker
// that never trips (degradation disabled).
func NewTracker(window int, trip, recoverAt float64) *Tracker {
	if window <= 0 || trip <= 0 {
		return &Tracker{}
	}
	return &Tracker{window: make([]bool, window), trip: trip, recoverAt: recoverAt}
}

// Observe records one feedback's bad flag and updates the tripped state.
// The tracker only trips once the window is at least half full, so a
// single early fault cannot park the controller in fallback.
func (t *Tracker) Observe(bad bool) {
	if t == nil || len(t.window) == 0 {
		return
	}
	if t.filled == len(t.window) {
		if t.window[t.next] {
			t.bad--
		}
	} else {
		t.filled++
	}
	t.window[t.next] = bad
	if bad {
		t.bad++
	}
	t.next = (t.next + 1) % len(t.window)

	rate := float64(t.bad) / float64(t.filled)
	if !t.tripped {
		if t.filled >= len(t.window)/2 && rate >= t.trip {
			t.tripped = true
		}
	} else if rate <= t.recoverAt {
		t.tripped = false
	}
}

// Degraded reports whether the controller should serve feedbacks on the
// blocking path.
func (t *Tracker) Degraded() bool { return t != nil && t.tripped }

// BadRate returns the current windowed bad-event rate (0 before any
// observation).
func (t *Tracker) BadRate() float64 {
	if t == nil || t.filled == 0 {
		return 0
	}
	return float64(t.bad) / float64(t.filled)
}
