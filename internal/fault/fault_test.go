package fault

import (
	"math"
	"testing"

	"artery/internal/stats"
)

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative drop rate", func(c *Config) { c.BackplaneDropRate = -0.1 }},
		{"drop rate one", func(c *Config) { c.BackplaneDropRate = 1 }},
		{"corrupt rate one", func(c *Config) { c.BackplaneCorruptRate = 1.5 }},
		{"outage rate negative", func(c *Config) { c.ReadoutOutageRate = -1 }},
		{"glitch rate one", func(c *Config) { c.IQGlitchRate = 1 }},
		{"table rate one", func(c *Config) { c.TableCorruptRate = 1 }},
		{"negative retries", func(c *Config) { c.MaxRetries = -1 }},
		{"inverted hysteresis", func(c *Config) { c.FallbackTrip = 0.2; c.FallbackRecover = 0.3 }},
		{"equal hysteresis", func(c *Config) { c.FallbackTrip = 0.2; c.FallbackRecover = 0.2 }},
	}
	for _, tc := range cases {
		cfg := DefaultPolicy()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, cfg)
		}
	}
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("DefaultPolicy invalid: %v", err)
	}
	if err := Scaled(0.4).Validate(); err != nil {
		t.Fatalf("Scaled(0.4) invalid: %v", err)
	}
}

func TestEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config reports enabled")
	}
	if DefaultPolicy().Enabled() {
		t.Fatal("policy-only config (all rates zero) reports enabled")
	}
	if !Scaled(0.1).Enabled() {
		t.Fatal("Scaled(0.1) reports disabled")
	}
	var nilInj *Injector
	if nilInj.Enabled() {
		t.Fatal("nil injector reports enabled")
	}
	if NewInjector(DefaultPolicy()).Enabled() {
		t.Fatal("injector over zero-rate config reports enabled")
	}
	if !NewInjector(Scaled(0.2)).Enabled() {
		t.Fatal("injector over Scaled(0.2) reports disabled")
	}
}

func TestNewInjectorPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewInjector accepted an invalid config")
		}
	}()
	cfg := DefaultPolicy()
	cfg.MaxRetries = -1
	NewInjector(cfg)
}

func TestScaledRates(t *testing.T) {
	c := Scaled(0.4)
	if c.BackplaneDropRate != 0.1 || c.BackplaneCorruptRate != 0.1 {
		t.Fatalf("backplane rates = %v/%v, want 0.1/0.1", c.BackplaneDropRate, c.BackplaneCorruptRate)
	}
	if math.Abs(c.ReadoutOutageRate-0.04) > 1e-15 {
		t.Fatalf("outage rate = %v, want 0.04", c.ReadoutOutageRate)
	}
	if c.IQGlitchRate != 0.4 || c.TableCorruptRate != 0.4 {
		t.Fatalf("glitch/table rates = %v/%v, want 0.4/0.4", c.IQGlitchRate, c.TableCorruptRate)
	}
	if c.TriggerJitterNs != 16 {
		t.Fatalf("jitter mean = %v, want 16", c.TriggerJitterNs)
	}
	if !Scaled(0).Enabled() == false {
		// Scaled(0) keeps policy knobs but zero rates: must be disabled.
		t.Fatal("Scaled(0) should be disabled")
	}
}

func TestCountersAddTotal(t *testing.T) {
	a := Counters{Drops: 1, Corruptions: 2, Retries: 3, LostTriggers: 4,
		Outages: 5, Glitches: 6, Jitters: 7, TableFaults: 8, Fallbacks: 9}
	var c Counters
	c.Add(a)
	c.Add(a)
	if c.Drops != 2 || c.Corruptions != 4 || c.Retries != 6 || c.LostTriggers != 8 ||
		c.Outages != 10 || c.Glitches != 12 || c.Jitters != 14 || c.TableFaults != 16 ||
		c.Fallbacks != 18 {
		t.Fatalf("Add mismatch: %+v", c)
	}
	// Total excludes the response counters Retries and Fallbacks.
	if got, want := a.Total(), 1+2+4+5+6+7+8; got != want {
		t.Fatalf("Total = %d, want %d", got, want)
	}
}

// sessionPair returns two sessions over independent but identically seeded
// streams, for determinism checks.
func sessionPair(cfg Config, seed uint64) (*Session, *Session) {
	in := NewInjector(cfg)
	return in.Session(stats.NewRNG(seed)), in.Session(stats.NewRNG(seed))
}

func TestSessionDeterminism(t *testing.T) {
	drive := func(s *Session) ([]float64, Counters) {
		var log []float64
		samples := make([]complex128, 256)
		for i := 0; i < 200; i++ {
			if s.ReadoutOutage() {
				log = append(log, 1)
			}
			if s.GlitchIQ(samples) {
				log = append(log, real(samples[0]))
			}
			log = append(log, s.TriggerJitter())
			if f := s.TableCorruptor(); f != nil {
				log = append(log, f(0.25))
			}
			r1, ok := s.TransmitTrigger(3)
			log = append(log, float64(r1))
			if !ok {
				log = append(log, -1)
			}
			log = append(log, float64(s.TransmitReliable(2)))
		}
		return log, s.C
	}
	s1, s2 := sessionPair(Scaled(0.3), 99)
	l1, c1 := drive(s1)
	l2, c2 := drive(s2)
	if len(l1) != len(l2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, l1[i], l2[i])
		}
	}
	if c1 != c2 {
		t.Fatalf("counters diverge: %+v vs %+v", c1, c2)
	}
	if c1.Total() == 0 {
		t.Fatal("no faults injected at Scaled(0.3) over 200 iterations")
	}
}

func TestDisabledChannelsDrawNothing(t *testing.T) {
	// A session whose config disables every channel must leave its RNG
	// stream untouched, so downstream draws are byte-identical.
	in := NewInjector(DefaultPolicy()) // all rates zero
	rng := stats.NewRNG(7)
	ref := stats.NewRNG(7)
	s := in.Session(rng)
	samples := make([]complex128, 64)
	for i := 0; i < 50; i++ {
		if s.ReadoutOutage() || s.GlitchIQ(samples) {
			t.Fatal("zero-rate session injected a fault")
		}
		if s.TriggerJitter() != 0 {
			t.Fatal("zero-rate session produced jitter")
		}
		if s.TableCorruptor() != nil {
			t.Fatal("zero-rate session produced a table corruptor")
		}
		if r, ok := s.TransmitTrigger(3); r != 0 || !ok {
			t.Fatal("zero-rate trigger transmission failed")
		}
		if s.TransmitReliable(3) != 0 {
			t.Fatal("zero-rate reliable transmission retried")
		}
	}
	if rng.Uint64() != ref.Uint64() {
		t.Fatal("zero-rate session consumed RNG draws")
	}
	if (s.C != Counters{}) {
		t.Fatalf("zero-rate session counted faults: %+v", s.C)
	}
}

func TestNilSessionSafe(t *testing.T) {
	var s *Session
	if s.ReadoutOutage() {
		t.Fatal("nil outage")
	}
	if s.GlitchIQ(make([]complex128, 8)) {
		t.Fatal("nil glitch")
	}
	if s.TriggerJitter() != 0 {
		t.Fatal("nil jitter")
	}
	if s.TableCorruptor() != nil {
		t.Fatal("nil corruptor")
	}
	if r, ok := s.TransmitTrigger(3); r != 0 || !ok {
		t.Fatal("nil trigger transmission")
	}
	if s.TransmitReliable(3) != 0 {
		t.Fatal("nil reliable transmission")
	}
}

func TestGlitchIQBounds(t *testing.T) {
	cfg := DefaultPolicy()
	cfg.IQGlitchRate = 0.999 // always fires (Bool(p) with p≈1)
	cfg.GlitchSpanSamples = 64
	cfg.GlitchAmp = 8
	in := NewInjector(cfg)
	rng := stats.NewRNG(3)
	for trial := 0; trial < 100; trial++ {
		s := in.Session(rng.Split())
		samples := make([]complex128, 100) // shorter than 2*span: burst must clamp
		if !s.GlitchIQ(samples) {
			continue
		}
		n := 0
		for _, v := range samples {
			switch v {
			case 0:
			case complex(8, 0), complex(-8, 0):
				n++
			default:
				t.Fatalf("glitched sample %v not at ±GlitchAmp", v)
			}
		}
		if n != 64 {
			t.Fatalf("glitch span = %d samples, want 64", n)
		}
	}
	// Span longer than the pulse saturates the whole pulse.
	s := in.Session(stats.NewRNG(4))
	short := make([]complex128, 10)
	for !s.GlitchIQ(short) {
	}
	for i, v := range short {
		if v != complex(8, 0) && v != complex(-8, 0) {
			t.Fatalf("short[%d] = %v, want saturated", i, v)
		}
	}
	// Empty pulse: no draw, no panic.
	if s.GlitchIQ(nil) {
		t.Fatal("glitched an empty pulse")
	}
}

func TestTransmitTriggerRetryBudget(t *testing.T) {
	cfg := DefaultPolicy()
	cfg.BackplaneDropRate = 0.999 // effectively always drops
	cfg.MaxRetries = 4
	in := NewInjector(cfg)
	s := in.Session(stats.NewRNG(11))
	retries, delivered := s.TransmitTrigger(2)
	if delivered {
		t.Fatal("trigger delivered through a dead link")
	}
	if retries != cfg.MaxRetries {
		t.Fatalf("retries = %d, want %d", retries, cfg.MaxRetries)
	}
	if s.C.LostTriggers != 1 {
		t.Fatalf("LostTriggers = %d, want 1", s.C.LostTriggers)
	}
	if s.C.Retries != cfg.MaxRetries {
		t.Fatalf("Retries = %d, want %d", s.C.Retries, cfg.MaxRetries)
	}
	if s.C.Drops == 0 {
		t.Fatal("no drops counted")
	}
	// Zero hops (on-chip) never draws or fails.
	if r, ok := s.TransmitTrigger(0); r != 0 || !ok {
		t.Fatal("on-chip trigger failed")
	}
}

func TestTransmitReliableHardCap(t *testing.T) {
	cfg := DefaultPolicy()
	cfg.BackplaneCorruptRate = 0.999
	in := NewInjector(cfg)
	s := in.Session(stats.NewRNG(13))
	if got := s.TransmitReliable(1); got != 32 {
		t.Fatalf("retries = %d, want hard cap 32", got)
	}
	if s.C.Corruptions == 0 {
		t.Fatal("no corruptions counted")
	}
	// A clean link returns immediately with zero retries.
	clean := NewInjector(Config{BackplaneDropRate: 1e-9})
	if got := clean.Session(stats.NewRNG(1)).TransmitReliable(3); got != 0 {
		t.Fatalf("clean link retried %d times", got)
	}
}

func TestTableCorruptorComplements(t *testing.T) {
	cfg := DefaultPolicy()
	cfg.TableCorruptRate = 0.999
	s := NewInjector(cfg).Session(stats.NewRNG(17))
	f := s.TableCorruptor()
	if f == nil {
		t.Fatal("corruptor nil with rate set")
	}
	// With rate ≈ 1 nearly every lookup is complemented.
	hit := 0
	for i := 0; i < 50; i++ {
		if f(0.2) == 0.8 {
			hit++
		}
	}
	if hit < 45 {
		t.Fatalf("only %d/50 lookups corrupted at rate 0.999", hit)
	}
	if s.C.TableFaults != hit {
		t.Fatalf("TableFaults = %d, want %d", s.C.TableFaults, hit)
	}
}

func TestTrackerHysteresis(t *testing.T) {
	tr := NewTracker(8, 0.5, 0.25)
	if tr.Degraded() {
		t.Fatal("fresh tracker degraded")
	}
	// One early bad event in a near-empty window must not trip (half-full
	// guard): 1/1 = 100% ≥ trip but filled < window/2.
	tr.Observe(true)
	if tr.Degraded() {
		t.Fatal("tripped before window half full")
	}
	// Fill to half with bad events → trips.
	tr.Observe(true)
	tr.Observe(true)
	tr.Observe(true)
	if !tr.Degraded() {
		t.Fatalf("not tripped at bad rate %v with half-full window", tr.BadRate())
	}
	// Good events wash the window; recovery only below 0.25.
	for i := 0; i < 4; i++ {
		tr.Observe(false)
		// 4 bad of 5..8: rates 0.8, 0.67, 0.57, 0.5 — all above recover.
		if !tr.Degraded() {
			t.Fatalf("recovered early at rate %v", tr.BadRate())
		}
	}
	tr.Observe(false) // evicts a bad: 3/8
	tr.Observe(false) // 2/8 = 0.25 ≤ recover → untrips
	if tr.Degraded() {
		t.Fatalf("still degraded at rate %v", tr.BadRate())
	}
	// Re-trips when the rate climbs back.
	for i := 0; i < 8; i++ {
		tr.Observe(true)
	}
	if !tr.Degraded() {
		t.Fatal("did not re-trip")
	}
}

func TestTrackerDisabled(t *testing.T) {
	for _, tr := range []*Tracker{nil, NewTracker(0, 0.5, 0.2), NewTracker(8, 0, 0)} {
		for i := 0; i < 20; i++ {
			tr.Observe(true)
		}
		if tr.Degraded() {
			t.Fatal("disabled tracker tripped")
		}
		if tr.BadRate() != 0 {
			t.Fatal("disabled tracker reports a bad rate")
		}
	}
}

func TestTrackerBadRate(t *testing.T) {
	tr := NewTracker(4, 0.9, 0.1)
	tr.Observe(true)
	tr.Observe(false)
	if got := tr.BadRate(); got != 0.5 {
		t.Fatalf("BadRate = %v, want 0.5", got)
	}
	// Window slides: four good events evict the bad one.
	for i := 0; i < 4; i++ {
		tr.Observe(false)
	}
	if got := tr.BadRate(); got != 0 {
		t.Fatalf("BadRate after wash = %v, want 0", got)
	}
}
