package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a process-local metrics registry: named counters, gauges
// and fixed-bucket histograms with a Prometheus text exposition. A nil
// *Registry is the disabled registry — every lookup returns a nil
// instrument, and every instrument method is nil-safe, so instrumented
// code updates metrics unconditionally.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name, help: help}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name, help: help}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating on first use) the named histogram over the
// given ascending upper bounds (an implicit +Inf bucket is appended). The
// bucket layout of an existing histogram is kept.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		ub := make([]float64, len(buckets))
		copy(ub, buckets)
		sort.Float64s(ub)
		h = &Histogram{name: name, help: help, bounds: ub, counts: make([]atomic.Uint64, len(ub)+1)}
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Inc adds one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket latency histogram: per-bucket counts plus a
// running sum and count, all updated atomically (observations from the
// engine arrive on the single merge goroutine, but the layer stays safe
// for concurrent use).
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; counts has one extra +Inf bin
	counts     []atomic.Uint64
	count      atomic.Uint64
	sumBits    atomic.Uint64 // float64 sum, CAS-updated
}

// Observe records v into its bucket. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the p-quantile (p in [0, 1]) from the bucket counts:
// it finds the bucket holding the p-th observation and interpolates
// linearly inside it, the same estimate a Prometheus histogram_quantile
// gives. Returns 0 when the histogram is nil or empty; observations in
// the +Inf bucket resolve to the highest finite bound. The estimate is a
// snapshot — concurrent observers may shift it between calls.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	cum := uint64(0)
	for i, ub := range h.bounds {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (ub-lo)*frac
		}
		cum += n
	}
	// The p-th observation sits in the +Inf bucket: the bucket layout
	// cannot resolve it, so report the highest finite bound.
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// DefaultLatencyBucketsNs is the fixed bucket layout used for feedback
// latencies: sub-window resolution around the predictor's commit times up
// through the multi-microsecond blocking paths.
func DefaultLatencyBucketsNs() []float64 {
	return []float64{
		30, 60, 90, 120, 180, 250, 350, 500, 700,
		1000, 1400, 2000, 2800, 4000, 5600, 8000, 12000,
	}
}

// DefaultJobSecondsBuckets is the fixed bucket layout for service-level
// job wall times (seconds scale): sub-millisecond validation failures
// through minute-long sweeps.
func DefaultJobSecondsBuckets() []float64 {
	return []float64{
		0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
		1, 2.5, 5, 10, 30, 60,
	}
}

// WriteProm writes every registered metric in the Prometheus text
// exposition format, in lexicographic name order. Nil-safe (writes
// nothing).
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := sortedKeys(r.counters)
	gauges := sortedKeys(r.gauges)
	hists := sortedKeys(r.hists)
	r.mu.Unlock()

	for _, name := range counters {
		c := r.counters[name]
		if err := writeHeader(w, name, c.help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, c.Value()); err != nil {
			return err
		}
	}
	for _, name := range gauges {
		g := r.gauges[name]
		if err := writeHeader(w, name, g.help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", name, formatProm(g.Value())); err != nil {
			return err
		}
	}
	for _, name := range hists {
		h := r.hists[name]
		if err := writeHeader(w, name, h.help, "histogram"); err != nil {
			return err
		}
		cum := uint64(0)
		for i, ub := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatProm(ub), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", name, formatProm(h.Sum()), name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

// formatProm renders a float the way Prometheus clients do: integral
// values without a decimal point.
func formatProm(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
