package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	Shot       int32   `json:"shot"`
	Site       int16   `json:"site"`
	Qubit      int16   `json:"qubit"`
	Stage      string  `json:"stage"`
	TStartNs   float64 `json:"t_start_ns"`
	TEndNs     float64 `json:"t_end_ns"`
	Outcome    int8    `json:"outcome"`
	Mispredict bool    `json:"mispredict,omitempty"`
	Fault      bool    `json:"fault,omitempty"`
	Value      float64 `json:"value,omitempty"`
}

// WriteJSONL writes the retained stream as one JSON object per line, in
// commit (shot) order. Nil-safe (writes nothing).
func (r *Recorder) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		if err := enc.Encode(jsonEvent{
			Shot: e.Shot, Site: e.Site, Qubit: e.Qubit, Stage: e.Stage.String(),
			TStartNs: e.StartNs, TEndNs: e.EndNs, Outcome: e.Outcome,
			Mispredict: e.Mispredict, Fault: e.Fault, Value: e.Value,
		}); err != nil {
			return fmt.Errorf("trace: jsonl export: %w", err)
		}
	}
	return bw.Flush()
}

// ParseJSONL decodes a WriteJSONL stream back into events (for tooling
// and tests that post-process trace dumps).
func ParseJSONL(data []byte) ([]Event, error) {
	var out []Event
	dec := json.NewDecoder(bytes.NewReader(data))
	for dec.More() {
		var je jsonEvent
		if err := dec.Decode(&je); err != nil {
			return nil, fmt.Errorf("trace: parse jsonl: %w", err)
		}
		st, ok := StageFromName(je.Stage)
		if !ok {
			return nil, fmt.Errorf("trace: parse jsonl: unknown stage %q", je.Stage)
		}
		out = append(out, Event{
			Shot: je.Shot, Site: je.Site, Qubit: je.Qubit, Stage: st,
			StartNs: je.TStartNs, EndNs: je.TEndNs, Outcome: je.Outcome,
			Mispredict: je.Mispredict, Fault: je.Fault, Value: je.Value,
		})
	}
	return out, nil
}
