package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// buildGoldenRegistry populates a registry with one of every instrument
// kind, in deliberately non-alphabetical registration order, so the
// golden file also locks in the exposition's name ordering.
func buildGoldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("artery_test_requests_total", "requests served").Add(42)
	reg.Counter("artery_test_admission_rejects_total", "submissions turned away").Add(7)
	reg.Gauge("artery_test_queue_depth", "jobs waiting").Set(3)
	reg.Gauge("artery_test_load_factor", "fractional utilization").Set(0.625)
	h := reg.Histogram("artery_test_latency_ns", "operation latency", []float64{10, 100, 1000})
	for _, v := range []float64{5, 50, 500, 5000, 0.5, 1000} {
		h.Observe(v)
	}
	return reg
}

// TestWritePromGolden locks the Prometheus text exposition — HELP/TYPE
// lines, lexicographic metric order, cumulative bucket counts, +Inf
// bucket, integral float formatting — against a golden file. Regenerate
// with UPDATE_GOLDEN=1 go test ./internal/trace -run WritePromGolden.
func TestWritePromGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildGoldenRegistry().WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	golden := filepath.Join("testdata", "registry.prom")
	if os.Getenv("UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// TestWritePromStableOrdering re-renders the same registry and requires
// byte-identical output: the exposition must not depend on map iteration
// order.
func TestWritePromStableOrdering(t *testing.T) {
	reg := buildGoldenRegistry()
	var a, b bytes.Buffer
	if err := reg.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("two renders of the same registry differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}
