// Package trace is ARTERY's shot-level observability layer: a typed span
// recorder that sees every stage of the feedback pipeline (readout window,
// prediction, trigger transit, staging, recovery, retries) and a metrics
// registry of counters, gauges and fixed-bucket latency histograms.
//
// The design goal is zero cost when tracing is off and determinism when it
// is on:
//
//   - Every recording method is nil-safe: a nil *Recorder or *ShotSpan is
//     the disabled state, and every call on it reduces to a pointer check.
//     The engine and controllers therefore instrument unconditionally.
//   - Shot buffers are recycled through a sync.Pool, whose per-P free
//     lists shard recycling across the engine's shot workers — after
//     warmup the hot path performs no allocation.
//   - Workers record into private per-shot buffers; the engine commits
//     buffers on its in-order merge path, so the committed stream is
//     ordered by (shot, emission order) and is bit-identical at any
//     worker count.
//   - The committed stream is a fixed-capacity ring: a long run keeps the
//     most recent Cap events and counts the rest in Dropped(). Because
//     eviction follows commit order, the retained window is itself a
//     deterministic function of the run.
package trace

import "fmt"

// Stage identifies one pipeline stage of a feedback shot. Stages below
// StageWindow are additive: per feedback site they partition the site's
// feedback latency, so summing their durations (plus the shot's
// StagePayload span) reproduces the shot latency exactly. Stages from
// StageWindow on are annotations — overlapping, informational events that
// are excluded from latency accounting.
type Stage uint8

// Pipeline stages.
const (
	// StagePayload is the workload's unconditional gate payload (site -1).
	StagePayload Stage = iota
	// StageReadout is a blocking wait for the full readout pulse
	// (conventional and fallback paths).
	StageReadout
	// StageDecision is the predictor's time-to-threshold (committed path).
	StageDecision
	// StagePipeline is the Bayesian output delay plus trigger clock
	// quantization (and any injected trigger jitter).
	StagePipeline
	// StageTransit is the interconnect transit of the feedback signal.
	StageTransit
	// StageRetry is the retry penalty of dropped/corrupted backplane
	// messages (Value holds the resend count).
	StageRetry
	// StageStaging is speculative pulse staging: prep + DAC (+ case-2
	// ancilla preparation).
	StageStaging
	// StageFloorWait is the case-3 wait for the readout-end floor.
	StageFloorWait
	// StageClassify is the post-readout ADC + state-classification chain.
	StageClassify
	// StageRecovery is the inverse program undoing a mispredicted branch.
	StageRecovery
	// StageFault is fault-imposed latency with no fault-free counterpart
	// (e.g. the re-read after a readout-channel outage).
	StageFault

	// Annotation stages (not additive).

	// StageWindow is one demodulation-window posterior evaluation
	// (Value holds P_predict after the window).
	StageWindow
	// StageClassifyFull is the full-pulse ground-truth classification
	// (Outcome holds the classified state).
	StageClassifyFull
	// StageHop is one interconnect hop traversal (Value holds the hop
	// index on the route).
	StageHop

	// NumStages is the number of defined stages.
	NumStages
)

var stageNames = [NumStages]string{
	"payload", "readout", "decision", "pipeline", "transit", "retry",
	"staging", "floor_wait", "classify", "recovery", "fault",
	"window", "classify_full", "hop",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// Additive reports whether the stage takes part in the per-site latency
// partition (see the Stage doc).
func (s Stage) Additive() bool { return s < StageWindow }

// StageFromName resolves a stage name emitted by Stage.String; ok is false
// for unknown names.
func StageFromName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Event is one typed span of the shot pipeline. Times are in nanoseconds
// relative to the owning feedback site's readout start (StagePayload,
// which has no site, starts at 0). Site is -1 for shot-scoped events.
type Event struct {
	Shot  int32
	Site  int16
	Qubit int16
	Stage Stage
	// Outcome is the stage's branch/classification outcome, -1 when not
	// applicable.
	Outcome int8
	// Mispredict marks spans of a shot whose committed prediction proved
	// wrong.
	Mispredict bool
	// Fault marks spans caused or stretched by injected faults.
	Fault   bool
	StartNs float64
	EndNs   float64
	// Value is stage-specific (posterior, retry count, hop index).
	Value float64
}

// DurationNs returns the span length.
func (e Event) DurationNs() float64 { return e.EndNs - e.StartNs }
