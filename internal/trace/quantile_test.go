package trace

import (
	"math"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.95); got != 0 {
		t.Fatalf("nil histogram Quantile = %v, want 0", got)
	}
	reg := NewRegistry()
	h := reg.Histogram("q_test", "quantile test", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %v, want 0", got)
	}

	// 100 observations spread uniformly over (0, 4]: 25 per bucket
	// (0,1], (1,2], (2,4] is 50.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	// p50 → rank 50 lands at the end of (1,2].
	if got := h.Quantile(0.5); math.Abs(got-2.0) > 0.25 {
		t.Errorf("p50 = %v, want ~2.0", got)
	}
	// p95 → deep inside (2,4].
	if got := h.Quantile(0.95); got < 3.0 || got > 4.0 {
		t.Errorf("p95 = %v, want in (3, 4]", got)
	}
	// Quantiles are monotone in p.
	prev := 0.0
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		q := h.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile(%v) = %v < Quantile at lower p (%v)", p, q, prev)
		}
		prev = q
	}
	// Out-of-range p clamps instead of panicking.
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("Quantile(-1) = %v, want clamp to p=0 (%v)", got, h.Quantile(0))
	}

	// Observations past the last finite bound resolve to that bound, not
	// +Inf.
	h2 := reg.Histogram("q_test_inf", "quantile inf test", []float64{1})
	for i := 0; i < 10; i++ {
		h2.Observe(100)
	}
	if got := h2.Quantile(0.99); got != 1 {
		t.Errorf("+Inf-bucket quantile = %v, want highest finite bound 1", got)
	}
}
