package trace

import (
	"sync"
	"sync/atomic"
)

// DefaultCapacity is the ring capacity of NewRecorder(0): enough for a
// few hundred thousand shots of a small workload before eviction starts.
const DefaultCapacity = 1 << 20

// Recorder collects shot spans into a bounded, deterministically ordered
// event stream. Workers obtain a per-shot ShotSpan, record into it
// privately, and the engine commits spans on its in-order merge path; the
// committed stream is therefore identical at any worker count. A nil
// *Recorder is the disabled recorder: Shot returns a nil span and every
// recording call on it is a no-op.
type Recorder struct {
	cap  int
	pool sync.Pool // *ShotSpan; per-P pools shard recycling across workers

	mu      sync.Mutex
	ring    []Event
	start   int // index of the oldest retained event
	count   int // retained events
	total   atomic.Uint64
	dropped atomic.Uint64
}

// NewRecorder returns a recorder retaining at most capacity events
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{cap: capacity}
	r.pool.New = func() any { return &ShotSpan{buf: make([]Event, 0, 64)} }
	return r
}

// Shot leases a span for one shot. Nil-safe: a nil recorder returns a nil
// span, which is itself a no-op sink.
func (r *Recorder) Shot(shot int) *ShotSpan {
	if r == nil {
		return nil
	}
	s := r.pool.Get().(*ShotSpan)
	s.rec = r
	s.shot = int32(shot)
	s.site = -1
	s.qubit = -1
	s.buf = s.buf[:0]
	return s
}

// Commit appends a span's events to the ordered stream and recycles the
// span. The engine calls it on the merge path in strict shot order; the
// span must not be used afterwards. Nil-safe in both receiver and
// argument.
func (r *Recorder) Commit(s *ShotSpan) {
	if r == nil || s == nil {
		return
	}
	r.total.Add(uint64(len(s.buf)))
	r.mu.Lock()
	if r.ring == nil {
		r.ring = make([]Event, r.cap)
	}
	for _, e := range s.buf {
		if r.count == r.cap {
			// Ring full: evict the oldest event (commit order, hence
			// deterministic).
			r.start++
			if r.start == r.cap {
				r.start = 0
			}
			r.count--
			r.dropped.Add(1)
		}
		i := r.start + r.count
		if i >= r.cap {
			i -= r.cap
		}
		r.ring[i] = e
		r.count++
	}
	r.mu.Unlock()
	s.rec = nil
	r.pool.Put(s)
}

// Events returns a copy of the retained stream in commit order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.count)
	for i := 0; i < r.count; i++ {
		j := r.start + i
		if j >= r.cap {
			j -= r.cap
		}
		out[i] = r.ring[j]
	}
	return out
}

// Total returns the number of events ever committed.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total.Load()
}

// Dropped returns the number of events evicted by the ring bound.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped.Load()
}

// Reset discards the retained stream and the drop/total counters (the
// buffer pool is kept warm).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.start, r.count = 0, 0
	r.mu.Unlock()
	r.total.Store(0)
	r.dropped.Store(0)
}

// ShotSpan is one shot's private event buffer. Methods are nil-safe: a
// nil span swallows every call, so instrumented code records
// unconditionally. A span is single-goroutine at any instant — the
// engine's pipeline hands it from the shot's worker to the merge path
// with a happens-before edge, never sharing it concurrently.
type ShotSpan struct {
	rec   *Recorder
	shot  int32
	site  int16
	qubit int16
	buf   []Event
}

// SetSite scopes subsequent events to feedback site index `site` reading
// qubit `qubit`. Site -1 returns to shot scope.
func (s *ShotSpan) SetSite(site, qubit int) {
	if s == nil {
		return
	}
	s.site = int16(site)
	s.qubit = int16(qubit)
}

// Len returns the number of buffered events.
func (s *ShotSpan) Len() int {
	if s == nil {
		return 0
	}
	return len(s.buf)
}

func (s *ShotSpan) add(e Event) {
	e.Shot = s.shot
	e.Site = s.site
	e.Qubit = s.qubit
	s.buf = append(s.buf, e)
}

// Span records an additive stage with no outcome.
func (s *ShotSpan) Span(st Stage, startNs, endNs float64) {
	if s == nil {
		return
	}
	s.add(Event{Stage: st, Outcome: -1, StartNs: startNs, EndNs: endNs})
}

// SpanOutcome records a stage carrying a branch outcome and misprediction
// flag.
func (s *ShotSpan) SpanOutcome(st Stage, startNs, endNs float64, outcome int, mispredict bool) {
	if s == nil {
		return
	}
	s.add(Event{Stage: st, Outcome: int8(outcome), Mispredict: mispredict, StartNs: startNs, EndNs: endNs})
}

// SpanFault records a fault-flagged stage; value is stage-specific (retry
// count, penalty source).
func (s *ShotSpan) SpanFault(st Stage, startNs, endNs, value float64) {
	if s == nil {
		return
	}
	s.add(Event{Stage: st, Outcome: -1, Fault: true, StartNs: startNs, EndNs: endNs, Value: value})
}

// Annotate records a non-additive annotation event.
func (s *ShotSpan) Annotate(st Stage, startNs, endNs float64, outcome int, value float64) {
	if s == nil {
		return
	}
	s.add(Event{Stage: st, Outcome: int8(outcome), StartNs: startNs, EndNs: endNs, Value: value})
}
