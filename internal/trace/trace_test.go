package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestStageNamesRoundTrip(t *testing.T) {
	for st := Stage(0); st < NumStages; st++ {
		name := st.String()
		if strings.HasPrefix(name, "stage(") {
			t.Fatalf("stage %d has no name", st)
		}
		got, ok := StageFromName(name)
		if !ok || got != st {
			t.Fatalf("StageFromName(%q) = %v, %v; want %v, true", name, got, ok, st)
		}
	}
	if _, ok := StageFromName("bogus"); ok {
		t.Fatal("StageFromName accepted an unknown name")
	}
	if Stage(200).String() != "stage(200)" {
		t.Fatalf("out-of-range stage string = %q", Stage(200).String())
	}
}

func TestStageAdditiveBoundary(t *testing.T) {
	for st := Stage(0); st < StageWindow; st++ {
		if !st.Additive() {
			t.Fatalf("stage %v should be additive", st)
		}
	}
	for st := StageWindow; st < NumStages; st++ {
		if st.Additive() {
			t.Fatalf("stage %v should be an annotation", st)
		}
	}
}

func TestRecorderCommitOrderAndScoping(t *testing.T) {
	r := NewRecorder(16)
	for shot := 0; shot < 2; shot++ {
		s := r.Shot(shot)
		s.Span(StagePayload, 0, 100)
		s.SetSite(0, 3)
		s.SpanOutcome(StageDecision, 0, 250, 1, shot == 1)
		s.SpanFault(StageRetry, 250, 300, 2)
		s.Annotate(StageWindow, 0, 50, 1, 0.75)
		if s.Len() != 4 {
			t.Fatalf("shot %d: Len = %d, want 4", shot, s.Len())
		}
		r.Commit(s)
	}
	ev := r.Events()
	if len(ev) != 8 || r.Total() != 8 || r.Dropped() != 0 {
		t.Fatalf("events=%d total=%d dropped=%d; want 8/8/0", len(ev), r.Total(), r.Dropped())
	}
	// Shot scope, then site scope.
	if ev[0].Site != -1 || ev[0].Qubit != -1 || ev[0].Stage != StagePayload {
		t.Fatalf("payload event scoped wrong: %+v", ev[0])
	}
	if ev[1].Site != 0 || ev[1].Qubit != 3 || ev[1].Outcome != 1 || ev[1].Mispredict {
		t.Fatalf("decision event wrong: %+v", ev[1])
	}
	if !ev[2].Fault || ev[2].Value != 2 {
		t.Fatalf("fault event wrong: %+v", ev[2])
	}
	if ev[5].Shot != 1 || !ev[5].Mispredict {
		t.Fatalf("second shot's decision wrong: %+v", ev[5])
	}
	if d := ev[1].DurationNs(); d != 250 {
		t.Fatalf("DurationNs = %v, want 250", d)
	}
}

func TestRecorderRingEviction(t *testing.T) {
	r := NewRecorder(4)
	for shot := 0; shot < 3; shot++ {
		s := r.Shot(shot)
		s.Span(StageStaging, 0, float64(shot))
		s.Span(StageTransit, 0, float64(shot))
		r.Commit(s)
	}
	// 6 events through a 4-slot ring: the two oldest evicted.
	if r.Total() != 6 || r.Dropped() != 2 {
		t.Fatalf("total=%d dropped=%d; want 6/2", r.Total(), r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	if ev[0].Shot != 1 || ev[3].Shot != 2 {
		t.Fatalf("ring retained wrong window: first=%+v last=%+v", ev[0], ev[3])
	}

	r.Reset()
	if r.Total() != 0 || r.Dropped() != 0 || len(r.Events()) != 0 {
		t.Fatal("Reset did not clear the stream")
	}
	s := r.Shot(9)
	s.Span(StageReadout, 0, 1)
	r.Commit(s)
	if got := r.Events(); len(got) != 1 || got[0].Shot != 9 {
		t.Fatalf("post-Reset commit lost: %+v", got)
	}
}

func TestRecorderNilSafety(t *testing.T) {
	var r *Recorder
	s := r.Shot(0)
	if s != nil {
		t.Fatal("nil recorder leased a span")
	}
	// All of these must be no-ops, not panics.
	s.SetSite(1, 2)
	s.Span(StageReadout, 0, 1)
	s.SpanOutcome(StageDecision, 0, 1, 0, false)
	s.SpanFault(StageFault, 0, 1, 1)
	s.Annotate(StageHop, 0, 1, 0, 0)
	if s.Len() != 0 {
		t.Fatal("nil span has nonzero Len")
	}
	r.Commit(s)
	r.Reset()
	if r.Events() != nil || r.Total() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder reported state")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteJSONL: %v", err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := NewRecorder(0)
	s := r.Shot(7)
	s.Span(StagePayload, 0, 120)
	s.SetSite(2, 4)
	s.SpanOutcome(StageDecision, 0, 430.5, 1, true)
	s.SpanFault(StageRetry, 430.5, 470, 3)
	s.Annotate(StageWindow, 0, 50, 0, 0.25)
	r.Commit(s)

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	got, err := ParseJSONL(buf.Bytes())
	if err != nil {
		t.Fatalf("ParseJSONL: %v", err)
	}
	want := r.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip lost events: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	if _, err := ParseJSONL([]byte(`{"stage":"nope"}`)); err == nil {
		t.Fatal("ParseJSONL accepted an unknown stage")
	}
	if _, err := ParseJSONL([]byte(`{bad json`)); err == nil {
		t.Fatal("ParseJSONL accepted malformed input")
	}
}

func TestRegistryInstruments(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("artery_test_total", "test counter")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if reg.Counter("artery_test_total", "ignored") != c {
		t.Fatal("counter not deduplicated by name")
	}

	g := reg.Gauge("artery_test_gauge", "test gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}

	h := reg.Histogram("artery_test_ns", "test histogram", []float64{10, 100})
	for _, v := range []float64{5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("histogram count=%d sum=%v; want 3/555", h.Count(), h.Sum())
	}
}

func TestRegistryNilSafety(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	g := reg.Gauge("x", "")
	h := reg.Histogram("x", "", DefaultLatencyBucketsNs())
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments reported state")
	}
	if err := reg.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WriteProm: %v", err)
	}
}

func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("artery_b_total", "second").Add(7)
	reg.Counter("artery_a_total", "first").Inc()
	reg.Gauge("artery_g", "a gauge").Set(1.5)
	h := reg.Histogram("artery_lat_ns", "latencies", []float64{100, 200})
	h.Observe(50)
	h.Observe(150)
	h.Observe(1000)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()

	// Counters in lexicographic order.
	if strings.Index(out, "artery_a_total 1") > strings.Index(out, "artery_b_total 7") {
		t.Fatalf("counters out of order:\n%s", out)
	}
	for _, want := range []string{
		"# HELP artery_a_total first",
		"# TYPE artery_a_total counter",
		"artery_g 1.5",
		`artery_lat_ns_bucket{le="100"} 1`,
		`artery_lat_ns_bucket{le="200"} 2`,
		`artery_lat_ns_bucket{le="+Inf"} 3`,
		"artery_lat_ns_sum 1200",
		"artery_lat_ns_count 3",
		"# TYPE artery_lat_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultLatencyBucketsAscending(t *testing.T) {
	b := DefaultLatencyBucketsNs()
	if len(b) == 0 {
		t.Fatal("no default buckets")
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not strictly ascending at %d: %v", i, b)
		}
	}
}
