package predict

import (
	"fmt"

	"artery/internal/readout"
	"artery/internal/stats"
)

// TuneResult is the outcome of the Figure-17 threshold-tuning procedure.
type TuneResult struct {
	Theta float64
	// MeanLatencyNs is the expected per-feedback latency at Theta on the
	// tuning set, including misprediction recovery.
	MeanLatencyNs float64
	// Accuracy is the committed-prediction accuracy at Theta.
	Accuracy float64
	// Curve records (theta, latency, accuracy) for every candidate.
	Curve []TunePoint
}

// TunePoint is one candidate threshold's tuning measurement.
type TunePoint struct {
	Theta     float64
	LatencyNs float64
	Accuracy  float64
}

// TuneConfig parameterizes AutoTune.
type TuneConfig struct {
	// Candidates to evaluate; nil selects the default ladder
	// 0.55..0.99.
	Candidates []float64
	// Prior is the site's historical branch-1 probability.
	Prior float64
	// Shots per candidate (default 400).
	Shots int
	// MinAccuracy discards candidates below this committed accuracy
	// (default 0.85, keeping the paper's >90% operating regime reachable).
	MinAccuracy float64
	// RecoveryNs is the misprediction penalty added on top of the full
	// readout (undo + correct-branch issue; default 150 ns).
	RecoveryNs float64
	// Mode selects the predictor features (default combined).
	Mode Mode
}

func (c *TuneConfig) fill() {
	if c.Candidates == nil {
		c.Candidates = []float64{0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.88, 0.91, 0.93, 0.95, 0.97, 0.99}
	}
	if c.Shots == 0 {
		c.Shots = 400
	}
	if c.MinAccuracy == 0 {
		c.MinAccuracy = 0.85
	}
	if c.RecoveryNs == 0 {
		c.RecoveryNs = 150
	}
	if c.Prior == 0 {
		c.Prior = 0.5
	}
}

// AutoTune reproduces the paper's threshold-selection procedure (§6.6,
// Figure 17): evaluate the expected feedback latency of each candidate
// tolerance threshold on training pulses — a committed correct prediction
// costs its commit time, a misprediction costs the full readout plus
// recovery, a non-commit costs the conventional path — and pick the
// latency-minimizing threshold subject to the accuracy floor.
func AutoTune(ch *readout.Channel, cfg TuneConfig, rng *stats.RNG) (TuneResult, error) {
	cfg.fill()
	if len(cfg.Candidates) == 0 {
		return TuneResult{}, fmt.Errorf("predict: no threshold candidates")
	}

	// Pre-generate the tuning shots once so candidates see identical data.
	type shot struct {
		pulse *readout.Pulse
		truth int
	}
	shots := make([]shot, cfg.Shots)
	for i := range shots {
		state := 0
		if rng.Bool(cfg.Prior) {
			state = 1
		}
		p := ch.Cal.Synthesize(state, rng)
		shots[i] = shot{pulse: p, truth: ch.Classifier.ClassifyFull(p)}
	}

	conventional := ch.Cal.DurationNs + 160 // full readout + processing chain

	var best *TunePoint
	res := TuneResult{}
	for _, theta := range cfg.Candidates {
		if theta <= 0.5 || theta >= 1 {
			return TuneResult{}, fmt.Errorf("predict: candidate threshold %v out of (0.5,1)", theta)
		}
		p := New(Config{Theta0: theta, Theta1: theta, Mode: cfg.Mode}, ch)
		var lat stats.RunningMean
		committed, correct := 0, 0
		for _, sh := range shots {
			d := p.PredictWithHistory(sh.pulse, cfg.Prior)
			switch {
			case !d.Committed:
				lat.Add(conventional)
			case d.Branch == sh.truth:
				committed++
				correct++
				lat.Add(d.TimeNs)
			default:
				committed++
				lat.Add(conventional + cfg.RecoveryNs)
			}
		}
		acc := 1.0
		if committed > 0 {
			acc = float64(correct) / float64(committed)
		}
		pt := TunePoint{Theta: theta, LatencyNs: lat.Mean(), Accuracy: acc}
		res.Curve = append(res.Curve, pt)
		if acc < cfg.MinAccuracy {
			continue
		}
		if best == nil || pt.LatencyNs < best.LatencyNs {
			b := pt
			best = &b
		}
	}
	if best == nil {
		return res, fmt.Errorf("predict: no candidate met the %.2f accuracy floor", cfg.MinAccuracy)
	}
	res.Theta = best.Theta
	res.MeanLatencyNs = best.LatencyNs
	res.Accuracy = best.Accuracy
	return res, nil
}
