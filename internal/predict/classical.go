package predict

// Classical is the interface of a conventional CPU branch predictor.
// These are implemented to demonstrate the paper's first motivation: CPU
// predictors assume temporally dependent, deterministic branches and break
// down on quantum feedback, where each shot's outcome is an independent
// Bernoulli draw.
type Classical interface {
	// Predict returns the predicted branch (0 or 1) for the next outcome.
	Predict() int
	// Update records the actual outcome.
	Update(outcome int)
	Name() string
}

// AlwaysTaken is the trivial static predictor.
type AlwaysTaken struct{}

// Name returns the predictor name.
func (AlwaysTaken) Name() string { return "always-taken" }

// Predict always predicts branch 1.
func (AlwaysTaken) Predict() int { return 1 }

// Update is a no-op.
func (AlwaysTaken) Update(int) {}

// TwoBit is the classic two-bit saturating counter (Smith 1981).
type TwoBit struct {
	state int // 0,1: predict 0 — 2,3: predict 1
}

// twoBitNext is the saturating transition table, indexed state<<1|outcome:
// decrement toward 0 on outcome 0, increment toward 3 on outcome 1. A
// table walk compiles to one load with no data-dependent branches — the
// form a hardware predictor's update pipeline uses, and measurably faster
// than the compare-and-mutate version on random (never-predictable)
// quantum outcomes, where every branch mispredicts half the time.
var twoBitNext = [8]int8{
	0, 1, // state 0: -> 0 on outcome 0, -> 1 on outcome 1
	0, 2, // state 1
	1, 3, // state 2
	2, 3, // state 3
}

// Name returns the predictor name.
func (*TwoBit) Name() string { return "two-bit" }

// Predict returns the counter's current direction (the high bit).
func (t *TwoBit) Predict() int { return t.state >> 1 }

// Update saturates the counter toward the observed outcome, branchlessly.
func (t *TwoBit) Update(outcome int) {
	t.state = int(twoBitNext[t.state<<1|(outcome&1)])
}

// GShare is a global-history predictor: the recent h outcomes XOR-index a
// table of two-bit counters (McFarling 1993). On quantum feedback the
// history carries no information, so gshare degenerates to per-pattern
// majority voting.
type GShare struct {
	historyBits int
	history     uint32
	table       []TwoBit
}

// NewGShare returns a gshare predictor with h history bits (table size 2^h).
// It panics for h outside [1, 20].
func NewGShare(h int) *GShare {
	if h < 1 || h > 20 {
		panic("predict: gshare history bits out of range")
	}
	return &GShare{historyBits: h, table: make([]TwoBit, 1<<uint(h))}
}

// Name returns the predictor name.
func (g *GShare) Name() string { return "gshare" }

func (g *GShare) index() uint32 {
	return g.history & (uint32(len(g.table)) - 1)
}

// Predict returns the direction of the counter selected by global history.
func (g *GShare) Predict() int { return g.table[g.index()].Predict() }

// Update trains the selected counter and shifts the outcome into history.
func (g *GShare) Update(outcome int) {
	g.table[g.index()].Update(outcome)
	g.history = (g.history<<1 | uint32(outcome)) & (1<<uint(g.historyBits) - 1)
}

// EvaluateClassical measures a classical predictor's accuracy on an
// outcome sequence.
func EvaluateClassical(p Classical, outcomes []int) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	ok := 0
	for _, o := range outcomes {
		if p.Predict() == o {
			ok++
		}
		p.Update(o)
	}
	return float64(ok) / float64(len(outcomes))
}
