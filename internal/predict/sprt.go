package predict

import (
	"fmt"
	"math"

	"artery/internal/readout"
)

// SPRT is a sequential-probability-ratio-test branch predictor — the
// statistically optimal sequential decision rule (Wald) and a natural
// extension of the paper's table-based design. Instead of vectorizing the
// trajectory into k bits and looking up a pre-generated probability, SPRT
// accumulates the exact Gaussian log-likelihood ratio of each disjoint
// demodulation window's IQ point and commits when the ratio leaves the
// (α, β) error band:
//
//	LLR_n = Σ_w ( |x_w − c0|² − |x_w − c1|² ) / (2σ_w²)  + ln(prior odds)
//	commit 1 when LLR ≥ ln((1−β)/α);  commit 0 when LLR ≤ ln(β/(1−α))
//
// α bounds the false-1 rate, β the false-0 rate. The per-window noise σ_w
// follows analytically from the channel calibration (AWGN σ per quadrature
// integrated over L samples), so no training table is required — the cost
// is that SPRT needs the parametric Gaussian model to be right, while the
// paper's table is model-free. The xtr-sprt experiment compares them.
type SPRT struct {
	channel *readout.Channel
	alpha   float64
	beta    float64
	// Cached per-window geometry.
	c0, c1  readout.IQ
	sigmaW  float64
	upperTh float64
	lowerTh float64
}

// NewSPRT builds an SPRT predictor over a calibrated channel with error
// budgets alpha (false-1) and beta (false-0). It panics when the budgets
// are outside (0, 0.5).
func NewSPRT(ch *readout.Channel, alpha, beta float64) *SPRT {
	if alpha <= 0 || alpha >= 0.5 || beta <= 0 || beta >= 0.5 {
		panic(fmt.Sprintf("predict: SPRT error budgets out of range: α=%v β=%v", alpha, beta))
	}
	L := float64(ch.Cal.WindowSamples(ch.Classifier.WindowNs))
	// Window-mean noise per quadrature: σ·√L/(L+1) (see readout.Demodulate).
	sigmaW := ch.Cal.NoiseSigma * math.Sqrt(L) / (L + 1)
	return &SPRT{
		channel: ch,
		alpha:   alpha,
		beta:    beta,
		c0:      ch.Classifier.F0,
		c1:      ch.Classifier.F1,
		sigmaW:  sigmaW,
		upperTh: math.Log((1 - beta) / alpha),
		lowerTh: math.Log(beta / (1 - alpha)),
	}
}

// Predict runs the sequential test over the shot's disjoint demodulation
// windows, starting from the site's historical prior.
func (s *SPRT) Predict(pulse *readout.Pulse, prior float64) Decision {
	const eps = 1e-6
	prior = clamp(prior, eps, 1-eps)
	llr := math.Log(prior / (1 - prior))
	windowNs := s.channel.Classifier.WindowNs
	traj := s.channel.Cal.Trajectory(pulse, windowNs, 0)
	inv2s2 := 1 / (2 * s.sigmaW * s.sigmaW)

	var trace []PredictionPoint
	for i, pt := range traj {
		llr += (pt.Dist2(s.c0) - pt.Dist2(s.c1)) * inv2s2
		t := float64(i+1) * windowNs
		post := 1 / (1 + math.Exp(-llr))
		trace = append(trace, PredictionPoint{Windows: i + 1, TimeNs: t, PRead1: post, PPredict: post})
		if llr >= s.upperTh {
			return Decision{Branch: 1, Committed: true, TimeNs: t, PFinal: post, Trace: trace}
		}
		if llr <= s.lowerTh {
			return Decision{Branch: 0, Committed: true, TimeNs: t, PFinal: post, Trace: trace}
		}
	}
	// Ran out of pulse: fall back to the conventional classification.
	final := s.channel.Classifier.ClassifyFull(pulse)
	pFinal := 0.0
	if len(trace) > 0 {
		pFinal = trace[len(trace)-1].PPredict
	}
	return Decision{
		Branch:    final,
		Committed: false,
		TimeNs:    s.channel.Cal.DurationNs,
		PFinal:    pFinal,
		Trace:     trace,
	}
}

// Accuracy evaluates the SPRT on labelled pulses, mirroring
// Predictor.Accuracy.
func (s *SPRT) Accuracy(pulses []*readout.Pulse, prior float64) (acc, meanTimeNs float64) {
	if len(pulses) == 0 {
		return 0, 0
	}
	ok := 0
	var sum float64
	for _, pl := range pulses {
		d := s.Predict(pl, prior)
		if d.Branch == s.channel.Classifier.ClassifyFull(pl) {
			ok++
		}
		sum += d.TimeNs
	}
	return float64(ok) / float64(len(pulses)), sum / float64(len(pulses))
}
