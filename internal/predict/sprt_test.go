package predict

import (
	"math"
	"testing"

	"artery/internal/readout"
	"artery/internal/stats"
)

func TestSPRTPanicsOnBadBudgets(t *testing.T) {
	for _, ab := range [][2]float64{{0, 0.1}, {0.1, 0}, {0.6, 0.1}, {0.1, 0.5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("budgets %v accepted", ab)
				}
			}()
			NewSPRT(sharedChannel, ab[0], ab[1])
		}()
	}
}

func TestSPRTErrorRatesNearBudget(t *testing.T) {
	// Wald's guarantee: realized error rates do not exceed the budgets by
	// much (the bound is approximate for discrete-time overshoot).
	s := NewSPRT(sharedChannel, 0.05, 0.05)
	rng := stats.NewRNG(60)
	wrong, total, committed := 0, 0, 0
	for i := 0; i < 1500; i++ {
		pl := sharedChannel.Cal.Synthesize(i%2, rng)
		truth := sharedChannel.Classifier.ClassifyFull(pl)
		d := s.Predict(pl, 0.5)
		total++
		if d.Committed {
			committed++
			if d.Branch != truth {
				wrong++
			}
		}
	}
	if committed < total*8/10 {
		t.Fatalf("SPRT committed only %d/%d", committed, total)
	}
	rate := float64(wrong) / float64(committed)
	if rate > 0.10 { // 2x overshoot allowance on the 5% budget
		t.Fatalf("SPRT error rate %v far above the 5%% budget", rate)
	}
}

func TestSPRTTighterBudgetsSlower(t *testing.T) {
	rng := stats.NewRNG(61)
	var pulses []*readout.Pulse
	for i := 0; i < 400; i++ {
		pulses = append(pulses, sharedChannel.Cal.Synthesize(i%2, rng))
	}
	loose := NewSPRT(sharedChannel, 0.1, 0.1)
	tight := NewSPRT(sharedChannel, 0.005, 0.005)
	accL, tL := loose.Accuracy(pulses, 0.5)
	accT, tT := tight.Accuracy(pulses, 0.5)
	if tT <= tL {
		t.Fatalf("tighter budgets not slower: %v vs %v", tT, tL)
	}
	if accT < accL-0.01 {
		t.Fatalf("tighter budgets less accurate: %v vs %v", accT, accL)
	}
}

func TestSPRTPriorShiftsDecisions(t *testing.T) {
	// A skewed prior must accelerate commits in its direction.
	rng := stats.NewRNG(62)
	var pulses []*readout.Pulse
	for i := 0; i < 300; i++ {
		state := 0
		if rng.Bool(0.05) {
			state = 1
		}
		pulses = append(pulses, sharedChannel.Cal.Synthesize(state, rng))
	}
	s := NewSPRT(sharedChannel, 0.03, 0.03)
	_, tSkew := s.Accuracy(pulses, 0.05)
	_, tFlat := s.Accuracy(pulses, 0.5)
	if tSkew >= tFlat {
		t.Fatalf("matching prior did not accelerate: %v vs %v", tSkew, tFlat)
	}
}

func TestSPRTTraceMonotonePosterior(t *testing.T) {
	// The logistic posterior must stay in (0,1) and times must increase.
	s := NewSPRT(sharedChannel, 0.02, 0.02)
	rng := stats.NewRNG(63)
	d := s.Predict(sharedChannel.Cal.Synthesize(1, rng), 0.5)
	if len(d.Trace) == 0 {
		t.Fatal("empty trace")
	}
	prevT := 0.0
	for _, pt := range d.Trace {
		if pt.PPredict <= 0 || pt.PPredict >= 1 || math.IsNaN(pt.PPredict) {
			t.Fatalf("posterior %v out of range", pt.PPredict)
		}
		if pt.TimeNs <= prevT {
			t.Fatal("trace times not increasing")
		}
		prevT = pt.TimeNs
	}
}

func TestSPRTFasterThanTableAtMatchedAccuracy(t *testing.T) {
	// The paper-table predictor at θ=0.91 and the SPRT at α=β=0.09 target
	// comparable confidence; SPRT (exact likelihoods, no quantization into
	// k-bit patterns) should decide at least as fast on balanced priors.
	rng := stats.NewRNG(64)
	var pulses []*readout.Pulse
	for i := 0; i < 400; i++ {
		pulses = append(pulses, sharedChannel.Cal.Synthesize(i%2, rng))
	}
	table := New(DefaultConfig(), sharedChannel)
	table.SeedHistory(100, 100)
	_, tTable := table.Accuracy(pulses)
	sprt := NewSPRT(sharedChannel, 0.09, 0.09)
	accS, tSprt := sprt.Accuracy(pulses, 0.5)
	if accS < 0.85 {
		t.Fatalf("SPRT accuracy %v", accS)
	}
	if tSprt > tTable*1.1 {
		t.Fatalf("SPRT (%v ns) much slower than table predictor (%v ns)", tSprt, tTable)
	}
}
