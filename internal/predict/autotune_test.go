package predict

import (
	"testing"

	"artery/internal/stats"
)

func TestAutoTuneFindsInteriorOptimum(t *testing.T) {
	rng := stats.NewRNG(21)
	res, err := AutoTune(sharedChannel, TuneConfig{Prior: 0.3, Shots: 500}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Theta <= 0.5 || res.Theta >= 1 {
		t.Fatalf("tuned theta %v out of range", res.Theta)
	}
	if res.Accuracy < 0.85 {
		t.Fatalf("tuned accuracy %v below floor", res.Accuracy)
	}
	if res.MeanLatencyNs <= 0 || res.MeanLatencyNs >= sharedChannel.Cal.DurationNs+160 {
		t.Fatalf("tuned latency %v not better than conventional", res.MeanLatencyNs)
	}
	if len(res.Curve) != 13 {
		t.Fatalf("curve has %d points", len(res.Curve))
	}
}

func TestAutoTuneAccuracyMonotoneInTheta(t *testing.T) {
	rng := stats.NewRNG(22)
	res, err := AutoTune(sharedChannel, TuneConfig{Prior: 0.5, Shots: 600}, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy at the tightest threshold must beat the loosest.
	first, last := res.Curve[0], res.Curve[len(res.Curve)-1]
	if last.Accuracy < first.Accuracy {
		t.Fatalf("accuracy fell from %v to %v as theta tightened", first.Accuracy, last.Accuracy)
	}
	// The tightest threshold must cost more latency than the optimum.
	if last.LatencyNs <= res.MeanLatencyNs {
		t.Fatalf("theta=%.2f latency %v not above optimum %v", last.Theta, last.LatencyNs, res.MeanLatencyNs)
	}
}

func TestAutoTuneRejectsBadCandidates(t *testing.T) {
	rng := stats.NewRNG(23)
	if _, err := AutoTune(sharedChannel, TuneConfig{Candidates: []float64{0.4}}, rng); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
	if _, err := AutoTune(sharedChannel, TuneConfig{Candidates: []float64{}, Shots: 10}, rng); err == nil {
		t.Fatal("empty candidate list accepted")
	}
}

func TestAutoTuneAccuracyFloorEnforced(t *testing.T) {
	rng := stats.NewRNG(24)
	// An impossible floor must produce an error, not a silent pick.
	_, err := AutoTune(sharedChannel, TuneConfig{Prior: 0.5, Shots: 200, MinAccuracy: 0.99999}, rng)
	if err == nil {
		t.Fatal("impossible accuracy floor silently satisfied")
	}
}

func TestAutoTuneDeterministicPerSeed(t *testing.T) {
	a, err1 := AutoTune(sharedChannel, TuneConfig{Prior: 0.3, Shots: 300}, stats.NewRNG(9))
	b, err2 := AutoTune(sharedChannel, TuneConfig{Prior: 0.3, Shots: 300}, stats.NewRNG(9))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a.Theta != b.Theta || a.MeanLatencyNs != b.MeanLatencyNs {
		t.Fatal("AutoTune not deterministic per seed")
	}
}
