package predict

import (
	"math"
	"testing"
	"testing/quick"

	"artery/internal/readout"
	"artery/internal/stats"
)

func TestBayesCombineWorkedExample(t *testing.T) {
	// The paper's §4 example: Ph=0.7, Pr=0.95 → P_predict ≈ 0.9779.
	got := BayesCombine(0.7, 0.95)
	want := 0.7 * 0.95 / (0.7*0.95 + 0.3*0.05)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("BayesCombine = %v, want %v", got, want)
	}
	if got < 0.97 || got > 0.99 {
		t.Fatalf("worked example out of expected range: %v", got)
	}
}

func TestBayesCombineNeutralHistory(t *testing.T) {
	// With an uninformative prior the posterior equals the evidence.
	for _, pr := range []float64{0.1, 0.5, 0.9} {
		if got := BayesCombine(0.5, pr); math.Abs(got-pr) > 1e-9 {
			t.Fatalf("BayesCombine(0.5, %v) = %v", pr, got)
		}
	}
}

func TestBayesCombineBoundsProperty(t *testing.T) {
	f := func(a, b float64) bool {
		ph := math.Mod(math.Abs(a), 1)
		pr := math.Mod(math.Abs(b), 1)
		got := BayesCombine(ph, pr)
		return got > 0 && got < 1 && !math.IsNaN(got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBayesCombineMonotoneInEvidence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		ph := 0.05 + 0.9*rng.Float64()
		p1 := 0.05 + 0.9*rng.Float64()
		p2 := 0.05 + 0.9*rng.Float64()
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return BayesCombine(ph, p1) <= BayesCombine(ph, p2)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBayesCombineExtremesSafe(t *testing.T) {
	for _, v := range []float64{0, 1} {
		got := BayesCombine(v, v)
		if math.IsNaN(got) || got <= 0 || got >= 1 {
			t.Fatalf("BayesCombine(%v,%v) = %v", v, v, got)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{
		{Theta0: 0.5, Theta1: 0.9},
		{Theta0: 0.9, Theta1: 1.0},
		{Theta0: 0.3, Theta1: 0.9},
	} {
		if c.Validate() == nil {
			t.Fatalf("config %+v accepted", c)
		}
	}
	if DefaultConfig().Validate() != nil {
		t.Fatal("default config invalid")
	}
}

// sharedChannel builds one calibrated channel reused by the heavier tests.
var sharedChannel = func() *readout.Channel {
	return readout.NewChannel(readout.DefaultCalibration(), 30, 6, stats.NewRNG(1000))
}()

func TestPredictorCommitsEarlyWithStrongHistory(t *testing.T) {
	// QEC-like site: history overwhelmingly 0 → commits branch 0 fast.
	p := New(DefaultConfig(), sharedChannel)
	p.SeedHistory(1, 400) // P_history_1 ≈ 0.0025 (paper: < 1% in QEC)
	rng := stats.NewRNG(2)
	pulse := sharedChannel.Cal.Synthesize(0, rng)
	d := p.Predict(pulse)
	if !d.Committed || d.Branch != 0 {
		t.Fatalf("decision = %+v, want committed branch 0", d)
	}
	if d.TimeNs > 200 {
		t.Fatalf("strong-history commit at %v ns, want early (< 200 ns)", d.TimeNs)
	}
}

func TestPredictorUniformHistoryNeedsMoreReadout(t *testing.T) {
	// QRW-like site: 50/50 history → decision driven by the pulse, taking
	// longer than the history-dominated case.
	p := New(DefaultConfig(), sharedChannel)
	p.SeedHistory(200, 200)
	rng := stats.NewRNG(3)
	var early, committed int
	const n = 100
	for i := 0; i < n; i++ {
		pulse := sharedChannel.Cal.Synthesize(i%2, rng)
		d := p.Predict(pulse)
		if d.Committed {
			committed++
			if d.TimeNs <= 30 {
				early++
			}
		}
	}
	if committed < n/2 {
		t.Fatalf("only %d/%d committed with uniform history", committed, n)
	}
	if early > n/4 {
		t.Fatalf("%d first-window commits with 50/50 history — too many", early)
	}
}

func TestPredictorAccuracyAboveNinety(t *testing.T) {
	// Headline claim: > 90% prediction accuracy on a balanced workload.
	p := New(DefaultConfig(), sharedChannel)
	p.SeedHistory(100, 100)
	rng := stats.NewRNG(4)
	var pulses []*readout.Pulse
	for i := 0; i < 600; i++ {
		pulses = append(pulses, sharedChannel.Cal.Synthesize(i%2, rng))
	}
	acc, meanT := p.Accuracy(pulses)
	if acc < 0.9 {
		t.Fatalf("prediction accuracy %v, want > 0.9", acc)
	}
	if meanT >= sharedChannel.Cal.DurationNs {
		t.Fatalf("mean decision time %v not earlier than full readout", meanT)
	}
}

func TestPredictorFallbackUsesFullReadout(t *testing.T) {
	// With extreme thresholds nothing commits; decisions take the full
	// readout and match the conventional classification.
	cfg := Config{Theta0: 0.9999999, Theta1: 0.9999999, Mode: ModeCombined}
	p := New(cfg, sharedChannel)
	rng := stats.NewRNG(5)
	pulse := sharedChannel.Cal.Synthesize(1, rng)
	d := p.Predict(pulse)
	if d.Committed {
		t.Fatalf("committed despite extreme thresholds: %+v", d)
	}
	if d.TimeNs != sharedChannel.Cal.DurationNs {
		t.Fatalf("fallback time %v, want full readout", d.TimeNs)
	}
	if d.Branch != sharedChannel.Classifier.ClassifyFull(pulse) {
		t.Fatal("fallback branch differs from conventional classification")
	}
}

func TestModeHistoryDecidesAtFirstWindowOrNever(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = ModeHistory
	p := New(cfg, sharedChannel)
	p.SeedHistory(500, 1)
	rng := stats.NewRNG(6)
	pulse := sharedChannel.Cal.Synthesize(1, rng)
	d := p.Predict(pulse)
	if !d.Committed || d.Branch != 1 || d.TimeNs != 30 {
		t.Fatalf("history-only strong prior: %+v", d)
	}
	// Weak prior: never commits, exactly one trace point.
	p2 := New(cfg, sharedChannel)
	p2.SeedHistory(10, 10)
	d2 := p2.Predict(pulse)
	if d2.Committed {
		t.Fatalf("history-only weak prior committed: %+v", d2)
	}
	if len(d2.Trace) != 1 {
		t.Fatalf("history-only trace length %d, want 1", len(d2.Trace))
	}
}

func TestModeTrajectoryIgnoresHistory(t *testing.T) {
	// Trajectory-only decisions must be byte-identical regardless of the
	// historical distribution.
	cfg := DefaultConfig()
	cfg.Mode = ModeTrajectory
	pA := New(cfg, sharedChannel)
	pA.SeedHistory(1000, 1)
	pB := New(cfg, sharedChannel)
	pB.SeedHistory(1, 1000)
	rng := stats.NewRNG(7)
	for i := 0; i < 50; i++ {
		pulse := sharedChannel.Cal.Synthesize(i%2, rng)
		dA, dB := pA.Predict(pulse), pB.Predict(pulse)
		if dA.Branch != dB.Branch || dA.TimeNs != dB.TimeNs || dA.Committed != dB.Committed {
			t.Fatalf("history leaked into trajectory-only decision: %+v vs %+v", dA, dB)
		}
	}
}

func TestCombinedFasterThanTrajectoryOnly(t *testing.T) {
	// With a strong prior, fusing history must commit no later on average
	// than the pulse alone — the Figure 14 ablation direction.
	rng := stats.NewRNG(8)
	var pulses []*readout.Pulse
	for i := 0; i < 200; i++ {
		state := 0
		if rng.Bool(0.05) {
			state = 1
		}
		pulses = append(pulses, sharedChannel.Cal.Synthesize(state, rng))
	}
	comb := New(DefaultConfig(), sharedChannel)
	comb.SeedHistory(5, 95)
	cfgT := DefaultConfig()
	cfgT.Mode = ModeTrajectory
	traj := New(cfgT, sharedChannel)
	_, tComb := comb.Accuracy(pulses)
	_, tTraj := traj.Accuracy(pulses)
	if tComb >= tTraj {
		t.Fatalf("combined (%v ns) not faster than trajectory-only (%v ns)", tComb, tTraj)
	}
}

func TestObserveShiftsHistory(t *testing.T) {
	p := New(DefaultConfig(), sharedChannel)
	before := p.PHistory1()
	for i := 0; i < 20; i++ {
		p.Observe(1)
	}
	if p.PHistory1() <= before {
		t.Fatal("Observe(1) did not raise P_history_1")
	}
}

func TestUpdateTableRefines(t *testing.T) {
	ch := readout.NewChannel(readout.DefaultCalibration(), 30, 6, stats.NewRNG(9))
	p := New(DefaultConfig(), ch)
	rng := stats.NewRNG(10)
	pulse := ch.Cal.Synthesize(1, rng)
	bits := ch.Classifier.WindowBits(pulse, 0)
	before := ch.Table.PRead1(bits)
	p.UpdateTable(pulse, 1)
	after := ch.Table.PRead1(bits)
	if after < before {
		t.Fatalf("table update lowered P for an observed-1 trajectory: %v -> %v", before, after)
	}
}

func TestTraceMonotoneTime(t *testing.T) {
	p := New(DefaultConfig(), sharedChannel)
	rng := stats.NewRNG(11)
	d := p.Predict(sharedChannel.Cal.Synthesize(1, rng))
	for i := 1; i < len(d.Trace); i++ {
		if d.Trace[i].TimeNs <= d.Trace[i-1].TimeNs {
			t.Fatal("trace times not increasing")
		}
	}
	if len(d.Trace) == 0 {
		t.Fatal("empty trace")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	New(Config{Theta0: 0.2, Theta1: 0.2}, sharedChannel)
}

func TestAlwaysTaken(t *testing.T) {
	acc := EvaluateClassical(AlwaysTaken{}, []int{1, 1, 0, 1})
	if acc != 0.75 {
		t.Fatalf("accuracy %v, want 0.75", acc)
	}
}

func TestTwoBitSaturation(t *testing.T) {
	p := &TwoBit{}
	if p.Predict() != 0 {
		t.Fatal("initial prediction should be 0")
	}
	for i := 0; i < 10; i++ {
		p.Update(1)
	}
	if p.Predict() != 1 {
		t.Fatal("did not learn 1s")
	}
	// One 0 must not flip a saturated counter.
	p.Update(0)
	if p.Predict() != 1 {
		t.Fatal("saturated counter flipped on a single miss")
	}
	p.Update(0)
	p.Update(0)
	if p.Predict() != 0 {
		t.Fatal("did not unlearn after repeated 0s")
	}
}

func TestGShareLearnsAlternation(t *testing.T) {
	// Deterministic alternating pattern: gshare learns it (near) perfectly —
	// that is its design point.
	g := NewGShare(4)
	outcomes := make([]int, 400)
	for i := range outcomes {
		outcomes[i] = i % 2
	}
	acc := EvaluateClassical(g, outcomes)
	if acc < 0.9 {
		t.Fatalf("gshare on deterministic alternation: %v", acc)
	}
}

func TestClassicalPredictorsFailOnQuantumRandomness(t *testing.T) {
	// On iid 50/50 outcomes every classical predictor sits at ~50% — the
	// paper's motivation for a quantum-specific design.
	rng := stats.NewRNG(12)
	outcomes := make([]int, 4000)
	for i := range outcomes {
		if rng.Bool(0.5) {
			outcomes[i] = 1
		}
	}
	for _, p := range []Classical{AlwaysTaken{}, &TwoBit{}, NewGShare(6)} {
		acc := EvaluateClassical(p, outcomes)
		if math.Abs(acc-0.5) > 0.05 {
			t.Fatalf("%s achieved %v on iid coin flips", p.Name(), acc)
		}
	}
}

func TestGSharePanicsOnBadHistory(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad history bits accepted")
		}
	}()
	NewGShare(0)
}

func TestEvaluateClassicalEmpty(t *testing.T) {
	if EvaluateClassical(AlwaysTaken{}, nil) != 0 {
		t.Fatal("empty evaluation should be 0")
	}
}
