// Package predict implements ARTERY's quantum branch prediction (§4): a
// reconciled predictor that fuses the historical branch distribution of a
// feedback site with a real-time trajectory classification of the partial
// readout pulse through a Bayesian model, and commits a branch as soon as
// the posterior crosses a confidence threshold.
//
// Classical CPU predictors (always-taken, two-bit saturating counter,
// gshare) are included as baselines: they fail on quantum feedback because
// superposition makes consecutive branch outcomes independent — exactly the
// motivation the paper gives for a new design.
package predict

import (
	"fmt"

	"artery/internal/readout"
	"artery/internal/stats"
	"artery/internal/trace"
)

// BayesCombine fuses the historical probability P_history_1 and the
// trajectory-table probability P_read_1 with the paper's Bayesian model:
//
//	P_predict_1 = (Ph·Pr) / (Ph·Pr + (1−Ph)·(1−Pr))
//
// Inputs are clamped to (ε, 1−ε) so a saturated table entry can never
// produce a division by zero or a hard 0/1 posterior.
func BayesCombine(pHist, pRead float64) float64 {
	const eps = 1e-6
	pHist = clamp(pHist, eps, 1-eps)
	pRead = clamp(pRead, eps, 1-eps)
	num := pHist * pRead
	return num / (num + (1-pHist)*(1-pRead))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Mode selects which features the predictor uses — the Figure 14 ablation.
type Mode int

// Predictor feature modes.
const (
	ModeCombined   Mode = iota // history + readout trajectory (ARTERY)
	ModeHistory                // historical branch distribution only
	ModeTrajectory             // readout-pulse analysis only
)

func (m Mode) String() string {
	switch m {
	case ModeCombined:
		return "combined"
	case ModeHistory:
		return "history-only"
	case ModeTrajectory:
		return "readout-only"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes one predictor instance.
type Config struct {
	Theta0 float64 // confidence threshold for committing branch 0
	Theta1 float64 // confidence threshold for committing branch 1
	Mode   Mode
}

// DefaultConfig returns the paper's evaluation configuration: symmetric
// thresholds at the tuned 0.91 operating point (Figure 17).
func DefaultConfig() Config {
	return Config{Theta0: 0.91, Theta1: 0.91, Mode: ModeCombined}
}

// Validate checks threshold sanity.
func (c Config) Validate() error {
	if c.Theta0 <= 0.5 || c.Theta0 >= 1 || c.Theta1 <= 0.5 || c.Theta1 >= 1 {
		return fmt.Errorf("predict: thresholds must lie in (0.5, 1): θ0=%v θ1=%v", c.Theta0, c.Theta1)
	}
	return nil
}

// PredictionPoint is one step of the iterative analysis: the posterior
// after window Windows (1-based) at time TimeNs into the readout.
type PredictionPoint struct {
	Windows  int
	TimeNs   float64
	PRead1   float64
	PPredict float64
}

// Decision is the outcome of predicting one shot.
type Decision struct {
	// Branch is the committed branch (0/1). When Committed is false the
	// predictor never reached confidence and Branch is the full-readout
	// classification instead (conventional path, no pre-execution).
	Branch    int
	Committed bool
	// TimeNs is the readout time at which the branch became available:
	// the threshold-crossing window boundary when Committed, otherwise the
	// full readout duration.
	TimeNs float64
	// PFinal is the posterior at decision time.
	PFinal float64
	// Trace records the per-window posterior evolution (Figure 15a).
	Trace []PredictionPoint
}

// RecordWindows emits the decision's per-window posterior evolution into
// span as StageWindow annotations: one event per demodulation window, with
// Value holding P_predict after the window and Outcome the window's
// running branch lean. Nil-safe via the span (tracing off costs one nil
// check).
func (d *Decision) RecordWindows(span *trace.ShotSpan) {
	if span == nil {
		return
	}
	prev := 0.0
	for _, pt := range d.Trace {
		lean := 0
		if pt.PPredict >= 0.5 {
			lean = 1
		}
		span.Annotate(trace.StageWindow, prev, pt.TimeNs, lean, pt.PPredict)
		prev = pt.TimeNs
	}
}

// Predictor is one feedback site's reconciled branch predictor. It owns the
// site's historical Beta counter and consults the channel's pre-generated
// trajectory state table.
type Predictor struct {
	cfg     Config
	channel *readout.Channel
	history *stats.BetaCounter
}

// New returns a predictor over a calibrated readout channel.
// It panics if cfg is invalid.
func New(cfg Config, ch *readout.Channel) *Predictor {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Predictor{cfg: cfg, channel: ch, history: stats.NewBetaCounter()}
}

// SeedHistory pre-loads the historical distribution with pseudo-counts, as
// when prior shots of the same program have already executed.
func (p *Predictor) SeedHistory(ones, zeros float64) {
	p.history.Alpha += ones
	p.history.Beta += zeros
}

// PHistory1 returns the current historical probability of branch 1.
func (p *Predictor) PHistory1() float64 { return p.history.P() }

// Observe updates the historical distribution with a shot's true outcome.
// The paper performs this after each prediction at zero latency cost.
func (p *Predictor) Observe(outcome int) { p.history.Observe(outcome == 1) }

// UpdateTable refines the trajectory state table with a completed shot,
// the between-program dynamic update of §4.
func (p *Predictor) UpdateTable(pulse *readout.Pulse, outcome int) {
	bits := p.channel.Classifier.WindowBits(pulse, 0)
	for n := 1; n <= len(bits); n++ {
		p.channel.Table.Update(bits[:n], outcome)
	}
}

// Predict runs the iterative analysis over a shot's readout pulse and
// returns the decision, using the predictor's own historical counter.
func (p *Predictor) Predict(pulse *readout.Pulse) Decision {
	return p.PredictWithHistory(pulse, p.history.P())
}

// PredictWithHistory runs the iterative analysis with an externally
// supplied historical probability — used by the controller, which keeps
// one historical distribution per feedback site (branch statistics of
// different sites are independent, §4). The posterior is evaluated at
// every window boundary; the branch commits at the first threshold
// crossing.
func (p *Predictor) PredictWithHistory(pulse *readout.Pulse, pHist float64) Decision {
	return p.PredictWithHistoryFault(pulse, pHist, nil)
}

// PredictWithHistoryFault is PredictWithHistory with a table-fault hook:
// when tableFault is non-nil every state-table lookup passes through it
// before entering the Bayesian fusion, which is how the fault subsystem
// models corrupted table RAM (a nil hook is the fault-free fast path).
func (p *Predictor) PredictWithHistoryFault(pulse *readout.Pulse, pHist float64, tableFault func(float64) float64) Decision {
	bits := p.channel.Classifier.WindowBits(pulse, 0)
	return p.predictBits(bits, pHist, tableFault, func() int {
		return p.channel.Classifier.ClassifyFull(pulse)
	})
}

// PredictFromBits runs the same iterative analysis over a pulse that has
// already been demodulated into per-window bits, with final the pulse's
// full-readout classification (used only when no threshold is crossed).
// PredictFromBits(WindowBits(pulse, 0), ClassifyFull(pulse), h) returns a
// Decision identical to PredictWithHistory(pulse, h) — the engine's
// parallel pipeline uses it to keep the cheap Bayesian fusion on the
// sequential merge path while workers do the windowing.
func (p *Predictor) PredictFromBits(bits []int, final int, pHist float64) Decision {
	return p.predictBits(bits, pHist, nil, func() int { return final })
}

// PredictFromBitsFault is PredictFromBits with the table-fault hook of
// PredictWithHistoryFault.
func (p *Predictor) PredictFromBitsFault(bits []int, final int, pHist float64, tableFault func(float64) float64) Decision {
	return p.predictBits(bits, pHist, tableFault, func() int { return final })
}

// predictBits evaluates the posterior at every window boundary and commits
// at the first threshold crossing; finalFn supplies the full-readout
// classification for the no-commitment fallback (deferred because the
// committed path never needs it). tableFault, when non-nil, intercepts
// every state-table lookup (fault injection).
func (p *Predictor) predictBits(bits []int, pHist float64, tableFault func(float64) float64, finalFn func() int) Decision {
	windowNs := p.channel.Classifier.WindowNs

	// One window boundary per bit: size the trace once instead of letting
	// append re-grow it inside the per-shot hot loop.
	trace := make([]PredictionPoint, 0, len(bits))
	for n := 1; n <= len(bits); n++ {
		pRead := p.channel.Table.PRead1(bits[:n])
		if tableFault != nil {
			pRead = tableFault(pRead)
		}
		var post float64
		switch p.cfg.Mode {
		case ModeHistory:
			post = pHist
		case ModeTrajectory:
			post = pRead
		default:
			post = BayesCombine(pHist, pRead)
		}
		t := float64(n) * windowNs
		trace = append(trace, PredictionPoint{Windows: n, TimeNs: t, PRead1: pRead, PPredict: post})
		if post >= p.cfg.Theta1 {
			return Decision{Branch: 1, Committed: true, TimeNs: t, PFinal: post, Trace: trace}
		}
		if 1-post >= p.cfg.Theta0 {
			return Decision{Branch: 0, Committed: true, TimeNs: t, PFinal: post, Trace: trace}
		}
		if p.cfg.Mode == ModeHistory {
			// History never changes within a shot: if it cannot commit at
			// the first window it never will.
			break
		}
	}
	// No commitment: fall back to the conventional full-readout path.
	final := finalFn()
	pFinal := 0.0
	if len(trace) > 0 {
		pFinal = trace[len(trace)-1].PPredict
	}
	return Decision{
		Branch:    final,
		Committed: false,
		TimeNs:    p.channel.Cal.DurationNs,
		PFinal:    pFinal,
		Trace:     trace,
	}
}

// Accuracy measures prediction accuracy and mean commit time over a set of
// labelled pulses (ground truth = full-pulse classification), without
// mutating predictor state.
func (p *Predictor) Accuracy(pulses []*readout.Pulse) (acc, meanTimeNs float64) {
	if len(pulses) == 0 {
		return 0, 0
	}
	ok := 0
	var t stats.RunningMean
	for _, pl := range pulses {
		d := p.Predict(pl)
		truth := p.channel.Classifier.ClassifyFull(pl)
		if d.Branch == truth {
			ok++
		}
		t.Add(d.TimeNs)
	}
	return float64(ok) / float64(len(pulses)), t.Mean()
}

// WindowNs exposes the channel's demodulation window length.
func (p *Predictor) WindowNs() float64 { return p.channel.Classifier.WindowNs }

// ReadoutDurationNs exposes the channel's full readout duration.
func (p *Predictor) ReadoutDurationNs() float64 { return p.channel.Cal.DurationNs }

// TruthOf returns the ground-truth branch outcome of a pulse.
func (p *Predictor) TruthOf(pulse *readout.Pulse) int {
	return p.channel.Classifier.ClassifyFull(pulse)
}

// EstimateLatencyBudget reports, for diagnostics, how much of the
// commitment latency is pipeline math versus windows: the Bayesian model
// is a multiply plus a FIFO and produces P_predict three FPGA cycles after
// a window classification lands (§5.1).
const BayesPipelineCycles = 3
