package qec

import "math"

// BenefitModel is the latency error-estimation model of Figure 12 (d): it
// estimates the syndrome feedback time ARTERY saves per QEC cycle at larger
// code distances, where a single mispredicted syndrome forces a branch
// recovery for the whole round.
//
//	saved(d) = P_ok(d)·SavePerCycleNs − (1 − P_ok(d))·recover(d)
//	P_ok(d)  = accuracy^(d²−1)
//	recover(d) = RecoverBaseNs + RecoverPerSyndromeNs·(d²−1)
//
// With the measured per-syndrome prediction accuracy the benefit shrinks
// with d and crosses zero at the paper's d = 13 upper bound.
type BenefitModel struct {
	// SyndromeAccuracy is the per-syndrome branch-prediction accuracy
	// sampled from the measured distribution.
	SyndromeAccuracy float64
	// SavePerCycleNs is the feedback time saved per cycle when every
	// syndrome prediction is correct (conventional latency − ARTERY's
	// early-commit latency).
	SavePerCycleNs float64
	// RecoverBaseNs and RecoverPerSyndromeNs parameterize the recovery
	// cost: undoing the pre-executed round and re-decoding grows with the
	// syndrome count.
	RecoverBaseNs        float64
	RecoverPerSyndromeNs float64
}

// DefaultBenefitModel returns the calibration used for Figure 12 (d):
// per-syndrome accuracy 0.985 (the top of the measured QEC accuracy
// distribution — weaker accuracies move the crossover below the paper's
// d=13), a 1.76 µs per-cycle saving (QubiC 2.15 µs − ARTERY 0.39 µs), and
// a recovery cost calibrated to place the crossover at d = 13.
func DefaultBenefitModel() BenefitModel {
	return BenefitModel{
		SyndromeAccuracy:     0.985,
		SavePerCycleNs:       1760,
		RecoverBaseNs:        60,
		RecoverPerSyndromeNs: 0.5,
	}
}

// POk returns the probability that all d²−1 syndrome predictions of one
// cycle are correct.
func (m BenefitModel) POk(d int) float64 {
	n := float64(d*d - 1)
	return math.Pow(m.SyndromeAccuracy, n)
}

// SavedPerCycleNs returns the expected feedback time saved per cycle at
// distance d (negative when recovery costs overwhelm the benefit).
func (m BenefitModel) SavedPerCycleNs(d int) float64 {
	pOK := m.POk(d)
	recover := m.RecoverBaseNs + m.RecoverPerSyndromeNs*float64(d*d-1)
	return pOK*m.SavePerCycleNs - (1-pOK)*recover
}

// CrossoverDistance returns the smallest odd d at which the saving is no
// longer positive.
func (m BenefitModel) CrossoverDistance() int {
	for d := 3; d <= 99; d += 2 {
		if m.SavedPerCycleNs(d) <= 0 {
			return d
		}
	}
	return -1
}

// LastBeneficialDistance returns the largest odd d with a positive saving —
// the paper's reported upper bound of d = 13, beyond which "the cost of
// prediction errors will overwhelm the benefits of pre-execution".
func (m BenefitModel) LastBeneficialDistance() int {
	c := m.CrossoverDistance()
	if c < 0 {
		return -1
	}
	return c - 2
}
