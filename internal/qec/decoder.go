package qec

import (
	"fmt"
	"math/bits"
)

// Decoder maps a Z-stabilizer syndrome (as a bitmask over the code's Z
// checks, in StabilizersOf(StabZ) order) to an X correction (bitmask over
// data qubits). The same machinery decodes Z errors from X syndromes by
// symmetry; the memory experiment tracks X errors / Z checks, which is the
// error type the paper's data-qubit pre-correction targets.
type Decoder interface {
	DecodeX(syndrome uint32) (correction uint64)
	Name() string
}

// LUTDecoder is the exhaustively built lookup-table decoder: for every
// syndrome it stores a minimum-weight X-error pattern producing it.
// For d=3 (512 error patterns, 16 syndromes) this is exact minimum-weight
// decoding — the PyMatching-generated table of §6.1.
type LUTDecoder struct {
	code  *Code
	table []uint64 // syndrome -> min-weight correction
	known []bool
}

// NewLUTDecoder builds the table by enumerating X-error patterns in order
// of increasing weight. It panics for codes with more than 16 data qubits
// (use the greedy decoder beyond d=3).
func NewLUTDecoder(c *Code) *LUTDecoder {
	if c.NumData > 16 {
		panic(fmt.Sprintf("qec: LUT decoder infeasible for %d data qubits", c.NumData))
	}
	nZ := len(c.StabilizersOf(StabZ))
	d := &LUTDecoder{
		code:  c,
		table: make([]uint64, 1<<uint(nZ)),
		known: make([]bool, 1<<uint(nZ)),
	}
	// Enumerate patterns sorted by weight via repeated passes.
	patterns := 1 << uint(c.NumData)
	for w := 0; w <= c.NumData; w++ {
		for p := 0; p < patterns; p++ {
			if bits.OnesCount(uint(p)) != w {
				continue
			}
			syn := d.syndromeBits(uint64(p))
			if !d.known[syn] {
				d.known[syn] = true
				d.table[syn] = uint64(p)
			}
		}
		done := true
		for _, k := range d.known {
			if !k {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	return d
}

// Name returns "lut".
func (d *LUTDecoder) Name() string { return "lut" }

func (d *LUTDecoder) syndromeBits(xerr uint64) uint32 {
	errMap := map[int]bool{}
	for q := 0; q < d.code.NumData; q++ {
		if xerr&(1<<uint(q)) != 0 {
			errMap[q] = true
		}
	}
	bitsOut := d.code.SyndromeOfX(errMap)
	var s uint32
	for i, b := range bitsOut {
		if b == 1 {
			s |= 1 << uint(i)
		}
	}
	return s
}

// DecodeX returns the stored minimum-weight correction for the syndrome.
func (d *LUTDecoder) DecodeX(syndrome uint32) uint64 {
	if int(syndrome) >= len(d.table) || !d.known[syndrome] {
		return 0
	}
	return d.table[syndrome]
}

// GreedyDecoder pairs triggered Z checks greedily by their diagonal-walk
// distance on the dual lattice and applies the X chain between each pair,
// or walks a lone check to the nearest absorbing boundary (the top/bottom
// edges, where Z plaquettes are dropped in the rotated layout). It is not
// minimum-weight-perfect matching but decodes single errors exactly and
// scales to large d — the scalable stand-in for PyMatching in the
// Figure-12d estimation.
//
// Geometry: Z plaquettes occupy dual-lattice positions with odd i+j; their
// neighbors in the Z sublattice are the four diagonal positions, and the
// step (di, dj) ∈ {±1}² from plaquette (i, j) crosses exactly the data
// qubit (i + (di−1)/2, j + (dj−1)/2).
type GreedyDecoder struct {
	code *Code
	zIdx []int // stabilizer indices of Z checks, syndrome-bit order
}

// NewGreedyDecoder returns a greedy matching decoder for the code.
func NewGreedyDecoder(c *Code) *GreedyDecoder {
	return &GreedyDecoder{code: c, zIdx: c.StabilizersOf(StabZ)}
}

// Name returns "greedy".
func (g *GreedyDecoder) Name() string { return "greedy" }

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// diagDist is the number of diagonal steps between two Z plaquettes.
func diagDist(a, b Stabilizer) int {
	di, dj := absInt(a.Row-b.Row), absInt(a.Col-b.Col)
	if dj > di {
		return dj
	}
	return di
}

// boundaryDist is the number of diagonal steps from a Z plaquette to the
// nearest absorbing (top/bottom) boundary.
func (g *GreedyDecoder) boundaryDist(s Stabilizer) int {
	d := g.code.Distance
	if s.Row <= d-s.Row {
		return s.Row
	}
	return d - s.Row
}

// DecodeX pairs lit syndrome bits and flips diagonal chains between them.
func (g *GreedyDecoder) DecodeX(syndrome uint32) uint64 {
	c := g.code
	var lit []Stabilizer
	for i, si := range g.zIdx {
		if syndrome&(1<<uint(i)) != 0 {
			lit = append(lit, c.Stabilizers[si])
		}
	}
	var correction uint64
	used := make([]bool, len(lit))
	for i := range lit {
		if used[i] {
			continue
		}
		// Find the nearest unused partner.
		best, bestDist := -1, 1<<30
		for j := i + 1; j < len(lit); j++ {
			if used[j] {
				continue
			}
			if dist := diagDist(lit[i], lit[j]); dist < bestDist {
				best, bestDist = j, dist
			}
		}
		bDist := g.boundaryDist(lit[i])
		if best >= 0 && bestDist <= bDist {
			used[i], used[best] = true, true
			correction ^= g.walk(lit[i].Row, lit[i].Col, lit[best].Row, lit[best].Col)
		} else {
			used[i] = true
			ti := 0
			if lit[i].Row > g.code.Distance-lit[i].Row {
				ti = g.code.Distance
			}
			correction ^= g.walkToRow(lit[i].Row, lit[i].Col, ti)
		}
	}
	return correction
}

func sgn(x int) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// crossQubit returns the data-qubit bit crossed by a diagonal step
// (di, dj) from plaquette (i, j).
func (g *GreedyDecoder) crossQubit(i, j, di, dj int) uint64 {
	d := g.code.Distance
	r := i + (di-1)/2
	c := j + (dj-1)/2
	if r < 0 || r >= d || c < 0 || c >= d {
		return 0 // step exits the lattice; nothing to flip
	}
	return 1 << uint(r*d+c)
}

// walk flips the data qubits crossed by a diagonal walk from plaquette
// (i, j) to (ti, tj), zigzagging in the exhausted dimension.
func (g *GreedyDecoder) walk(i, j, ti, tj int) uint64 {
	d := g.code.Distance
	var corr uint64
	zig := 1
	for guard := 0; (i != ti || j != tj) && guard < 4*d*d; guard++ {
		di, dj := sgn(ti-i), sgn(tj-j)
		if di == 0 {
			di = zig
			if i+di < 0 || i+di > d {
				di = -di
			}
			zig = -zig
		}
		if dj == 0 {
			dj = zig
			if j+dj < 0 || j+dj > d {
				dj = -dj
			}
			zig = -zig
		}
		corr ^= g.crossQubit(i, j, di, dj)
		i += di
		j += dj
	}
	return corr
}

// walkToRow walks a plaquette to the absorbing boundary row (0 or d),
// zigzagging the column within the lattice.
func (g *GreedyDecoder) walkToRow(i, j, ti int) uint64 {
	d := g.code.Distance
	var corr uint64
	zig := 1
	for guard := 0; i != ti && guard < 2*d; guard++ {
		di := sgn(ti - i)
		dj := zig
		if j+dj < 0 || j+dj > d {
			dj = -dj
		}
		zig = -zig
		corr ^= g.crossQubit(i, j, di, dj)
		i += di
		j += dj
	}
	return corr
}
