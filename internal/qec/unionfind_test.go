package qec

import (
	"testing"
	"testing/quick"

	"artery/internal/stats"
)

func TestUnionFindSingleErrors(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := NewCode(d)
		dec := NewUnionFindDecoder(c)
		for q := 0; q < c.NumData; q++ {
			err := uint64(1) << uint(q)
			corr := dec.DecodeX(syndromeMask(c, err))
			residual := err ^ corr
			if syndromeMask(c, residual) != 0 {
				t.Fatalf("d=%d qubit %d: residual syndrome nonzero", d, q)
			}
			if flipsLogicalZ(c, residual) {
				t.Fatalf("d=%d qubit %d: union-find caused logical flip", d, q)
			}
		}
	}
}

func TestUnionFindEmptySyndrome(t *testing.T) {
	c := NewCode(3)
	dec := NewUnionFindDecoder(c)
	if corr := dec.DecodeX(0); corr != 0 {
		t.Fatalf("empty syndrome produced correction %b", corr)
	}
}

func TestUnionFindResidualSyndromeFreeProperty(t *testing.T) {
	// Whatever the error pattern, the correction must cancel the syndrome
	// (validity — the defining property of a decoder).
	for _, d := range []int{3, 5} {
		c := NewCode(d)
		dec := NewUnionFindDecoder(c)
		f := func(pattern uint64) bool {
			err := pattern & ((1 << uint(c.NumData)) - 1)
			corr := dec.DecodeX(syndromeMask(c, err))
			return syndromeMask(c, err^corr) == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
	}
}

func TestUnionFindTwoSeparatedErrors(t *testing.T) {
	// Two errors in distant corners of a d=5 code form two independent
	// clusters; both must be corrected without a logical flip.
	c := NewCode(5)
	dec := NewUnionFindDecoder(c)
	err := uint64(1)<<0 | uint64(1)<<uint(c.NumData-1)
	corr := dec.DecodeX(syndromeMask(c, err))
	residual := err ^ corr
	if syndromeMask(c, residual) != 0 {
		t.Fatal("residual syndrome nonzero")
	}
	if flipsLogicalZ(c, residual) {
		t.Fatal("separated errors decoded to a logical flip")
	}
}

func TestUnionFindMemoryBelowGreedyOrClose(t *testing.T) {
	// At moderate noise on d=5, union-find must perform at least comparably
	// to the greedy decoder (it is the more principled construction).
	c := NewCode(5)
	p := MemoryParams{Code: c, Cycles: 6, Trials: 1200, PData: 0.01, PMeas: 0.005}
	p.Dec = NewUnionFindDecoder(c)
	ufLER := RunMemory(p, stats.NewRNG(1)).LogicalErrorRate()
	p.Dec = NewGreedyDecoder(c)
	grLER := RunMemory(p, stats.NewRNG(1)).LogicalErrorRate()
	if ufLER > grLER*1.5+0.02 {
		t.Fatalf("union-find LER %v much worse than greedy %v", ufLER, grLER)
	}
}

func TestUnionFindMatchesLUTLogicalOutcomeOnSingles(t *testing.T) {
	c := NewCode(3)
	lut := NewLUTDecoder(c)
	uf := NewUnionFindDecoder(c)
	for q := 0; q < 9; q++ {
		syn := syndromeMask(c, 1<<uint(q))
		rLut := (uint64(1) << uint(q)) ^ lut.DecodeX(syn)
		rUF := (uint64(1) << uint(q)) ^ uf.DecodeX(syn)
		if flipsLogicalZ(c, rLut) != flipsLogicalZ(c, rUF) {
			t.Fatalf("qubit %d: union-find and LUT disagree on logical outcome", q)
		}
	}
}

func TestUnionFindSuppresssesErrorsAtLowNoise(t *testing.T) {
	// d=5 with union-find at low physical noise must beat the unencoded
	// qubit (error-suppression sanity check).
	c := NewCode(5)
	p := MemoryParams{
		Code: c, Dec: NewUnionFindDecoder(c), Cycles: 5, Trials: 3000,
		PData: 0.004, PMeas: 0.002,
	}
	ler := RunMemory(p, stats.NewRNG(2)).LogicalErrorRate()
	// Unencoded: 1-(1-p)^cycles ≈ 2%.
	if ler > 0.02 {
		t.Fatalf("d=5 union-find LER %v not below unencoded rate", ler)
	}
}
