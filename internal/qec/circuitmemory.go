package qec

import (
	"artery/internal/stabilizer"
	"artery/internal/stats"
)

// CircuitMemoryParams configures the circuit-level logical-memory
// simulation: instead of the phenomenological Pauli-frame model of
// RunMemory, every syndrome-extraction round is executed gate by gate on
// the stabilizer (tableau) simulator — ancilla reset, the H/CNOT
// entangling sequence of each check, and the ancilla measurement — with
// depolarizing errors after gates, measurement assignment flips, and
// idle X errors on data qubits scaled by the feedback-cycle latency.
// Decoded corrections are applied to the data qubits as real feedback
// gates, the paper's real-time correction style (§6.2).
type CircuitMemoryParams struct {
	Code   *Code
	Dec    Decoder
	Cycles int
	Trials int
	// P1Q / P2Q are depolarizing probabilities after 1-qubit gates and per
	// qubit of a 2-qubit gate.
	P1Q float64
	P2Q float64
	// PMeas flips each syndrome measurement outcome.
	PMeas float64
	// PIdleData applies an X error to each data qubit once per cycle
	// (the latency-dependent idle term — PDataFromLatency supplies it).
	PIdleData float64
}

// RunCircuitMemory executes the circuit-level memory simulation and
// reports the logical error rate. Qubit layout on the tableau: data qubits
// 0..NumData-1, one ancilla per stabilizer after them.
func RunCircuitMemory(p CircuitMemoryParams, rng *stats.RNG) MemoryResult {
	if p.Code == nil || p.Dec == nil || p.Cycles < 1 || p.Trials < 1 {
		panic("qec: incomplete circuit-memory parameters")
	}
	code := p.Code
	nData := code.NumData
	zChecks := code.StabilizersOf(StabZ)
	res := MemoryResult{Cycles: p.Cycles, Trials: p.Trials}

	for trial := 0; trial < p.Trials; trial++ {
		tb := stabilizer.New(nData + code.NumStabilizers())

		// Projective initialization round (noiseless): fixes the X-check
		// frame; Z checks of |0...0⟩ are deterministically +1, and the
		// logical Z is deterministically +1 — the reference the final
		// readout is compared against.
		for si := range code.Stabilizers {
			measureCheck(tb, code, si, nData, rng, 0, 0)
		}

		prevSyn := uint32(0) // Z-check reference after initialization: all +1
		for cycle := 0; cycle < p.Cycles; cycle++ {
			// Idle (latency-dependent) errors on data qubits.
			for q := 0; q < nData; q++ {
				if rng.Bool(p.PIdleData) {
					tb.X(q)
				}
			}
			// Noisy extraction of every check; collect the Z syndrome.
			var syn uint32
			zBit := 0
			for si, s := range code.Stabilizers {
				m := measureCheck(tb, code, si, nData, rng, p.P1Q, p.P2Q)
				if rng.Bool(p.PMeas) {
					m ^= 1
				}
				if s.Kind == StabZ {
					if m == 1 {
						syn |= 1 << uint(zBit)
					}
					zBit++
				}
			}
			// Real-time decode of the syndrome difference and feedback
			// correction on the data qubits.
			diff := syn ^ prevSyn
			prevSyn = syn
			corr := p.Dec.DecodeX(diff)
			for q := 0; q < nData; q++ {
				if corr&(1<<uint(q)) != 0 {
					tb.X(q)
					prevSyn ^= zSyndromeOfFlip(code, zChecks, q)
				}
			}
		}

		// Final noiseless readout of all data qubits in Z.
		var final uint64
		for q := 0; q < nData; q++ {
			if tb.Measure(q, rng) == 1 {
				final |= 1 << uint(q)
			}
		}
		// One last decode of the final data-derived syndrome, then check
		// the logical Z parity.
		final ^= p.Dec.DecodeX(syndromeMask(code, final))
		if flipsLogicalZ(code, final) {
			res.LogicalFails++
		}
	}
	return res
}

// measureCheck runs one stabilizer's extraction circuit on the tableau:
// ancilla reset, H (X-type), CNOTs over the support, H, measure. Gate
// noise is injected as random Paulis with the given probabilities.
func measureCheck(tb *stabilizer.Tableau, code *Code, si, nData int, rng *stats.RNG, p1q, p2q float64) int {
	s := code.Stabilizers[si]
	anc := nData + si
	tb.Reset(anc, rng)
	depolarize := func(q int, p float64) {
		if p <= 0 || !rng.Bool(p) {
			return
		}
		switch rng.Intn(3) {
		case 0:
			tb.X(q)
		case 1:
			tb.Y(q)
		default:
			tb.Z(q)
		}
	}
	if s.Kind == StabX {
		tb.H(anc)
		depolarize(anc, p1q)
		for _, q := range s.Support {
			tb.CNOT(anc, q)
			depolarize(anc, p2q)
			depolarize(q, p2q)
		}
		tb.H(anc)
		depolarize(anc, p1q)
	} else {
		for _, q := range s.Support {
			tb.CNOT(q, anc)
			depolarize(anc, p2q)
			depolarize(q, p2q)
		}
	}
	return tb.Measure(anc, rng)
}

// zSyndromeOfFlip returns the Z-syndrome bits toggled by an X flip on data
// qubit q — used to keep the decoder's reference frame aligned after a
// feedback correction.
func zSyndromeOfFlip(code *Code, zChecks []int, q int) uint32 {
	var syn uint32
	for bit, si := range zChecks {
		for _, sq := range code.Stabilizers[si].Support {
			if sq == q {
				syn |= 1 << uint(bit)
				break
			}
		}
	}
	return syn
}
