package qec

// UnionFindDecoder implements a clustering + peeling decoder in the style
// of Delfosse–Nickerson union-find decoding, the algorithm class used by
// real-time QEC decoders (Lilliput, AFS — the systems ARTERY's related
// work positions against). It decodes X errors from Z-check syndromes on
// the matching graph whose vertices are Z plaquettes (plus a virtual
// boundary) and whose edges are data qubits:
//
//  1. every lit check seeds a cluster with odd parity;
//  2. odd clusters that do not touch the boundary grow by one edge layer,
//     merging on contact (weighted union-find);
//  3. each finished cluster is peeled: leaves of a spanning forest are
//     removed one by one, flipping the leaf edge's data qubit whenever the
//     leaf vertex carries a syndrome, and toggling its neighbor.
//
// The result is always a valid correction (residual syndrome empty); like
// the greedy decoder it is not minimum-weight, but it decodes all
// single-qubit errors exactly and runs near-linearly in the cluster size,
// which is why hardware decoders use it.
type UnionFindDecoder struct {
	code     *Code
	nNodes   int   // Z plaquettes + 1 boundary node
	boundary int   // boundary node index
	zOf      []int // stabilizer index per node (except boundary)
	// edges[q] = the one or two nodes data qubit q connects.
	edges [][2]int
	// incident[v] = data qubits incident to node v.
	incident [][]int
}

// NewUnionFindDecoder builds the matching graph for the code's Z checks.
func NewUnionFindDecoder(c *Code) *UnionFindDecoder {
	zIdx := c.StabilizersOf(StabZ)
	nodeOf := map[int]int{} // stabilizer index -> node id
	for i, si := range zIdx {
		nodeOf[si] = i
	}
	d := &UnionFindDecoder{
		code:     c,
		nNodes:   len(zIdx) + 1,
		boundary: len(zIdx),
		zOf:      zIdx,
		edges:    make([][2]int, c.NumData),
		incident: make([][]int, len(zIdx)+1),
	}
	for q := 0; q < c.NumData; q++ {
		var touching []int
		for si, s := range c.Stabilizers {
			if s.Kind != StabZ {
				continue
			}
			for _, sq := range s.Support {
				if sq == q {
					touching = append(touching, nodeOf[si])
					break
				}
			}
		}
		switch len(touching) {
		case 1:
			d.edges[q] = [2]int{touching[0], d.boundary}
		case 2:
			d.edges[q] = [2]int{touching[0], touching[1]}
		default:
			// A data qubit outside every Z check cannot exist in a valid
			// rotated layout; a qubit in >2 checks breaks the matching-graph
			// structure.
			panic("qec: data qubit incident to an invalid number of Z checks")
		}
		d.incident[d.edges[q][0]] = append(d.incident[d.edges[q][0]], q)
		d.incident[d.edges[q][1]] = append(d.incident[d.edges[q][1]], q)
	}
	return d
}

// Name returns "union-find".
func (d *UnionFindDecoder) Name() string { return "union-find" }

// uf is a weighted quick-union structure over graph nodes.
type uf struct {
	parent []int
	size   []int
	// odd tracks the syndrome parity of each cluster root.
	odd []bool
	// hasBoundary marks clusters containing the boundary node.
	hasBoundary []bool
}

func newUF(n, boundary int, lit []bool) *uf {
	u := &uf{
		parent:      make([]int, n),
		size:        make([]int, n),
		odd:         make([]bool, n),
		hasBoundary: make([]bool, n),
	}
	for i := range u.parent {
		u.parent[i] = i
		u.size[i] = 1
		u.odd[i] = lit[i]
	}
	u.hasBoundary[boundary] = true
	return u
}

func (u *uf) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	u.odd[ra] = u.odd[ra] != u.odd[rb]
	u.hasBoundary[ra] = u.hasBoundary[ra] || u.hasBoundary[rb]
}

// DecodeX returns a correction bitmask for the given Z syndrome.
func (d *UnionFindDecoder) DecodeX(syndrome uint32) uint64 {
	lit := make([]bool, d.nNodes)
	anyLit := false
	for i := range d.zOf {
		if syndrome&(1<<uint(i)) != 0 {
			lit[i] = true
			anyLit = true
		}
	}
	if !anyLit {
		return 0
	}

	u := newUF(d.nNodes, d.boundary, lit)
	inCluster := make([]bool, d.nNodes)
	for i, l := range lit {
		if l {
			inCluster[i] = true
		}
	}
	inCluster[d.boundary] = false // boundary joins only by growth
	edgeAdded := make([]bool, len(d.edges))
	var added []int // edges in growth order

	unfinished := func() bool {
		for v := 0; v < d.nNodes; v++ {
			r := u.find(v)
			if u.odd[r] && !u.hasBoundary[r] {
				return true
			}
		}
		return false
	}

	for rounds := 0; unfinished() && rounds < 4*d.nNodes; rounds++ {
		// Grow every odd, boundary-free cluster by its full edge boundary.
		var grow []int
		for q, e := range d.edges {
			if edgeAdded[q] {
				continue
			}
			for _, v := range []int{e[0], e[1]} {
				if !inCluster[v] && v != d.boundary {
					continue
				}
				if v == d.boundary && !inCluster[e[0]] && !inCluster[e[1]] {
					continue
				}
				r := u.find(v)
				if v != d.boundary && inCluster[v] && u.odd[r] && !u.hasBoundary[r] {
					grow = append(grow, q)
					break
				}
			}
		}
		if len(grow) == 0 {
			break
		}
		for _, q := range grow {
			if edgeAdded[q] {
				continue
			}
			edgeAdded[q] = true
			added = append(added, q)
			a, b := d.edges[q][0], d.edges[q][1]
			inCluster[a], inCluster[b] = true, true
			u.union(a, b)
		}
	}

	return d.peel(lit, edgeAdded, added)
}

// peel removes leaves of a spanning forest of the grown subgraph, flipping
// leaf edges whose leaf vertex is lit. Cycle edges are dropped first (they
// have no leaves and carry no syndrome information); the boundary node is
// never treated as a leaf, so chains can terminate there.
func (d *UnionFindDecoder) peel(lit []bool, edgeAdded []bool, added []int) uint64 {
	// Keep only spanning-forest edges. Cycles — including cycles through
	// the shared boundary node — carry no syndrome information: a single
	// boundary edge per tree suffices to absorb any leftover parity, so
	// additional boundary connections are dropped like any other cycle
	// edge.
	forest := make([]int, 0, len(added))
	parent := make([]int, d.nNodes)
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, q := range added {
		ra, rb := find(d.edges[q][0]), find(d.edges[q][1])
		if ra == rb {
			continue // cycle edge
		}
		parent[ra] = rb
		forest = append(forest, q)
	}
	added = forest

	// Degree of each node in the forest.
	deg := make([]int, d.nNodes)
	alive := make([]bool, len(d.edges))
	for _, q := range added {
		alive[q] = true
		deg[d.edges[q][0]]++
		deg[d.edges[q][1]]++
	}
	litCopy := append([]bool(nil), lit...)

	var corr uint64
	// Repeatedly peel degree-1 non-boundary vertices.
	for {
		peeled := false
		for _, q := range added {
			if !alive[q] {
				continue
			}
			a, b := d.edges[q][0], d.edges[q][1]
			var leaf, other int
			switch {
			case deg[a] == 1 && a != d.boundary:
				leaf, other = a, b
			case deg[b] == 1 && b != d.boundary:
				leaf, other = b, a
			default:
				continue
			}
			alive[q] = false
			deg[a]--
			deg[b]--
			if litCopy[leaf] {
				corr |= 1 << uint(q)
				litCopy[leaf] = false
				if other != d.boundary {
					litCopy[other] = !litCopy[other]
				}
			}
			peeled = true
		}
		if !peeled {
			break
		}
	}
	return corr
}
