package qec

import (
	"math"
	"math/bits"

	"artery/internal/stats"
)

// MemoryParams configures a logical Z-memory simulation: the code is
// prepared in logical |0⟩, runs Cycles rounds of noisy syndrome extraction
// with feedback-based correction (X gates applied to data qubits, the
// paper's real-time correction style), and finishes with one noiseless
// round. The reported quantity is the logical error rate over Trials.
//
// Noise is phenomenological: PData is the per-data-qubit X-flip probability
// per cycle (it folds idle decoherence over the cycle latency with gate
// error — the feedback latency enters the experiment through this knob),
// and PMeas the syndrome measurement flip probability.
type MemoryParams struct {
	Code   *Code
	Dec    Decoder
	Cycles int
	Trials int
	PData  float64
	PMeas  float64
}

// MemoryResult is the outcome of a memory simulation.
type MemoryResult struct {
	Cycles       int
	Trials       int
	LogicalFails int
}

// LogicalErrorRate returns the fraction of failed trials.
func (r MemoryResult) LogicalErrorRate() float64 {
	if r.Trials == 0 {
		return 0
	}
	return float64(r.LogicalFails) / float64(r.Trials)
}

// RunMemory executes the Pauli-frame Monte-Carlo memory simulation. For
// CSS codes under Pauli noise this sampling is exact (cross-checked against
// the tableau simulator in the package tests).
func RunMemory(p MemoryParams, rng *stats.RNG) MemoryResult {
	if p.Code == nil || p.Dec == nil || p.Cycles < 1 || p.Trials < 1 {
		panic("qec: incomplete memory parameters")
	}
	res := MemoryResult{Cycles: p.Cycles, Trials: p.Trials}
	nZ := len(p.Code.StabilizersOf(StabZ))
	for trial := 0; trial < p.Trials; trial++ {
		var xerr uint64
		for cycle := 0; cycle < p.Cycles; cycle++ {
			// Idle + gate noise on data qubits.
			for q := 0; q < p.Code.NumData; q++ {
				if rng.Bool(p.PData) {
					xerr ^= 1 << uint(q)
				}
			}
			// Noisy syndrome measurement.
			syn := syndromeMask(p.Code, xerr)
			for b := 0; b < nZ; b++ {
				if rng.Bool(p.PMeas) {
					syn ^= 1 << uint(b)
				}
			}
			// Real-time decode + feedback correction on the data qubits.
			xerr ^= p.Dec.DecodeX(syn)
		}
		// Final noiseless round.
		xerr ^= p.Dec.DecodeX(syndromeMask(p.Code, xerr))
		if flipsLogicalZ(p.Code, xerr) {
			res.LogicalFails++
		}
	}
	return res
}

// syndromeMask computes the Z-check syndrome of an X-error bitmask.
func syndromeMask(c *Code, xerr uint64) uint32 {
	var syn uint32
	bit := 0
	for _, s := range c.Stabilizers {
		if s.Kind != StabZ {
			continue
		}
		parity := 0
		for _, q := range s.Support {
			if xerr&(1<<uint(q)) != 0 {
				parity ^= 1
			}
		}
		if parity == 1 {
			syn |= 1 << uint(bit)
		}
		bit++
	}
	return syn
}

func flipsLogicalZ(c *Code, xerr uint64) bool {
	parity := 0
	for _, q := range c.LogicalZ {
		if xerr&(1<<uint(q)) != 0 {
			parity ^= 1
		}
	}
	return parity == 1
}

// WeightOf returns the Hamming weight of an error mask (test helper).
func WeightOf(mask uint64) int { return bits.OnesCount64(mask) }

// PDataFromLatency converts a QEC cycle latency into the per-cycle
// data-qubit flip probability: idle decoherence over the cycle at the
// effective relaxation rate, times an exposure factor (> 1 when corrections
// lag and data qubits dwell in excited states longer, as in conventional
// controllers; 1.0 with ARTERY's pre-correction), plus a constant
// gate-error floor from the syndrome-extraction CNOTs.
func PDataFromLatency(cycleNs, t1Ns, exposure, gateFloor float64) float64 {
	if cycleNs < 0 || t1Ns <= 0 || exposure <= 0 {
		panic("qec: invalid latency parameters")
	}
	idle := 1 - math.Exp(-cycleNs*exposure/t1Ns)
	return idle + gateFloor
}
