// Package qec implements the rotated surface code used in the paper's
// quantum-error-correction evaluation (§6.2): code layout, syndrome
// extraction circuits, an exact lookup-table decoder for d=3 (the paper
// replaces its real-time decoder with a lookup table as well), a greedy
// matching decoder for larger distances, a logical-memory simulation over
// the stabilizer substrate, and the latency-benefit estimation model of
// Figure 12 (d).
package qec

import "fmt"

// StabKind distinguishes X- and Z-type stabilizers.
type StabKind int

// Stabilizer kinds.
const (
	StabX StabKind = iota // detects Z errors
	StabZ                 // detects X errors
)

func (k StabKind) String() string {
	if k == StabX {
		return "X"
	}
	return "Z"
}

// Stabilizer is one weight-2 or weight-4 check of the rotated code.
type Stabilizer struct {
	Kind StabKind
	// Support lists the data-qubit indices the check acts on.
	Support []int
	// Row, Col locate the plaquette on the dual lattice (diagnostics).
	Row, Col int
}

// Code is a distance-d rotated surface code.
type Code struct {
	Distance int
	// Data qubits are indexed 0..d²-1, at grid position (r, c) = (q/d, q%d).
	NumData     int
	Stabilizers []Stabilizer
	// LogicalX is the support of the logical X operator (a column of X's);
	// LogicalZ a row of Z's. They intersect in exactly one qubit.
	LogicalX []int
	LogicalZ []int
}

// NewCode constructs the rotated surface code of odd distance d >= 3.
func NewCode(d int) *Code {
	if d < 3 || d%2 == 0 {
		panic(fmt.Sprintf("qec: distance must be odd and >= 3, got %d", d))
	}
	c := &Code{Distance: d, NumData: d * d}
	q := func(r, col int) int { return r*d + col }

	// Plaquettes live at dual-lattice coordinates (i, j), i, j in 0..d.
	// A plaquette's corners are the data qubits (i-1,j-1),(i-1,j),(i,j-1),(i,j)
	// that fall inside the grid. Checkerboard typing: X when i+j is even.
	// Interior plaquettes (4 corners) are always kept; boundary plaquettes
	// (2 corners) are kept when their type matches the boundary: X checks on
	// the top/bottom edges, Z checks on the left/right edges.
	for i := 0; i <= d; i++ {
		for j := 0; j <= d; j++ {
			var support []int
			for _, rc := range [4][2]int{{i - 1, j - 1}, {i - 1, j}, {i, j - 1}, {i, j}} {
				if rc[0] >= 0 && rc[0] < d && rc[1] >= 0 && rc[1] < d {
					support = append(support, q(rc[0], rc[1]))
				}
			}
			kind := StabZ
			if (i+j)%2 == 0 {
				kind = StabX
			}
			keep := false
			switch len(support) {
			case 4:
				keep = true
			case 2:
				onTopBottom := i == 0 || i == d
				onLeftRight := j == 0 || j == d
				if onTopBottom && kind == StabX {
					keep = true
				}
				if onLeftRight && kind == StabZ {
					keep = true
				}
			}
			if keep {
				c.Stabilizers = append(c.Stabilizers, Stabilizer{Kind: kind, Support: support, Row: i, Col: j})
			}
		}
	}

	for r := 0; r < d; r++ {
		c.LogicalX = append(c.LogicalX, q(r, 0)) // column 0
	}
	for col := 0; col < d; col++ {
		c.LogicalZ = append(c.LogicalZ, q(0, col)) // row 0
	}
	return c
}

// NumStabilizers returns the check count (d²−1 for a rotated code).
func (c *Code) NumStabilizers() int { return len(c.Stabilizers) }

// StabilizersOf returns the indices of stabilizers of the given kind.
func (c *Code) StabilizersOf(kind StabKind) []int {
	var out []int
	for i, s := range c.Stabilizers {
		if s.Kind == kind {
			out = append(out, i)
		}
	}
	return out
}

// SyndromeOfX returns, for an X-error pattern on data qubits (bitmask by
// index), the triggered Z-stabilizer syndrome bits (one per Z check, in
// StabilizersOf(StabZ) order). X errors anticommute with Z checks.
func (c *Code) SyndromeOfX(xerr map[int]bool) []int {
	return c.syndromeOf(xerr, StabZ)
}

// SyndromeOfZ returns the X-stabilizer syndrome of a Z-error pattern.
func (c *Code) SyndromeOfZ(zerr map[int]bool) []int {
	return c.syndromeOf(zerr, StabX)
}

func (c *Code) syndromeOf(err map[int]bool, kind StabKind) []int {
	var out []int
	for _, s := range c.Stabilizers {
		if s.Kind != kind {
			continue
		}
		parity := 0
		for _, q := range s.Support {
			if err[q] {
				parity ^= 1
			}
		}
		out = append(out, parity)
	}
	return out
}

// CommutesWithLogicals reports whether an X-error pattern flips the logical
// Z measurement (odd overlap with LogicalZ support).
func (c *Code) FlipsLogicalZ(xerr map[int]bool) bool {
	parity := 0
	for _, q := range c.LogicalZ {
		if xerr[q] {
			parity ^= 1
		}
	}
	return parity == 1
}
