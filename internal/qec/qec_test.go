package qec

import (
	"math/bits"
	"testing"
	"testing/quick"

	"artery/internal/stabilizer"
	"artery/internal/stats"
)

func TestCodeCounts(t *testing.T) {
	for _, d := range []int{3, 5, 7, 9} {
		c := NewCode(d)
		if c.NumData != d*d {
			t.Fatalf("d=%d: %d data qubits", d, c.NumData)
		}
		if got, want := c.NumStabilizers(), d*d-1; got != want {
			t.Fatalf("d=%d: %d stabilizers, want %d", d, got, want)
		}
		nX := len(c.StabilizersOf(StabX))
		nZ := len(c.StabilizersOf(StabZ))
		if nX != nZ || nX+nZ != d*d-1 {
			t.Fatalf("d=%d: %d X + %d Z stabilizers", d, nX, nZ)
		}
	}
}

func TestCodePanicsOnBadDistance(t *testing.T) {
	for _, d := range []int{1, 2, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("d=%d accepted", d)
				}
			}()
			NewCode(d)
		}()
	}
}

func TestStabilizerWeights(t *testing.T) {
	c := NewCode(5)
	for _, s := range c.Stabilizers {
		if w := len(s.Support); w != 2 && w != 4 {
			t.Fatalf("stabilizer weight %d", w)
		}
	}
}

func TestStabilizersCommute(t *testing.T) {
	// X-type and Z-type checks must overlap on an even number of qubits.
	for _, d := range []int{3, 5} {
		c := NewCode(d)
		for _, xi := range c.StabilizersOf(StabX) {
			for _, zi := range c.StabilizersOf(StabZ) {
				overlap := 0
				for _, a := range c.Stabilizers[xi].Support {
					for _, b := range c.Stabilizers[zi].Support {
						if a == b {
							overlap++
						}
					}
				}
				if overlap%2 != 0 {
					t.Fatalf("d=%d: stabilizers %d,%d anticommute", d, xi, zi)
				}
			}
		}
	}
}

func TestLogicalOperators(t *testing.T) {
	for _, d := range []int{3, 5} {
		c := NewCode(d)
		if len(c.LogicalX) != d || len(c.LogicalZ) != d {
			t.Fatalf("logical operator weights wrong")
		}
		// Logical X (column of X's) must commute with every Z check.
		lx := map[int]bool{}
		for _, q := range c.LogicalX {
			lx[q] = true
		}
		for _, b := range c.SyndromeOfX(lx) {
			if b != 0 {
				t.Fatalf("d=%d: logical X triggers a Z check", d)
			}
		}
		// Logical Z (row of Z's) must commute with every X check.
		lz := map[int]bool{}
		for _, q := range c.LogicalZ {
			lz[q] = true
		}
		for _, b := range c.SyndromeOfZ(lz) {
			if b != 0 {
				t.Fatalf("d=%d: logical Z triggers an X check", d)
			}
		}
		// They must anticommute with each other (odd overlap).
		overlap := 0
		for _, a := range c.LogicalX {
			for _, b := range c.LogicalZ {
				if a == b {
					overlap++
				}
			}
		}
		if overlap%2 != 1 {
			t.Fatalf("d=%d: logical X and Z overlap on %d qubits", d, overlap)
		}
	}
}

func TestSingleErrorsDetectableAndCorrectableD3(t *testing.T) {
	// Distance 3 corrects any single X error: every single-error syndrome is
	// non-zero, and two single errors sharing a syndrome must be
	// stabilizer-equivalent (their product flips no logical operator) —
	// boundary degeneracy is allowed in the rotated layout.
	c := NewCode(3)
	seen := map[uint32]int{}
	for q := 0; q < 9; q++ {
		syn := syndromeMask(c, 1<<uint(q))
		if syn == 0 {
			t.Fatalf("single X on %d is syndrome-free", q)
		}
		if prev, dup := seen[syn]; dup {
			product := uint64(1<<uint(q)) | uint64(1<<uint(prev))
			if flipsLogicalZ(c, product) {
				t.Fatalf("qubits %d and %d share syndrome but differ by a logical", prev, q)
			}
		} else {
			seen[syn] = q
		}
	}
}

func TestLUTDecoderCorrectsAllSingleErrors(t *testing.T) {
	c := NewCode(3)
	dec := NewLUTDecoder(c)
	for q := 0; q < 9; q++ {
		err := uint64(1) << uint(q)
		corr := dec.DecodeX(syndromeMask(c, err))
		residual := err ^ corr
		if syndromeMask(c, residual) != 0 {
			t.Fatalf("qubit %d: residual has syndrome", q)
		}
		if flipsLogicalZ(c, residual) {
			t.Fatalf("qubit %d: correction causes logical error", q)
		}
	}
}

func TestLUTDecoderMinimumWeight(t *testing.T) {
	// Every stored correction must be a minimum-weight representative:
	// no lighter pattern yields the same syndrome.
	c := NewCode(3)
	dec := NewLUTDecoder(c)
	for syn := uint32(0); syn < 16; syn++ {
		corr := dec.DecodeX(syn)
		w := bits.OnesCount64(corr)
		for p := uint64(0); p < 512; p++ {
			if bits.OnesCount64(p) < w && syndromeMask(c, p) == syn {
				t.Fatalf("syndrome %b: stored weight %d but weight %d exists",
					syn, w, bits.OnesCount64(p))
			}
		}
	}
}

func TestLUTDecoderResidualAlwaysSyndromeFreeProperty(t *testing.T) {
	c := NewCode(3)
	dec := NewLUTDecoder(c)
	f := func(pattern uint16) bool {
		err := uint64(pattern) & 0x1FF // 9 data qubits
		corr := dec.DecodeX(syndromeMask(c, err))
		return syndromeMask(c, err^corr) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDecoderSingleErrors(t *testing.T) {
	for _, d := range []int{3, 5, 7} {
		c := NewCode(d)
		dec := NewGreedyDecoder(c)
		for q := 0; q < c.NumData; q++ {
			err := uint64(1) << uint(q)
			corr := dec.DecodeX(syndromeMask(c, err))
			residual := err ^ corr
			if syndromeMask(c, residual) != 0 {
				t.Fatalf("d=%d qubit %d: residual syndrome nonzero", d, q)
			}
			if flipsLogicalZ(c, residual) {
				t.Fatalf("d=%d qubit %d: greedy decode caused logical flip", d, q)
			}
		}
	}
}

func TestGreedyMatchesLUTOnD3Singles(t *testing.T) {
	c := NewCode(3)
	lut := NewLUTDecoder(c)
	greedy := NewGreedyDecoder(c)
	for q := 0; q < 9; q++ {
		syn := syndromeMask(c, 1<<uint(q))
		rLut := (uint64(1) << uint(q)) ^ lut.DecodeX(syn)
		rGreedy := (uint64(1) << uint(q)) ^ greedy.DecodeX(syn)
		if flipsLogicalZ(c, rLut) != flipsLogicalZ(c, rGreedy) {
			t.Fatalf("qubit %d: decoders disagree on logical outcome", q)
		}
	}
}

func TestMemoryNoNoiseNoErrors(t *testing.T) {
	c := NewCode(3)
	res := RunMemory(MemoryParams{
		Code: c, Dec: NewLUTDecoder(c), Cycles: 10, Trials: 50, PData: 0, PMeas: 0,
	}, stats.NewRNG(1))
	if res.LogicalFails != 0 {
		t.Fatalf("noiseless memory failed %d times", res.LogicalFails)
	}
}

func TestMemoryErrorGrowsWithCycles(t *testing.T) {
	c := NewCode(3)
	dec := NewLUTDecoder(c)
	rng := stats.NewRNG(2)
	p := MemoryParams{Code: c, Dec: dec, Trials: 1500, PData: 0.02, PMeas: 0.01}
	p.Cycles = 2
	early := RunMemory(p, rng).LogicalErrorRate()
	p.Cycles = 20
	late := RunMemory(p, rng).LogicalErrorRate()
	if late <= early {
		t.Fatalf("LER did not grow with cycles: %v -> %v", early, late)
	}
}

func TestMemoryErrorGrowsWithNoise(t *testing.T) {
	c := NewCode(3)
	dec := NewLUTDecoder(c)
	rng := stats.NewRNG(3)
	p := MemoryParams{Code: c, Dec: dec, Cycles: 10, Trials: 1500, PMeas: 0.005}
	p.PData = 0.005
	low := RunMemory(p, rng).LogicalErrorRate()
	p.PData = 0.05
	high := RunMemory(p, rng).LogicalErrorRate()
	if high <= low {
		t.Fatalf("LER not increasing in physical error: %v -> %v", low, high)
	}
}

func TestMemoryCorrectionHelps(t *testing.T) {
	// The decoder must beat a no-op decoder at moderate noise.
	c := NewCode(3)
	rng := stats.NewRNG(4)
	p := MemoryParams{Code: c, Dec: NewLUTDecoder(c), Cycles: 8, Trials: 2000, PData: 0.02, PMeas: 0.0}
	with := RunMemory(p, rng).LogicalErrorRate()
	p.Dec = nopDecoder{}
	without := RunMemory(p, rng).LogicalErrorRate()
	if with >= without {
		t.Fatalf("decoding (%v) did not beat no decoding (%v)", with, without)
	}
}

type nopDecoder struct{}

func (nopDecoder) DecodeX(uint32) uint64 { return 0 }
func (nopDecoder) Name() string          { return "nop" }

func TestPDataFromLatency(t *testing.T) {
	// Longer cycles and higher exposure increase the flip probability.
	base := PDataFromLatency(2310, 125_000, 1.0, 0.003)
	slow := PDataFromLatency(2450, 125_000, 1.9, 0.003)
	if slow <= base {
		t.Fatalf("exposure scaling broken: %v <= %v", slow, base)
	}
	if base < 0.003 || base > 0.05 {
		t.Fatalf("base PData %v out of plausible range", base)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid latency params accepted")
		}
	}()
	PDataFromLatency(-1, 1, 1, 0)
}

func TestBenefitModelShape(t *testing.T) {
	m := DefaultBenefitModel()
	// Positive benefit at small d, decreasing with d.
	prev := m.SavedPerCycleNs(3)
	if prev <= 0 {
		t.Fatalf("no benefit at d=3: %v", prev)
	}
	for d := 5; d <= 15; d += 2 {
		cur := m.SavedPerCycleNs(d)
		if cur >= prev {
			t.Fatalf("benefit not decreasing at d=%d: %v >= %v", d, cur, prev)
		}
		prev = cur
	}
}

func TestBenefitCrossoverAtPaperDistance(t *testing.T) {
	m := DefaultBenefitModel()
	if got := m.LastBeneficialDistance(); got != 13 {
		t.Fatalf("last beneficial distance %d, want 13 (paper's upper bound)", got)
	}
	if m.SavedPerCycleNs(13) <= 0 {
		t.Fatal("d=13 should still save time")
	}
	if m.SavedPerCycleNs(15) > 0 {
		t.Fatal("d=15 should not save time")
	}
}

func TestBenefitPOkBounds(t *testing.T) {
	m := DefaultBenefitModel()
	f := func(dRaw uint8) bool {
		d := 3 + 2*int(dRaw%20)
		p := m.POk(d)
		return p > 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSurfaceCodeOnTableau encodes the d=3 logical |0⟩ on the stabilizer
// simulator by measuring all stabilizers, then verifies (a) repeated
// stabilizer measurement is deterministic, and (b) an injected single X
// error triggers exactly the Z checks the abstract code predicts.
func TestSurfaceCodeOnTableau(t *testing.T) {
	c := NewCode(3)
	rng := stats.NewRNG(5)
	// Qubits 0..8 data, 9..16 ancillas (one per stabilizer).
	tb := stabilizer.New(9 + c.NumStabilizers())

	measureStab := func(si int) int {
		s := c.Stabilizers[si]
		anc := 9 + si
		tb.Reset(anc, rng)
		if s.Kind == StabX {
			tb.H(anc)
			for _, q := range s.Support {
				tb.CNOT(anc, q)
			}
			tb.H(anc)
		} else {
			for _, q := range s.Support {
				tb.CNOT(q, anc)
			}
		}
		return tb.Measure(anc, rng)
	}

	// Project into the code space and record the frame.
	frame := make([]int, c.NumStabilizers())
	for si := range c.Stabilizers {
		frame[si] = measureStab(si)
	}
	// A second round must reproduce the frame exactly (stabilizers commute
	// and the state is now in a joint eigenstate).
	for si := range c.Stabilizers {
		if m := measureStab(si); m != frame[si] {
			t.Fatalf("stabilizer %d changed outcome: %d -> %d", si, frame[si], m)
		}
	}
	// Inject X on data qubit 4 (center) and diff the syndromes.
	tb.X(4)
	zIdx := c.StabilizersOf(StabZ)
	wantSyn := c.SyndromeOfX(map[int]bool{4: true})
	for k, si := range zIdx {
		m := measureStab(si)
		flipped := 0
		if m != frame[si] {
			flipped = 1
		}
		if flipped != wantSyn[k] {
			t.Fatalf("Z check %d: tableau flip=%d, abstract=%d", si, flipped, wantSyn[k])
		}
	}
}

func TestWeightOf(t *testing.T) {
	if WeightOf(0b1011) != 3 {
		t.Fatal("WeightOf broken")
	}
}
