package qec

import (
	"testing"

	"artery/internal/stats"
)

func TestCircuitMemoryNoiselessNeverFails(t *testing.T) {
	c := NewCode(3)
	res := RunCircuitMemory(CircuitMemoryParams{
		Code: c, Dec: NewLUTDecoder(c), Cycles: 5, Trials: 40,
	}, stats.NewRNG(1))
	if res.LogicalFails != 0 {
		t.Fatalf("noiseless circuit memory failed %d/%d", res.LogicalFails, res.Trials)
	}
}

func TestCircuitMemoryErrorGrowsWithCycles(t *testing.T) {
	c := NewCode(3)
	p := CircuitMemoryParams{
		Code: c, Dec: NewLUTDecoder(c), Trials: 400,
		P1Q: 0.001, P2Q: 0.002, PMeas: 0.01, PIdleData: 0.015,
	}
	rng := stats.NewRNG(2)
	p.Cycles = 2
	early := RunCircuitMemory(p, rng).LogicalErrorRate()
	p.Cycles = 12
	late := RunCircuitMemory(p, rng).LogicalErrorRate()
	if late <= early {
		t.Fatalf("circuit-level LER not growing with cycles: %v -> %v", early, late)
	}
}

func TestCircuitMemoryErrorGrowsWithGateNoise(t *testing.T) {
	c := NewCode(3)
	rng := stats.NewRNG(3)
	p := CircuitMemoryParams{Code: c, Dec: NewLUTDecoder(c), Cycles: 6, Trials: 500, PMeas: 0.005}
	p.P2Q = 0.001
	low := RunCircuitMemory(p, rng).LogicalErrorRate()
	p.P2Q = 0.02
	high := RunCircuitMemory(p, rng).LogicalErrorRate()
	if high <= low {
		t.Fatalf("circuit-level LER not increasing in gate error: %v -> %v", low, high)
	}
}

func TestCircuitMemoryTracksPhenomenologicalModel(t *testing.T) {
	// With gate noise off, the circuit-level simulation must agree with the
	// phenomenological Pauli-frame model at matched idle/measurement rates
	// (this cross-validates the tableau path end to end).
	c := NewCode(3)
	rng := stats.NewRNG(4)
	const cycles, trials = 8, 1200
	const pIdle, pMeas = 0.02, 0.01
	circ := RunCircuitMemory(CircuitMemoryParams{
		Code: c, Dec: NewLUTDecoder(c), Cycles: cycles, Trials: trials,
		PIdleData: pIdle, PMeas: pMeas,
	}, rng).LogicalErrorRate()
	phen := RunMemory(MemoryParams{
		Code: c, Dec: NewLUTDecoder(c), Cycles: cycles, Trials: trials,
		PData: pIdle, PMeas: pMeas,
	}, rng).LogicalErrorRate()
	// Same order of magnitude and within a loose band (different residual
	// handling of measurement errors makes them differ in detail).
	if circ > 2.5*phen+0.03 || phen > 2.5*circ+0.03 {
		t.Fatalf("circuit-level %v vs phenomenological %v diverge", circ, phen)
	}
}

func TestCircuitMemoryD5WithUnionFind(t *testing.T) {
	// The circuit-level path must scale past the LUT regime: d=5 with the
	// union-find decoder on a 49-qubit tableau.
	c := NewCode(5)
	res := RunCircuitMemory(CircuitMemoryParams{
		Code: c, Dec: NewUnionFindDecoder(c), Cycles: 4, Trials: 120,
		P1Q: 0.0005, P2Q: 0.001, PMeas: 0.005, PIdleData: 0.005,
	}, stats.NewRNG(5))
	if ler := res.LogicalErrorRate(); ler > 0.2 {
		t.Fatalf("d=5 circuit-level LER %v implausibly high at low noise", ler)
	}
}

func TestCircuitMemoryPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("incomplete params accepted")
		}
	}()
	RunCircuitMemory(CircuitMemoryParams{}, stats.NewRNG(1))
}
