package quantum

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"artery/internal/stats"
)

const eps = 1e-10

func approxEq(a, b float64) bool { return math.Abs(a-b) < eps }

func TestNewStateIsZero(t *testing.T) {
	s := NewState(3)
	if s.NumQubits() != 3 {
		t.Fatalf("NumQubits = %d", s.NumQubits())
	}
	if s.Amplitude(0) != 1 {
		t.Fatalf("amp[0] = %v", s.Amplitude(0))
	}
	for i := 1; i < 8; i++ {
		if s.Amplitude(i) != 0 {
			t.Fatalf("amp[%d] = %v", i, s.Amplitude(i))
		}
	}
}

func TestNewStatePanicsOutOfRange(t *testing.T) {
	for _, n := range []int{0, -1, 25} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewState(%d) did not panic", n)
				}
			}()
			NewState(n)
		}()
	}
}

func TestXFlipsBit(t *testing.T) {
	s := NewState(2)
	s.X(1)
	if !approxEq(real(s.Amplitude(2)), 1) {
		t.Fatalf("X(1) did not produce |10⟩: %v", s.Probabilities())
	}
}

func TestHSuperposition(t *testing.T) {
	s := NewState(1)
	s.H(0)
	if !approxEq(s.Prob1(0), 0.5) {
		t.Fatalf("Prob1 after H = %v", s.Prob1(0))
	}
	s.H(0) // H is self-inverse
	if !approxEq(s.Prob1(0), 0) {
		t.Fatalf("H·H != I: Prob1 = %v", s.Prob1(0))
	}
}

func TestPauliAlgebra(t *testing.T) {
	// XYZ = iI up to global phase; verify X² = Y² = Z² = I on a random state.
	rng := stats.NewRNG(1)
	s := randomState(2, rng)
	for _, gate := range []func(int){s.X, s.Y, s.Z} {
		before := s.Clone()
		gate(0)
		gate(0)
		if f := s.Fidelity(before); !approxEq(f, 1) {
			t.Fatalf("Pauli² != I, fidelity %v", f)
		}
	}
}

func TestBellState(t *testing.T) {
	s := NewState(2)
	s.H(0)
	s.CNOT(0, 1)
	p := s.Probabilities()
	if !approxEq(p[0], 0.5) || !approxEq(p[3], 0.5) || !approxEq(p[1], 0) || !approxEq(p[2], 0) {
		t.Fatalf("Bell state probabilities wrong: %v", p)
	}
}

func TestCZPhase(t *testing.T) {
	s := NewState(2)
	s.X(0)
	s.X(1)
	s.CZ(0, 1)
	if !approxEq(real(s.Amplitude(3)), -1) {
		t.Fatalf("CZ|11⟩ != -|11⟩: %v", s.Amplitude(3))
	}
	// CZ on |01⟩ is identity.
	s2 := NewState(2)
	s2.X(0)
	s2.CZ(0, 1)
	if !approxEq(real(s2.Amplitude(1)), 1) {
		t.Fatalf("CZ|01⟩ changed state")
	}
}

func TestCNOTViaCZ(t *testing.T) {
	// CNOT(c,t) == H(t)·CZ(c,t)·H(t), the hardware compilation.
	rng := stats.NewRNG(2)
	a := randomState(3, rng)
	b := a.Clone()
	a.CNOT(1, 2)
	b.H(2)
	b.CZ(1, 2)
	b.H(2)
	if f := a.Fidelity(b); !approxEq(f, 1) {
		t.Fatalf("CNOT != H·CZ·H, fidelity %v", f)
	}
}

func TestSWAP(t *testing.T) {
	s := NewState(2)
	s.X(0)
	s.SWAP(0, 1)
	if !approxEq(s.Prob1(1), 1) || !approxEq(s.Prob1(0), 0) {
		t.Fatalf("SWAP failed: %v", s.Probabilities())
	}
}

func TestRotationPeriodicity(t *testing.T) {
	// RX(2π) = -I (global phase), so fidelity with original is 1.
	rng := stats.NewRNG(3)
	s := randomState(1, rng)
	ref := s.Clone()
	s.RX(0, 2*math.Pi)
	if f := s.Fidelity(ref); !approxEq(f, 1) {
		t.Fatalf("RX(2π) fidelity %v", f)
	}
	s.RY(0, 2*math.Pi)
	if f := s.Fidelity(ref); !approxEq(f, 1) {
		t.Fatalf("RY(2π) fidelity %v", f)
	}
}

func TestRXPiIsX(t *testing.T) {
	s := NewState(1)
	s.RX(0, math.Pi)
	if !approxEq(s.Prob1(0), 1) {
		t.Fatalf("RX(π)|0⟩ != |1⟩: %v", s.Prob1(0))
	}
}

func TestRZPhases(t *testing.T) {
	s := NewState(1)
	s.H(0)
	s.RZ(0, math.Pi) // equivalent to Z up to global phase
	s.H(0)
	if !approxEq(s.Prob1(0), 1) {
		t.Fatalf("H·RZ(π)·H != X: %v", s.Prob1(0))
	}
}

func TestSTGates(t *testing.T) {
	// S = T², and S·Sdg = I.
	rng := stats.NewRNG(4)
	a := randomState(1, rng)
	b := a.Clone()
	a.S(0)
	b.T(0)
	b.T(0)
	if f := a.Fidelity(b); !approxEq(f, 1) {
		t.Fatalf("T² != S: %v", f)
	}
	a.Sdg(0)
	a.Tdg(0)
	a.Tdg(0)
	c := b.Clone()
	b.Sdg(0)
	b.S(0)
	if f := b.Fidelity(c); !approxEq(f, 1) {
		t.Fatalf("S·Sdg != I: %v", f)
	}
}

func TestNormPreservationProperty(t *testing.T) {
	f := func(seed uint64, nGates uint8) bool {
		rng := stats.NewRNG(seed)
		s := randomState(3, rng)
		applyRandomGates(s, int(nGates%32), rng)
		return math.Abs(s.Norm()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureStatistics(t *testing.T) {
	rng := stats.NewRNG(5)
	ones := 0
	const shots = 20000
	for i := 0; i < shots; i++ {
		s := NewState(1)
		s.RY(0, 2*math.Asin(math.Sqrt(0.3))) // Prob1 = 0.3
		ones += s.Measure(0, rng)
	}
	frac := float64(ones) / shots
	if math.Abs(frac-0.3) > 0.015 {
		t.Fatalf("measured frequency %v, want ~0.3", frac)
	}
}

func TestMeasureCollapses(t *testing.T) {
	rng := stats.NewRNG(6)
	s := NewState(2)
	s.H(0)
	s.CNOT(0, 1)
	m := s.Measure(0, rng)
	// After measuring one half of a Bell pair the other must agree.
	if p := s.Prob1(1); !approxEq(p, float64(m)) {
		t.Fatalf("entangled partner disagrees: m=%d p=%v", m, p)
	}
	// Second measurement must repeat.
	if m2 := s.Measure(0, rng); m2 != m {
		t.Fatalf("repeated measurement differs: %d then %d", m, m2)
	}
}

func TestReset(t *testing.T) {
	rng := stats.NewRNG(7)
	for i := 0; i < 50; i++ {
		s := NewState(1)
		s.H(0)
		s.Reset(0, rng)
		if !approxEq(s.Prob1(0), 0) {
			t.Fatalf("Reset left Prob1 = %v", s.Prob1(0))
		}
	}
}

func TestFidelityBounds(t *testing.T) {
	rng := stats.NewRNG(8)
	a := randomState(3, rng)
	if f := a.Fidelity(a); !approxEq(f, 1) {
		t.Fatalf("self fidelity %v", f)
	}
	b := a.Clone()
	b.X(0)
	b.X(1)
	b.X(2)
	f := a.Fidelity(b)
	if f < 0 || f > 1 {
		t.Fatalf("fidelity out of bounds: %v", f)
	}
}

func TestTeleportation(t *testing.T) {
	// Standard teleportation circuit with feed-forward corrections must move
	// an arbitrary state from qubit 0 to qubit 2.
	rng := stats.NewRNG(9)
	for trial := 0; trial < 20; trial++ {
		theta := rng.Float64() * math.Pi
		phi := rng.Float64() * 2 * math.Pi

		want := NewState(1)
		want.RY(0, theta)
		want.RZ(0, phi)

		s := NewState(3)
		s.RY(0, theta)
		s.RZ(0, phi)
		// Bell pair on 1,2.
		s.H(1)
		s.CNOT(1, 2)
		// Bell measurement of 0,1.
		s.CNOT(0, 1)
		s.H(0)
		m0 := s.Measure(0, rng)
		m1 := s.Measure(1, rng)
		if m1 == 1 {
			s.X(2)
		}
		if m0 == 1 {
			s.Z(2)
		}
		// Compare marginal on qubit 2 against the prepared state by
		// undoing the preparation: the result must be |0⟩.
		s.RZ(2, -phi)
		s.RY(2, -theta)
		if p := s.Prob1(2); !approxEq(p, 0) {
			t.Fatalf("teleportation failed: residual Prob1 = %v", p)
		}
	}
}

func TestAmplitudeDampingStatistics(t *testing.T) {
	// Starting in |1⟩, after idle time t the shot-averaged survival must be
	// exp(-t/T1).
	nm := &NoiseModel{T1: 1000, T2: math.Inf(1)}
	rng := stats.NewRNG(10)
	const shots = 20000
	survive := 0
	for i := 0; i < shots; i++ {
		s := NewState(1)
		s.X(0)
		nm.ApplyIdle(s, 0, 500, rng)
		if s.Prob1(0) > 0.5 {
			survive++
		}
	}
	want := math.Exp(-0.5)
	got := float64(survive) / shots
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("survival %v, want ~%v", got, want)
	}
}

func TestDephasingKillsCoherence(t *testing.T) {
	// |+⟩ idled for t >> T2 should give Prob1 ≈ 0.5 but X-basis coherence ≈ 0:
	// measuring in X basis yields ~50/50 instead of deterministic +.
	nm := &NoiseModel{T1: math.Inf(1), T2: 100}
	rng := stats.NewRNG(11)
	const shots = 4000
	plus := 0
	for i := 0; i < shots; i++ {
		s := NewState(1)
		s.H(0)
		nm.ApplyIdle(s, 0, 1000, rng)
		s.H(0)
		if s.Measure(0, rng) == 0 {
			plus++
		}
	}
	frac := float64(plus) / shots
	if math.Abs(frac-0.5) > 0.03 {
		t.Fatalf("dephased |+⟩ X-basis frequency %v, want ~0.5", frac)
	}
}

func TestNoIdleNoiseWhenIdealOrZeroTime(t *testing.T) {
	nm := Ideal()
	rng := stats.NewRNG(12)
	s := NewState(1)
	s.H(0)
	ref := s.Clone()
	nm.ApplyIdle(s, 0, 1e9, rng)
	if f := s.Fidelity(ref); !approxEq(f, 1) {
		t.Fatalf("ideal model changed state: %v", f)
	}
	nm2 := DeviceNoise()
	nm2.ApplyIdle(s, 0, 0, rng)
	if f := s.Fidelity(ref); !approxEq(f, 1) {
		t.Fatalf("zero-time idle changed state: %v", f)
	}
}

func TestDepolarizingRate(t *testing.T) {
	nm := &NoiseModel{T1: math.Inf(1), T2: math.Inf(1)}
	rng := stats.NewRNG(13)
	const shots = 30000
	flipped := 0
	for i := 0; i < shots; i++ {
		s := NewState(1)
		nm.ApplyDepolarizing(s, 0, 0.3, rng)
		// X and Y flip |0⟩; Z does not. So flip rate = 0.3 * 2/3 = 0.2.
		if s.Prob1(0) > 0.5 {
			flipped++
		}
	}
	frac := float64(flipped) / shots
	if math.Abs(frac-0.2) > 0.01 {
		t.Fatalf("depolarizing flip rate %v, want ~0.2", frac)
	}
}

func TestNoisyMeasureAssignmentError(t *testing.T) {
	nm := &NoiseModel{T1: math.Inf(1), T2: math.Inf(1), ReadoutError: 0.25}
	rng := stats.NewRNG(14)
	const shots = 20000
	ones := 0
	for i := 0; i < shots; i++ {
		s := NewState(1)
		ones += nm.NoisyMeasure(s, 0, rng)
	}
	frac := float64(ones) / shots
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("assignment error rate %v, want ~0.25", frac)
	}
}

func TestApply2QMatchesComposition(t *testing.T) {
	// A 4x4 CZ matrix through Apply2Q must equal the native CZ.
	var cz [4][4]complex128
	cz[0][0], cz[1][1], cz[2][2] = 1, 1, 1
	cz[3][3] = -1
	rng := stats.NewRNG(15)
	a := randomState(3, rng)
	b := a.Clone()
	a.CZ(0, 2)
	b.Apply2Q(0, 2, &cz)
	if f := a.Fidelity(b); !approxEq(f, 1) {
		t.Fatalf("Apply2Q CZ mismatch: %v", f)
	}
}

func TestGateQubitRangePanics(t *testing.T) {
	s := NewState(2)
	cases := []func(){
		func() { s.X(2) },
		func() { s.CZ(0, 0) },
		func() { s.CNOT(1, 1) },
		func() { s.Apply2Q(0, 0, &[4][4]complex128{}) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			c()
		}()
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewState(1)
	c := s.Clone()
	s.X(0)
	if !approxEq(c.Prob1(0), 0) {
		t.Fatal("Clone shares storage with original")
	}
}

// randomState prepares a Haar-ish random product-entangled state by applying
// random rotations and entanglers.
func randomState(n int, rng *stats.RNG) *State {
	s := NewState(n)
	for q := 0; q < n; q++ {
		s.RY(q, rng.Float64()*math.Pi)
		s.RZ(q, rng.Float64()*2*math.Pi)
	}
	for q := 0; q+1 < n; q++ {
		s.CZ(q, q+1)
		s.RY(q, rng.Float64()*math.Pi)
	}
	return s
}

func applyRandomGates(s *State, k int, rng *stats.RNG) {
	n := s.NumQubits()
	for i := 0; i < k; i++ {
		q := rng.Intn(n)
		switch rng.Intn(5) {
		case 0:
			s.RX(q, rng.Float64()*2*math.Pi)
		case 1:
			s.RY(q, rng.Float64()*2*math.Pi)
		case 2:
			s.RZ(q, rng.Float64()*2*math.Pi)
		case 3:
			s.H(q)
		default:
			p := rng.Intn(n)
			if p != q {
				s.CZ(q, p)
			}
		}
	}
}

func TestGlobalPhaseInvarianceOfFidelity(t *testing.T) {
	rng := stats.NewRNG(16)
	a := randomState(2, rng)
	b := a.Clone()
	// Multiply b by a global phase.
	ph := cmplx.Exp(complex(0, 1.234))
	for i := range b.amp {
		b.amp[i] *= ph
	}
	if f := a.Fidelity(b); !approxEq(f, 1) {
		t.Fatalf("fidelity not phase invariant: %v", f)
	}
}

func TestQuasiStaticDetunings(t *testing.T) {
	rng := stats.NewRNG(30)
	nm := DeviceNoise()
	if nm.SampleDetunings(4, rng) != nil {
		t.Fatal("default model should have no quasi-static component")
	}
	nm.QuasiStaticSigma = 1e-4
	d := nm.SampleDetunings(4, rng)
	if len(d) != 4 {
		t.Fatalf("detunings length %d", len(d))
	}
	allZero := true
	for _, v := range d {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("sampled detunings all zero")
	}
}

func TestEchoRefocusesQuasiStaticDephasing(t *testing.T) {
	// A |+⟩ state idling with a frozen detuning loses phase without an
	// echo and keeps it with one.
	nm := Ideal()
	rng := stats.NewRNG(31)
	const detuning = 0.002 // rad/ns
	const dt = 1000.0

	plain := NewState(1)
	plain.H(0)
	nm.ApplyIdleDetuned(plain, 0, dt, detuning, false, rng)
	plain.H(0)
	// Accrued phase 2 rad: P(0) = cos²(1) ≈ 0.29.
	if p := plain.Prob1(0); p < 0.5 {
		t.Fatalf("no-echo idle kept coherence: Prob1 = %v", p)
	}

	echoed := NewState(1)
	echoed.H(0)
	nm.ApplyIdleDetuned(echoed, 0, dt, detuning, true, rng)
	echoed.H(0)
	if p := echoed.Prob1(0); p > 1e-9 {
		t.Fatalf("echo failed to refocus: Prob1 = %v", p)
	}
}

func TestEchoT1Composition(t *testing.T) {
	// The echo halves the |1⟩ dwell time: starting in |1⟩, the qubit ends
	// in |1⟩ iff it survived the first half (it sits in |0⟩ for the second)
	// or decayed in both halves. With a = exp(-dt/2T1):
	// P(end |1⟩) = a + (1-a)².
	nm := &NoiseModel{T1: 1000, T2: math.Inf(1)}
	rng := stats.NewRNG(32)
	const shots = 8000
	survive := 0
	for i := 0; i < shots; i++ {
		s := NewState(1)
		s.X(0)
		nm.ApplyIdleDetuned(s, 0, 500, 0, true, rng)
		if s.Prob1(0) > 0.5 {
			survive++
		}
	}
	a := math.Exp(-0.25)
	want := a + (1-a)*(1-a)
	if got := float64(survive) / shots; math.Abs(got-want) > 0.03 {
		t.Fatalf("echoed survival %v, want ~%v", got, want)
	}
}
