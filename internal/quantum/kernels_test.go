package quantum

import (
	"fmt"
	"math"
	"testing"
)

// kernelAlphabet covers every specialized kind plus generic rotations.
func kernelAlphabet() []K1 {
	return []K1{
		KX(), KY(), KZ(), KH(), KS(), KSdg(),
		KernelT(), KernelTdg(),
		KernelRX(0.3), KernelRY(-1.2), KernelRZ(2.4),
		KGeneric(complex(0.6, 0), complex(0, 0.8), complex(0, 0.8), complex(0.6, 0)),
	}
}

// randomishState builds a deterministic non-trivial state by running a
// fixed gate sequence from |0...0⟩.
func randomishState(n int) *State {
	s := NewState(n)
	for q := 0; q < n; q++ {
		s.H(q)
		s.RZ(q, 0.37*float64(q+1))
		s.RX(q, -0.91*float64(q+1))
	}
	for q := 0; q+1 < n; q++ {
		s.CZ(q, q+1)
	}
	return s
}

func cloneState(s *State) *State {
	c := NewState(s.NumQubits())
	for i := range c.amp {
		c.amp[i] = s.amp[i]
	}
	return c
}

func bitsEqualState(t *testing.T, a, b *State, ctx string) {
	t.Helper()
	for i := range a.amp {
		if math.Float64bits(real(a.amp[i])) != math.Float64bits(real(b.amp[i])) ||
			math.Float64bits(imag(a.amp[i])) != math.Float64bits(imag(b.amp[i])) {
			t.Fatalf("%s: amplitude %d diverged bitwise: %v vs %v", ctx, i, a.amp[i], b.amp[i])
		}
	}
}

// matrixOf expands a kernel to its full 2x2 unitary (the specialized
// kinds carry only a tag, not matrix entries).
func matrixOf(k K1) K1 {
	h := complex(1/math.Sqrt2, 0)
	switch k.Kind {
	case K1X:
		return KGeneric(0, 1, 1, 0)
	case K1Y:
		return KGeneric(0, complex(0, -1), complex(0, 1), 0)
	case K1Z:
		return KGeneric(1, 0, 0, -1)
	case K1H:
		return KGeneric(h, h, h, -h)
	case K1S:
		return KGeneric(1, 0, 0, complex(0, 1))
	case K1Sdg:
		return KGeneric(1, 0, 0, complex(0, -1))
	case K1Phase:
		return KGeneric(1, 0, 0, k.U11)
	case K1Diag:
		return KGeneric(k.U00, 0, 0, k.U11)
	default:
		return KGeneric(k.U00, k.U01, k.U10, k.U11)
	}
}

// TestSpecializedKernelsMatchGeneric pins every specialized kernel fast
// path to the generic 2x2 apply within floating-point tolerance (the fast
// paths use algebraically simplified arithmetic, so exact bit equality
// with the generic matmul is not expected — only the compiled and
// interpreted *engine* paths must be bit-identical, and both route
// through the same specialized kernels).
func TestSpecializedKernelsMatchGeneric(t *testing.T) {
	const n = 4
	for _, k := range kernelAlphabet() {
		for q := 0; q < n; q++ {
			fast := randomishState(n)
			slow := cloneState(fast)
			fast.ApplyKernel(q, &k)
			g := matrixOf(k)
			slow.ApplyKernel(q, &g)
			for i := range fast.amp {
				if d := fast.amp[i] - slow.amp[i]; real(d)*real(d)+imag(d)*imag(d) > 1e-24 {
					t.Fatalf("kernel %v qubit %d: amplitude %d differs: %v vs %v",
						k.Kind, q, i, fast.amp[i], slow.amp[i])
				}
			}
		}
	}
}

// TestApplyKernelChainBitIdenticalToSequential is the fusion contract:
// pushing each amplitude pair through a chain of kernels performs exactly
// the floating-point operations of applying the kernels one full-state
// pass at a time, in the same order — so fused replay is bit-identical.
func TestApplyKernelChainBitIdenticalToSequential(t *testing.T) {
	// n=2 exercises the single-traversal fused replay; n=4 exercises the
	// large-register sequential fallback. Both must match gate-by-gate
	// application bit for bit.
	for _, n := range []int{2, 4} {
		ks := kernelAlphabet()
		for q := 0; q < n; q++ {
			fused := randomishState(n)
			seq := cloneState(fused)
			fused.ApplyKernelChain(q, ks)
			for i := range ks {
				seq.ApplyKernel(q, &ks[i])
			}
			bitsEqualState(t, fused, seq, "chain vs sequential")
		}
	}
}

// TestNamedGatesRouteThroughKernels pins the named gate methods to their
// kernel constructors: S.RX(q, θ) must equal ApplyKernel(q, KernelRX(θ))
// bit for bit, which is what lets the compiler precompute kernels.
func TestNamedGatesRouteThroughKernels(t *testing.T) {
	cases := []struct {
		name  string
		gate  func(s *State)
		k     K1
		qubit int
	}{
		{"X", func(s *State) { s.X(1) }, KX(), 1},
		{"Y", func(s *State) { s.Y(0) }, KY(), 0},
		{"Z", func(s *State) { s.Z(2) }, KZ(), 2},
		{"H", func(s *State) { s.H(1) }, KH(), 1},
		{"S", func(s *State) { s.S(0) }, KS(), 0},
		{"Sdg", func(s *State) { s.Sdg(2) }, KSdg(), 2},
		{"T", func(s *State) { s.T(1) }, KernelT(), 1},
		{"Tdg", func(s *State) { s.Tdg(0) }, KernelTdg(), 0},
		{"RX", func(s *State) { s.RX(1, 0.77) }, KernelRX(0.77), 1},
		{"RY", func(s *State) { s.RY(2, -0.4) }, KernelRY(-0.4), 2},
		{"RZ", func(s *State) { s.RZ(0, 1.9) }, KernelRZ(1.9), 0},
	}
	for _, c := range cases {
		named := randomishState(3)
		kerneled := cloneState(named)
		c.gate(named)
		kerneled.ApplyKernel(c.qubit, &c.k)
		bitsEqualState(t, named, kerneled, c.name)
	}
}

// TestProbabilitiesIntoReusesScratch verifies both the reuse semantics and
// the equivalence with the allocating form.
func TestProbabilitiesIntoReusesScratch(t *testing.T) {
	s := randomishState(3)
	fresh := s.Probabilities()
	scratch := make([]float64, 0, 8)
	got := s.ProbabilitiesInto(scratch)
	if &got[0] != &scratch[:1][0] {
		t.Fatal("ProbabilitiesInto did not reuse the provided scratch")
	}
	for i := range fresh {
		if math.Float64bits(fresh[i]) != math.Float64bits(got[i]) {
			t.Fatalf("probability %d differs: %v vs %v", i, fresh[i], got[i])
		}
	}
	// Undersized scratch grows instead of panicking.
	small := s.ProbabilitiesInto(make([]float64, 0, 2))
	for i := range fresh {
		if small[i] != fresh[i] {
			t.Fatalf("grown scratch probability %d differs", i)
		}
	}
}

// --- allocation assertions: the per-shot hot path must not allocate ---

func TestHotPathZeroAllocs(t *testing.T) {
	s := randomishState(4)
	k := KernelRX(0.3)
	chain := kernelAlphabet()
	scratch := make([]float64, 16)
	checks := []struct {
		name string
		fn   func()
	}{
		{"ApplyKernel", func() { s.ApplyKernel(2, &k) }},
		{"ApplyKernelChain", func() { s.ApplyKernelChain(1, chain) }},
		{"CZ", func() { s.CZ(0, 3) }},
		{"CNOT", func() { s.CNOT(1, 2) }},
		{"Prob1", func() { _ = s.Prob1(2) }},
		{"ProbabilitiesInto", func() { s.ProbabilitiesInto(scratch) }},
		{"Fidelity", func() { _ = s.Fidelity(s) }},
	}
	for _, c := range checks {
		if n := testing.AllocsPerRun(20, c.fn); n != 0 {
			t.Errorf("%s allocates %.1f times per call, want 0", c.name, n)
		}
	}
}

// --- micro-benchmarks (compiled-execution satellites) ---

func BenchmarkApply1Q(b *testing.B) {
	kinds := []struct {
		name string
		k    K1
	}{
		{"generic", func() K1 { k := KernelRX(0.3); k.Kind = K1Generic; return k }()},
		{"rx", KernelRX(0.3)},
		{"h", KH()},
		{"x", KX()},
		{"z", KZ()},
		{"s", KS()},
	}
	for _, kc := range kinds {
		b.Run(kc.name, func(b *testing.B) {
			s := NewState(10)
			s.H(0)
			k := kc.k
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ApplyKernel(5, &k)
			}
		})
	}
}

func BenchmarkApply2Q(b *testing.B) {
	b.Run("cz", func(b *testing.B) {
		s := NewState(10)
		s.H(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.CZ(2, 7)
		}
	})
	b.Run("cnot", func(b *testing.B) {
		s := NewState(10)
		s.H(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.CNOT(2, 7)
		}
	})
	b.Run("generic4x4", func(b *testing.B) {
		s := NewState(10)
		s.H(0)
		var u [4][4]complex128
		for i := range u {
			u[i][i] = 1
		}
		u[2][2], u[2][3], u[3][2], u[3][3] = 0, 1, 1, 0
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Apply2Q(2, 7, &u)
		}
	})
}

// BenchmarkStateReadbacks measures the scratch-reusing readback paths the
// engine calls once per shot (ProbabilitiesInto for measurement, Fidelity
// for the ideal-state comparison) — both must stay allocation-free.
func BenchmarkStateReadbacks(b *testing.B) {
	s := randomishState(10)
	ideal := cloneState(s)
	scratch := make([]float64, 1<<10)
	b.Run("probabilities-into", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.ProbabilitiesInto(scratch)
		}
	})
	b.Run("fidelity", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Fidelity(ideal)
		}
	})
	b.Run("prob1", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = s.Prob1(4)
		}
	})
}

// BenchmarkFusedVsUnfused measures the fusion win on a QRW-style run of
// single-qubit gates sharing a wire, at the engine-realistic 2-qubit size
// (where the single-traversal replay engages — the measured crossover
// behind chainFuseMaxAmps) and at 10 qubits (where ApplyKernelChain falls
// back to sequential specialized loops).
func BenchmarkFusedVsUnfused(b *testing.B) {
	chain := []K1{KH(), KernelRZ(0.3), KernelRX(1.1), KH(), KernelRZ(-0.4), KernelRX(0.9)}
	for _, nq := range []int{2, 10} {
		q := nq / 2
		b.Run(fmt.Sprintf("unfused-%dq", nq), func(b *testing.B) {
			s := NewState(nq)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range chain {
					s.ApplyKernel(q, &chain[j])
				}
			}
		})
		b.Run(fmt.Sprintf("fused-%dq", nq), func(b *testing.B) {
			s := NewState(nq)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ApplyKernelChain(q, chain)
			}
		})
	}
}
