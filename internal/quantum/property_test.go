package quantum

import (
	"math"
	"sync"
	"testing"

	"artery/internal/stats"
)

// TestGatesPreserveNorm is the unitarity property: every gate of the set,
// applied to random states at random angles, keeps ‖ψ‖ = 1 to machine
// precision.
func TestGatesPreserveNorm(t *testing.T) {
	rng := stats.NewRNG(101)
	gates := []struct {
		name  string
		apply func(s *State, q int)
	}{
		{"X", (*State).X}, {"Y", (*State).Y}, {"Z", (*State).Z},
		{"H", (*State).H}, {"S", (*State).S}, {"Sdg", (*State).Sdg},
		{"T", (*State).T}, {"Tdg", (*State).Tdg},
		{"RX", func(s *State, q int) { s.RX(q, rng.Float64()*2*math.Pi) }},
		{"RY", func(s *State, q int) { s.RY(q, rng.Float64()*2*math.Pi) }},
		{"RZ", func(s *State, q int) { s.RZ(q, rng.Float64()*2*math.Pi) }},
		{"CZ", func(s *State, q int) { s.CZ(q, (q+1)%3) }},
		{"CNOT", func(s *State, q int) { s.CNOT(q, (q+1)%3) }},
		{"SWAP", func(s *State, q int) { s.SWAP(q, (q+1)%3) }},
	}
	for _, g := range gates {
		for trial := 0; trial < 20; trial++ {
			s := randomState(3, rng)
			g.apply(s, rng.Intn(3))
			if n := s.Norm(); math.Abs(n-1) > 1e-9 {
				t.Fatalf("%s: norm %v after application (trial %d)", g.name, n, trial)
			}
		}
	}
}

// TestGateMatricesUnitary checks unitarity structurally: the columns of
// each gate's matrix (its action on basis states) are orthonormal.
func TestGateMatricesUnitary(t *testing.T) {
	gates := []struct {
		name   string
		qubits int
		apply  func(s *State)
	}{
		{"X", 1, func(s *State) { s.X(0) }},
		{"Y", 1, func(s *State) { s.Y(0) }},
		{"Z", 1, func(s *State) { s.Z(0) }},
		{"H", 1, func(s *State) { s.H(0) }},
		{"S", 1, func(s *State) { s.S(0) }},
		{"T", 1, func(s *State) { s.T(0) }},
		{"RX(0.7)", 1, func(s *State) { s.RX(0, 0.7) }},
		{"RY(1.1)", 1, func(s *State) { s.RY(0, 1.1) }},
		{"RZ(2.3)", 1, func(s *State) { s.RZ(0, 2.3) }},
		{"CZ", 2, func(s *State) { s.CZ(0, 1) }},
		{"CNOT", 2, func(s *State) { s.CNOT(0, 1) }},
		{"SWAP", 2, func(s *State) { s.SWAP(0, 1) }},
	}
	for _, g := range gates {
		dim := 1 << g.qubits
		cols := make([][]complex128, dim)
		for b := 0; b < dim; b++ {
			s := NewState(g.qubits)
			// Prepare basis state |b⟩ from |0…0⟩.
			for q := 0; q < g.qubits; q++ {
				if b>>q&1 == 1 {
					s.X(q)
				}
			}
			g.apply(s)
			col := make([]complex128, dim)
			for i := range col {
				col[i] = s.Amplitude(i)
			}
			cols[b] = col
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				var dot complex128
				for k := 0; k < dim; k++ {
					dot += cols[i][k] * cmplxConj(cols[j][k])
				}
				want := complex(0, 0)
				if i == j {
					want = 1
				}
				if cmplxAbs(dot-want) > 1e-9 {
					t.Fatalf("%s: ⟨col%d|col%d⟩ = %v, want %v", g.name, j, i, dot, want)
				}
			}
		}
	}
}

func cmplxConj(c complex128) complex128 { return complex(real(c), -imag(c)) }
func cmplxAbs(c complex128) float64     { return math.Hypot(real(c), imag(c)) }

// TestNoiseChannelsTracePreserving is the CPTP property as realized by the
// Monte-Carlo unraveling: every noise channel leaves random states
// normalized (each trajectory is renormalized, so trace preservation holds
// pathwise).
func TestNoiseChannelsTracePreserving(t *testing.T) {
	rng := stats.NewRNG(202)
	n := DeviceNoise()
	channels := []struct {
		name  string
		apply func(s *State, q int)
	}{
		{"idle", func(s *State, q int) { s.Norm(); n.ApplyIdle(s, q, 500+rng.Float64()*3000, rng) }},
		{"depolarizing", func(s *State, q int) { n.ApplyDepolarizing(s, q, 0.2, rng) }},
		{"amp-damp", func(s *State, q int) { s.applyAmplitudeDamping(q, 0.3, rng) }},
		{"gate1q", func(s *State, q int) { n.AfterGate1Q(s, q, rng) }},
		{"gate2q", func(s *State, q int) { n.AfterGate2Q(s, q, (q+1)%4, rng) }},
		{"idle-detuned", func(s *State, q int) { n.ApplyIdleDetuned(s, q, 2000, 1e5, false, rng) }},
		{"idle-dd", func(s *State, q int) { n.ApplyIdleDetuned(s, q, 2000, 1e5, true, rng) }},
		{"noisy-measure", func(s *State, q int) { n.NoisyMeasure(s, q, rng) }},
	}
	for _, c := range channels {
		for trial := 0; trial < 25; trial++ {
			s := randomState(4, rng)
			c.apply(s, rng.Intn(4))
			if nm := s.Norm(); math.Abs(nm-1) > 1e-6 {
				t.Fatalf("%s: norm %v after channel (trial %d)", c.name, nm, trial)
			}
		}
	}
}

// TestStatePoolNoAliasingOrDirtyBuffers drives a pool from many goroutines
// (run under -race) and checks every Get returns a clean |0…0⟩ state that
// no other in-flight goroutine holds.
func TestStatePoolNoAliasingOrDirtyBuffers(t *testing.T) {
	pool := NewStatePool(4)
	const goroutines = 8
	const rounds = 200
	var mu sync.Mutex
	inFlight := map[*State]int{}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(300 + id))
			for r := 0; r < rounds; r++ {
				s := pool.Get()
				mu.Lock()
				if owner, dup := inFlight[s]; dup {
					mu.Unlock()
					errs <- "pool handed one state to two goroutines"
					_ = owner
					return
				}
				inFlight[s] = id
				mu.Unlock()

				// Clean |0…0⟩: amplitude 1 at index 0, 0 elsewhere.
				if s.Amplitude(0) != 1 {
					errs <- "pool returned a dirty state (amp[0] != 1)"
					return
				}
				for i := 1; i < 16; i++ {
					if s.Amplitude(i) != 0 {
						errs <- "pool returned a dirty state (nonzero tail)"
						return
					}
				}
				// Dirty it thoroughly before returning it.
				for q := 0; q < 4; q++ {
					s.H(q)
					s.RZ(q, rng.Float64())
				}
				mu.Lock()
				delete(inFlight, s)
				mu.Unlock()
				pool.Put(s)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
