package quantum

import (
	"fmt"
	"math"
	"math/cmplx"

	"artery/internal/stats"
)

// Density is a density-matrix simulator for small registers. It evolves
// the exact mixed state under the same gate set and noise channels the
// Monte-Carlo state-vector simulator samples, providing the ground truth
// the trajectory method must average to: the package tests verify that
// shot-averaged State trajectories converge to Density evolution, which is
// the correctness argument for every fidelity number in the evaluation.
//
// Memory is O(4^n); keep n small (the validation suite uses n <= 5).
type Density struct {
	n   int
	rho []complex128 // row-major (2^n)x(2^n)
}

// NewDensity returns an n-qubit register in |0...0⟩⟨0...0|.
// It panics for n outside [1, 10].
func NewDensity(n int) *Density {
	if n < 1 || n > 10 {
		panic(fmt.Sprintf("quantum: unsupported density qubit count %d", n))
	}
	dim := 1 << uint(n)
	d := &Density{n: n, rho: make([]complex128, dim*dim)}
	d.rho[0] = 1
	return d
}

// FromState returns the pure-state density matrix |ψ⟩⟨ψ|.
func FromState(s *State) *Density {
	d := NewDensity(s.NumQubits())
	dim := 1 << uint(s.n)
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			d.rho[i*dim+j] = s.amp[i] * cmplx.Conj(s.amp[j])
		}
	}
	return d
}

// NumQubits returns the register width.
func (d *Density) NumQubits() int { return d.n }

func (d *Density) dim() int { return 1 << uint(d.n) }

// At returns ρ[i][j].
func (d *Density) At(i, j int) complex128 { return d.rho[i*d.dim()+j] }

// Trace returns tr(ρ), which must be 1 for a valid state.
func (d *Density) Trace() complex128 {
	dim := d.dim()
	var t complex128
	for i := 0; i < dim; i++ {
		t += d.rho[i*dim+i]
	}
	return t
}

// Purity returns tr(ρ²) ∈ (0, 1]; 1 for pure states.
func (d *Density) Purity() float64 {
	dim := d.dim()
	p := 0.0
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			a := d.rho[i*dim+j]
			b := d.rho[j*dim+i]
			p += real(a * b) // tr(ρ²) is real for Hermitian ρ
		}
	}
	return p
}

// apply1Q conjugates ρ by the single-qubit operator {{u00,u01},{u10,u11}}
// on qubit q: ρ <- U ρ U†. Non-unitary Kraus operators are allowed (the
// caller is responsible for summing branches).
func (d *Density) apply1Q(q int, u00, u01, u10, u11 complex128) {
	dim := d.dim()
	bit := 1 << uint(q)
	// Left multiply: rows.
	for col := 0; col < dim; col++ {
		for r := 0; r < dim; r++ {
			if r&bit != 0 {
				continue
			}
			r1 := r | bit
			a0, a1 := d.rho[r*dim+col], d.rho[r1*dim+col]
			d.rho[r*dim+col] = u00*a0 + u01*a1
			d.rho[r1*dim+col] = u10*a0 + u11*a1
		}
	}
	// Right multiply by U†: columns.
	c00, c01 := cmplx.Conj(u00), cmplx.Conj(u01)
	c10, c11 := cmplx.Conj(u10), cmplx.Conj(u11)
	for row := 0; row < dim; row++ {
		base := row * dim
		for c := 0; c < dim; c++ {
			if c&bit != 0 {
				continue
			}
			c1 := c | bit
			a0, a1 := d.rho[base+c], d.rho[base+c1]
			// (ρU†)[.,c] = ρ[.,c]·conj(u00) + ρ[.,c1]·conj(u01), etc.
			d.rho[base+c] = a0*c00 + a1*c01
			d.rho[base+c1] = a0*c10 + a1*c11
		}
	}
}

// Apply1Q applies a single-qubit unitary to qubit q.
func (d *Density) Apply1Q(q int, u00, u01, u10, u11 complex128) {
	if q < 0 || q >= d.n {
		panic("quantum: density qubit out of range")
	}
	d.apply1Q(q, u00, u01, u10, u11)
}

// RX applies a rotation about X to qubit q.
func (d *Density) RX(q int, theta float64) {
	c := complex(math.Cos(theta/2), 0)
	is := complex(0, -math.Sin(theta/2))
	d.Apply1Q(q, c, is, is, c)
}

// RY applies a rotation about Y to qubit q.
func (d *Density) RY(q int, theta float64) {
	c := complex(math.Cos(theta/2), 0)
	sn := complex(math.Sin(theta/2), 0)
	d.Apply1Q(q, c, -sn, sn, c)
}

// RZ applies a rotation about Z to qubit q.
func (d *Density) RZ(q int, theta float64) {
	d.Apply1Q(q, cmplx.Exp(complex(0, -theta/2)), 0, 0, cmplx.Exp(complex(0, theta/2)))
}

// X applies Pauli-X to qubit q.
func (d *Density) X(q int) { d.Apply1Q(q, 0, 1, 1, 0) }

// Z applies Pauli-Z to qubit q.
func (d *Density) Z(q int) { d.Apply1Q(q, 1, 0, 0, -1) }

// H applies a Hadamard to qubit q.
func (d *Density) H(q int) {
	h := complex(1/math.Sqrt2, 0)
	d.Apply1Q(q, h, h, h, -h)
}

// CZ applies a controlled-Z between qubits a and b.
func (d *Density) CZ(a, b int) {
	if a == b || a < 0 || b < 0 || a >= d.n || b >= d.n {
		panic("quantum: invalid CZ qubits")
	}
	dim := d.dim()
	mask := (1 << uint(a)) | (1 << uint(b))
	for i := 0; i < dim; i++ {
		si := i&mask == mask
		for j := 0; j < dim; j++ {
			if si != (j&mask == mask) {
				d.rho[i*dim+j] = -d.rho[i*dim+j]
			}
		}
	}
}

// CNOT applies a controlled-X (control, target).
func (d *Density) CNOT(control, target int) {
	d.H(target)
	d.CZ(control, target)
	d.H(target)
}

// Prob1 returns the probability of measuring qubit q as 1.
func (d *Density) Prob1(q int) float64 {
	dim := d.dim()
	bit := 1 << uint(q)
	p := 0.0
	for i := 0; i < dim; i++ {
		if i&bit != 0 {
			p += real(d.rho[i*dim+i])
		}
	}
	return p
}

// applyKrausPair applies the channel ρ <- K0 ρ K0† + K1 ρ K1†, each Ki a
// single-qubit operator on q.
func (d *Density) applyKrausPair(q int, k0, k1 [4]complex128) {
	dim := d.dim()
	saved := append([]complex128(nil), d.rho...)
	d.apply1Q(q, k0[0], k0[1], k0[2], k0[3])
	branch0 := d.rho
	d.rho = saved
	d.apply1Q(q, k1[0], k1[1], k1[2], k1[3])
	for i := 0; i < dim*dim; i++ {
		d.rho[i] += branch0[i]
	}
}

// AmplitudeDamping applies the T1 relaxation channel with decay
// probability gamma to qubit q.
func (d *Density) AmplitudeDamping(q int, gamma float64) {
	if gamma <= 0 {
		return
	}
	s := complex(math.Sqrt(1-gamma), 0)
	g := complex(math.Sqrt(gamma), 0)
	d.applyKrausPair(q, [4]complex128{1, 0, 0, s}, [4]complex128{0, g, 0, 0})
}

// PhaseFlip applies a phase-flip channel with probability p to qubit q:
// ρ <- (1-p)ρ + p ZρZ.
func (d *Density) PhaseFlip(q int, p float64) {
	if p <= 0 {
		return
	}
	a := complex(math.Sqrt(1-p), 0)
	b := complex(math.Sqrt(p), 0)
	d.applyKrausPair(q, [4]complex128{a, 0, 0, a}, [4]complex128{b, 0, 0, -b})
}

// Depolarize applies a single-qubit depolarizing channel with probability
// p: with prob p a uniformly random Pauli hits q.
func (d *Density) Depolarize(q int, p float64) {
	if p <= 0 {
		return
	}
	dim := d.dim()
	orig := append([]complex128(nil), d.rho...)
	acc := make([]complex128, dim*dim)
	add := func(scale float64) {
		for i := range acc {
			acc[i] += complex(scale, 0) * d.rho[i]
		}
	}
	// Identity branch.
	for i := range acc {
		acc[i] += complex(1-p, 0) * orig[i]
	}
	// X, Y, Z branches.
	d.rho = append([]complex128(nil), orig...)
	d.Apply1Q(q, 0, 1, 1, 0)
	add(p / 3)
	d.rho = append([]complex128(nil), orig...)
	d.Apply1Q(q, 0, complex(0, -1), complex(0, 1), 0)
	add(p / 3)
	d.rho = append([]complex128(nil), orig...)
	d.Apply1Q(q, 1, 0, 0, -1)
	add(p / 3)
	d.rho = acc
}

// ApplyIdle evolves qubit q through dt nanoseconds of idling under the
// noise model, the exact counterpart of NoiseModel.ApplyIdle.
func (d *Density) ApplyIdle(nm *NoiseModel, q int, dt float64) {
	if dt <= 0 {
		return
	}
	if !math.IsInf(nm.T1, 1) {
		d.AmplitudeDamping(q, 1-math.Exp(-dt/nm.T1))
	}
	if !math.IsInf(nm.T2, 1) {
		invTphi := 1/nm.T2 - 1/(2*nm.T1)
		if invTphi > 0 {
			lambda := 1 - math.Exp(-dt*invTphi)
			d.PhaseFlip(q, lambda/2)
		}
	}
}

// FidelityWithState returns ⟨ψ|ρ|ψ⟩, the fidelity between the mixed state
// and a pure reference.
func (d *Density) FidelityWithState(s *State) float64 {
	if s.NumQubits() != d.n {
		panic("quantum: register size mismatch")
	}
	dim := d.dim()
	var f complex128
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			f += cmplx.Conj(s.amp[i]) * d.rho[i*dim+j] * s.amp[j]
		}
	}
	return real(f)
}

// AverageOfStates returns the mixed state (1/N) Σ |ψ_k⟩⟨ψ_k| of a
// trajectory ensemble — what Monte-Carlo averaging produces.
func AverageOfStates(states []*State) *Density {
	if len(states) == 0 {
		panic("quantum: empty ensemble")
	}
	d := NewDensity(states[0].NumQubits())
	dim := d.dim()
	for i := range d.rho {
		d.rho[i] = 0
	}
	w := complex(1/float64(len(states)), 0)
	for _, s := range states {
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				d.rho[i*dim+j] += w * s.amp[i] * cmplx.Conj(s.amp[j])
			}
		}
	}
	return d
}

// DistanceFrom returns the Frobenius distance ‖ρ−σ‖_F, a convergence
// metric for the trajectory-vs-exact validation tests.
func (d *Density) DistanceFrom(o *Density) float64 {
	if d.n != o.n {
		panic("quantum: register size mismatch")
	}
	sum := 0.0
	for i := range d.rho {
		diff := d.rho[i] - o.rho[i]
		sum += real(diff)*real(diff) + imag(diff)*imag(diff)
	}
	return math.Sqrt(sum)
}

// SampleTrajectories runs n Monte-Carlo state-vector trajectories of fn
// (which receives a fresh State and RNG) and returns their average density
// matrix — the bridge the validation tests use.
func SampleTrajectories(qubits, n int, seed uint64, fn func(*State, *stats.RNG)) *Density {
	rng := stats.NewRNG(seed)
	states := make([]*State, n)
	for k := 0; k < n; k++ {
		s := NewState(qubits)
		fn(s, rng.Split())
		states[k] = s
	}
	return AverageOfStates(states)
}
