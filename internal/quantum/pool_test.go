package quantum

import (
	"math"
	"sync"
	"testing"

	"artery/internal/stats"
)

func TestStatePoolRecyclesToZeroState(t *testing.T) {
	p := NewStatePool(3)
	s := p.Get()
	s.H(0)
	s.X(2)
	p.Put(s)
	// The recycled register must be a pristine |000⟩, regardless of what
	// the previous shot left in the buffer.
	r := p.Get()
	if r.Amplitude(0) != 1 {
		t.Fatalf("recycled state amp[0] = %v, want 1", r.Amplitude(0))
	}
	for i := 1; i < 8; i++ {
		if r.Amplitude(i) != 0 {
			t.Fatalf("recycled state amp[%d] = %v, want 0", i, r.Amplitude(i))
		}
	}
	if math.Abs(r.Norm()-1) > 1e-12 {
		t.Fatalf("recycled state norm %v", r.Norm())
	}
}

func TestStatePoolMatchesNewState(t *testing.T) {
	// A pooled register must evolve identically to a fresh one.
	p := NewStatePool(2)
	rngA, rngB := stats.NewRNG(5), stats.NewRNG(5)
	a := p.Get()
	b := NewState(2)
	a.H(0)
	b.H(0)
	a.CNOT(0, 1)
	b.CNOT(0, 1)
	if ma, mb := a.Measure(0, rngA), b.Measure(0, rngB); ma != mb {
		t.Fatalf("pooled measurement %d != fresh %d", ma, mb)
	}
	for i := range b.amp {
		if a.amp[i] != b.amp[i] {
			t.Fatalf("amp[%d]: pooled %v != fresh %v", i, a.amp[i], b.amp[i])
		}
	}
}

func TestStatePoolRejectsWrongWidth(t *testing.T) {
	p := NewStatePool(2)
	defer func() {
		if recover() == nil {
			t.Fatal("pool accepted a state of the wrong width")
		}
	}()
	p.Put(NewState(3))
}

func TestStatePoolConcurrentGetPut(t *testing.T) {
	// Exercised under -race by the ci target: concurrent workers must be
	// able to share one pool.
	p := NewStatePool(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := stats.NewRNG(seed)
			for i := 0; i < 50; i++ {
				s := p.Get()
				s.H(0)
				s.Measure(0, rng)
				p.Put(s)
			}
		}(uint64(w + 1))
	}
	wg.Wait()
}
