package quantum

import (
	"math"
	"testing"
	"testing/quick"

	"artery/internal/stats"
)

func TestDensityInit(t *testing.T) {
	d := NewDensity(2)
	if real(d.Trace()) != 1 {
		t.Fatalf("trace %v", d.Trace())
	}
	if d.Purity() != 1 {
		t.Fatalf("purity %v", d.Purity())
	}
	if d.At(0, 0) != 1 {
		t.Fatal("not |00⟩⟨00|")
	}
}

func TestDensityPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewDensity(0) },
		func() { NewDensity(11) },
		func() { NewDensity(2).Apply1Q(2, 1, 0, 0, 1) },
		func() { NewDensity(2).CZ(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDensityMatchesStateOnUnitaries(t *testing.T) {
	// A pure state evolved as a density matrix must match |ψ⟩⟨ψ| of the
	// state-vector evolution for every gate.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := NewState(3)
		d := NewDensity(3)
		for step := 0; step < 12; step++ {
			q := rng.Intn(3)
			switch rng.Intn(6) {
			case 0:
				th := rng.Float64() * 2 * math.Pi
				s.RX(q, th)
				d.RX(q, th)
			case 1:
				th := rng.Float64() * 2 * math.Pi
				s.RY(q, th)
				d.RY(q, th)
			case 2:
				th := rng.Float64() * 2 * math.Pi
				s.RZ(q, th)
				d.RZ(q, th)
			case 3:
				s.H(q)
				d.H(q)
			case 4:
				p := (q + 1) % 3
				s.CZ(q, p)
				d.CZ(q, p)
			default:
				p := (q + 1) % 3
				s.CNOT(q, p)
				d.CNOT(q, p)
			}
		}
		ref := FromState(s)
		return d.DistanceFrom(ref) < 1e-9 && math.Abs(d.Purity()-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDensityProb1MatchesState(t *testing.T) {
	s := NewState(2)
	s.RY(0, 1.234)
	s.CZ(0, 1)
	s.H(1)
	d := FromState(s)
	for q := 0; q < 2; q++ {
		if math.Abs(d.Prob1(q)-s.Prob1(q)) > 1e-12 {
			t.Fatalf("Prob1 mismatch on q%d", q)
		}
	}
}

func TestAmplitudeDampingExact(t *testing.T) {
	// |1⟩⟨1| under damping γ: population γ moves to |0⟩, coherence scales
	// by √(1-γ).
	d := NewDensity(1)
	d.X(0)
	d.AmplitudeDamping(0, 0.3)
	if p := d.Prob1(0); math.Abs(p-0.7) > 1e-12 {
		t.Fatalf("excited population %v, want 0.7", p)
	}
	// |+⟩ coherence: ρ01 = 0.5·√(1-γ).
	d2 := NewDensity(1)
	d2.H(0)
	d2.AmplitudeDamping(0, 0.36)
	if c := real(d2.At(0, 1)); math.Abs(c-0.5*0.8) > 1e-12 {
		t.Fatalf("coherence %v, want 0.4", c)
	}
	if tr := real(d2.Trace()); math.Abs(tr-1) > 1e-12 {
		t.Fatalf("trace %v after damping", tr)
	}
}

func TestPhaseFlipKillsCoherence(t *testing.T) {
	d := NewDensity(1)
	d.H(0)
	d.PhaseFlip(0, 0.5) // fully dephasing
	if c := real(d.At(0, 1)); math.Abs(c) > 1e-12 {
		t.Fatalf("coherence %v after full dephasing", c)
	}
	if p := d.Prob1(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("population changed: %v", p)
	}
}

func TestDepolarizeToMixed(t *testing.T) {
	d := NewDensity(1)
	d.Depolarize(0, 0.75) // p=3/4 is the fully depolarizing point
	if p := d.Prob1(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("not maximally mixed: Prob1 = %v", p)
	}
	if pur := d.Purity(); math.Abs(pur-0.5) > 1e-12 {
		t.Fatalf("purity %v, want 0.5", pur)
	}
}

// TestTrajectoriesConvergeToChannel is the keystone validation: the
// Monte-Carlo state-vector noise sampling must average to the exact
// density-matrix channel. This is the correctness argument behind every
// fidelity number in the evaluation.
func TestTrajectoriesConvergeToChannel(t *testing.T) {
	nm := &NoiseModel{T1: 1000, T2: 800}
	const dt = 400.0

	// Exact: |+⟩ on q0 entangled with q1, idle both.
	exact := NewDensity(2)
	exact.H(0)
	exact.CNOT(0, 1)
	exact.ApplyIdle(nm, 0, dt)
	exact.ApplyIdle(nm, 1, dt)

	avg := SampleTrajectories(2, 6000, 42, func(s *State, rng *stats.RNG) {
		s.H(0)
		s.CNOT(0, 1)
		nm.ApplyIdle(s, 0, dt, rng)
		nm.ApplyIdle(s, 1, dt, rng)
	})

	if dist := avg.DistanceFrom(exact); dist > 0.05 {
		t.Fatalf("trajectory average deviates from exact channel: ‖Δ‖_F = %v", dist)
	}
}

func TestTrajectoriesConvergeDepolarizing(t *testing.T) {
	nm := &NoiseModel{T1: math.Inf(1), T2: math.Inf(1)}
	exact := NewDensity(1)
	exact.H(0)
	exact.Depolarize(0, 0.4)

	avg := SampleTrajectories(1, 8000, 7, func(s *State, rng *stats.RNG) {
		s.H(0)
		nm.ApplyDepolarizing(s, 0, 0.4, rng)
	})
	if dist := avg.DistanceFrom(exact); dist > 0.04 {
		t.Fatalf("depolarizing trajectories deviate: %v", dist)
	}
}

func TestFidelityWithState(t *testing.T) {
	s := NewState(2)
	s.H(0)
	d := FromState(s)
	if f := d.FidelityWithState(s); math.Abs(f-1) > 1e-12 {
		t.Fatalf("self fidelity %v", f)
	}
	o := NewState(2)
	o.X(0) // orthogonal to |+0⟩? ⟨10|+0⟩ = 1/√2, fidelity 0.5
	if f := d.FidelityWithState(o); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("cross fidelity %v, want 0.5", f)
	}
}

func TestAverageOfStatesMixes(t *testing.T) {
	a := NewState(1)
	b := NewState(1)
	b.X(0)
	d := AverageOfStates([]*State{a, b})
	if p := d.Prob1(0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("ensemble Prob1 %v", p)
	}
	if pur := d.Purity(); math.Abs(pur-0.5) > 1e-12 {
		t.Fatalf("ensemble purity %v", pur)
	}
}

func TestDensityTracePreservedUnderChannelsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		d := NewDensity(2)
		d.RY(0, rng.Float64()*math.Pi)
		d.CNOT(0, 1)
		d.AmplitudeDamping(0, rng.Float64())
		d.PhaseFlip(1, rng.Float64()/2)
		d.Depolarize(0, rng.Float64()*0.74)
		return math.Abs(real(d.Trace())-1) < 1e-9 && math.Abs(imag(d.Trace())) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
