// Package quantum implements a Monte-Carlo state-vector simulator for small
// quantum registers.
//
// It is the substrate that stands in for the paper's 18-qubit Xmon
// superconducting processor: gates are ideal unitaries, and hardware
// imperfections (T1 relaxation, T2 dephasing, depolarizing gate error,
// readout assignment error) are applied as stochastic quantum-trajectory
// channels, so averaging over shots reproduces the corresponding density-
// matrix evolution. The basis gate set matches the paper's device:
// RX, RY, RZ (virtual) and CZ, plus the derived Clifford gates used by the
// workloads.
package quantum

import (
	"fmt"
	"math"

	"artery/internal/stats"
)

// State is the state vector of an n-qubit register. Qubit 0 is the least
// significant bit of the basis-state index.
type State struct {
	n   int
	amp []complex128
}

// NewState returns an n-qubit register initialized to |0...0⟩.
// It panics for n outside [1, 24] (24 qubits = 256 MiB of amplitudes,
// a sane ceiling for this simulator).
func NewState(n int) *State {
	if n < 1 || n > 24 {
		panic(fmt.Sprintf("quantum: unsupported qubit count %d", n))
	}
	s := &State{n: n, amp: make([]complex128, 1<<uint(n))}
	s.amp[0] = 1
	return s
}

// NumQubits returns the register width.
func (s *State) NumQubits() int { return s.n }

// Clone returns a deep copy of the state.
func (s *State) Clone() *State {
	c := &State{n: s.n, amp: make([]complex128, len(s.amp))}
	copy(c.amp, s.amp)
	return c
}

// Amplitude returns the amplitude of basis state i.
func (s *State) Amplitude(i int) complex128 { return s.amp[i] }

// Norm returns the 2-norm of the state vector (1 for a valid state).
func (s *State) Norm() float64 {
	sum := 0.0
	for _, a := range s.amp {
		sum += real(a)*real(a) + imag(a)*imag(a)
	}
	return math.Sqrt(sum)
}

func (s *State) checkQubit(q int) {
	if q < 0 || q >= s.n {
		panic(fmt.Sprintf("quantum: qubit %d out of range [0,%d)", q, s.n))
	}
}

// Apply1Q applies the 2x2 unitary {{u00,u01},{u10,u11}} to qubit q.
// It routes through the generic kernel, so arbitrary-matrix application is
// bit-identical between the interpreted and compiled execution paths.
func (s *State) Apply1Q(q int, u00, u01, u10, u11 complex128) {
	k := KGeneric(u00, u01, u10, u11)
	s.ApplyKernel(q, &k)
}

// Apply2Q applies a 4x4 unitary u (row-major, basis order |q2 q1⟩ =
// |00⟩,|01⟩,|10⟩,|11⟩ with q1 the low bit) to qubits q1 and q2.
// The nested loops enumerate exactly the quarter of the register with both
// qubit bits clear, in ascending order, instead of testing every index.
func (s *State) Apply2Q(q1, q2 int, u *[4][4]complex128) {
	s.checkQubit(q1)
	s.checkQubit(q2)
	if q1 == q2 {
		panic("quantum: Apply2Q with identical qubits")
	}
	b1, b2 := 1<<uint(q1), 1<<uint(q2)
	lo, hi := b1, b2
	if lo > hi {
		lo, hi = hi, lo
	}
	amp := s.amp
	n := len(amp)
	for blockA := 0; blockA < n; blockA += hi << 1 {
		for blockB := blockA; blockB < blockA+hi; blockB += lo << 1 {
			for i := blockB; i < blockB+lo; i++ {
				idx := [4]int{i, i | b1, i | b2, i | b1 | b2}
				var in [4]complex128
				for k, x := range idx {
					in[k] = amp[x]
				}
				for r, x := range idx {
					amp[x] = u[r][0]*in[0] + u[r][1]*in[1] + u[r][2]*in[2] + u[r][3]*in[3]
				}
			}
		}
	}
}

// Prob1 returns the probability that measuring qubit q yields 1.
// The nested loops visit only the half of the register with the qubit bit
// set, in ascending index order — the same summation order as a full scan,
// so the result is bit-identical to one.
func (s *State) Prob1(q int) float64 {
	s.checkQubit(q)
	bit := 1 << uint(q)
	amp := s.amp
	p := 0.0
	for base := bit; base < len(amp); base += bit << 1 {
		for i := base; i < base+bit; i++ {
			a := amp[i]
			p += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	return p
}

// Measure performs a projective Z measurement of qubit q, collapsing the
// state, and returns the outcome bit.
func (s *State) Measure(q int, rng *stats.RNG) int {
	p1 := s.Prob1(q)
	outcome := 0
	if rng.Float64() < p1 {
		outcome = 1
	}
	s.project(q, outcome)
	return outcome
}

// Project collapses qubit q onto the given outcome and renormalizes,
// without sampling — used to condition a reference state on an outcome
// observed elsewhere (e.g. the ideal branch of a fidelity comparison).
// It panics if the outcome has zero probability.
func (s *State) Project(q, outcome int) {
	s.checkQubit(q)
	if outcome != 0 && outcome != 1 {
		panic("quantum: Project outcome must be 0 or 1")
	}
	s.project(q, outcome)
}

// project collapses qubit q onto the given outcome and renormalizes.
// Each bit<<1 block splits into a surviving half (summed into the norm in
// ascending order, exactly as a full scan would) and a cleared half; the
// rescale then touches only surviving amplitudes, since the cleared ones
// stay +0 either way.
func (s *State) project(q, outcome int) {
	bit := 1 << uint(q)
	keep := 0
	if outcome == 1 {
		keep = bit
	}
	amp := s.amp
	n := len(amp)
	norm := 0.0
	for base := 0; base < n; base += bit << 1 {
		zero := base + bit - keep
		clear(amp[zero : zero+bit])
		k := base + keep
		for i := k; i < k+bit; i++ {
			a := amp[i]
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
	}
	if norm == 0 {
		panic("quantum: projection onto zero-probability outcome")
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for base := keep; base < n; base += bit << 1 {
		for i := base; i < base+bit; i++ {
			amp[i] *= scale
		}
	}
}

// Reset measures qubit q and, if the outcome is 1, applies X, leaving the
// qubit in |0⟩. It returns the pre-reset measurement outcome.
func (s *State) Reset(q int, rng *stats.RNG) int {
	m := s.Measure(q, rng)
	if m == 1 {
		s.X(q)
	}
	return m
}

// Fidelity returns |⟨s|o⟩|², the state fidelity between two pure states.
// It panics if the registers have different widths.
//
// The inner product accumulates in two scalar registers instead of a
// complex128, avoiding the per-element cmplx.Conj temporary. The scalar
// expressions are IEEE-identical to the complex form (x−(−y) ≡ x+y and
// x+(−y) ≡ x−y for every operand, including signed zeros), so the result
// is bit-equal to the previous implementation.
func (s *State) Fidelity(o *State) float64 {
	if s.n != o.n {
		panic("quantum: Fidelity between different register sizes")
	}
	var re, im float64
	oa := o.amp
	for i, a := range s.amp {
		b := oa[i]
		re += real(a)*real(b) + imag(a)*imag(b)
		im += real(a)*imag(b) - imag(a)*real(b)
	}
	return re*re + im*im
}

// Probabilities returns the full basis-state probability distribution.
func (s *State) Probabilities() []float64 {
	return s.ProbabilitiesInto(nil)
}

// ProbabilitiesInto writes the basis-state probability distribution into
// dst, growing it only when its capacity is insufficient, and returns the
// slice. Passing the previous return value back in makes repeated calls
// allocation-free. The scratch is owned by the caller — each shot worker
// keeps its own, which is what makes reuse race-clean.
func (s *State) ProbabilitiesInto(dst []float64) []float64 {
	if cap(dst) < len(s.amp) {
		dst = make([]float64, len(s.amp))
	}
	dst = dst[:len(s.amp)]
	for i, a := range s.amp {
		dst[i] = real(a)*real(a) + imag(a)*imag(a)
	}
	return dst
}
