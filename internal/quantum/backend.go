package quantum

import (
	"fmt"
	"math"

	"artery/internal/stats"
)

// MaxStateQubits is the widest register NewState supports: a 24-qubit
// state vector is 256 MiB of amplitudes, the practical wall for full
// state-vector simulation in this repository. Circuits wider than this
// can only run on the stabilizer backend.
const MaxStateQubits = 24

// Backend is the quantum-register contract the compiled op-tape engine
// executes against. Two implementations exist: *State (full state
// vector, arbitrary gates, fidelity readback) and stabilizer.Sim
// (Aaronson–Gottesman tableau, Clifford gates only, qubit count
// essentially free).
//
// Determinism contract: Measure consumes exactly ONE rng.Float64() draw
// per call — outcome 1 iff the draw is < Prob1(q) — and Reset is Measure
// plus a draw-free conditional X. Both implementations honor this, which
// is what keeps runs bit-identical when the engine swaps backends on the
// same per-shot SplitN streams: the draw SEQUENCE is part of the
// contract, not an implementation detail. (The one caveat: Prob1 of a
// maximally mixed branch is 0.5 exactly on the tableau but may sit one
// ulp off 0.5 on the state vector after rotations; a draw landing in
// that 2⁻⁵³-wide gap would diverge. No seeded test run does.)
//
// Concurrency contract: a Backend value belongs to exactly one shot
// worker between pool Get and Put, like *State.
type Backend interface {
	NumQubits() int

	// Clifford generators plus the named Paulis and two-qubit gates the
	// compiled tapes emit. Non-Clifford gates (T, arbitrary rotations)
	// are deliberately absent: tapes that need them fail Clifford
	// analysis and stay on the state-vector backend.
	X(q int)
	Y(q int)
	Z(q int)
	H(q int)
	S(q int)
	Sdg(q int)
	CNOT(control, target int)
	CZ(a, b int)
	SWAP(a, b int)

	// Measure projectively measures qubit q in Z, consuming exactly one
	// rng.Float64() draw. Reset is Measure followed by X when the
	// outcome was 1, returning the pre-reset outcome. Project collapses
	// onto a known outcome without drawing; it panics if the outcome has
	// zero probability.
	Measure(q int, rng *stats.RNG) int
	Reset(q int, rng *stats.RNG) int
	Prob1(q int) float64
	Project(q, outcome int)
}

// *State implements Backend.
var _ Backend = (*State)(nil)

// BackendKind selects which Backend implementation the engine uses for
// circuits it simulates. The zero value is BackendAuto.
type BackendKind uint8

const (
	// BackendAuto keeps today's behavior for every circuit a state
	// vector can hold within the engine's sim budget, and promotes
	// circuits wider than MaxStateQubits to the stabilizer backend when
	// they qualify (Clifford tape, Clifford-safe noise, reversible
	// feedback bodies).
	BackendAuto BackendKind = iota
	// BackendState forces the state-vector backend (and raises the
	// engine's sim width budget to MaxStateQubits).
	BackendState
	// BackendStabilizer forces the tableau backend; non-Clifford
	// workloads are rejected with a typed error.
	BackendStabilizer
)

// ParseBackendKind maps the CLI/wire spelling of a backend selector to
// its kind. The empty string means auto.
func ParseBackendKind(s string) (BackendKind, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "state", "statevector":
		return BackendState, nil
	case "stabilizer", "tableau":
		return BackendStabilizer, nil
	}
	return BackendAuto, fmt.Errorf("quantum: unknown backend %q (want auto, state or stabilizer)", s)
}

// String returns the canonical spelling ParseBackendKind accepts.
func (k BackendKind) String() string {
	switch k {
	case BackendState:
		return "state"
	case BackendStabilizer:
		return "stabilizer"
	default:
		return "auto"
	}
}

// CliffordSafe reports whether every channel in the model maps Pauli
// errors to Pauli errors, i.e. whether the model can run on a stabilizer
// backend: depolarizing gate error and readout assignment flips qualify;
// finite T1/T2 (amplitude damping / continuous dephasing) and
// quasi-static detunings (coherent RZ by arbitrary angles) do not.
func (n *NoiseModel) CliffordSafe() bool {
	return math.IsInf(n.T1, 1) && math.IsInf(n.T2, 1) && n.QuasiStaticSigma <= 0
}

// The Backend-generic noise channels below mirror their *State
// counterparts draw-for-draw under a CliffordSafe model, where ApplyIdle
// is a no-op that consumes no randomness. They must only be called when
// CliffordSafe() holds — the engine checks once per run.

// ApplyDepolarizingB is ApplyDepolarizing against any Backend.
func (n *NoiseModel) ApplyDepolarizingB(b Backend, q int, p float64, rng *stats.RNG) {
	if p <= 0 || !rng.Bool(p) {
		return
	}
	switch rng.Intn(3) {
	case 0:
		b.X(q)
	case 1:
		b.Y(q)
	default:
		b.Z(q)
	}
}

// AfterGate1QB is AfterGate1Q under a CliffordSafe model: the idle decay
// term vanishes, leaving the depolarizing gate error.
func (n *NoiseModel) AfterGate1QB(b Backend, q int, rng *stats.RNG) {
	n.ApplyDepolarizingB(b, q, n.Gate1QError, rng)
}

// AfterGate2QB is AfterGate2Q under a CliffordSafe model.
func (n *NoiseModel) AfterGate2QB(b Backend, a, bq int, rng *stats.RNG) {
	n.ApplyDepolarizingB(b, a, n.Gate2QError, rng)
	n.ApplyDepolarizingB(b, bq, n.Gate2QError, rng)
}

// ApplyIdleDetunedB is ApplyIdleDetuned under a CliffordSafe model,
// where the detuning is necessarily zero (SampleDetunings returns nil)
// and idle decay vanishes: the echo path still applies its two X pulses
// and their depolarizing gate errors, the non-echo path does nothing.
func (n *NoiseModel) ApplyIdleDetunedB(b Backend, q int, dt float64, echo bool, rng *stats.RNG) {
	if dt <= 0 || !echo {
		return
	}
	b.X(q)
	n.ApplyDepolarizingB(b, q, n.Gate1QError, rng)
	b.X(q)
	n.ApplyDepolarizingB(b, q, n.Gate1QError, rng)
}

// NoisyMeasureB is NoisyMeasure against any Backend: one Measure draw,
// one assignment-flip draw.
func (n *NoiseModel) NoisyMeasureB(b Backend, q int, rng *stats.RNG) int {
	m := b.Measure(q, rng)
	if rng.Bool(n.ReadoutError) {
		m ^= 1
	}
	return m
}
