package quantum

import (
	"math"

	"artery/internal/stats"
)

// NoiseModel captures the device error channels of the paper's 18-Xmon
// processor (§6.1). Times are in nanoseconds to match the latency models.
//
// Channels are applied as stochastic quantum trajectories on the state
// vector: each call samples one Kraus branch with its Born probability, so
// the shot-average reproduces the density-matrix channel exactly.
//
// Concurrency contract: a NoiseModel is plain read-only data once
// configured; all randomness comes from the caller-supplied RNG, so one
// model may be shared by concurrent shot workers (each with its own RNG
// stream and state vector).
type NoiseModel struct {
	T1 float64 // relaxation time, ns (paper: 110–140 µs)
	T2 float64 // dephasing time, ns (T2 <= 2*T1)

	Gate1QError  float64 // depolarizing prob per 1q gate (paper fidelity 99.94%)
	Gate2QError  float64 // depolarizing prob per 2q gate (paper fidelity 99.7%)
	ReadoutError float64 // assignment-flip prob (paper fidelity 99.0%)

	Gate1QTime  float64 // ns, XY pulse duration (paper: 30 ns)
	Gate2QTime  float64 // ns, CZ pulse duration (paper: 60 ns)
	ReadoutTime float64 // ns, readout pulse duration (paper: 2 µs)

	// QuasiStaticSigma is the standard deviation (rad/ns) of a per-shot
	// frozen frequency detuning on each qubit — the low-frequency 1/f
	// component of dephasing. Unlike the Markovian T2 channel it is
	// refocusable: an X echo halfway through an idle window cancels it,
	// which is what makes dynamical decoupling on idle qubits effective
	// (the paper adds DD to idle qubits in its QEC experiment, §6.2).
	QuasiStaticSigma float64
}

// DeviceNoise returns the noise model calibrated to the paper's device
// parameters: T1 = 125 µs (middle of 110–140 µs), T2 = 110 µs, gate
// fidelities 99.94 % / 99.7 %, readout fidelity 99.0 %, 30 ns XY pulses,
// 60 ns CZ pulses and a 2 µs readout.
func DeviceNoise() *NoiseModel {
	return &NoiseModel{
		T1:           125_000,
		T2:           110_000,
		Gate1QError:  0.0006,
		Gate2QError:  0.003,
		ReadoutError: 0.01,
		Gate1QTime:   30,
		Gate2QTime:   60,
		ReadoutTime:  2000,
	}
}

// Ideal returns a noiseless model (for unit tests and calibration runs).
func Ideal() *NoiseModel {
	return &NoiseModel{T1: math.Inf(1), T2: math.Inf(1), Gate1QTime: 30, Gate2QTime: 60, ReadoutTime: 2000}
}

// ApplyIdle evolves qubit q through dt nanoseconds of idling: amplitude
// damping with γ = 1−exp(−dt/T1) followed by pure dephasing such that the
// total coherence decay matches exp(−dt/T2).
func (n *NoiseModel) ApplyIdle(s *State, q int, dt float64, rng *stats.RNG) {
	if dt <= 0 {
		return
	}
	if !math.IsInf(n.T1, 1) {
		gamma := 1 - math.Exp(-dt/n.T1)
		s.applyAmplitudeDamping(q, gamma, rng)
	}
	if !math.IsInf(n.T2, 1) {
		// T2 combines T1 decay and pure dephasing: 1/T2 = 1/(2 T1) + 1/Tφ.
		invTphi := 1/n.T2 - 1/(2*n.T1)
		if invTphi > 0 {
			lambda := 1 - math.Exp(-dt*invTphi)
			// Phase-flip-channel representation of dephasing.
			pFlip := lambda / 2
			if rng.Bool(pFlip) {
				s.Z(q)
			}
		}
	}
}

// applyAmplitudeDamping applies the T1 relaxation channel with decay
// probability gamma to qubit q, sampling one Kraus branch.
//
//	K0 = [[1, 0], [0, sqrt(1-γ)]]   (no jump)
//	K1 = [[0, sqrt(γ)], [0, 0]]     (relaxation |1⟩→|0⟩)
func (s *State) applyAmplitudeDamping(q int, gamma float64, rng *stats.RNG) {
	if gamma <= 0 {
		return
	}
	pJump := gamma * s.Prob1(q)
	if rng.Float64() < pJump {
		// Jump: project onto |1⟩ then flip to |0⟩ (normalized K1 action).
		s.project(q, 1)
		s.X(q)
		return
	}
	// No-jump branch: apply K0 and renormalize.
	s.Apply1Q(q, 1, 0, 0, complex(math.Sqrt(1-gamma), 0))
	norm := s.Norm()
	if norm == 0 {
		panic("quantum: zero norm after damping")
	}
	scale := complex(1/norm, 0)
	for i := range s.amp {
		s.amp[i] *= scale
	}
}

// ApplyDepolarizing applies a single-qubit depolarizing channel with
// probability p: with prob p a uniformly random Pauli error hits qubit q.
func (n *NoiseModel) ApplyDepolarizing(s *State, q int, p float64, rng *stats.RNG) {
	if p <= 0 || !rng.Bool(p) {
		return
	}
	switch rng.Intn(3) {
	case 0:
		s.X(q)
	case 1:
		s.Y(q)
	default:
		s.Z(q)
	}
}

// AfterGate1Q applies the error channels that accompany one single-qubit
// gate on qubit q: depolarizing gate error plus T1/T2 decay over the gate
// duration.
func (n *NoiseModel) AfterGate1Q(s *State, q int, rng *stats.RNG) {
	n.ApplyDepolarizing(s, q, n.Gate1QError, rng)
	n.ApplyIdle(s, q, n.Gate1QTime, rng)
}

// AfterGate2Q applies the error channels for one two-qubit gate on (a, b).
func (n *NoiseModel) AfterGate2Q(s *State, a, b int, rng *stats.RNG) {
	n.ApplyDepolarizing(s, a, n.Gate2QError, rng)
	n.ApplyDepolarizing(s, b, n.Gate2QError, rng)
	n.ApplyIdle(s, a, n.Gate2QTime, rng)
	n.ApplyIdle(s, b, n.Gate2QTime, rng)
}

// SampleDetunings draws one frozen detuning (rad/ns) per qubit for a shot.
// Returns nil when the model has no quasi-static component.
func (n *NoiseModel) SampleDetunings(qubits int, rng *stats.RNG) []float64 {
	if n.QuasiStaticSigma <= 0 {
		return nil
	}
	out := make([]float64, qubits)
	for q := range out {
		out[q] = rng.NormMeanStd(0, n.QuasiStaticSigma)
	}
	return out
}

// ApplyIdleDetuned evolves qubit q through dt nanoseconds of idling with
// the shot's frozen detuning (rad/ns): the Markovian channels of ApplyIdle
// plus a coherent RZ(detuning·dt) phase accrual.
//
// With echo=true the window is executed as an X-echo (XY2) sequence:
// idle dt/2, X, idle dt/2, X. The coherent detuning phase accrued in the
// second half cancels the first half's, while Markovian decoherence is
// unaffected — exactly the dynamical-decoupling behaviour on hardware.
func (n *NoiseModel) ApplyIdleDetuned(s *State, q int, dt, detuning float64, echo bool, rng *stats.RNG) {
	if dt <= 0 {
		return
	}
	if !echo {
		n.ApplyIdle(s, q, dt, rng)
		if detuning != 0 {
			s.RZ(q, detuning*dt)
		}
		return
	}
	// The detuning accrues +δ·dt/2 in each half in the lab frame; the X
	// pulses conjugate the first half's accrual to −δ·dt/2, so the two
	// halves cancel: X·RZ(θ)·X·RZ(θ) = RZ(−θ)·RZ(θ) = I.
	half := dt / 2
	n.ApplyIdle(s, q, half, rng)
	if detuning != 0 {
		s.RZ(q, detuning*half)
	}
	s.X(q)
	n.ApplyDepolarizing(s, q, n.Gate1QError, rng)
	n.ApplyIdle(s, q, half, rng)
	if detuning != 0 {
		s.RZ(q, detuning*half)
	}
	s.X(q)
	n.ApplyDepolarizing(s, q, n.Gate1QError, rng)
}

// NoisyMeasure measures qubit q projectively and then flips the reported
// (classical) outcome with the readout assignment-error probability.
// The collapsed quantum state is the true post-measurement state; only the
// classical record is corrupted, which is how assignment error behaves on
// hardware.
func (n *NoiseModel) NoisyMeasure(s *State, q int, rng *stats.RNG) int {
	m := s.Measure(q, rng)
	if rng.Bool(n.ReadoutError) {
		m ^= 1
	}
	return m
}
