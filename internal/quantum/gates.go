package quantum

import (
	"math"
	"math/cmplx"
)

// The device basis gates (§6.1 of the paper): RX, RY, RZ and CZ.
// RZ is "virtual" on hardware (a frame update); here it is an exact
// diagonal unitary. The named Clifford gates below are provided as
// conveniences for the workloads and tests.
//
// Every named gate routes through the specialized kernels in kernels.go, so
// the interpreted per-gate path and the compiled (possibly fused) tape path
// perform identical floating-point operations — see the bit-identity
// contract there.

// RX applies a rotation of the given angle (radians) about the X axis.
func (s *State) RX(q int, theta float64) {
	k := KernelRX(theta)
	s.ApplyKernel(q, &k)
}

// RY applies a rotation about the Y axis.
func (s *State) RY(q int, theta float64) {
	k := KernelRY(theta)
	s.ApplyKernel(q, &k)
}

// RZ applies a rotation about the Z axis.
func (s *State) RZ(q int, theta float64) {
	k := KernelRZ(theta)
	s.ApplyKernel(q, &k)
}

// KernelRX returns the compiled kernel of RX(theta).
func KernelRX(theta float64) K1 {
	c := complex(math.Cos(theta/2), 0)
	is := complex(0, -math.Sin(theta/2))
	return KGeneric(c, is, is, c)
}

// KernelRY returns the compiled kernel of RY(theta).
func KernelRY(theta float64) K1 {
	c := complex(math.Cos(theta/2), 0)
	sn := complex(math.Sin(theta/2), 0)
	return KGeneric(c, -sn, sn, c)
}

// KernelRZ returns the compiled kernel of RZ(theta).
func KernelRZ(theta float64) K1 {
	em := cmplx.Exp(complex(0, -theta/2))
	ep := cmplx.Exp(complex(0, theta/2))
	return KDiag(em, ep)
}

// KernelT returns the compiled kernel of the T gate.
func KernelT() K1 { return KPhase(cmplx.Exp(complex(0, math.Pi/4))) }

// KernelTdg returns the compiled kernel of the inverse T gate.
func KernelTdg() K1 { return KPhase(cmplx.Exp(complex(0, -math.Pi/4))) }

// X applies the Pauli-X (bit flip) gate.
func (s *State) X(q int) {
	k := KX()
	s.ApplyKernel(q, &k)
}

// Y applies the Pauli-Y gate.
func (s *State) Y(q int) {
	k := KY()
	s.ApplyKernel(q, &k)
}

// Z applies the Pauli-Z (phase flip) gate.
func (s *State) Z(q int) {
	k := KZ()
	s.ApplyKernel(q, &k)
}

// H applies the Hadamard gate.
func (s *State) H(q int) {
	k := KH()
	s.ApplyKernel(q, &k)
}

// S applies the phase gate diag(1, i).
func (s *State) S(q int) {
	k := KS()
	s.ApplyKernel(q, &k)
}

// Sdg applies the inverse phase gate diag(1, -i).
func (s *State) Sdg(q int) {
	k := KSdg()
	s.ApplyKernel(q, &k)
}

// T applies the T gate diag(1, e^{iπ/4}).
func (s *State) T(q int) {
	k := KernelT()
	s.ApplyKernel(q, &k)
}

// Tdg applies the inverse T gate.
func (s *State) Tdg(q int) {
	k := KernelTdg()
	s.ApplyKernel(q, &k)
}

// CZ applies a controlled-Z between qubits a and b (symmetric). The loop
// visits only the quarter of the register with both qubits set.
func (s *State) CZ(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: CZ with identical qubits")
	}
	lo, hi := 1<<uint(a), 1<<uint(b)
	if lo > hi {
		lo, hi = hi, lo
	}
	amp := s.amp
	n := len(amp)
	for blockA := hi; blockA < n; blockA += hi << 1 {
		for blockB := blockA + lo; blockB < blockA+hi; blockB += lo << 1 {
			for i := blockB; i < blockB+lo; i++ {
				amp[i] = -amp[i]
			}
		}
	}
}

// CNOT applies a controlled-X with the given control and target. On the
// paper's hardware CNOT is compiled as H(t)·CZ·H(t); here it is exact.
// The loop visits only the quarter of the register with control=1,
// target=0, swapping each visited amplitude with its target=1 partner.
func (s *State) CNOT(control, target int) {
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("quantum: CNOT with identical qubits")
	}
	cb, tb := 1<<uint(control), 1<<uint(target)
	lo, hi := cb, tb
	if lo > hi {
		lo, hi = hi, lo
	}
	amp := s.amp
	n := len(amp)
	// Iterate indices with control set and target clear: within blocks of
	// hi<<1 take the half where the hi bit equals (hi==cb), and within
	// blocks of lo<<1 the half where the lo bit equals (lo==cb).
	offA, offB := 0, 0
	if cb == hi {
		offA = hi
	} else {
		offB = lo
	}
	for blockA := offA; blockA < n; blockA += hi << 1 {
		for blockB := blockA + offB; blockB < blockA+hi; blockB += lo << 1 {
			for i := blockB; i < blockB+lo; i++ {
				j := i | tb
				amp[i], amp[j] = amp[j], amp[i]
			}
		}
	}
}

// SWAP exchanges the states of qubits a and b.
func (s *State) SWAP(a, b int) {
	s.CNOT(a, b)
	s.CNOT(b, a)
	s.CNOT(a, b)
}
