package quantum

import (
	"math"
	"math/cmplx"
)

// The device basis gates (§6.1 of the paper): RX, RY, RZ and CZ.
// RZ is "virtual" on hardware (a frame update); here it is an exact
// diagonal unitary. The named Clifford gates below are provided as
// conveniences for the workloads and tests.

// RX applies a rotation of the given angle (radians) about the X axis.
func (s *State) RX(q int, theta float64) {
	c := complex(math.Cos(theta/2), 0)
	is := complex(0, -math.Sin(theta/2))
	s.Apply1Q(q, c, is, is, c)
}

// RY applies a rotation about the Y axis.
func (s *State) RY(q int, theta float64) {
	c := complex(math.Cos(theta/2), 0)
	sn := complex(math.Sin(theta/2), 0)
	s.Apply1Q(q, c, -sn, sn, c)
}

// RZ applies a rotation about the Z axis.
func (s *State) RZ(q int, theta float64) {
	em := cmplx.Exp(complex(0, -theta/2))
	ep := cmplx.Exp(complex(0, theta/2))
	s.Apply1Q(q, em, 0, 0, ep)
}

// X applies the Pauli-X (bit flip) gate.
func (s *State) X(q int) { s.Apply1Q(q, 0, 1, 1, 0) }

// Y applies the Pauli-Y gate.
func (s *State) Y(q int) { s.Apply1Q(q, 0, complex(0, -1), complex(0, 1), 0) }

// Z applies the Pauli-Z (phase flip) gate.
func (s *State) Z(q int) { s.Apply1Q(q, 1, 0, 0, -1) }

// H applies the Hadamard gate.
func (s *State) H(q int) {
	h := complex(1/math.Sqrt2, 0)
	s.Apply1Q(q, h, h, h, -h)
}

// S applies the phase gate diag(1, i).
func (s *State) S(q int) { s.Apply1Q(q, 1, 0, 0, complex(0, 1)) }

// Sdg applies the inverse phase gate diag(1, -i).
func (s *State) Sdg(q int) { s.Apply1Q(q, 1, 0, 0, complex(0, -1)) }

// T applies the T gate diag(1, e^{iπ/4}).
func (s *State) T(q int) {
	s.Apply1Q(q, 1, 0, 0, cmplx.Exp(complex(0, math.Pi/4)))
}

// Tdg applies the inverse T gate.
func (s *State) Tdg(q int) {
	s.Apply1Q(q, 1, 0, 0, cmplx.Exp(complex(0, -math.Pi/4)))
}

// CZ applies a controlled-Z between qubits a and b (symmetric).
func (s *State) CZ(a, b int) {
	s.checkQubit(a)
	s.checkQubit(b)
	if a == b {
		panic("quantum: CZ with identical qubits")
	}
	mask := (1 << uint(a)) | (1 << uint(b))
	for i := range s.amp {
		if i&mask == mask {
			s.amp[i] = -s.amp[i]
		}
	}
}

// CNOT applies a controlled-X with the given control and target. On the
// paper's hardware CNOT is compiled as H(t)·CZ·H(t); here it is exact.
func (s *State) CNOT(control, target int) {
	s.checkQubit(control)
	s.checkQubit(target)
	if control == target {
		panic("quantum: CNOT with identical qubits")
	}
	cb, tb := 1<<uint(control), 1<<uint(target)
	for i := range s.amp {
		// Swap amplitude pairs where control=1, visiting target=0 only.
		if i&cb != 0 && i&tb == 0 {
			j := i | tb
			s.amp[i], s.amp[j] = s.amp[j], s.amp[i]
		}
	}
}

// SWAP exchanges the states of qubits a and b.
func (s *State) SWAP(a, b int) {
	s.CNOT(a, b)
	s.CNOT(b, a)
	s.CNOT(a, b)
}
