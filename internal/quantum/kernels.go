package quantum

import (
	"fmt"
	"math"
)

// This file implements the specialized single-qubit kernels behind the
// compiled execution path (DESIGN.md "Compiled execution").
//
// A K1 is one single-qubit gate in compiled form: a kind tag selecting a
// specialized amplitude-pair transform, plus the 2x2 matrix entries for the
// kinds that need them. The named Clifford/phase kinds replace the generic
// complex 2x2 matmul (4 complex multiplies + 2 adds per amplitude pair) with
// the minimal arithmetic of the gate — a swap for X, a negation for Z, one
// component shuffle for S, one complex multiply for T/RZ.
//
// Bit-identity contract: every execution path — the per-gate State methods
// (X, H, T, ...), ApplyKernel, and the fused ApplyKernelChain — routes each
// amplitude pair through the same per-kind pair function below. Single-qubit
// gates on the same wire act on disjoint (a0, a1) pairs, so applying a chain
// of kernels pair-by-pair in one traversal performs exactly the same
// floating-point operations, in the same order, as applying the gates one
// full traversal at a time. That is why gate fusion cannot change a single
// output bit, which the differential and fuzz tests enforce.

// K1Kind selects a specialized single-qubit amplitude-pair transform.
type K1Kind uint8

const (
	// K1Generic applies the full 2x2 complex matmul (RX, RY, arbitrary
	// unitaries).
	K1Generic K1Kind = iota
	K1X              // Pauli-X: swap the pair
	K1Y              // Pauli-Y: swap with ±i phases
	K1Z              // Pauli-Z: negate a1
	K1H              // Hadamard
	K1S              // phase gate diag(1, i)
	K1Sdg            // inverse phase gate diag(1, -i)
	K1Phase          // diag(1, U11): T, Tdg, arbitrary phase
	K1Diag           // diag(U00, U11): RZ
)

// K1 is one compiled single-qubit kernel. Only the matrix entries the kind
// reads are meaningful (see the constructors).
type K1 struct {
	Kind               K1Kind
	U00, U01, U10, U11 complex128
}

// KGeneric returns a kernel applying the full 2x2 unitary.
func KGeneric(u00, u01, u10, u11 complex128) K1 {
	return K1{Kind: K1Generic, U00: u00, U01: u01, U10: u10, U11: u11}
}

// KX returns the Pauli-X kernel.
func KX() K1 { return K1{Kind: K1X} }

// KY returns the Pauli-Y kernel.
func KY() K1 { return K1{Kind: K1Y} }

// KZ returns the Pauli-Z kernel.
func KZ() K1 { return K1{Kind: K1Z} }

// KH returns the Hadamard kernel.
func KH() K1 { return K1{Kind: K1H} }

// KS returns the diag(1, i) kernel.
func KS() K1 { return K1{Kind: K1S} }

// KSdg returns the diag(1, -i) kernel.
func KSdg() K1 { return K1{Kind: K1Sdg} }

// KPhase returns the diag(1, u11) kernel.
func KPhase(u11 complex128) K1 { return K1{Kind: K1Phase, U11: u11} }

// KDiag returns the diag(u00, u11) kernel.
func KDiag(u00, u11 complex128) K1 { return K1{Kind: K1Diag, U00: u00, U11: u11} }

// invSqrt2 is the Hadamard coefficient 1/√2, computed from the same
// untyped constant as the previous complex(1/math.Sqrt2, 0) matrix entries.
const invSqrt2 = 1 / math.Sqrt2

// Per-kind amplitude-pair transforms. These tiny functions are the single
// source of truth for the kernel arithmetic: ApplyKernel's specialized loops
// and ApplyKernelChain's per-pair dispatch both call them, so fused and
// unfused execution are bit-identical by construction.

func pairGeneric(u00, u01, u10, u11, a0, a1 complex128) (complex128, complex128) {
	return u00*a0 + u01*a1, u10*a0 + u11*a1
}

func pairX(a0, a1 complex128) (complex128, complex128) { return a1, a0 }

func pairY(a0, a1 complex128) (complex128, complex128) {
	// (-i)·a1, i·a0
	return complex(imag(a1), -real(a1)), complex(-imag(a0), real(a0))
}

func pairZ(a0, a1 complex128) (complex128, complex128) { return a0, -a1 }

func pairH(a0, a1 complex128) (complex128, complex128) {
	s, d := a0+a1, a0-a1
	return complex(invSqrt2*real(s), invSqrt2*imag(s)),
		complex(invSqrt2*real(d), invSqrt2*imag(d))
}

func pairS(a0, a1 complex128) (complex128, complex128) {
	return a0, complex(-imag(a1), real(a1))
}

func pairSdg(a0, a1 complex128) (complex128, complex128) {
	return a0, complex(imag(a1), -real(a1))
}

func pairPhase(u11, a0, a1 complex128) (complex128, complex128) {
	return a0, u11 * a1
}

func pairDiag(u00, u11, a0, a1 complex128) (complex128, complex128) {
	return u00 * a0, u11 * a1
}

// pair applies the kernel to one amplitude pair. This is the dispatch the
// fused chain uses per pair; the per-kind functions it calls are shared with
// ApplyKernel's specialized loops.
func (k *K1) pair(a0, a1 complex128) (complex128, complex128) {
	switch k.Kind {
	case K1X:
		return pairX(a0, a1)
	case K1Y:
		return pairY(a0, a1)
	case K1Z:
		return pairZ(a0, a1)
	case K1H:
		return pairH(a0, a1)
	case K1S:
		return pairS(a0, a1)
	case K1Sdg:
		return pairSdg(a0, a1)
	case K1Phase:
		return pairPhase(k.U11, a0, a1)
	case K1Diag:
		return pairDiag(k.U00, k.U11, a0, a1)
	default:
		return pairGeneric(k.U00, k.U01, k.U10, k.U11, a0, a1)
	}
}

// ApplyKernel applies one compiled kernel to qubit q. The kind switch is
// hoisted out of the amplitude loop, so each kind runs a dedicated loop
// over the register. It allocates nothing.
func (s *State) ApplyKernel(q int, k *K1) {
	s.checkQubit(q)
	bit := 1 << uint(q)
	amp := s.amp
	n := len(amp)
	step := bit << 1
	switch k.Kind {
	case K1X:
		for base := 0; base < n; base += step {
			for i := base; i < base+bit; i++ {
				j := i | bit
				amp[i], amp[j] = pairX(amp[i], amp[j])
			}
		}
	case K1Y:
		for base := 0; base < n; base += step {
			for i := base; i < base+bit; i++ {
				j := i | bit
				amp[i], amp[j] = pairY(amp[i], amp[j])
			}
		}
	case K1Z:
		for base := 0; base < n; base += step {
			for i := base; i < base+bit; i++ {
				j := i | bit
				amp[i], amp[j] = pairZ(amp[i], amp[j])
			}
		}
	case K1H:
		for base := 0; base < n; base += step {
			for i := base; i < base+bit; i++ {
				j := i | bit
				amp[i], amp[j] = pairH(amp[i], amp[j])
			}
		}
	case K1S:
		for base := 0; base < n; base += step {
			for i := base; i < base+bit; i++ {
				j := i | bit
				amp[i], amp[j] = pairS(amp[i], amp[j])
			}
		}
	case K1Sdg:
		for base := 0; base < n; base += step {
			for i := base; i < base+bit; i++ {
				j := i | bit
				amp[i], amp[j] = pairSdg(amp[i], amp[j])
			}
		}
	case K1Phase:
		u11 := k.U11
		for base := 0; base < n; base += step {
			for i := base; i < base+bit; i++ {
				j := i | bit
				amp[i], amp[j] = pairPhase(u11, amp[i], amp[j])
			}
		}
	case K1Diag:
		u00, u11 := k.U00, k.U11
		for base := 0; base < n; base += step {
			for i := base; i < base+bit; i++ {
				j := i | bit
				amp[i], amp[j] = pairDiag(u00, u11, amp[i], amp[j])
			}
		}
	default:
		u00, u01, u10, u11 := k.U00, k.U01, k.U10, k.U11
		for base := 0; base < n; base += step {
			for i := base; i < base+bit; i++ {
				j := i | bit
				amp[i], amp[j] = pairGeneric(u00, u01, u10, u11, amp[i], amp[j])
			}
		}
	}
}

// chainFuseMaxAmps bounds the register size for the single-traversal chain
// replay. On larger registers the per-pair kind dispatch costs more than
// the per-gate traversals it saves (the whole state sits in L1 anyway), so
// the chain falls back to sequential specialized loops — measured crossover
// at 3 qubits on amd64 (BenchmarkFusedVsUnfused). Both strategies perform
// identical floating-point operations in identical order, so the choice is
// invisible to every output bit.
const chainFuseMaxAmps = 4

// ApplyKernelChain applies a run of kernels targeting the same qubit.
// On small registers (the engine's feedback workloads run 2-qubit ideal
// states) it uses one traversal: each amplitude pair is loaded once, pushed
// through every kernel in order, and stored once, eliminating the per-gate
// call and loop-setup overhead. Because same-qubit gates act on disjoint
// pairs, the arithmetic is identical — operation for operation — to
// applying the kernels one at a time, so fused and sequential replay are
// bit-identical (see the contract at the top of this file). It allocates
// nothing.
func (s *State) ApplyKernelChain(q int, ks []K1) {
	if len(ks) == 1 {
		s.ApplyKernel(q, &ks[0])
		return
	}
	s.checkQubit(q)
	if len(ks) == 0 {
		return
	}
	amp := s.amp
	n := len(amp)
	if n > chainFuseMaxAmps {
		for t := range ks {
			s.ApplyKernel(q, &ks[t])
		}
		return
	}
	bit := 1 << uint(q)
	step := bit << 1
	for base := 0; base < n; base += step {
		for i := base; i < base+bit; i++ {
			j := i | bit
			a0, a1 := amp[i], amp[j]
			for t := range ks {
				a0, a1 = ks[t].pair(a0, a1)
			}
			amp[i], amp[j] = a0, a1
		}
	}
}

// String returns a short human-readable kernel name for diagnostics.
func (k K1) String() string {
	switch k.Kind {
	case K1X:
		return "X"
	case K1Y:
		return "Y"
	case K1Z:
		return "Z"
	case K1H:
		return "H"
	case K1S:
		return "S"
	case K1Sdg:
		return "Sdg"
	case K1Phase:
		return fmt.Sprintf("Phase(%v)", k.U11)
	case K1Diag:
		return fmt.Sprintf("Diag(%v,%v)", k.U00, k.U11)
	default:
		return "Generic"
	}
}
