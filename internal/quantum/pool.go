package quantum

import (
	"fmt"
	"sync"
)

// StatePool recycles state-vector buffers of one register width across
// Monte-Carlo shots. A 16-qubit register is a 1 MiB amplitude slice; the
// engine's hot loop previously allocated two of them (noisy + ideal
// reference) per shot, which dominated allocation churn. Get returns a
// register re-initialized to |0...0⟩, so pooled states are
// indistinguishable from fresh NewState registers.
//
// Concurrency contract: StatePool is safe for concurrent Get/Put from
// multiple shot workers. The *State values themselves are not — each
// belongs to exactly one worker between Get and Put.
type StatePool struct {
	n    int
	pool sync.Pool
}

// NewStatePool returns a pool of n-qubit registers. It panics for n
// outside NewState's supported range.
func NewStatePool(n int) *StatePool {
	if n < 1 || n > 24 {
		panic(fmt.Sprintf("quantum: unsupported qubit count %d", n))
	}
	p := &StatePool{n: n}
	p.pool.New = func() interface{} { return NewState(n) }
	return p
}

// NumQubits returns the register width the pool serves.
func (p *StatePool) NumQubits() int { return p.n }

// Get returns a register initialized to |0...0⟩, reusing a returned
// buffer when one is available.
func (p *StatePool) Get() *State {
	s := p.pool.Get().(*State)
	s.resetZero()
	return s
}

// Put returns a register to the pool. The caller must not touch s
// afterwards.
func (p *StatePool) Put(s *State) {
	if s == nil {
		return
	}
	if s.n != p.n {
		panic(fmt.Sprintf("quantum: returning %d-qubit state to %d-qubit pool", s.n, p.n))
	}
	p.pool.Put(s)
}

// resetZero re-initializes the register to |0...0⟩ in place.
func (s *State) resetZero() {
	for i := range s.amp {
		s.amp[i] = 0
	}
	s.amp[0] = 1
}
