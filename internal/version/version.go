// Package version reports the build identity of the repository's
// binaries: the module version and the VCS revision stamped by the go
// tool, via runtime/debug.ReadBuildInfo. Every cmd exposes it behind a
// -version flag.
package version

import (
	"fmt"
	"runtime/debug"
)

// String renders "module-version (revision, go-version)". Binaries built
// outside a module or VCS checkout degrade gracefully to whatever fields
// the build stamped.
func String() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "(devel)"
	}
	v := info.Main.Version
	if v == "" {
		v = "(devel)"
	}
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return fmt.Sprintf("%s (%s)", v, info.GoVersion)
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return fmt.Sprintf("%s (%s, %s)", v, rev, info.GoVersion)
}
