package stabilizer

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"artery/internal/quantum"
	"artery/internal/stats"
)

// Property tests for the tableau representation itself (the backend
// adapter is covered by the engine-level differential suite in
// internal/core): the 2n rows must remain a valid symplectic basis
// under any Clifford evolution, the deterministic-vs-random measurement
// classification must match the analytic Born probability, and the
// backend pool must be race-clean under concurrent shot workers.

// symplecticProduct reports whether rows a and b of t anticommute
// (1) or commute (0): the parity of Σ_q x_a z_b ⊕ z_a x_b.
func symplecticProduct(t *Tableau, a, b int) int {
	p := uint64(0)
	for w := 0; w < t.words; w++ {
		p ^= t.x[a][w]&t.z[b][w] ^ t.z[a][w]&t.x[b][w]
	}
	return popcount(p) & 1
}

// scrambleClifford applies steps random Clifford operations — the full
// gate alphabet plus mid-circuit measurement, reset and projection — to
// the tableau.
func scrambleClifford(t *Tableau, steps int, rng *stats.RNG, dynamic bool) {
	n := t.NumQubits()
	for s := 0; s < steps; s++ {
		q := rng.Intn(n)
		q2 := (q + 1 + rng.Intn(n-1)) % n
		kinds := 9
		if dynamic {
			kinds = 12
		}
		switch rng.Intn(kinds) {
		case 0:
			t.H(q)
		case 1:
			t.S(q)
		case 2:
			t.Sdg(q)
		case 3:
			t.X(q)
		case 4:
			t.Y(q)
		case 5:
			t.Z(q)
		case 6:
			t.CNOT(q, q2)
		case 7:
			t.CZ(q, q2)
		case 8:
			t.SWAP(q, q2)
		case 9:
			t.Measure(q, rng)
		case 10:
			t.Reset(q, rng)
		default:
			if _, det := t.MeasureDeterministic(q); !det {
				t.Project(q, rng.Intn(2))
			}
		}
	}
}

// checkSymplectic asserts the tableau's group-theoretic invariant: the
// destabilizer/stabilizer rows form a symplectic basis of the Pauli
// group — stabilizers pairwise commute, destabilizers pairwise commute,
// and destabilizer i anticommutes with stabilizer j exactly when i = j.
func checkSymplectic(t *testing.T, tb *Tableau, label string) {
	t.Helper()
	n := tb.NumQubits()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			if symplecticProduct(tb, n+i, n+j) != 0 {
				t.Fatalf("%s: stabilizers %d and %d anticommute", label, i, j)
			}
			if symplecticProduct(tb, i, j) != 0 {
				t.Fatalf("%s: destabilizers %d and %d anticommute", label, i, j)
			}
			want := 0
			if i == j {
				want = 1
			}
			if got := symplecticProduct(tb, i, n+j); got != want {
				t.Fatalf("%s: destabilizer %d vs stabilizer %d: symplectic product %d, want %d", label, i, j, got, want)
			}
		}
	}
}

// TestSymplecticInvariantUnderRandomCliffords scrambles tableaus with
// random unitary gate sequences and checks the symplectic basis
// invariant survives — on single-word (n ≤ 64) and multi-word rows.
func TestSymplecticInvariantUnderRandomCliffords(t *testing.T) {
	for _, n := range []int{3, 9, 70} {
		for seed := uint64(1); seed <= 8; seed++ {
			rng := stats.NewRNG(seed * 1000003)
			tb := New(n)
			scrambleClifford(tb, 25*n, rng, false)
			checkSymplectic(t, tb, "unitary scramble")
		}
	}
}

// TestSymplecticInvariantUnderMeasurement extends the scramble alphabet
// with measurement, reset and projection — the collapse path rewrites
// whole rows and is where an incorrect rowsum would break the basis.
func TestSymplecticInvariantUnderMeasurement(t *testing.T) {
	for _, n := range []int{4, 33} {
		for seed := uint64(1); seed <= 8; seed++ {
			rng := stats.NewRNG(seed * 7919)
			tb := New(n)
			scrambleClifford(tb, 40*n, rng, true)
			checkSymplectic(t, tb, "dynamic scramble")
		}
	}
}

// TestClassificationMatchesBornRule cross-checks the tableau's
// deterministic-vs-random measurement classification against the state
// vector's analytic Born probability over random Clifford circuits
// drawn from the full alphabet (including Sdg/Y/SWAP, which the older
// agreement test does not exercise).
func TestClassificationMatchesBornRule(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		const n = 5
		tb := New(n)
		sv := quantum.NewState(n)
		for step := 0; step < 40; step++ {
			q := rng.Intn(n)
			q2 := (q + 1 + rng.Intn(n-1)) % n
			switch rng.Intn(9) {
			case 0:
				tb.H(q)
				sv.H(q)
			case 1:
				tb.S(q)
				sv.S(q)
			case 2:
				tb.Sdg(q)
				sv.Sdg(q)
			case 3:
				tb.X(q)
				sv.X(q)
			case 4:
				tb.Y(q)
				sv.Y(q)
			case 5:
				tb.Z(q)
				sv.Z(q)
			case 6:
				tb.CNOT(q, q2)
				sv.CNOT(q, q2)
			case 7:
				tb.CZ(q, q2)
				sv.CZ(q, q2)
			default:
				tb.SWAP(q, q2)
				sv.SWAP(q, q2)
			}
		}
		for q := 0; q < n; q++ {
			m, det := tb.MeasureDeterministic(q)
			p1 := sv.Prob1(q)
			if det && math.Abs(p1-float64(m)) > 1e-9 {
				return false
			}
			if !det && math.Abs(p1-0.5) > 1e-9 {
				return false
			}
			// Prob1 must agree with the classification it is derived from.
			if tp := tb.Prob1(q); math.Abs(tp-p1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestProjectMatchesPostMeasurementState checks Project(q, m) leaves the
// tableau in the same state Measure would after sampling m: the qubit
// reads back deterministically as m, and the symplectic basis holds.
func TestProjectMatchesPostMeasurementState(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 40; trial++ {
		const n = 4
		tb := New(n)
		scrambleClifford(tb, 30, rng, false)
		q := rng.Intn(n)
		if _, det := tb.MeasureDeterministic(q); det {
			continue
		}
		want := rng.Intn(2)
		tb.Project(q, want)
		if m, det := tb.MeasureDeterministic(q); !det || m != want {
			t.Fatalf("after Project(%d, %d): det=%v m=%d", q, want, det, m)
		}
		checkSymplectic(t, tb, "post-Project")
	}
}

// TestProjectZeroProbabilityPanics locks the contract that projecting a
// pinned qubit onto the impossible outcome is a programming error.
func TestProjectZeroProbabilityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Project onto zero-probability outcome did not panic")
		}
	}()
	tb := New(2)
	tb.Project(0, 1) // |00⟩ cannot read 1
}

// TestPoolConcurrentShots runs many goroutines through one Pool, each
// executing a small dynamic circuit — the shot-worker access pattern.
// Run under -race (make ci), this locks the pool's concurrency contract.
func TestPoolConcurrentShots(t *testing.T) {
	const n = 20
	pool := NewPool(n)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stats.NewRNG(uint64(w + 1))
			for shot := 0; shot < 50; shot++ {
				s := pool.Get()
				s.H(0)
				for q := 1; q < n; q++ {
					s.CNOT(q-1, q)
				}
				m0 := s.Measure(0, rng)
				mn := s.Measure(n-1, rng)
				if m0 != mn {
					t.Errorf("GHZ correlation broken on pooled tableau: %d vs %d", m0, mn)
				}
				pool.Put(s)
			}
		}(w)
	}
	wg.Wait()
}

// TestPoolGetIsFresh guards the ResetAll path: a dirty returned tableau
// must come back indistinguishable from a new one.
func TestPoolGetIsFresh(t *testing.T) {
	pool := NewPool(6)
	rng := stats.NewRNG(5)
	s := pool.Get()
	scrambleClifford(s.Tableau, 60, rng, true)
	pool.Put(s)
	s2 := pool.Get()
	for q := 0; q < 6; q++ {
		if m, det := s2.MeasureDeterministic(q); !det || m != 0 {
			t.Fatalf("recycled tableau qubit %d not |0⟩ (det=%v m=%d)", q, det, m)
		}
	}
	checkSymplectic(t, s2.Tableau, "recycled")
}
