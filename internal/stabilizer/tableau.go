// Package stabilizer implements an Aaronson–Gottesman CHP tableau simulator
// for Clifford circuits with mid-circuit measurement and feedback.
//
// It is the substrate that replaces Stim/Qiskit for the paper's quantum
// error-correction experiments (§6.2): surface-code syndrome-extraction
// circuits are pure Clifford + measurement, and the tableau representation
// simulates hundreds of qubits exactly where a state vector could not.
// Rows are bit-packed into uint64 words, so a d=15 rotated surface code
// (449 qubits) measures in microseconds.
package stabilizer

import (
	"fmt"

	"artery/internal/stats"
)

// Tableau is the stabilizer state of an n-qubit register in the
// Aaronson–Gottesman representation: rows 0..n-1 are destabilizer
// generators, rows n..2n-1 are stabilizer generators, plus one scratch row
// used during deterministic measurement.
type Tableau struct {
	n     int
	words int        // words per row half (x or z block)
	x     [][]uint64 // x[i] = X-bits of row i
	z     [][]uint64 // z[i] = Z-bits of row i
	r     []uint8    // r[i] = sign bit of row i (0 => +1, 1 => -1)
}

// New returns an n-qubit tableau initialized to |0...0⟩
// (destabilizers X_i, stabilizers Z_i). It panics for n < 1.
func New(n int) *Tableau {
	if n < 1 {
		panic("stabilizer: qubit count must be positive")
	}
	words := (n + 63) / 64
	rows := 2*n + 1
	t := &Tableau{
		n:     n,
		words: words,
		x:     make([][]uint64, rows),
		z:     make([][]uint64, rows),
		r:     make([]uint8, rows),
	}
	for i := range t.x {
		t.x[i] = make([]uint64, words)
		t.z[i] = make([]uint64, words)
	}
	for q := 0; q < n; q++ {
		t.x[q][q/64] |= 1 << uint(q%64)   // destabilizer X_q
		t.z[n+q][q/64] |= 1 << uint(q%64) // stabilizer Z_q
	}
	return t
}

// NumQubits returns the register width.
func (t *Tableau) NumQubits() int { return t.n }

// Clone returns a deep copy of the tableau.
func (t *Tableau) Clone() *Tableau {
	c := &Tableau{n: t.n, words: t.words,
		x: make([][]uint64, len(t.x)),
		z: make([][]uint64, len(t.z)),
		r: append([]uint8(nil), t.r...),
	}
	for i := range t.x {
		c.x[i] = append([]uint64(nil), t.x[i]...)
		c.z[i] = append([]uint64(nil), t.z[i]...)
	}
	return c
}

func (t *Tableau) checkQubit(q int) {
	if q < 0 || q >= t.n {
		panic(fmt.Sprintf("stabilizer: qubit %d out of range [0,%d)", q, t.n))
	}
}

func (t *Tableau) xbit(i, q int) uint64 { return (t.x[i][q/64] >> uint(q%64)) & 1 }
func (t *Tableau) zbit(i, q int) uint64 { return (t.z[i][q/64] >> uint(q%64)) & 1 }

// H applies the Hadamard gate to qubit q.
func (t *Tableau) H(q int) {
	t.checkQubit(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.x[i][w]&b, t.z[i][w]&b
		if xi != 0 && zi != 0 {
			t.r[i] ^= 1
		}
		// Swap the x and z bits.
		if (xi != 0) != (zi != 0) {
			t.x[i][w] ^= b
			t.z[i][w] ^= b
		}
	}
}

// S applies the phase gate diag(1, i) to qubit q.
func (t *Tableau) S(q int) {
	t.checkQubit(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		xi, zi := t.x[i][w]&b, t.z[i][w]&b
		if xi != 0 && zi != 0 {
			t.r[i] ^= 1
		}
		if xi != 0 {
			t.z[i][w] ^= b
		}
	}
}

// Sdg applies the inverse phase gate (S³).
func (t *Tableau) Sdg(q int) { t.S(q); t.S(q); t.S(q) }

// CNOT applies a controlled-X from control c to target q.
func (t *Tableau) CNOT(c, q int) {
	t.checkQubit(c)
	t.checkQubit(q)
	if c == q {
		panic("stabilizer: CNOT with identical qubits")
	}
	cw, cb := c/64, uint64(1)<<uint(c%64)
	qw, qb := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		xc := t.x[i][cw]&cb != 0
		zc := t.z[i][cw]&cb != 0
		xt := t.x[i][qw]&qb != 0
		zt := t.z[i][qw]&qb != 0
		if xc && zt && (xt == zc) {
			t.r[i] ^= 1
		}
		if xc {
			t.x[i][qw] ^= qb
		}
		if zt {
			t.z[i][cw] ^= cb
		}
	}
}

// CZ applies a controlled-Z between a and b (compiled as H(b)·CNOT·H(b),
// matching the hardware decomposition).
func (t *Tableau) CZ(a, b int) {
	t.H(b)
	t.CNOT(a, b)
	t.H(b)
}

// X applies the Pauli-X gate to qubit q.
func (t *Tableau) X(q int) {
	t.checkQubit(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if t.z[i][w]&b != 0 {
			t.r[i] ^= 1
		}
	}
}

// Z applies the Pauli-Z gate to qubit q.
func (t *Tableau) Z(q int) {
	t.checkQubit(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if t.x[i][w]&b != 0 {
			t.r[i] ^= 1
		}
	}
}

// Y applies the Pauli-Y gate to qubit q.
func (t *Tableau) Y(q int) {
	t.checkQubit(q)
	w, b := q/64, uint64(1)<<uint(q%64)
	for i := 0; i < 2*t.n; i++ {
		if (t.x[i][w]&b != 0) != (t.z[i][w]&b != 0) {
			t.r[i] ^= 1
		}
	}
}

// rowsum multiplies row h by row i (h <- h * i), tracking the sign via the
// Aaronson–Gottesman g-function, computed word-parallel with popcounts.
func (t *Tableau) rowsum(h, i int) {
	g := 0
	for w := 0; w < t.words; w++ {
		x1, z1 := t.x[i][w], t.z[i][w]
		x2, z2 := t.x[h][w], t.z[h][w]
		// X on row i (x1=1,z1=0): +1 if x2&z2, -1 if ~x2&z2.
		xCase := x1 &^ z1
		g += popcount(xCase & x2 & z2)
		g -= popcount(xCase & ^x2 & z2)
		// Y on row i (x1=1,z1=1): +1 if z2&~x2, -1 if x2&~z2.
		yCase := x1 & z1
		g += popcount(yCase & z2 & ^x2)
		g -= popcount(yCase & x2 & ^z2)
		// Z on row i (x1=0,z1=1): +1 if x2&~z2, -1 if x2&z2.
		zCase := z1 &^ x1
		g += popcount(zCase & x2 & ^z2)
		g -= popcount(zCase & x2 & z2)
	}
	tot := 2*int(t.r[h]) + 2*int(t.r[i]) + g
	tot %= 4
	if tot < 0 {
		tot += 4
	}
	switch {
	case tot == 0:
		t.r[h] = 0
	case tot == 2:
		t.r[h] = 1
	case h < t.n:
		// Destabilizer row h anticommutes with row i, so the product is
		// ±i·P — a genuinely imaginary phase. Destabilizer signs are
		// "don't care" bits in the Aaronson–Gottesman scheme (nothing
		// ever reads them: outcomes come from stabilizer and scratch
		// rows, whose products stay real), so record an arbitrary bit
		// rather than rejecting the state. Measurement collapse hits
		// this case whenever S/Sdg gates have rotated a destabilizer
		// into the Y plane; H/CNOT-only (CSS) circuits never do.
		t.r[h] = uint8(tot & 1)
	default:
		panic("stabilizer: rowsum produced imaginary phase (corrupt tableau)")
	}
	for w := 0; w < t.words; w++ {
		t.x[h][w] ^= t.x[i][w]
		t.z[h][w] ^= t.z[i][w]
	}
}

func popcount(x uint64) int {
	// Kernighan-free SWAR popcount.
	x = x - ((x >> 1) & 0x5555555555555555)
	x = (x & 0x3333333333333333) + ((x >> 2) & 0x3333333333333333)
	x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0f
	return int((x * 0x0101010101010101) >> 56)
}

// Measure performs a projective Z measurement of qubit q and returns the
// outcome. Random outcomes are drawn from rng.
func (t *Tableau) Measure(q int, rng *stats.RNG) int {
	t.checkQubit(q)
	n := t.n
	// Look for a stabilizer row with an X component on q (random outcome).
	p := -1
	for i := n; i < 2*n; i++ {
		if t.xbit(i, q) == 1 {
			p = i
			break
		}
	}
	if p >= 0 {
		for i := 0; i < 2*n; i++ {
			if i != p && t.xbit(i, q) == 1 {
				t.rowsum(i, p)
			}
		}
		// Destabilizer p-n becomes the old stabilizer row p.
		copy(t.x[p-n], t.x[p])
		copy(t.z[p-n], t.z[p])
		t.r[p-n] = t.r[p]
		// Row p becomes ±Z_q with a random sign.
		for w := 0; w < t.words; w++ {
			t.x[p][w] = 0
			t.z[p][w] = 0
		}
		t.z[p][q/64] |= 1 << uint(q%64)
		if rng.Bool(0.5) {
			t.r[p] = 1
		} else {
			t.r[p] = 0
		}
		return int(t.r[p])
	}
	// Deterministic outcome: accumulate into the scratch row.
	sc := 2 * n
	for w := 0; w < t.words; w++ {
		t.x[sc][w] = 0
		t.z[sc][w] = 0
	}
	t.r[sc] = 0
	for i := 0; i < n; i++ {
		if t.xbit(i, q) == 1 {
			t.rowsum(sc, i+n)
		}
	}
	return int(t.r[sc])
}

// MeasureDeterministic reports whether measuring q has a deterministic
// outcome, and if so which one, without disturbing the state.
func (t *Tableau) MeasureDeterministic(q int) (outcome int, deterministic bool) {
	t.checkQubit(q)
	for i := t.n; i < 2*t.n; i++ {
		if t.xbit(i, q) == 1 {
			return 0, false
		}
	}
	sc := 2 * t.n
	for w := 0; w < t.words; w++ {
		t.x[sc][w] = 0
		t.z[sc][w] = 0
	}
	t.r[sc] = 0
	for i := 0; i < t.n; i++ {
		if t.xbit(i, q) == 1 {
			t.rowsum(sc, i+t.n)
		}
	}
	return int(t.r[sc]), true
}

// Reset measures qubit q and flips it to |0⟩ if the outcome was 1,
// returning the pre-reset outcome.
func (t *Tableau) Reset(q int, rng *stats.RNG) int {
	m := t.Measure(q, rng)
	if m == 1 {
		t.X(q)
	}
	return m
}

// SWAP exchanges qubits a and b via three CNOTs, matching the
// state-vector decomposition (exact for tableaus — no phase subtlety).
func (t *Tableau) SWAP(a, b int) {
	t.CNOT(a, b)
	t.CNOT(b, a)
	t.CNOT(a, b)
}

// Prob1 returns the Born probability of measuring 1 on qubit q: exactly
// 0.5 when the outcome is random (some stabilizer anticommutes with Z_q),
// else exactly 0 or 1.
func (t *Tableau) Prob1(q int) float64 {
	out, det := t.MeasureDeterministic(q)
	if !det {
		return 0.5
	}
	return float64(out)
}

// Project collapses qubit q onto the given outcome without sampling,
// mirroring (*quantum.State).Project. It panics if the outcome has zero
// probability (a deterministic measurement that disagrees).
func (t *Tableau) Project(q, outcome int) {
	t.checkQubit(q)
	if outcome != 0 && outcome != 1 {
		panic("stabilizer: Project outcome must be 0 or 1")
	}
	n := t.n
	p := -1
	for i := n; i < 2*n; i++ {
		if t.xbit(i, q) == 1 {
			p = i
			break
		}
	}
	if p < 0 {
		// Deterministic: nothing to collapse, but the demanded outcome
		// must be the one the state already pins.
		got, _ := t.MeasureDeterministic(q)
		if got != outcome {
			panic("stabilizer: projection onto zero-probability outcome")
		}
		return
	}
	for i := 0; i < 2*n; i++ {
		if i != p && t.xbit(i, q) == 1 {
			t.rowsum(i, p)
		}
	}
	copy(t.x[p-n], t.x[p])
	copy(t.z[p-n], t.z[p])
	t.r[p-n] = t.r[p]
	for w := 0; w < t.words; w++ {
		t.x[p][w] = 0
		t.z[p][w] = 0
	}
	t.z[p][q/64] |= 1 << uint(q%64)
	t.r[p] = uint8(outcome)
}

// ResetAll re-initializes the tableau to |0...0⟩ in place, reusing its
// row storage — the pooling analogue of (*quantum.State).resetZero.
func (t *Tableau) ResetAll() {
	for i := range t.x {
		for w := 0; w < t.words; w++ {
			t.x[i][w] = 0
			t.z[i][w] = 0
		}
		t.r[i] = 0
	}
	for q := 0; q < t.n; q++ {
		t.x[q][q/64] |= 1 << uint(q%64)
		t.z[t.n+q][q/64] |= 1 << uint(q%64)
	}
}
