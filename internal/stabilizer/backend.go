// Backend adapter: Sim wraps a Tableau behind the quantum.Backend
// contract so the compiled op-tape engine can execute Clifford circuits
// on the tableau representation. The adapter exists for one reason —
// the draw contract. The raw Tableau.Measure consumes randomness only
// for random outcomes (zero draws when the outcome is pinned), while
// quantum.Backend requires exactly one rng.Float64() per Measure so the
// state-vector and stabilizer backends consume identical per-shot RNG
// streams and runs stay bit-identical when the backend is swapped.
package stabilizer

import (
	"fmt"
	"sync"

	"artery/internal/quantum"
	"artery/internal/stats"
)

// Sim is a Tableau that satisfies quantum.Backend. The embedded tableau
// supplies the Clifford gates and Prob1/Project; Sim overrides Measure
// and Reset to honor the one-draw-per-measurement contract.
type Sim struct {
	*Tableau
}

var _ quantum.Backend = Sim{}

// NewSim returns an n-qubit |0...0⟩ tableau backend.
func NewSim(n int) Sim { return Sim{New(n)} }

// Measure projectively measures qubit q, consuming exactly one
// rng.Float64() draw: the outcome is 1 iff the draw is below Prob1(q)
// (0, 0.5 or 1 on a tableau), exactly the state-vector convention.
func (s Sim) Measure(q int, rng *stats.RNG) int {
	out, det := s.Tableau.MeasureDeterministic(q)
	u := rng.Float64()
	if det {
		// The draw is burned for stream parity even though the outcome
		// was pinned (u < 0 never, u < 1 always — same as a state
		// vector with p1 exactly 0 or 1).
		return out
	}
	m := 0
	if u < 0.5 {
		m = 1
	}
	s.Tableau.Project(q, m)
	return m
}

// Reset measures q (one draw) and flips it back to |0⟩ on outcome 1,
// returning the pre-reset outcome.
func (s Sim) Reset(q int, rng *stats.RNG) int {
	m := s.Measure(q, rng)
	if m == 1 {
		s.Tableau.X(q)
	}
	return m
}

// Pool recycles tableau backends of one register width across
// Monte-Carlo shots, the tableau analogue of quantum.StatePool: a d=15
// surface-code register (449 qubits) is a ~500 KiB tableau, far too
// much to allocate per shot. Get returns a register re-initialized to
// |0...0⟩, indistinguishable from a fresh NewSim.
//
// Concurrency contract: Pool is safe for concurrent Get/Put from
// multiple shot workers. The Sim values themselves are not — each
// belongs to exactly one worker between Get and Put.
type Pool struct {
	n    int
	pool sync.Pool
}

// NewPool returns a pool of n-qubit tableau backends.
func NewPool(n int) *Pool {
	if n < 1 {
		panic("stabilizer: qubit count must be positive")
	}
	p := &Pool{n: n}
	p.pool.New = func() interface{} { return New(n) }
	return p
}

// NumQubits returns the register width the pool serves.
func (p *Pool) NumQubits() int { return p.n }

// Get returns a tableau backend initialized to |0...0⟩, reusing a
// returned register when one is available.
func (p *Pool) Get() Sim {
	t := p.pool.Get().(*Tableau)
	t.ResetAll()
	return Sim{t}
}

// Put returns a backend to the pool. The caller must not touch it
// afterwards.
func (p *Pool) Put(s Sim) {
	if s.Tableau == nil {
		return
	}
	if s.Tableau.n != p.n {
		panic(fmt.Sprintf("stabilizer: returning %d-qubit tableau to %d-qubit pool", s.Tableau.n, p.n))
	}
	p.pool.Put(s.Tableau)
}
