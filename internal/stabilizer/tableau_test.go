package stabilizer

import (
	"math"
	"testing"
	"testing/quick"

	"artery/internal/quantum"
	"artery/internal/stats"
)

func TestNewMeasuresZero(t *testing.T) {
	rng := stats.NewRNG(1)
	tb := New(4)
	for q := 0; q < 4; q++ {
		if m := tb.Measure(q, rng); m != 0 {
			t.Fatalf("fresh qubit %d measured %d", q, m)
		}
	}
}

func TestXThenMeasure(t *testing.T) {
	rng := stats.NewRNG(2)
	tb := New(3)
	tb.X(1)
	if m := tb.Measure(1, rng); m != 1 {
		t.Fatalf("X|0⟩ measured %d", m)
	}
	if m := tb.Measure(0, rng); m != 0 {
		t.Fatalf("untouched qubit measured %d", m)
	}
}

func TestHGivesRandomOutcomes(t *testing.T) {
	rng := stats.NewRNG(3)
	ones := 0
	const shots = 10000
	for i := 0; i < shots; i++ {
		tb := New(1)
		tb.H(0)
		ones += tb.Measure(0, rng)
	}
	frac := float64(ones) / shots
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("H outcome frequency %v, want ~0.5", frac)
	}
}

func TestMeasurementRepeatable(t *testing.T) {
	rng := stats.NewRNG(4)
	for i := 0; i < 50; i++ {
		tb := New(1)
		tb.H(0)
		m1 := tb.Measure(0, rng)
		m2 := tb.Measure(0, rng)
		if m1 != m2 {
			t.Fatalf("repeated measurement differs: %d then %d", m1, m2)
		}
	}
}

func TestBellCorrelations(t *testing.T) {
	rng := stats.NewRNG(5)
	for i := 0; i < 200; i++ {
		tb := New(2)
		tb.H(0)
		tb.CNOT(0, 1)
		m0 := tb.Measure(0, rng)
		m1 := tb.Measure(1, rng)
		if m0 != m1 {
			t.Fatalf("Bell pair outcomes disagree: %d %d", m0, m1)
		}
	}
}

func TestGHZ(t *testing.T) {
	rng := stats.NewRNG(6)
	sawOne, sawZero := false, false
	for i := 0; i < 200; i++ {
		tb := New(5)
		tb.H(0)
		for q := 1; q < 5; q++ {
			tb.CNOT(0, q)
		}
		m := tb.Measure(0, rng)
		for q := 1; q < 5; q++ {
			if tb.Measure(q, rng) != m {
				t.Fatal("GHZ outcomes not all equal")
			}
		}
		if m == 1 {
			sawOne = true
		} else {
			sawZero = true
		}
	}
	if !sawOne || !sawZero {
		t.Fatal("GHZ never produced both branches")
	}
}

func TestCZViaStatePreparation(t *testing.T) {
	// CZ between |+⟩|+⟩ then H on the second qubit yields a Bell-type
	// correlation: measuring q0 in X basis and q1 in Z basis agree.
	rng := stats.NewRNG(7)
	for i := 0; i < 100; i++ {
		tb := New(2)
		tb.H(0)
		tb.H(1)
		tb.CZ(0, 1)
		tb.H(1) // now equivalent to CNOT(0,1) on |+0⟩ => Bell
		tb.H(0)
		// State is (|00⟩+|11⟩)/√2 rotated... verify perfect correlation in
		// the basis where it exists by checking repeatability instead:
		m0 := tb.Measure(0, rng)
		m0b := tb.Measure(0, rng)
		if m0 != m0b {
			t.Fatal("collapse not stable under CZ circuit")
		}
	}
}

func TestZPhaseVisibleInXBasis(t *testing.T) {
	// H Z H = X, deterministically flipping |0⟩.
	rng := stats.NewRNG(8)
	tb := New(1)
	tb.H(0)
	tb.Z(0)
	tb.H(0)
	if m := tb.Measure(0, rng); m != 1 {
		t.Fatalf("HZH|0⟩ measured %d, want 1", m)
	}
}

func TestYGate(t *testing.T) {
	rng := stats.NewRNG(9)
	tb := New(1)
	tb.Y(0) // Y|0⟩ = i|1⟩
	if m := tb.Measure(0, rng); m != 1 {
		t.Fatalf("Y|0⟩ measured %d, want 1", m)
	}
	// S² = Z: HS²H|0⟩ = X|0⟩ = |1⟩.
	tb2 := New(1)
	tb2.H(0)
	tb2.S(0)
	tb2.S(0)
	tb2.H(0)
	if m := tb2.Measure(0, rng); m != 1 {
		t.Fatalf("HS²H|0⟩ measured %d, want 1", m)
	}
}

func TestSdgInvertsS(t *testing.T) {
	rng := stats.NewRNG(10)
	tb := New(1)
	tb.H(0)
	tb.S(0)
	tb.Sdg(0)
	tb.H(0)
	if m := tb.Measure(0, rng); m != 0 {
		t.Fatalf("H S Sdg H |0⟩ measured %d, want 0", m)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	tb := New(2)
	tb.X(0)
	if m, det := tb.MeasureDeterministic(0); !det || m != 1 {
		t.Fatalf("deterministic check failed: %d %v", m, det)
	}
	tb.H(1)
	if _, det := tb.MeasureDeterministic(1); det {
		t.Fatal("superposed qubit reported deterministic")
	}
	// Non-disturbing: measuring afterwards still deterministic for q0.
	rng := stats.NewRNG(11)
	if m := tb.Measure(0, rng); m != 1 {
		t.Fatal("MeasureDeterministic disturbed the state")
	}
}

func TestReset(t *testing.T) {
	rng := stats.NewRNG(12)
	for i := 0; i < 50; i++ {
		tb := New(1)
		tb.H(0)
		tb.Reset(0, rng)
		if m, det := tb.MeasureDeterministic(0); !det || m != 0 {
			t.Fatalf("reset did not produce |0⟩: %d %v", m, det)
		}
	}
}

func TestRepetitionCodeCorrectsBitFlip(t *testing.T) {
	// 3-qubit repetition code: encode |1⟩, inject X on one qubit, decode by
	// majority of parity checks via two ancillas.
	rng := stats.NewRNG(13)
	for errQ := 0; errQ < 3; errQ++ {
		tb := New(5) // 0,1,2 data; 3,4 ancillas
		tb.X(0)
		tb.CNOT(0, 1)
		tb.CNOT(0, 2)
		tb.X(errQ) // error
		// Parity 0-1 on ancilla 3, parity 1-2 on ancilla 4.
		tb.CNOT(0, 3)
		tb.CNOT(1, 3)
		tb.CNOT(1, 4)
		tb.CNOT(2, 4)
		s1 := tb.Measure(3, rng)
		s2 := tb.Measure(4, rng)
		// Decode.
		switch {
		case s1 == 1 && s2 == 0:
			tb.X(0)
		case s1 == 1 && s2 == 1:
			tb.X(1)
		case s1 == 0 && s2 == 1:
			tb.X(2)
		}
		for q := 0; q < 3; q++ {
			if m := tb.Measure(q, rng); m != 1 {
				t.Fatalf("errQ=%d: data qubit %d decoded to %d, want 1", errQ, q, m)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	rng := stats.NewRNG(14)
	tb := New(2)
	tb.H(0)
	c := tb.Clone()
	tb.Measure(0, rng)
	// Clone must still be in superposition.
	if _, det := c.MeasureDeterministic(0); det {
		t.Fatal("Clone shares state with original")
	}
}

func TestPanics(t *testing.T) {
	tb := New(2)
	cases := []func(){
		func() { tb.H(2) },
		func() { tb.CNOT(0, 0) },
		func() { New(0) },
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			c()
		}()
	}
}

// TestAgreesWithStateVector cross-validates the tableau simulator against the
// state-vector simulator on random Clifford circuits: wherever the tableau
// says an outcome is deterministic, the state vector must assign it
// probability 1.
func TestAgreesWithStateVector(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		const n = 4
		tb := New(n)
		sv := quantum.NewState(n)
		for step := 0; step < 30; step++ {
			switch rng.Intn(5) {
			case 0:
				q := rng.Intn(n)
				tb.H(q)
				sv.H(q)
			case 1:
				q := rng.Intn(n)
				tb.S(q)
				sv.S(q)
			case 2:
				q := rng.Intn(n)
				tb.X(q)
				sv.X(q)
			case 3:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					tb.CNOT(a, b)
					sv.CNOT(a, b)
				}
			default:
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b {
					tb.CZ(a, b)
					sv.CZ(a, b)
				}
			}
		}
		for q := 0; q < n; q++ {
			m, det := tb.MeasureDeterministic(q)
			p1 := sv.Prob1(q)
			if det {
				if math.Abs(p1-float64(m)) > 1e-9 {
					return false
				}
			} else {
				if math.Abs(p1-0.5) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestMeasurementTrajectoriesAgree drives both simulators through the same
// circuit with interleaved measurements, forcing the state vector to follow
// the tableau's sampled outcomes via post-selection-free correlation checks.
func TestMeasurementTrajectoriesAgree(t *testing.T) {
	rng := stats.NewRNG(15)
	for trial := 0; trial < 30; trial++ {
		tb := New(3)
		sv := quantum.NewState(3)
		tb.H(0)
		sv.H(0)
		tb.CNOT(0, 1)
		sv.CNOT(0, 1)
		tb.CNOT(1, 2)
		sv.CNOT(1, 2)
		m := tb.Measure(1, rng)
		// Condition the state vector on the same outcome by measuring with a
		// rigged RNG: instead, verify the tableau's post-measurement state is
		// consistent: remaining qubits must now be deterministic and equal m.
		for _, q := range []int{0, 2} {
			mq, det := tb.MeasureDeterministic(q)
			if !det || mq != m {
				t.Fatalf("GHZ collapse inconsistent: q%d det=%v m=%d want %d", q, det, mq, m)
			}
		}
		_ = sv
	}
}

func TestLargeTableau(t *testing.T) {
	// Exercise multi-word rows (n > 64).
	rng := stats.NewRNG(16)
	const n = 130
	tb := New(n)
	tb.H(0)
	for q := 1; q < n; q++ {
		tb.CNOT(q-1, q)
	}
	m := tb.Measure(n-1, rng)
	for q := 0; q < n-1; q++ {
		mq, det := tb.MeasureDeterministic(q)
		if !det || mq != m {
			t.Fatalf("big GHZ inconsistent at qubit %d", q)
		}
	}
}

func BenchmarkSurfaceCodeSizedMeasurementRound(b *testing.B) {
	rng := stats.NewRNG(17)
	const n = 449 // d=15 rotated surface code
	tb := New(n)
	for q := 0; q < n; q += 2 {
		tb.H(q)
	}
	for q := 0; q+1 < n; q += 2 {
		tb.CNOT(q, q+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for q := 0; q < n; q += 8 {
			tb.Measure(q, rng)
		}
	}
}
