package stabilizer

import (
	"testing"

	"artery/internal/stats"
)

// Micro-benchmarks for the tableau hot paths the engine's stabilizer
// backend leans on, gated by scripts/bench_regress.sh: the word-parallel
// CNOT row update, the measurement collapse (row scan + rowsums), and a
// full d=15 surface-code syndrome-extraction cycle on a pooled register.

// BenchmarkTableauApplyCNOT measures the per-gate row-update cost at a
// d=15-sized register (449 qubits: 8 words per row, 899 tracked rows).
func BenchmarkTableauApplyCNOT(b *testing.B) {
	const n = 449
	t := New(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.CNOT(i%n, (i+7)%n)
	}
}

// BenchmarkTableauMeasureRow measures the collapse path: a measurement
// with a random outcome, which scans for the pivot row and rowsums every
// anticommuting row. The register is re-superposed each iteration so the
// collapse (not the deterministic fast path) is what is timed.
func BenchmarkTableauMeasureRow(b *testing.B) {
	const n = 128
	t := New(n)
	rng := stats.NewRNG(1)
	for q := 1; q < n; q++ {
		t.CNOT(0, q)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % n
		t.H(q) // re-randomize so Measure takes the collapse branch
		t.Measure(q, rng)
	}
}

// BenchmarkTableauMemoryCycleD15 runs one full syndrome-extraction cycle
// of the d=15 surface code — every X and Z check extracted into its
// ancilla and measured out with active reset — on a pooled register: the
// per-cycle unit of the engine's widest workload (449 qubits, 224
// checks, ~1.3k gates and 224 measurements per cycle).
func BenchmarkTableauMemoryCycleD15(b *testing.B) {
	const d = 15
	const nData = d * d
	pool := NewPool(2*d*d - 1)
	rng := stats.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := pool.Get()
		anc := nData
		// Interleaved X/Z plaquettes in the internal/qec layout spirit:
		// enough structure to exercise multi-word rows and both check
		// types without importing the decoder package.
		for si := 0; si < 2*(d*d-1)/2; si, anc = si+1, anc+1 {
			q := si % nData
			q2 := (q + d) % nData
			if si%2 == 0 {
				s.H(anc)
				s.CNOT(anc, q)
				s.CNOT(anc, q2)
				s.H(anc)
			} else {
				s.CNOT(q, anc)
				s.CNOT(q2, anc)
			}
			s.Reset(anc, rng)
		}
		pool.Put(s)
	}
}
