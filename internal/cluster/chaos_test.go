package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"artery/api"
	"artery/client"
	"artery/internal/chaos"
)

// chaosClientOption builds a client option that routes every backend
// request through a deterministic chaos transport at the given seed and
// rate.
func chaosClientOption(t *testing.T, seed uint64, rate float64) client.Option {
	t.Helper()
	tr, err := chaos.NewTransport(chaos.Scaled(seed, rate), nil)
	if err != nil {
		t.Fatalf("chaos.NewTransport: %v", err)
	}
	return client.WithHTTPClient(&http.Client{Transport: tr})
}

// TestCoordinatorBitIdenticalUnderChaos is the resilience acceptance
// suite: with every coordinator→backend request passing through the
// deterministic chaos transport — injected latency, resets, blackholes,
// truncated and corrupted frames, slow-loris drip, 5xx storms — any job
// that completes must still be byte-identical to a clean single-node
// run, across {hedging on/off} × {breakers on/off} × {two chaos seeds}
// × {1, 2, 4 backends}. Retries, hedges and failovers may reshuffle
// which backend serves which shard; the ordinal-addressed shard buffers
// assert that none of it can change a single output byte.
func TestCoordinatorBitIdenticalUnderChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}
	off := false
	req := api.Request{
		Workload: "qrw", Param: 3, Controller: "ARTERY", Shots: 24, Seed: 17,
		StreamStages: true, Options: &api.RequestOptions{StateSim: &off},
	}
	golden := startNode(t, 2, nil)
	wantRes, wantEvents := runJob(t, golden.ts.URL, req)

	for _, hedge := range []bool{true, false} {
		for _, breakers := range []bool{true, false} {
			for _, seed := range []uint64{3, 9} {
				for _, backends := range []int{1, 2, 4} {
					hedge, breakers, seed, backends := hedge, breakers, seed, backends
					name := fmt.Sprintf("hedge=%v/breakers=%v/seed=%d/backends=%d", hedge, breakers, seed, backends)
					t.Run(name, func(t *testing.T) {
						t.Parallel()
						var bases []string
						for i := 0; i < backends; i++ {
							bases = append(bases, startNode(t, 1, nil).ts.URL)
						}
						_, coordURL := startCoordinator(t, Config{
							Backends:        bases,
							ShardAttempts:   8,
							DisableHedging:  !hedge,
							DisableBreakers: !breakers,
							// A fixed short hedge delay keeps the hedged cells
							// actually hedging instead of waiting out the
							// adaptive floor on every faulted attempt.
							HedgeDelay:    300 * time.Millisecond,
							ClientOptions: []client.Option{chaosClientOption(t, seed, 0.12)},
						})
						res, events := runJob(t, coordURL, req)
						compareRuns(t, name, wantRes, wantEvents, res, events)
					})
				}
			}
		}
	}
}

// TestCoordinatorNotReadyWithoutBackends: satellite 1 — a coordinator
// whose whole fleet fails /readyz reports 503 on its own /readyz and
// sheds submissions with 503 instead of queueing jobs it cannot run.
func TestCoordinatorNotReadyWithoutBackends(t *testing.T) {
	co, coordURL := startCoordinator(t, Config{
		Backends:       []string{"http://127.0.0.1:1"}, // nothing listens here
		HealthInterval: 20 * time.Millisecond,
	})
	// The immediate first probe plus one interval is enough to mark the
	// backend unhealthy; poll briefly to avoid a startup race.
	deadline := time.Now().Add(2 * time.Second)
	for co.healthyCount() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := co.healthyCount(); n != 0 {
		t.Fatalf("healthyCount = %d, want 0", n)
	}

	resp, err := http.Get(coordURL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with zero healthy backends, want 503", resp.StatusCode)
	}

	body := strings.NewReader(`{"workload":"qrw","param":3,"shots":4,"seed":1}`)
	resp, err = http.Post(coordURL+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit = %d with zero healthy backends, want 503 (shed)", resp.StatusCode)
	}
	var prom strings.Builder
	co.Registry().WriteProm(&prom)
	if !strings.Contains(prom.String(), "artery_server_jobs_shed_total 1") {
		t.Errorf("shed not counted:\n%s", grepProm(prom.String(), "shed"))
	}
}

// TestBreakerTripsUnderSustainedFailure drives one backend's breaker
// through the full trip → cooldown → half-open → close cycle via the
// coordinator's own noteOutcome path, and checks the trip counter and
// state gauge follow along.
func TestBreakerTripsUnderSustainedFailure(t *testing.T) {
	n := startNode(t, 1, nil)
	co, _ := startCoordinator(t, Config{
		Backends:          []string{n.ts.URL},
		BreakerWindow:     8,
		BreakerMinSamples: 4,
		BreakerTrip:       0.5,
		BreakerCooldown:   30 * time.Millisecond,
	})
	b := co.backends[0]
	for i := 0; i < 4; i++ {
		co.noteOutcome(b, false)
	}
	if got := b.brk.current(); got != breakerOpen {
		t.Fatalf("breaker state after 4 failures = %d, want open (%d)", got, breakerOpen)
	}
	if b.brk.allow() {
		t.Fatal("open breaker admitted an attempt before cooldown")
	}
	var prom strings.Builder
	co.Registry().WriteProm(&prom)
	if !strings.Contains(prom.String(), "artery_cluster_breaker_trips_total 1") {
		t.Errorf("trip not counted:\n%s", grepProm(prom.String(), "breaker"))
	}
	if !strings.Contains(prom.String(), "artery_cluster_breaker_state_backend0 2") {
		t.Errorf("state gauge not open:\n%s", grepProm(prom.String(), "breaker"))
	}

	time.Sleep(40 * time.Millisecond) // cooldown elapses
	if !b.brk.allow() {
		t.Fatal("breaker still blocking after cooldown (should half-open)")
	}
	co.noteOutcome(b, true) // probe succeeds
	if got := b.brk.current(); got != breakerClosed {
		t.Fatalf("breaker state after successful probe = %d, want closed (%d)", got, breakerClosed)
	}
}

// TestPickBackendSkipsTrippedAndStragglers: the dispatcher prefers
// healthy, breaker-closed, non-straggling backends; a straggler is the
// fallback of last resort before the round-robin default.
func TestPickBackendSkipsTrippedAndStragglers(t *testing.T) {
	a := startNode(t, 1, nil)
	b := startNode(t, 1, nil)
	co, _ := startCoordinator(t, Config{Backends: []string{a.ts.URL, b.ts.URL}})
	waitHealthy(t, co, 2)

	// Trip backend 0: shard 0 must route to backend 1.
	for i := 0; i < 4; i++ {
		co.noteOutcome(co.backends[0], false)
	}
	if got := co.pickBackend(0, 0, nil); got != co.backends[1] {
		t.Fatalf("pickBackend routed to tripped backend %d", got.index)
	}
	// With backend 1 excluded (hedge placement) nothing eligible remains:
	// the hedge is skipped rather than doubling down on a tripped node.
	if got := co.pickBackend(0, 0, co.backends[1]); got != nil {
		t.Fatalf("hedge placement returned backend %d, want nil", got.index)
	}

	// Mark backend 1 a straggler (slow EWMA vs backend 0): with backend
	// 0's breaker closed again, shard 1 should skip the straggler.
	co.backends[0].brk = newBreaker(16, 0.5, 4, 2*time.Second)
	seedEWMA(co.backends[0], 0.01)
	seedEWMA(co.backends[1], 0.5)
	if got := co.pickBackend(1, 0, nil); got != co.backends[0] {
		t.Fatalf("pickBackend ignored straggler EWMA, picked backend %d", got.index)
	}
	var prom strings.Builder
	co.Registry().WriteProm(&prom)
	if !strings.Contains(prom.String(), "artery_cluster_straggler_skips_total") {
		t.Error("straggler skip counter not exposed")
	}
}

// seedEWMA force-feeds a backend's latency EWMA for dispatcher tests.
func seedEWMA(b *backend, seconds float64) {
	b.observe(seconds)
	b.observe(seconds)
}

func waitHealthy(t *testing.T, co *Coordinator, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for co.healthyCount() != want && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := co.healthyCount(); got != want {
		t.Fatalf("healthyCount = %d, want %d", got, want)
	}
}

// grepProm filters an exposition to lines containing substr, for
// readable failure messages.
func grepProm(prom, substr string) string {
	var out []string
	for _, line := range strings.Split(prom, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
