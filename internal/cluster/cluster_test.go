package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"artery/api"
	"artery/client"
	"artery/internal/server"
)

// TestSplitRange locks the shard-splitting arithmetic: contiguous,
// gap-free, near-equal, never empty.
func TestSplitRange(t *testing.T) {
	cases := []struct {
		offset, shots, n int
		want             []shardRange
	}{
		{0, 10, 2, []shardRange{{0, 5}, {5, 10}}},
		{0, 10, 3, []shardRange{{0, 4}, {4, 7}, {7, 10}}},
		{5, 4, 8, []shardRange{{5, 6}, {6, 7}, {7, 8}, {8, 9}}},
		{0, 7, 1, []shardRange{{0, 7}}},
		{100, 3, 0, []shardRange{{100, 103}}},
	}
	for _, tc := range cases {
		got := splitRange(tc.offset, tc.shots, tc.n)
		if len(got) != len(tc.want) {
			t.Fatalf("splitRange(%d,%d,%d) = %v, want %v", tc.offset, tc.shots, tc.n, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("splitRange(%d,%d,%d) = %v, want %v", tc.offset, tc.shots, tc.n, got, tc.want)
			}
		}
	}
}

// node is one in-process arteryd backend.
type node struct {
	srv *server.Server
	ts  *httptest.Server
}

func startNode(t *testing.T, workers int, wrap func(http.Handler) http.Handler) *node {
	t.Helper()
	s := server.New(server.Config{QueueDepth: 16, MaxConcurrentJobs: 2, WorkerBudget: workers})
	s.Start()
	h := http.Handler(s.Handler())
	if wrap != nil {
		h = wrap(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return &node{srv: s, ts: ts}
}

// startCoordinator fronts the given backends.
func startCoordinator(t *testing.T, cfg Config) (*Coordinator, string) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	c.Start()
	ts := httptest.NewServer(c.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		c.Shutdown(ctx)
	})
	return c, ts.URL
}

// runJob submits req at base, streams it to the end, and returns the
// result JSON plus each event's JSON, for byte comparison.
func runJob(t *testing.T, base string, req api.Request) (string, []string) {
	t.Helper()
	cl := client.MustNew(base, client.WithRetries(10))
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	js, err := cl.Submit(ctx, req)
	if err != nil {
		t.Fatalf("submit to %s: %v", base, err)
	}
	st, err := cl.Stream(ctx, js.ID)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	defer st.Close()
	var events []string
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream next after %d events: %v", len(events), err)
		}
		b, _ := json.Marshal(ev)
		events = append(events, string(b))
	}
	end := st.End()
	if end == nil || end.State != api.StateDone || end.Result == nil {
		t.Fatalf("job ended %+v", end)
	}
	b, _ := json.Marshal(end.Result)
	return string(b), events
}

func compareRuns(t *testing.T, label, wantRes string, wantEvents []string, gotRes string, gotEvents []string) {
	t.Helper()
	if gotRes != wantRes {
		t.Errorf("%s: result differs\n coordinator: %s\n single node: %s", label, gotRes, wantRes)
	}
	if len(gotEvents) != len(wantEvents) {
		t.Fatalf("%s: %d events, single node %d", label, len(gotEvents), len(wantEvents))
	}
	for i := range gotEvents {
		if gotEvents[i] != wantEvents[i] {
			t.Fatalf("%s: event %d differs\n coordinator: %s\n single node: %s", label, i, gotEvents[i], wantEvents[i])
		}
	}
}

// TestCoordinatorBitIdentical is the tentpole acceptance test: the
// coordinator's merged result and event stream are byte-identical to a
// single-node run of the same request — across backend counts, per-node
// worker budgets, sequential and shot-safe controllers, state sim on and
// off, and pass-through shot offsets.
func TestCoordinatorBitIdentical(t *testing.T) {
	off, on := false, true
	reqs := map[string]api.Request{
		"artery": {
			Workload: "qrw", Param: 3, Controller: "ARTERY", Shots: 36, Seed: 7,
			StreamStages: true, Options: &api.RequestOptions{StateSim: &off},
		},
		"artery-statesim": {
			Workload: "qrw", Param: 3, Controller: "ARTERY", Shots: 20, Seed: 11,
			StreamStages: true, Options: &api.RequestOptions{StateSim: &on},
		},
		"qubic-shotsafe": {
			Workload: "rcnot", Param: 3, Controller: "QubiC", Shots: 36, Seed: 5,
			StreamStages: true, Options: &api.RequestOptions{StateSim: &off},
		},
		"offset-passthrough": {
			Workload: "qrw", Param: 3, Controller: "ARTERY", Shots: 14, ShotOffset: 9, Seed: 7,
			StreamStages: true, Options: &api.RequestOptions{StateSim: &off},
		},
	}
	golden := startNode(t, 2, nil)
	goldenRes := map[string]string{}
	goldenEvents := map[string][]string{}
	for name, req := range reqs {
		goldenRes[name], goldenEvents[name] = runJob(t, golden.ts.URL, req)
	}

	for _, tc := range []struct {
		backends, workers int
	}{{1, 1}, {2, 3}, {4, 1}} {
		var bases []string
		for i := 0; i < tc.backends; i++ {
			bases = append(bases, startNode(t, tc.workers, nil).ts.URL)
		}
		_, coordURL := startCoordinator(t, Config{Backends: bases})
		for name, req := range reqs {
			res, events := runJob(t, coordURL, req)
			label := name + "/" + coordLabel(tc.backends, tc.workers)
			compareRuns(t, label, goldenRes[name], goldenEvents[name], res, events)
		}
	}
}

func coordLabel(backends, workers int) string {
	return fmt.Sprintf("backends=%d,workers=%d", backends, workers)
}

// TestCoordinatorStripsStagesByDefault: the stage deltas are a merge
// internality — a client that did not ask for stream_stages must not
// receive them from the coordinator even though backends always send
// them.
func TestCoordinatorStripsStagesByDefault(t *testing.T) {
	off := false
	n := startNode(t, 2, nil)
	_, coordURL := startCoordinator(t, Config{Backends: []string{n.ts.URL}})
	_, events := runJob(t, coordURL, api.Request{
		Workload: "qrw", Param: 3, Shots: 6, Seed: 3,
		Options: &api.RequestOptions{StateSim: &off},
	})
	for i, ev := range events {
		if strings.Contains(ev, `"stages"`) {
			t.Fatalf("event %d leaks stage deltas without stream_stages: %s", i, ev)
		}
	}
}

// dyingBackend wraps a backend handler: streams die after `lines` NDJSON
// lines, and from that moment the whole node answers 503 — a mid-job
// crash, deterministic regardless of scheduling.
func dyingBackend(lines int) func(http.Handler) http.Handler {
	var dead atomic.Bool
	return func(h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if dead.Load() {
				http.Error(w, "node crashed", http.StatusServiceUnavailable)
				return
			}
			if strings.HasSuffix(r.URL.Path, "/stream") {
				h.ServeHTTP(&truncWriter{ResponseWriter: w, left: lines, dead: &dead}, r)
				return
			}
			h.ServeHTTP(w, r)
		})
	}
}

// truncWriter fails writes beyond the limit and flips the node dead.
type truncWriter struct {
	http.ResponseWriter
	left int
	dead *atomic.Bool
}

func (t *truncWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		t.dead.Store(true)
		return 0, io.ErrClosedPipe
	}
	t.left--
	return t.ResponseWriter.Write(p)
}

// TestCoordinatorFailsOverMidJob is the failover acceptance test: one of
// two backends dies after streaming three events of its shard; the shard
// is re-dispatched to the survivor and the final result is still
// byte-identical to a single-node run.
func TestCoordinatorFailsOverMidJob(t *testing.T) {
	off := false
	req := api.Request{
		Workload: "qrw", Param: 3, Controller: "ARTERY", Shots: 40, Seed: 13,
		StreamStages: true, Options: &api.RequestOptions{StateSim: &off},
	}
	golden := startNode(t, 2, nil)
	wantRes, wantEvents := runJob(t, golden.ts.URL, req)

	survivor := startNode(t, 2, nil)
	dying := startNode(t, 1, dyingBackend(3))
	co, coordURL := startCoordinator(t, Config{
		Backends:      []string{survivor.ts.URL, dying.ts.URL},
		ShardAttempts: 4,
		// Hedging would rescue the shard on the survivor before the retry
		// loop runs; this test pins the failover path specifically.
		DisableHedging: true,
	})
	res, events := runJob(t, coordURL, req)
	compareRuns(t, "failover", wantRes, wantEvents, res, events)

	var prom strings.Builder
	co.Registry().WriteProm(&prom)
	if !strings.Contains(prom.String(), "artery_cluster_shards_retried_total") {
		t.Fatalf("metrics missing shard counters:\n%s", prom.String())
	}
	for _, line := range strings.Split(prom.String(), "\n") {
		if strings.HasPrefix(line, "artery_cluster_shards_failed_over_total ") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("no failover recorded despite a dead backend: %s", line)
			}
			return
		}
	}
	t.Error("artery_cluster_shards_failed_over_total not exposed")
}

// TestCoordinatorFailsJobWhenShardsExhausted: with every backend dead
// and the attempt budget spent, the job fails with a shard error rather
// than hanging or returning a short result.
func TestCoordinatorFailsJobWhenShardsExhausted(t *testing.T) {
	off := false
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "gone", http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	_, coordURL := startCoordinator(t, Config{Backends: []string{dead.URL}, ShardAttempts: 2})

	cl := client.MustNew(coordURL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	js, err := cl.Submit(ctx, api.Request{
		Workload: "qrw", Param: 3, Shots: 8, Seed: 1,
		Options: &api.RequestOptions{StateSim: &off},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := cl.Wait(ctx, js.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if final.State != api.StateFailed {
		t.Fatalf("job ended %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "shard") {
		t.Errorf("failure message %q does not name the shard", final.Error)
	}
}
