package cluster

import (
	"sync"
	"time"
)

// Breaker states, exported on the per-backend
// artery_cluster_breaker_state_backend<i> gauges.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breaker is a per-backend circuit breaker with trip/recover hysteresis
// modeled on fault.Tracker's windowed fallback controller: outcomes fill
// a fixed ring, the breaker opens when the windowed failure rate crosses
// the trip threshold (with a minimum sample count, so one early failure
// cannot condemn a cold backend), stays open for a cooldown, then
// half-opens and lets probe attempts through — one success closes it and
// clears the window, one failure re-opens it for another cooldown.
//
// The breaker never blocks the last resort: pickBackend falls back to a
// nominal backend when every candidate is vetoed, so a fully tripped
// fleet degrades to the pre-breaker behavior instead of wedging.
type breaker struct {
	mu     sync.Mutex
	window []bool // outcome ring, true = failure
	n      int    // outcomes recorded (≤ len(window))
	idx    int    // next ring slot
	fails  int    // failures currently in the ring
	trip   float64
	minN   int
	cool   time.Duration
	state  int
	until  time.Time        // open → half-open transition time
	now    func() time.Time // test seam
}

func newBreaker(window int, trip float64, minSamples int, cooldown time.Duration) *breaker {
	return &breaker{
		window: make([]bool, window),
		trip:   trip,
		minN:   minSamples,
		cool:   cooldown,
		now:    time.Now,
	}
}

// allow reports whether the backend may take an attempt now. It does not
// consume anything: half-open admits probes freely and lets record's
// hysteresis arbitrate (a concurrent probe burst after cooldown is
// harmless — the first failure re-opens, the first success closes).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && !b.now().Before(b.until) {
		b.state = breakerHalfOpen
	}
	return b.state != breakerOpen
}

// record folds one attempt outcome in. It returns true when this outcome
// tripped the breaker open (for the trips counter).
func (b *breaker) record(ok bool) (tripped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		// A stale outcome from an attempt that started before the trip;
		// the cooldown clock, not old traffic, decides recovery.
		return false
	case breakerHalfOpen:
		if ok {
			b.resetLocked()
			b.state = breakerClosed
			return false
		}
		b.state = breakerOpen
		b.until = b.now().Add(b.cool)
		return true
	}
	// Closed: windowed trip check.
	if b.n == len(b.window) {
		if b.window[b.idx] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.window[b.idx] = !ok
	if !ok {
		b.fails++
	}
	b.idx = (b.idx + 1) % len(b.window)
	if b.n >= b.minN && float64(b.fails)/float64(b.n) >= b.trip {
		b.state = breakerOpen
		b.until = b.now().Add(b.cool)
		return true
	}
	return false
}

// current returns the state constant for the gauge.
func (b *breaker) current() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && !b.now().Before(b.until) {
		b.state = breakerHalfOpen
	}
	return b.state
}

func (b *breaker) resetLocked() {
	for i := range b.window {
		b.window[i] = false
	}
	b.n, b.idx, b.fails = 0, 0, 0
}
