package cluster

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"artery/api"
	"artery/internal/server"
)

// shardRange is one contiguous global shot range [Lo, Hi).
type shardRange struct{ Lo, Hi int }

// splitRange cuts the global range [offset, offset+shots) into at most n
// contiguous shards of near-equal size (earlier shards take the
// remainder), never emitting an empty shard.
func splitRange(offset, shots, n int) []shardRange {
	if n < 1 {
		n = 1
	}
	if n > shots {
		n = shots
	}
	out := make([]shardRange, 0, n)
	base, rem := shots/n, shots%n
	lo := offset
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, shardRange{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// shard is one dispatched shot range moving through scatter-gather. Its
// dispatcher appends streamed events as they arrive (so the merger
// pipelines behind live shards) and resets the buffer on failover; the
// merger addresses the buffer by its consumed-event cursor minus base
// and trims the prefix it has merged (the job's own event log holds the
// merged copy, so the coordinator never buffers a job's events twice).
// Cursor arithmetic stays valid across resets because base returns to
// zero and a re-dispatched shard reproduces the exact same event prefix.
type shard struct {
	index  int
	rng    shardRange
	mu     sync.Mutex
	events []api.ShotEvent
	base   int         // absolute cursor of events[0] within this attempt
	result *api.Result // the shard's own end-of-stream result (names, sanity)
	err    error       // terminal failure after the attempt budget
	notify chan struct{}
}

func newShard(index int, r shardRange) *shard {
	return &shard{index: index, rng: r, notify: make(chan struct{})}
}

// broadcast wakes the merger. Callers hold the lock.
func (s *shard) broadcast() {
	close(s.notify)
	s.notify = make(chan struct{})
}

func (s *shard) append(ev api.ShotEvent) {
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.broadcast()
	s.mu.Unlock()
}

// reset discards a failed attempt's partial events before failover. The
// next attempt replays from the shard's Lo, so the buffer restarts at
// absolute cursor zero; the merger waits until the replay catches back
// up to wherever it had consumed.
func (s *shard) reset() {
	s.mu.Lock()
	s.events = nil
	s.base = 0
	s.broadcast()
	s.mu.Unlock()
}

// finish records the shard's terminal outcome: its result, or the error
// that exhausted the attempt budget.
func (s *shard) finish(res *api.Result, err error) {
	s.mu.Lock()
	s.result, s.err = res, err
	s.broadcast()
	s.mu.Unlock()
}

// execute is the coordinator's job executor (server.Config.Executor):
// scatter the job's shot range over the backends, gather the per-shot
// event streams, merge them in global shot order, and drive the job to
// its terminal state. Honors ctx: a drain completes the job with the
// deterministic merged prefix, exactly like a drained single node.
//
// A job recovered from the journal mid-run carries a merged-event prefix
// (see server.Job.Prefix): the fold is seeded with the prefix and only
// the unmerged remainder [offset+k, offset+shots) is sharded out, so a
// restarted coordinator resumes every shard at the job's last durable
// merged shot instead of re-running the range from shot 0. Because
// per-shot RNG streams are drawn by global index, the re-sharded
// remainder recombines with the journaled prefix byte-identically to an
// uninterrupted single-node run.
func (c *Coordinator) execute(ctx context.Context, j *server.Job) {
	req := j.Req
	agg := api.NewMerger(req)
	prefix := j.Prefix()
	for _, ev := range prefix {
		if err := agg.Add(ev); err != nil {
			j.Fail(fmt.Sprintf("cluster: journaled prefix: %v", err))
			return
		}
	}
	lo := req.ShotOffset + len(prefix)
	remaining := req.Shots - len(prefix)
	if remaining <= 0 {
		// The journal already holds every merged shot; only the terminal
		// record was lost to the crash.
		j.Complete(agg.Result(false))
		return
	}
	shards := make([]*shard, 0, c.cfg.Shards)
	for i, r := range splitRange(lo, remaining, c.cfg.Shards) {
		shards = append(shards, newShard(i, r))
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // stop in-flight shard streams once the job settles
	for _, sh := range shards {
		go c.runShard(ctx, req, sh)
	}
	c.gather(ctx, j, agg, shards)
}

// runShard drives one shard to completion: dispatch to a backend, stream
// its events into the shard buffer, and on failure retry on the next
// healthy backend with jittered exponential backoff, up to the attempt
// budget.
func (c *Coordinator) runShard(ctx context.Context, req api.Request, sh *shard) {
	var lastErr error
	var prev *backend
	for attempt := 0; attempt < c.cfg.ShardAttempts; attempt++ {
		if attempt > 0 {
			c.m.shardsRetried.Inc()
			select {
			case <-time.After(failoverDelay(attempt)):
			case <-ctx.Done():
				sh.finish(nil, ctx.Err())
				return
			}
		}
		b := c.pickBackend(sh.index, attempt)
		if attempt > 0 && b != prev {
			c.m.shardsFailedOver.Inc()
		}
		prev = b
		c.m.shardsDispatched.Inc()
		res, err := c.tryShard(ctx, b, req, sh)
		if err == nil {
			b.shardsServed.Inc()
			sh.finish(res, nil)
			return
		}
		if ctx.Err() != nil {
			sh.finish(nil, ctx.Err())
			return
		}
		lastErr = err
		sh.reset()
	}
	c.m.shardsFailed.Inc()
	sh.finish(nil, fmt.Errorf("shard [%d,%d) failed after %d attempts: %w", sh.rng.Lo, sh.rng.Hi, c.cfg.ShardAttempts, lastErr))
}

// failoverDelay is the jittered exponential backoff between shard
// attempts (the submission-level Retry-After/backoff dance lives in the
// client underneath).
func failoverDelay(attempt int) time.Duration {
	d := 100 * time.Millisecond << uint(attempt-1)
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// tryShard performs one shard attempt against one backend: submit the
// sub-request (the shard's global range, stage deltas always on — the
// merger needs them), stream every event into the shard buffer, and
// verify the backend delivered the complete, uncanceled range.
func (c *Coordinator) tryShard(ctx context.Context, b *backend, req api.Request, sh *shard) (*api.Result, error) {
	start := time.Now()
	sub := req
	sub.ShotOffset = sh.rng.Lo
	sub.Shots = sh.rng.Hi - sh.rng.Lo
	sub.StreamStages = true
	js, err := b.cl.Submit(ctx, sub)
	if err != nil {
		return nil, fmt.Errorf("backend %d (%s): submit: %w", b.index, b.base, err)
	}
	st, err := b.cl.Stream(ctx, js.ID)
	if err != nil {
		return nil, fmt.Errorf("backend %d (%s): stream: %w", b.index, b.base, err)
	}
	defer st.Close()
	n := 0
	for {
		ev, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("backend %d (%s): stream: %w", b.index, b.base, err)
		}
		if ev.Shot != sh.rng.Lo+n {
			return nil, fmt.Errorf("backend %d (%s): event %d carries shot %d, want %d", b.index, b.base, n, ev.Shot, sh.rng.Lo+n)
		}
		sh.append(ev)
		n++
	}
	end := st.End()
	if end == nil || end.State != api.StateDone || end.Result == nil {
		state, msg := "", ""
		if end != nil {
			state, msg = end.State, end.Error
		}
		return nil, fmt.Errorf("backend %d (%s): shard ended %s: %s", b.index, b.base, state, msg)
	}
	if end.Result.Canceled || n != sub.Shots {
		// A draining backend returns a truncated prefix — valid for its
		// own clients, but a missing tail for ours: fail over.
		return nil, fmt.Errorf("backend %d (%s): shard truncated at %d of %d shots (backend draining?)", b.index, b.base, n, sub.Shots)
	}
	b.shardSeconds.Observe(time.Since(start).Seconds())
	return end.Result, nil
}

// gather is the merge path: consume shard buffers strictly in shard
// order (global shot order), fold every event into the merger, and
// append it to the job's own event log (journaling it, when a store is
// configured, via AppendFull). One goroutine, exactly like the
// single-node engine's merge path — which is why the fold reproduces the
// single-node result bit-for-bit.
func (c *Coordinator) gather(ctx context.Context, j *server.Job, agg *api.Merger, shards []*shard) {
	for _, sh := range shards {
		consumed := 0
		for consumed < sh.rng.Hi-sh.rng.Lo {
			if ctx.Err() != nil {
				j.Complete(agg.Result(true))
				return
			}
			sh.mu.Lock()
			if idx := consumed - sh.base; idx >= 0 && idx < len(sh.events) {
				ev := sh.events[idx]
				// Trim the merged prefix; append's reallocations drop the
				// dead head, so the buffer holds only the unmerged window.
				sh.events = sh.events[idx+1:]
				sh.base = consumed + 1
				sh.mu.Unlock()
				consumed++
				if err := agg.Add(ev); err != nil {
					j.Fail(err.Error())
					return
				}
				c.m.shotsMerged.Inc()
				j.AppendFull(ev)
				continue
			}
			if sh.err != nil {
				err := sh.err
				sh.mu.Unlock()
				if err == context.Canceled || ctx.Err() != nil {
					j.Complete(agg.Result(true))
					return
				}
				j.Fail(err.Error())
				return
			}
			wait := sh.notify
			sh.mu.Unlock()
			select {
			case <-wait:
			case <-ctx.Done():
				j.Complete(agg.Result(true))
				return
			}
		}
		// The last event lands in the buffer before finish() records the
		// shard's result, so wait for the terminal record rather than
		// racing it — adopting canonical names must not depend on timing.
		sh.mu.Lock()
		for sh.result == nil && sh.err == nil {
			wait := sh.notify
			sh.mu.Unlock()
			select {
			case <-wait:
			case <-ctx.Done():
				j.Complete(agg.Result(true))
				return
			}
			sh.mu.Lock()
		}
		if sh.result != nil {
			agg.SetNames(sh.result)
		}
		sh.mu.Unlock()
	}
	j.Complete(agg.Result(false))
}
